package aquila_test

import (
	"fmt"

	"aquila"
)

// Example demonstrates the paper's Figure 1 workflow: express a
// specification in LPI, verify the data plane, and read the verdict.
func Example() {
	prog, err := aquila.ParseProgram("toy.p4", `
header h_t { bit<8> port_hint; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	action fwd(bit<9> p) { std_meta.egress_spec = p; }
	table t {
		key = { h.port_hint : exact; }
		actions = { fwd; }
		entries = { (7) : fwd(3); }
	}
	apply { t.apply(); }
}
pipeline pl { parser = P; control = C; }
`)
	if err != nil {
		panic(err)
	}
	spec, err := aquila.ParseSpec(`
assumption { init { pkt.$order == <h>; pkt.h.port_hint == 7; } }
assertion { out = { std_meta.egress_spec == 3; match(t, fwd); } }
program { assume(init); call(pl); assert(out); }
`)
	if err != nil {
		panic(err)
	}
	report, err := aquila.Verify(prog, nil, spec, aquila.Options{FindAll: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("holds:", report.Holds, "assertions:", report.Stats.Assertions)
	// Output: holds: true assertions: 2
}
