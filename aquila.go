// Package aquila is a from-scratch Go implementation of Aquila, the
// practically usable verification system for production-scale programmable
// data planes described in the SIGCOMM 2021 paper by Tian, Gao, Liu, Zhai
// et al. (Alibaba / Harvard / Nanjing University).
//
// The package is the public façade over the full pipeline:
//
//	P4 program + table entries + LPI specification
//	    → component GCL encoding   (sequential encoding, ABV tables, §4)
//	    → whole-switch composition (LPI program block, §3)
//	    → verification conditions  (predicate transformers)
//	    → SMT solving              (built-in CDCL + QF_BV bit-blasting)
//	    → verdict / counterexample → bug localization (§5)
//
// Quick start:
//
//	prog, _ := aquila.ParseProgram("forward.p4", p4Source)
//	spec, _ := aquila.ParseSpec(lpiSource)
//	snap, _ := aquila.ParseSnapshot(entriesText) // or nil: any entries
//	report, _ := aquila.Verify(prog, snap, spec, aquila.Options{FindAll: true})
//	if !report.Holds {
//	    result, _ := aquila.Localize(prog, snap, spec, aquila.Options{})
//	    fmt.Print(result)
//	}
//
// The implementation is pure Go with no dependencies outside the standard
// library; the SMT backend the paper delegates to Z3 is implemented in
// internal/sat and internal/smt (see DESIGN.md for the substitution
// rationale).
package aquila

import (
	"fmt"
	"os"
	"sort"

	"aquila/internal/encode"
	"aquila/internal/localize"
	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/progs"
	"aquila/internal/tables"
	"aquila/internal/validate"
	"aquila/internal/verify"
)

// Program is a parsed and type-checked P4lite program.
type Program = p4.Program

// Spec is a parsed LPI specification (§3 of the paper).
type Spec = lpi.Spec

// Snapshot is a set of installed table entries (§2: a data-plane
// snapshot). A nil snapshot verifies under any possible entries.
type Snapshot = tables.Snapshot

// Report is a verification outcome with violations, counterexamples and
// cost statistics.
type Report = verify.Report

// Violation is a violated assertion with its counterexample.
type Violation = verify.Violation

// LocalizeResult is a bug-localization outcome (§5).
type LocalizeResult = localize.Result

// ValidationResult is a self-validation outcome (§6).
type ValidationResult = validate.Result

// Localization result kinds.
const (
	BugNone       = localize.KindNone
	BugTableEntry = localize.KindTableEntry
	BugProgram    = localize.KindProgram
)

// Encoding mode re-exports; the zero values are the paper's configuration.
const (
	ParserSequential = encode.ParserSequential
	ParserTree       = encode.ParserTree
	TableABVTree     = encode.TableABVTree
	TableABVLinear   = encode.TableABVLinear
	TableNaive       = encode.TableNaive
	PacketKV         = encode.PacketKV
	PacketBitvector  = encode.PacketBitvector
)

// EncodeOptions selects encoding modes (see internal/encode.Options).
type EncodeOptions = encode.Options

// Schedule selects the find-all work-distribution strategy (see
// internal/verify.Schedule).
type Schedule = verify.Schedule

// Scheduling strategy re-exports; ScheduleStatic is the default.
const (
	ScheduleStatic = verify.ScheduleStatic
	ScheduleSteal  = verify.ScheduleSteal
)

// ParseSchedule maps the CLI -schedule flag values ("", "static",
// "steal") to a Schedule.
func ParseSchedule(s string) (Schedule, error) { return verify.ParseSchedule(s) }

// Options configures verification and localization runs.
type Options struct {
	// FindAll checks every assertion one by one; the default stops at the
	// first violated assertion.
	FindAll bool
	// Budget bounds SMT effort per query in SAT conflicts (0: unlimited).
	Budget int64
	// Parallel is the worker count for find-all verification and
	// localization re-checks: 0 uses runtime.GOMAXPROCS(0), 1 forces the
	// serial path. Reports are byte-identical at every setting.
	Parallel int
	// Incremental enables shared-prefix solving for find-all verification
	// and localization: each worker shard blasts the common VC prefix once
	// and checks its assertions via activation literals, reusing the CNF
	// and learned clauses. Verdicts and reports stay byte-identical to the
	// default fresh-solver mode.
	Incremental bool
	// Simplify runs the algebraic simplification pass over the shared
	// term DAG before blasting. Verification and localization consult it
	// only in Incremental mode; SelfValidate applies it directly to its
	// refinement queries.
	Simplify bool
	// Preprocess enables SatELite-style CNF preprocessing (subsumption,
	// self-subsuming resolution, bounded variable elimination) in the SAT
	// cores of verification, localization filtering, and self-validation.
	// Verdicts, models, and reports are unchanged; the search gets cheaper.
	Preprocess bool
	// Slice enables per-assertion cone-of-influence slicing for find-all
	// verification: VC conjuncts that cannot influence an assertion's
	// checked condition are dropped before blasting. Reports stay
	// byte-identical to unsliced mode.
	Slice bool
	// Stream makes find-all verification release transient per-assertion
	// terms as it goes, bounding peak term memory by the VC plus one
	// assertion's slice instead of the whole run. Forces the serial path;
	// reports stay byte-identical to the default fresh-solver mode.
	Stream bool
	// Schedule selects the find-all work-distribution strategy:
	// ScheduleStatic (default) or ScheduleSteal, the work-stealing
	// scheduler. Canonical reports are byte-identical across schedules;
	// steal mode is incompatible with Incremental and Stream.
	Schedule Schedule
	// Portfolio races K diverse solver personalities per find-all check and
	// takes the first verdict (0 or 1: no racing). Reports stay
	// byte-identical at every K; incompatible with Incremental and Stream.
	Portfolio int
	// Encode selects the encoding modes; the zero value is the paper's
	// configuration (sequential encoding, ABV lookup tree, KV packets).
	Encode EncodeOptions
}

func (o Options) verifyOptions() verify.Options {
	return verify.Options{Encode: o.Encode, FindAll: o.FindAll, Budget: o.Budget,
		Parallel: o.Parallel, Incremental: o.Incremental, Simplify: o.Simplify,
		Preprocess: o.Preprocess, Slice: o.Slice, Stream: o.Stream,
		Schedule: o.Schedule, Portfolio: o.Portfolio}
}

// ParseProgram parses and type-checks P4lite source.
func ParseProgram(name, source string) (*Program, error) {
	return p4.ParseAndCheck(name, source)
}

// LoadProgram reads and parses a P4lite file.
func LoadProgram(path string) (*Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("aquila: %w", err)
	}
	return ParseProgram(path, string(data))
}

// ParseSpec parses an LPI specification.
func ParseSpec(source string) (*Spec, error) { return lpi.Parse(source) }

// LoadSpec reads and parses an LPI file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("aquila: %w", err)
	}
	return ParseSpec(string(data))
}

// ParseSnapshot parses the table-entry snapshot text format.
func ParseSnapshot(source string) (*Snapshot, error) {
	return tables.ParseSnapshot(source)
}

// LoadSnapshot reads and parses a snapshot file.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("aquila: %w", err)
	}
	return ParseSnapshot(string(data))
}

// NewSnapshot returns an empty, mutable snapshot.
func NewSnapshot() *Snapshot { return tables.NewSnapshot() }

// Delta is an ordered batch of table-entry operations (add, replace,
// remove) applied atomically to a snapshot.
type Delta = tables.Delta

// Session is the delta re-verification engine: load a program once, then
// re-verify cheaply per Delta as the control plane churns table entries
// (warm term context, memoized slices, shared incremental solver, cached
// verdict replay). Every Apply report is canonically byte-identical to a
// fresh Verify of the mutated snapshot.
type Session = verify.Session

// ParseDelta parses one delta in the text format ("add Ctl.tbl KEYS ->
// action(args)" / "replace Ctl.tbl INDEX KEYS -> action" / "remove
// Ctl.tbl INDEX", one op per line).
func ParseDelta(source string) (*Delta, error) { return tables.ParseDelta(source) }

// ParseDeltas parses a "---"-separated sequence of deltas.
func ParseDeltas(source string) ([]*Delta, error) { return tables.ParseDeltas(source) }

// LoadDeltas reads and parses a delta sequence file.
func LoadDeltas(path string) ([]*Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("aquila: %w", err)
	}
	return ParseDeltas(string(data))
}

// NewSession builds a warm re-verification session for prog under snap
// (nil: start from any-entries) and runs the baseline verification.
func NewSession(prog *Program, snap *Snapshot, spec *Spec, opts Options) (*Session, error) {
	return verify.NewSession(prog, snap, spec, opts.verifyOptions())
}

// Verify checks prog (under snap's entries, or any entries when snap is
// nil) against spec (§4 of the paper).
func Verify(prog *Program, snap *Snapshot, spec *Spec, opts Options) (*Report, error) {
	return verify.Run(prog, snap, spec, opts.verifyOptions())
}

// Localize finds violated assertions and localizes the responsible table
// entries or program statements (§5 of the paper).
func Localize(prog *Program, snap *Snapshot, spec *Spec, opts Options) (*LocalizeResult, error) {
	return localize.Localize(prog, snap, spec, localize.Options{Verify: opts.verifyOptions()})
}

// SelfValidate checks Aquila's own encoder against an independent
// reference semantics for the named components (§6 of the paper).
func SelfValidate(prog *Program, snap *Snapshot, components []string, opts Options) (*ValidationResult, error) {
	return validate.ValidateWith(prog, snap, components, opts.Encode,
		validate.Config{Simplify: opts.Simplify, Preprocess: opts.Preprocess})
}

// SpecLoC counts the effective specification lines of LPI source — the
// spec-complexity metric of Table 2 / Figure 3.
func SpecLoC(source string) int { return lpi.SpecLoC(source) }

// InferUndefinedBehaviorSpec generates an LPI specification asserting that
// no table is ever applied while a header it reads is invalid — the
// bf4-style automatically-inferred undefined-behaviour annotations the
// paper discusses (§1, §9: service-specific properties must be written by
// hand, but invalid-header checks can be inferred). calls is the pipeline
// call order; when empty, every pipeline is called in name order.
func InferUndefinedBehaviorSpec(prog *Program, calls []string) (string, *Spec, error) {
	if len(calls) == 0 {
		for name := range prog.Pipelines {
			calls = append(calls, name)
		}
		sort.Strings(calls)
	}
	if len(calls) == 0 {
		return "", nil, fmt.Errorf("aquila: program declares no pipelines; pass explicit calls")
	}
	src := progs.InvalidHeaderAccessSpec(prog, calls)
	spec, err := lpi.Parse(src)
	if err != nil {
		return "", nil, err
	}
	return src, spec, nil
}
