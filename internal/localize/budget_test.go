package localize

import (
	"errors"
	"strings"
	"testing"

	"aquila/internal/tables"
	"aquila/internal/verify"
)

// TestBudgetExhaustionReported pins the honesty contract on solver
// budgets: when the conflict budget runs out before localization can
// decide anything — in the initial violation search or in the MaxSAT
// table-entry repair — Localize must return an error wrapping
// verify.ErrBudget instead of silently reporting "no violation" or
// "program bug".
func TestBudgetExhaustionReported(t *testing.T) {
	prog, spec, _ := setup(t, ttlProgramGood, ttlSpec, nil)
	snap := tables.NewSnapshot()
	snap.Add("BugExample.t1", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(0xDEAD)}, Action: "a_dec", Priority: -1})

	opts := Options{}
	opts.Verify.Budget = 1 // one SAT conflict: nothing real decides in that
	_, err := Localize(prog, snap, spec, opts)
	if err == nil {
		t.Fatal("expected a budget-exhaustion error, got success")
	}
	if !errors.Is(err, verify.ErrBudget) {
		t.Fatalf("error %v should wrap verify.ErrBudget", err)
	}
}

// TestBudgetExhaustionInTableRepair drives the budget past the violation
// search but not through the MaxSAT repair loop, hitting the Unknown
// branch of locateTableEntries specifically.
func TestBudgetExhaustionInTableRepair(t *testing.T) {
	prog, spec, _ := setup(t, ttlProgramGood, ttlSpec, nil)
	snap := tables.NewSnapshot()
	snap.Add("BugExample.t1", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(0xDEAD)}, Action: "a_dec", Priority: -1})

	// Find the smallest budget that gets through the violation search,
	// then check the table-repair stage still reports exhaustion rather
	// than mislocalizing. If one budget completes everything, the contract
	// is vacuously satisfied for it and we stop.
	for budget := int64(1); budget <= 1<<16; budget *= 4 {
		opts := Options{}
		opts.Verify.Budget = budget
		res, err := Localize(prog, snap, spec, opts)
		if err == nil {
			// Enough budget for the whole pipeline: the result must match
			// the unbudgeted run, not a degraded guess.
			if res.Kind != KindTableEntry {
				t.Fatalf("budget %d: kind = %v, want KindTableEntry", budget, res.Kind)
			}
			return
		}
		if !errors.Is(err, verify.ErrBudget) {
			t.Fatalf("budget %d: error %v should wrap verify.ErrBudget", budget, err)
		}
		if strings.Contains(err.Error(), "table-entry repair") {
			t.Logf("budget %d: exhausted inside MaxSAT repair as intended", budget)
		}
	}
	t.Fatal("no budget up to 1<<16 completed localization")
}

// TestEmptyAssertionSpec pins the degenerate-spec path: a program block
// that asserts nothing cannot be violated, so localization reports
// KindNone rather than erroring or inventing suspects.
func TestEmptyAssertionSpec(t *testing.T) {
	emptySpec := `
assumption { init { pkt.$order == <ipv4>; } }
program { assume(init); call(pl); }
`
	prog, spec, snap := setup(t, ttlProgramMissing, emptySpec, fullSnapshot())
	res, err := Localize(prog, snap, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindNone {
		t.Fatalf("kind = %v, want KindNone for an assertion-free spec:\n%s", res.Kind, res)
	}
	if len(res.Violated) != 0 || len(res.Candidates) != 0 {
		t.Fatalf("assertion-free spec produced findings: %s", res)
	}
}
