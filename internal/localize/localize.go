// Package localize implements Aquila's automatic bug localization (§5 of
// the paper): given a violated specification it narrows down suspects and
// pinpoints culprits by simulating fixes.
//
// The algorithm follows the paper:
//
//  1. Find the violated assertions and a counterexample; freeze the input
//     packet to the counterexample values (§5.1, "preparation").
//  2. Table-entry localization: re-encode every table as
//     ite(rep_i, fv_i, entries_i) and solve MAXSAT_i ¬rep_i under the
//     constraint that all assertions hold — a satisfying assignment names
//     the minimal set of tables whose entries can fix the violation.
//  3. Otherwise the bug is in the data-plane program: backward taint
//     analysis over the violated assertion's variables yields suspect
//     actions; a causality filter keeps only actions the violation
//     implies executed; and a havoc-based fix simulation (inserting an
//     arbitrary-value assignment after each suspect) pinpoints the
//     locations whose change can repair the program — which also catches
//     statement-missing bugs (Figure 4).
package localize

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"time"

	"aquila/internal/encode"
	"aquila/internal/gcl"
	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
	"aquila/internal/verify"
)

// Kind classifies a localization outcome.
type Kind int

// Localization outcomes.
const (
	// KindNone means the specification holds; there is nothing to locate.
	KindNone Kind = iota
	// KindTableEntry means replacing entries of the reported tables fixes
	// the violation.
	KindTableEntry
	// KindProgram means the bug is in the data-plane program; Candidates
	// lists the suspect (action, variable) locations.
	KindProgram
)

// Candidate is a potential program bug location: changing (or adding) an
// assignment to Var at the end of action Control.Action can fix the
// violated assertion.
type Candidate struct {
	Control string
	Action  string
	Var     string // "inst.field" whose havoc fixes the violation
	Line    int    // source line of the action's last statement (best effort)
}

func (c Candidate) String() string {
	return fmt.Sprintf("%s.%s (variable %s)", c.Control, c.Action, c.Var)
}

// Result is the outcome of a localization run.
type Result struct {
	Kind Kind
	// Violated lists the labels of violated assertions.
	Violated []string
	// Tables lists the minimal suspect tables for KindTableEntry.
	Tables []string
	// SuggestedEntries renders, per suspect table, a concrete entry
	// behaviour found by the solver (action id and hit condition) that
	// repairs the violation on the frozen input.
	SuggestedEntries map[string]string
	// Candidates lists suspect locations for KindProgram.
	Candidates []Candidate
	// Pool is the total number of (action, variable) locations considered
	// before filtering — the denominator of Table 4's precision metric.
	Pool int
	Time time.Duration
}

// Options configures localization.
type Options struct {
	Verify verify.Options
}

// Localize runs the full §5 pipeline.
func Localize(prog *p4.Program, snap *tables.Snapshot, spec *lpi.Spec, opts Options) (*Result, error) {
	start := time.Now()
	res := &Result{SuggestedEntries: map[string]string{}}
	o := opts.Verify.Observer()

	// Step 1: find violated assertions + counterexample (§5.1).
	vopts := opts.Verify
	vopts.FindAll = true
	vopts.Encode.TrackFired = true
	endFind := o.Phase(0, "localize:find-violations")
	baseRep, err := verify.Run(prog, snap, spec, vopts)
	endFind()
	if err != nil {
		return nil, err
	}
	if baseRep.Holds {
		res.Kind = KindNone
		res.Time = time.Since(start)
		return res, nil
	}
	for _, v := range baseRep.Violations {
		res.Violated = append(res.Violated, v.Label)
	}
	frozen := freezeInput(baseRep)

	// Step 2: table-entry localization (only meaningful with a snapshot).
	if snap != nil && snap.NumEntries() > 0 {
		endTbl := o.Phase(0, "localize:table-entries")
		tbls, suggested, ok, err := locateTableEntries(prog, snap, spec, vopts, frozen)
		endTbl()
		if err != nil {
			return nil, err
		}
		if ok && len(tbls) > 0 {
			res.Kind = KindTableEntry
			res.Tables = tbls
			res.SuggestedEntries = suggested
			res.Time = time.Since(start)
			o.Event("localize_done", map[string]any{
				"kind": "table-entry", "tables": len(tbls),
			})
			return res, nil
		}
	}

	// Step 3: the bug is in the data plane program. The fix simulation
	// freezes the counterexample's table behaviours too (§5.2
	// preparation: "we record the actions that the counterexample
	// triggers"), so only the injected havoc can repair the run.
	res.Kind = KindProgram
	frozenAll := freeze(baseRep, true)
	res.Candidates, res.Pool, err = locateProgramBug(prog, snap, spec, vopts, frozenAll, baseRep)
	if err != nil {
		return nil, err
	}
	res.Time = time.Since(start)
	o.Event("localize_done", map[string]any{
		"kind": "program", "candidates": len(res.Candidates), "pool": res.Pool,
	})
	return res, nil
}

// frozenVar is a (name, width, value) triple freezing one input variable;
// width 0 denotes a boolean.
type frozenVar struct {
	name    string
	width   int
	val     *big.Int
	boolVal bool
}

// freezeInput extracts the counterexample's assignment of every free input
// variable — packet images, order sequence, initial metadata and register
// values, hash outcomes. Per §5.2's preparation step this removes the
// input from the search space, so the only remaining freedom during repair
// is the table function variables (which are excluded here).
func freezeInput(rep *verify.Report) []frozenVar { return freeze(rep, false) }

// freeze extracts the counterexample assignment. withTableChoices also
// freezes the wildcard-table free choices — used by the program-bug phase,
// where the paper "records the actions that the counterexample triggers";
// the entry-repair phase leaves them free because they are exactly what it
// re-solves for.
func freeze(rep *verify.Report, withTableChoices bool) []frozenVar {
	seen := map[string]bool{}
	var out []frozenVar
	for _, v := range rep.Violations {
		for _, t := range smt.Vars(v.Cond) {
			if seen[t.Name] {
				continue
			}
			// Exclude the VC generator's internal fresh variables, and
			// (unless requested) the table function variables.
			if strings.HasPrefix(t.Name, "$rep.") || strings.Contains(t.Name, "!") {
				continue
			}
			if !withTableChoices && strings.HasPrefix(t.Name, "$tbl.") {
				continue
			}
			seen[t.Name] = true
			if t.Op == smt.OpBoolVar {
				out = append(out, frozenVar{name: t.Name, boolVal: v.Model.Bool(t)})
			} else {
				out = append(out, frozenVar{name: t.Name, width: t.Width, val: v.Model.BV(t)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func frozenTerm(ctx *smt.Ctx, frozen []frozenVar) *smt.Term {
	cond := ctx.True()
	for _, f := range frozen {
		if f.width == 0 && f.val == nil {
			cond = ctx.And(cond, ctx.Iff(ctx.BoolVar(f.name), ctx.Bool(f.boolVal)))
			continue
		}
		cond = ctx.And(cond, ctx.Eq(ctx.Var(f.name, f.width), ctx.BVBig(f.val, f.width)))
	}
	return cond
}

// locateTableEntries re-encodes with table replacement indicators and
// solves MAXSAT over ¬rep_i (§5.2).
func locateTableEntries(prog *p4.Program, snap *tables.Snapshot, spec *lpi.Spec,
	vopts verify.Options, frozen []frozenVar) ([]string, map[string]string, bool, error) {
	ctx := smt.NewCtx()
	eopts := vopts.Encode
	eopts.TrackModified = lpi.TrackModified(spec)
	eopts.RepairTables = true
	env := encode.NewEnv(ctx, prog, snap, eopts)
	comp := lpi.NewCompiler(spec, env)
	program, err := comp.Compile()
	if err != nil {
		return nil, nil, false, err
	}
	enc := gcl.NewEncoder(ctx)
	encRes := enc.Encode(program, nil)

	solver := smt.NewSolver(ctx)
	if vopts.Budget > 0 {
		solver.SetBudget(vopts.Budget)
	}
	solver.Assert(frozenTerm(ctx, frozen))
	// All assertions must hold after the repair.
	for _, v := range encRes.Violations {
		solver.Assert(ctx.Not(v.Cond))
	}
	// Soft constraints: keep as many tables unreplaced as possible.
	var softTables []string
	var soft []*smt.Term
	for _, ctlName := range sortedNames(prog.Controls) {
		ctl := prog.Controls[ctlName]
		for _, tn := range ctl.Order {
			if _, isTable := ctl.Tables[tn]; !isTable {
				continue
			}
			fq := ctlName + "." + tn
			if !snap.Has(fq) {
				continue
			}
			softTables = append(softTables, fq)
			soft = append(soft, ctx.Not(env.RepVar(ctlName, tn)))
		}
	}
	model, _, st := solver.Maximize(soft)
	if st == smt.Unknown {
		// Budget ran out before feasibility was decided: report that
		// honestly instead of silently claiming "not fixable by entries".
		return nil, nil, false, fmt.Errorf("localize: table-entry repair: %w", verify.ErrBudget)
	}
	if st != smt.Sat {
		return nil, nil, false, nil // not fixable by entries: program bug
	}
	var out []string
	suggested := map[string]string{}
	for i, fq := range softTables {
		_ = i
		parts := strings.SplitN(fq, ".", 2)
		if model.Bool(env.RepVar(parts[0], parts[1])) {
			out = append(out, fq)
			// The function variable's free choices name the repaired
			// behaviour on the frozen input. The encoder clamps an
			// out-of-range selector to the first installable action, so the
			// report applies the same clamping.
			ctx := env.Ctx
			hit := model.Bool(ctx.BoolVar("$tbl." + fq + ".hit"))
			laid := model.Uint64(ctx.Var("$tbl."+fq+".laid", 16))
			actionName := "?"
			if ctl := prog.Controls[parts[0]]; ctl != nil {
				if tbl := ctl.Tables[parts[1]]; tbl != nil {
					var installable []string
					for _, an := range tbl.Actions {
						if !tbl.DefaultOnly[an] {
							installable = append(installable, an)
						}
					}
					if len(installable) > 0 {
						idx := 0
						for i, an := range tbl.Actions {
							if uint64(i+1) == laid && !tbl.DefaultOnly[an] {
								idx = indexOf(installable, an)
							}
						}
						actionName = installable[idx]
					}
				}
			}
			if hit {
				// Include the repaired action's parameter values, read from
				// the function variable's argument slots.
				argsText := ""
				if ctl := prog.Controls[parts[0]]; ctl != nil && actionName != "?" {
					if act := ctl.Actions[actionName]; act != nil && len(act.Params) > 0 {
						vals := make([]string, len(act.Params))
						for j, pm := range act.Params {
							av := model.Uint64(ctx.Var(fmt.Sprintf("$tbl.%s.arg.%s.%d", fq, actionName, j), pm.Width))
							vals[j] = fmt.Sprintf("%d", av)
						}
						argsText = "(" + strings.Join(vals, ", ") + ")"
					}
				}
				suggested[fq] = fmt.Sprintf("install an entry matching the counterexample packet with action %s%s", actionName, argsText)
			} else {
				suggested[fq] = "remove the entries matching the counterexample packet (miss/default behaviour fixes it)"
			}
		}
	}
	return out, suggested, true, nil
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// locateProgramBug implements §5.2's program-bug algorithm.
func locateProgramBug(prog *p4.Program, snap *tables.Snapshot, spec *lpi.Spec,
	vopts verify.Options, frozen []frozenVar, baseRep *verify.Report) ([]Candidate, int, error) {
	// (1) Backward taint: variables of the violated assertions seed the
	// taint set; any action assigning a tainted variable is a suspect and
	// its right-hand-side variables become tainted too.
	taint := map[string]bool{}
	for _, v := range baseRep.Violations {
		for _, t := range smt.Vars(v.Cond) {
			name := strings.TrimPrefix(t.Name, "pkt.")
			name = strings.TrimPrefix(name, "$init.")
			if strings.Contains(name, ".") && !strings.ContainsAny(name, "$!#") {
				taint[name] = true
			}
		}
	}
	suspects := map[actionKey]map[string]bool{} // action -> assigned tainted vars
	pool := 0
	for _, ctlName := range sortedNames(prog.Controls) {
		ctl := prog.Controls[ctlName]
		for _, an := range ctl.Order {
			if act, ok := ctl.Actions[an]; ok {
				pool += len(assignedVars(act.Body))
			}
		}
	}
	// Fixpoint: propagate taint backward through assignments.
	for changed := true; changed; {
		changed = false
		for _, ctlName := range sortedNames(prog.Controls) {
			ctl := prog.Controls[ctlName]
			for _, an := range ctl.Order {
				act, ok := ctl.Actions[an]
				if !ok {
					continue
				}
				for lhs, rhsVars := range assignFlows(act.Body) {
					if !taint[lhs] {
						continue
					}
					key := actionKey{ctlName, an}
					if suspects[key] == nil {
						suspects[key] = map[string]bool{}
					}
					if !suspects[key][lhs] {
						suspects[key][lhs] = true
						changed = true
					}
					for _, rv := range rhsVars {
						if !taint[rv] {
							taint[rv] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// (2) Causality filter: keep actions whose execution the violation
	// implies (checked on the base encoding's $fired ghosts). The query
	// terms are built serially on the shared context; the checks fan out
	// across the verify worker pool. In incremental mode each shard blasts
	// the shared prefix (frozen input ∧ violation) once and answers every
	// owned query under an activation literal, reusing the prefix CNF and
	// learned clauses; otherwise each query gets its own fresh solver.
	ctx := baseRep.Ctx
	frozenCond := frozenTerm(ctx, frozen)
	viol := ctx.False()
	for _, v := range baseRep.Violations {
		viol = ctx.Or(viol, v.Cond)
	}
	keys := sortedActionKeys(suspects)
	prefix := ctx.And(frozenCond, viol)
	if vopts.Incremental && vopts.Simplify {
		prefix = smt.NewSimplifier(ctx).Simplify(prefix)
	}
	notFired := make([]*smt.Term, len(keys))
	queries := make([]*smt.Term, len(keys))
	for i, key := range keys {
		fired := baseRep.Env.FiredVar(key.ctl, key.act)
		// v implies fired  ⇔  unsat(v ∧ ¬fired).
		notFired[i] = ctx.Not(fired)
		queries[i] = ctx.And(prefix, notFired[i])
	}
	workers := vopts.Workers()
	if workers > 1 {
		ctx.Freeze()
	}
	o := vopts.Observer()
	implied := make([]bool, len(keys))
	endFilter := o.Phase(0, "localize:filter")
	if vopts.Incremental {
		shards := verify.StaticShards(workers, len(keys))
		verify.ForEachWorker(len(shards), len(shards), func(worker, s int) {
			shardSolver := smt.NewSolver(ctx)
			if vopts.Budget > 0 {
				shardSolver.SetBudget(vopts.Budget)
			}
			// Verdict-only queries: CNF preprocessing is safe here (the
			// model-extracting MaxSAT solver stays plain so suggested
			// repairs are unchanged).
			if vopts.Preprocess {
				shardSolver.SetPreprocess(true)
			}
			shardSolver.Assert(prefix)
			for _, i := range shards[s] {
				endSpan := o.Span(worker, "filter:"+keys[i].ctl+"."+keys[i].act)
				lit := shardSolver.Indicator(notFired[i])
				implied[i] = shardSolver.CheckLits(lit) == smt.Unsat
				endSpan()
			}
		})
	} else {
		verify.ForEachWorker(workers, len(keys), func(worker, i int) {
			endSpan := o.Span(worker, "filter:"+keys[i].ctl+"."+keys[i].act)
			filterSolver := smt.NewSolver(ctx)
			if vopts.Budget > 0 {
				filterSolver.SetBudget(vopts.Budget)
			}
			if vopts.Preprocess {
				filterSolver.SetPreprocess(true)
			}
			implied[i] = filterSolver.Check(queries[i]) == smt.Unsat
			endSpan()
		})
	}
	endFilter()
	var filtered []actionKey
	for i, key := range keys {
		if implied[i] {
			filtered = append(filtered, key)
		}
	}
	if len(filtered) == 0 {
		// Causality pruned everything (e.g. the faulty action never ran on
		// the frozen input because it is missing); fall back to the taint
		// set so step 3 can still simulate fixes.
		filtered = keys
	}

	// (3) Fix simulation: havoc each suspect variable after its action and
	// check whether some value repairs all assertions. Every simulation
	// re-encodes into its own private context, so the pairs are
	// embarrassingly parallel; results are collected by pair index, which
	// keeps the candidate order identical at every Parallel setting.
	type fixPair struct {
		key actionKey
		v   string
	}
	var pairs []fixPair
	for _, key := range filtered {
		for _, varName := range sortedSet(suspects[key]) {
			pairs = append(pairs, fixPair{key, varName})
		}
	}
	fixed := make([]bool, len(pairs))
	errs := make([]error, len(pairs))
	endFix := o.Phase(0, "localize:fix-simulation")
	verify.ForEachWorker(workers, len(pairs), func(worker, i int) {
		p := pairs[i]
		endSpan := o.Span(worker, "fix:"+p.key.ctl+"."+p.key.act+"/"+p.v)
		fixed[i], errs[i] = fixWorks(prog, snap, spec, vopts, frozen, p.key.ctl, p.key.act, p.v)
		endSpan()
	})
	endFix()
	var out []Candidate
	for i, p := range pairs {
		if errs[i] != nil {
			return nil, pool, errs[i]
		}
		if fixed[i] {
			out = append(out, Candidate{
				Control: p.key.ctl,
				Action:  p.key.act,
				Var:     p.v,
				Line:    actionLine(prog, p.key.ctl, p.key.act),
			})
		}
	}
	return out, pool, nil
}

type actionKey struct{ ctl, act string }

func sortedActionKeys(m map[actionKey]map[string]bool) []actionKey {
	out := make([]actionKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ctl != out[j].ctl {
			return out[i].ctl < out[j].ctl
		}
		return out[i].act < out[j].act
	})
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fixWorks re-encodes with a havoc of varName injected after every body of
// the action and asks whether some havoc value makes all assertions hold
// on the frozen input.
func fixWorks(prog *p4.Program, snap *tables.Snapshot, spec *lpi.Spec,
	vopts verify.Options, frozen []frozenVar, ctl, act, varName string) (bool, error) {
	ctx := smt.NewCtx()
	eopts := vopts.Encode
	eopts.TrackModified = lpi.TrackModified(spec)
	eopts.InjectHavoc = map[string][]string{ctl + "." + act: {varName}}
	env := encode.NewEnv(ctx, prog, snap, eopts)
	comp := lpi.NewCompiler(spec, env)
	program, err := comp.Compile()
	if err != nil {
		return false, err
	}
	enc := gcl.NewEncoder(ctx)
	encRes := enc.Encode(program, nil)
	solver := smt.NewSolver(ctx)
	if vopts.Budget > 0 {
		solver.SetBudget(vopts.Budget)
	}
	// A fix simulation only needs the sat/unsat verdict, so preprocessing
	// is safe.
	if vopts.Preprocess {
		solver.SetPreprocess(true)
	}
	// The simulation asserts one big conjunction; in incremental mode the
	// same simplification pass the verifier applies to its shared prefix is
	// applied here before blasting.
	conds := []*smt.Term{frozenTerm(ctx, frozen)}
	for _, v := range encRes.Violations {
		conds = append(conds, ctx.Not(v.Cond))
	}
	if vopts.Incremental && vopts.Simplify {
		simp := smt.NewSimplifier(ctx)
		for i, cond := range conds {
			conds[i] = simp.Simplify(cond)
		}
	}
	for _, cond := range conds {
		solver.Assert(cond)
	}
	return solver.Check() == smt.Sat, nil
}

// assignedVars returns the set of field paths a statement list assigns.
func assignedVars(body []p4.Stmt) map[string]bool {
	out := map[string]bool{}
	for lhs := range assignFlows(body) {
		out[lhs] = true
	}
	return out
}

// assignFlows maps each assigned field path to the field paths its
// right-hand side reads (the backward data-flow edges of §5.2 step 1).
func assignFlows(body []p4.Stmt) map[string][]string {
	out := map[string][]string{}
	var walk func(stmts []p4.Stmt)
	walk = func(stmts []p4.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *p4.AssignStmt:
				if lhs, ok := fieldPath(st.LHS); ok {
					out[lhs] = append(out[lhs], exprFields(st.RHS)...)
				}
			case *p4.RegReadStmt:
				if lhs, ok := fieldPath(st.Dst); ok {
					out[lhs] = append(out[lhs], "reg."+st.Reg)
				}
			case *p4.ExecuteMeterStmt:
				if lhs, ok := fieldPath(st.Dst); ok {
					out[lhs] = append(out[lhs], "reg."+st.Meter)
				}
			case *p4.HashStmt:
				if lhs, ok := fieldPath(st.Dst); ok {
					out[lhs] = append(out[lhs], exprFieldsList(st.Inputs)...)
				}
			case *p4.IfStmt:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(body)
	return out
}

func fieldPath(e p4.Expr) (string, bool) {
	switch x := e.(type) {
	case *p4.FieldRef:
		return x.Instance + "." + x.Field, true
	case *p4.SliceExpr:
		return fieldPath(x.X)
	}
	return "", false
}

func exprFields(e p4.Expr) []string {
	var out []string
	var walk func(p4.Expr)
	walk = func(x p4.Expr) {
		switch v := x.(type) {
		case *p4.FieldRef:
			out = append(out, v.Instance+"."+v.Field)
		case *p4.UnaryExpr:
			walk(v.X)
		case *p4.BinaryExpr:
			walk(v.X)
			walk(v.Y)
		case *p4.CastExpr:
			walk(v.X)
		case *p4.SliceExpr:
			walk(v.X)
		}
	}
	walk(e)
	return out
}

func exprFieldsList(es []p4.Expr) []string {
	var out []string
	for _, e := range es {
		out = append(out, exprFields(e)...)
	}
	return out
}

func actionLine(prog *p4.Program, ctlName, actName string) int {
	ctl := prog.Controls[ctlName]
	if ctl == nil {
		return 0
	}
	act := ctl.Actions[actName]
	if act == nil || len(act.Body) == 0 {
		return 0
	}
	switch s := act.Body[len(act.Body)-1].(type) {
	case *p4.AssignStmt:
		return s.Line
	case *p4.IfStmt:
		return s.Line
	default:
		return 0
	}
}

// String renders a localization report.
func (r *Result) String() string {
	var b strings.Builder
	switch r.Kind {
	case KindNone:
		b.WriteString("no violation: nothing to localize\n")
	case KindTableEntry:
		fmt.Fprintf(&b, "table-entry bug: replacing entries of %s fixes %v\n",
			strings.Join(r.Tables, ", "), r.Violated)
		for t, sgg := range r.SuggestedEntries {
			fmt.Fprintf(&b, "  %s: solver suggests %s\n", t, sgg)
		}
	case KindProgram:
		fmt.Fprintf(&b, "data-plane bug: %d candidate locations for %v\n",
			len(r.Candidates), r.Violated)
		for _, cand := range r.Candidates {
			fmt.Fprintf(&b, "  %s\n", cand)
		}
	}
	fmt.Fprintf(&b, "localization time: %v\n", r.Time.Round(time.Millisecond))
	return b.String()
}

func indexOf(list []string, s string) int {
	for i, v := range list {
		if v == s {
			return i
		}
	}
	return 0
}
