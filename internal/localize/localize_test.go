package localize

import (
	"strings"
	"testing"

	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/tables"
)

// ttlProgram is the paper's Figure 4 / Figure 9 setting: actions copy the
// TTL through metadata, decrement it, and write it back.
const ttlProgramGood = `
header ipv4_t { bit<8> ttl; bit<32> dst_ip; }
struct meta_t { bit<8> ttl; }
ipv4_t ipv4;
meta_t ig_md;

parser P { state start { extract(ipv4); transition accept; } }

control BugExample {
	action a1() { ig_md.ttl = ipv4.ttl; }
	action a_dec() { ig_md.ttl = ig_md.ttl - 1; }
	action a3() { ipv4.ttl = ig_md.ttl; }
	table t1 {
		key = { ipv4.dst_ip : exact; }
		actions = { a_dec; }
	}
	apply {
		a1();
		t1.apply();
		a3();
	}
}
pipeline pl { parser = P; control = BugExample; }
`

// ttlProgramMissing drops the decrement (Figure 4's statement-missing bug):
// table t1 still matches but its action no longer decrements.
const ttlProgramMissing = `
header ipv4_t { bit<8> ttl; bit<32> dst_ip; }
struct meta_t { bit<8> ttl; }
ipv4_t ipv4;
meta_t ig_md;

parser P { state start { extract(ipv4); transition accept; } }

control BugExample {
	action a1() { ig_md.ttl = ipv4.ttl; }
	action a_dec() { ig_md.ttl = ig_md.ttl; } // bug: decrement missing
	action a3() { ipv4.ttl = ig_md.ttl; }
	table t1 {
		key = { ipv4.dst_ip : exact; }
		actions = { a_dec; }
	}
	apply {
		a1();
		t1.apply();
		a3();
	}
}
pipeline pl { parser = P; control = BugExample; }
`

const ttlSpec = `
assumption { init {
	pkt.$order == <ipv4>;
	pkt.ipv4.ttl > 0;
} }
assertion { post = { ipv4.ttl == @pkt.ipv4.ttl - 1; } }
program {
	assume(init);
	call(pl);
	assert(post);
}
`

func setup(t *testing.T, progSrc, specSrc string, snap *tables.Snapshot) (*p4.Program, *lpi.Spec, *tables.Snapshot) {
	t.Helper()
	prog, err := p4.ParseAndCheck("bug", progSrc)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := lpi.Parse(specSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog, spec, snap
}

func fullSnapshot() *tables.Snapshot {
	snap := tables.NewSnapshot()
	snap.Add("BugExample.t1", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Wildcard()}, Action: "a_dec", Priority: -1})
	return snap
}

func TestNoViolationNothingToLocalize(t *testing.T) {
	prog, spec, snap := setup(t, ttlProgramGood, ttlSpec, fullSnapshot())
	res, err := Localize(prog, snap, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindNone {
		t.Fatalf("kind = %v, want KindNone:\n%s", res.Kind, res)
	}
}

func TestTableEntryBug(t *testing.T) {
	// Figure 9: the table's entry misses the packet (wrong key installed),
	// so the decrement never runs. Replacing t1's entries can fix it.
	prog, spec, _ := setup(t, ttlProgramGood, ttlSpec, nil)
	snap := tables.NewSnapshot()
	snap.Add("BugExample.t1", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(0xDEAD)}, Action: "a_dec", Priority: -1})
	res, err := Localize(prog, snap, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindTableEntry {
		t.Fatalf("kind = %v, want KindTableEntry:\n%s", res.Kind, res)
	}
	if len(res.Tables) != 1 || res.Tables[0] != "BugExample.t1" {
		t.Fatalf("tables = %v", res.Tables)
	}
	if res.SuggestedEntries["BugExample.t1"] == "" {
		t.Fatal("expected a suggested entry behaviour")
	}
}

func TestStatementMissingBug(t *testing.T) {
	// Figure 4: the decrement statement is missing. Entry replacement
	// cannot fix it (the only action copies ttl unchanged... it CAN fix it
	// by missing the entry? No: on a miss nothing runs either, so ttl
	// stays undecremented — unfixable by entries). Localization must fall
	// through to program-bug mode and report an action that writes
	// ig_md.ttl or ipv4.ttl.
	prog, spec, snap := setup(t, ttlProgramMissing, ttlSpec, fullSnapshot())
	res, err := Localize(prog, snap, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindProgram {
		t.Fatalf("kind = %v, want KindProgram:\n%s", res.Kind, res)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("expected candidate locations")
	}
	found := false
	for _, c := range res.Candidates {
		if (c.Var == "ig_md.ttl" || c.Var == "ipv4.ttl") && c.Control == "BugExample" {
			found = true
		}
	}
	if !found {
		t.Fatalf("candidates %v should include the ttl data flow", res.Candidates)
	}
	if res.Pool < len(res.Candidates) {
		t.Fatalf("pool %d < candidates %d", res.Pool, len(res.Candidates))
	}
}

func TestWrongStatementBug(t *testing.T) {
	// Code-error variant: the decrement subtracts 2 instead of 1.
	src := strings.Replace(ttlProgramMissing,
		"action a_dec() { ig_md.ttl = ig_md.ttl; } // bug: decrement missing",
		"action a_dec() { ig_md.ttl = ig_md.ttl - 2; } // bug: wrong constant", 1)
	prog, spec, snap := setup(t, src, ttlSpec, fullSnapshot())
	res, err := Localize(prog, snap, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindProgram {
		t.Fatalf("kind = %v, want KindProgram:\n%s", res.Kind, res)
	}
	// The faulty action must be among the candidates.
	found := false
	for _, c := range res.Candidates {
		if c.Action == "a_dec" {
			found = true
		}
	}
	if !found {
		t.Fatalf("a_dec should be a candidate, got %v", res.Candidates)
	}
}

func TestWrongEntryArgumentBug(t *testing.T) {
	// An entry with a wrong action argument: fixable by entries.
	src := `
header h_t { bit<8> v; bit<8> k; }
h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	action set(bit<8> x) { h.v = x; }
	table t { key = { h.k : exact; } actions = { set; } }
	apply { t.apply(); }
}
pipeline pl { parser = P; control = C; }
`
	spec := `
assumption { init { pkt.$order == <h>; pkt.h.k == 1; } }
assertion { post = { h.v == 42; } }
program { assume(init); call(pl); assert(post); }
`
	prog, sp, _ := setup(t, src, spec, nil)
	snap := tables.NewSnapshot()
	snap.Add("C.t", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(1)}, Action: "set", Args: []uint64{7}, Priority: -1})
	res, err := Localize(prog, snap, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindTableEntry || len(res.Tables) != 1 {
		t.Fatalf("result = %s", res)
	}
}

func TestMinimalTableSet(t *testing.T) {
	// Two tables; only the second is wrong. MaxSAT must blame exactly one.
	src := `
header h_t { bit<8> a; bit<8> b; }
h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	action setA(bit<8> x) { h.a = x; }
	action setB(bit<8> x) { h.b = x; }
	table ta { key = { h.a : exact; } actions = { setA; } }
	table tb { key = { h.b : exact; } actions = { setB; } }
	apply { ta.apply(); tb.apply(); }
}
pipeline pl { parser = P; control = C; }
`
	spec := `
assumption { init { pkt.$order == <h>; pkt.h.a == 1; pkt.h.b == 1; } }
assertion { post = { h.a == 5; h.b == 6; } }
program { assume(init); call(pl); assert(post); }
`
	prog, sp, _ := setup(t, src, spec, nil)
	snap := tables.NewSnapshot()
	snap.Add("C.ta", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(1)}, Action: "setA", Args: []uint64{5}, Priority: -1})
	snap.Add("C.tb", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(1)}, Action: "setB", Args: []uint64{99}, Priority: -1}) // wrong
	res, err := Localize(prog, snap, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindTableEntry {
		t.Fatalf("kind = %v:\n%s", res.Kind, res)
	}
	if len(res.Tables) != 1 || res.Tables[0] != "C.tb" {
		t.Fatalf("MaxSAT should blame exactly C.tb, got %v", res.Tables)
	}
}

func TestResultString(t *testing.T) {
	prog, spec, snap := setup(t, ttlProgramMissing, ttlSpec, fullSnapshot())
	res, err := Localize(prog, snap, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "data-plane bug") || !strings.Contains(s, "localization time") {
		t.Fatalf("report = %q", s)
	}
}

// TestLocalizeIncrementalDifferential pins localization outcomes across
// solving modes: the shared-prefix incremental engine (with and without
// workers) must produce the same kind, violated set, suspect tables, and
// candidate locations as the default fresh-solver mode on both a
// table-entry bug and the two program-bug stories.
func TestLocalizeIncrementalDifferential(t *testing.T) {
	wrongStmt := strings.Replace(ttlProgramMissing,
		"action a_dec() { ig_md.ttl = ig_md.ttl; } // bug: decrement missing",
		"action a_dec() { ig_md.ttl = ig_md.ttl - 2; } // bug: wrong constant", 1)
	entrySnap := tables.NewSnapshot()
	entrySnap.Add("BugExample.t1", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(0xDEAD)}, Action: "a_dec", Priority: -1})
	cases := []struct {
		name string
		src  string
		snap *tables.Snapshot
	}{
		{"statement-missing", ttlProgramMissing, fullSnapshot()},
		{"wrong-statement", wrongStmt, fullSnapshot()},
		{"table-entry", ttlProgramGood, entrySnap},
	}
	for _, c := range cases {
		prog, spec, snap := setup(t, c.src, ttlSpec, c.snap)
		base, err := Localize(prog, snap, spec, Options{})
		if err != nil {
			t.Fatalf("%s: fresh: %v", c.name, err)
		}
		for _, w := range []int{1, 2} {
			opts := Options{}
			opts.Verify.Incremental = true
			opts.Verify.Simplify = true
			opts.Verify.Parallel = w
			res, err := Localize(prog, snap, spec, opts)
			if err != nil {
				t.Fatalf("%s: incremental w=%d: %v", c.name, w, err)
			}
			if res.Kind != base.Kind {
				t.Fatalf("%s w=%d: kind = %v, fresh = %v", c.name, w, res.Kind, base.Kind)
			}
			if strings.Join(res.Violated, ",") != strings.Join(base.Violated, ",") {
				t.Errorf("%s w=%d: violated %v != fresh %v", c.name, w, res.Violated, base.Violated)
			}
			if strings.Join(res.Tables, ",") != strings.Join(base.Tables, ",") {
				t.Errorf("%s w=%d: tables %v != fresh %v", c.name, w, res.Tables, base.Tables)
			}
			if len(res.Candidates) != len(base.Candidates) {
				t.Fatalf("%s w=%d: candidates %v != fresh %v", c.name, w, res.Candidates, base.Candidates)
			}
			for i := range res.Candidates {
				if res.Candidates[i] != base.Candidates[i] {
					t.Errorf("%s w=%d: candidate[%d] %v != fresh %v",
						c.name, w, i, res.Candidates[i], base.Candidates[i])
				}
			}
			if res.Pool != base.Pool {
				t.Errorf("%s w=%d: pool %d != fresh %d", c.name, w, res.Pool, base.Pool)
			}
		}
	}
}
