package progs

import (
	"strings"
	"testing"

	"aquila/internal/lpi"
	"aquila/internal/verify"
)

func TestHandWrittenSuiteParses(t *testing.T) {
	suite := HandWrittenSuite()
	if len(suite) != 5 {
		t.Fatalf("suite = %d programs, want 5", len(suite))
	}
	wantStates := map[string]int{
		"Simple Router":        2, // start + parse_ipv4
		"NetPaxos Acceptor":    4,
		"NetPaxos Coordinator": 4,
		"NDP":                  3,
		"Flowlet Switching":    3,
	}
	for _, bm := range suite {
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if bm.Pipes != 1 {
			t.Fatalf("%s: pipes = %d", bm.Name, bm.Pipes)
		}
		if want := wantStates[bm.Name]; bm.ParserStates != want {
			t.Fatalf("%s: parser states = %d, want %d", bm.Name, bm.ParserStates, want)
		}
		if prog.LoC < 40 {
			t.Fatalf("%s: suspiciously small (%d LoC)", bm.Name, prog.LoC)
		}
	}
}

func TestSeededBugsDetected(t *testing.T) {
	for _, bm := range HandWrittenSuite() {
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		specSrc := InvalidHeaderAccessSpec(prog, bm.Calls)
		spec, err := lpi.Parse(specSrc)
		if err != nil {
			t.Fatalf("%s: %v\n%s", bm.Name, err, specSrc)
		}
		rep, err := verify.Run(prog, nil, spec, verify.Options{FindAll: true})
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if rep.Holds {
			t.Fatalf("%s: seeded invalid-header-access bug not found", bm.Name)
		}
	}
}

// TestSkewedBenchShape pins the scheduler benchmark's defining
// properties: it parses, its seeded ttl bug is found, and one assertion
// (the adder-identity-guarded stats table) dominates the solve cost —
// the deliberate straggler the work-stealing schedule exists to absorb.
func TestSkewedBenchShape(t *testing.T) {
	bm := SkewedBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := lpi.Parse(InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Run(prog, nil, spec, verify.Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("seeded ttl bug not found")
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %d, want exactly the seeded ttl bug", len(rep.Violations))
	}
	if n := len(rep.Stats.PerAssertion); n < 8 {
		t.Fatalf("assertions = %d, want a wide cheap tail around the heavy one", n)
	}
	var max, total int64
	for _, pa := range rep.Stats.PerAssertion {
		total += pa.Conflicts
		if pa.Conflicts > max {
			max = pa.Conflicts
		}
	}
	if total == 0 || max*2 < total {
		t.Fatalf("heaviest assertion carries %d of %d conflicts; the skew is the point", max, total)
	}
}

func TestSpecGeneratorShape(t *testing.T) {
	bm := HandWrittenSuite()[0]
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	spec := InvalidHeaderAccessSpec(prog, bm.Calls)
	for _, want := range []string{
		"applied(RouterIngress.ipv4_lpm)", "valid(ipv4)", "call(router)", "assert(no_invalid_access)",
	} {
		if !strings.Contains(spec, want) {
			t.Fatalf("generated spec missing %q:\n%s", want, spec)
		}
	}
	// std_meta-keyed tables must not demand header validity.
	if strings.Contains(spec, "valid(std_meta)") {
		t.Fatal("std_meta is not a header")
	}
}

func TestTableHeaders(t *testing.T) {
	bm := HandWrittenSuite()[0]
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	ctl := prog.Controls["RouterIngress"]
	hs := TableHeaders(prog, ctl, ctl.Tables["ipv4_lpm"])
	// Key reads ipv4; set_nhop writes ipv4.ttl and metadata only.
	joined := strings.Join(hs, ",")
	if !strings.Contains(joined, "ipv4") {
		t.Fatalf("headers = %v", hs)
	}
	hs2 := TableHeaders(prog, ctl, ctl.Tables["forward"])
	if !strings.Contains(strings.Join(hs2, ","), "ethernet") {
		t.Fatalf("forward should reference ethernet via set_dmac, got %v", hs2)
	}
}
