// Package progs holds the benchmark suite of §8.1 (Table 3): P4lite
// replicas of the open-source programs the paper verifies, plus accessors
// for the generated production-scale programs. Each program carries at
// least one seeded invalid-header-access bug, the benchmarking property
// the paper borrows from p4v.
package progs

import (
	"fmt"
	"sort"
	"strings"

	"aquila/internal/p4"
)

// Benchmark bundles a program with the component call order its spec uses.
type Benchmark struct {
	Name   string
	Source string
	// Calls is the LPI program-block call order.
	Calls []string
	// Meta mirrors Table 3's structural columns.
	Pipes        int
	ParserStates int
	Tables       int
}

// SimpleRouter is the classic ipv4 forwarding example (Table 3 row 1).
// Seeded bug: ipv4_lpm is applied without an ipv4.isValid() guard.
const SimpleRouter = `
// simple_router.p4 — L3 forwarding with TTL decrement.
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t {
	bit<8>  versionIhl;
	bit<8>  diffserv;
	bit<16> totalLen;
	bit<16> identification;
	bit<16> fragOffset;
	bit<8>  ttl;
	bit<8>  protocol;
	bit<16> hdrChecksum;
	bit<32> srcAddr;
	bit<32> dstAddr;
}
struct routing_metadata_t { bit<32> nhop_ipv4; }

ethernet_t ethernet;
ipv4_t ipv4;
routing_metadata_t routing_metadata;

parser RouterParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 { extract(ipv4); transition accept; }
}

control RouterIngress {
	action set_nhop(bit<32> nhop_ipv4, bit<9> port) {
		routing_metadata.nhop_ipv4 = nhop_ipv4;
		std_meta.egress_spec = port;
		ipv4.ttl = ipv4.ttl - 1;
	}
	action set_dmac(bit<48> dmac) { ethernet.dstAddr = dmac; }
	action rewrite_mac(bit<48> smac) { ethernet.srcAddr = smac; }
	action a_drop() { drop(); }
	table ipv4_lpm {
		key = { ipv4.dstAddr : lpm; }
		actions = { set_nhop; a_drop; }
		default_action = a_drop;
	}
	table forward {
		key = { routing_metadata.nhop_ipv4 : exact; }
		actions = { set_dmac; a_drop; }
		default_action = a_drop;
	}
	table send_frame {
		key = { std_meta.egress_port : exact; }
		actions = { rewrite_mac; a_drop; }
		default_action = a_drop;
	}
	table acl {
		key = { ipv4.srcAddr : ternary; }
		actions = { a_drop; }
	}
	apply {
		// BUG(seeded): ipv4_lpm reads ipv4.dstAddr without checking
		// ipv4.isValid() — a non-IPv4 packet reaches the table.
		ipv4_lpm.apply();
		if (ipv4.isValid()) {
			forward.apply();
			acl.apply();
		}
		send_frame.apply();
	}
}

deparser RouterDeparser {
	emit(ethernet);
	emit(ipv4);
	update_checksum(ipv4.hdrChecksum, ipv4.versionIhl, ipv4.ttl, ipv4.protocol, ipv4.srcAddr, ipv4.dstAddr);
}

pipeline router { parser = RouterParser; control = RouterIngress; deparser = RouterDeparser; }
`

// NetPaxosAcceptor replicates the SOSR'15 NetPaxos acceptor (row 2).
// Seeded bug: paxos fields accessed when only the UDP branch guarantees
// extraction.
const NetPaxosAcceptor = `
// netpaxos_acceptor.p4 — Paxos acceptor logic in the data plane.
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src; bit<32> dst; }
header udp_t { bit<16> srcPort; bit<16> dstPort; bit<16> length_; bit<16> checksum; }
header paxos_t {
	bit<32> inst;
	bit<16> proposal;
	bit<16> vproposal;
	bit<8>  msgtype;
	bit<32> acpt;
	bit<32> val;
}
struct local_md_t { bit<16> round; bit<1> set_drop; }

ethernet_t ethernet;
ipv4_t ipv4;
udp_t udp;
paxos_t paxos;
local_md_t local_md;

register<bit<16>>(64000) rounds_register;
register<bit<16>>(64000) vproposals_register;
register<bit<32>>(64000) vals_register;

parser AcceptorParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			17: parse_udp;
			default: accept;
		}
	}
	state parse_udp {
		extract(udp);
		transition select(udp.dstPort) {
			0x8888: parse_paxos;
			default: accept;
		}
	}
	state parse_paxos { extract(paxos); transition accept; }
}

control AcceptorIngress {
	action read_round() {
		rounds_register.read(local_md.round, 0);
		local_md.set_drop = 1;
	}
	action handle_1a() {
		rounds_register.write(0, paxos.proposal);
		vproposals_register.read(paxos.vproposal, 0);
		vals_register.read(paxos.val, 0);
		paxos.msgtype = 2;
	}
	action handle_2a() {
		rounds_register.write(0, paxos.proposal);
		vproposals_register.write(0, paxos.proposal);
		vals_register.write(0, paxos.val);
		paxos.msgtype = 4;
	}
	action a_drop() { drop(); }
	action forward(bit<9> port) { std_meta.egress_spec = port; }
	table round_tbl {
		key = { }
		actions = { read_round; }
		default_action = read_round;
	}
	table paxos_tbl {
		key = { paxos.msgtype : exact; }
		actions = { handle_1a; handle_2a; a_drop; }
		default_action = a_drop;
	}
	table fwd_tbl {
		key = { std_meta.ingress_port : exact; }
		actions = { forward; a_drop; }
		default_action = a_drop;
	}
	table drop_tbl {
		key = { local_md.set_drop : exact; }
		actions = { a_drop; }
	}
	apply {
		// BUG(seeded): paxos_tbl keyed on paxos.msgtype is reachable for
		// non-Paxos packets (no udp/paxos validity guard).
		round_tbl.apply();
		if (paxos.msgtype < 8) {
			paxos_tbl.apply();
		}
		fwd_tbl.apply();
		drop_tbl.apply();
	}
}

deparser AcceptorDeparser { emit(ethernet); emit(ipv4); emit(udp); emit(paxos); }
pipeline acceptor { parser = AcceptorParser; control = AcceptorIngress; deparser = AcceptorDeparser; }
`

// NetPaxosCoordinator replicates the NetPaxos coordinator (row 3).
const NetPaxosCoordinator = `
// netpaxos_coordinator.p4 — assigns Paxos instance numbers.
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src; bit<32> dst; }
header udp_t { bit<16> srcPort; bit<16> dstPort; bit<16> length_; bit<16> checksum; }
header paxos_t { bit<32> inst; bit<16> proposal; bit<8> msgtype; }

ethernet_t ethernet;
ipv4_t ipv4;
udp_t udp;
paxos_t paxos;

register<bit<32>>(1) instance_register;

parser CoordParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			17: parse_udp;
			default: accept;
		}
	}
	state parse_udp {
		extract(udp);
		transition select(udp.dstPort) {
			0x8888: parse_paxos;
			default: accept;
		}
	}
	state parse_paxos { extract(paxos); transition accept; }
}

control CoordIngress {
	action increase_instance() {
		// BUG(seeded): paxos.inst written without a validity guard on the
		// paxos header.
		instance_register.read(paxos.inst, 0);
		paxos.inst = paxos.inst + 1;
		instance_register.write(0, paxos.inst);
	}
	action forward(bit<9> port) { std_meta.egress_spec = port; }
	table seq_tbl {
		key = { paxos.msgtype : exact; }
		actions = { increase_instance; }
	}
	table fwd_tbl {
		key = { std_meta.ingress_port : exact; }
		actions = { forward; }
	}
	apply {
		seq_tbl.apply();
		fwd_tbl.apply();
	}
}

deparser CoordDeparser { emit(ethernet); emit(ipv4); emit(udp); emit(paxos); }
pipeline coordinator { parser = CoordParser; control = CoordIngress; deparser = CoordDeparser; }
`

// NDP replicates the SIGCOMM'17 NDP switch component (row 4): trimming
// and priority queueing for a receiver-driven transport.
const NDP = `
// ndp.p4 — NDP switch: trim payloads under congestion, bounce headers.
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> tos; bit<16> totalLen; bit<8> ttl; bit<8> protocol; bit<32> src; bit<32> dst; }
header ndp_t { bit<16> flags; bit<16> pull; bit<32> seq; }
struct ndp_md_t { bit<1> trimmed; bit<1> bounced; bit<8> qdepth; }

ethernet_t ethernet;
ipv4_t ipv4;
ndp_t ndp;
ndp_md_t ndp_md;

parser NDPParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			0x99: parse_ndp;
			default: accept;
		}
	}
	state parse_ndp { extract(ndp); transition accept; }
}

control NDPIngress {
	action route(bit<9> port) { std_meta.egress_spec = port; ipv4.ttl = ipv4.ttl - 1; }
	action trim() { ndp_md.trimmed = 1; ipv4.totalLen = 64; }
	action bounce() {
		ndp_md.bounced = 1;
		ipv4.dst = ipv4.src;
		ipv4.src = ipv4.dst;
	}
	action set_prio_high() { ipv4.tos = 1; }
	action set_prio_low() { ipv4.tos = 0; }
	action a_drop() { drop(); }
	action mark_pull() { ndp.pull = ndp.pull + 1; }
	table route_tbl {
		key = { ipv4.dst : lpm; }
		actions = { route; a_drop; }
		default_action = a_drop;
	}
	table trim_tbl {
		key = { ndp_md.qdepth : range; }
		actions = { trim; a_drop; }
	}
	table bounce_tbl {
		key = { ndp.flags : ternary; }
		actions = { bounce; }
	}
	table prio_tbl {
		key = { ndp_md.trimmed : exact; }
		actions = { set_prio_high; set_prio_low; }
		default_action = set_prio_low;
	}
	table pull_tbl {
		key = { ndp.flags : exact; }
		actions = { mark_pull; }
	}
	table ctrl_tbl {
		key = { std_meta.ingress_port : exact; }
		actions = { a_drop; }
	}
	table dbg_tbl {
		key = { ipv4.ttl : exact; }
		actions = { a_drop; }
	}
	apply {
		if (ipv4.isValid()) {
			route_tbl.apply();
			trim_tbl.apply();
			// BUG(seeded): bounce_tbl and pull_tbl key on the ndp header
			// without ndp.isValid() — ipv4 packets that are not NDP reach
			// them.
			bounce_tbl.apply();
			pull_tbl.apply();
			prio_tbl.apply();
		}
		ctrl_tbl.apply();
		dbg_tbl.apply();
	}
}

deparser NDPDeparser { emit(ethernet); emit(ipv4); emit(ndp); }
pipeline ndp_switch { parser = NDPParser; control = NDPIngress; deparser = NDPDeparser; }
`

// FlowletSwitching replicates the flowlet load-balancing example (row 5).
const FlowletSwitching = `
// flowlet_switching.p4 — hash-based flowlet ECMP.
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src; bit<32> dst; }
header tcp_t { bit<16> srcPort; bit<16> dstPort; bit<32> seqNo; }
struct flowlet_md_t {
	bit<16> flowlet_id;
	bit<16> flowlet_map_index;
	bit<32> flowlet_lasttime;
	bit<16> ecmp_offset;
}

ethernet_t ethernet;
ipv4_t ipv4;
tcp_t tcp;
flowlet_md_t flowlet_md;

register<bit<16>>(8192) flowlet_id_reg;
register<bit<32>>(8192) flowlet_lasttime_reg;

parser FlowletParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			6: parse_tcp;
			default: accept;
		}
	}
	state parse_tcp { extract(tcp); transition accept; }
}

control FlowletIngress {
	action lookup_flowlet_map() {
		hash(flowlet_md.flowlet_map_index, ipv4.src, ipv4.dst, tcp.srcPort, tcp.dstPort);
		flowlet_id_reg.read(flowlet_md.flowlet_id, 0);
		flowlet_lasttime_reg.read(flowlet_md.flowlet_lasttime, 0);
	}
	action update_flowlet_id() {
		flowlet_md.flowlet_id = flowlet_md.flowlet_id + 1;
		flowlet_id_reg.write(0, flowlet_md.flowlet_id);
	}
	action set_ecmp_select(bit<16> base, bit<16> count) {
		hash(flowlet_md.ecmp_offset, ipv4.src, ipv4.dst);
		flowlet_md.ecmp_offset = flowlet_md.ecmp_offset & (count - 1);
		flowlet_md.ecmp_offset = flowlet_md.ecmp_offset + base;
	}
	action set_nhop(bit<9> port) { std_meta.egress_spec = port; ipv4.ttl = ipv4.ttl - 1; }
	action a_drop() { drop(); }
	table flowlet_tbl {
		key = { }
		actions = { lookup_flowlet_map; }
		default_action = lookup_flowlet_map;
	}
	table new_flowlet_tbl {
		key = { flowlet_md.flowlet_lasttime : range; }
		actions = { update_flowlet_id; }
	}
	table ecmp_group {
		key = { ipv4.dst : lpm; }
		actions = { set_ecmp_select; a_drop; }
		default_action = a_drop;
	}
	table ecmp_nhop {
		key = { flowlet_md.ecmp_offset : exact; }
		actions = { set_nhop; a_drop; }
		default_action = a_drop;
	}
	table forward_tbl {
		key = { ethernet.dst : exact; }
		actions = { set_nhop; }
	}
	table dbg_tbl {
		key = { ipv4.ttl : exact; }
		actions = { a_drop; }
	}
	apply {
		// BUG(seeded): flowlet hashing reads tcp ports without tcp
		// validity.
		flowlet_tbl.apply();
		new_flowlet_tbl.apply();
		if (ipv4.isValid()) {
			ecmp_group.apply();
			ecmp_nhop.apply();
		}
		forward_tbl.apply();
		dbg_tbl.apply();
	}
}

deparser FlowletDeparser { emit(ethernet); emit(ipv4); emit(tcp); }
pipeline flowlet { parser = FlowletParser; control = FlowletIngress; deparser = FlowletDeparser; }
`

// DCGateway is a larger hand-written program modelled on a data-center
// VXLAN gateway: VLAN-aware underlay, VXLAN termination, VNI translation,
// inner-Ethernet forwarding and ECMP over an L4 hash. With 10 tables
// touching 6 header instances it yields 13 invalid-header-access
// obligations — enough per-assertion work to exercise the parallel
// verification engine (it backs BENCH_parallel.json).
// Seeded bugs: vtep_tbl/vni_xlate_tbl read vxlan without vxlan.isValid(),
// ecmp_tbl hashes udp ports without udp validity, inner_fwd_tbl keys on
// the inner Ethernet header unguarded, and vlan_xlate_tbl rewrites the
// vlan tag without vlan.isValid().
const DCGateway = `
// dc_gateway.p4 — VXLAN data-center gateway: terminate tunnels, translate
// VNIs, forward on the inner Ethernet header, ECMP on an L4 hash.
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header vlan_t { bit<3> pcp; bit<12> vid; bit<16> etherType; }
header ipv4_t { bit<8> tos; bit<16> totalLen; bit<8> ttl; bit<8> protocol; bit<32> src; bit<32> dst; }
header udp_t { bit<16> srcPort; bit<16> dstPort; bit<16> length; }
header vxlan_t { bit<8> flags; bit<24> vni; }
header inner_ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct gw_md_t {
	bit<1> terminated;
	bit<16> l4_hash;
	bit<16> ecmp_offset;
	bit<16> conn_seen;
	bit<24> dst_vni;
}

ethernet_t ethernet;
vlan_t vlan;
ipv4_t ipv4;
udp_t udp;
vxlan_t vxlan;
inner_ethernet_t inner_ethernet;
gw_md_t gw_md;

register<bit<16>>(4096) conn_reg;

parser GatewayParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x8100: parse_vlan;
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_vlan {
		extract(vlan);
		transition select(vlan.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			17: parse_udp;
			default: accept;
		}
	}
	state parse_udp {
		extract(udp);
		transition select(udp.dstPort) {
			4789: parse_vxlan;
			default: accept;
		}
	}
	state parse_vxlan { extract(vxlan); transition parse_inner; }
	state parse_inner { extract(inner_ethernet); transition accept; }
}

control GatewayIngress {
	action terminate() {
		gw_md.terminated = 1;
		gw_md.dst_vni = vxlan.vni;
	}
	action set_out_vni(bit<24> vni) { vxlan.vni = vni; }
	action compute_hash() {
		hash(gw_md.l4_hash, ipv4.src, ipv4.dst, udp.srcPort, udp.dstPort);
		gw_md.ecmp_offset = gw_md.l4_hash & 7;
		conn_reg.read(gw_md.conn_seen, 0);
		conn_reg.write(0, gw_md.conn_seen + 1);
	}
	action set_nhop(bit<9> port) { std_meta.egress_spec = port; ipv4.ttl = ipv4.ttl - 1; }
	action inner_nhop(bit<9> port) { std_meta.egress_spec = port; }
	action rewrite_vlan(bit<12> vid) { vlan.vid = vid; }
	action set_pcp(bit<3> p) { vlan.pcp = p; }
	action a_drop() { drop(); }
	table vtep_tbl {
		key = { ipv4.dst : lpm; }
		actions = { terminate; a_drop; }
	}
	table vni_xlate_tbl {
		key = { vxlan.vni : exact; }
		actions = { set_out_vni; }
	}
	table ecmp_tbl {
		key = { ipv4.protocol : exact; }
		actions = { compute_hash; }
	}
	table ecmp_nhop_tbl {
		key = { gw_md.ecmp_offset : exact; }
		actions = { set_nhop; a_drop; }
		default_action = a_drop;
	}
	table ttl_tbl {
		key = { ipv4.ttl : exact; }
		actions = { a_drop; }
	}
	table acl_tbl {
		key = { ipv4.src : ternary; udp.dstPort : ternary; }
		actions = { a_drop; }
	}
	table inner_fwd_tbl {
		key = { inner_ethernet.dst : exact; }
		actions = { inner_nhop; a_drop; }
		default_action = a_drop;
	}
	table vlan_xlate_tbl {
		key = { vlan.vid : exact; }
		actions = { rewrite_vlan; }
	}
	table qos_tbl {
		key = { vlan.pcp : exact; }
		actions = { set_pcp; }
	}
	table dbg_tbl {
		key = { ethernet.etherType : exact; }
		actions = { a_drop; }
	}
	apply {
		if (ipv4.isValid()) {
			// BUG(seeded): vtep_tbl copies vxlan.vni and vni_xlate_tbl
			// rewrites it without vxlan.isValid() — plain ipv4 packets
			// reach both.
			vtep_tbl.apply();
			vni_xlate_tbl.apply();
			// BUG(seeded): ecmp hashing reads udp ports without udp
			// validity.
			ecmp_tbl.apply();
			ecmp_nhop_tbl.apply();
			ttl_tbl.apply();
			if (udp.isValid()) {
				acl_tbl.apply();
			}
		}
		// BUG(seeded): inner_fwd_tbl keys on inner_ethernet with no guard
		// — only the vxlan path parses it.
		inner_fwd_tbl.apply();
		// BUG(seeded): vlan rewrite without vlan.isValid().
		vlan_xlate_tbl.apply();
		if (vlan.isValid()) {
			qos_tbl.apply();
		}
		dbg_tbl.apply();
	}
}

deparser GatewayDeparser { emit(ethernet); emit(vlan); emit(ipv4); emit(udp); emit(vxlan); emit(inner_ethernet); }
pipeline dc_gateway { parser = GatewayParser; control = GatewayIngress; deparser = GatewayDeparser; }
`

// SkewedTelemetry is a deliberately load-imbalanced benchmark for the
// scheduler experiments: a dozen cheap table obligations (tag/ethernet
// lookups whose validity proofs close in a handful of conflicts) plus one
// heavy one — stats_tbl is applied only when the carry-recurrence adder
// identity (a^b) + ((a&b)<<1) == a+b fails on two independent 32-bit field
// pairs, so proving it unreachable forces the SAT core to refute the
// identity bit-by-bit twice. Under static index sharding the shard owning
// stats_tbl grinds while the rest idle (a high obs straggler index); work
// stealing redistributes everything else. Seeded bug: ttl_tbl reads
// tag.ttl without a tag.isValid() guard.
const SkewedTelemetry = `
// skewed_telemetry.p4 — INT-style telemetry with one pathological check.
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header tag_t { bit<16> id; bit<16> cls; bit<8> ttl; bit<8> hop; }
header probe_t { bit<32> a; bit<32> b; bit<32> c; bit<32> d; }
struct skew_md_t { bit<16> bucket; bit<16> zone; }

ethernet_t ethernet;
tag_t tag;
probe_t probe;
skew_md_t skew_md;

parser SkewParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x8100: parse_tag;
			0x9100: parse_probe;
			default: accept;
		}
	}
	state parse_tag { extract(tag); transition accept; }
	state parse_probe { extract(probe); transition accept; }
}

control SkewIngress {
	action set_bucket(bit<16> b) { skew_md.bucket = b; }
	action set_zone(bit<16> z) { skew_md.zone = z; }
	action mark(bit<8> m) { tag.hop = m; }
	action decay() { tag.ttl = tag.ttl - 1; }
	action note(bit<32> v) { probe.d = v; }
	action fwd(bit<9> port) { std_meta.egress_spec = port; }
	action a_drop() { drop(); }
	table cls_tbl { key = { tag.cls : exact; } actions = { set_bucket; a_drop; } default_action = a_drop; }
	table id_tbl { key = { tag.id : exact; } actions = { set_zone; a_drop; } default_action = a_drop; }
	table hop_tbl { key = { tag.hop : exact; } actions = { mark; a_drop; } default_action = a_drop; }
	table zone_tbl { key = { tag.id : ternary; } actions = { set_zone; a_drop; } default_action = a_drop; }
	table bucket_tbl { key = { tag.cls : ternary; } actions = { set_bucket; a_drop; } default_action = a_drop; }
	table ttl_tbl { key = { tag.ttl : exact; } actions = { decay; a_drop; } default_action = a_drop; }
	table stats_tbl { key = { probe.c : exact; } actions = { note; a_drop; } default_action = a_drop; }
	table l2_tbl { key = { ethernet.dst : exact; } actions = { fwd; a_drop; } default_action = a_drop; }
	table punt_tbl { key = { ethernet.etherType : exact; } actions = { fwd; a_drop; } default_action = a_drop; }
	apply {
		if (tag.isValid()) {
			cls_tbl.apply();
			id_tbl.apply();
			hop_tbl.apply();
			zone_tbl.apply();
			bucket_tbl.apply();
		}
		// BUG(seeded): ttl_tbl reads tag.ttl without checking tag.isValid().
		ttl_tbl.apply();
		// The adder identity (x ^ y) + ((x & y) << 1) == x + y holds for
		// every bit pattern, so stats_tbl is dead code — but proving that
		// means refuting the identity over two independent 32-bit pairs,
		// the one expensive obligation in an otherwise cheap program.
		if ((((probe.a ^ probe.b) + ((probe.a & probe.b) << 1)) != (probe.a + probe.b)) ||
		    (((probe.c ^ probe.d) + ((probe.c & probe.d) << 1)) != (probe.c + probe.d))) {
			stats_tbl.apply();
		}
		l2_tbl.apply();
		punt_tbl.apply();
	}
}

deparser SkewDeparser { emit(ethernet); emit(tag); emit(probe); }
pipeline skew { parser = SkewParser; control = SkewIngress; deparser = SkewDeparser; }
`

// DCGatewayBench returns the DC gateway as a benchmark. It is not part of
// HandWrittenSuite — Table 3 pins exactly five rows — but backs the
// parallel-engine experiment, which needs a program with many independent
// assertion obligations.
func DCGatewayBench() *Benchmark {
	return &Benchmark{Name: "DC Gateway", Source: DCGateway, Calls: []string{"dc_gateway"}}
}

// SkewedBench returns the skewed-telemetry program as a benchmark. Like
// the DC gateway it sits outside HandWrittenSuite: it exists to make
// scheduler load imbalance measurable (one assertion dominates total solve
// time even on a single-CPU host), backing the work-stealing experiment
// and the CI straggler-index gate.
func SkewedBench() *Benchmark {
	return &Benchmark{Name: "Skewed Telemetry", Source: SkewedTelemetry, Calls: []string{"skew"}}
}

// HandWrittenSuite lists the manually-written benchmarks (Table 3 rows
// 1-5).
func HandWrittenSuite() []*Benchmark {
	return []*Benchmark{
		{Name: "Simple Router", Source: SimpleRouter, Calls: []string{"router"}},
		{Name: "NetPaxos Acceptor", Source: NetPaxosAcceptor, Calls: []string{"acceptor"}},
		{Name: "NetPaxos Coordinator", Source: NetPaxosCoordinator, Calls: []string{"coordinator"}},
		{Name: "NDP", Source: NDP, Calls: []string{"ndp_switch"}},
		{Name: "Flowlet Switching", Source: FlowletSwitching, Calls: []string{"flowlet"}},
	}
}

// Parse compiles a benchmark's source.
func (b *Benchmark) Parse() (*p4.Program, error) {
	prog, err := p4.ParseAndCheck(b.Name, b.Source)
	if err != nil {
		return nil, err
	}
	b.Pipes = len(prog.Pipelines)
	b.Tables = 0
	for _, ctl := range prog.Controls {
		for _, n := range ctl.Order {
			if _, ok := ctl.Tables[n]; ok {
				b.Tables++
			}
		}
	}
	b.ParserStates = 0
	for _, pr := range prog.Parsers {
		b.ParserStates += len(pr.States)
	}
	return prog, nil
}

// InvalidHeaderAccessSpec builds the §8.1 benchmark property for a
// program: every table that reads a header (in its keys or actions) must
// only be applied when that header is valid. The seeded bugs violate it.
func InvalidHeaderAccessSpec(prog *p4.Program, calls []string) string {
	var items []string
	for _, ctlName := range sortedNames(prog.Controls) {
		ctl := prog.Controls[ctlName]
		for _, tn := range ctl.Order {
			tbl, ok := ctl.Tables[tn]
			if !ok {
				continue
			}
			for _, h := range TableHeaders(prog, ctl, tbl) {
				items = append(items, fmt.Sprintf("!applied(%s.%s) || valid(%s);", ctlName, tn, h))
			}
		}
	}
	var b strings.Builder
	b.WriteString("assertion {\n\tno_invalid_access = {\n")
	for _, it := range items {
		b.WriteString("\t\t" + it + "\n")
	}
	b.WriteString("\t}\n}\nprogram {\n")
	for _, c := range calls {
		fmt.Fprintf(&b, "\tcall(%s);\n", c)
	}
	b.WriteString("\tassert(no_invalid_access);\n}\n")
	return b.String()
}

// TableHeaders lists the header instances a table's keys and actions read
// or write.
func TableHeaders(prog *p4.Program, ctl *p4.Control, tbl *p4.Table) []string {
	set := map[string]bool{}
	addExpr := func(e p4.Expr) {
		for _, name := range exprHeaderRefs(prog, e) {
			set[name] = true
		}
	}
	for _, k := range tbl.Keys {
		addExpr(k.Expr)
	}
	for _, an := range tbl.Actions {
		act := ctl.Actions[an]
		if act == nil {
			continue
		}
		var walk func(stmts []p4.Stmt)
		walk = func(stmts []p4.Stmt) {
			for _, s := range stmts {
				switch st := s.(type) {
				case *p4.AssignStmt:
					addExpr(st.LHS)
					addExpr(st.RHS)
				case *p4.IfStmt:
					addExpr(st.Cond)
					walk(st.Then)
					walk(st.Else)
				case *p4.RegReadStmt:
					addExpr(st.Dst)
					addExpr(st.Index)
				case *p4.RegWriteStmt:
					addExpr(st.Index)
					addExpr(st.Val)
				case *p4.HashStmt:
					addExpr(st.Dst)
					for _, in := range st.Inputs {
						addExpr(in)
					}
				}
			}
		}
		walk(act.Body)
	}
	var out []string
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func exprHeaderRefs(prog *p4.Program, e p4.Expr) []string {
	var out []string
	var walk func(p4.Expr)
	walk = func(x p4.Expr) {
		switch v := x.(type) {
		case *p4.FieldRef:
			if inst := prog.Instance(v.Instance); inst != nil && inst.IsHeader {
				out = append(out, v.Instance)
			}
		case *p4.UnaryExpr:
			walk(v.X)
		case *p4.BinaryExpr:
			walk(v.X)
			walk(v.Y)
		case *p4.CastExpr:
			walk(v.X)
		case *p4.SliceExpr:
			walk(v.X)
		}
	}
	walk(e)
	return out
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
