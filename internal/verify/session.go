package verify

import (
	"fmt"
	"sort"
	"time"

	"aquila/internal/encode"
	"aquila/internal/gcl"
	"aquila/internal/lpi"
	"aquila/internal/obs"
	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

// Session is the delta re-verification engine: load a program and a
// table snapshot once, then re-verify cheaply as the control plane
// churns entries. It keeps warm, across every applied tables.Delta:
//
//   - the hash-consed term context (never frozen, never released during
//     normal operation), so re-encoding the program over the mutated
//     snapshot re-interns every formula a delta did not touch to the
//     SAME pointer — pointer identity over the warm context IS the
//     change detector;
//   - the cone-of-influence slicer with its factorization and
//     variable-support memos, so only conjunct lists involving new
//     terms are re-factored;
//   - one shared incremental SAT solver whose blasted CNF and learned
//     clauses persist across checks and across deltas ("blast once,
//     re-check little"), with stale activation literals retired
//     (unfrozen) so CNF preprocessing may reclaim dead cones;
//   - a per-assertion verdict cache replayed when a condition is
//     pointer-unchanged.
//
// Replay rules (the determinism contract, see DESIGN.md):
//
//   - full condition pointer unchanged, cached verdict Sat or Unsat →
//     replay the verdict and the cached Violation. The cached model came
//     from a deterministic fresh solver on this very term, so the bytes
//     are what a fresh run would produce.
//   - sliced condition pointer unchanged and cached verdict Unsat →
//     replay Unsat. The slice K and the dropped remainder D have
//     disjoint variable supports, so Unsat(K) implies Unsat(K ∧ D') for
//     every remainder D' — a delta that changes only dropped conjuncts
//     cannot make a held assertion fail.
//   - anything else (changed slice, cached Sat under a changed full
//     condition, cached Unknown) → re-check on the warm shared solver
//     with the same canonicalization the incremental engine uses: a Sat
//     is re-solved on the full condition by a deterministic fresh
//     solver, a sliced Sat whose full condition is Unsat becomes Unsat,
//     a contradiction surfaces as Unknown.
//
// Under those rules every Apply report's CanonicalJSON is byte-identical
// to a fresh verify.Run on the mutated snapshot, with budget-exhaustion
// (Unknown) verdicts the same documented exception incremental mode has.
type Session struct {
	prog *p4.Program
	spec *lpi.Spec
	opts Options

	ctx  *smt.Ctx
	mark int // arena watermark at creation, for Compact
	snap *tables.Snapshot

	slicer *slicer

	// Warm shared solver state. live tracks conditions with an active
	// (frozen) indicator on the current solver; retiring a condition
	// unfreezes its indicator, and re-checking a retired condition simply
	// re-freezes it, so no condition ever forces a rebuild.
	solver *smt.Solver
	prev   smt.SolverStats
	live   map[*smt.Term]bool

	cache []sessionEntry
	fqs   []string // all fq table names of the program

	// deps is the fq table -> assertion labels index, built lazily from
	// the latest run's slices (depsEnv/depsConds/depsCheck) the first time
	// Affected is called after an Apply: the index is predictive only, so
	// the DAG walks that build it stay off the per-delta hot path.
	deps      map[string][]string
	depsEnv   *encode.Env
	depsConds []*gcl.Violation
	depsCheck []*smt.Term

	base  *Report
	stats SessionStats
}

// sessionEntry caches one assertion's last verdict, keyed positionally
// (the assertion list is structurally stable across deltas — same spec,
// same program).
type sessionEntry struct {
	label      string
	fullCond   *smt.Term
	slicedCond *smt.Term
	status     smt.Status
	violation  *Violation // non-nil iff status == Sat
}

// SessionStats are the session's cumulative warm-path counters.
type SessionStats struct {
	// Deltas is the number of Apply calls.
	Deltas int
	// ReuseHits counts verdicts replayed from the cache; Rechecks counts
	// assertions re-solved (baseline checks included).
	ReuseHits int64
	Rechecks  int64
	// Retired counts stale indicators released (unfrozen) so CNF
	// preprocessing may reclaim their cones.
	Retired int64
}

// NewSession loads prog + snap once and runs the baseline verification.
// snap may be nil (any-entries mode); Apply then installs the first
// entries. The session forces find-all + slicing (its replay rules are
// built on cone-of-influence slices) and owns a clone of snap.
func NewSession(prog *p4.Program, snap *tables.Snapshot, spec *lpi.Spec, opts Options) (*Session, error) {
	opts.Session = true
	opts.FindAll = true
	opts.Slice = true
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ctx := smt.NewCtx()
	s := &Session{
		prog:   prog,
		spec:   spec,
		opts:   opts,
		ctx:    ctx,
		mark:   ctx.Mark(),
		snap:   snap.Clone(),
		slicer: newSlicer(ctx),
		live:   map[*smt.Term]bool{},
	}
	for ctlName, ctl := range prog.Controls {
		for tname := range ctl.Tables {
			s.fqs = append(s.fqs, ctlName+"."+tname)
		}
	}
	sort.Strings(s.fqs)
	rep, err := s.run(nil)
	if err != nil && err != ErrBudget {
		return nil, err
	}
	s.base = rep
	return s, err
}

// Baseline returns the report of the session's initial full run.
func (s *Session) Baseline() *Report { return s.base }

// Ctx exposes the session's warm term context (tooling and tests).
func (s *Session) Ctx() *smt.Ctx { return s.ctx }

// Snapshot returns a clone of the session's current table snapshot (the
// baseline snapshot with every applied delta folded in).
func (s *Session) Snapshot() *tables.Snapshot { return s.snap.Clone() }

// SessionStats returns the cumulative warm-path counters.
func (s *Session) SessionStats() SessionStats { return s.stats }

// Apply folds delta into the session snapshot and re-verifies: the
// program is re-encoded over the warm context, conditions are re-sliced
// through the memoized slicer, pointer-unchanged verdicts are replayed,
// and the rest are re-solved on the warm shared solver. The returned
// report's CanonicalJSON is byte-identical to a fresh verify.Run on the
// mutated snapshot (Unknown verdicts excepted, as documented). A failed
// delta (bad table, bad index) leaves the session unchanged.
func (s *Session) Apply(delta *tables.Delta) (*Report, error) {
	if delta == nil {
		return nil, fmt.Errorf("verify: Apply(nil delta)")
	}
	next := s.snap.Clone()
	if next == nil {
		next = tables.NewSnapshot()
	}
	if err := delta.Apply(next); err != nil {
		return nil, err
	}
	s.snap = next
	s.stats.Deltas++
	return s.run(delta)
}

// Affected returns the labels of assertions whose last cone-of-influence
// slice mentions a table the delta touches, sorted. The index is
// PREDICTIVE — it names what should be re-checked; pointer identity over
// the warm context is what actually decides, so a coincidental encoding
// shift can only cause a spurious re-check, never a wrong replay.
func (s *Session) Affected(delta *tables.Delta) []string {
	if s.deps == nil && s.depsConds != nil {
		s.buildDeps(s.depsEnv, s.depsConds, s.depsCheck)
	}
	seen := map[string]bool{}
	var out []string
	for _, fq := range delta.Tables() {
		for _, label := range s.deps[fq] {
			if !seen[label] {
				seen[label] = true
				out = append(out, label)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Compact releases the session's warm memory: the shared solver, the
// verdict cache, the slicer memos, and the term arena (rolled back to
// the creation watermark). The session stays usable — the next Apply
// re-encodes and re-checks everything from scratch, exactly as a new
// session would. Reports previously returned keep their rendered bytes
// (JSON, Cex strings) but their term-level internals (Ctx, Env, Result,
// Violation.Cond/Model) must not be used afterwards.
func (s *Session) Compact() {
	s.dropSolver()
	s.cache = nil
	s.dropDeps()
	s.slicer = newSlicer(s.ctx)
	s.base = nil
	if !s.ctx.Frozen() {
		s.ctx.Release(s.mark)
	}
}

// dropDeps clears the dependency index and the run slices it is built
// from.
func (s *Session) dropDeps() {
	s.deps = nil
	s.depsEnv = nil
	s.depsConds = nil
	s.depsCheck = nil
}

// Close drops every warm structure. The session must not be used after
// Close; the context becomes collectable once the caller's reports are.
func (s *Session) Close() {
	s.dropSolver()
	s.cache = nil
	s.dropDeps()
	s.slicer = nil
	s.base = nil
}

// dropSolver discards the warm shared solver and its bookkeeping.
func (s *Session) dropSolver() {
	s.solver = nil
	s.prev = smt.SolverStats{}
	s.live = map[*smt.Term]bool{}
}

// ensureSolver returns the warm shared solver, creating it on first use
// and after Compact.
func (s *Session) ensureSolver() *smt.Solver {
	if s.solver == nil {
		s.solver = smt.NewSolver(s.ctx)
		if s.opts.Budget > 0 {
			s.solver.SetBudget(s.opts.Budget)
		}
		if s.opts.Preprocess {
			s.solver.SetPreprocess(true)
		}
		s.opts.installCancel(s.solver)
		s.prev = smt.SolverStats{}
	}
	return s.solver
}

// run is the shared baseline/delta pipeline: encode the program over the
// warm context against the current snapshot, compile, generate VCs,
// re-slice through the persistent slicer, then replay or re-check each
// assertion. delta is nil for the baseline run.
func (s *Session) run(delta *tables.Delta) (*Report, error) {
	o := s.opts.Observer()
	t0 := time.Now()
	eopts := s.opts.Encode
	eopts.TrackModified = lpi.TrackModified(s.spec)
	endEncode := o.Phase(0, "encode")
	env := encode.NewEnv(s.ctx, s.prog, s.snap, eopts)
	endEncode()
	endCompose := o.Phase(0, "compose")
	program, err := lpi.NewCompiler(s.spec, env).Compile()
	endCompose()
	if err != nil {
		return nil, err
	}
	endVCGen := o.Phase(0, "vcgen")
	res := gcl.NewEncoder(s.ctx).Encode(program, nil)
	endVCGen()

	rep := &Report{
		Ctx:     s.ctx,
		Env:     env,
		Program: program,
		Result:  res,
		Stats: Stats{
			EncodeTime: time.Since(t0),
			GCLSize:    gcl.Size(program),
			Assertions: len(res.Violations),
			Workers:    1,
		},
		hists: &runHists{},
	}

	conds := res.Violations
	if len(s.cache) != len(conds) {
		// First run, post-Compact run, or a structural surprise: no entry
		// can be trusted positionally, start cold.
		s.cache = make([]sessionEntry, len(conds))
	}

	// Re-slice through the persistent memoized slicer. Unchanged
	// conditions hit the memo and return the identical slice pointer.
	endSlice := o.Phase(0, "slice")
	checkConds := make([]*smt.Term, len(conds))
	c0, d0 := s.slicer.Conjuncts, s.slicer.Dropped
	for i, v := range conds {
		a0, b0 := s.slicer.Conjuncts, s.slicer.Dropped
		checkConds[i] = s.slicer.slice(v)
		rep.hists.observeSlice(s.slicer.Conjuncts-a0, s.slicer.Dropped-b0)
	}
	endSlice()
	rep.Stats.SliceConjuncts = s.slicer.Conjuncts - c0
	rep.Stats.SliceDropped = s.slicer.Dropped - d0

	s.deps = nil // rebuilt lazily by Affected from this run's slices
	s.depsEnv, s.depsConds, s.depsCheck = env, conds, checkConds

	t1 := time.Now()
	endSolve := o.Phase(0, "solve")
	var runErr error
	for i, v := range conds {
		ce := &s.cache[i]
		checkCond := checkConds[i]

		st, model, replayed := s.replay(ce, v, checkCond)
		var ss smt.SolverStats
		var cpu time.Duration
		var viol *Violation
		if replayed {
			rep.Stats.DeltaReuse++
			s.stats.ReuseHits++
			viol = ce.violation
			o.Event("delta_replay", map[string]any{
				"label": v.Label, "status": statusString(st),
			})
		} else {
			st, model, ss, cpu = s.recheck(v, checkCond)
			rep.Stats.SolveCPU += cpu
			rep.Stats.addSolver(ss)
			rep.Stats.DeltaRecheck++
			s.stats.Rechecks++
			rep.recordCheck(o, v.Label, 0, ss, st, cpu)
			if st == smt.Sat {
				viol = rep.makeViolation(v, model)
			}
		}
		*ce = sessionEntry{
			label:      v.Label,
			fullCond:   v.Cond,
			slicedCond: checkCond,
			status:     st,
			violation:  viol,
		}
		rep.Stats.PerAssertion = append(rep.Stats.PerAssertion, AssertionCost{
			Label:        v.Label,
			Status:       statusString(st),
			SolveTime:    cpu,
			Conflicts:    ss.Conflicts,
			Decisions:    ss.Decisions,
			Propagations: ss.Propagations,
			Restarts:     ss.Restarts,
			CNFClauses:   ss.Clauses,
			SATVars:      ss.SATVars,
		})
		o.Event("assertion", map[string]any{
			"label": v.Label, "status": statusString(st),
			"solve_us": cpu.Microseconds(), "conflicts": ss.Conflicts,
			"clauses": ss.Clauses, "session": true,
		})
		if st == smt.Unknown {
			o.Event("budget_exhausted", map[string]any{
				"label": v.Label, "budget": s.opts.Budget,
			})
			runErr = ErrBudget
			break
		}
		if st == smt.Sat {
			rep.Violations = append(rep.Violations, viol)
		}
	}
	current := make(map[*smt.Term]bool, len(checkConds))
	for _, c := range checkConds {
		current[c] = true
	}
	s.retireStale(current)
	endSolve()

	rep.Stats.SolveTime = time.Since(t1)
	rep.Stats.TermNodes = s.ctx.NumTerms()
	rep.Holds = len(rep.Violations) == 0
	rep.Stats.Histograms = rep.hists.stats()
	if o != nil {
		rep.hists.mergeInto(o.Metrics)
	}
	if delta != nil && o != nil && o.Metrics != nil {
		o.Metrics.Counter(obs.CtrVerifyDeltaReuse).Add(rep.Stats.DeltaReuse)
		o.Metrics.Counter(obs.CtrVerifyDeltaRecheck).Add(rep.Stats.DeltaRecheck)
		o.Metrics.Histogram(obs.HistDeltaRecheck).Observe(rep.Stats.DeltaRecheck)
		o.Metrics.Counter(obs.CtrVerifySliceDropped).Add(rep.Stats.SliceDropped)
	}
	return rep, runErr
}

// replay decides whether the cached verdict for this assertion can be
// reused without touching a solver. Unknown verdicts never replay: they
// are budget artifacts, and the warm solver's accumulated clauses may
// resolve them on a re-check.
func (s *Session) replay(ce *sessionEntry, v *gcl.Violation, checkCond *smt.Term) (smt.Status, *smt.Model, bool) {
	if ce.label != v.Label || ce.fullCond == nil {
		return 0, nil, false
	}
	if ce.fullCond == v.Cond && (ce.status == smt.Sat || ce.status == smt.Unsat) {
		var m *smt.Model
		if ce.violation != nil {
			m = ce.violation.Model
		}
		return ce.status, m, true
	}
	// Unsat(K) implies Unsat(K ∧ D') — the slice K and every possible
	// dropped remainder D' have disjoint variable supports.
	if ce.slicedCond == checkCond && ce.status == smt.Unsat {
		return smt.Unsat, nil, true
	}
	return 0, nil, false
}

// recheck solves one condition on the warm shared solver with the
// incremental engine's canonicalization (checkOneShared). A previously
// retired condition recurring here is fine: checkOneShared's Indicator
// call re-freezes the variable, restoring it if preprocessing had
// eliminated it in the meantime.
func (s *Session) recheck(v *gcl.Violation, checkCond *smt.Term) (smt.Status, *smt.Model, smt.SolverStats, time.Duration) {
	solver := s.ensureSolver()
	rep := &Report{Ctx: s.ctx} // carrier for the shared check helpers
	st, model, ss, cpu, _ := rep.checkOneShared(s.opts, v, checkCond, 0, solver, &s.prev)
	s.live[checkCond] = true
	return st, model, ss, cpu
}

// retireStale releases the indicators of conditions superseded in this
// run: for every live condition no current check uses, the activation
// variable is unfrozen so CNF preprocessing may eliminate it and resolve
// the dead cone's clauses away. Retiring never constrains the formula,
// so it is safe even when a later delta brings the condition back.
// Called by run after the check loop, when the new conditions are known.
func (s *Session) retireStale(checkConds map[*smt.Term]bool) {
	if s.solver == nil {
		return
	}
	for cond := range s.live {
		if checkConds[cond] {
			continue
		}
		s.solver.Retire(s.solver.Indicator(cond))
		delete(s.live, cond)
		s.stats.Retired++
	}
}

// buildDeps rebuilds the table -> assertion dependency index from the
// current cone-of-influence slices: the encoder records every term a
// table's apply site introduced (entry match conditions, ABV constants,
// the lookup tree, wildcard free choices), and an assertion depends on a
// table when its slice's term DAG contains any of them. Pointer identity
// over the hash-consed context makes the membership test exact for the
// current encoding; constants shared with unrelated program logic can at
// worst add a spurious dependency, never hide one.
func (s *Session) buildDeps(env *encode.Env, conds []*gcl.Violation, checkConds []*smt.Term) {
	idx := map[*smt.Term][]string{}
	for _, fq := range s.fqs {
		for _, t := range env.TableTerms(fq) {
			idx[t] = append(idx[t], fq)
		}
	}
	deps := map[string][]string{}
	for i, v := range conds {
		touched := map[string]bool{}
		seen := map[*smt.Term]bool{}
		stack := []*smt.Term{checkConds[i]}
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if t == nil || seen[t] {
				continue
			}
			seen[t] = true
			for _, fq := range idx[t] {
				touched[fq] = true
			}
			stack = append(stack, t.Args...)
		}
		for fq := range touched {
			deps[fq] = append(deps[fq], v.Label)
		}
	}
	for fq := range deps {
		sort.Strings(deps[fq])
	}
	s.deps = deps
}
