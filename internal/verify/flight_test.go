package verify

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"aquila/internal/encode"
	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/obs"
)

// flightSink returns a full flight-recorder sink: tracer, metrics,
// discarded log, and a heartbeat ring sampling every conflict. The ring
// is sized so a full DC-gateway run (one Done per assertion plus one
// heartbeat per conflict at period 1) fits without wrapping —
// TestHeartbeatRing counts every sample.
func flightSink() *obs.Obs {
	return &obs.Obs{
		Tracer:   obs.NewTracer(),
		Metrics:  obs.NewRegistry(),
		Log:      obs.NewLogger(io.Discard),
		Progress: obs.NewProgressRing(512, 1),
	}
}

// TestFlightCanonicalMatrix pins the determinism contract across the
// whole engine matrix: canonical report bytes are byte-identical with
// the full flight recorder attached vs no sinks at all, for
// {fresh, parallel, incremental, stream} × workers 1/2/4.
func TestFlightCanonicalMatrix(t *testing.T) {
	prog, spec := dcGateway(t)
	configs := []struct {
		name string
		opts Options
	}{
		{"fresh/w1", Options{FindAll: true, Parallel: 1}},
		{"parallel/w2", Options{FindAll: true, Parallel: 2}},
		{"parallel/w4", Options{FindAll: true, Parallel: 4}},
		{"incremental/w1", Options{FindAll: true, Incremental: true, Parallel: 1}},
		{"incremental/w2", Options{FindAll: true, Incremental: true, Parallel: 2}},
		{"incremental/w4", Options{FindAll: true, Incremental: true, Parallel: 4}},
		{"stream/w1", Options{FindAll: true, Stream: true, Parallel: 1}},
	}
	var want []byte
	for _, c := range configs {
		for _, flight := range []bool{false, true} {
			opts := c.opts
			if flight {
				opts.Obs = flightSink()
			}
			rep, err := Run(prog, nil, spec, opts)
			if err != nil {
				t.Fatalf("%s flight=%v: %v", c.name, flight, err)
			}
			got, err := rep.CanonicalJSON()
			if err != nil {
				t.Fatalf("%s flight=%v: canonical: %v", c.name, flight, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s flight=%v: canonical report differs from fresh/w1 baseline", c.name, flight)
			}
		}
	}
}

// TestFlightHistograms: a flight-recorded run folds per-check
// distributions into Stats.Histograms and the metrics registry, reports
// them in the JSON report, and keeps them out of the canonical bytes.
func TestFlightHistograms(t *testing.T) {
	prog, spec := dcGateway(t)
	sink := flightSink()
	rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 2, Obs: sink})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byName := map[string]HistogramStat{}
	for _, h := range rep.Stats.Histograms {
		byName[h.Name] = h
	}
	n := int64(rep.Stats.Assertions)
	if got := byName[obs.HistCheckWallUS]; got.Count != n {
		t.Errorf("%s count = %d, want %d (one sample per check)", obs.HistCheckWallUS, got.Count, n)
	}
	if got := byName[obs.HistCheckConflicts]; got.Count != n || got.Sum != rep.Stats.Conflicts {
		t.Errorf("%s count/sum = %d/%d, want %d/%d",
			obs.HistCheckConflicts, got.Count, got.Sum, n, rep.Stats.Conflicts)
	}
	// CDCL learns exactly one clause per conflict; the distribution also
	// counts unit learnts, which Stats.LearntClauses excludes.
	if got := byName[obs.HistLearntSize]; got.Count != rep.Stats.Conflicts || got.Sum != rep.Stats.LearntLits {
		t.Errorf("%s count/sum = %d/%d, want %d/%d",
			obs.HistLearntSize, got.Count, got.Sum, rep.Stats.Conflicts, rep.Stats.LearntLits)
	}
	// No slicing in this run, so the slice-drop histogram must be absent.
	if _, ok := byName[obs.HistSliceDropPct]; ok {
		t.Errorf("%s present without -slice", obs.HistSliceDropPct)
	}

	// The registry carries the same distributions under the same names.
	regHists := sink.Metrics.Histograms()
	for name, h := range byName {
		if regHists[name].Count != h.Count || regHists[name].Sum != h.Sum {
			t.Errorf("registry %s = %d/%d, want %d/%d",
				name, regHists[name].Count, regHists[name].Sum, h.Count, h.Sum)
		}
	}
	// Snapshot() must NOT include histograms — the fuzzer's coverage
	// signatures hash it, and distributions would perturb the corpus.
	for name := range sink.Metrics.Snapshot() {
		if strings.Contains(name, "check_wall") || strings.Contains(name, "learnt_clause_size") {
			t.Errorf("histogram %q leaked into Snapshot()", name)
		}
	}

	// JSON report carries them; canonical bytes do not.
	data, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var parsed struct {
		Stats struct {
			Histograms []struct {
				Name    string  `json:"name"`
				Count   int64   `json:"count"`
				Sum     int64   `json:"sum"`
				Buckets []int64 `json:"buckets"`
			} `json:"histograms"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if len(parsed.Stats.Histograms) != len(rep.Stats.Histograms) {
		t.Errorf("JSON histograms = %d entries, want %d",
			len(parsed.Stats.Histograms), len(rep.Stats.Histograms))
	}
	for i, h := range parsed.Stats.Histograms {
		if h.Name != rep.Stats.Histograms[i].Name || h.Count != rep.Stats.Histograms[i].Count {
			t.Errorf("JSON histogram[%d] = %s/%d, want %s/%d",
				i, h.Name, h.Count, rep.Stats.Histograms[i].Name, rep.Stats.Histograms[i].Count)
		}
	}
	canon, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	if bytes.Contains(canon, []byte("histograms")) {
		t.Error("canonical bytes contain histograms (cost data must be zeroed)")
	}
}

// TestFlightSliceDropHistogram: under -slice every assertion records its
// conjuncts-dropped percentage.
func TestFlightSliceDropHistogram(t *testing.T) {
	prog, spec := dcGateway(t)
	rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1, Slice: true, Obs: flightSink()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var drop *HistogramStat
	for i := range rep.Stats.Histograms {
		if rep.Stats.Histograms[i].Name == obs.HistSliceDropPct {
			drop = &rep.Stats.Histograms[i]
		}
	}
	if drop == nil {
		t.Fatalf("%s missing from a sliced run: %+v", obs.HistSliceDropPct, rep.Stats.Histograms)
	}
	// One sample per sliced assertion (assertions whose VC has no
	// sliceable conjuncts record nothing).
	if drop.Count < 1 || drop.Count > int64(rep.Stats.Assertions) {
		t.Errorf("slice-drop count = %d, want 1..%d", drop.Count, rep.Stats.Assertions)
	}
	if rep.Stats.SliceDropped > 0 && drop.Sum == 0 {
		t.Errorf("conjuncts were dropped (%d) but every drop pct is 0", rep.Stats.SliceDropped)
	}
}

// TestHeartbeatRing: with a 1-conflict sampling period, a find-all run
// publishes one Done sample per check (plus conflict heartbeats), and
// the labels match the program's assertions.
func TestHeartbeatRing(t *testing.T) {
	prog, spec := dcGateway(t)
	sink := flightSink()
	rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1, Obs: sink})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	labels := map[string]bool{}
	for _, a := range rep.Stats.PerAssertion {
		labels[a.Label] = true
	}
	var done int
	var beats int64
	for _, s := range sink.Progress.Snapshot() {
		if !labels[s.Label] {
			t.Errorf("sample label %q is not an assertion", s.Label)
		}
		if s.Done {
			done++
			continue
		}
		beats++
		if s.Conflicts <= 0 {
			t.Errorf("heartbeat for %q has no conflicts: %+v", s.Label, s)
		}
	}
	if done != rep.Stats.Assertions {
		t.Errorf("Done samples = %d, want %d", done, rep.Stats.Assertions)
	}
	if beats != rep.Stats.Conflicts {
		t.Errorf("conflict heartbeats = %d, want %d (period 1)", beats, rep.Stats.Conflicts)
	}
}

// TestWatchdogStallDump is the satellite-6 contract: on a
// budget-starved check the watchdog emits exactly one diagnostic dump
// (label, solver snapshot, goroutine stacks) and the run's outcome —
// verdict, error, canonical bytes — is identical to a watchdog-free run.
func TestWatchdogStallDump(t *testing.T) {
	const entries = 2000
	cfg := genprog.SwitchT("small")
	cfg.TTLChain = false
	bm := genprog.Assemble(cfg)
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	snap := genprog.BigTableSnapshot(cfg, entries)
	dst := uint64(0x0A000000 + entries/2)
	spec, err := lpi.Parse(genprog.BigTableSpec(cfg, bm.Calls, dst, uint64((entries/2)%500)))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	// Budget 25 starves the lookup check: it grinds most of the solve
	// before exhausting, heartbeating every conflict the whole way.
	opts := Options{
		FindAll: true, Parallel: 1, Budget: 25,
		Encode: encode.Options{Table: encode.TableNaive},
	}

	ring := obs.NewProgressRing(64, 1)
	reg := obs.NewRegistry()
	watched := opts
	watched.Obs = &obs.Obs{Metrics: reg, Progress: ring}
	rep, runErr := Run(prog, snap, spec, watched)

	// The starved check heartbeats 25 times (every conflict) before its
	// Done sample. Replay that real stream through a watchdog with a
	// fabricated clock that advances one full window per heartbeat —
	// publishes and polls interleave in one goroutine, so the stall
	// detection is deterministic (a wall-clock poller on a single-CPU
	// host only sees whatever heartbeats the scheduler happens to show
	// it).
	recorded := ring.Snapshot()
	if len(recorded) < 3 {
		t.Fatalf("budget-starved run published %d samples, want >= 3", len(recorded))
	}
	replay := obs.NewProgressRing(64, 1)
	var dumpBuf bytes.Buffer
	const window = 10 * time.Millisecond
	wd := obs.NewWatchdog(replay, window, &dumpBuf, nil, reg)
	fab := time.Unix(1, 0)
	fired := 0
	for _, s := range recorded {
		replay.Publish(obs.ProgressSample{
			Label: s.Label, Worker: s.Worker, Done: s.Done,
			Conflicts: s.Conflicts, Decisions: s.Decisions,
			Propagations: s.Propagations, Restarts: s.Restarts,
			TrailDepth: s.TrailDepth, LearntDB: s.LearntDB,
			ArenaBytes: s.ArenaBytes,
		})
		if wd.Poll(fab) {
			fired++
		}
		fab = fab.Add(window)
	}
	if fired != 1 {
		t.Fatalf("watchdog fired %d times on the starved check's heartbeat stream, want exactly 1", fired)
	}
	if wd.Dumps() != 1 {
		t.Errorf("dumps = %d, want 1 (one-shot per label)", wd.Dumps())
	}
	if got := reg.Counter(obs.CtrWatchdogStalls).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrWatchdogStalls, got)
	}
	dump := dumpBuf.String()
	for _, want := range []string{`check "lookup#0" stalled`, "solver snapshot:", "goroutine dump:"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}

	// The watchdog observes the ring only — outcome must be untouched.
	if !errors.Is(runErr, ErrBudget) {
		t.Fatalf("watched run error = %v, want ErrBudget", runErr)
	}
	baseRep, baseErr := Run(prog, snap, spec, opts)
	if !errors.Is(baseErr, ErrBudget) {
		t.Fatalf("baseline run error = %v, want ErrBudget", baseErr)
	}
	watchedCanon, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	baseCanon, err := baseRep.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	if !bytes.Equal(watchedCanon, baseCanon) {
		t.Errorf("canonical report differs with the watchdog attached\nwatched: %s\nbase:    %s",
			watchedCanon, baseCanon)
	}
	if rep.Stats.PerAssertion[0].Status != "unknown" {
		t.Errorf("starved check status = %q, want unknown", rep.Stats.PerAssertion[0].Status)
	}
}
