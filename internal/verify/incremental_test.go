package verify

import (
	"bytes"
	"errors"
	"testing"

	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/progs"
)

// TestIncrementalMatchesFresh is the differential contract of the
// incremental engine: on the whole corpus, at every worker count, with and
// without the simplification pass, the canonical report bytes (verdicts,
// violations, counterexamples) are identical to fresh mode. On the DC
// gateway — the many-assertion benchmark the mode exists for — the shared
// prefix must also make the total Tseitin clause count strictly smaller
// than fresh mode's.
func TestIncrementalMatchesFresh(t *testing.T) {
	for _, c := range corpusSuite(t) {
		fresh, err := Run(c.prog, nil, c.spec, Options{FindAll: true, Parallel: 1})
		if err != nil {
			t.Fatalf("%s: fresh: %v", c.name, err)
		}
		want, err := fresh.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", c.name, err)
		}
		for _, simplify := range []bool{false, true} {
			for _, w := range []int{1, 2, 4} {
				opts := Options{FindAll: true, Parallel: w,
					Incremental: true, Simplify: simplify}
				rep, err := Run(c.prog, nil, c.spec, opts)
				if err != nil {
					t.Fatalf("%s: incremental w=%d simplify=%v: %v",
						c.name, w, simplify, err)
				}
				got, err := rep.CanonicalJSON()
				if err != nil {
					t.Fatalf("%s: w=%d canonical: %v", c.name, w, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s: incremental w=%d simplify=%v differs from fresh\nfresh: %s\nincremental: %s",
						c.name, w, simplify, want, got)
				}
				if !rep.Stats.Incremental || rep.Stats.Shards < 1 {
					t.Errorf("%s: w=%d: stats not marked incremental: %+v",
						c.name, w, rep.Stats)
				}
				if c.name == progs.DCGatewayBench().Name &&
					rep.Stats.TseitinClauses >= fresh.Stats.TseitinClauses {
					t.Errorf("%s: w=%d simplify=%v: incremental Tseitin clauses %d, want < fresh %d",
						c.name, w, simplify, rep.Stats.TseitinClauses, fresh.Stats.TseitinClauses)
				}
			}
		}
	}
}

// TestIncrementalGenprogDifferential repeats the differential check on
// synthetic production-shaped programs with seeded bugs, where table count
// and parser depth exceed anything in the hand-written corpus.
func TestIncrementalGenprogDifferential(t *testing.T) {
	cfgs := []genprog.Config{
		{Name: "gp_small", Pipes: 1, ParserStates: 6, Tables: 8, ActionsPerTable: 2, SeedBug: true},
		{Name: "gp_wide", Pipes: 2, ParserStates: 10, Tables: 14, ActionsPerTable: 3, SeedBug: true},
	}
	for _, cfg := range cfgs {
		bm := genprog.Assemble(cfg)
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("%s: parse: %v", cfg.Name, err)
		}
		spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
		if err != nil {
			t.Fatalf("%s: spec: %v", cfg.Name, err)
		}
		fresh, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1})
		if err != nil {
			t.Fatalf("%s: fresh: %v", cfg.Name, err)
		}
		want, err := fresh.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", cfg.Name, err)
		}
		if fresh.Holds {
			t.Fatalf("%s: seeded bug not found by fresh mode", cfg.Name)
		}
		for _, w := range []int{1, 2} {
			rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: w,
				Incremental: true, Simplify: true})
			if err != nil {
				t.Fatalf("%s: incremental w=%d: %v", cfg.Name, w, err)
			}
			got, err := rep.CanonicalJSON()
			if err != nil {
				t.Fatalf("%s: w=%d canonical: %v", cfg.Name, w, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: incremental w=%d differs from fresh\nfresh: %s\nincremental: %s",
					cfg.Name, w, want, got)
			}
		}
	}
}

// TestIncrementalBudgetExhaustion pins budget semantics in incremental
// mode with the simplifier off: a serial shard's first check blasts
// exactly what a fresh solver would, so a budget too small for any check
// surfaces ErrBudget with the same consumed prefix as fresh mode.
// (Beyond the first check per shard, learned clauses make budget reach
// mode- and shard-dependent — see DESIGN.md — so only this serial
// first-check case is pinned.)
func TestIncrementalBudgetExhaustion(t *testing.T) {
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	fresh, err := Run(prog, nil, spec, Options{FindAll: true, Budget: 1, Parallel: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("fresh budget=1: err = %v, want ErrBudget", err)
	}
	want, cerr := fresh.CanonicalJSON()
	if cerr != nil {
		t.Fatalf("canonical: %v", cerr)
	}
	rep, err := Run(prog, nil, spec, Options{FindAll: true, Budget: 1, Parallel: 1,
		Incremental: true})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("incremental budget=1: err = %v, want ErrBudget", err)
	}
	got, cerr := rep.CanonicalJSON()
	if cerr != nil {
		t.Fatalf("canonical: %v", cerr)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("budget-exhausted incremental report differs from fresh\nfresh: %s\nincremental: %s",
			want, got)
	}
}
