package verify

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/progs"
	"aquila/internal/tables"
)

// churnProblem builds the churn workload: the DC gateway with a concrete
// snapshot installed for its ECMP next-hop table (exact 16-bit key on
// gw_md.ecmp_offset, actions set_nhop(bit<9>)/a_drop). Everything else
// keeps wildcard (any-entries) semantics.
func churnProblem(t testing.TB) (*p4.Program, *lpi.Spec, *tables.Snapshot) {
	t.Helper()
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	snap, err := tables.ParseSnapshot(`
table GatewayIngress.ecmp_nhop_tbl {
  0 -> set_nhop(1)
  1 -> set_nhop(2)
  2 -> set_nhop(3)
  3 -> a_drop
}
`)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return prog, spec, snap
}

// churnDeltas is a single-table churn sequence over the ECMP table plus
// one delta against a second table, exercising add, replace, and remove.
const churnDeltas = `
add GatewayIngress.ecmp_nhop_tbl 4 -> set_nhop(5)
---
replace GatewayIngress.ecmp_nhop_tbl 0 0 -> a_drop
---
remove GatewayIngress.ecmp_nhop_tbl 2
---
add GatewayIngress.ttl_tbl 0 -> a_drop
---
replace GatewayIngress.ecmp_nhop_tbl 1 1 -> set_nhop(7)
`

func canonicalOf(t *testing.T, rep *Report) []byte {
	t.Helper()
	js, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	return js
}

// TestSessionByteIdentity is the delta determinism contract: for every
// delta in the churn sequence, Session.Apply's canonical report is
// byte-identical to a fresh verify.Run on the mutated snapshot, and the
// baseline matches a fresh run on the starting snapshot.
func TestSessionByteIdentity(t *testing.T) {
	prog, spec, snap := churnProblem(t)
	sess, err := NewSession(prog, snap, spec, Options{Parallel: 1})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	freshOpts := Options{FindAll: true, Parallel: 1}

	fresh0, err := Run(prog, snap, spec, freshOpts)
	if err != nil {
		t.Fatalf("fresh baseline: %v", err)
	}
	if !bytes.Equal(canonicalOf(t, sess.Baseline()), canonicalOf(t, fresh0)) {
		t.Fatalf("baseline canonical reports differ:\nsession:\n%s\nfresh:\n%s",
			canonicalOf(t, sess.Baseline()), canonicalOf(t, fresh0))
	}

	deltas, err := tables.ParseDeltas(churnDeltas)
	if err != nil {
		t.Fatalf("deltas: %v", err)
	}
	mutated := snap.Clone()
	for i, d := range deltas {
		rep, err := sess.Apply(d)
		if err != nil {
			t.Fatalf("delta %d: Apply: %v", i, err)
		}
		if err := d.Apply(mutated); err != nil {
			t.Fatalf("delta %d: reference apply: %v", i, err)
		}
		if !tables.Equal(mutated, sess.Snapshot()) {
			t.Fatalf("delta %d: session snapshot diverged from reference", i)
		}
		fresh, err := Run(prog, mutated, spec, freshOpts)
		if err != nil {
			t.Fatalf("delta %d: fresh run: %v", i, err)
		}
		sj, fj := canonicalOf(t, rep), canonicalOf(t, fresh)
		if !bytes.Equal(sj, fj) {
			t.Fatalf("delta %d: canonical reports differ:\nsession:\n%s\nfresh:\n%s", i, sj, fj)
		}
		if got := rep.Stats.DeltaReuse + rep.Stats.DeltaRecheck; got != int64(rep.Stats.Assertions) {
			t.Fatalf("delta %d: reuse %d + recheck %d != assertions %d",
				i, rep.Stats.DeltaReuse, rep.Stats.DeltaRecheck, rep.Stats.Assertions)
		}
		if rep.Stats.DeltaReuse == 0 {
			t.Fatalf("delta %d: single-table delta replayed nothing (reuse 0 of %d)",
				i, rep.Stats.Assertions)
		}
	}
	st := sess.SessionStats()
	if st.Deltas != len(deltas) || st.ReuseHits == 0 {
		t.Fatalf("session stats = %+v, want %d deltas and nonzero reuse", st, len(deltas))
	}
}

// TestSessionRevertRebuild reverts a table to a prior state: the
// re-encoded conditions recur as previously retired pointers, whose
// indicators were unfrozen — re-checking must re-freeze them and the
// bytes must still match a fresh run on the original snapshot.
func TestSessionRevertRebuild(t *testing.T) {
	prog, spec, snap := churnProblem(t)
	sess, err := NewSession(prog, snap, spec, Options{Parallel: 1})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	fwd, err := tables.ParseDelta("replace GatewayIngress.ecmp_nhop_tbl 0 0 -> a_drop")
	if err != nil {
		t.Fatal(err)
	}
	back, err := tables.ParseDelta("replace GatewayIngress.ecmp_nhop_tbl 0 0 -> set_nhop(1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Apply(fwd); err != nil {
		t.Fatalf("forward delta: %v", err)
	}
	rep, err := sess.Apply(back)
	if err != nil {
		t.Fatalf("revert delta: %v", err)
	}
	if st := sess.SessionStats(); st.Retired == 0 {
		t.Fatalf("no stale indicators were retired: %+v", st)
	}
	fresh, err := Run(prog, snap, spec, Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	if !bytes.Equal(canonicalOf(t, rep), canonicalOf(t, fresh)) {
		t.Fatal("reverted session report differs from fresh run on the original snapshot")
	}
}

// TestSessionCompact: after Compact the session re-warms from scratch
// and still produces byte-identical reports.
func TestSessionCompact(t *testing.T) {
	prog, spec, snap := churnProblem(t)
	sess, err := NewSession(prog, snap, spec, Options{Parallel: 1})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	d, err := tables.ParseDelta("add GatewayIngress.ecmp_nhop_tbl 5 -> set_nhop(6)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Apply(d); err != nil {
		t.Fatalf("pre-compact apply: %v", err)
	}
	before := sess.Ctx().NumTerms()
	sess.Compact()
	if after := sess.Ctx().NumTerms(); after >= before {
		t.Fatalf("Compact did not shrink the arena: %d -> %d terms", before, after)
	}
	d2, err := tables.ParseDelta("remove GatewayIngress.ecmp_nhop_tbl 0")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Apply(d2)
	if err != nil {
		t.Fatalf("post-compact apply: %v", err)
	}
	fresh, err := Run(prog, sess.Snapshot(), spec, Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	if !bytes.Equal(canonicalOf(t, rep), canonicalOf(t, fresh)) {
		t.Fatal("post-compact session report differs from fresh run")
	}
}

// TestSessionBadDeltaLeavesSessionUsable: a failing delta must not
// corrupt the session snapshot or the caches.
func TestSessionBadDeltaLeavesSessionUsable(t *testing.T) {
	prog, spec, snap := churnProblem(t)
	sess, err := NewSession(prog, snap, spec, Options{Parallel: 1})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	bad, err := tables.ParseDelta("remove GatewayIngress.ecmp_nhop_tbl 99")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Apply(bad); err == nil {
		t.Fatal("out-of-range remove did not error")
	}
	if !tables.Equal(snap, sess.Snapshot()) {
		t.Fatal("failed delta mutated the session snapshot")
	}
	good, err := tables.ParseDelta("add GatewayIngress.ecmp_nhop_tbl 6 -> set_nhop(2)")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Apply(good)
	if err != nil {
		t.Fatalf("apply after failed delta: %v", err)
	}
	fresh, err := Run(prog, sess.Snapshot(), spec, Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	if !bytes.Equal(canonicalOf(t, rep), canonicalOf(t, fresh)) {
		t.Fatal("session report differs from fresh run after a failed delta")
	}
}

// TestSessionAffected checks the table -> assertion dependency index:
// the ECMP table's COI must cover at least one assertion but not all of
// them, the result must be sorted, and unknown tables map to nothing.
func TestSessionAffected(t *testing.T) {
	prog, spec, snap := churnProblem(t)
	sess, err := NewSession(prog, snap, spec, Options{Parallel: 1})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	d := &tables.Delta{Ops: []tables.DeltaOp{{
		Kind: tables.OpRemove, Table: "GatewayIngress.ecmp_nhop_tbl", Index: 0,
	}}}
	labels := sess.Affected(d)
	if len(labels) == 0 {
		t.Fatal("ECMP delta affects no assertions")
	}
	if len(labels) >= sess.Baseline().Stats.Assertions {
		t.Fatalf("ECMP delta affects all %d assertions — the index is not slicing", len(labels))
	}
	if !sort.StringsAreSorted(labels) {
		t.Fatalf("Affected not sorted: %v", labels)
	}
	none := &tables.Delta{Ops: []tables.DeltaOp{{
		Kind: tables.OpRemove, Table: "NoSuch.table", Index: 0,
	}}}
	if got := sess.Affected(none); len(got) != 0 {
		t.Fatalf("unknown table affects %v", got)
	}
}

// holdingChurnProblem is the steady-state churn workload for the
// speedup pin: the DC gateway with a production-sized (64-entry) ECMP
// next-hop table and the holding subset of the invalid-header-access
// property. The subset is derived, not hand-listed: one fresh run on the
// full property finds the assertions the seeded bugs violate, and the
// spec is re-assembled without them. Steady state for a control plane is
// "everything holds" — standing violations would re-solve their full
// conditions on a deterministic fresh solver every delta (the price of
// byte-identical counterexample models), which is not the regime the
// amortization targets.
func holdingChurnProblem(t testing.TB) (*p4.Program, *lpi.Spec, *tables.Snapshot) {
	t.Helper()
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	full := progs.InvalidHeaderAccessSpec(prog, bm.Calls)
	fullSpec, err := lpi.Parse(full)
	if err != nil {
		t.Fatalf("full spec: %v", err)
	}
	var rows []string
	for i := 0; i < 64; i++ {
		act := fmt.Sprintf("set_nhop(%d)", i%8+1)
		if i%16 == 15 {
			act = "a_drop"
		}
		rows = append(rows, fmt.Sprintf("  %d -> %s", i, act))
	}
	snap, err := tables.ParseSnapshot(
		"table GatewayIngress.ecmp_nhop_tbl {\n" + strings.Join(rows, "\n") + "\n}\n")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	rep, err := Run(prog, snap, fullSpec, Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatalf("bug-discovery run: %v", err)
	}
	violated := map[int]bool{}
	for _, v := range rep.Violations {
		var idx int
		fmt.Sscanf(v.Label[strings.LastIndexByte(v.Label, '#')+1:], "%d", &idx)
		violated[idx] = true
	}
	var out []string
	item := 0
	for _, ln := range strings.Split(full, "\n") {
		if strings.Contains(ln, "applied(") {
			skip := violated[item]
			item++
			if skip {
				continue
			}
		}
		out = append(out, ln)
	}
	spec, err := lpi.Parse(strings.Join(out, "\n"))
	if err != nil {
		t.Fatalf("holding spec: %v", err)
	}
	return prog, spec, snap
}

// TestSessionSpeedup pins the headline number: on single-entry churn
// against the DC gateway in its holding steady state, session
// re-verification must be at least 5x faster per delta than a full
// fresh run (the ISSUE acceptance bar). Medians over several deltas
// keep the pin stable.
func TestSessionSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing pin, skipped in -short")
	}
	prog, spec, snap := holdingChurnProblem(t)
	sess, err := NewSession(prog, snap, spec, Options{Parallel: 1})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if !sess.Baseline().Holds {
		t.Fatalf("holding workload has standing violations: %d", len(sess.Baseline().Violations))
	}
	flip, err := tables.ParseDeltas(`
replace GatewayIngress.ecmp_nhop_tbl 0 0 -> a_drop
---
replace GatewayIngress.ecmp_nhop_tbl 0 0 -> set_nhop(1)
`)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: two deltas get the solver past its first-blast cost.
	for i := 0; i < 2; i++ {
		if _, err := sess.Apply(flip[i%2]); err != nil {
			t.Fatalf("warmup delta: %v", err)
		}
	}
	var sessTimes []time.Duration
	for i := 0; i < 8; i++ {
		t0 := time.Now()
		if _, err := sess.Apply(flip[i%2]); err != nil {
			t.Fatalf("steady-state delta: %v", err)
		}
		sessTimes = append(sessTimes, time.Since(t0))
	}
	var freshTimes []time.Duration
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		if _, err := Run(prog, sess.Snapshot(), spec, Options{FindAll: true, Parallel: 1}); err != nil {
			t.Fatalf("fresh run: %v", err)
		}
		freshTimes = append(freshTimes, time.Since(t0))
	}
	sessMed, freshMed := median(sessTimes), median(freshTimes)
	speedup := float64(freshMed) / float64(sessMed)
	t.Logf("steady-state session %v vs fresh %v per delta: %.1fx", sessMed, freshMed, speedup)
	if speedup < 5 {
		t.Fatalf("steady-state speedup %.2fx < 5x (session %v, fresh %v)", speedup, sessMed, freshMed)
	}
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// TestSessionValidateOptions pins the churn-mode flag matrix: every
// engine that freezes, releases, or races over the term context is
// rejected up front with an error naming the conflict.
func TestSessionValidateOptions(t *testing.T) {
	ok := Options{Session: true, FindAll: true, Parallel: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid session options rejected: %v", err)
	}
	bad := []struct {
		name string
		o    Options
		want string
	}{
		{"find-first", Options{Session: true}, "find-all"},
		{"incremental", Options{Session: true, FindAll: true, Incremental: true}, "-incremental"},
		{"stream", Options{Session: true, FindAll: true, Stream: true}, "-stream"},
		{"steal", Options{Session: true, FindAll: true, Schedule: ScheduleSteal}, "steal"},
		{"portfolio", Options{Session: true, FindAll: true, Portfolio: 4}, "-portfolio"},
		{"parallel", Options{Session: true, FindAll: true, Parallel: 8}, "-parallel"},
	}
	for _, tc := range bad {
		err := tc.o.Validate()
		if err == nil {
			t.Errorf("%s: incompatible options accepted", tc.name)
			continue
		}
		if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	// NewSession force-fixes FindAll/Slice but must still reject engine
	// conflicts.
	prog, spec, snap := churnProblem(t)
	if _, err := NewSession(prog, snap, spec, Options{Incremental: true}); err == nil {
		t.Fatal("NewSession accepted incremental options")
	}
}
