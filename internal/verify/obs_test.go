package verify

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"aquila/internal/lpi"
	"aquila/internal/obs"
	"aquila/internal/p4"
)

// dcGateway returns the DC Gateway corpus entry (13 assertions — the
// largest hand-written program, used for the observability contracts).
func dcGateway(t *testing.T) (prog *p4.Program, spec *lpi.Spec) {
	t.Helper()
	for _, c := range corpusSuite(t) {
		if c.name == "DC Gateway" {
			return c.prog, c.spec
		}
	}
	t.Fatal("DC Gateway not in corpus")
	return nil, nil
}

// TestTraceOneSpanPerAssertion: a find-all run records exactly one
// solve:<label> span per assertion, nested under the solve phase, and the
// span labels match the encoder's assertion labels.
func TestTraceOneSpanPerAssertion(t *testing.T) {
	prog, spec := dcGateway(t)
	sink := &obs.Obs{Tracer: obs.NewTracer()}
	rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 4, Obs: sink})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	begins := map[string]int{}
	workerTids := map[int]bool{}
	for _, e := range sink.Tracer.Events() {
		if e.Ph == "B" && strings.HasPrefix(e.Name, "solve:") {
			begins[e.Name]++
			workerTids[e.TID] = true
		}
	}
	if len(begins) != rep.Stats.Assertions {
		t.Errorf("distinct solve spans = %d, want %d", len(begins), rep.Stats.Assertions)
	}
	for name, n := range begins {
		if n != 1 {
			t.Errorf("span %q began %d times, want 1", name, n)
		}
	}
	for _, a := range rep.Stats.PerAssertion {
		if begins["solve:"+a.Label] != 1 {
			t.Errorf("assertion %q has no solve span", a.Label)
		}
	}
	// Under Parallel=4 the spans should spread over >= 2 worker tids —
	// guaranteed only when the host can actually run 2 workers at once.
	if runtime.GOMAXPROCS(0) >= 2 && len(workerTids) < 2 {
		t.Errorf("solve spans all on one tid %v despite Parallel=4 on %d CPUs",
			workerTids, runtime.GOMAXPROCS(0))
	}
	// Phases must be present on tid 0.
	phases := map[string]bool{}
	for _, e := range sink.Tracer.Events() {
		if e.Ph == "B" && e.TID == 0 {
			phases[e.Name] = true
		}
	}
	for _, want := range []string{"encode", "compose", "vcgen", "solve"} {
		if !phases[want] {
			t.Errorf("missing phase span %q on tid 0 (got %v)", want, phases)
		}
	}
}

// TestForEachWorkerDistribution: with blocking work, every pool worker
// participates — the property that makes worker tids meaningful.
func TestForEachWorkerDistribution(t *testing.T) {
	const workers, n = 4, 32
	var mu sync.Mutex
	seen := map[int]int{}
	ForEachWorker(workers, n, func(worker, i int) {
		time.Sleep(time.Millisecond) // yield so all goroutines get indices
		mu.Lock()
		seen[worker]++
		mu.Unlock()
	})
	total := 0
	for w, cnt := range seen {
		if w < 1 || w > workers {
			t.Errorf("worker id %d out of range [1,%d]", w, workers)
		}
		total += cnt
	}
	if total != n {
		t.Errorf("total calls = %d, want %d", total, n)
	}
	if len(seen) < 2 {
		t.Errorf("only %d workers participated, want >= 2 (saw %v)", len(seen), seen)
	}
	// Serial path must report worker 0.
	ForEachWorker(1, 3, func(worker, i int) {
		if worker != 0 {
			t.Errorf("serial worker id = %d, want 0", worker)
		}
	})
}

// TestCanonicalJSONObsInvariant is the tentpole determinism contract:
// canonical report bytes are identical with tracing on vs off, at worker
// counts 1, 2 and 4.
func TestCanonicalJSONObsInvariant(t *testing.T) {
	prog, spec := dcGateway(t)
	var want []byte
	for _, w := range []int{1, 2, 4} {
		for _, traced := range []bool{false, true} {
			var sink *obs.Obs
			if traced {
				sink = &obs.Obs{
					Tracer:  obs.NewTracer(),
					Metrics: obs.NewRegistry(),
					Log:     obs.NewLogger(&bytes.Buffer{}),
				}
			}
			rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: w, Obs: sink})
			if err != nil {
				t.Fatalf("workers=%d traced=%v: %v", w, traced, err)
			}
			got, err := rep.CanonicalJSON()
			if err != nil {
				t.Fatalf("canonical: %v", err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d traced=%v: canonical report differs from baseline\nbase: %s\ngot:  %s",
					w, traced, want, got)
			}
		}
	}
}

// TestPerAssertionBreakdown: the find-all breakdown covers every
// assertion in order and its columns sum to the report totals.
func TestPerAssertionBreakdown(t *testing.T) {
	prog, spec := dcGateway(t)
	rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Stats.PerAssertion) != rep.Stats.Assertions {
		t.Fatalf("PerAssertion entries = %d, want %d", len(rep.Stats.PerAssertion), rep.Stats.Assertions)
	}
	var conflicts, decisions, props, restarts int64
	var clauses, vars, sat int
	for _, a := range rep.Stats.PerAssertion {
		conflicts += a.Conflicts
		decisions += a.Decisions
		props += a.Propagations
		restarts += a.Restarts
		clauses += a.CNFClauses
		vars += a.SATVars
		switch a.Status {
		case "sat":
			sat++
		case "unsat", "unknown":
		default:
			t.Errorf("assertion %q: unexpected status %q", a.Label, a.Status)
		}
		// A VC that constant-folds is decided without blasting; any
		// assertion that did search work must have a CNF footprint.
		if a.CNFClauses == 0 && (a.Decisions > 0 || a.Conflicts > 0) {
			t.Errorf("assertion %q: search work with zero clause footprint", a.Label)
		}
	}
	if conflicts != rep.Stats.Conflicts || decisions != rep.Stats.Decisions ||
		props != rep.Stats.Propagations || restarts != rep.Stats.Restarts {
		t.Errorf("per-assertion sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			conflicts, decisions, props, restarts,
			rep.Stats.Conflicts, rep.Stats.Decisions, rep.Stats.Propagations, rep.Stats.Restarts)
	}
	if clauses != rep.Stats.CNFClauses || vars != rep.Stats.SATVars {
		t.Errorf("per-assertion clause/var sums (%d,%d) != totals (%d,%d)",
			clauses, vars, rep.Stats.CNFClauses, rep.Stats.SATVars)
	}
	if sat != len(rep.Violations) {
		t.Errorf("sat statuses = %d, violations = %d", sat, len(rep.Violations))
	}

	// The JSON report must carry the same breakdown.
	data, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var parsed struct {
		PerAssertion []struct {
			Label      string `json:"label"`
			Status     string `json:"status"`
			CNFClauses int    `json:"cnf_clauses"`
		} `json:"per_assertion"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if len(parsed.PerAssertion) != rep.Stats.Assertions {
		t.Errorf("JSON per_assertion entries = %d, want %d", len(parsed.PerAssertion), rep.Stats.Assertions)
	}
	for i, a := range parsed.PerAssertion {
		if a.Label != rep.Stats.PerAssertion[i].Label || a.CNFClauses != rep.Stats.PerAssertion[i].CNFClauses {
			t.Errorf("JSON per_assertion[%d] = %+v, want %+v", i, a, rep.Stats.PerAssertion[i])
		}
	}
}

// TestMetricsRegistry: the counters a find-all run publishes agree with
// the report's own totals.
func TestMetricsRegistry(t *testing.T) {
	prog, spec := dcGateway(t)
	sink := &obs.Obs{Metrics: obs.NewRegistry()}
	rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 4, Obs: sink})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := sink.Metrics
	if got := m.Counter(obs.CtrVerifyChecks).Value(); got != int64(rep.Stats.Assertions) {
		t.Errorf("%s = %d, want %d", obs.CtrVerifyChecks, got, rep.Stats.Assertions)
	}
	satN := m.Counter(obs.CtrVerifySat).Value()
	unsatN := m.Counter(obs.CtrVerifyUnsat).Value()
	unknownN := m.Counter(obs.CtrVerifyUnknown).Value()
	if satN+unsatN+unknownN != m.Counter(obs.CtrVerifyChecks).Value() {
		t.Errorf("verdict counters %d+%d+%d don't sum to checks", satN, unsatN, unknownN)
	}
	if satN != int64(len(rep.Violations)) {
		t.Errorf("%s = %d, want %d", obs.CtrVerifySat, satN, len(rep.Violations))
	}
	if got := m.Counter(obs.CtrSATConflicts).Value(); got != rep.Stats.Conflicts {
		t.Errorf("%s = %d, want %d", obs.CtrSATConflicts, got, rep.Stats.Conflicts)
	}
	if got := m.Counter(obs.CtrSATDecisions).Value(); got != rep.Stats.Decisions {
		t.Errorf("%s = %d, want %d", obs.CtrSATDecisions, got, rep.Stats.Decisions)
	}
	// Each solver may drop satisfied clauses and never counts its initial
	// true-literal unit, so emitted >= retained - one unit per solver.
	if got, min := m.Counter(obs.CtrSMTTseitinClauses).Value(), int64(rep.Stats.CNFClauses-rep.Stats.Assertions); got < min {
		t.Errorf("%s = %d, want >= %d", obs.CtrSMTTseitinClauses, got, min)
	}
	if got := m.Gauge(obs.GaugeTermNodes).Value(); got != int64(rep.Stats.TermNodes) {
		t.Errorf("%s = %d, want %d", obs.GaugeTermNodes, got, rep.Stats.TermNodes)
	}
	if got := m.Gauge(obs.GaugeVerifyWorkers).Value(); got != int64(rep.Stats.Workers) {
		t.Errorf("%s = %d, want %d", obs.GaugeVerifyWorkers, got, rep.Stats.Workers)
	}
	if got := m.Counter(obs.CtrSMTInternMisses).Value(); got == 0 {
		t.Errorf("%s = 0, want > 0 (encoding interned terms)", obs.CtrSMTInternMisses)
	}
}

// TestStructuredLogEvents: -v mode logs phase boundaries and one
// assertion event per check, as parseable JSONL.
func TestStructuredLogEvents(t *testing.T) {
	prog, spec := dcGateway(t)
	var buf bytes.Buffer
	sink := &obs.Obs{Log: obs.NewLogger(&buf)}
	rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1, Obs: sink})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	events := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line: %v: %s", err, line)
		}
		ev, _ := rec["event"].(string)
		events[ev]++
	}
	for _, phase := range []string{"phase_begin", "phase_end"} {
		if events[phase] < 4 { // encode, compose, vcgen, solve
			t.Errorf("%s events = %d, want >= 4", phase, events[phase])
		}
	}
	if events["assertion"] != rep.Stats.Assertions {
		t.Errorf("assertion events = %d, want %d", events["assertion"], rep.Stats.Assertions)
	}
}

// TestFindFirstStatsSummed pins the unified Stats semantics: find-first
// also reports the full footprint of its solver instances and records the
// SAT search counters, with no per-assertion breakdown.
func TestFindFirstStatsSummed(t *testing.T) {
	prog, spec := dcGateway(t)
	rep, err := Run(prog, nil, spec, Options{FindAll: false})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Stats.CNFClauses == 0 || rep.Stats.SATVars == 0 {
		t.Errorf("find-first footprint empty: %d clauses, %d vars",
			rep.Stats.CNFClauses, rep.Stats.SATVars)
	}
	if rep.Stats.Decisions == 0 && rep.Stats.Propagations == 0 {
		t.Error("find-first recorded no search work")
	}
	if len(rep.Stats.PerAssertion) != 0 {
		t.Errorf("find-first PerAssertion = %d entries, want 0", len(rep.Stats.PerAssertion))
	}
}
