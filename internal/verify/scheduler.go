// Work-stealing find-all scheduler. Static sharding (checkAllIncremental)
// keys every assertion to one worker up front, so a single heavy assertion
// leaves its shard grinding while the others idle — the straggler pattern
// the obs utilization analytics measure. Here the static shards become
// per-worker deques ordered largest-first (by blast-size estimate), a
// worker drains its own deque with a long-lived incremental solver, and an
// idle worker steals the largest remaining item from the busiest-looking
// victim, paying the fresh-blast fallback because its own solver's
// accumulated CNF does not cover the stolen shard's prefix.
//
// Determinism: which worker runs a check (and whether it was stolen)
// changes only cost accounting. Verdicts are semantic; Sat answers are
// re-solved on the original condition by a deterministic fresh solver in
// every path (checkOneShared, checkOne, raceOne), so canonical reports are
// byte-identical to the static engines at every {workers, portfolio}
// point. Budget (Unknown) verdicts remain the documented exception:
// stealing changes which learned clauses a budget reaches with.
package verify

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"aquila/internal/smt"
)

// stealQueue is the shared deque set: one queue per worker, each sorted
// largest-cost-first, guarded by one mutex (checks cost milliseconds; the
// pop costs nanoseconds, so a finer-grained structure would buy nothing).
type stealQueue struct {
	mu     sync.Mutex
	queues [][]int
	cost   []int64
}

// newStealQueue builds per-worker queues from static shards, ordering each
// queue by descending cost so owners start their heaviest work first and
// thieves steal the largest remaining item. Ties keep ascending assertion
// index (sort is stable; shards are index-ascending), so the schedule is a
// pure function of (shards, cost).
func newStealQueue(shards [][]int, cost []int64) *stealQueue {
	q := &stealQueue{queues: make([][]int, len(shards)), cost: cost}
	for s, idxs := range shards {
		own := append([]int(nil), idxs...)
		sort.SliceStable(own, func(a, b int) bool {
			return cost[own[a]] > cost[own[b]]
		})
		q.queues[s] = own
	}
	return q
}

// next returns the next assertion index for worker w: the head of w's own
// queue, else the largest head among the other queues (stolen=true), else
// ok=false when no work remains anywhere.
func (q *stealQueue) next(w int) (idx int, stolen, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if own := q.queues[w]; len(own) > 0 {
		q.queues[w] = own[1:]
		return own[0], false, true
	}
	best := -1
	var bestCost int64 = -1
	for v := range q.queues {
		if v == w || len(q.queues[v]) == 0 {
			continue
		}
		if c := q.cost[q.queues[v][0]]; c > bestCost {
			best, bestCost = v, c
		}
	}
	if best < 0 {
		return 0, false, false
	}
	idx = q.queues[best][0]
	q.queues[best] = q.queues[best][1:]
	return idx, true, true
}

// checkAllSteal is find-all under the work-stealing scheduler (Options.
// Schedule == ScheduleSteal), with optional per-check portfolio racing
// (Options.Portfolio > 1). Owned checks run on the worker's long-lived
// incremental solver via activation literals (with racing, that solver is
// seat 0 of the race); stolen checks fall back to deterministic fresh
// blasting, exactly the static fresh engine's unit of work.
func (rep *Report) checkAllSteal(opts Options) error {
	conds := rep.Result.Violations
	n := len(conds)
	workers := opts.Workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	rep.Stats.Workers = workers
	rep.Stats.Schedule = ScheduleSteal.String()
	if opts.Portfolio > 1 {
		rep.Stats.Portfolio = opts.Portfolio
	}
	o := opts.Observer()

	// Slices are computed serially before the context may freeze (slicing
	// creates terms), as in every other find-all engine.
	checkConds := make([]*smt.Term, n)
	for i, v := range conds {
		checkConds[i] = v.Cond
	}
	if opts.Slice {
		rep.sliceConds(opts, conds, checkConds)
	}

	// Work-item cost estimate: the check condition's DAG size, a proxy for
	// blast size and hence solve effort. Computed serially — TermSize
	// memoizes on the shared context.
	cost := make([]int64, n)
	for i, c := range checkConds {
		cost[i] = int64(smt.TermSize(c))
	}
	q := newStealQueue(StaticShards(workers, n), cost)

	outs := make([]checkOut, n)
	prefixClauses := make([]int64, workers) // dominating one-check Tseitin delta per owner

	// limit is the lowest assertion index seen to exhaust the budget;
	// workers skip checks at or beyond it so every worker stops promptly.
	limit := int64(n)

	// runWorker drains worker `shard`'s queue, then steals until the pool
	// is empty. The incremental solver is created lazily: a worker whose
	// whole queue was stolen out from under it never blasts a prefix.
	runWorker := func(worker, shard int) {
		var solver *smt.Solver
		var prev smt.SolverStats
		for {
			i, stolen, ok := q.next(shard)
			if !ok {
				return
			}
			if int64(i) >= atomic.LoadInt64(&limit) {
				continue
			}
			v := conds[i]
			out := &outs[i]
			out.stolen = stolen
			endSpan := o.Span(worker, "solve:"+v.Label)
			switch {
			case stolen && opts.Portfolio > 1:
				out.fill(rep.raceOne(opts, v, checkConds[i], worker, nil))
			case stolen:
				out.status, out.model, out.ss, out.cpu =
					rep.checkOne(opts, v, checkConds[i], worker)
			default:
				if solver == nil {
					solver = smt.NewSolver(rep.Ctx)
					if opts.Budget > 0 {
						solver.SetBudget(opts.Budget)
					}
					if opts.Preprocess {
						solver.SetPreprocess(true)
					}
				}
				if opts.Portfolio > 1 {
					out.fill(rep.raceOne(opts, v, checkConds[i], worker,
						&sharedSeat{solver: solver, prev: &prev}))
				} else {
					var sharedTseitin int64
					out.status, out.model, out.ss, out.cpu, sharedTseitin =
						rep.checkOneShared(opts, v, checkConds[i], worker, solver, &prev)
					if sharedTseitin > prefixClauses[shard] {
						prefixClauses[shard] = sharedTseitin
					}
				}
			}
			endSpan()
			rep.recordCheck(o, v.Label, worker, out.ss, out.status, out.cpu)
			out.done = true
			if out.status == smt.Unknown {
				for {
					cur := atomic.LoadInt64(&limit)
					if int64(i) >= cur || atomic.CompareAndSwapInt64(&limit, cur, int64(i)) {
						break
					}
				}
			}
		}
	}

	if workers > 1 || opts.Portfolio > 1 {
		// The context becomes shared read-only state; blasting and model
		// extraction never intern, and any stray term creation serializes.
		// Portfolio racing needs this even on one worker: the racers are
		// concurrent goroutines over the same DAG.
		rep.Ctx.Freeze()
	}
	if workers > 1 {
		if o != nil && o.Tracer != nil {
			o.Tracer.NameThread(0, "main")
			for w := 1; w <= workers; w++ {
				o.Tracer.NameThread(w, fmt.Sprintf("worker-%d", w))
			}
		}
		var wg sync.WaitGroup
		for s := 0; s < workers; s++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				runWorker(shard+1, shard)
			}(s)
		}
		wg.Wait()
	} else if n > 0 {
		runWorker(0, 0)
	}
	for _, pc := range prefixClauses {
		rep.Stats.PrefixClauses += pc
	}

	// Consume results in assertion order, exactly as checkAll: checks the
	// early stop skipped run inline fresh on the caller (worker/tid 0), so
	// the consumed prefix — violations up to the first budget-exhausted
	// check — is identical at every {workers, portfolio, schedule} point.
	var err error
	for i, v := range conds {
		if !outs[i].done {
			endSpan := o.Span(0, "solve:"+v.Label)
			out := &outs[i]
			if opts.Portfolio > 1 {
				out.fill(rep.raceOne(opts, v, checkConds[i], 0, nil))
			} else {
				out.status, out.model, out.ss, out.cpu = rep.checkOne(opts, v, checkConds[i], 0)
			}
			endSpan()
			rep.recordCheck(o, v.Label, 0, out.ss, out.status, out.cpu)
			out.done = true
		}
		out := &outs[i]
		rep.Stats.SolveCPU += out.cpu
		rep.Stats.addSolver(out.ss)
		rep.Stats.foldRace(out)
		rep.Stats.PerAssertion = append(rep.Stats.PerAssertion, AssertionCost{
			Label:        v.Label,
			Status:       statusString(out.status),
			SolveTime:    out.cpu,
			Conflicts:    out.ss.Conflicts,
			Decisions:    out.ss.Decisions,
			Propagations: out.ss.Propagations,
			Restarts:     out.ss.Restarts,
			CNFClauses:   out.ss.Clauses,
			SATVars:      out.ss.SATVars,
		})
		o.Event("assertion", map[string]any{
			"label": v.Label, "status": statusString(out.status),
			"solve_us": out.cpu.Microseconds(), "conflicts": out.ss.Conflicts,
			"clauses": out.ss.Clauses, "stolen": out.stolen,
		})
		if out.status == smt.Unknown {
			o.Event("budget_exhausted", map[string]any{
				"label": v.Label, "budget": opts.Budget,
			})
			err = ErrBudget
			break
		}
		if out.status == smt.Sat {
			rep.Violations = append(rep.Violations, rep.makeViolation(v, out.model))
		}
	}
	return err
}
