package verify

import (
	"aquila/internal/gcl"
	"aquila/internal/obs"
	"aquila/internal/smt"
)

// slicer computes per-assertion cone-of-influence slices of violation
// conditions. A violation condition is And(path, Not(check)): the path
// condition conjoins constraints from the whole pipeline, but only the
// conjuncts whose free variables (transitively) reach the checked condition
// can influence its truth.
//
// The VC generator wraps every control-flow merge as
// Or(And(prefix, c, ...), And(prefix, !c, ...)), so a naive flattening of
// the top-level And sees one opaque Or blob containing everything. The
// slicer therefore first FACTORS the condition: conjuncts common to every
// disjunct of an Or are pulled out (reverse distributivity, an
// equivalence), which unwinds each sequential merge into its shared prefix
// conjuncts plus one branch-local residual. On the factored conjunct list
// it seeds a variable set from the assertion's check term, closes it over
// variable-sharing conjuncts, and drops the rest.
//
// Soundness: factoring is an equivalence, and the kept conjunction K and
// the dropped remainder D have disjoint variable supports by construction,
// so Sat(K and D) implies Sat(K) — an Unsat slice proves the full
// condition Unsat (the assertion holds). The converse does not hold: D
// alone may be unsatisfiable (e.g. unreachable-branch constraints), so a
// Sat slice must be confirmed on the full condition before reporting a
// violation. The check drivers do that with a plain fresh solver, which
// also keeps counterexample models byte-identical to the unsliced
// baseline.
//
// Factorizations and per-conjunct variable supports are memoized by term
// ID: assertions in one program share long path prefixes in the
// hash-consed DAG, so most of the work is done once and reused across
// every assertion.
type slicer struct {
	ctx     *smt.Ctx
	memo    map[int][]*smt.Term // term ID -> equivalent conjunct list
	support map[int][]int       // conjunct term ID -> free-variable term IDs

	// journal records every key inserted into memo or support, in insertion
	// order, so the streaming engine's purge can find (and drop) exactly the
	// entries that reference terms past its arena watermark without scanning
	// the whole maps.
	journal []int

	// Conjuncts and Dropped total the factored conjuncts seen and removed
	// across all sliced assertions.
	Conjuncts int64
	Dropped   int64
}

func newSlicer(ctx *smt.Ctx) *slicer {
	return &slicer{ctx: ctx, memo: map[int][]*smt.Term{}, support: map[int][]int{}}
}

// sliceConds fills checkConds with the cone-of-influence slice of every
// violation condition, records the totals in the report stats, and
// publishes them to the metrics registry. It creates terms, so it must run
// serially before the context freezes; both find-all engines call it as
// their first phase when Options.Slice is set.
func (rep *Report) sliceConds(opts Options, conds []*gcl.Violation, checkConds []*smt.Term) {
	o := opts.Observer()
	endSlice := o.Phase(0, "slice")
	sl := newSlicer(rep.Ctx)
	for i, v := range conds {
		c0, d0 := sl.Conjuncts, sl.Dropped
		checkConds[i] = sl.slice(v)
		rep.hists.observeSlice(sl.Conjuncts-c0, sl.Dropped-d0)
	}
	endSlice()
	rep.Stats.SliceConjuncts = sl.Conjuncts
	rep.Stats.SliceDropped = sl.Dropped
	if o != nil && o.Metrics != nil {
		o.Metrics.Counter(obs.CtrVerifySliceDropped).Add(sl.Dropped)
	}
	o.Event("slice", map[string]any{"conjuncts": sl.Conjuncts, "dropped": sl.Dropped})
}

// flattenAnd splits t's And-tree into its non-And leaves, left to right.
// A non-And term is its own single leaf.
func flattenAnd(t *smt.Term) []*smt.Term {
	if t.Op != smt.OpAnd {
		return []*smt.Term{t}
	}
	var out []*smt.Term
	stack := []*smt.Term{t}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x.Op == smt.OpAnd {
			for i := len(x.Args) - 1; i >= 0; i-- {
				stack = append(stack, x.Args[i])
			}
			continue
		}
		out = append(out, x)
	}
	return out
}

// conjuncts returns a list of terms whose conjunction is equivalent to t,
// factoring shared conjuncts out of disjunctions. Memoized by term ID.
func (sl *slicer) conjuncts(t *smt.Term) []*smt.Term {
	if cs, ok := sl.memo[t.ID]; ok {
		return cs
	}
	var out []*smt.Term
	switch {
	case t.Op == smt.OpAnd:
		seen := map[int]bool{}
		for _, a := range t.Args {
			for _, c := range sl.conjuncts(a) {
				if !seen[c.ID] {
					seen[c.ID] = true
					out = append(out, c)
				}
			}
		}
	case t.Op == smt.OpOr:
		out = sl.factorDisjunction(t, t.Args)
	case t.Op == smt.OpNot && t.Args[0].Op == smt.OpAnd:
		// The term constructors build Or(a, b) as Not(And(Not(a), Not(b))),
		// so this shape IS a disjunction; recover the disjuncts (Not folds
		// double negation).
		inner := flattenAnd(t.Args[0])
		disj := make([]*smt.Term, len(inner))
		for i, a := range inner {
			disj[i] = sl.ctx.Not(a)
		}
		out = sl.factorDisjunction(t, disj)
	default:
		out = []*smt.Term{t}
	}
	sl.memo[t.ID] = out
	sl.journal = append(sl.journal, t.ID)
	return out
}

// purge drops memoized entries that are keyed by — or whose values
// reference — terms at or past the arena watermark mark, before the
// streaming engine releases those terms (term IDs are reused afterwards,
// so a stale entry would alias a future term). Entries whose key and
// values all predate the watermark survive: the watermark never moves
// during a streaming run, so the shared-prefix factorizations that make
// slicing cheap stay memoized across every assertion.
func (sl *slicer) purge(mark int) {
	keep := sl.journal[:0]
	for _, k := range sl.journal {
		stale := k >= mark
		if !stale {
			for _, c := range sl.memo[k] {
				if c.ID >= mark {
					stale = true
					break
				}
			}
		}
		if !stale {
			for _, id := range sl.support[k] {
				if id >= mark {
					stale = true
					break
				}
			}
		}
		if stale {
			delete(sl.memo, k)
			delete(sl.support, k)
		} else {
			keep = append(keep, k)
		}
	}
	sl.journal = keep
}

// factorDisjunction factors the conjuncts common to every disjunct out of
// the disjunction t: Or(And(C, A...), And(C, B...)) is equivalent to
// And(C, Or(And(A...), And(B...))). With no common conjunct t itself is
// the single conjunct.
func (sl *slicer) factorDisjunction(t *smt.Term, disj []*smt.Term) []*smt.Term {
	lists := make([][]*smt.Term, len(disj))
	count := map[int]int{}
	for i, d := range disj {
		lists[i] = sl.conjuncts(d)
		inThis := map[int]bool{}
		for _, c := range lists[i] {
			if !inThis[c.ID] {
				inThis[c.ID] = true
				count[c.ID]++
			}
		}
	}
	commonSet := map[int]bool{}
	var common []*smt.Term
	for _, c := range lists[0] {
		if count[c.ID] == len(lists) && !commonSet[c.ID] {
			commonSet[c.ID] = true
			common = append(common, c)
		}
	}
	if len(common) == 0 {
		return []*smt.Term{t}
	}
	rests := make([]*smt.Term, len(lists))
	for i, l := range lists {
		var rest []*smt.Term
		for _, c := range l {
			if !commonSet[c.ID] {
				rest = append(rest, c)
			}
		}
		rests[i] = sl.ctx.And(rest...)
	}
	residual := sl.ctx.Or(rests...)
	// A constant-true residual vanishes; a constant-false one must stay (it
	// makes the whole conjunction false).
	if residual.Op != smt.OpBoolConst || !residual.ConstBool() {
		common = append(common, residual)
	}
	return common
}

// vars returns the IDs of t's free variables, memoized by term ID.
func (sl *slicer) vars(t *smt.Term) []int {
	if ids, ok := sl.support[t.ID]; ok {
		return ids
	}
	vs := smt.Vars(t)
	ids := make([]int, len(vs))
	for i, v := range vs {
		ids[i] = v.ID
	}
	sl.support[t.ID] = ids
	sl.journal = append(sl.journal, t.ID)
	return ids
}

// slice returns the cone-of-influence slice of v.Cond with respect to
// v.Check. When nothing can be dropped it returns v.Cond itself, so
// pointer equality against v.Cond tells the caller whether slicing did
// anything. Creates terms; must run before the context freezes.
func (sl *slicer) slice(v *gcl.Violation) *smt.Term {
	cond := v.Cond
	if v.Check == nil || cond.Op == smt.OpBoolConst {
		return cond
	}
	conjs := sl.conjuncts(cond)
	sl.Conjuncts += int64(len(conjs))
	if len(conjs) <= 1 {
		return cond
	}
	seed := smt.Vars(v.Check)
	if len(seed) == 0 {
		// A variable-free check cannot anchor a cone; keep everything.
		return cond
	}
	coi := make(map[int]bool, len(seed))
	for _, t := range seed {
		coi[t.ID] = true
	}
	supports := make([][]int, len(conjs))
	for i, c := range conjs {
		supports[i] = sl.vars(c)
	}
	kept := make([]bool, len(conjs))
	keptCount := 0
	// Fixpoint: a conjunct sharing a variable with the cone joins it and
	// contributes its own variables. Another sweep is needed only when the
	// cone grew (keeping a conjunct without new variables cannot enable
	// anything else).
	for changed := true; changed; {
		changed = false
		for i, sup := range supports {
			if kept[i] {
				continue
			}
			// A conjunct with no free variables is a constant the term
			// constructors did not fold; dropping a potential `false` would
			// be unsound, so keep it.
			touches := len(sup) == 0
			for _, id := range sup {
				if coi[id] {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			kept[i] = true
			keptCount++
			for _, id := range sup {
				if !coi[id] {
					coi[id] = true
					changed = true
				}
			}
		}
	}
	if keptCount == len(conjs) {
		return cond
	}
	sl.Dropped += int64(len(conjs) - keptCount)
	keptTerms := make([]*smt.Term, 0, keptCount)
	for i, c := range conjs {
		if kept[i] {
			keptTerms = append(keptTerms, c)
		}
	}
	// Rebuild with the variadic constructor so the slice gets the same
	// balanced And shape (and blasting depth) a generated condition has.
	return sl.ctx.And(keptTerms...)
}
