package verify

import (
	"testing"

	"aquila/internal/lpi"
	"aquila/internal/progs"
)

// TestInternStatsParallelVerify asserts the interning instrumentation
// stays consistent across a real 4-worker find-all run (run under -race
// in CI): the context freezes for the fan-out, stray post-freeze
// construction and stat reads serialize (frozenLocks grows), and the
// fundamental ledger invariant holds — every intern miss created exactly
// one term, so misses equals the live term count in a run that never
// releases.
func TestInternStatsParallelVerify(t *testing.T) {
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 4, Slice: true})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.Ctx.Frozen() {
		t.Fatal("4-worker find-all run did not freeze the context")
	}
	n := rep.Ctx.NumTerms()
	hits, misses, frozenLocks := rep.Ctx.InternStats()
	if misses != int64(n) {
		t.Errorf("intern misses %d != live terms %d: the miss ledger lost or double-counted a creation", misses, n)
	}
	if hits == 0 {
		t.Error("intern hits stayed 0 across encoding and slicing")
	}
	if frozenLocks == 0 {
		t.Error("frozenLocks stayed 0 despite post-freeze context use")
	}
}
