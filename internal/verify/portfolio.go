// Portfolio racing: run K diverse solver personalities on the same check
// under a shared cancellation token and take the first verdict (the
// standard competitive-solving cure for per-assertion variance). The
// determinism contract survives racing because verdicts are semantic —
// every complete personality agrees on sat/unsat — and anything
// model-shaped is re-derived by the same deterministic plain fresh solver
// every other engine uses, so canonical reports are byte-identical at
// every portfolio width. Budget-limited (Unknown) verdicts are the one
// documented exception, exactly as in incremental mode: how far a budget
// reaches depends on who was searching.
package verify

import (
	"sync"
	"sync/atomic"
	"time"

	"aquila/internal/gcl"
	"aquila/internal/smt"
)

// raceOutcome is one raced check's result: the canonical verdict and model
// plus the bookkeeping the engines fold into Stats.
type raceOutcome struct {
	status smt.Status
	model  *smt.Model
	ss     smt.SolverStats // summed over every racer (+ canonical re-solve)
	cpu    time.Duration   // summed likewise — racing trades CPU for wall time
	waste  time.Duration   // CPU burned by racers the token cancelled
	won    int64           // 1 when some racer produced a verdict
	lost   int64           // racers beaten or cancelled in a won race
}

// sharedSeat lets a long-lived shared solver (the steal engine's
// per-worker incremental instance) race as seat 0 under the baseline
// personality: its accumulated CNF and learned clauses are its edge. prev
// is the rolling stats snapshot for delta accounting; raceOne advances it.
type sharedSeat struct {
	solver *smt.Solver
	prev   *smt.SolverStats
}

// raceOne races opts.Portfolio personalities on checkCond and returns the
// canonical outcome. Seat p runs smt.Portfolio(K)[p]; with a sharedSeat,
// seat 0 is the shared solver (created plain, i.e. already the baseline)
// and only seats 1..K-1 are fresh. The first seat to return a real verdict
// stores the token, which every other seat observes at its next
// cooperative poll; a genuine budget Unknown does not fire the token (a
// rival may still decide the check). Requires a frozen context: seats
// blast concurrently from the shared DAG.
func (rep *Report) raceOne(opts Options, v *gcl.Violation, checkCond *smt.Term, worker int, shared *sharedSeat) raceOutcome {
	o := opts.Observer()
	k := opts.Portfolio
	roster := smt.Portfolio(k)

	type seatResult struct {
		status   smt.Status
		cpu      time.Duration
		ss       smt.SolverStats
		canceled bool
		solver   *smt.Solver // retained only by a Sat fresh baseline seat
	}
	results := make([]seatResult, k)
	var cancel atomic.Bool
	var winner atomic.Int64
	winner.Store(-1)

	finish := func(p int, st smt.Status) {
		if st != smt.Unknown && winner.CompareAndSwap(-1, int64(p)) {
			cancel.Store(true)
		}
	}

	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := &results[p]
			if p == 0 && shared != nil {
				s := shared.solver
				s.SetCancel(&cancel)
				installProgress(o, s, v.Label, worker)
				t0 := time.Now()
				lit := s.Indicator(checkCond)
				st := s.CheckLits(lit)
				r.cpu = time.Since(t0)
				cur := s.SolverStats()
				r.ss = statsDelta(cur, *shared.prev)
				*shared.prev = cur
				r.status, r.canceled = st, s.Canceled()
				finish(p, st)
				return
			}
			s := smt.NewSolver(rep.Ctx)
			if opts.Budget > 0 {
				s.SetBudget(opts.Budget)
			}
			if opts.Preprocess {
				s.SetPreprocess(true)
			}
			s.SetPersonality(roster[p])
			s.SetCancel(&cancel)
			if p == 0 {
				// Only the baseline seat feeds the heartbeat ring: it is the
				// one whose trajectory matches the plain engine, and K rings
				// under one label would garble the watchdog's stall windows.
				installProgress(o, s, v.Label, worker)
			}
			t0 := time.Now()
			st := s.Check(checkCond)
			r.cpu = time.Since(t0)
			r.ss = s.SolverStats()
			r.status, r.canceled = st, s.Canceled()
			if st == smt.Sat {
				r.solver = s
			}
			finish(p, st)
		}(p)
	}
	wg.Wait()
	if shared != nil {
		// The token stays true after a win; detach it so the shared solver's
		// next race (or plain check) is not stillborn.
		shared.solver.SetCancel(nil)
	}

	out := raceOutcome{status: smt.Unknown}
	for p := range results {
		out.cpu += results[p].cpu
		out.ss = addStats(out.ss, results[p].ss)
		if results[p].canceled {
			out.waste += results[p].cpu
		}
	}
	rep.hists.observeRaceWaste(out.waste)
	w := winner.Load()
	if w < 0 {
		// Every seat exhausted its budget for real: the check is Unknown,
		// the same verdict the plain engine's budget stop reports.
		return out
	}
	out.won = 1
	out.lost = int64(k - 1)
	out.status = results[w].status
	if out.status != smt.Sat {
		return out
	}
	// Canonical counterexample. A winning fresh baseline seat on the
	// original, unpreprocessed condition IS the plain engine's solver, so
	// its model is already canonical; every other winner re-solves the
	// original condition with a plain fresh solver, exactly as checkOne and
	// the incremental engine do (including the sliced-Sat/full-Unsat
	// downgrade to Unsat).
	if shared == nil && w == 0 && !opts.Preprocess && checkCond == v.Cond {
		s := results[0].solver
		m := s.Model()
		s.ModelCollect(m, v.Cond)
		out.model = m
		return out
	}
	s2 := smt.NewSolver(rep.Ctx)
	if opts.Budget > 0 {
		s2.SetBudget(opts.Budget)
	}
	installProgress(o, s2, v.Label, worker)
	t1 := time.Now()
	st2 := s2.Check(v.Cond)
	out.cpu += time.Since(t1)
	out.ss = addStats(out.ss, s2.SolverStats())
	switch {
	case st2 == smt.Sat:
		m := s2.Model()
		s2.ModelCollect(m, v.Cond)
		out.model = m
	case st2 == smt.Unsat && opts.Slice:
		out.status = smt.Unsat
	default:
		out.status = st2
	}
	return out
}
