// Package verify is Aquila's verification driver (Figure 7): it composes
// the component GCLs according to the LPI program block, generates
// verification conditions, and drives the SMT solver to find either the
// first violated assertion (all assertions checked together) or all of
// them one by one — the §5.1/§8.1 find-first vs find-all modes.
package verify

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aquila/internal/encode"
	"aquila/internal/gcl"
	"aquila/internal/lpi"
	"aquila/internal/obs"
	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

// Options configures a verification run.
type Options struct {
	// Encode selects the encoding modes; TrackModified is filled from the
	// spec automatically.
	Encode encode.Options
	// FindAll checks every assertion one by one; otherwise the run stops
	// at the first violated assertion (checked all together).
	FindAll bool
	// Budget bounds SAT conflicts per check (<=0: unlimited). Exhaustion
	// is reported as ErrBudget.
	Budget int64
	// Incremental makes find-all checks share solvers: the common VC
	// prefix is blasted once per worker shard and each assertion is
	// checked under an activation literal, reusing the CNF and learned
	// clauses across checks ("blast once, check many"). Verdicts and
	// canonical reports are identical to fresh-solver mode; raw cost
	// counters differ (that is the point). Ignored in find-first mode.
	Incremental bool
	// Simplify applies the algebraic simplification pass
	// (smt.Simplifier) to assertion conditions before blasting.
	// Only consulted in incremental mode, so the fresh-solver baseline
	// stays bit-for-bit what it always was.
	Simplify bool
	// Preprocess enables SatELite-style CNF preprocessing (subsumption,
	// self-subsuming resolution, bounded variable elimination) in the SAT
	// core of every checking solver. Verdicts are unchanged; counterexample
	// models are re-derived by a plain fresh solver so canonical reports
	// stay byte-identical to the unpreprocessed baseline.
	Preprocess bool
	// Slice enables per-assertion cone-of-influence slicing in find-all
	// modes: VC conjuncts whose free variables cannot reach the assertion's
	// checked condition are dropped before blasting. An Unsat slice soundly
	// proves the assertion holds; a Sat slice is confirmed on the full
	// condition by a plain fresh solver, so canonical reports stay
	// byte-identical to unsliced mode. Ignored in find-first mode, which
	// solves one disjunction over all assertions.
	Slice bool
	// Stream makes find-all fresh-solver runs release transient terms as
	// they go: each assertion is sliced, checked, and consumed one at a
	// time, and the term arena is rolled back to a pre-slicing watermark
	// once enough per-assertion slice terms have accumulated — so peak term
	// memory is bounded by the VC plus one assertion's transients instead
	// of growing with the whole run. Verdicts and canonical reports are
	// byte-identical to plain fresh mode. Forces the serial path (a frozen
	// shared context cannot release); ignored in find-first and incremental
	// modes, which have no transient per-assertion terms to shed.
	Stream bool
	// Parallel is the number of worker goroutines for find-all checks and
	// localization re-checks: 0 means runtime.GOMAXPROCS(0), 1 forces the
	// serial path. Reports are byte-identical at every setting: each
	// assertion is checked by a deterministic fresh solver over the shared
	// frozen term DAG, and results are aggregated in assertion order.
	Parallel int
	// Schedule selects the find-all work-distribution strategy:
	// ScheduleStatic (the default) or ScheduleSteal, the work-stealing
	// scheduler (scheduler.go). Canonical reports are byte-identical
	// across schedules; steal mode is incompatible with Incremental
	// (whose static-shard determinism it would break) and Stream.
	Schedule Schedule
	// Portfolio is the number of solver personalities raced per find-all
	// check (portfolio.go): 0 or 1 disables racing; K > 1 launches K
	// diverse solvers under a shared cancellation token and takes the
	// first verdict. Sat answers are re-solved by a plain fresh solver, so
	// canonical reports are byte-identical at every K; budget-limited
	// (Unknown) verdicts are the documented exception, as in incremental
	// mode. Requires FindAll; incompatible with Incremental and Stream.
	Portfolio int
	// Session marks the options as driving a warm delta re-verification
	// session (session.go / the -churn CLI mode). The session engine is
	// serial by construction — it keeps one term context, one persistent
	// slicer, and one warm shared solver alive across table deltas — so
	// it requires find-all mode and rejects every engine that freezes,
	// releases, or races over the context. NewSession sets it; the CLIs
	// set it for flag validation before the session is built.
	Session bool
	// Cancel, when non-nil, is a cooperative cancellation token installed
	// on the checking solvers of the fresh find-all and session engines
	// (the paths aquila-serve drives): storing true makes in-flight and
	// future checks return Unknown at the solver's next poll, which the
	// driver reports as ErrBudget exactly like conflict-budget exhaustion.
	// aquila-serve maps per-request verification deadlines onto it. The
	// portfolio racer keeps its own internal token, so Cancel is rejected
	// with Portfolio > 1 rather than silently overwritten. nil (the
	// default) installs nothing and leaves verdicts and canonical report
	// bytes untouched.
	Cancel *atomic.Bool
	// Obs attaches observability sinks (tracer, metrics, structured log).
	// nil falls back to the process default (set by the CLIs); when that is
	// also nil every hook is a nil-check with no measurable overhead, and
	// attaching sinks never changes verdicts or canonical report bytes.
	Obs *obs.Obs
}

// Schedule selects the find-all work-distribution strategy.
type Schedule int

const (
	// ScheduleStatic is the default: fresh mode fans out via dynamic
	// atomic-counter assignment (ForEachWorker), incremental mode uses
	// index-modulo static shards (StaticShards).
	ScheduleStatic Schedule = iota
	// ScheduleSteal routes checks through the work-stealing scheduler:
	// per-worker queues seeded largest-first from the static shard split;
	// a worker whose queue drains steals the largest remaining item from
	// the other queues.
	ScheduleSteal
)

func (s Schedule) String() string {
	if s == ScheduleSteal {
		return "steal"
	}
	return "static"
}

// ParseSchedule maps the CLI -schedule flag values to a Schedule.
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "", "static":
		return ScheduleStatic, nil
	case "steal":
		return ScheduleSteal, nil
	}
	return 0, fmt.Errorf("verify: unknown schedule %q (want static or steal)", s)
}

// Validate rejects incompatible engine combinations up front, with an
// error naming the conflict, instead of one mode silently winning. Run and
// RunWithEnv call it, so every CLI inherits the same rejections.
func (o Options) Validate() error {
	if o.Portfolio < 0 {
		return fmt.Errorf("verify: portfolio must be >= 0, got %d", o.Portfolio)
	}
	if o.Stream {
		if o.Incremental {
			return fmt.Errorf("verify: -stream and -incremental are incompatible (streaming releases terms the incremental engine's shared solvers still reference)")
		}
		if o.Parallel > 1 {
			return fmt.Errorf("verify: -stream is incompatible with -parallel %d (streaming releases terms from the arena, which a frozen shared context cannot do; use -parallel 1)", o.Parallel)
		}
		if o.Portfolio > 1 {
			return fmt.Errorf("verify: -stream is incompatible with -portfolio %d (racers share the term DAG, which streaming releases mid-run)", o.Portfolio)
		}
		if o.Schedule == ScheduleSteal {
			return fmt.Errorf("verify: -stream is incompatible with -schedule steal (streaming is single-worker by construction)")
		}
	}
	if o.Schedule == ScheduleSteal {
		if o.Incremental {
			return fmt.Errorf("verify: -schedule steal is incompatible with -incremental (incremental shards rely on a static, reproducible assertion sequence per shared solver; stealing has its own per-worker solver reuse)")
		}
		if !o.FindAll {
			return fmt.Errorf("verify: -schedule steal requires find-all mode (-all); find-first is a single query")
		}
	}
	if o.Portfolio > 1 {
		if !o.FindAll {
			return fmt.Errorf("verify: -portfolio %d requires find-all mode (-all); find-first is a single query", o.Portfolio)
		}
		if o.Incremental {
			return fmt.Errorf("verify: -portfolio is incompatible with -incremental (racing a shard's shared solver would make its accumulated state schedule-dependent; use -schedule steal for solver reuse with racing)")
		}
	}
	if o.Cancel != nil && o.Portfolio > 1 {
		return fmt.Errorf("verify: a cancellation token is incompatible with -portfolio %d (racers install their own shared token, which would silently replace it)", o.Portfolio)
	}
	if o.Session {
		if !o.FindAll {
			return fmt.Errorf("verify: -churn requires find-all mode (-all); the session engine replays and rechecks assertions one by one")
		}
		if o.Incremental {
			return fmt.Errorf("verify: -churn is incompatible with -incremental (the session engine is its own incremental driver: one warm shared solver across deltas)")
		}
		if o.Stream {
			return fmt.Errorf("verify: -churn is incompatible with -stream (streaming releases terms the session's caches and warm solver still reference)")
		}
		if o.Schedule == ScheduleSteal {
			return fmt.Errorf("verify: -churn is incompatible with -schedule steal (the session engine is serial by construction)")
		}
		if o.Portfolio > 1 {
			return fmt.Errorf("verify: -churn is incompatible with -portfolio %d (racers need a frozen context; the session's context must stay mutable to re-encode deltas)", o.Portfolio)
		}
		if o.Parallel > 1 {
			return fmt.Errorf("verify: -churn is incompatible with -parallel %d (a frozen shared context cannot re-encode deltas; use -parallel 1)", o.Parallel)
		}
	}
	return nil
}

// Observer resolves the effective sink: the explicit Options.Obs, else the
// process-wide default.
func (o Options) Observer() *obs.Obs {
	if o.Obs != nil {
		return o.Obs
	}
	return obs.Default()
}

// Workers returns the effective worker count for the options.
func (o Options) Workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs f(0), ..., f(n-1) on up to workers goroutines and waits for
// all of them. With workers <= 1 the calls run inline in index order. It is
// the fan-out primitive shared by find-all verification and localization;
// f must write only to index-owned slots.
func ForEach(workers, n int, f func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { f(i) })
}

// ForEachWorker is ForEach with the worker's identity passed to f:
// worker is 0 for inline (serial) execution and 1..workers on the pool —
// the tracer uses it as the Chrome trace tid so the fan-out is visible.
func ForEachWorker(workers, n int, f func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				f(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// Violation describes a violated assertion with its counterexample.
type Violation struct {
	Label string
	Info  *lpi.AssertionInfo // nil for non-LPI assertions
	Model *smt.Model
	// Cex renders the counterexample's variable assignment.
	Cex string
	// Cond is the violation condition (used by bug localization).
	Cond *smt.Term
}

// Stats captures cost metrics the paper reports in Table 3 / Figure 11.
type Stats struct {
	EncodeTime time.Duration
	// SolveTime is the wall-clock duration of the solving phase; under
	// parallelism it shrinks with the worker count.
	SolveTime time.Duration
	// SolveCPU is the cumulative time spent inside individual SMT checks,
	// summed across workers; it is (modulo scheduling noise) independent of
	// the worker count and is the fair cost metric for parallel runs.
	SolveCPU  time.Duration
	GCLSize   int
	TermNodes int // DAG nodes in the term context (memory proxy)
	// CNFClauses and SATVars are summed across every solver instance the
	// run created — in find-all mode one fresh solver per consumed
	// assertion, in find-first mode the main disjunction query plus any
	// divergence re-check solvers. Both modes use the same summation
	// semantics, so the fields mean "total CNF footprint of the run" (the
	// paper's memory proxy) regardless of mode.
	CNFClauses int
	SATVars    int
	Assertions int
	// Workers is the effective worker count of the solving phase.
	Workers int

	// Incremental records whether the run shared solvers across checks;
	// Shards is the number of per-worker incremental solvers it used
	// (0 in fresh mode).
	Incremental bool
	Shards      int
	// SimplifyRewrites counts DAG nodes changed by the simplification
	// pass (0 when the pass is off).
	SimplifyRewrites int64
	// PrefixClauses is the Tseitin cost of each shard's first check
	// summed over shards — the "blast once" part of the run, dominated by
	// the shared VC prefix. Later checks pay only their per-assertion
	// delta.
	PrefixClauses int64

	// SAT-core search totals, summed across the same solver instances as
	// CNFClauses/SATVars. In fresh mode these are deterministic for a
	// given formula at every worker count (every check runs a
	// deterministic fresh solver); in incremental mode they depend on the
	// shard composition and are only deterministic for a fixed worker
	// count.
	Conflicts     int64
	Decisions     int64
	Propagations  int64
	Restarts      int64
	LearntClauses int64
	LearntLits    int64
	LearntDeleted int64
	// TseitinClauses counts CNF clauses emitted by the blasters (>=
	// retained CNFClauses); the headline metric incremental mode shrinks.
	// BlastHits counts per-term blast-cache hits — the reuse incremental
	// mode buys.
	TseitinClauses int64
	BlastHits      int64

	// CNF preprocessing totals, summed across the same solver instances
	// (all zero with Options.Preprocess off).
	ElimVars            int64
	SubsumedClauses     int64
	StrengthenedClauses int64
	// SliceConjuncts and SliceDropped count the VC conjuncts seen and
	// removed by cone-of-influence slicing (zero with Options.Slice off).
	SliceConjuncts int64
	SliceDropped   int64

	// Stream records whether the run released transient terms as it went;
	// StreamReleases counts arena rollbacks and ReleasedTerms the terms
	// they discarded (all zero with Options.Stream off).
	Stream         bool
	StreamReleases int64
	ReleasedTerms  int64

	// Schedule names the find-all scheduler when it is not the static
	// default ("steal"); Steals counts checks executed by a worker other
	// than their static owner (zero with static scheduling).
	Schedule string
	Steals   int64
	// Portfolio is the racer count per check (0 with racing off).
	// RacesWon counts raced checks some racer decided; RacesLost counts
	// the racers beaten or cancelled in those races; CancelledCPU totals
	// the CPU cancelled racers burned before the token stopped them.
	Portfolio    int
	RacesWon     int64
	RacesLost    int64
	CancelledCPU time.Duration

	// DeltaReuse and DeltaRecheck are the session engine's per-Apply
	// split: assertions whose verdict was replayed from the session cache
	// vs assertions re-solved after a table delta (both zero outside
	// session.go). Cost data — zeroed in canonical reports, which is what
	// makes a replay-heavy session report byte-identical to a fresh run.
	DeltaReuse   int64
	DeltaRecheck int64

	// PerAssertion is the find-all per-assertion cost breakdown (the data
	// Figure 11 plots): one entry per consumed assertion, in assertion
	// order. Empty in find-first mode, which checks all assertions in one
	// disjunction query.
	PerAssertion []AssertionCost

	// Histograms is the flight recorder's distribution snapshot
	// (flight.go): per-check wall time and conflicts, learnt-clause
	// sizes, and slice-drop ratios, log2-bucketed. Cost data like
	// everything above — zeroed in canonical reports.
	Histograms []HistogramStat
}

// AssertionCost is the solve cost of one assertion in find-all mode.
type AssertionCost struct {
	Label  string
	Status string // "sat" (violated), "unsat" (holds), "unknown" (budget)
	// SolveTime is this check's wall time inside the worker.
	SolveTime    time.Duration
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	CNFClauses   int
	SATVars      int
}

// addSolver folds one solver instance's counters into the run totals.
func (st *Stats) addSolver(ss smt.SolverStats) {
	st.CNFClauses += ss.Clauses
	st.SATVars += ss.SATVars
	st.Conflicts += ss.Conflicts
	st.Decisions += ss.Decisions
	st.Propagations += ss.Propagations
	st.Restarts += ss.Restarts
	st.LearntClauses += ss.LearntClauses
	st.LearntLits += ss.LearntLits
	st.LearntDeleted += ss.LearntDeleted
	st.TseitinClauses += ss.TseitinClauses
	st.BlastHits += ss.BlastHits
	st.ElimVars += ss.ElimVars
	st.SubsumedClauses += ss.Subsumed
	st.StrengthenedClauses += ss.Strengthened
}

// statsDelta is the work between two snapshots of one (shared) solver.
func statsDelta(cur, prev smt.SolverStats) smt.SolverStats {
	var sizes [smt.NumLearntSizeBuckets]int64
	for i := range sizes {
		sizes[i] = cur.LearntSizes[i] - prev.LearntSizes[i]
	}
	return smt.SolverStats{
		LearntSizes:    sizes,
		Decisions:      cur.Decisions - prev.Decisions,
		Conflicts:      cur.Conflicts - prev.Conflicts,
		Propagations:   cur.Propagations - prev.Propagations,
		Restarts:       cur.Restarts - prev.Restarts,
		LearntClauses:  cur.LearntClauses - prev.LearntClauses,
		LearntLits:     cur.LearntLits - prev.LearntLits,
		LearntDeleted:  cur.LearntDeleted - prev.LearntDeleted,
		ElimVars:       cur.ElimVars - prev.ElimVars,
		Subsumed:       cur.Subsumed - prev.Subsumed,
		Strengthened:   cur.Strengthened - prev.Strengthened,
		TseitinClauses: cur.TseitinClauses - prev.TseitinClauses,
		BlastHits:      cur.BlastHits - prev.BlastHits,
		BlastMisses:    cur.BlastMisses - prev.BlastMisses,
		Clauses:        cur.Clauses - prev.Clauses,
		SATVars:        cur.SATVars - prev.SATVars,
	}
}

// addStats sums two solver-stat snapshots (used to fold a counterexample
// re-check's cost into its assertion's delta).
func addStats(a, b smt.SolverStats) smt.SolverStats {
	var sizes [smt.NumLearntSizeBuckets]int64
	for i := range sizes {
		sizes[i] = a.LearntSizes[i] + b.LearntSizes[i]
	}
	return smt.SolverStats{
		LearntSizes:    sizes,
		Decisions:      a.Decisions + b.Decisions,
		Conflicts:      a.Conflicts + b.Conflicts,
		Propagations:   a.Propagations + b.Propagations,
		Restarts:       a.Restarts + b.Restarts,
		LearntClauses:  a.LearntClauses + b.LearntClauses,
		LearntLits:     a.LearntLits + b.LearntLits,
		LearntDeleted:  a.LearntDeleted + b.LearntDeleted,
		ElimVars:       a.ElimVars + b.ElimVars,
		Subsumed:       a.Subsumed + b.Subsumed,
		Strengthened:   a.Strengthened + b.Strengthened,
		TseitinClauses: a.TseitinClauses + b.TseitinClauses,
		BlastHits:      a.BlastHits + b.BlastHits,
		BlastMisses:    a.BlastMisses + b.BlastMisses,
		Clauses:        a.Clauses + b.Clauses,
		SATVars:        a.SATVars + b.SATVars,
	}
}

// countSolver publishes one solver instance's counters to the metrics
// registry (nil-safe). Called from worker goroutines — the registry's
// counters are atomic, which is what the -race CI job exercises.
func countSolver(o *obs.Obs, ss smt.SolverStats, status smt.Status) {
	if o == nil || o.Metrics == nil {
		return
	}
	m := o.Metrics
	m.Counter(obs.CtrSATConflicts).Add(ss.Conflicts)
	m.Counter(obs.CtrSATDecisions).Add(ss.Decisions)
	m.Counter(obs.CtrSATPropagations).Add(ss.Propagations)
	m.Counter(obs.CtrSATRestarts).Add(ss.Restarts)
	m.Counter(obs.CtrSATLearntClause).Add(ss.LearntClauses)
	m.Counter(obs.CtrSATLearntLits).Add(ss.LearntLits)
	m.Counter(obs.CtrSATLearntDeleted).Add(ss.LearntDeleted)
	m.Counter(obs.CtrSATElimVars).Add(ss.ElimVars)
	m.Counter(obs.CtrSATSubsumed).Add(ss.Subsumed)
	m.Counter(obs.CtrSATStrengthened).Add(ss.Strengthened)
	m.Counter(obs.CtrSMTTseitinClauses).Add(ss.TseitinClauses)
	m.Counter(obs.CtrSMTBlastHits).Add(ss.BlastHits)
	m.Counter(obs.CtrSMTBlastMisses).Add(ss.BlastMisses)
	m.Counter(obs.CtrVerifyChecks).Add(1)
	switch status {
	case smt.Sat:
		m.Counter(obs.CtrVerifySat).Add(1)
	case smt.Unsat:
		m.Counter(obs.CtrVerifyUnsat).Add(1)
	default:
		m.Counter(obs.CtrVerifyUnknown).Add(1)
	}
}

// Report is the outcome of a verification run.
type Report struct {
	Holds      bool
	Violations []*Violation
	Stats      Stats

	// Internals exposed for bug localization and tooling.
	Ctx     *smt.Ctx
	Env     *encode.Env
	Program gcl.Stmt
	Result  *gcl.Result

	// hists holds the run's live flight-recorder histograms (flight.go)
	// behind a pointer: they contain atomics, and Report is shallow-
	// copied by CanonicalJSON. Nil on bare Reports (all observes no-op).
	hists *runHists
}

// ErrBudget reports solver budget exhaustion (the analogue of the paper's
// OOT entries).
var ErrBudget = fmt.Errorf("verify: solver budget exhausted")

// Run verifies prog (+ optional snapshot) against spec.
func Run(prog *p4.Program, snap *tables.Snapshot, spec *lpi.Spec, opts Options) (*Report, error) {
	o := opts.Observer()
	ctx := smt.NewCtx()
	eopts := opts.Encode
	eopts.TrackModified = lpi.TrackModified(spec)
	endEncode := o.Phase(0, "encode")
	env := encode.NewEnv(ctx, prog, snap, eopts)
	endEncode()
	return RunWithEnv(ctx, env, spec, opts)
}

// RunWithEnv verifies with a caller-provided context and environment
// (used by localization to re-encode variants of the same program).
func RunWithEnv(ctx *smt.Ctx, env *encode.Env, spec *lpi.Spec, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.Observer()
	// Intern stats are cumulative on the (possibly reused) context; publish
	// only this run's delta to the registry.
	internH0, internM0, frozen0 := ctx.InternStats()
	t0 := time.Now()
	endCompose := o.Phase(0, "compose")
	comp := lpi.NewCompiler(spec, env)
	program, err := comp.Compile()
	endCompose()
	if err != nil {
		return nil, err
	}
	endVCGen := o.Phase(0, "vcgen")
	enc := gcl.NewEncoder(ctx)
	res := enc.Encode(program, nil)
	endVCGen()
	encodeTime := time.Since(t0)

	rep := &Report{
		Ctx:     ctx,
		Env:     env,
		Program: program,
		Result:  res,
		Stats: Stats{
			EncodeTime: encodeTime,
			GCLSize:    gcl.Size(program),
			Assertions: len(res.Violations),
		},
		hists: &runHists{},
	}
	if o != nil && o.Metrics != nil {
		// Structural coverage feed: which GCL statement kinds this program
		// compiled into, and how many of each (log2-bucketed downstream).
		for kind, n := range gcl.KindCounts(program) {
			o.Metrics.Counter(obs.CtrGCLStmtPrefix + kind).Add(int64(n))
		}
	}
	t1 := time.Now()
	endSolve := o.Phase(0, "solve")
	err = rep.check(opts)
	endSolve()
	rep.Stats.SolveTime = time.Since(t1)
	rep.Stats.TermNodes = ctx.NumTerms()
	rep.Holds = len(rep.Violations) == 0
	rep.Stats.Histograms = rep.hists.stats()
	if o != nil {
		rep.hists.mergeInto(o.Metrics)
	}
	if o != nil && o.Metrics != nil {
		h1, m1, f1 := ctx.InternStats()
		o.Metrics.Counter(obs.CtrSMTInternHits).Add(h1 - internH0)
		o.Metrics.Counter(obs.CtrSMTInternMisses).Add(m1 - internM0)
		o.Metrics.Counter(obs.CtrSMTFrozenLocks).Add(f1 - frozen0)
		o.Metrics.Gauge(obs.GaugeTermNodes).Set(int64(rep.Stats.TermNodes))
		o.Metrics.Gauge(obs.GaugeVerifyWorkers).Set(int64(rep.Stats.Workers))
		if rep.Stats.Schedule == "steal" {
			o.Metrics.Counter(obs.CtrVerifySteals).Add(rep.Stats.Steals)
		}
		if rep.Stats.Portfolio > 1 {
			o.Metrics.Gauge(obs.GaugeVerifyPortfolio).Set(int64(rep.Stats.Portfolio))
			o.Metrics.Counter(obs.CtrVerifyRacesWon).Add(rep.Stats.RacesWon)
			o.Metrics.Counter(obs.CtrVerifyRacesLost).Add(rep.Stats.RacesLost)
			o.Metrics.Counter(obs.CtrVerifyCancelledUS).Add(rep.Stats.CancelledCPU.Microseconds())
		}
	}
	return rep, err
}

// statusString renders a solver verdict for reports and logs.
func statusString(st smt.Status) string {
	switch st {
	case smt.Sat:
		return "sat"
	case smt.Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

func (rep *Report) check(opts Options) error {
	if !opts.FindAll {
		return rep.checkFirst(opts)
	}
	if opts.Incremental {
		return rep.checkAllIncremental(opts)
	}
	if opts.Stream {
		return rep.checkAllStream(opts)
	}
	if opts.Schedule == ScheduleSteal {
		return rep.checkAllSteal(opts)
	}
	return rep.checkAll(opts)
}

// checkOne is the find-all unit of work: check one (possibly sliced)
// condition with a deterministic fresh solver. A Sat under preprocessing
// or a transformed condition is confirmed on the ORIGINAL condition by a
// plain fresh solver, so verdicts and counterexamples match the baseline
// byte-for-byte: a sliced Sat with a full-condition Unsat means the
// dropped (variable-disjoint) remainder was unsatisfiable on its own —
// the assertion holds, exactly the unsliced verdict. The re-check's cost
// is folded into the assertion's stats.
func (rep *Report) checkOne(opts Options, v *gcl.Violation, checkCond *smt.Term, worker int) (st smt.Status, model *smt.Model, ss smt.SolverStats, cpu time.Duration) {
	o := opts.Observer()
	solver := smt.NewSolver(rep.Ctx)
	if opts.Budget > 0 {
		solver.SetBudget(opts.Budget)
	}
	if opts.Preprocess {
		solver.SetPreprocess(true)
	}
	opts.installCancel(solver)
	installProgress(o, solver, v.Label, worker)
	t0 := time.Now()
	st = solver.Check(checkCond)
	cpu = time.Since(t0)
	ss = solver.SolverStats()
	if st != smt.Sat {
		return
	}
	if opts.Preprocess || checkCond != v.Cond {
		s2 := smt.NewSolver(rep.Ctx)
		if opts.Budget > 0 {
			s2.SetBudget(opts.Budget)
		}
		opts.installCancel(s2)
		installProgress(o, s2, v.Label, worker)
		t1 := time.Now()
		st2 := s2.Check(v.Cond)
		cpu += time.Since(t1)
		ss = addStats(ss, s2.SolverStats())
		st = st2
		if st2 == smt.Sat {
			m := s2.Model()
			s2.ModelCollect(m, v.Cond)
			model = m
		}
		return
	}
	m := solver.Model()
	solver.ModelCollect(m, v.Cond)
	model = m
	return
}

// installCancel installs the run-wide cancellation token on a checking
// solver (a no-op without one). Solver-creation sites call it right after
// the budget install, so a fired deadline stops the transformed check and
// the canonicalizing re-solve alike.
func (o Options) installCancel(s *smt.Solver) {
	if o.Cancel != nil {
		s.SetCancel(o.Cancel)
	}
}

// checkOneShared is the shared-solver unit of work the incremental and
// steal engines use for a worker's own checks: check one (possibly
// transformed) condition on a long-lived solver via an activation literal,
// then make the verdict canonical exactly as fresh mode would — a Sat is
// re-solved on the ORIGINAL condition by a deterministic fresh solver, a
// sliced Sat whose full condition is Unsat becomes Unsat (the dropped,
// variable-disjoint remainder was unsatisfiable on its own), and a
// contradicting re-check surfaces as Unknown rather than fabricating a
// model. prev is the shared solver's rolling stats snapshot; ss is this
// check's delta including any re-check cost, while sharedTseitin is the
// delta's Tseitin clauses alone (the callers' shard-prefix accounting must
// not see the fresh re-solve's blast).
func (rep *Report) checkOneShared(opts Options, v *gcl.Violation, checkCond *smt.Term, worker int, solver *smt.Solver, prev *smt.SolverStats) (st smt.Status, model *smt.Model, ss smt.SolverStats, cpu time.Duration, sharedTseitin int64) {
	o := opts.Observer()
	installProgress(o, solver, v.Label, worker)
	t0 := time.Now()
	lit := solver.Indicator(checkCond)
	st = solver.CheckLits(lit)
	cpu = time.Since(t0)
	cur := solver.SolverStats()
	ss = statsDelta(cur, *prev)
	*prev = cur
	sharedTseitin = ss.TseitinClauses
	if st != smt.Sat {
		return
	}
	s2 := smt.NewSolver(rep.Ctx)
	if opts.Budget > 0 {
		s2.SetBudget(opts.Budget)
	}
	opts.installCancel(s2)
	installProgress(o, s2, v.Label, worker)
	t1 := time.Now()
	st2 := s2.Check(v.Cond)
	cpu += time.Since(t1)
	ss = addStats(ss, s2.SolverStats())
	switch {
	case st2 == smt.Sat:
		m := s2.Model()
		s2.ModelCollect(m, v.Cond)
		model = m
	case st2 == smt.Unsat && opts.Slice:
		st = smt.Unsat
	default:
		st = smt.Unknown
	}
	return
}

// checkOut is one assertion's result slot in the find-all engines.
type checkOut struct {
	done   bool
	stolen bool // executed by a worker other than its static owner
	status smt.Status
	model  *smt.Model
	ss     smt.SolverStats
	cpu    time.Duration
	// Race tallies (zero with racing off); see raceOutcome.
	won, lost int64
	waste     time.Duration
}

// fill copies a race outcome into the slot.
func (out *checkOut) fill(rc raceOutcome) {
	out.status, out.model, out.ss, out.cpu = rc.status, rc.model, rc.ss, rc.cpu
	out.won, out.lost, out.waste = rc.won, rc.lost, rc.waste
}

// foldRace folds a consumed slot's race and steal tallies into the run
// totals. Like PerAssertion, the totals cover the consumed prefix.
func (st *Stats) foldRace(out *checkOut) {
	st.RacesWon += out.won
	st.RacesLost += out.lost
	st.CancelledCPU += out.waste
	if out.stolen {
		st.Steals++
	}
}

// checkFirst runs the §8.1 find-first mode: one query over the disjunction
// of all violation conditions ("checking all assertions together").
func (rep *Report) checkFirst(opts Options) error {
	ctx := rep.Ctx
	o := opts.Observer()
	solver := smt.NewSolver(ctx)
	if opts.Budget > 0 {
		solver.SetBudget(opts.Budget)
	}
	if opts.Preprocess {
		solver.SetPreprocess(true)
	}
	rep.Stats.Workers = 1

	disj := ctx.False()
	for _, v := range rep.Result.Violations {
		disj = ctx.Or(disj, v.Cond)
	}
	installProgress(o, solver, "all-assertions", 0)
	endSpan := o.Span(0, "solve:all-assertions")
	t0 := time.Now()
	st := solver.Check(disj)
	d0 := time.Since(t0)
	rep.Stats.SolveCPU += d0
	endSpan()
	ss := solver.SolverStats()
	rep.Stats.addSolver(ss)
	rep.recordCheck(o, "all-assertions", 0, ss, st, d0)
	o.Event("check_done", map[string]any{
		"mode": "find-first", "status": statusString(st),
		"conflicts": ss.Conflicts, "clauses": ss.Clauses,
	})
	if st == smt.Unknown {
		return ErrBudget
	}
	if st == smt.Unsat {
		return nil
	}
	m := solver.Model()
	solver.ModelCollect(m, disj)
	if opts.Preprocess {
		// Preprocessing reconstructs models for eliminated variables, which
		// can yield a different (equally valid) assignment than the plain
		// solver — and the model picks which assertion find-first reports.
		// Re-solve the disjunction with a plain fresh solver and use its
		// deterministic model so reports match the unpreprocessed baseline.
		s2 := smt.NewSolver(ctx)
		if opts.Budget > 0 {
			s2.SetBudget(opts.Budget)
		}
		installProgress(o, s2, "all-assertions", 0)
		t1 := time.Now()
		st2 := s2.Check(disj)
		d1 := time.Since(t1)
		rep.Stats.SolveCPU += d1
		ss2 := s2.SolverStats()
		rep.Stats.addSolver(ss2)
		rep.recordCheck(o, "all-assertions", 0, ss2, st2, d1)
		if st2 == smt.Unknown {
			return ErrBudget
		}
		if st2 != smt.Sat {
			return fmt.Errorf("verify: plain re-check contradicts preprocessed sat verdict")
		}
		m = s2.Model()
		s2.ModelCollect(m, disj)
	}
	// Identify the first assertion the model violates.
	for _, v := range rep.Result.Violations {
		if m.Bool(v.Cond) {
			rep.Violations = append(rep.Violations, rep.makeViolation(v, m))
			return nil
		}
	}
	// The model satisfied the disjunction but the evaluator attributes it
	// to no single assertion (possible only through a blaster/evaluator
	// divergence). Re-check each assertion under the model's assignment
	// rather than emitting an unusable "unknown" violation.
	assignment := modelAssignment(ctx, m, disj)
	for _, v := range rep.Result.Violations {
		s2 := smt.NewSolver(ctx)
		if opts.Budget > 0 {
			s2.SetBudget(opts.Budget)
		}
		installProgress(o, s2, v.Label, 0)
		t1 := time.Now()
		st2 := s2.Check(ctx.And(assignment, v.Cond))
		d1 := time.Since(t1)
		rep.Stats.SolveCPU += d1
		ss2 := s2.SolverStats()
		rep.Stats.addSolver(ss2)
		rep.recordCheck(o, v.Label, 0, ss2, st2, d1)
		if st2 == smt.Sat {
			m2 := s2.Model()
			s2.ModelCollect(m2, v.Cond)
			rep.Violations = append(rep.Violations, rep.makeViolation(v, m2))
			return nil
		}
	}
	return fmt.Errorf("verify: find-first produced a model matching no assertion (solver/evaluator inconsistency)")
}

// modelAssignment renders m's assignment of the variables of t as a
// conjunction of equalities, for re-checking queries under a fixed model.
func modelAssignment(ctx *smt.Ctx, m *smt.Model, t *smt.Term) *smt.Term {
	cond := ctx.True()
	for _, v := range smt.Vars(t) {
		if v.Op == smt.OpBoolVar {
			cond = ctx.And(cond, ctx.Iff(v, ctx.Bool(m.Bool(v))))
		} else {
			cond = ctx.And(cond, ctx.Eq(v, ctx.BVBig(m.BV(v), v.Width)))
		}
	}
	return cond
}

// checkAll runs the §5.1/§8.1 find-all mode: every violation condition is
// checked independently. Checks fan out across a worker pool over the
// frozen term context; every assertion gets its own deterministic fresh
// solver blasting from the shared read-only DAG, so the report is
// byte-identical at every Parallel setting. Results are aggregated in
// assertion order.
func (rep *Report) checkAll(opts Options) error {
	conds := rep.Result.Violations
	n := len(conds)
	workers := opts.Workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	rep.Stats.Workers = workers
	if opts.Portfolio > 1 {
		rep.Stats.Portfolio = opts.Portfolio
	}
	o := opts.Observer()

	// Cone-of-influence slices are computed serially before the context may
	// freeze (slicing creates terms). With the flag off every checkCond is
	// the original condition and the paths below are unchanged.
	checkConds := make([]*smt.Term, n)
	for i, v := range conds {
		checkConds[i] = v.Cond
	}
	if opts.Slice {
		rep.sliceConds(opts, conds, checkConds)
	}

	outs := make([]checkOut, n)

	// limit is the lowest assertion index seen to exhaust the budget;
	// workers skip checks at or beyond it so every worker stops promptly.
	limit := int64(n)

	runCheck := func(worker, i int) {
		v := conds[i]
		endSpan := o.Span(worker, "solve:"+v.Label)
		out := &outs[i]
		if opts.Portfolio > 1 {
			out.fill(rep.raceOne(opts, v, checkConds[i], worker, nil))
		} else {
			out.status, out.model, out.ss, out.cpu = rep.checkOne(opts, v, checkConds[i], worker)
		}
		endSpan()
		rep.recordCheck(o, v.Label, worker, out.ss, out.status, out.cpu)
		out.done = true
	}

	if workers > 1 || opts.Portfolio > 1 {
		// The context becomes shared read-only state; blasting and model
		// extraction never intern, and any stray term creation serializes.
		// Portfolio racing needs this even on one worker: the racers are
		// concurrent goroutines over the same DAG.
		rep.Ctx.Freeze()
	}
	if workers > 1 {
		if o != nil && o.Tracer != nil {
			o.Tracer.NameThread(0, "main")
			for w := 1; w <= workers; w++ {
				o.Tracer.NameThread(w, fmt.Sprintf("worker-%d", w))
			}
		}
		ForEachWorker(workers, n, func(worker, i int) {
			if int64(i) >= atomic.LoadInt64(&limit) {
				return
			}
			runCheck(worker, i)
			if outs[i].status == smt.Unknown {
				for {
					cur := atomic.LoadInt64(&limit)
					if int64(i) >= cur || atomic.CompareAndSwapInt64(&limit, cur, int64(i)) {
						break
					}
				}
			}
		})
	}

	// Consume results in assertion order; any check skipped by the early
	// stop (or by workers == 1, which skips the fan-out entirely) runs
	// inline here, so the consumed prefix is identical at every Parallel
	// setting: violations up to the first budget-exhausted check. Inline
	// re-runs use worker/tid 0 (the consume loop runs on the caller).
	var err error
	for i, v := range conds {
		if !outs[i].done {
			runCheck(0, i)
		}
		out := &outs[i]
		rep.Stats.SolveCPU += out.cpu
		rep.Stats.addSolver(out.ss)
		rep.Stats.foldRace(out)
		rep.Stats.PerAssertion = append(rep.Stats.PerAssertion, AssertionCost{
			Label:        v.Label,
			Status:       statusString(out.status),
			SolveTime:    out.cpu,
			Conflicts:    out.ss.Conflicts,
			Decisions:    out.ss.Decisions,
			Propagations: out.ss.Propagations,
			Restarts:     out.ss.Restarts,
			CNFClauses:   out.ss.Clauses,
			SATVars:      out.ss.SATVars,
		})
		o.Event("assertion", map[string]any{
			"label": v.Label, "status": statusString(out.status),
			"solve_us": out.cpu.Microseconds(), "conflicts": out.ss.Conflicts,
			"clauses": out.ss.Clauses,
		})
		if out.status == smt.Unknown {
			o.Event("budget_exhausted", map[string]any{
				"label": v.Label, "budget": opts.Budget,
			})
			err = ErrBudget
			break
		}
		if out.status == smt.Sat {
			rep.Violations = append(rep.Violations, rep.makeViolation(v, out.model))
		}
	}
	return err
}

// StaticShards partitions indices 0..n-1 into `shards` slices by index
// modulo: shard s owns s, s+shards, s+2*shards, ... in ascending order.
// Unlike the dynamic scheduling of ForEachWorker, the assignment depends
// only on (shards, n) — the property incremental solving needs, because
// each shard accumulates state in a shared solver and the assertion
// sequence a solver sees must be reproducible. With n <= 0 it returns no
// shards at all: an empty shard would still make its owner spawn a solver
// (and blast the shared prefix) for zero checks, so callers must get
// nothing to iterate instead.
func StaticShards(shards, n int) [][]int {
	if n <= 0 {
		return nil
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	out := make([][]int, shards)
	for i := 0; i < n; i++ {
		out[i%shards] = append(out[i%shards], i)
	}
	return out
}

// checkAllIncremental is find-all with shared solvers ("blast once, check
// many"): assertions are statically sharded by index across workers, each
// shard owns one incremental solver, and every assertion is checked via an
// activation literal (Solver.Indicator + CheckLits) so the blasted CNF of
// the shared VC prefix and all learned clauses persist across the shard's
// checks. With Simplify set, the algebraic simplification pass rewrites
// all conditions over the shared DAG first.
//
// Determinism: sat/unsat verdicts are semantic, so they match fresh mode
// and are identical at every worker count. Counterexample models from a
// shared solver would depend on the shard's accumulated state, so each
// violated assertion is re-solved on its ORIGINAL condition by a
// deterministic fresh solver — the exact procedure fresh mode uses — which
// makes violations and counterexamples byte-identical to fresh mode.
// Budget-exhaustion (Unknown) verdicts are the one exception: learned
// clauses change how far a budget reaches, so they can differ between
// modes and worker counts (documented in DESIGN.md).
func (rep *Report) checkAllIncremental(opts Options) error {
	conds := rep.Result.Violations
	n := len(conds)
	workers := opts.Workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	rep.Stats.Workers = workers
	rep.Stats.Incremental = true
	rep.Stats.Shards = workers
	o := opts.Observer()

	// Phase 1 (serial, before any sharing): slice, then simplify, the
	// conditions over the common hash-consed DAG. Done once; every shard
	// blasts the smaller forms.
	checkConds := make([]*smt.Term, n)
	for i, v := range conds {
		checkConds[i] = v.Cond
	}
	if opts.Slice {
		rep.sliceConds(opts, conds, checkConds)
	}
	if opts.Simplify {
		endSimp := o.Phase(0, "simplify")
		simp := smt.NewSimplifier(rep.Ctx)
		for i, c := range checkConds {
			checkConds[i] = simp.Simplify(c)
		}
		endSimp()
		rep.Stats.SimplifyRewrites = simp.Rewrites
		if o != nil && o.Metrics != nil {
			o.Metrics.Counter(obs.CtrSMTSimplifyRewrites).Add(simp.Rewrites)
		}
		o.Event("simplify", map[string]any{"rewrites": simp.Rewrites})
	}

	outs := make([]checkOut, n)
	prefixClauses := make([]int64, workers) // dominating one-check Tseitin delta per shard

	// limit is the lowest assertion index seen to exhaust the budget;
	// shards stop at it (their remaining indices are all larger).
	limit := int64(n)

	// runShard walks the shard's indices in ascending order on one shared
	// solver. worker is the tracer tid (0 for the serial inline path).
	runShard := func(worker, shard int, indices []int) {
		solver := smt.NewSolver(rep.Ctx)
		if opts.Budget > 0 {
			solver.SetBudget(opts.Budget)
		}
		if opts.Preprocess {
			solver.SetPreprocess(true)
		}
		var prev smt.SolverStats
		for _, i := range indices {
			if int64(i) >= atomic.LoadInt64(&limit) {
				break
			}
			v := conds[i]
			out := &outs[i]
			endSpan := o.Span(worker, "solve:"+v.Label)
			var sharedTseitin int64
			out.status, out.model, out.ss, out.cpu, sharedTseitin =
				rep.checkOneShared(opts, v, checkConds[i], worker, solver, &prev)
			if sharedTseitin > prefixClauses[shard] {
				// The check that first touches the real VC blasts the whole
				// shared prefix; later checks reuse its CNF. The largest
				// single-check delta is that one-time cost (a plain "first
				// check" would under-report when an early condition
				// simplifies to a constant and blasts nothing).
				prefixClauses[shard] = sharedTseitin
			}
			endSpan()
			rep.recordCheck(o, v.Label, worker, out.ss, out.status, out.cpu)
			if out.status == smt.Unknown {
				for {
					cur := atomic.LoadInt64(&limit)
					if int64(i) >= cur || atomic.CompareAndSwapInt64(&limit, cur, int64(i)) {
						break
					}
				}
			}
		}
	}

	shards := StaticShards(workers, n)
	if workers > 1 {
		if o != nil && o.Tracer != nil {
			o.Tracer.NameThread(0, "main")
			for w := 1; w <= workers; w++ {
				o.Tracer.NameThread(w, fmt.Sprintf("worker-%d", w))
			}
		}
		// The context becomes shared read-only state (simplification above
		// already happened); blasting and model extraction never intern,
		// and any stray term creation serializes.
		rep.Ctx.Freeze()
		var wg sync.WaitGroup
		for s := range shards {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				runShard(shard+1, shard, shards[shard])
			}(s)
		}
		wg.Wait()
	} else if len(shards) > 0 {
		runShard(0, 0, shards[0])
	}
	for _, pc := range prefixClauses {
		rep.Stats.PrefixClauses += pc
	}
	if o != nil && o.Metrics != nil {
		o.Metrics.Gauge(obs.GaugeVerifyShards).Set(int64(workers))
	}

	// Consume in assertion order; stop at the first budget-exhausted
	// check. Every index below the final limit was processed by its
	// owning shard (a shard only skips indices at or beyond the limit),
	// so the consumed prefix is complete.
	var err error
	for i, v := range conds {
		if int64(i) > atomic.LoadInt64(&limit) {
			break
		}
		out := &outs[i]
		rep.Stats.SolveCPU += out.cpu
		rep.Stats.addSolver(out.ss)
		rep.Stats.PerAssertion = append(rep.Stats.PerAssertion, AssertionCost{
			Label:        v.Label,
			Status:       statusString(out.status),
			SolveTime:    out.cpu,
			Conflicts:    out.ss.Conflicts,
			Decisions:    out.ss.Decisions,
			Propagations: out.ss.Propagations,
			Restarts:     out.ss.Restarts,
			CNFClauses:   out.ss.Clauses,
			SATVars:      out.ss.SATVars,
		})
		o.Event("assertion", map[string]any{
			"label": v.Label, "status": statusString(out.status),
			"solve_us": out.cpu.Microseconds(), "conflicts": out.ss.Conflicts,
			"clauses": out.ss.Clauses, "incremental": true,
		})
		if out.status == smt.Unknown {
			o.Event("budget_exhausted", map[string]any{
				"label": v.Label, "budget": opts.Budget,
			})
			err = ErrBudget
			break
		}
		if out.status == smt.Sat {
			rep.Violations = append(rep.Violations, rep.makeViolation(v, out.model))
		}
	}
	return err
}

func (rep *Report) makeViolation(v *gcl.Violation, m *smt.Model) *Violation {
	out := &Violation{Label: v.Label, Model: m, Cond: v.Cond}
	if info, ok := v.Meta.(*lpi.AssertionInfo); ok {
		out.Info = info
	}
	out.Cex = rep.renderCex(v.Cond, m)
	return out
}

// renderCex formats the assignment of the input variables mentioned in the
// violation condition.
func (rep *Report) renderCex(cond *smt.Term, m *smt.Model) string {
	vars := smt.Vars(cond)
	var lines []string
	for _, v := range vars {
		name := v.Name
		// Internal encoder variables are noise in reports.
		if strings.HasPrefix(name, "$enc.") || strings.HasPrefix(name, "choice!") ||
			strings.HasPrefix(name, "havoc$") || strings.Contains(name, "!") {
			continue
		}
		// The residual free value of a header field is its pre-parse
		// content, which is unobservable garbage — suppress it. (Its wire
		// image appears as pkt.<field> instead.)
		if rep.Env != nil && !strings.HasPrefix(name, "pkt.") && !strings.HasPrefix(name, "$") {
			if i := strings.LastIndex(name, "."); i > 0 {
				if inst := rep.Env.Prog.Instance(name[:i]); inst != nil && inst.IsHeader {
					continue
				}
			}
		}
		if v.Op == smt.OpBoolVar {
			lines = append(lines, fmt.Sprintf("%s = %v", name, m.Bool(v)))
		} else {
			lines = append(lines, fmt.Sprintf("%s = 0x%x", name, m.BV(v)))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// BlockedBehaviour names a table behaviour that participates in a
// violation found under any-entries verification (§2: "for the table
// entries potentially triggering bugs, the second case enables us to
// record these entries in a blocklist ahead of time, preventing them in
// runtime").
type BlockedBehaviour struct {
	Table string // fully qualified Control.table
	// Hit and ActionLAID are the free-choice values of the counterexample:
	// an entry making this table hit with this action on the
	// counterexample's packet would trigger the violation.
	Hit        bool
	ActionLAID uint64
	Assertion  string
}

// Blocklist extracts, for each violation, the wildcard-table behaviours of
// its counterexample. Only meaningful when the run had no snapshot (tables
// encoded as function variables).
func (rep *Report) Blocklist() []BlockedBehaviour {
	var out []BlockedBehaviour
	ctx := rep.Ctx
	for _, v := range rep.Violations {
		seen := map[string]bool{}
		for _, t := range smt.Vars(v.Cond) {
			name := t.Name
			if !strings.HasPrefix(name, "$tbl.") || !strings.HasSuffix(name, ".hit") {
				continue
			}
			fq := strings.TrimSuffix(strings.TrimPrefix(name, "$tbl."), ".hit")
			if seen[fq] {
				continue
			}
			seen[fq] = true
			out = append(out, BlockedBehaviour{
				Table:      fq,
				Hit:        v.Model.Bool(ctx.BoolVar("$tbl." + fq + ".hit")),
				ActionLAID: v.Model.Uint64(ctx.Var("$tbl."+fq+".laid", 16)),
				Assertion:  v.Label,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Assertion < out[j].Assertion
	})
	return out
}

// String renders a human-readable report.
func (rep *Report) String() string {
	var b strings.Builder
	if rep.Holds {
		fmt.Fprintf(&b, "verified: all %d assertions hold\n", rep.Stats.Assertions)
	} else {
		fmt.Fprintf(&b, "VIOLATED: %d of %d assertions\n", len(rep.Violations), rep.Stats.Assertions)
		for _, v := range rep.Violations {
			fmt.Fprintf(&b, "  assertion %s", v.Label)
			if v.Info != nil {
				fmt.Fprintf(&b, " (line %d: %s)", v.Info.Line, v.Info.Text)
			}
			b.WriteString("\n")
			for _, line := range strings.Split(v.Cex, "\n") {
				if line != "" {
					fmt.Fprintf(&b, "    %s\n", line)
				}
			}
		}
	}
	fmt.Fprintf(&b, "stats: encode %v, solve %v (cpu %v, %d workers), gcl %d stmts, %d terms, %d clauses, %d sat vars\n",
		rep.Stats.EncodeTime.Round(time.Millisecond), rep.Stats.SolveTime.Round(time.Millisecond),
		rep.Stats.SolveCPU.Round(time.Millisecond), rep.Stats.Workers,
		rep.Stats.GCLSize, rep.Stats.TermNodes, rep.Stats.CNFClauses, rep.Stats.SATVars)
	fmt.Fprintf(&b, "sat:   %d conflicts, %d decisions, %d propagations, %d restarts, %d learnt clauses (%d literals)\n",
		rep.Stats.Conflicts, rep.Stats.Decisions, rep.Stats.Propagations,
		rep.Stats.Restarts, rep.Stats.LearntClauses, rep.Stats.LearntLits)
	if rep.Stats.Incremental {
		fmt.Fprintf(&b, "incr:  %d shards, %d tseitin clauses emitted (%d in shard prefixes), %d blast-cache hits, %d simplifier rewrites, %d learnt deleted\n",
			rep.Stats.Shards, rep.Stats.TseitinClauses, rep.Stats.PrefixClauses,
			rep.Stats.BlastHits, rep.Stats.SimplifyRewrites, rep.Stats.LearntDeleted)
	}
	if rep.Stats.ElimVars+rep.Stats.SubsumedClauses+rep.Stats.StrengthenedClauses > 0 {
		fmt.Fprintf(&b, "prep:  %d vars eliminated, %d clauses subsumed, %d strengthened\n",
			rep.Stats.ElimVars, rep.Stats.SubsumedClauses, rep.Stats.StrengthenedClauses)
	}
	if rep.Stats.SliceConjuncts > 0 {
		fmt.Fprintf(&b, "slice: %d of %d VC conjuncts dropped\n",
			rep.Stats.SliceDropped, rep.Stats.SliceConjuncts)
	}
	if rep.Stats.Stream {
		fmt.Fprintf(&b, "strm:  %d arena releases, %d transient terms discarded\n",
			rep.Stats.StreamReleases, rep.Stats.ReleasedTerms)
	}
	if rep.Stats.DeltaReuse+rep.Stats.DeltaRecheck > 0 {
		fmt.Fprintf(&b, "delta: %d verdicts replayed, %d rechecked\n",
			rep.Stats.DeltaReuse, rep.Stats.DeltaRecheck)
	}
	if rep.Stats.Schedule != "" || rep.Stats.Portfolio > 1 {
		sched := rep.Stats.Schedule
		if sched == "" {
			sched = "static"
		}
		fmt.Fprintf(&b, "sched: %s scheduling, %d steals, portfolio %d, %d races won / %d racers beaten, %v cancelled cpu\n",
			sched, rep.Stats.Steals, rep.Stats.Portfolio,
			rep.Stats.RacesWon, rep.Stats.RacesLost,
			rep.Stats.CancelledCPU.Round(time.Millisecond))
	}
	return b.String()
}

// JSONReport is the machine-readable form of a Report, for CI pipelines
// that gate deployments on verification (the §9 "usage phase" workflow:
// checking data planes during service runtime and before updates).
type JSONReport struct {
	Holds      bool            `json:"holds"`
	Assertions int             `json:"assertions"`
	Violations []JSONViolation `json:"violations,omitempty"`
	Stats      JSONStats       `json:"stats"`
	// PerAssertion is the find-all per-assertion cost breakdown (Figure 11
	// data); absent in find-first mode.
	PerAssertion []JSONAssertionCost `json:"per_assertion,omitempty"`
}

// JSONViolation is one violated assertion.
type JSONViolation struct {
	Label          string            `json:"label"`
	Block          string            `json:"block,omitempty"`
	Line           int               `json:"line,omitempty"`
	Text           string            `json:"text,omitempty"`
	Counterexample map[string]string `json:"counterexample,omitempty"`
}

// JSONStats carries the cost metrics.
type JSONStats struct {
	EncodeMS      int64 `json:"encode_ms"`
	SolveMS       int64 `json:"solve_ms"`
	SolveCPUMS    int64 `json:"solve_cpu_ms"`
	GCLSize       int   `json:"gcl_size"`
	TermNodes     int   `json:"term_nodes"`
	CNFClauses    int   `json:"cnf_clauses"`
	SATVars       int   `json:"sat_vars"`
	Conflicts     int64 `json:"conflicts"`
	Decisions     int64 `json:"decisions"`
	Propagations  int64 `json:"propagations"`
	Restarts      int64 `json:"restarts"`
	LearntClauses int64 `json:"learnt_clauses"`
	LearntLits    int64 `json:"learnt_literals"`

	// Incremental-mode extras (absent in fresh mode and in canonical
	// reports).
	Incremental      bool  `json:"incremental,omitempty"`
	Shards           int   `json:"shards,omitempty"`
	SimplifyRewrites int64 `json:"simplify_rewrites,omitempty"`
	PrefixClauses    int64 `json:"prefix_clauses,omitempty"`
	TseitinClauses   int64 `json:"tseitin_clauses,omitempty"`
	BlastHits        int64 `json:"blast_cache_hits,omitempty"`
	LearntDeleted    int64 `json:"learnt_deleted,omitempty"`

	// Preprocessing / slicing extras (absent with the passes off and in
	// canonical reports).
	ElimVars            int64 `json:"elim_vars,omitempty"`
	SubsumedClauses     int64 `json:"subsumed_clauses,omitempty"`
	StrengthenedClauses int64 `json:"strengthened_clauses,omitempty"`
	SliceConjuncts      int64 `json:"slice_conjuncts,omitempty"`
	SliceDropped        int64 `json:"slice_dropped,omitempty"`

	// Streaming-mode extras (absent with the mode off and in canonical
	// reports).
	Stream         bool  `json:"stream,omitempty"`
	StreamReleases int64 `json:"stream_releases,omitempty"`
	ReleasedTerms  int64 `json:"released_terms,omitempty"`

	// Scheduler / portfolio extras (absent with static scheduling and
	// racing off, and in canonical reports).
	Schedule       string `json:"schedule,omitempty"`
	Steals         int64  `json:"steals,omitempty"`
	Portfolio      int    `json:"portfolio,omitempty"`
	RacesWon       int64  `json:"races_won,omitempty"`
	RacesLost      int64  `json:"races_lost,omitempty"`
	CancelledCPUMS int64  `json:"cancelled_cpu_ms,omitempty"`

	// Session-engine extras (absent outside Session.Apply reports and in
	// canonical reports).
	DeltaReuse   int64 `json:"delta_reuse,omitempty"`
	DeltaRecheck int64 `json:"delta_recheck,omitempty"`

	// Flight-recorder histograms (absent in canonical reports).
	Histograms []JSONHistogram `json:"histograms,omitempty"`
}

// JSONHistogram is one flight-recorder distribution: log2 buckets
// (bucket i counts values v with 2^(i-1) <= v < 2^i; bucket 0 is
// v <= 0), trimmed to the highest non-empty bucket.
type JSONHistogram struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// JSONAssertionCost is one assertion's row in the per-assertion breakdown.
// Times are microseconds (solve_us) for resolution on small formulas.
type JSONAssertionCost struct {
	Label        string `json:"label"`
	Status       string `json:"status"`
	SolveUS      int64  `json:"solve_us"`
	Conflicts    int64  `json:"conflicts"`
	Decisions    int64  `json:"decisions"`
	Propagations int64  `json:"propagations"`
	Restarts     int64  `json:"restarts"`
	CNFClauses   int    `json:"cnf_clauses"`
	SATVars      int    `json:"sat_vars"`
}

// JSON renders the report for machine consumption.
func (rep *Report) JSON() ([]byte, error) {
	out := JSONReport{
		Holds:      rep.Holds,
		Assertions: rep.Stats.Assertions,
		Stats: JSONStats{
			EncodeMS:      rep.Stats.EncodeTime.Milliseconds(),
			SolveMS:       rep.Stats.SolveTime.Milliseconds(),
			SolveCPUMS:    rep.Stats.SolveCPU.Milliseconds(),
			GCLSize:       rep.Stats.GCLSize,
			TermNodes:     rep.Stats.TermNodes,
			CNFClauses:    rep.Stats.CNFClauses,
			SATVars:       rep.Stats.SATVars,
			Conflicts:     rep.Stats.Conflicts,
			Decisions:     rep.Stats.Decisions,
			Propagations:  rep.Stats.Propagations,
			Restarts:      rep.Stats.Restarts,
			LearntClauses: rep.Stats.LearntClauses,
			LearntLits:    rep.Stats.LearntLits,

			Incremental:      rep.Stats.Incremental,
			Shards:           rep.Stats.Shards,
			SimplifyRewrites: rep.Stats.SimplifyRewrites,
			PrefixClauses:    rep.Stats.PrefixClauses,
			TseitinClauses:   rep.Stats.TseitinClauses,
			BlastHits:        rep.Stats.BlastHits,
			LearntDeleted:    rep.Stats.LearntDeleted,

			ElimVars:            rep.Stats.ElimVars,
			SubsumedClauses:     rep.Stats.SubsumedClauses,
			StrengthenedClauses: rep.Stats.StrengthenedClauses,
			SliceConjuncts:      rep.Stats.SliceConjuncts,
			SliceDropped:        rep.Stats.SliceDropped,

			Stream:         rep.Stats.Stream,
			StreamReleases: rep.Stats.StreamReleases,
			ReleasedTerms:  rep.Stats.ReleasedTerms,

			Schedule:       rep.Stats.Schedule,
			Steals:         rep.Stats.Steals,
			Portfolio:      rep.Stats.Portfolio,
			RacesWon:       rep.Stats.RacesWon,
			RacesLost:      rep.Stats.RacesLost,
			CancelledCPUMS: rep.Stats.CancelledCPU.Milliseconds(),

			DeltaReuse:   rep.Stats.DeltaReuse,
			DeltaRecheck: rep.Stats.DeltaRecheck,
		},
	}
	for _, h := range rep.Stats.Histograms {
		out.Stats.Histograms = append(out.Stats.Histograms, JSONHistogram{
			Name: h.Name, Count: h.Count, Sum: h.Sum, Buckets: h.Buckets,
		})
	}
	for _, a := range rep.Stats.PerAssertion {
		out.PerAssertion = append(out.PerAssertion, JSONAssertionCost{
			Label:        a.Label,
			Status:       a.Status,
			SolveUS:      a.SolveTime.Microseconds(),
			Conflicts:    a.Conflicts,
			Decisions:    a.Decisions,
			Propagations: a.Propagations,
			Restarts:     a.Restarts,
			CNFClauses:   a.CNFClauses,
			SATVars:      a.SATVars,
		})
	}
	for _, v := range rep.Violations {
		jv := JSONViolation{Label: v.Label, Counterexample: map[string]string{}}
		if v.Info != nil {
			jv.Block, jv.Line, jv.Text = v.Info.Block, v.Info.Line, v.Info.Text
		}
		for _, line := range strings.Split(v.Cex, "\n") {
			if name, val, ok := strings.Cut(line, " = "); ok {
				jv.Counterexample[name] = val
			}
		}
		out.Violations = append(out.Violations, jv)
	}
	return json.MarshalIndent(out, "", "  ")
}

// CanonicalJSON renders the report with every cost-dependent field zeroed:
// wall-clock times, SAT search counters, CNF/term sizes, and the
// per-assertion cost columns (labels and statuses are kept). What remains
// — verdict, violations, counterexamples, assertion labels and statuses,
// GCL size — is the *semantic* outcome of verification, which is
// deterministic across runs, across Parallel settings, with or without
// observability sinks, and (the incremental-engine contract) identical
// between fresh-solver and incremental modes: two canonical reports of
// the same verification problem compare byte-for-byte. Cost counters are
// deliberately excluded because solver sharing changes them — that is the
// optimization, not a behavioural difference; the raw JSON() report keeps
// them all.
func (rep *Report) CanonicalJSON() ([]byte, error) {
	canon := *rep
	canon.Stats.EncodeTime = 0
	canon.Stats.SolveTime = 0
	canon.Stats.SolveCPU = 0
	canon.Stats.TermNodes = 0
	canon.Stats.CNFClauses = 0
	canon.Stats.SATVars = 0
	canon.Stats.Conflicts = 0
	canon.Stats.Decisions = 0
	canon.Stats.Propagations = 0
	canon.Stats.Restarts = 0
	canon.Stats.LearntClauses = 0
	canon.Stats.LearntLits = 0
	canon.Stats.LearntDeleted = 0
	canon.Stats.TseitinClauses = 0
	canon.Stats.BlastHits = 0
	canon.Stats.Incremental = false
	canon.Stats.Shards = 0
	canon.Stats.SimplifyRewrites = 0
	canon.Stats.PrefixClauses = 0
	canon.Stats.ElimVars = 0
	canon.Stats.SubsumedClauses = 0
	canon.Stats.StrengthenedClauses = 0
	canon.Stats.SliceConjuncts = 0
	canon.Stats.SliceDropped = 0
	canon.Stats.Stream = false
	canon.Stats.StreamReleases = 0
	canon.Stats.ReleasedTerms = 0
	canon.Stats.Schedule = ""
	canon.Stats.Steals = 0
	canon.Stats.Portfolio = 0
	canon.Stats.RacesWon = 0
	canon.Stats.RacesLost = 0
	canon.Stats.CancelledCPU = 0
	canon.Stats.DeltaReuse = 0
	canon.Stats.DeltaRecheck = 0
	canon.Stats.Histograms = nil
	if len(canon.Stats.PerAssertion) > 0 {
		pa := make([]AssertionCost, len(canon.Stats.PerAssertion))
		for i, a := range canon.Stats.PerAssertion {
			pa[i] = AssertionCost{Label: a.Label, Status: a.Status}
		}
		canon.Stats.PerAssertion = pa
	}
	return canon.JSON()
}
