// Package verify is Aquila's verification driver (Figure 7): it composes
// the component GCLs according to the LPI program block, generates
// verification conditions, and drives the SMT solver to find either the
// first violated assertion (all assertions checked together) or all of
// them one by one — the §5.1/§8.1 find-first vs find-all modes.
package verify

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aquila/internal/encode"
	"aquila/internal/gcl"
	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

// Options configures a verification run.
type Options struct {
	// Encode selects the encoding modes; TrackModified is filled from the
	// spec automatically.
	Encode encode.Options
	// FindAll checks every assertion one by one; otherwise the run stops
	// at the first violated assertion (checked all together).
	FindAll bool
	// Budget bounds SAT conflicts per check (<=0: unlimited). Exhaustion
	// is reported as ErrBudget.
	Budget int64
	// Parallel is the number of worker goroutines for find-all checks and
	// localization re-checks: 0 means runtime.GOMAXPROCS(0), 1 forces the
	// serial path. Reports are byte-identical at every setting: each
	// assertion is checked by a deterministic fresh solver over the shared
	// frozen term DAG, and results are aggregated in assertion order.
	Parallel int
}

// Workers returns the effective worker count for the options.
func (o Options) Workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs f(0), ..., f(n-1) on up to workers goroutines and waits for
// all of them. With workers <= 1 the calls run inline in index order. It is
// the fan-out primitive shared by find-all verification and localization;
// f must write only to index-owned slots.
func ForEach(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Violation describes a violated assertion with its counterexample.
type Violation struct {
	Label string
	Info  *lpi.AssertionInfo // nil for non-LPI assertions
	Model *smt.Model
	// Cex renders the counterexample's variable assignment.
	Cex string
	// Cond is the violation condition (used by bug localization).
	Cond *smt.Term
}

// Stats captures cost metrics the paper reports in Table 3 / Figure 11.
type Stats struct {
	EncodeTime time.Duration
	// SolveTime is the wall-clock duration of the solving phase; under
	// parallelism it shrinks with the worker count.
	SolveTime time.Duration
	// SolveCPU is the cumulative time spent inside individual SMT checks,
	// summed across workers; it is (modulo scheduling noise) independent of
	// the worker count and is the fair cost metric for parallel runs.
	SolveCPU   time.Duration
	GCLSize    int
	TermNodes  int // DAG nodes in the term context (memory proxy)
	CNFClauses int
	SATVars    int
	Assertions int
	// Workers is the effective worker count of the solving phase.
	Workers int
}

// Report is the outcome of a verification run.
type Report struct {
	Holds      bool
	Violations []*Violation
	Stats      Stats

	// Internals exposed for bug localization and tooling.
	Ctx     *smt.Ctx
	Env     *encode.Env
	Program gcl.Stmt
	Result  *gcl.Result
}

// ErrBudget reports solver budget exhaustion (the analogue of the paper's
// OOT entries).
var ErrBudget = fmt.Errorf("verify: solver budget exhausted")

// Run verifies prog (+ optional snapshot) against spec.
func Run(prog *p4.Program, snap *tables.Snapshot, spec *lpi.Spec, opts Options) (*Report, error) {
	ctx := smt.NewCtx()
	eopts := opts.Encode
	eopts.TrackModified = lpi.TrackModified(spec)
	env := encode.NewEnv(ctx, prog, snap, eopts)
	return RunWithEnv(ctx, env, spec, opts)
}

// RunWithEnv verifies with a caller-provided context and environment
// (used by localization to re-encode variants of the same program).
func RunWithEnv(ctx *smt.Ctx, env *encode.Env, spec *lpi.Spec, opts Options) (*Report, error) {
	t0 := time.Now()
	comp := lpi.NewCompiler(spec, env)
	program, err := comp.Compile()
	if err != nil {
		return nil, err
	}
	enc := gcl.NewEncoder(ctx)
	res := enc.Encode(program, nil)
	encodeTime := time.Since(t0)

	rep := &Report{
		Ctx:     ctx,
		Env:     env,
		Program: program,
		Result:  res,
		Stats: Stats{
			EncodeTime: encodeTime,
			GCLSize:    gcl.Size(program),
			Assertions: len(res.Violations),
		},
	}
	t1 := time.Now()
	err = rep.check(opts)
	rep.Stats.SolveTime = time.Since(t1)
	rep.Stats.TermNodes = ctx.NumTerms()
	rep.Holds = len(rep.Violations) == 0
	return rep, err
}

func (rep *Report) check(opts Options) error {
	if !opts.FindAll {
		return rep.checkFirst(opts)
	}
	return rep.checkAll(opts)
}

// checkFirst runs the §8.1 find-first mode: one query over the disjunction
// of all violation conditions ("checking all assertions together").
func (rep *Report) checkFirst(opts Options) error {
	ctx := rep.Ctx
	solver := smt.NewSolver(ctx)
	if opts.Budget > 0 {
		solver.SetBudget(opts.Budget)
	}
	rep.Stats.Workers = 1
	defer func() {
		rep.Stats.CNFClauses = solver.NumClauses()
		rep.Stats.SATVars = solver.NumSATVars()
	}()

	any := ctx.False()
	for _, v := range rep.Result.Violations {
		any = ctx.Or(any, v.Cond)
	}
	t0 := time.Now()
	st := solver.Check(any)
	rep.Stats.SolveCPU += time.Since(t0)
	if st == smt.Unknown {
		return ErrBudget
	}
	if st == smt.Unsat {
		return nil
	}
	m := solver.Model()
	solver.ModelCollect(m, any)
	// Identify the first assertion the model violates.
	for _, v := range rep.Result.Violations {
		if m.Bool(v.Cond) {
			rep.Violations = append(rep.Violations, rep.makeViolation(v, m))
			return nil
		}
	}
	// The model satisfied the disjunction but the evaluator attributes it
	// to no single assertion (possible only through a blaster/evaluator
	// divergence). Re-check each assertion under the model's assignment
	// rather than emitting an unusable "unknown" violation.
	assignment := modelAssignment(ctx, m, any)
	for _, v := range rep.Result.Violations {
		s2 := smt.NewSolver(ctx)
		if opts.Budget > 0 {
			s2.SetBudget(opts.Budget)
		}
		t1 := time.Now()
		st2 := s2.Check(ctx.And(assignment, v.Cond))
		rep.Stats.SolveCPU += time.Since(t1)
		if st2 == smt.Sat {
			m2 := s2.Model()
			s2.ModelCollect(m2, v.Cond)
			rep.Violations = append(rep.Violations, rep.makeViolation(v, m2))
			return nil
		}
	}
	return fmt.Errorf("verify: find-first produced a model matching no assertion (solver/evaluator inconsistency)")
}

// modelAssignment renders m's assignment of the variables of t as a
// conjunction of equalities, for re-checking queries under a fixed model.
func modelAssignment(ctx *smt.Ctx, m *smt.Model, t *smt.Term) *smt.Term {
	cond := ctx.True()
	for _, v := range smt.Vars(t) {
		if v.Op == smt.OpBoolVar {
			cond = ctx.And(cond, ctx.Iff(v, ctx.Bool(m.Bool(v))))
		} else {
			cond = ctx.And(cond, ctx.Eq(v, ctx.BVBig(m.BV(v), v.Width)))
		}
	}
	return cond
}

// checkAll runs the §5.1/§8.1 find-all mode: every violation condition is
// checked independently. Checks fan out across a worker pool over the
// frozen term context; every assertion gets its own deterministic fresh
// solver blasting from the shared read-only DAG, so the report is
// byte-identical at every Parallel setting. Results are aggregated in
// assertion order.
func (rep *Report) checkAll(opts Options) error {
	conds := rep.Result.Violations
	n := len(conds)
	workers := opts.Workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	rep.Stats.Workers = workers

	type checkOut struct {
		done    bool
		status  smt.Status
		model   *smt.Model
		clauses int
		satVars int
		cpu     time.Duration
	}
	outs := make([]checkOut, n)

	// limit is the lowest assertion index seen to exhaust the budget;
	// workers skip checks at or beyond it so every worker stops promptly.
	limit := int64(n)

	runCheck := func(i int) {
		v := conds[i]
		solver := smt.NewSolver(rep.Ctx)
		if opts.Budget > 0 {
			solver.SetBudget(opts.Budget)
		}
		t0 := time.Now()
		st := solver.Check(v.Cond)
		o := &outs[i]
		o.cpu = time.Since(t0)
		o.status = st
		o.clauses = solver.NumClauses()
		o.satVars = solver.NumSATVars()
		if st == smt.Sat {
			m := solver.Model()
			solver.ModelCollect(m, v.Cond)
			o.model = m
		}
		o.done = true
	}

	if workers > 1 {
		// The context becomes shared read-only state; blasting and model
		// extraction never intern, and any stray term creation serializes.
		rep.Ctx.Freeze()
		ForEach(workers, n, func(i int) {
			if int64(i) >= atomic.LoadInt64(&limit) {
				return
			}
			runCheck(i)
			if outs[i].status == smt.Unknown {
				for {
					cur := atomic.LoadInt64(&limit)
					if int64(i) >= cur || atomic.CompareAndSwapInt64(&limit, cur, int64(i)) {
						break
					}
				}
			}
		})
	}

	// Consume results in assertion order; any check skipped by the early
	// stop (or by workers == 1, which skips the fan-out entirely) runs
	// inline here, so the consumed prefix is identical at every Parallel
	// setting: violations up to the first budget-exhausted check.
	var err error
	for i, v := range conds {
		if !outs[i].done {
			runCheck(i)
		}
		o := &outs[i]
		rep.Stats.SolveCPU += o.cpu
		rep.Stats.CNFClauses += o.clauses
		rep.Stats.SATVars += o.satVars
		if o.status == smt.Unknown {
			err = ErrBudget
			break
		}
		if o.status == smt.Sat {
			rep.Violations = append(rep.Violations, rep.makeViolation(v, o.model))
		}
	}
	return err
}

func (rep *Report) makeViolation(v *gcl.Violation, m *smt.Model) *Violation {
	out := &Violation{Label: v.Label, Model: m, Cond: v.Cond}
	if info, ok := v.Meta.(*lpi.AssertionInfo); ok {
		out.Info = info
	}
	out.Cex = rep.renderCex(v.Cond, m)
	return out
}

// renderCex formats the assignment of the input variables mentioned in the
// violation condition.
func (rep *Report) renderCex(cond *smt.Term, m *smt.Model) string {
	vars := smt.Vars(cond)
	var lines []string
	for _, v := range vars {
		name := v.Name
		// Internal encoder variables are noise in reports.
		if strings.HasPrefix(name, "$enc.") || strings.HasPrefix(name, "choice!") ||
			strings.HasPrefix(name, "havoc$") || strings.Contains(name, "!") {
			continue
		}
		// The residual free value of a header field is its pre-parse
		// content, which is unobservable garbage — suppress it. (Its wire
		// image appears as pkt.<field> instead.)
		if rep.Env != nil && !strings.HasPrefix(name, "pkt.") && !strings.HasPrefix(name, "$") {
			if i := strings.LastIndex(name, "."); i > 0 {
				if inst := rep.Env.Prog.Instance(name[:i]); inst != nil && inst.IsHeader {
					continue
				}
			}
		}
		if v.Op == smt.OpBoolVar {
			lines = append(lines, fmt.Sprintf("%s = %v", name, m.Bool(v)))
		} else {
			lines = append(lines, fmt.Sprintf("%s = 0x%x", name, m.BV(v)))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// BlockedBehaviour names a table behaviour that participates in a
// violation found under any-entries verification (§2: "for the table
// entries potentially triggering bugs, the second case enables us to
// record these entries in a blocklist ahead of time, preventing them in
// runtime").
type BlockedBehaviour struct {
	Table string // fully qualified Control.table
	// Hit and ActionLAID are the free-choice values of the counterexample:
	// an entry making this table hit with this action on the
	// counterexample's packet would trigger the violation.
	Hit        bool
	ActionLAID uint64
	Assertion  string
}

// Blocklist extracts, for each violation, the wildcard-table behaviours of
// its counterexample. Only meaningful when the run had no snapshot (tables
// encoded as function variables).
func (rep *Report) Blocklist() []BlockedBehaviour {
	var out []BlockedBehaviour
	ctx := rep.Ctx
	for _, v := range rep.Violations {
		seen := map[string]bool{}
		for _, t := range smt.Vars(v.Cond) {
			name := t.Name
			if !strings.HasPrefix(name, "$tbl.") || !strings.HasSuffix(name, ".hit") {
				continue
			}
			fq := strings.TrimSuffix(strings.TrimPrefix(name, "$tbl."), ".hit")
			if seen[fq] {
				continue
			}
			seen[fq] = true
			out = append(out, BlockedBehaviour{
				Table:      fq,
				Hit:        v.Model.Bool(ctx.BoolVar("$tbl." + fq + ".hit")),
				ActionLAID: v.Model.Uint64(ctx.Var("$tbl."+fq+".laid", 16)),
				Assertion:  v.Label,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Assertion < out[j].Assertion
	})
	return out
}

// String renders a human-readable report.
func (rep *Report) String() string {
	var b strings.Builder
	if rep.Holds {
		fmt.Fprintf(&b, "verified: all %d assertions hold\n", rep.Stats.Assertions)
	} else {
		fmt.Fprintf(&b, "VIOLATED: %d of %d assertions\n", len(rep.Violations), rep.Stats.Assertions)
		for _, v := range rep.Violations {
			fmt.Fprintf(&b, "  assertion %s", v.Label)
			if v.Info != nil {
				fmt.Fprintf(&b, " (line %d: %s)", v.Info.Line, v.Info.Text)
			}
			b.WriteString("\n")
			for _, line := range strings.Split(v.Cex, "\n") {
				if line != "" {
					fmt.Fprintf(&b, "    %s\n", line)
				}
			}
		}
	}
	fmt.Fprintf(&b, "stats: encode %v, solve %v (cpu %v, %d workers), gcl %d stmts, %d terms, %d clauses, %d sat vars\n",
		rep.Stats.EncodeTime.Round(time.Millisecond), rep.Stats.SolveTime.Round(time.Millisecond),
		rep.Stats.SolveCPU.Round(time.Millisecond), rep.Stats.Workers,
		rep.Stats.GCLSize, rep.Stats.TermNodes, rep.Stats.CNFClauses, rep.Stats.SATVars)
	return b.String()
}

// JSONReport is the machine-readable form of a Report, for CI pipelines
// that gate deployments on verification (the §9 "usage phase" workflow:
// checking data planes during service runtime and before updates).
type JSONReport struct {
	Holds      bool            `json:"holds"`
	Assertions int             `json:"assertions"`
	Violations []JSONViolation `json:"violations,omitempty"`
	Stats      JSONStats       `json:"stats"`
}

// JSONViolation is one violated assertion.
type JSONViolation struct {
	Label          string            `json:"label"`
	Block          string            `json:"block,omitempty"`
	Line           int               `json:"line,omitempty"`
	Text           string            `json:"text,omitempty"`
	Counterexample map[string]string `json:"counterexample,omitempty"`
}

// JSONStats carries the cost metrics.
type JSONStats struct {
	EncodeMS   int64 `json:"encode_ms"`
	SolveMS    int64 `json:"solve_ms"`
	SolveCPUMS int64 `json:"solve_cpu_ms"`
	GCLSize    int   `json:"gcl_size"`
	TermNodes  int   `json:"term_nodes"`
	CNFClauses int   `json:"cnf_clauses"`
	SATVars    int   `json:"sat_vars"`
}

// JSON renders the report for machine consumption.
func (rep *Report) JSON() ([]byte, error) {
	out := JSONReport{
		Holds:      rep.Holds,
		Assertions: rep.Stats.Assertions,
		Stats: JSONStats{
			EncodeMS:   rep.Stats.EncodeTime.Milliseconds(),
			SolveMS:    rep.Stats.SolveTime.Milliseconds(),
			SolveCPUMS: rep.Stats.SolveCPU.Milliseconds(),
			GCLSize:    rep.Stats.GCLSize,
			TermNodes:  rep.Stats.TermNodes,
			CNFClauses: rep.Stats.CNFClauses,
			SATVars:    rep.Stats.SATVars,
		},
	}
	for _, v := range rep.Violations {
		jv := JSONViolation{Label: v.Label, Counterexample: map[string]string{}}
		if v.Info != nil {
			jv.Block, jv.Line, jv.Text = v.Info.Block, v.Info.Line, v.Info.Text
		}
		for _, line := range strings.Split(v.Cex, "\n") {
			if name, val, ok := strings.Cut(line, " = "); ok {
				jv.Counterexample[name] = val
			}
		}
		out.Violations = append(out.Violations, jv)
	}
	return json.MarshalIndent(out, "", "  ")
}

// CanonicalJSON renders the report with the volatile wall-clock fields
// (encode_ms, solve_ms, solve_cpu_ms) zeroed. Everything else — verdict,
// violations, counterexamples, formula-size stats — is deterministic
// across runs and across Parallel settings, so two canonical reports of
// the same verification problem compare byte-for-byte.
func (rep *Report) CanonicalJSON() ([]byte, error) {
	canon := *rep
	canon.Stats.EncodeTime = 0
	canon.Stats.SolveTime = 0
	canon.Stats.SolveCPU = 0
	return canon.JSON()
}
