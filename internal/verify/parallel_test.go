package verify

import (
	"bytes"
	"errors"
	"testing"

	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/progs"
)

// corpusSuite is every hand-written program plus the DC gateway, each
// paired with its generated invalid-header-access spec.
func corpusSuite(t *testing.T) []struct {
	name string
	prog *p4.Program
	spec *lpi.Spec
} {
	t.Helper()
	var out []struct {
		name string
		prog *p4.Program
		spec *lpi.Spec
	}
	for _, bm := range append(progs.HandWrittenSuite(), progs.DCGatewayBench(), progs.SkewedBench()) {
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("%s: parse: %v", bm.Name, err)
		}
		spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
		if err != nil {
			t.Fatalf("%s: spec: %v", bm.Name, err)
		}
		out = append(out, struct {
			name string
			prog *p4.Program
			spec *lpi.Spec
		}{bm.Name, prog, spec})
	}
	return out
}

// TestParallelReportsByteIdentical is the engine's determinism contract:
// at any Parallel setting the canonical report bytes match the serial run
// exactly — same verdicts, violations, counterexamples and formula sizes.
func TestParallelReportsByteIdentical(t *testing.T) {
	for _, c := range corpusSuite(t) {
		serial, err := Run(c.prog, nil, c.spec, Options{FindAll: true, Parallel: 1})
		if err != nil {
			t.Fatalf("%s: serial: %v", c.name, err)
		}
		want, err := serial.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", c.name, err)
		}
		for _, w := range []int{2, 4, 8} {
			rep, err := Run(c.prog, nil, c.spec, Options{FindAll: true, Parallel: w})
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", c.name, w, err)
			}
			got, err := rep.CanonicalJSON()
			if err != nil {
				t.Fatalf("%s: workers=%d canonical: %v", c.name, w, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: workers=%d report differs from serial\nserial: %s\nparallel: %s",
					c.name, w, want, got)
			}
			if rep.Stats.Workers < 1 {
				t.Errorf("%s: workers=%d: Stats.Workers = %d", c.name, w, rep.Stats.Workers)
			}
		}
	}
}

// TestParallelBudgetExhaustion pins budget semantics under parallelism:
// a budget too small for any check makes every worker stop, ErrBudget
// surfaces exactly as in the serial run, and the partial report (the
// consumed prefix before the first exhausted check) is byte-identical.
func TestParallelBudgetExhaustion(t *testing.T) {
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	opts := Options{FindAll: true, Budget: 1, Parallel: 1}
	serial, err := Run(prog, nil, spec, opts)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("serial budget=1: err = %v, want ErrBudget", err)
	}
	want, cerr := serial.CanonicalJSON()
	if cerr != nil {
		t.Fatalf("canonical: %v", cerr)
	}
	for _, w := range []int{4, 8} {
		opts.Parallel = w
		rep, err := Run(prog, nil, spec, opts)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("workers=%d budget=1: err = %v, want ErrBudget", w, err)
		}
		got, cerr := rep.CanonicalJSON()
		if cerr != nil {
			t.Fatalf("workers=%d canonical: %v", w, cerr)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: budget-exhausted report differs from serial\nserial: %s\nparallel: %s",
				w, want, got)
		}
	}
}

// TestForEach exercises the fan-out primitive directly.
func TestForEach(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 57
		hits := make([]int, n)
		ForEach(workers, n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	ForEach(4, 0, func(i int) { t.Fatal("callback on empty range") })
}
