package verify

import (
	"bytes"
	"testing"

	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/progs"
)

// forceStreamReleases lowers the release threshold so streaming rolls the
// arena back after every assertion, even on test-sized programs, and
// restores it when the test ends.
func forceStreamReleases(t *testing.T) {
	t.Helper()
	old := streamReleaseMin
	streamReleaseMin = 1
	t.Cleanup(func() { streamReleaseMin = old })
}

// TestStreamMatchesBaseline is the streaming engine's determinism
// contract: with releases forced after every assertion, canonical report
// bytes match the plain serial fresh-solver baseline on the whole corpus,
// with and without slicing/preprocessing in front.
func TestStreamMatchesBaseline(t *testing.T) {
	forceStreamReleases(t)
	passes := []struct {
		name       string
		preprocess bool
		slice      bool
	}{
		{"plain", false, false},
		{"slice", false, true},
		{"prep+slice", true, true},
	}
	for _, c := range corpusSuite(t) {
		base, err := Run(c.prog, nil, c.spec, Options{FindAll: true, Parallel: 1})
		if err != nil {
			t.Fatalf("%s: baseline: %v", c.name, err)
		}
		want, err := base.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", c.name, err)
		}
		for _, p := range passes {
			rep, err := Run(c.prog, nil, c.spec, Options{FindAll: true, Parallel: 1,
				Stream: true, Preprocess: p.preprocess, Slice: p.slice})
			if err != nil {
				t.Fatalf("%s: stream %s: %v", c.name, p.name, err)
			}
			if !rep.Stats.Stream || rep.Stats.Workers != 1 {
				t.Errorf("%s: stream %s: stats say stream=%v workers=%d",
					c.name, p.name, rep.Stats.Stream, rep.Stats.Workers)
			}
			got, err := rep.CanonicalJSON()
			if err != nil {
				t.Fatalf("%s: stream %s canonical: %v", c.name, p.name, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: stream %s differs from baseline\nbaseline: %s\ngot: %s",
					c.name, p.name, want, got)
			}
		}
	}
}

// TestStreamDefaultThreshold runs streaming at the shipping release
// threshold (which small programs typically never hit): the no-release
// path must also match the baseline byte-for-byte.
func TestStreamDefaultThreshold(t *testing.T) {
	for _, c := range corpusSuite(t) {
		base, err := Run(c.prog, nil, c.spec, Options{FindAll: true, Parallel: 1})
		if err != nil {
			t.Fatalf("%s: baseline: %v", c.name, err)
		}
		want, err := base.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", c.name, err)
		}
		rep, err := Run(c.prog, nil, c.spec, Options{FindAll: true, Parallel: 1,
			Stream: true, Preprocess: true, Slice: true})
		if err != nil {
			t.Fatalf("%s: stream: %v", c.name, err)
		}
		got, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: stream canonical: %v", c.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: stream (default threshold) differs from baseline\nbaseline: %s\ngot: %s",
				c.name, want, got)
		}
	}
}

// TestStreamReleasesDCGateway pins the point of the mode on the
// many-assertion benchmark: with releases forced, streaming must actually
// roll the arena back, discard the transient slice terms, and finish with
// fewer live term nodes than the non-streaming sliced run — while keeping
// the canonical report identical.
func TestStreamReleasesDCGateway(t *testing.T) {
	forceStreamReleases(t)
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	sliced, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1, Slice: true})
	if err != nil {
		t.Fatalf("sliced baseline: %v", err)
	}
	stream, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1,
		Slice: true, Stream: true})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if stream.Stats.StreamReleases == 0 || stream.Stats.ReleasedTerms == 0 {
		t.Fatalf("streaming recorded no releases (%d releases, %d terms)",
			stream.Stats.StreamReleases, stream.Stats.ReleasedTerms)
	}
	if stream.Stats.TermNodes >= sliced.Stats.TermNodes {
		t.Errorf("streaming finished with %d live term nodes, want fewer than the sliced run's %d",
			stream.Stats.TermNodes, sliced.Stats.TermNodes)
	}
	want, err := sliced.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	got, err := stream.CanonicalJSON()
	if err != nil {
		t.Fatalf("stream canonical: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("streaming report differs from sliced baseline\nbaseline: %s\ngot: %s", want, got)
	}
}

// TestStreamGenprogDifferential repeats the differential check on
// synthetic production-shaped programs with seeded bugs: streaming must
// not change which assertions are violated or their counterexamples.
func TestStreamGenprogDifferential(t *testing.T) {
	forceStreamReleases(t)
	cfgs := []genprog.Config{
		{Name: "gp_stream_small", Pipes: 1, ParserStates: 6, Tables: 8, ActionsPerTable: 2, SeedBug: true},
		{Name: "gp_stream_wide", Pipes: 2, ParserStates: 10, Tables: 14, ActionsPerTable: 3, SeedBug: true},
	}
	for _, cfg := range cfgs {
		bm := genprog.Assemble(cfg)
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("%s: parse: %v", cfg.Name, err)
		}
		spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
		if err != nil {
			t.Fatalf("%s: spec: %v", cfg.Name, err)
		}
		base, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1})
		if err != nil {
			t.Fatalf("%s: baseline: %v", cfg.Name, err)
		}
		if base.Holds {
			t.Fatalf("%s: seeded bug not found by baseline", cfg.Name)
		}
		want, err := base.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", cfg.Name, err)
		}
		rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1,
			Stream: true, Preprocess: true, Slice: true})
		if err != nil {
			t.Fatalf("%s: stream: %v", cfg.Name, err)
		}
		got, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: stream canonical: %v", cfg.Name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: streaming differs from baseline\nbaseline: %s\ngot: %s",
				cfg.Name, want, got)
		}
	}
}
