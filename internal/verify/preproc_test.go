package verify

import (
	"bytes"
	"testing"

	"aquila/internal/gcl"
	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/progs"
	"aquila/internal/smt"
)

// TestPreprocessSliceMatchBaseline is the differential contract of the CNF
// preprocessing and cone-of-influence slicing passes: on the whole corpus,
// every combination of {preprocess, slice} across fresh, parallel, and
// incremental engines at several worker counts produces canonical report
// bytes identical to the plain serial baseline.
func TestPreprocessSliceMatchBaseline(t *testing.T) {
	type pass struct {
		name       string
		preprocess bool
		slice      bool
	}
	passes := []pass{
		{"preprocess", true, false},
		{"slice", false, true},
		{"both", true, true},
	}
	for _, c := range corpusSuite(t) {
		base, err := Run(c.prog, nil, c.spec, Options{FindAll: true, Parallel: 1})
		if err != nil {
			t.Fatalf("%s: baseline: %v", c.name, err)
		}
		want, err := base.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", c.name, err)
		}
		for _, p := range passes {
			for _, incremental := range []bool{false, true} {
				for _, w := range []int{1, 2, 4} {
					opts := Options{FindAll: true, Parallel: w,
						Incremental: incremental,
						Preprocess:  p.preprocess, Slice: p.slice}
					rep, err := Run(c.prog, nil, c.spec, opts)
					if err != nil {
						t.Fatalf("%s: %s incremental=%v w=%d: %v",
							c.name, p.name, incremental, w, err)
					}
					got, err := rep.CanonicalJSON()
					if err != nil {
						t.Fatalf("%s: %s w=%d canonical: %v", c.name, p.name, w, err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s: %s incremental=%v w=%d differs from baseline\nbaseline: %s\ngot: %s",
							c.name, p.name, incremental, w, want, got)
					}
					if p.slice && rep.Stats.SliceConjuncts == 0 {
						t.Errorf("%s: %s w=%d: slicing recorded no conjuncts",
							c.name, p.name, w)
					}
				}
			}
		}
	}
}

// TestPreprocessShrinksDCGateway pins the point of the passes on the
// many-assertion benchmark: preprocessing must record eliminated/subsumed
// structure and reduce SAT propagations, and slicing must drop conjuncts.
func TestPreprocessShrinksDCGateway(t *testing.T) {
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	base, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	prep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1, Preprocess: true})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	if prep.Stats.ElimVars+prep.Stats.SubsumedClauses+prep.Stats.StrengthenedClauses == 0 {
		t.Error("preprocessing ran but recorded no eliminated/subsumed/strengthened work")
	}
	if prep.Stats.CNFClauses >= base.Stats.CNFClauses {
		t.Errorf("preprocessing retained %d CNF clauses, want < baseline %d",
			prep.Stats.CNFClauses, base.Stats.CNFClauses)
	}
	sliced, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1, Slice: true})
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	if sliced.Stats.SliceDropped == 0 {
		t.Errorf("slicing dropped no conjuncts (saw %d)", sliced.Stats.SliceConjuncts)
	}
}

// TestSliceGenprogDifferential repeats the differential check on synthetic
// production-shaped programs with seeded bugs: slicing must not change
// which assertions are violated or their counterexamples.
func TestSliceGenprogDifferential(t *testing.T) {
	cfgs := []genprog.Config{
		{Name: "gp_slice_small", Pipes: 1, ParserStates: 6, Tables: 8, ActionsPerTable: 2, SeedBug: true},
		{Name: "gp_slice_wide", Pipes: 2, ParserStates: 10, Tables: 14, ActionsPerTable: 3, SeedBug: true},
	}
	for _, cfg := range cfgs {
		bm := genprog.Assemble(cfg)
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("%s: parse: %v", cfg.Name, err)
		}
		spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
		if err != nil {
			t.Fatalf("%s: spec: %v", cfg.Name, err)
		}
		base, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1})
		if err != nil {
			t.Fatalf("%s: baseline: %v", cfg.Name, err)
		}
		if base.Holds {
			t.Fatalf("%s: seeded bug not found by baseline", cfg.Name)
		}
		want, err := base.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", cfg.Name, err)
		}
		for _, w := range []int{1, 2} {
			rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: w,
				Preprocess: true, Slice: true, Incremental: w == 2})
			if err != nil {
				t.Fatalf("%s: w=%d: %v", cfg.Name, w, err)
			}
			got, err := rep.CanonicalJSON()
			if err != nil {
				t.Fatalf("%s: w=%d canonical: %v", cfg.Name, w, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: sliced w=%d differs from baseline\nbaseline: %s\ngot: %s",
					cfg.Name, w, want, got)
			}
		}
	}
}

// TestStaticShardsNoEmpty is the regression test for the empty-shard bug:
// StaticShards must never hand a caller an empty shard (each one would
// spawn a shard goroutine owning an idle solver), and zero work must yield
// zero shards.
func TestStaticShardsNoEmpty(t *testing.T) {
	for _, tc := range []struct{ shards, n, want int }{
		{4, 0, 0},
		{1, 0, 0},
		{0, 0, 0},
		{4, 2, 2},
		{8, 3, 3},
		{2, 5, 2},
		{1, 1, 1},
	} {
		got := StaticShards(tc.shards, tc.n)
		if len(got) != tc.want {
			t.Errorf("StaticShards(%d, %d): %d shards, want %d",
				tc.shards, tc.n, len(got), tc.want)
		}
		seen := 0
		for s, shard := range got {
			if len(shard) == 0 {
				t.Errorf("StaticShards(%d, %d): shard %d is empty", tc.shards, tc.n, s)
			}
			seen += len(shard)
		}
		if seen != tc.n {
			t.Errorf("StaticShards(%d, %d): %d indices covered, want %d",
				tc.shards, tc.n, seen, tc.n)
		}
	}
}

// TestIncrementalZeroAssertions pins the n = 0 path end to end: an
// incremental run over an empty assertion list must hold, spawn no
// solvers, and not panic on the (absent) first shard.
func TestIncrementalZeroAssertions(t *testing.T) {
	for _, w := range []int{1, 4} {
		rep := &Report{Ctx: smt.NewCtx(), Result: &gcl.Result{}}
		if err := rep.check(Options{FindAll: true, Incremental: true, Parallel: w,
			Preprocess: true, Slice: true}); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if !rep.Holds && len(rep.Violations) != 0 {
			t.Fatalf("w=%d: violations on empty assertion list", w)
		}
		if rep.Stats.SATVars != 0 || rep.Stats.CNFClauses != 0 {
			t.Fatalf("w=%d: empty run created solver work: %+v", w, rep.Stats)
		}
	}
}
