package verify

import (
	"bytes"
	"strings"
	"testing"

	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/progs"
)

// TestStealQueueOrder pins the scheduler's queue discipline: owners pop
// their own items largest-first, a thief takes the largest remaining head
// across victims, and every index is handed out exactly once.
func TestStealQueueOrder(t *testing.T) {
	// Shards over 6 items; cost makes item 4 the heavyweight.
	shards := StaticShards(2, 6) // shard 0: 0 2 4, shard 1: 1 3 5
	cost := []int64{10, 1, 20, 1, 100, 1}
	q := newStealQueue(shards, cost)

	// Owner 0 sees its queue largest-first: 4 (100), 2 (20), 0 (10).
	for _, want := range []int{4, 2, 0} {
		idx, stolen, ok := q.next(0)
		if !ok || stolen || idx != want {
			t.Fatalf("own pop: got (%d, stolen=%v, ok=%v), want %d", idx, stolen, ok, want)
		}
	}
	// Worker 0 is now a thief; worker 1's queue holds 1, 3, 5 (all cost 1,
	// stable sort keeps index order). Steals must be flagged.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		idx, stolen, ok := q.next(0)
		if !ok || !stolen {
			t.Fatalf("steal %d: got (%d, stolen=%v, ok=%v)", i, idx, stolen, ok)
		}
		seen[idx] = true
	}
	for _, want := range []int{1, 3, 5} {
		if !seen[want] {
			t.Fatalf("steals missed index %d (saw %v)", want, seen)
		}
	}
	if _, _, ok := q.next(0); ok {
		t.Fatal("empty pool still returned work")
	}
	if _, _, ok := q.next(1); ok {
		t.Fatal("victim's own queue should be drained by the thief")
	}
}

// TestStealPortfolioMatrixByteIdentical is the tentpole determinism
// contract: on the DC gateway, canonical report bytes are identical across
// the full {schedule} × {portfolio} × {workers} grid — work stealing moves
// checks between solvers and racing lets nondeterministic personalities
// win, but verdicts are semantic and every Sat is re-solved by the same
// deterministic fresh solver.
func TestStealPortfolioMatrixByteIdentical(t *testing.T) {
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	base, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	want, err := base.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	for _, sched := range []Schedule{ScheduleStatic, ScheduleSteal} {
		for _, k := range []int{1, 2, 4} {
			for _, w := range []int{1, 2, 4} {
				opts := Options{FindAll: true, Parallel: w, Schedule: sched, Portfolio: k}
				rep, err := Run(prog, nil, spec, opts)
				if err != nil {
					t.Fatalf("sched=%v portfolio=%d workers=%d: %v", sched, k, w, err)
				}
				got, err := rep.CanonicalJSON()
				if err != nil {
					t.Fatalf("sched=%v portfolio=%d workers=%d canonical: %v", sched, k, w, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("sched=%v portfolio=%d workers=%d differs from baseline\nbase: %s\ngot: %s",
						sched, k, w, want, got)
				}
				if sched == ScheduleSteal && rep.Stats.Schedule != "steal" {
					t.Errorf("sched=steal: Stats.Schedule = %q", rep.Stats.Schedule)
				}
				if k > 1 {
					if rep.Stats.Portfolio != k {
						t.Errorf("portfolio=%d: Stats.Portfolio = %d", k, rep.Stats.Portfolio)
					}
					if rep.Stats.RacesWon == 0 {
						t.Errorf("portfolio=%d workers=%d: no races won recorded", k, w)
					}
				}
			}
		}
	}
}

// TestStealGenprogDifferential repeats the contract on synthetic
// production-shaped programs with seeded bugs, so stealing and racing are
// exercised on reports that contain real violations and counterexamples.
func TestStealGenprogDifferential(t *testing.T) {
	cfgs := []genprog.Config{
		{Name: "gp_steal", Pipes: 1, ParserStates: 6, Tables: 10, ActionsPerTable: 2, SeedBug: true},
	}
	for _, cfg := range cfgs {
		bm := genprog.Assemble(cfg)
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("%s: parse: %v", cfg.Name, err)
		}
		spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
		if err != nil {
			t.Fatalf("%s: spec: %v", cfg.Name, err)
		}
		fresh, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1})
		if err != nil {
			t.Fatalf("%s: fresh: %v", cfg.Name, err)
		}
		if fresh.Holds {
			t.Fatalf("%s: seeded bug not found by fresh mode", cfg.Name)
		}
		want, err := fresh.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", cfg.Name, err)
		}
		for _, k := range []int{1, 2} {
			for _, w := range []int{1, 2} {
				rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: w,
					Schedule: ScheduleSteal, Portfolio: k})
				if err != nil {
					t.Fatalf("%s: steal portfolio=%d w=%d: %v", cfg.Name, k, w, err)
				}
				got, err := rep.CanonicalJSON()
				if err != nil {
					t.Fatalf("%s: canonical: %v", cfg.Name, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s: steal portfolio=%d w=%d differs from fresh\nfresh: %s\nsteal: %s",
						cfg.Name, k, w, want, got)
				}
			}
		}
	}
}

// TestStealCancelHammer drives the steal and race-cancellation paths hard
// enough for the -race CI job to see the interleavings: many workers over
// few assertions forces stealing, and a wide portfolio makes every check a
// cancellation storm. Verdict bytes must still match the serial baseline.
func TestStealCancelHammer(t *testing.T) {
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	base, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	want, err := base.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	iters := 3
	if testing.Short() {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		rep, err := Run(prog, nil, spec, Options{FindAll: true, Parallel: 8,
			Schedule: ScheduleSteal, Portfolio: 4})
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		got, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("iter %d: canonical: %v", it, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("iter %d: hammer report differs from baseline", it)
		}
	}
}

// TestParseSchedule pins the flag grammar shared by every CLI.
func TestParseSchedule(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Schedule
		ok   bool
	}{
		{"", ScheduleStatic, true},
		{"static", ScheduleStatic, true},
		{"steal", ScheduleSteal, true},
		{"work-steal", 0, false},
		{"STEAL", 0, false},
	} {
		got, err := ParseSchedule(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseSchedule(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", c.in)
		}
	}
}

// TestOptionsValidate pins the incompatible-combination errors every CLI
// surfaces instead of silently preferring one mode.
func TestOptionsValidate(t *testing.T) {
	ok := []Options{
		{},
		{FindAll: true, Schedule: ScheduleSteal, Parallel: 4},
		{FindAll: true, Portfolio: 4, Parallel: 2},
		{FindAll: true, Schedule: ScheduleSteal, Portfolio: 2},
		{FindAll: true, Incremental: true, Parallel: 4},
		{FindAll: true, Stream: true, Parallel: 1},
	}
	for i, o := range ok {
		if err := o.Validate(); err != nil {
			t.Errorf("ok[%d] %+v: unexpected error %v", i, o, err)
		}
	}
	bad := []struct {
		opts Options
		frag string
	}{
		{Options{Portfolio: -1}, "portfolio"},
		{Options{FindAll: true, Stream: true, Incremental: true}, "-stream"},
		{Options{FindAll: true, Stream: true, Parallel: 4}, "-stream"},
		{Options{FindAll: true, Stream: true, Portfolio: 2}, "-stream"},
		{Options{FindAll: true, Stream: true, Schedule: ScheduleSteal}, "-stream"},
		{Options{FindAll: true, Schedule: ScheduleSteal, Incremental: true}, "-schedule steal"},
		{Options{Schedule: ScheduleSteal}, "find-all"},
		{Options{Portfolio: 2}, "find-all"},
		{Options{FindAll: true, Portfolio: 2, Incremental: true}, "-portfolio"},
	}
	for i, c := range bad {
		err := c.opts.Validate()
		if err == nil {
			t.Errorf("bad[%d] %+v: Validate() = nil, want error", i, c.opts)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("bad[%d]: error %q does not mention %q", i, err, c.frag)
		}
	}
	// RunWithEnv must refuse before doing any work.
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	if _, err := Run(prog, nil, spec, Options{FindAll: true, Stream: true, Parallel: 4}); err == nil {
		t.Error("Run accepted -stream with -parallel > 1")
	}
}

// TestRunByteStableAcrossRuns pins cross-Run determinism: two independent
// Runs of the same program in the same process must produce identical
// canonical bytes. The skewed-telemetry program is the regression case —
// its adder-identity guard has symmetric counterexample candidates, so
// any map-iteration-order leak into term construction (gcl's branch merge
// once had one) shows up as a flipped model here. The bench sweeps and
// the CI portfolio smoke compare reports across processes; this is the
// contract they stand on.
func TestRunByteStableAcrossRuns(t *testing.T) {
	bm := progs.SkewedBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{FindAll: true, Parallel: 1, Preprocess: true, Slice: true}
	var want []byte
	for i := 0; i < 3; i++ {
		rep, err := Run(prog, nil, spec, opts)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("run %d: canonical: %v", i, err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Fatalf("run %d: canonical report differs from run 0", i)
		}
	}
}
