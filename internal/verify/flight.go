package verify

import (
	"time"

	"aquila/internal/obs"
	"aquila/internal/smt"
)

// HistogramStat is a plain-data snapshot of one flight-recorder
// histogram: log2 buckets (obs.BucketLog2 boundaries) trimmed to the
// highest non-empty one. Plain data on purpose — Stats and Report are
// shallow-copied by CanonicalJSON, so no atomics may live in them.
type HistogramStat struct {
	Name    string
	Count   int64
	Sum     int64
	Buckets []int64
}

// runHists holds the run's live histograms. It hangs off the Report
// behind a pointer (the atomics must not be copied) and is folded into
// Stats.Histograms — and into the metrics registry — when the solve
// phase ends. All methods are nil-safe: tests that build a bare Report
// and call the check engines directly simply record nothing.
type runHists struct {
	wall      obs.Histogram // per-check wall time, µs
	conflicts obs.Histogram // per-check SAT conflicts
	learnt    obs.Histogram // learnt-clause sizes (folded from the SAT core)
	sliceDrop obs.Histogram // per-assertion slice-drop percentage
	raceWaste obs.Histogram // per raced check, cancelled-racer CPU µs
}

// observeCheck records one check's wall time, conflicts, and
// learnt-size buckets.
func (h *runHists) observeCheck(ss smt.SolverStats, wall time.Duration) {
	if h == nil {
		return
	}
	h.wall.Observe(wall.Microseconds())
	h.conflicts.Observe(ss.Conflicts)
	// The bucket fold cannot attribute literals to individual buckets;
	// the learnt-literal total rides along with the first non-empty one
	// so mean learnt size stays derivable from sum/count.
	sum := ss.LearntLits
	for b, n := range ss.LearntSizes {
		if n > 0 {
			h.learnt.AddBucket(b, n, sum)
			sum = 0
		}
	}
}

// observeRaceWaste records one raced check's cancelled-racer CPU. A zero
// observation still counts: the histogram's count is the raced-check
// total, so sum/count is mean waste per race.
func (h *runHists) observeRaceWaste(waste time.Duration) {
	if h == nil {
		return
	}
	h.raceWaste.Observe(waste.Microseconds())
}

// observeSlice records one assertion's conjuncts-dropped percentage.
func (h *runHists) observeSlice(conjuncts, dropped int64) {
	if h == nil || conjuncts <= 0 {
		return
	}
	h.sliceDrop.Observe(100 * dropped / conjuncts)
}

// stats snapshots the non-empty histograms in fixed name order.
func (h *runHists) stats() []HistogramStat {
	if h == nil {
		return nil
	}
	var out []HistogramStat
	for _, e := range []struct {
		name string
		h    *obs.Histogram
	}{
		{obs.HistCheckWallUS, &h.wall},
		{obs.HistCheckConflicts, &h.conflicts},
		{obs.HistLearntSize, &h.learnt},
		{obs.HistSliceDropPct, &h.sliceDrop},
		{obs.HistRaceWasteUS, &h.raceWaste},
	} {
		s := e.h.Snapshot()
		if s.Count == 0 {
			continue
		}
		out = append(out, HistogramStat{
			Name: e.name, Count: s.Count, Sum: s.Sum, Buckets: s.Buckets,
		})
	}
	return out
}

// mergeInto folds the run's histograms into the registry's named ones.
func (h *runHists) mergeInto(r *obs.Registry) {
	if h == nil || r == nil {
		return
	}
	r.Histogram(obs.HistCheckWallUS).Merge(h.wall.Snapshot())
	r.Histogram(obs.HistCheckConflicts).Merge(h.conflicts.Snapshot())
	r.Histogram(obs.HistLearntSize).Merge(h.learnt.Snapshot())
	r.Histogram(obs.HistSliceDropPct).Merge(h.sliceDrop.Snapshot())
	r.Histogram(obs.HistRaceWasteUS).Merge(h.raceWaste.Snapshot())
}

// recordCheck publishes one check's full flight-recorder record: the
// registry counters (countSolver), the run histograms, and — when a
// heartbeat ring is attached — the check's final Done sample, which
// tells the watchdog the check is no longer in flight.
func (rep *Report) recordCheck(o *obs.Obs, label string, worker int,
	ss smt.SolverStats, status smt.Status, wall time.Duration) {
	countSolver(o, ss, status)
	rep.hists.observeCheck(ss, wall)
	if o != nil && o.Progress != nil {
		o.Progress.Publish(obs.ProgressSample{
			Label: label, Worker: worker, Done: true,
			Conflicts: ss.Conflicts, Decisions: ss.Decisions,
			Propagations: ss.Propagations, Restarts: ss.Restarts,
		})
	}
}

// installProgress points a solver's heartbeat at the run's ring,
// labeled with the check it is about to work on. Reinstalled per check
// on shared (incremental) solvers so samples carry the in-flight
// assertion. No-op without a ring; the solver then keeps a nil hook
// and pays one nil check per conflict.
func installProgress(o *obs.Obs, s *smt.Solver, label string, worker int) {
	if o == nil || o.Progress == nil {
		return
	}
	ring := o.Progress
	s.SetProgress(ring.Every(), func(p smt.SolveProgress) {
		ring.Publish(obs.ProgressSample{
			Label: label, Worker: worker,
			Conflicts: p.Conflicts, Decisions: p.Decisions,
			Propagations: p.Propagations, Restarts: p.Restarts,
			TrailDepth: p.TrailDepth, LearntDB: p.LearntDB,
			ArenaBytes: p.ArenaBytes,
		})
	})
}
