package verify

import (
	"strings"
	"testing"

	"aquila/internal/encode"
	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/tables"
)

// forwardP4 mirrors the paper's Figure 6 example: forward.p4 changes TCP
// and UDP packets destined to 10.0.0.1 so they go to 10.0.0.2.
const forwardP4 = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
header tcp_t { bit<16> src_port; bit<16> dst_port; }
header udp_t { bit<16> src_port; bit<16> dst_port; }
struct meta_t { bit<1> redirected; }

ethernet_t ethernet;
ipv4_t ipv4;
tcp_t tcp;
udp_t udp;
meta_t ig_md;

parser IngressParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			6: parse_tcp;
			17: parse_udp;
			default: accept;
		}
	}
	state parse_tcp { extract(tcp); transition accept; }
	state parse_udp { extract(udp); transition accept; }
}

control Ingress {
	action send(bit<9> port) { std_meta.egress_spec = port; }
	action rewrite() { ipv4.dst_ip = 10.0.0.2; ig_md.redirected = 1; }
	action a_drop() { drop(); }
	table fwd {
		key = { ipv4.dst_ip : exact; }
		actions = { rewrite; send; a_drop; }
		default_action = send(1);
	}
	apply {
		if (ipv4.isValid()) { fwd.apply(); }
	}
}

deparser IngressDeparser { emit(ethernet); emit(ipv4); emit(tcp); emit(udp); }

pipeline ingress_pipeline {
	parser = IngressParser;
	control = Ingress;
	deparser = IngressDeparser;
}
`

const forwardSpec = `
assumption {
	init {
		pkt.$order == <ethernet ipv4 (tcp|udp)>;
		pkt.ethernet.etherType == 0x0800;
		if (valid(tcp)) pkt.ipv4.protocol == 6;
		pkt.ipv4.dst_ip == 10.0.0.1;
	}
}
assertion {
	pipe_in = {
		ipv4.dst_ip == 10.0.0.2;
		if (match(fwd, rewrite)) modified(pkt.ipv4.dst_ip);
		keep(tcp);
	}
}
program {
	assume(init);
	call(ingress_pipeline);
	assert(pipe_in);
}
`

func mustProg(t *testing.T, src string) *p4.Program {
	t.Helper()
	prog, err := p4.ParseAndCheck("forward", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func mustSpec(t *testing.T, src string) *lpi.Spec {
	t.Helper()
	spec, err := lpi.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func goodSnapshot() *tables.Snapshot {
	snap := tables.NewSnapshot()
	snap.Add("Ingress.fwd", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(0x0A000001)}, Action: "rewrite", Priority: -1})
	return snap
}

func TestHoldsWithCorrectEntries(t *testing.T) {
	rep, err := Run(mustProg(t, forwardP4), goodSnapshot(), mustSpec(t, forwardSpec), Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("expected all assertions to hold:\n%s", rep.String())
	}
	if rep.Stats.Assertions != 3 {
		t.Fatalf("assertions = %d, want 3", rep.Stats.Assertions)
	}
}

func TestViolatedWithWrongEntry(t *testing.T) {
	snap := tables.NewSnapshot()
	// Wrong action installed: send instead of rewrite.
	snap.Add("Ingress.fwd", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(0x0A000001)}, Action: "send", Args: []uint64{4}, Priority: -1})
	rep, err := Run(mustProg(t, forwardP4), snap, mustSpec(t, forwardSpec), Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("expected a violation with the wrong entry")
	}
	v := rep.Violations[0]
	if v.Info == nil || v.Info.Block != "pipe_in" {
		t.Fatalf("violation info = %+v", v.Info)
	}
	if !strings.Contains(v.Cex, "pkt.ipv4.dst_ip = 0xa000001") {
		t.Fatalf("counterexample missing input packet:\n%s", v.Cex)
	}
}

func TestFindFirstVsFindAll(t *testing.T) {
	// Empty table: dst_ip assertion fails AND the redirected-keep fails.
	spec := mustSpec(t, forwardSpec)
	prog := mustProg(t, forwardP4)
	snap := tables.NewSnapshot()
	snap.Add("Ingress.fwd", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(0x0A000009)}, Action: "send", Args: []uint64{2}, Priority: -1})

	first, err := Run(prog, snap, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Holds || len(first.Violations) != 1 {
		t.Fatalf("find-first should report exactly one violation, got %d", len(first.Violations))
	}
	all, err := Run(prog, snap, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if all.Holds || len(all.Violations) < 1 {
		t.Fatal("find-all should report at least one violation")
	}
	if len(all.Violations) < len(first.Violations) {
		t.Fatal("find-all must report at least as many violations as find-first")
	}
}

func TestKeepViolatedWhenFieldRewritten(t *testing.T) {
	// keep(pkt.ipv4.dst_ip) must fail because rewrite changes it.
	spec := mustSpec(t, `
assumption { init {
	pkt.$order == <ethernet ipv4 tcp>;
	pkt.ethernet.etherType == 0x0800;
	pkt.ipv4.dst_ip == 10.0.0.1;
}}
assertion { post = { keep(pkt.ipv4.dst_ip); } }
program {
	assume(init);
	call(ingress_pipeline);
	assert(post);
}`)
	rep, err := Run(mustProg(t, forwardP4), goodSnapshot(), spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("keep(dst_ip) must be violated by the rewrite action")
	}
}

func TestGhostVariablesAndIf(t *testing.T) {
	// Mirror Figure 6's #quit ghost: skip the assertion when dropped.
	spec := mustSpec(t, `
assumption { init {
	pkt.$order == <ethernet ipv4 tcp>;
	pkt.ethernet.etherType == 0x0800;
}}
assertion { always_sent = { std_meta.egress_spec == 1; } }
program {
	assume(init);
	call(ingress_pipeline);
	#quit = (std_meta.drop == 1) || (std_meta.to_cpu == 1);
	if (!#quit) {
		assert(always_sent);
	}
}`)
	snap := tables.NewSnapshot() // empty: default send(1) always runs
	snap.Add("Ingress.fwd", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(0x0A000099)}, Action: "a_drop", Priority: -1})
	rep, err := Run(mustProg(t, forwardP4), snap, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	// Dropped packets skip the check; all others take the default send(1).
	if !rep.Holds {
		t.Fatalf("ghost-guarded assertion should hold:\n%s", rep.String())
	}
}

func TestMultiPipelinePassing(t *testing.T) {
	// Two pipelines: the first rewrites dst_ip, the second parses the
	// passed packet and must observe the rewritten value.
	src := forwardP4 + `
control Egress {
	action mark() { ipv4.ttl = 99; }
	table egr {
		key = { ipv4.dst_ip : exact; }
		actions = { mark; }
	}
	apply { if (ipv4.isValid()) { egr.apply(); } }
}
pipeline egress_pipeline {
	parser = IngressParser;
	control = Egress;
	deparser = IngressDeparser;
}
`
	spec := mustSpec(t, `
assumption { init {
	pkt.$order == <ethernet ipv4 tcp>;
	pkt.ethernet.etherType == 0x0800;
	pkt.ipv4.protocol == 6;
	pkt.ipv4.dst_ip == 10.0.0.1;
}}
assertion {
	after_egress = {
		ipv4.ttl == 99;
		match(egr, mark);
	}
}
program {
	assume(init);
	call(ingress_pipeline);
	call(egress_pipeline);
	assert(after_egress);
}`)
	snap := goodSnapshot()
	snap.Add("Egress.egr", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(0x0A000002)}, Action: "mark", Priority: -1})
	rep, err := Run(mustProg(t, src), snap, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("egress must see the rewritten dst_ip via packet passing:\n%s", rep.String())
	}
}

func TestOutputOrderAssertion(t *testing.T) {
	spec := mustSpec(t, `
assumption { init {
	pkt.$order == <ethernet ipv4 tcp>;
	pkt.ethernet.etherType == 0x0800;
	pkt.ipv4.protocol == 6;
}}
assertion { dep = { pkt.$out_order == <ethernet ipv4 tcp>; } }
program {
	assume(init);
	call(ingress_pipeline);
	assert(dep);
}`)
	rep, err := Run(mustProg(t, forwardP4), goodSnapshot(), spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("deparsed order must match:\n%s", rep.String())
	}
}

func TestAcceptedBuiltinAndWildcardEntries(t *testing.T) {
	// Without a snapshot (any entries), parser-level properties still hold.
	spec := mustSpec(t, `
assumption { init {
	pkt.$order == <ethernet ipv4 tcp>;
	pkt.ethernet.etherType == 0x0800;
	pkt.ipv4.protocol == 6;
}}
assertion { parsed = {
	accepted(IngressParser);
	valid(tcp);
	tcp.isValid();
} }
program {
	assume(init);
	call(IngressParser);
	assert(parsed);
}`)
	rep, err := Run(mustProg(t, forwardP4), nil, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("parser acceptance must hold:\n%s", rep.String())
	}
}

func TestWildcardEntriesPropertyViolable(t *testing.T) {
	// Under any entries, "dst_ip becomes 10.0.0.2" is violable (an entry
	// could install send instead).
	rep, err := Run(mustProg(t, forwardP4), nil, mustSpec(t, forwardSpec), Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("property must be violable under arbitrary table entries")
	}
}

func TestGroupsAndQuantifiers(t *testing.T) {
	spec := mustSpec(t, `
group l4ports { tcp.src_port; tcp.dst_port; }
assumption { init {
	pkt.$order == <ethernet ipv4 tcp>;
	pkt.ethernet.etherType == 0x0800;
	pkt.ipv4.protocol == 6;
}}
assertion { ports = {
	keep(l4ports);
	forall(l4ports, keep($f));
	exists(l4ports, keep($f));
} }
program {
	assume(init);
	call(ingress_pipeline);
	assert(ports);
}`)
	rep, err := Run(mustProg(t, forwardP4), goodSnapshot(), spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("tcp ports are untouched; group properties must hold:\n%s", rep.String())
	}
}

func TestRecircProgramStmt(t *testing.T) {
	src := `
header h_t { bit<8> n; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	apply {
		h.n = h.n + 1;
		if (h.n < 2) { recirculate(); }
	}
}
deparser D { emit(h); }
pipeline pl { parser = P; control = C; deparser = D; }
`
	spec := mustSpec(t, `
assumption { init { pkt.$order == <h>; pkt.h.n == 0; } }
assertion { post = { h.n == 2; } }
program {
	assume(init);
	recirc(pl, 4);
	assert(post);
}`)
	rep, err := Run(mustProg(t, src), nil, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("bounded recirculation must reach n==2:\n%s", rep.String())
	}
}

func TestInitialMetadataSnapshot(t *testing.T) {
	src := `
header h_t { bit<8> v; } h_t h;
struct m_t { bit<8> x; } m_t md;
parser P { state start { extract(h); transition accept; } }
control C { apply { md.x = md.x + 1; } }
pipeline pl { parser = P; control = C; }
`
	spec := mustSpec(t, `
assumption { init { pkt.$order == <h>; md.x == 5; } }
assertion { post = { md.x == @md.x + 1; } }
program {
	assume(init);
	call(pl);
	assert(post);
}`)
	rep, err := Run(mustProg(t, src), nil, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("@md.x must snapshot the initial metadata value:\n%s", rep.String())
	}
}

func TestSpecErrors(t *testing.T) {
	prog := mustProg(t, forwardP4)
	bad := []string{
		`program { assume(nosuch); }`,
		`program { assert(nosuch); }`,
		`program { call(nosuch); }`,
		`assertion { a = { match(nosuch, x); } } program { assert(a); }`,
		`assertion { a = { match(fwd, nosuch); } } program { assert(a); }`,
		`assertion { a = { nosuch.field == 1; } } program { assert(a); }`,
		`assertion { a = { keep(nosuch); } } program { assert(a); }`,
		`assertion { a = { #undefined == 1; } } program { assert(a); }`,
		`assertion { a = { pkt.$order == <nosuchhdr>; } } program { assert(a); }`,
		`assertion { a = { forall(nogroup, $f == 1); } } program { assert(a); }`,
	}
	for _, src := range bad {
		spec, err := lpi.Parse(src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Run(prog, nil, spec, Options{}); err == nil {
			t.Errorf("no error for spec %q", src)
		}
	}
}

func TestSpecParseErrors(t *testing.T) {
	bad := []string{
		`bogus_section { }`,
		`program { frobnicate(x); }`,
		`assumption { b { x == ; } }`,
		`assumption { b { pkt.$order == <eth; } }`,
		`program { if (x == 1) { assume(b) } }`, // missing semicolon
	}
	for _, src := range bad {
		if _, err := lpi.Parse(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}

func TestTreeEncodingMatchesSequentialVerdict(t *testing.T) {
	for _, mode := range []encode.ParserMode{encode.ParserSequential, encode.ParserTree} {
		rep, err := Run(mustProg(t, forwardP4), goodSnapshot(), mustSpec(t, forwardSpec),
			Options{FindAll: true, Encode: encode.Options{Parser: mode}})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Holds {
			t.Fatalf("mode %v: spec must hold", mode)
		}
	}
}

func TestReportString(t *testing.T) {
	rep, err := Run(mustProg(t, forwardP4), goodSnapshot(), mustSpec(t, forwardSpec), Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "verified") || !strings.Contains(s, "stats:") {
		t.Fatalf("report = %s", s)
	}
}

func TestSpecLoC(t *testing.T) {
	if n := lpi.SpecLoC(forwardSpec); n < 15 || n > 30 {
		t.Fatalf("SpecLoC = %d", n)
	}
}

func TestBlocklistExtraction(t *testing.T) {
	// Any-entries verification: the rewrite-to-10.0.0.2 property is
	// violable; the blocklist must name the fwd table behaviours of the
	// counterexamples.
	rep, err := Run(mustProg(t, forwardP4), nil, mustSpec(t, forwardSpec), Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("expected violations under any entries")
	}
	bl := rep.Blocklist()
	if len(bl) == 0 {
		t.Fatal("expected blocklist entries")
	}
	found := false
	for _, b := range bl {
		if b.Table == "Ingress.fwd" {
			found = true
		}
	}
	if !found {
		t.Fatalf("blocklist %v should mention Ingress.fwd", bl)
	}
	// With a snapshot installed, no wildcard behaviours exist.
	rep2, err := Run(mustProg(t, forwardP4), goodSnapshot(), mustSpec(t, forwardSpec), Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep2.Blocklist()); n != 0 {
		t.Fatalf("snapshot run should have no blocklist, got %d", n)
	}
}

func TestConstEntriesUsedWhenNoSnapshot(t *testing.T) {
	src := `
header h_t { bit<8> k; bit<8> v; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	action set(bit<8> x) { h.v = x; }
	action zero() { h.v = 0; }
	table t {
		key = { h.k : exact; }
		actions = { set; zero; }
		default_action = zero;
		entries = {
			(1) : set(11);
			(2) : set(22);
		}
	}
	apply { t.apply(); }
}
pipeline pl { parser = P; control = C; }
`
	spec := mustSpec(t, `
assumption { init { pkt.$order == <h>; pkt.h.k == 2; } }
assertion { post = { h.v == 22; match(t, set); } }
program { assume(init); call(pl); assert(post); }`)
	rep, err := Run(mustProg(t, src), nil, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("const entries must be used when no snapshot overrides them:\n%s", rep.String())
	}
	// A snapshot on the same table overrides the const entries.
	snap := tables.NewSnapshot()
	snap.Add("C.t", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(2)}, Action: "set", Args: []uint64{99}, Priority: -1})
	spec2 := mustSpec(t, `
assumption { init { pkt.$order == <h>; pkt.h.k == 2; } }
assertion { post = { h.v == 99; } }
program { assume(init); call(pl); assert(post); }`)
	rep2, err := Run(mustProg(t, src), snap, spec2, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Holds {
		t.Fatalf("snapshot must override const entries:\n%s", rep2.String())
	}
}

func TestBitvectorPacketModeThroughLPI(t *testing.T) {
	// Properties that do not mention pkt.$order work in the bit-vector
	// packet baseline too.
	spec := mustSpec(t, `
assertion { post = { if (applied(Ingress.fwd)) valid(ipv4); } }
program { call(ingress_pipeline); assert(post); }`)
	rep, err := Run(mustProg(t, forwardP4), goodSnapshot(), spec,
		Options{FindAll: true, Encode: encode.Options{Packet: encode.PacketBitvector}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("guarded apply must satisfy the property in bitvector mode:\n%s", rep.String())
	}
}

func TestResubmitProgramStmt(t *testing.T) {
	// Resubmission re-parses the ORIGINAL packet: a field rewritten in the
	// first pass is restored by the re-parse, but metadata carries over.
	src := `
header h_t { bit<8> n; } h_t h;
struct m_t { bit<8> rounds; bit<8> seen; } m_t md;
parser P { state start { extract(h); transition accept; } }
control C {
	apply {
		if (md.rounds == 1) { md.seen = h.n; } // what the 2nd pass parsed
		h.n = 77;
		md.rounds = md.rounds + 1;
		if (md.rounds < 2) { resubmit(); }
	}
}
deparser D { emit(h); }
pipeline pl { parser = P; control = C; deparser = D; }
`
	spec := mustSpec(t, `
assumption { init { pkt.$order == <h>; pkt.h.n == 5; md.rounds == 0; } }
assertion { post = {
	md.rounds == 2;
	// Resubmission re-parses the ORIGINAL wire image: the second pass
	// must have observed 5 (a recirculated packet would carry 77).
	md.seen == 5;
} }
program {
	assume(init);
	resubmit(pl, 4);
	assert(post);
}`)
	rep, err := Run(mustProg(t, src), nil, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("resubmission semantics violated:\n%s", rep.String())
	}
}

func TestCountersAndMeters(t *testing.T) {
	src := `
header h_t { bit<8> v; bit<8> color; } h_t h;
counter<bit<32>>(256) pkts;
meter<bit<8>>(256) rate;
parser P { state start { extract(h); transition accept; } }
control C {
	apply {
		pkts.count(0);
		pkts.count(5);
		rate.execute_meter(0, h.color);
		if (h.color > 1) { drop(); }
	}
}
pipeline pl { parser = P; control = C; }
`
	spec := mustSpec(t, `
assumption { init { pkt.$order == <h>; reg.pkts == 0; } }
assertion { post = {
	reg.pkts == 2;
	if (h.color > 1) std_meta.drop == 1;
} }
program { assume(init); call(pl); assert(post); }`)
	rep, err := Run(mustProg(t, src), nil, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("counter/meter semantics violated:\n%s", rep.String())
	}
	// The meter colour is havoced: a concrete claim about it is violable.
	spec2 := mustSpec(t, `
assumption { init { pkt.$order == <h>; } }
assertion { post = { h.color == 0; } }
program { assume(init); call(pl); assert(post); }`)
	rep2, err := Run(mustProg(t, src), nil, spec2, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Holds {
		t.Fatal("meter colour must be unconstrained")
	}
}

func TestJSONReport(t *testing.T) {
	rep, err := Run(mustProg(t, forwardP4), nil, mustSpec(t, forwardSpec), Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"holds": false`, `"label"`, `"counterexample"`, `"cnf_clauses"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
}

// TestFigure2RedArrowPath reproduces the paper's flagship hyper-converged
// composition (Figure 2): Internet traffic follows switch ingress → load
// balancer egress → load balancer ingress → scheduler egress, with table
// entries steering the function chain and values passed between pipelines.
func TestFigure2RedArrowPath(t *testing.T) {
	src := `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
struct chain_t { bit<4> stage; bit<9> out_port; }

ethernet_t eth;
ipv4_t ipv4;
chain_t chain;

parser CommonParser {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 { extract(ipv4); transition accept; }
}

control SwitchIngress {
	action to_lb() { chain.stage = 1; }
	action a_drop() { drop(); }
	table steer {
		key = { ipv4.dst_ip : lpm; }
		actions = { to_lb; a_drop; }
		default_action = a_drop;
	}
	apply { if (ipv4.isValid()) { steer.apply(); } }
}

control LBEgress {
	action vip_dnat(bit<32> dip) { ipv4.dst_ip = dip; chain.stage = 2; }
	table vip {
		key = { ipv4.dst_ip : exact; }
		actions = { vip_dnat; }
	}
	apply { if (chain.stage == 1) { vip.apply(); } }
}

control LBIngress {
	action conn_select() { chain.stage = 3; }
	table conn {
		key = { ipv4.dst_ip : lpm; }
		actions = { conn_select; }
	}
	apply { if (chain.stage == 2) { conn.apply(); } }
}

control SchedEgress {
	action enqueue(bit<9> port) { chain.stage = 4; chain.out_port = port; std_meta.egress_spec = port; }
	table sched {
		key = { ipv4.dst_ip : exact; }
		actions = { enqueue; }
	}
	apply { if (chain.stage == 3) { sched.apply(); } }
}

deparser D { emit(eth); emit(ipv4); }

pipeline switch_in { parser = CommonParser; control = SwitchIngress; deparser = D; }
pipeline lb_eg { parser = CommonParser; control = LBEgress; deparser = D; }
pipeline lb_in { parser = CommonParser; control = LBIngress; deparser = D; }
pipeline sched_eg { parser = CommonParser; control = SchedEgress; deparser = D; }
`
	spec := mustSpec(t, `
assumption { init {
	pkt.$order == <eth ipv4>;
	pkt.eth.etherType == 0x0800;
	pkt.ipv4.dst_ip == 10.9.0.1;     // the VIP
} }
assertion {
	red_arrow = {
		// The packet traversed the whole function chain in order...
		match(steer, to_lb);
		match(vip, vip_dnat);
		match(conn, conn_select);
		match(sched, enqueue);
		chain.stage == 4;
		// ...the NAT rewrote the VIP to the DIP before scheduling...
		ipv4.dst_ip == 172.16.0.5;
		// ...and the packet leaves on the scheduled port.
		std_meta.egress_spec == 44;
	}
}
program {
	assume(init);
	call(switch_in);
	call(lb_eg);
	call(lb_in);
	call(sched_eg);
	assert(red_arrow);
}`)
	snap := tables.NewSnapshot()
	snap.Add("SwitchIngress.steer", &tables.Entry{Keys: []tables.KeyMatch{tables.LPM(0x0A090000, 16, 32)}, Action: "to_lb", Priority: -1})
	snap.Add("LBEgress.vip", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(0x0A090001)}, Action: "vip_dnat", Args: []uint64{0xAC100005}, Priority: -1})
	snap.Add("LBIngress.conn", &tables.Entry{Keys: []tables.KeyMatch{tables.LPM(0xAC100000, 12, 32)}, Action: "conn_select", Priority: -1})
	snap.Add("SchedEgress.sched", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(0xAC100005)}, Action: "enqueue", Args: []uint64{44}, Priority: -1})

	rep, err := Run(mustProg(t, src), snap, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("the Figure 2 red-arrow chain must verify:\n%s", rep.String())
	}
	// Break the steering entry: the whole chain collapses and every
	// chain assertion is reported.
	snap2 := snap.Clone()
	snap2.Remove("SwitchIngress.steer")
	snap2.Add("SwitchIngress.steer", &tables.Entry{Keys: []tables.KeyMatch{tables.LPM(0x0B000000, 16, 32)}, Action: "to_lb", Priority: -1})
	rep2, err := Run(mustProg(t, src), snap2, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Holds || len(rep2.Violations) < 5 {
		t.Fatalf("broken steering must cascade (got %d violations)", len(rep2.Violations))
	}
}
