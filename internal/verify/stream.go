package verify

import (
	"aquila/internal/obs"
	"aquila/internal/smt"
)

// streamReleaseMin gates arena rollback in streaming mode: a release
// rebuilds the intern table over the surviving prefix, so it only pays off
// once a meaningful burst of transient terms has accumulated past the
// watermark. Package variable so tests can force releases on programs far
// smaller than the production VCs the mode exists for.
var streamReleaseMin = 1024

// checkAllStream is find-all with bounded term memory. Plain fresh mode
// computes every assertion's cone-of-influence slice up front and keeps
// all of the transient slice terms (factored residuals, rebuilt
// conjunctions) interned until the run ends, so peak term memory grows
// with assertions × slice size. Streaming mode instead takes an arena
// watermark after VC generation and then slices, checks, and consumes one
// assertion at a time; whenever enough transients have accumulated past
// the watermark it purges the slicer's memo of entries referencing them
// and rolls the arena back (smt.Ctx.Release). Peak term memory is then
// the VC plus one assertion's transients, independent of the run length.
//
// Determinism: each assertion still gets the exact fresh-solver procedure
// of checkAll (checkOne), slices are recomputed identically when their
// memo entries were purged (hash-consing makes the rebuilt terms
// structurally identical), and results are consumed in assertion order —
// so verdicts, counterexamples, and canonical report bytes match plain
// fresh mode at every streamReleaseMin. The engine is serial by
// construction: a frozen shared context cannot release, which is also why
// Release is skipped (never needed in practice) when the caller handed in
// an already-frozen context.
func (rep *Report) checkAllStream(opts Options) error {
	conds := rep.Result.Violations
	o := opts.Observer()
	rep.Stats.Workers = 1
	rep.Stats.Stream = true
	ctx := rep.Ctx
	released0 := ctx.ReleasedTerms()
	mark := ctx.Mark()
	var sl *slicer
	if opts.Slice {
		sl = newSlicer(ctx)
	}

	var err error
	for _, v := range conds {
		checkCond := v.Cond
		if sl != nil {
			endSlice := o.Span(0, "slice:"+v.Label)
			c0, d0 := sl.Conjuncts, sl.Dropped
			checkCond = sl.slice(v)
			rep.hists.observeSlice(sl.Conjuncts-c0, sl.Dropped-d0)
			endSlice()
		}
		endSpan := o.Span(0, "solve:"+v.Label)
		st, model, ss, cpu := rep.checkOne(opts, v, checkCond, 0)
		endSpan()
		rep.recordCheck(o, v.Label, 0, ss, st, cpu)
		rep.Stats.SolveCPU += cpu
		rep.Stats.addSolver(ss)
		rep.Stats.PerAssertion = append(rep.Stats.PerAssertion, AssertionCost{
			Label:        v.Label,
			Status:       statusString(st),
			SolveTime:    cpu,
			Conflicts:    ss.Conflicts,
			Decisions:    ss.Decisions,
			Propagations: ss.Propagations,
			Restarts:     ss.Restarts,
			CNFClauses:   ss.Clauses,
			SATVars:      ss.SATVars,
		})
		o.Event("assertion", map[string]any{
			"label": v.Label, "status": statusString(st),
			"solve_us": cpu.Microseconds(), "conflicts": ss.Conflicts,
			"clauses": ss.Clauses, "stream": true,
		})
		if st == smt.Unknown {
			o.Event("budget_exhausted", map[string]any{
				"label": v.Label, "budget": opts.Budget,
			})
			err = ErrBudget
			break
		}
		if st == smt.Sat {
			// The counterexample is rendered here, before any release: the
			// model is name-keyed and v.Cond predates the watermark, so the
			// stored Violation retains no released pointers.
			rep.Violations = append(rep.Violations, rep.makeViolation(v, model))
		}
		if !ctx.Frozen() && ctx.NumTerms()-mark >= streamReleaseMin {
			if sl != nil {
				sl.purge(mark)
			}
			ctx.Release(mark)
			rep.Stats.StreamReleases++
		}
	}

	if sl != nil {
		rep.Stats.SliceConjuncts = sl.Conjuncts
		rep.Stats.SliceDropped = sl.Dropped
		if o != nil && o.Metrics != nil {
			o.Metrics.Counter(obs.CtrVerifySliceDropped).Add(sl.Dropped)
		}
		o.Event("slice", map[string]any{"conjuncts": sl.Conjuncts, "dropped": sl.Dropped})
	}
	rep.Stats.ReleasedTerms = ctx.ReleasedTerms() - released0
	if o != nil && o.Metrics != nil {
		o.Metrics.Counter(obs.CtrSMTTermsReleased).Add(rep.Stats.ReleasedTerms)
	}
	return err
}
