package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Coverage export: the fuzzing engine steers mutation energy by the
// *shape* of a run, not its exact cost — two runs that fired the same
// rewrite rules and preprocessing paths a comparable number of times are
// the same coverage point even if raw counts differ by scheduling noise.
// BucketLog2 coarsens counters into log2 buckets and Signature renders a
// whole registry snapshot as one canonical, comparable string.

// BucketLog2 maps a counter value to a coarse bucket: 0 -> 0, and v > 0 to
// 1+floor(log2(v)). Negative values (which the registry never produces,
// but deltas might) clamp to 0.
func BucketLog2(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Signature renders a snapshot (name -> value) as a canonical
// "name:bucket" list, sorted by name, with zero-valued instruments
// omitted. Equal signatures mean "the run exercised the same structural
// paths at the same order of magnitude".
func Signature(snap map[string]int64) string {
	keys := make([]string, 0, len(snap))
	for name, v := range snap {
		if v != 0 {
			keys = append(keys, name)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, name := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", name, BucketLog2(snap[name]))
	}
	return b.String()
}

// Delta subtracts an earlier snapshot from a later one, keeping only the
// instruments that moved. It lets a caller share one registry across many
// runs and still extract per-run signatures.
func Delta(later, earlier map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(later))
	for name, v := range later {
		if d := v - earlier[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}
