package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one Chrome trace-event (the format chrome://tracing and
// Perfetto load): ph "B"/"E" delimit a duration span on (pid, tid); ph "M"
// carries thread metadata. Timestamps are microseconds from the tracer's
// start.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records hierarchical phase spans in-process. Begin/End append
// under a mutex with the timestamp taken inside the critical section, so
// the recorded event sequence is monotone in ts by construction — the
// property the Chrome trace viewer requires and the schema test asserts.
// Contention is negligible: spans delimit phases and per-assertion solves,
// not solver-inner-loop work.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// NewTracer returns a tracer whose timestamps count from now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

func (t *Tracer) append(e Event) {
	t.mu.Lock()
	e.TS = time.Since(t.start).Microseconds()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Begin opens a span named name on thread tid. Safe on nil.
func (t *Tracer) Begin(tid int, name string) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Ph: "B", TID: tid})
}

// End closes the innermost open span named name on thread tid. Safe on
// nil.
func (t *Tracer) End(tid int, name string) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Ph: "E", TID: tid})
}

// NameThread emits a thread_name metadata event so the viewer labels tid
// (e.g. "worker-3"). Safe on nil.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.append(Event{Name: "thread_name", Ph: "M", TID: tid,
		Args: map[string]any{"name": name}})
}

// Events returns a snapshot copy of the recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// traceFile is the object form of the trace-event format; the metrics
// snapshot rides along in otherData (ignored by viewers, handy for
// archaeology on CI artifacts).
type traceFile struct {
	TraceEvents     []Event          `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	OtherData       map[string]int64 `json:"otherData,omitempty"`
}

// WriteJSON writes the trace in Chrome trace-event JSON (object form).
// metrics may be nil; when present its snapshot is embedded as otherData.
func (t *Tracer) WriteJSON(w io.Writer, metrics *Registry) error {
	if t == nil {
		return fmt.Errorf("obs: WriteJSON on nil tracer")
	}
	out := traceFile{
		TraceEvents:     t.Events(),
		DisplayTimeUnit: "ms",
	}
	if metrics != nil {
		out.OtherData = metrics.Snapshot()
	}
	if out.TraceEvents == nil {
		out.TraceEvents = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
