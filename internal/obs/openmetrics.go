package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteOpenMetrics writes the registry in the OpenMetrics text
// exposition format (the Prometheus scrape format): counters with a
// _total sample, gauges plain, histograms with cumulative log2 le
// buckets plus _sum/_count, terminated by # EOF. Instrument names are
// prefixed aquila_ with dots mapped to underscores, so sat.conflicts
// scrapes as aquila_sat_conflicts_total. A nil registry writes just the
// EOF marker — the future aquila-serve daemon can always expose the
// endpoint.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	type inst struct {
		name  string
		write func(io.Writer, string) error
	}
	var insts []inst
	if r != nil {
		r.mu.Lock()
		for name, c := range r.counters {
			v := c.Value()
			insts = append(insts, inst{name, func(w io.Writer, om string) error {
				_, err := fmt.Fprintf(w, "# TYPE %s counter\n%s_total %d\n", om, om, v)
				return err
			}})
		}
		for name, g := range r.gauges {
			v := g.Value()
			insts = append(insts, inst{name, func(w io.Writer, om string) error {
				_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", om, om, v)
				return err
			}})
		}
		for name, h := range r.histograms {
			s := h.Snapshot()
			insts = append(insts, inst{name, func(w io.Writer, om string) error {
				return writeOpenMetricsHist(w, om, s)
			}})
		}
		r.mu.Unlock()
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i].name < insts[j].name })
	for _, in := range insts {
		if err := in.write(w, openMetricsName(in.name)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func writeOpenMetricsHist(w io.Writer, om string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", om); err != nil {
		return err
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n",
			om, HistBucketBound(i), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		om, s.Count, om, s.Sum, om, s.Count)
	return err
}

// openMetricsName maps a registry name onto the OpenMetrics charset:
// aquila_ prefix, [a-zA-Z0-9_] body.
func openMetricsName(name string) string {
	var b strings.Builder
	b.WriteString("aquila_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
