package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Utilization is the trace-analysis result ROADMAP item 2(c) asks for:
// per-worker busy fractions over the solve phase, the critical path (the
// longest single check — the floor any scheduler can reach), and a
// straggler index quantifying load imbalance. CI gates on MeanBusyFrac
// so a scheduling regression shows up even on single-CPU hosts, where
// wall time alone cannot distinguish "workers starved" from "machine
// slow".
type Utilization struct {
	// SolveWallUS is the duration of the orchestrator's "solve" phase
	// (falls back to the envelope of all check spans).
	SolveWallUS int64 `json:"solve_wall_us"`
	// Checks is the number of solve:* spans across all workers.
	Checks  int                 `json:"checks"`
	Workers []WorkerUtilization `json:"workers"`
	// MeanBusyFrac / MinBusyFrac aggregate the per-worker fractions.
	MeanBusyFrac float64 `json:"mean_busy_frac"`
	MinBusyFrac  float64 `json:"min_busy_frac"`
	// CriticalPathUS is the longest single check span; no schedule can
	// finish the solve phase faster.
	CriticalPathUS    int64  `json:"critical_path_us"`
	CriticalPathLabel string `json:"critical_path_label"`
	// StragglerIndex is max worker busy time over mean worker busy time
	// (1.0 = perfectly balanced; 2.0 = one worker did twice the mean).
	StragglerIndex float64 `json:"straggler_index"`
}

// WorkerUtilization is one worker row: the sum of its solve:* span
// durations and that sum as a fraction of the solve-phase wall.
type WorkerUtilization struct {
	TID      int     `json:"tid"`
	Name     string  `json:"name,omitempty"`
	Checks   int     `json:"checks"`
	BusyUS   int64   `json:"busy_us"`
	BusyFrac float64 `json:"busy_frac"`
}

// Analyze computes utilization analytics from trace events. Check work
// is every span named "solve:<label>"; the solve wall is the "solve"
// phase on the orchestrator thread. Returns an error when the trace
// contains no check spans.
func Analyze(events []Event) (*Utilization, error) {
	type open struct{ ts int64 }
	type key struct {
		tid  int
		name string
	}
	stacks := map[key][]open{}
	names := map[int]string{}
	u := &Utilization{}
	busy := map[int]int64{}
	checks := map[int]int{}
	var envLo, envHi int64 = -1, -1
	var solveLo, solveHi int64 = -1, -1
	for _, e := range events {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				if n, ok := e.Args["name"].(string); ok {
					names[e.TID] = n
				}
			}
		case "B":
			k := key{e.TID, e.Name}
			stacks[k] = append(stacks[k], open{e.TS})
		case "E":
			k := key{e.TID, e.Name}
			st := stacks[k]
			if len(st) == 0 {
				continue
			}
			b := st[len(st)-1]
			stacks[k] = st[:len(st)-1]
			dur := e.TS - b.ts
			if e.Name == "solve" {
				if solveLo < 0 || b.ts < solveLo {
					solveLo, solveHi = b.ts, e.TS
				}
				continue
			}
			if !strings.HasPrefix(e.Name, "solve:") {
				continue
			}
			busy[e.TID] += dur
			checks[e.TID]++
			u.Checks++
			if dur > u.CriticalPathUS {
				u.CriticalPathUS = dur
				u.CriticalPathLabel = strings.TrimPrefix(e.Name, "solve:")
			}
			if envLo < 0 || b.ts < envLo {
				envLo = b.ts
			}
			if e.TS > envHi {
				envHi = e.TS
			}
		}
	}
	if u.Checks == 0 {
		return nil, fmt.Errorf("obs: analyze: no solve:* spans in trace (run with -trace and -all)")
	}
	if solveLo >= 0 {
		u.SolveWallUS = solveHi - solveLo
	} else {
		u.SolveWallUS = envHi - envLo
	}
	if u.SolveWallUS <= 0 {
		u.SolveWallUS = 1
	}
	tids := make([]int, 0, len(busy))
	for tid := range busy {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	var sumBusy, maxBusy int64
	u.MinBusyFrac = 1
	for _, tid := range tids {
		frac := float64(busy[tid]) / float64(u.SolveWallUS)
		u.Workers = append(u.Workers, WorkerUtilization{
			TID: tid, Name: names[tid], Checks: checks[tid],
			BusyUS: busy[tid], BusyFrac: frac,
		})
		sumBusy += busy[tid]
		if busy[tid] > maxBusy {
			maxBusy = busy[tid]
		}
		if frac < u.MinBusyFrac {
			u.MinBusyFrac = frac
		}
	}
	mean := float64(sumBusy) / float64(len(tids))
	u.MeanBusyFrac = mean / float64(u.SolveWallUS)
	if mean > 0 {
		u.StragglerIndex = float64(maxBusy) / mean
	}
	return u, nil
}

// AnalyzeTraceFile reads a Chrome trace-event JSON file (as written by
// -trace) and analyzes it.
func AnalyzeTraceFile(path string) (*Utilization, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: analyze: %w", err)
	}
	var tf struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("obs: analyze: %s: %w", path, err)
	}
	return Analyze(tf.TraceEvents)
}

// FormatUtilization renders the analytics as the table aquila-bench
// -analyze prints.
func FormatUtilization(u *Utilization) string {
	var b strings.Builder
	fmt.Fprintf(&b, "solve wall: %.3f ms over %d checks\n",
		float64(u.SolveWallUS)/1000, u.Checks)
	fmt.Fprintf(&b, "%-6s %-12s %7s %12s %10s\n", "tid", "name", "checks", "busy_ms", "busy_frac")
	for _, w := range u.Workers {
		fmt.Fprintf(&b, "%-6d %-12s %7d %12.3f %9.1f%%\n",
			w.TID, w.Name, w.Checks, float64(w.BusyUS)/1000, 100*w.BusyFrac)
	}
	fmt.Fprintf(&b, "mean busy %.1f%%  min busy %.1f%%  straggler index %.2f\n",
		100*u.MeanBusyFrac, 100*u.MinBusyFrac, u.StragglerIndex)
	fmt.Fprintf(&b, "critical path: %.3f ms (%s)\n",
		float64(u.CriticalPathUS)/1000, u.CriticalPathLabel)
	return b.String()
}

// CompareUtilization is the CI scheduling-regression gate: it fails
// when the measured mean busy fraction regressed more than 20%
// relative to the reference.
func CompareUtilization(ref, got *Utilization) error {
	if ref == nil || got == nil {
		return fmt.Errorf("obs: compare: missing utilization data")
	}
	if ref.MeanBusyFrac <= 0 {
		return nil
	}
	if got.MeanBusyFrac < ref.MeanBusyFrac*0.8 {
		return fmt.Errorf("obs: scheduling regression: mean busy fraction %.1f%% fell >20%% below reference %.1f%%",
			100*got.MeanBusyFrac, 100*ref.MeanBusyFrac)
	}
	return nil
}

// CompareStraggler is the CI load-balance gate for the work-stealing
// scheduler: on a workload with a known heavy assertion, the steal
// schedule's straggler index (got) must not be worse than the static
// schedule's (ref). A small tolerance absorbs trace-timestamp noise on
// runs whose checks are all sub-millisecond. Busy-time ratios are
// machine-speed invariant, so the gate holds even on a 1-CPU host.
func CompareStraggler(ref, got *Utilization) error {
	if ref == nil || got == nil {
		return fmt.Errorf("obs: compare: missing utilization data")
	}
	if ref.StragglerIndex <= 0 || got.StragglerIndex <= 0 {
		return fmt.Errorf("obs: compare: missing straggler index (ref %.2f, got %.2f)",
			ref.StragglerIndex, got.StragglerIndex)
	}
	const tolerance = 1.05
	if got.StragglerIndex > ref.StragglerIndex*tolerance {
		return fmt.Errorf("obs: load-balance regression: straggler index %.2f exceeds reference %.2f (tolerance %.0f%%)",
			got.StragglerIndex, ref.StragglerIndex, 100*(tolerance-1))
	}
	return nil
}
