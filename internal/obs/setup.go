package obs

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// Config selects the sinks a CLI attaches — the -trace, -pprof,
// -memprofile, -v, -progress, -metrics and -watchdog flags map onto it
// one-to-one.
type Config struct {
	// TracePath, when non-empty, collects spans and writes Chrome
	// trace-event JSON there on Close.
	TracePath string
	// CPUProfilePath, when non-empty, runs a CPU profile for the whole
	// process lifetime (written on Close).
	CPUProfilePath string
	// MemProfilePath, when non-empty, writes a heap profile on Close.
	MemProfilePath string
	// Verbose attaches a JSONL logger to LogTo (default os.Stderr).
	Verbose bool
	LogTo   io.Writer
	// Progress attaches a heartbeat ring and prints a live status line
	// to ProgressTo (default os.Stderr) while checks solve.
	// ProgressEvery is the heartbeat period in conflicts (default
	// 4096).
	Progress      bool
	ProgressTo    io.Writer
	ProgressEvery int64
	// StallWindow, when positive, attaches the heartbeat ring plus a
	// watchdog that dumps diagnostics to StallTo (default os.Stderr)
	// for any check heartbeating longer than the window without
	// finishing.
	StallWindow time.Duration
	StallTo     io.Writer
	// MetricsPath, when non-empty, writes the metrics registry in
	// OpenMetrics text exposition format there on Close.
	MetricsPath string
}

// Setup builds the Obs for a CLI invocation and returns it with a close
// function that flushes every sink (trace JSON, CPU/heap profiles). When
// the config selects nothing, the returned Obs is nil — the disabled
// fast path — and close is a no-op. Callers must run close before
// os.Exit; the CLIs route all exits through it.
func Setup(cfg Config) (*Obs, func() error, error) {
	o := &Obs{}
	var closers []func() error

	if cfg.TracePath != "" {
		o.Tracer = NewTracer()
		o.Metrics = NewRegistry()
		path := cfg.TracePath
		closers = append(closers, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("obs: trace: %w", err)
			}
			werr := o.Tracer.WriteJSON(f, o.Metrics)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			return werr
		})
	}
	if cfg.Verbose {
		w := cfg.LogTo
		if w == nil {
			w = os.Stderr
		}
		o.Log = NewLogger(w)
		if o.Metrics == nil {
			o.Metrics = NewRegistry()
		}
	}
	if cfg.Progress || cfg.StallWindow > 0 {
		o.Progress = NewProgressRing(256, cfg.ProgressEvery)
		if o.Metrics == nil {
			o.Metrics = NewRegistry()
		}
	}
	if cfg.Progress {
		w := cfg.ProgressTo
		if w == nil {
			w = os.Stderr
		}
		stop := StartStatusLine(w, o.Progress, 500*time.Millisecond)
		closers = append(closers, func() error { stop(); return nil })
	}
	if cfg.StallWindow > 0 {
		w := cfg.StallTo
		if w == nil {
			w = os.Stderr
		}
		wd := NewWatchdog(o.Progress, cfg.StallWindow, w, o.Log, o.Metrics)
		stop := wd.Start()
		closers = append(closers, func() error { stop(); return nil })
	}
	if cfg.MetricsPath != "" {
		if o.Metrics == nil {
			o.Metrics = NewRegistry()
		}
		reg, path := o.Metrics, cfg.MetricsPath
		closers = append(closers, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("obs: metrics: %w", err)
			}
			werr := reg.WriteOpenMetrics(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			return werr
		})
	}
	if cfg.CPUProfilePath != "" {
		f, err := os.Create(cfg.CPUProfilePath)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		closers = append(closers, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if cfg.MemProfilePath != "" {
		path := cfg.MemProfilePath
		closers = append(closers, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			runtime.GC() // settle allocations so the profile reflects live heap
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			return werr
		})
	}

	closeAll := func() error {
		var first error
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if o.Tracer == nil && o.Metrics == nil && o.Log == nil {
		return nil, closeAll, nil
	}
	return o, closeAll, nil
}
