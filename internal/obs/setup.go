package obs

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config selects the sinks a CLI attaches — the -trace, -pprof,
// -memprofile and -v flags map onto it one-to-one.
type Config struct {
	// TracePath, when non-empty, collects spans and writes Chrome
	// trace-event JSON there on Close.
	TracePath string
	// CPUProfilePath, when non-empty, runs a CPU profile for the whole
	// process lifetime (written on Close).
	CPUProfilePath string
	// MemProfilePath, when non-empty, writes a heap profile on Close.
	MemProfilePath string
	// Verbose attaches a JSONL logger to LogTo (default os.Stderr).
	Verbose bool
	LogTo   io.Writer
}

// Setup builds the Obs for a CLI invocation and returns it with a close
// function that flushes every sink (trace JSON, CPU/heap profiles). When
// the config selects nothing, the returned Obs is nil — the disabled
// fast path — and close is a no-op. Callers must run close before
// os.Exit; the CLIs route all exits through it.
func Setup(cfg Config) (*Obs, func() error, error) {
	o := &Obs{}
	var closers []func() error

	if cfg.TracePath != "" {
		o.Tracer = NewTracer()
		o.Metrics = NewRegistry()
		path := cfg.TracePath
		closers = append(closers, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("obs: trace: %w", err)
			}
			werr := o.Tracer.WriteJSON(f, o.Metrics)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			return werr
		})
	}
	if cfg.Verbose {
		w := cfg.LogTo
		if w == nil {
			w = os.Stderr
		}
		o.Log = NewLogger(w)
		if o.Metrics == nil {
			o.Metrics = NewRegistry()
		}
	}
	if cfg.CPUProfilePath != "" {
		f, err := os.Create(cfg.CPUProfilePath)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		closers = append(closers, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if cfg.MemProfilePath != "" {
		path := cfg.MemProfilePath
		closers = append(closers, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			runtime.GC() // settle allocations so the profile reflects live heap
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			return werr
		})
	}

	closeAll := func() error {
		var first error
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if o.Tracer == nil && o.Metrics == nil && o.Log == nil {
		return nil, closeAll, nil
	}
	return o, closeAll, nil
}
