package obs

import "sync/atomic"

// Canonical histogram names — the flight recorder's distributions, all
// log2-bucketed with BucketLog2 (coverage.go). Per-check instruments are
// observed once per assertion check by the verification driver; the
// learnt-clause size distribution is accumulated inside the SAT core as
// plain per-solver buckets and folded here at check granularity, keeping
// atomics out of the inner loops.
const (
	// HistCheckWallUS is per-check wall time in microseconds.
	HistCheckWallUS = "verify.check_wall_us"
	// HistCheckConflicts is per-check SAT conflicts.
	HistCheckConflicts = "sat.check_conflicts"
	// HistLearntSize is the learnt-clause length distribution.
	HistLearntSize = "sat.learnt_clause_size"
	// HistSliceDropPct is the per-assertion percentage of VC conjuncts
	// dropped by cone-of-influence slicing (0..100, only under -slice).
	HistSliceDropPct = "verify.slice_drop_pct"
	// HistRaceWasteUS is, per raced check, the CPU microseconds spent by
	// portfolio racers that were cancelled after a rival's verdict — the
	// price paid for the wall-clock win (only under -portfolio > 1).
	HistRaceWasteUS = "verify.race_waste_us"
	// HistDeltaRecheck is, per applied table delta, the number of
	// assertions the session engine actually re-solved (the rest were
	// replayed from the session cache; only under -churn).
	HistDeltaRecheck = "verify.delta_recheck_per_delta"
	// HistServeApplyWallUS is, per delta accepted by the aquila-serve
	// daemon, the wall microseconds the session spent re-verifying it —
	// the daemon's per-update SLO latency.
	HistServeApplyWallUS = "serve.apply_wall_us"
	// HistServeQueueWaitUS is, per accepted delta, the microseconds the
	// request waited in its session's serialized apply queue before the
	// session picked it up — queueing delay, separated from solve time.
	HistServeQueueWaitUS = "serve.queue_wait_us"
)

// NumHistBuckets is the fixed bucket count of every Histogram. Bucket i
// holds observations v with BucketLog2(v) == i, i.e. bucket 0 is v <= 0
// and bucket i >= 1 covers [2^(i-1), 2^i - 1]; values past the last
// boundary clamp into the final bucket.
const NumHistBuckets = 32

// HistBucketBound returns the inclusive upper bound of bucket i
// (2^i - 1), with bucket 0 bounded at 0. The final bucket is unbounded
// (+Inf in the OpenMetrics exposition).
func HistBucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

// Histogram is a log2-bucketed atomic histogram. The zero value is
// usable; a nil *Histogram ignores observations, so
// `registry.Histogram(x).Observe(v)` stays a nil-check when the registry
// is absent. Like Counter, it is safe for concurrent writers — parallel
// verify workers observe per-check samples from their own goroutines.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumHistBuckets]atomic.Int64
}

// Observe records one sample. Safe on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := BucketLog2(v)
	if b >= NumHistBuckets {
		b = NumHistBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// AddBucket folds n pre-bucketed samples summing to sum into bucket b —
// how the SAT core's plain per-solver learnt-size buckets merge in at
// check granularity. Safe on nil; out-of-range buckets clamp.
func (h *Histogram) AddBucket(b int, n, sum int64) {
	if h == nil || n <= 0 {
		return
	}
	if b < 0 {
		b = 0
	}
	if b >= NumHistBuckets {
		b = NumHistBuckets - 1
	}
	h.buckets[b].Add(n)
	h.count.Add(n)
	h.sum.Add(sum)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the count in bucket i (0 on nil or out of range).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= NumHistBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// HistogramSnapshot is a plain-data copy of a Histogram, safe to embed
// in shallow-copied report structs (no atomics, no locks). Buckets is
// trimmed to the highest non-empty bucket.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []int64
}

// Snapshot returns a plain-data copy (zero value on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	top := -1
	var raw [NumHistBuckets]int64
	for i := range raw {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			top = i
		}
	}
	if top >= 0 {
		s.Buckets = append([]int64(nil), raw[:top+1]...)
	}
	return s
}

// Merge folds a snapshot into h (approximating the per-bucket sums by
// attributing the whole sum to the call). Safe on nil.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	for i, n := range s.Buckets {
		if n != 0 {
			b := i
			if b >= NumHistBuckets {
				b = NumHistBuckets - 1
			}
			h.buckets[b].Add(n)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
}
