package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// ProgressSample is one solver heartbeat: a snapshot of a check in
// flight, published every ring.Every() conflicts by the SAT core (via
// the verification driver's adapter) and once more with Done set when
// the check's verdict lands.
type ProgressSample struct {
	// Seq is the sample's global publish index (0-based).
	Seq int64
	// Label names the check (assertion label, or a shard label in
	// incremental mode). Worker is the publishing worker's trace tid.
	Label  string
	Worker int
	// WhenUS is microseconds since the ring was created.
	WhenUS int64
	// Solver trajectory at sample time. Conflicts etc. are cumulative
	// for the publishing solver instance, not the whole run.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	TrailDepth   int
	LearntDB     int
	ArenaBytes   int64
	// Done marks the check's final sample (published with the verdict's
	// per-check stats). The watchdog treats a Done tail as idle.
	Done bool
}

// ProgressRing is a lock-free single-producer-per-sample, multi-reader
// ring of the most recent heartbeat samples. Writers claim a slot index
// with one atomic add and store an immutable *ProgressSample; readers
// load pointers and never block writers. A nil ring ignores publishes,
// so the solver-side hook stays a nil check when progress is off.
type ProgressRing struct {
	every int64
	start time.Time
	seq   atomic.Int64
	slots []atomic.Pointer[ProgressSample]
}

// NewProgressRing returns a ring holding the last cap samples, with a
// heartbeat period of every conflicts (defaults: cap 256, every 4096).
func NewProgressRing(cap int, every int64) *ProgressRing {
	if cap <= 0 {
		cap = 256
	}
	if every <= 0 {
		every = 4096
	}
	return &ProgressRing{
		every: every,
		start: time.Now(),
		slots: make([]atomic.Pointer[ProgressSample], cap),
	}
}

// Every returns the heartbeat period in conflicts (0 on nil, meaning
// disabled).
func (r *ProgressRing) Every() int64 {
	if r == nil {
		return 0
	}
	return r.every
}

// Publish stores a sample, stamping Seq and WhenUS. Safe on nil.
func (r *ProgressRing) Publish(s ProgressSample) {
	if r == nil {
		return
	}
	s.WhenUS = time.Since(r.start).Microseconds()
	n := r.seq.Add(1) - 1
	s.Seq = n
	r.slots[int(n%int64(len(r.slots)))].Store(&s)
}

// Seq returns the number of samples published so far (0 on nil).
func (r *ProgressRing) Seq() int64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Latest returns the most recent sample, if any. Safe on nil.
func (r *ProgressRing) Latest() (ProgressSample, bool) {
	if r == nil {
		return ProgressSample{}, false
	}
	n := r.seq.Load()
	if n == 0 {
		return ProgressSample{}, false
	}
	p := r.slots[int((n-1)%int64(len(r.slots)))].Load()
	if p == nil {
		// The claiming writer has not stored yet; fall back to any
		// published neighbour rather than blocking.
		for i := n - 2; i >= 0 && i > n-2-int64(len(r.slots)); i-- {
			if p = r.slots[int(i%int64(len(r.slots)))].Load(); p != nil {
				break
			}
		}
		if p == nil {
			return ProgressSample{}, false
		}
	}
	return *p, true
}

// Snapshot returns the retained samples in publish order. Safe on nil.
func (r *ProgressRing) Snapshot() []ProgressSample {
	if r == nil {
		return nil
	}
	n := r.seq.Load()
	lo := n - int64(len(r.slots))
	if lo < 0 {
		lo = 0
	}
	out := make([]ProgressSample, 0, n-lo)
	for i := lo; i < n; i++ {
		if p := r.slots[int(i%int64(len(r.slots)))].Load(); p != nil && p.Seq >= lo {
			out = append(out, *p)
		}
	}
	return out
}

// statusLine renders a heartbeat for the -progress stderr line.
func statusLine(cur ProgressSample, prev ProgressSample, havePrev bool) string {
	rate := ""
	if havePrev && cur.Label == prev.Label && cur.WhenUS > prev.WhenUS &&
		cur.Conflicts > prev.Conflicts {
		cps := float64(cur.Conflicts-prev.Conflicts) /
			(float64(cur.WhenUS-prev.WhenUS) / 1e6)
		rate = fmt.Sprintf(" (%.0f/s)", cps)
	}
	state := "solving"
	if cur.Done {
		state = "done"
	}
	return fmt.Sprintf(
		"aquila: %s %s [w%d] conflicts=%d%s restarts=%d trail=%d learnt=%d arena=%dKB",
		state, cur.Label, cur.Worker, cur.Conflicts, rate,
		cur.Restarts, cur.TrailDepth, cur.LearntDB, cur.ArenaBytes/1024)
}

// StartStatusLine spawns a goroutine printing one status line to w per
// interval whenever new heartbeats arrived, and returns its stop
// function. Used by the CLIs' -progress flag.
func StartStatusLine(w io.Writer, ring *ProgressRing, interval time.Duration) (stop func()) {
	if w == nil || ring == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		var prev ProgressSample
		havePrev := false
		lastSeq := int64(0)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if n := ring.Seq(); n > lastSeq {
					lastSeq = n
					if cur, ok := ring.Latest(); ok {
						fmt.Fprintln(w, statusLine(cur, prev, havePrev))
						prev, havePrev = cur, true
					}
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
