package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Logger emits structured JSONL events (one JSON object per line):
// phase begin/end, per-assertion verdicts, budget exhaustion. The CLIs
// attach it to stderr under -v, replacing the previously silent runs.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

// NewLogger returns a logger writing JSONL to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, start: time.Now()}
}

// Event writes {"ts_ms":…, "event":…, …fields} as one line. Field keys are
// marshalled in sorted order (encoding/json map behaviour), so output is
// stable for tooling. Safe on nil; marshal or write errors are dropped —
// logging must never fail a verification run.
func (l *Logger) Event(event string, fields map[string]any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["event"] = event
	l.mu.Lock()
	defer l.mu.Unlock()
	rec["ts_ms"] = float64(time.Since(l.start).Microseconds()) / 1000
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.w.Write(append(data, '\n'))
}
