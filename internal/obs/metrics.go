package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Canonical counter and gauge names — the glossary DESIGN.md documents.
// Counters accumulate across every solver instance of a run; gauges hold
// the latest value.
const (
	// SAT core (per-solve work, summed over all fresh solver instances).
	CtrSATConflicts     = "sat.conflicts"
	CtrSATDecisions     = "sat.decisions"
	CtrSATPropagations  = "sat.propagations"
	CtrSATRestarts      = "sat.restarts"
	CtrSATLearntClause  = "sat.learnt_clauses"
	CtrSATLearntLits    = "sat.learnt_literals"
	CtrSATLearntDeleted = "sat.learnt_deleted"

	// SAT preprocessing (SatELite-style CNF simplification).
	CtrSATElimVars     = "sat.elim_vars"
	CtrSATSubsumed     = "sat.subsumed_clauses"
	CtrSATStrengthened = "sat.strengthened_clauses"

	// SMT layer (bit-blasting and term interning).
	CtrSMTTseitinClauses   = "smt.tseitin_clauses"
	CtrSMTBlastHits        = "smt.blast_cache_hits"
	CtrSMTBlastMisses      = "smt.blast_cache_misses"
	CtrSMTInternHits       = "smt.intern_hits"
	CtrSMTInternMisses     = "smt.intern_misses"
	CtrSMTFrozenLocks      = "smt.frozen_ctx_locks"
	CtrSMTSimplifyRewrites = "smt.simplify_rewrites"
	CtrSMTTermsReleased    = "smt.terms_released"

	// GCL structure: one counter per statement kind reachable in the
	// compiled verification program, named CtrGCLStmtPrefix + kind. The
	// fuzzer's coverage signature reads these to detect encoder shapes a
	// mutant newly exercised.
	CtrGCLStmtPrefix = "gcl.stmt."

	// Verification driver.
	CtrVerifyChecks       = "verify.checks"
	CtrVerifySat          = "verify.checks_sat"
	CtrVerifyUnsat        = "verify.checks_unsat"
	CtrVerifyUnknown      = "verify.checks_unknown"
	CtrVerifySliceDropped = "verify.slice_conjuncts_dropped"
	// Work-stealing scheduler and portfolio racing (find-all engines).
	// Steals counts checks executed by a worker other than their static
	// owner; races won/lost count racer verdicts per raced check (one win,
	// K-1 losses); cancelled CPU totals the microseconds losers burned.
	// Session (delta re-verification) engine: verdicts replayed from the
	// session cache vs assertions re-solved after a table delta.
	CtrVerifyDeltaReuse   = "verify.delta_reuse_hits"
	CtrVerifyDeltaRecheck = "verify.delta_recheck"
	CtrVerifySteals       = "verify.steals"
	CtrVerifyRacesWon     = "verify.races_won"
	CtrVerifyRacesLost    = "verify.races_lost"
	CtrVerifyCancelledUS  = "verify.race_cancelled_us"
	GaugeTermNodes        = "smt.term_nodes"
	GaugeVerifyWorkers    = "verify.workers"
	GaugeVerifyShards     = "verify.incremental_shards"
	GaugeVerifyPortfolio  = "verify.portfolio"

	// Continuous verification daemon (internal/serve): applied deltas,
	// requests rejected before reaching a session (parse/validation/size
	// failures), sessions rebuilt from the journal on restart, and the
	// current live-session count.
	CtrServeDeltas     = "serve.deltas_applied"
	CtrServeRejected   = "serve.requests_rejected"
	CtrServeRecovered  = "serve.sessions_recovered"
	GaugeServeSessions = "serve.sessions"

	// Process memory, published by the scale campaign (internal/bench):
	// the sampled peak live heap of the most recent point and the heap
	// allocations accumulated across every point.
	GaugeBenchPeakHeap = "mem.peak_heap_bytes"
	CtrBenchAllocs     = "mem.heap_allocs"
)

// Counter is a monotone atomic counter. The zero value is usable; a nil
// *Counter ignores Add, so `registry.Counter(x).Add(n)` stays a nil-check
// when the registry is absent.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Safe on nil and safe for concurrent use —
// workers fold solver stats in from their own goroutines, which is what
// puts this layer under the -race CI job.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value-wins gauge.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named counter/gauge store. Creation is mutex-guarded;
// updates go straight to the atomics, so concurrent writers never contend
// on the map once their instruments exist.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter. A nil registry
// returns a nil counter, whose Add is a no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil-registry-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram;
// nil-registry-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = map[string]*Histogram{}
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Histograms returns plain-data snapshots of every registered histogram
// keyed by name. Histograms are deliberately not part of Snapshot():
// the fuzzer's coverage signatures hash Snapshot maps, and folding
// distribution buckets in would perturb corpus scheduling.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.histograms) == 0 {
		return nil
	}
	out := make(map[string]HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	return out
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every counter and gauge's current value keyed by
// name (histograms are exposed via Histograms).
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Names returns the registered instrument names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.gauges {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
