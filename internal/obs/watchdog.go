package obs

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"
)

// CtrWatchdogStalls counts diagnostic dumps the watchdog emitted. It
// lives here (not metrics.go) because it exists only when a watchdog is
// attached — fuzz coverage signatures never see it.
const CtrWatchdogStalls = "verify.watchdog_stalls"

// Watchdog flags a check that keeps heartbeating without finishing for
// longer than Window and emits a one-shot diagnostic dump (check label,
// last solver snapshot, all goroutine stacks) to Out — the flight
// recorder's answer to "which assertion is my run wedged on", captured
// before a conflict budget or the operator kills it. It observes the
// heartbeat ring only; it never touches the solvers, so a firing
// watchdog cannot alter a verdict.
type Watchdog struct {
	ring    *ProgressRing
	window  time.Duration
	out     io.Writer
	log     *Logger
	metrics *Registry

	// Poll-goroutine state (single caller; only dumps is read across
	// goroutines).
	curLabel string
	curSince time.Time
	haveCur  bool
	flagged  map[string]bool
	dumps    atomic.Int64
}

// NewWatchdog builds a watchdog over ring with the given stall window.
// out receives diagnostic dumps (required for them to be visible); log
// and metrics are optional sinks for a structured stall event and the
// verify.watchdog_stalls counter.
func NewWatchdog(ring *ProgressRing, window time.Duration, out io.Writer, log *Logger, metrics *Registry) *Watchdog {
	return &Watchdog{
		ring: ring, window: window, out: out, log: log, metrics: metrics,
		flagged: map[string]bool{},
	}
}

// Dumps returns how many diagnostic dumps have fired. Safe on nil.
func (w *Watchdog) Dumps() int64 {
	if w == nil {
		return 0
	}
	return w.dumps.Load()
}

// Poll scans the ring once at time now and reports whether a dump
// fired. Exported so tests drive the stall logic deterministically;
// Start runs it on a ticker. Safe on nil but not for concurrent
// callers.
func (w *Watchdog) Poll(now time.Time) bool {
	if w == nil || w.ring == nil || w.window <= 0 {
		return false
	}
	latest, ok := w.ring.Latest()
	if !ok || latest.Done {
		w.haveCur = false
		return false
	}
	if !w.haveCur || latest.Label != w.curLabel {
		w.curLabel, w.curSince, w.haveCur = latest.Label, now, true
		return false
	}
	if now.Sub(w.curSince) < w.window || w.flagged[latest.Label] {
		return false
	}
	w.flagged[latest.Label] = true
	w.dumps.Add(1)
	w.dump(latest, now.Sub(w.curSince))
	return true
}

func (w *Watchdog) dump(s ProgressSample, running time.Duration) {
	w.metrics.Counter(CtrWatchdogStalls).Add(1)
	w.log.Event("watchdog_stall", map[string]any{
		"assertion": s.Label, "worker": s.Worker, "running_ms": running.Milliseconds(),
		"conflicts": s.Conflicts, "restarts": s.Restarts,
		"trail_depth": s.TrailDepth, "learnt_db": s.LearntDB,
		"arena_bytes": s.ArenaBytes,
	})
	if w.out == nil {
		return
	}
	fmt.Fprintf(w.out,
		"aquila watchdog: check %q stalled (running %s past window %s)\n"+
			"  solver snapshot: worker=%d conflicts=%d decisions=%d propagations=%d "+
			"restarts=%d trail=%d learnt=%d arena=%dB\n",
		s.Label, running.Round(time.Millisecond), w.window,
		s.Worker, s.Conflicts, s.Decisions, s.Propagations,
		s.Restarts, s.TrailDepth, s.LearntDB, s.ArenaBytes)
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(w.out, "goroutine dump:\n%s\n", buf[:n])
}

// Start spawns the polling goroutine (period window/4, clamped to
// [1ms, 1s]) and returns its stop function. Safe on nil.
func (w *Watchdog) Start() (stop func()) {
	if w == nil || w.ring == nil || w.window <= 0 {
		return func() {}
	}
	period := w.window / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				w.Poll(now)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
