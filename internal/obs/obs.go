// Package obs is Aquila's observability layer: hierarchical phase tracing
// (exportable as Chrome trace-event JSON), a counter/gauge metrics
// registry fed by the SAT and SMT layers, and structured JSONL logging.
//
// The paper's headline claim is practical usability at production scale,
// and its evaluation (Table 3, Figure 11, §6) attributes verification cost
// per phase and per assertion; this package makes the same attribution
// available at runtime. Everything is stdlib-only and designed so that an
// unattached sink costs a nil-check and nothing else: every hook is a
// method on a possibly-nil *Obs (or *Tracer / *Registry / *Logger), and
// all of them return immediately on nil receivers. The hot solver loops in
// internal/sat and internal/smt are not hooked at all — they keep plain
// per-instance counters that the verification driver folds into the
// registry at check granularity.
package obs

import (
	"sync/atomic"
)

// Obs bundles the three sinks a run can attach. A nil *Obs (the default)
// disables all instrumentation; individual fields may also be nil.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry
	Log     *Logger
	// Progress, when non-nil, receives solver heartbeat samples — the
	// verification driver installs a per-check publisher on every SAT
	// solver it creates. The -progress status line and the stall
	// watchdog both read from it.
	Progress *ProgressRing
}

// noop is the cached closure Phase returns when nothing is attached, so
// disabled spans allocate nothing.
var noop = func() {}

// Phase opens a span named name on thread tid in the tracer and emits a
// phase_begin log event; the returned closure closes both. Safe on nil.
func (o *Obs) Phase(tid int, name string) func() {
	if o == nil || (o.Tracer == nil && o.Log == nil) {
		return noop
	}
	o.Tracer.Begin(tid, name)
	o.Log.Event("phase_begin", map[string]any{"phase": name, "tid": tid})
	return func() {
		o.Tracer.End(tid, name)
		o.Log.Event("phase_end", map[string]any{"phase": name, "tid": tid})
	}
}

// Span opens a span in the tracer only (no log event) — used for
// high-frequency spans like per-assertion solves, which get their own
// richer log event with the verdict. Safe on nil.
func (o *Obs) Span(tid int, name string) func() {
	if o == nil || o.Tracer == nil {
		return noop
	}
	o.Tracer.Begin(tid, name)
	return func() { o.Tracer.End(tid, name) }
}

// Count adds delta to the named counter. Safe on nil.
func (o *Obs) Count(name string, delta int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(name).Add(delta)
}

// SetGauge sets the named gauge. Safe on nil.
func (o *Obs) SetGauge(name string, v int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Gauge(name).Set(v)
}

// Event emits a structured log event. Safe on nil.
func (o *Obs) Event(event string, fields map[string]any) {
	if o == nil {
		return
	}
	o.Log.Event(event, fields)
}

// defaultObs is the process-wide fallback sink, set by the CLIs so that
// code paths without an explicit Options.Obs (e.g. the bench harness
// driving verify.Run internally) still trace. It is nil unless a CLI
// attached sinks, so library use pays only an atomic load + nil check.
var defaultObs atomic.Pointer[Obs]

// SetDefault installs the process-wide default sink (nil to clear).
func SetDefault(o *Obs) { defaultObs.Store(o) }

// Default returns the process-wide default sink, or nil.
func Default() *Obs { return defaultObs.Load() }
