package obs

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram // zero value usable, like Counter
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Errorf("count = %d, want 8", got)
	}
	if got := h.Sum(); got != 1025 {
		t.Errorf("sum = %d, want 1025", got)
	}
	// BucketLog2: 0 -> 0, 1 -> 1, {2,3} -> 2, {4,7} -> 3, 8 -> 4, 1000 -> 10.
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1}
	for i := 0; i < NumHistBuckets; i++ {
		if got := h.Bucket(i); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}

	// Values past the last boundary clamp into the final bucket.
	h.Observe(1 << 62)
	if got := h.Bucket(NumHistBuckets - 1); got != 1 {
		t.Errorf("clamped bucket = %d, want 1", got)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	for i, want := range []int64{0, 1, 3, 7, 15, 31} {
		if got := HistBucketBound(i); got != want {
			t.Errorf("HistBucketBound(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(6)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 7 {
		t.Errorf("snapshot count/sum = %d/%d, want 2/7", s.Count, s.Sum)
	}
	// Buckets trimmed to the highest non-empty: 6 lands in bucket 3.
	if len(s.Buckets) != 4 {
		t.Errorf("snapshot buckets = %v, want length 4", s.Buckets)
	}

	var dst Histogram
	dst.Merge(s)
	dst.Merge(HistogramSnapshot{}) // empty merge is a no-op
	if dst.Count() != 2 || dst.Sum() != 7 || dst.Bucket(3) != 1 {
		t.Errorf("merged = count %d sum %d b3 %d, want 2/7/1", dst.Count(), dst.Sum(), dst.Bucket(3))
	}

	var pre Histogram
	pre.AddBucket(5, 3, 42)
	pre.AddBucket(99, 1, 1) // out-of-range clamps
	pre.AddBucket(2, 0, 9)  // n <= 0 ignored
	if pre.Count() != 4 || pre.Sum() != 43 || pre.Bucket(5) != 3 || pre.Bucket(NumHistBuckets-1) != 1 {
		t.Errorf("AddBucket: count %d sum %d b5 %d last %d",
			pre.Count(), pre.Sum(), pre.Bucket(5), pre.Bucket(NumHistBuckets-1))
	}
}

// TestFlightNilSafety extends the TestNilSafety contract to the flight
// recorder: every new hook must be callable through nil receivers.
func TestFlightNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.AddBucket(1, 2, 3)
	if h.Count() != 0 || h.Sum() != 0 || h.Bucket(0) != 0 {
		t.Error("nil histogram reads != 0")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Error("nil histogram snapshot not zero")
	}
	h.Merge(HistogramSnapshot{Count: 1, Sum: 1, Buckets: []int64{1}})

	var r *Registry
	r.Histogram("x").Observe(1)
	if r.Histograms() != nil || r.HistogramNames() != nil {
		t.Error("nil registry histograms != nil")
	}
	if err := r.WriteOpenMetrics(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry WriteOpenMetrics: %v", err)
	}

	var ring *ProgressRing
	ring.Publish(ProgressSample{})
	if ring.Seq() != 0 || ring.Every() != 0 {
		t.Error("nil ring seq/every != 0")
	}
	if _, ok := ring.Latest(); ok {
		t.Error("nil ring Latest ok")
	}
	if ring.Snapshot() != nil {
		t.Error("nil ring snapshot != nil")
	}
	stop := StartStatusLine(nil, nil, 0)
	stop()

	var w *Watchdog
	if w.Poll(time.Now()) || w.Dumps() != 0 {
		t.Error("nil watchdog fired")
	}
	w.Start()()

	// A zero-value registry (no NewRegistry) must still lazily create
	// histograms, like a zero Counter map would not — the map is nil.
	zero := &Registry{}
	zero.Histogram("h").Observe(1)
	if zero.Histogram("h").Count() != 1 {
		t.Error("zero-value registry histogram lost the observation")
	}
}

func TestProgressRing(t *testing.T) {
	r := NewProgressRing(4, 16)
	if r.Every() != 16 {
		t.Errorf("every = %d, want 16", r.Every())
	}
	if _, ok := r.Latest(); ok {
		t.Error("empty ring has a latest sample")
	}
	for i := 0; i < 6; i++ {
		r.Publish(ProgressSample{Label: "a", Conflicts: int64(i)})
	}
	if r.Seq() != 6 {
		t.Errorf("seq = %d, want 6", r.Seq())
	}
	cur, ok := r.Latest()
	if !ok || cur.Conflicts != 5 || cur.Seq != 5 {
		t.Errorf("latest = %+v, ok %v", cur, ok)
	}
	// Capacity 4, 6 published: the snapshot retains the last 4 in order.
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length = %d, want 4", len(snap))
	}
	for i, s := range snap {
		if s.Conflicts != int64(i+2) {
			t.Errorf("snapshot[%d].Conflicts = %d, want %d", i, s.Conflicts, i+2)
		}
	}

	// Defaults kick in for nonsense arguments.
	d := NewProgressRing(0, 0)
	if d.Every() != 4096 || len(d.slots) != 256 {
		t.Errorf("defaults: every %d cap %d", d.Every(), len(d.slots))
	}
}

func TestStatusLine(t *testing.T) {
	prev := ProgressSample{Label: "a", WhenUS: 0, Conflicts: 0}
	cur := ProgressSample{Label: "a", Worker: 2, WhenUS: 1_000_000, Conflicts: 500,
		TrailDepth: 9, LearntDB: 3, ArenaBytes: 4096}
	line := statusLine(cur, prev, true)
	for _, want := range []string{"solving a", "[w2]", "conflicts=500", "(500/s)", "trail=9", "learnt=3", "arena=4KB"} {
		if !strings.Contains(line, want) {
			t.Errorf("status line missing %q: %s", want, line)
		}
	}
	done := cur
	done.Done = true
	if line := statusLine(done, prev, true); !strings.Contains(line, "done a") {
		t.Errorf("done sample not rendered as done: %s", line)
	}
}

// lockedBuffer synchronizes test reads against the status goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestStartStatusLine(t *testing.T) {
	var buf lockedBuffer
	ring := NewProgressRing(8, 1)
	stop := StartStatusLine(&buf, ring, time.Millisecond)
	ring.Publish(ProgressSample{Label: "check1", Conflicts: 7})
	deadline := time.Now().Add(2 * time.Second)
	for buf.String() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	if !strings.Contains(buf.String(), "check1") {
		t.Errorf("status goroutine never printed the heartbeat: %q", buf.String())
	}
}

// TestWatchdogPoll drives the stall detector deterministically: a check
// that keeps heartbeating past the window fires exactly one dump, a Done
// tail resets the timer, and a fresh label restarts it.
func TestWatchdogPoll(t *testing.T) {
	ring := NewProgressRing(8, 1)
	var out bytes.Buffer
	reg := NewRegistry()
	wd := NewWatchdog(ring, 10*time.Millisecond, &out, nil, reg)

	t0 := time.Now()
	if wd.Poll(t0) {
		t.Fatal("empty ring fired")
	}
	ring.Publish(ProgressSample{Label: "slow", Worker: 1, Conflicts: 100})
	if wd.Poll(t0) {
		t.Fatal("first sighting fired (should only arm the timer)")
	}
	ring.Publish(ProgressSample{Label: "slow", Worker: 1, Conflicts: 200})
	if wd.Poll(t0.Add(5 * time.Millisecond)) {
		t.Fatal("fired inside the window")
	}
	if !wd.Poll(t0.Add(11 * time.Millisecond)) {
		t.Fatal("did not fire past the window")
	}
	if wd.Poll(t0.Add(20 * time.Millisecond)) {
		t.Fatal("fired twice for the same label")
	}
	if wd.Dumps() != 1 {
		t.Errorf("dumps = %d, want 1", wd.Dumps())
	}
	if got := reg.Counter(CtrWatchdogStalls).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", CtrWatchdogStalls, got)
	}
	dump := out.String()
	for _, want := range []string{`"slow" stalled`, "conflicts=200", "goroutine dump:"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}

	// Done marks idle; the next non-done label starts a fresh window.
	ring.Publish(ProgressSample{Label: "slow", Done: true})
	if wd.Poll(t0.Add(30 * time.Millisecond)) {
		t.Fatal("fired on a Done tail")
	}
	ring.Publish(ProgressSample{Label: "other", Worker: 2})
	if wd.Poll(t0.Add(40 * time.Millisecond)) {
		t.Fatal("new label fired before its own window elapsed")
	}
	if !wd.Poll(t0.Add(51 * time.Millisecond)) {
		t.Fatal("new label did not fire after its own window")
	}
	if wd.Dumps() != 2 {
		t.Errorf("dumps = %d, want 2", wd.Dumps())
	}
}

func TestAnalyze(t *testing.T) {
	// Synthetic 2-worker trace: solve phase 100..1100 on tid 0, worker 1
	// busy 600us over two checks, worker 2 busy 900us over one.
	ev := func(ph, name string, tid int, ts int64) Event {
		return Event{Name: name, Ph: ph, TS: ts, TID: tid}
	}
	events := []Event{
		{Name: "thread_name", Ph: "M", TID: 1, Args: map[string]any{"name": "worker-1"}},
		ev("B", "solve", 0, 100),
		ev("B", "solve:a", 1, 100),
		ev("B", "solve:c", 2, 150),
		ev("E", "solve:a", 1, 300),
		ev("B", "solve:b", 1, 400),
		ev("E", "solve:b", 1, 800),
		ev("E", "solve:c", 2, 1050),
		ev("E", "solve", 0, 1100),
	}
	u, err := Analyze(events)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if u.SolveWallUS != 1000 || u.Checks != 3 {
		t.Errorf("wall %d checks %d, want 1000/3", u.SolveWallUS, u.Checks)
	}
	if len(u.Workers) != 2 {
		t.Fatalf("workers = %+v, want 2 rows", u.Workers)
	}
	w1, w2 := u.Workers[0], u.Workers[1]
	if w1.TID != 1 || w1.BusyUS != 600 || w1.Checks != 2 || w1.Name != "worker-1" {
		t.Errorf("worker 1 = %+v", w1)
	}
	if w2.TID != 2 || w2.BusyUS != 900 || w2.Checks != 1 {
		t.Errorf("worker 2 = %+v", w2)
	}
	if u.CriticalPathUS != 900 || u.CriticalPathLabel != "c" {
		t.Errorf("critical path %d (%s), want 900 (c)", u.CriticalPathUS, u.CriticalPathLabel)
	}
	// mean busy = (600+900)/2 / 1000 = 0.75; straggler = 900/750 = 1.2.
	if u.MeanBusyFrac < 0.749 || u.MeanBusyFrac > 0.751 {
		t.Errorf("mean busy frac = %v, want 0.75", u.MeanBusyFrac)
	}
	if u.MinBusyFrac < 0.599 || u.MinBusyFrac > 0.601 {
		t.Errorf("min busy frac = %v, want 0.6", u.MinBusyFrac)
	}
	if u.StragglerIndex < 1.199 || u.StragglerIndex > 1.201 {
		t.Errorf("straggler index = %v, want 1.2", u.StragglerIndex)
	}

	if _, err := Analyze([]Event{ev("B", "encode", 0, 0), ev("E", "encode", 0, 5)}); err == nil {
		t.Error("Analyze accepted a trace with no check spans")
	}
}

func TestCompareUtilization(t *testing.T) {
	ref := &Utilization{MeanBusyFrac: 0.8}
	if err := CompareUtilization(ref, &Utilization{MeanBusyFrac: 0.7}); err != nil {
		t.Errorf("12%% drop rejected: %v", err)
	}
	if err := CompareUtilization(ref, &Utilization{MeanBusyFrac: 0.5}); err == nil {
		t.Error("37% drop accepted")
	}
	if err := CompareUtilization(nil, ref); err == nil {
		t.Error("nil reference accepted")
	}
	// A zero reference (e.g. a serial baseline) gates nothing.
	if err := CompareUtilization(&Utilization{}, &Utilization{}); err != nil {
		t.Errorf("zero reference rejected: %v", err)
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sat.conflicts").Add(42)
	r.Gauge("smt.term_nodes").Set(7)
	h := r.Histogram("verify.check_wall_us")
	h.Observe(0)
	h.Observe(2)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE aquila_sat_conflicts counter\naquila_sat_conflicts_total 42\n",
		"# TYPE aquila_smt_term_nodes gauge\naquila_smt_term_nodes 7\n",
		"# TYPE aquila_verify_check_wall_us histogram\n",
		`aquila_verify_check_wall_us_bucket{le="0"} 1`,
		`aquila_verify_check_wall_us_bucket{le="1"} 1`,
		`aquila_verify_check_wall_us_bucket{le="3"} 3`,
		`aquila_verify_check_wall_us_bucket{le="+Inf"} 3`,
		"aquila_verify_check_wall_us_sum 5\n",
		"aquila_verify_check_wall_us_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition does not end with # EOF:\n%s", out)
	}
	// Instruments are sorted by registry name: sat.* < smt.* < verify.*.
	if !(strings.Index(out, "aquila_sat_conflicts") < strings.Index(out, "aquila_smt_term_nodes") &&
		strings.Index(out, "aquila_smt_term_nodes") < strings.Index(out, "aquila_verify_check_wall_us")) {
		t.Errorf("exposition not sorted:\n%s", out)
	}
}

// TestSetupFlight: Setup wires the progress ring, watchdog, and
// OpenMetrics writer from the config, and the close function flushes the
// exposition file.
func TestSetupFlight(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/metrics.om"
	var stall bytes.Buffer
	o, closeAll, err := Setup(Config{
		Progress: true, ProgressTo: &bytes.Buffer{}, ProgressEvery: 32,
		StallWindow: time.Hour, StallTo: &stall,
		MetricsPath: path,
	})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if o == nil || o.Progress == nil || o.Metrics == nil {
		t.Fatal("Setup with Progress did not attach ring + registry")
	}
	if o.Progress.Every() != 32 {
		t.Errorf("ring every = %d, want 32", o.Progress.Every())
	}
	o.Metrics.Counter("sat.conflicts").Add(3)
	if err := closeAll(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
	if !strings.Contains(string(data), "aquila_sat_conflicts_total 3") ||
		!strings.HasSuffix(string(data), "# EOF\n") {
		t.Errorf("metrics exposition wrong:\n%s", data)
	}
}
