package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceSchema pins the Chrome trace-event contract: WriteJSON emits
// well-formed JSON whose events have monotone timestamps and whose B/E
// pairs match per (tid, name) with stack discipline.
func TestTraceSchema(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(0, "main")
	tr.Begin(0, "solve")
	tr.Begin(1, "solve:a1")
	tr.End(1, "solve:a1")
	tr.Begin(2, "solve:a2")
	tr.Begin(2, "inner")
	tr.End(2, "inner")
	tr.End(2, "solve:a2")
	tr.End(0, "solve")

	reg := NewRegistry()
	reg.Counter(CtrSATConflicts).Add(7)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, reg); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		OtherData       map[string]int64 `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", file.DisplayTimeUnit)
	}
	if got := file.OtherData[CtrSATConflicts]; got != 7 {
		t.Errorf("otherData[%s] = %d, want 7", CtrSATConflicts, got)
	}

	// Monotone timestamps across the whole stream.
	last := int64(-1)
	for i, e := range file.TraceEvents {
		if e.TS < last {
			t.Errorf("event %d (%s %s): ts %d < previous %d", i, e.Ph, e.Name, e.TS, last)
		}
		last = e.TS
	}

	// Matched B/E with stack discipline per tid.
	stacks := map[int][]string{}
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "B":
			stacks[e.TID] = append(stacks[e.TID], e.Name)
		case "E":
			st := stacks[e.TID]
			if len(st) == 0 {
				t.Fatalf("E %q on tid %d with no open span", e.Name, e.TID)
			}
			if top := st[len(st)-1]; top != e.Name {
				t.Fatalf("E %q on tid %d, but innermost open span is %q", e.Name, e.TID, top)
			}
			stacks[e.TID] = st[:len(st)-1]
		case "M":
			if e.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", e.Name)
			}
		default:
			t.Errorf("unexpected ph %q", e.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Errorf("tid %d: unclosed spans %v", tid, st)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Counter("a").Add(3)
	r.Gauge("g").Set(9)
	r.Gauge("g").Set(4)
	if got := r.Counter("a").Value(); got != 5 {
		t.Errorf("counter a = %d, want 5", got)
	}
	if got := r.Gauge("g").Value(); got != 4 {
		t.Errorf("gauge g = %d, want 4", got)
	}
	snap := r.Snapshot()
	if snap["a"] != 5 || snap["g"] != 4 {
		t.Errorf("snapshot = %v", snap)
	}
	if names := r.Names(); len(names) != 2 || names[0] != "a" || names[1] != "g" {
		t.Errorf("names = %v", names)
	}
}

func TestLoggerJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Event("phase_begin", map[string]any{"phase": "solve", "tid": 0})
	l.Event("assertion", map[string]any{"label": "a1", "status": "unsat"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	lastTS := -1.0
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v: %s", i, err, line)
		}
		if _, ok := rec["event"]; !ok {
			t.Errorf("line %d missing event key: %s", i, line)
		}
		ts, ok := rec["ts_ms"].(float64)
		if !ok || ts < lastTS {
			t.Errorf("line %d: ts_ms %v not monotone after %v", i, rec["ts_ms"], lastTS)
		}
		lastTS = ts
	}
}

// TestNilSafety: every hook must be callable through nil receivers — the
// disabled fast path the whole pipeline relies on.
func TestNilSafety(t *testing.T) {
	var o *Obs
	o.Phase(0, "p")()
	o.Span(1, "s")()
	o.Count("c", 1)
	o.SetGauge("g", 2)
	o.Event("e", nil)

	var tr *Tracer
	tr.Begin(0, "x")
	tr.End(0, "x")
	tr.NameThread(0, "x")
	if tr.Events() != nil {
		t.Error("nil tracer Events != nil")
	}

	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(1)
	if r.Snapshot() != nil || r.Names() != nil {
		t.Error("nil registry snapshot/names != nil")
	}
	var c *Counter
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	var g *Gauge
	g.Set(5)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}

	var l *Logger
	l.Event("e", map[string]any{"k": "v"})

	// An Obs with only some sinks attached must not touch the nil ones.
	partial := &Obs{Tracer: NewTracer()}
	partial.Phase(0, "p")()
	partial.Count("c", 1)
	partial.Event("e", nil)
}

// TestSetupTraceFile: Setup's close function writes the trace JSON.
func TestSetupTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	o, closeAll, err := Setup(Config{TracePath: path})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if o == nil || o.Tracer == nil || o.Metrics == nil {
		t.Fatal("Setup with TracePath returned incomplete Obs")
	}
	o.Phase(0, "phase")()
	if err := closeAll(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var file map[string]any
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if _, ok := file["traceEvents"]; !ok {
		t.Error("trace missing traceEvents")
	}
}

// TestSetupEmpty: a zero config selects nothing — nil Obs, no-op close.
func TestSetupEmpty(t *testing.T) {
	o, closeAll, err := Setup(Config{})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if o != nil {
		t.Errorf("empty Setup returned non-nil Obs")
	}
	if err := closeAll(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestDefaultObs(t *testing.T) {
	if Default() != nil {
		t.Fatal("default obs not nil at test start")
	}
	o := &Obs{Metrics: NewRegistry()}
	SetDefault(o)
	if Default() != o {
		t.Error("Default() != installed obs")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Error("Default() not cleared")
	}
}
