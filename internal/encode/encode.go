// Package encode compiles P4lite components into GCL — the core of
// Aquila's verification approach (§4 of the paper). It implements:
//
//   - Sequential encoding of parser state machines (§4.1): topological
//     sorting of the state DAG with ghost activation variables, producing
//     an O(n) straight-line program instead of the O(2^n) tree a naive
//     if-else expansion yields. Loops (e.g. TCP options) are folded into a
//     single bounded while via SCC contraction (Appendix B.1).
//   - Lookahead placeholders (Appendix B.2).
//   - ABV table encoding with a balanced ITE lookup tree (§4.2, Appendix
//     B.3), plus the linear-ABV and naive per-entry-if baselines used in
//     Figure 11b.
//   - Key-value packet encoding with an explicit header-order sequence
//     (§4.2), plus the monolithic bit-vector baseline.
//   - Feature encodings of §4.3/Appendix B.4: inter-pipeline packet
//     passing, bounded recirculation, hash havocing, register
//     scalarization.
//
// The package also exposes the variable-naming scheme shared with the LPI
// compiler and the verifier.
package encode

import (
	"fmt"

	"aquila/internal/gcl"
	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

// ParserMode selects the control-flow encoding for parser state machines.
type ParserMode int

// Parser encoding modes.
const (
	// ParserSequential is the paper's sequential encoding (§4.1).
	ParserSequential ParserMode = iota
	// ParserTree is the naive tree expansion baseline (p4v-style); it
	// explodes exponentially on DAG-shaped parsers.
	ParserTree
)

// TableMode selects the table encoding.
type TableMode int

// Table encoding modes.
const (
	// TableABVTree uses Action BitVectors with the balanced ITE lookup
	// tree (§4.2) — O(log n) lookup depth.
	TableABVTree TableMode = iota
	// TableABVLinear uses ABVs with one-by-one ITE chaining.
	TableABVLinear
	// TableNaive inlines each entry as an if-else branch with its action
	// body (memory explodes with entry count; Appendix B.3).
	TableNaive
)

// PacketMode selects the packet representation.
type PacketMode int

// Packet encoding modes.
const (
	// PacketKV models the packet as key-value header assignments plus a
	// header-order sequence (§4.2).
	PacketKV PacketMode = iota
	// PacketBitvector models the packet as one monolithic bit-vector with
	// a symbolic cursor (p4v/p4pktgen-style baseline).
	PacketBitvector
)

// Options configures the encoder; the zero value is the paper's
// configuration (sequential + ABV tree + KV packets).
type Options struct {
	Parser ParserMode
	Table  TableMode
	Packet PacketMode
	// LoopBound bounds parser-loop iterations (header stacks, TCP
	// options). Default 4.
	LoopBound int
	// TreeCap aborts the naive tree expansion after this many GCL
	// statements, modelling the OOM/timeout of the baselines in Table 3.
	// Default 1 << 20.
	TreeCap int
	// TrackModified lists "inst.field" names that need $mod ghost bits
	// (the LPI `modified()` predicate).
	TrackModified map[string]bool
	// TrackFired emits a $fired ghost per action inline site, used by bug
	// localization's causality filter (§5.2 step 2).
	TrackFired bool
	// RepairTables encodes every table with entries as
	// ite($rep.T, function-variable, entries) so the localizer can search
	// for entry replacements with MaxSAT over ¬$rep.T (§5.2).
	RepairTables bool
	// InjectHavoc maps "Ctl.action" to variable names that are havoced
	// after each inlined body of that action — the §5.2 step-3 fix
	// simulation for statement-missing bugs.
	InjectHavoc map[string][]string
	// InjectEncoderBug re-introduces historical Aquila implementation bugs
	// so the self-validator can be shown to catch them (§7.2):
	//   "empty-state-accept"  — a parser state with no statements is
	//                           treated as the accept state, making the
	//                           encoded parser accept more packets than
	//                           the code does;
	//   "ignore-defaultonly"  — the @defaultonly annotation is ignored
	//                           when encoding tables under unknown
	//                           entries.
	InjectEncoderBug string
}

func (o Options) withDefaults() Options {
	if o.LoopBound == 0 {
		o.LoopBound = 4
	}
	if o.TreeCap == 0 {
		o.TreeCap = 1 << 20
	}
	if o.TrackModified == nil {
		o.TrackModified = map[string]bool{}
	}
	return o
}

// ErrExplosion is returned when a naive baseline encoding exceeds its
// statement cap — the analogue of the OOM/OOT failures of p4v and Vera on
// production programs (Table 3).
type ErrExplosion struct {
	Mode string
	Size int
}

func (e *ErrExplosion) Error() string {
	return fmt.Sprintf("encode: %s encoding exploded (%d statements); raise TreeCap or use the sequential encoder", e.Mode, e.Size)
}

// Env is an encoding session: one P4 program, one snapshot, one term
// context. It owns the variable-naming scheme.
type Env struct {
	Ctx  *smt.Ctx
	Prog *p4.Program
	Snap *tables.Snapshot
	Opts Options

	headerIDs map[string]uint64 // header instance -> wire id (1-based)
	headers   []*p4.Instance
	fresh     int
	hashSeq   int

	// TableActionID maps "Ctl.table/action" to the table-local action id
	// (LAID) used in ABVs and the $action ghost.
	tableLAID map[string]map[string]uint64

	// tableTerms maps "Ctl.table" to the terms its apply-site encoding
	// introduced: entry match conditions, ABV constants, the lookup tree,
	// and the wildcard mode's free-choice variables. Delta re-verification
	// walks verification conditions against this index to decide which
	// tables an assertion's cone of influence touches.
	tableTerms map[string][]*smt.Term
}

// TableTerms returns the terms recorded for a fully-qualified table
// ("Ctl.table") during encoding. The slice aliases Env internals; callers
// must not mutate it.
func (e *Env) TableTerms(fq string) []*smt.Term { return e.tableTerms[fq] }

// recordTableTerms notes terms introduced by the encoding of table fq.
func (e *Env) recordTableTerms(fq string, ts ...*smt.Term) {
	for _, t := range ts {
		if t != nil {
			e.tableTerms[fq] = append(e.tableTerms[fq], t)
		}
	}
}

// NewEnv builds an encoding environment. snap may be nil (verify under any
// entries: tables without entries are encoded as havoc, §2 case 2).
func NewEnv(ctx *smt.Ctx, prog *p4.Program, snap *tables.Snapshot, opts Options) *Env {
	e := &Env{
		Ctx:        ctx,
		Prog:       prog,
		Snap:       snap,
		Opts:       opts.withDefaults(),
		headerIDs:  map[string]uint64{},
		tableLAID:  map[string]map[string]uint64{},
		tableTerms: map[string][]*smt.Term{},
	}
	for i, inst := range prog.HeaderInstances() {
		e.headerIDs[inst.Name] = uint64(i + 1)
		e.headers = append(e.headers, inst)
	}
	for _, ctlName := range sortedKeys(prog.Controls) {
		ctl := prog.Controls[ctlName]
		for _, tname := range ctl.Order {
			tbl, ok := ctl.Tables[tname]
			if !ok {
				continue
			}
			m := map[string]uint64{}
			for i, a := range tbl.Actions {
				m[a] = uint64(i + 1) // 0 is reserved for the default action
			}
			e.tableLAID[ctlName+"."+tname] = m
		}
	}
	return e
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ---- variable naming scheme (shared with lpi and verify) ----

// FieldVar returns the state variable for inst.field.
func (e *Env) FieldVar(inst, field string) *smt.Term {
	ht := e.Prog.InstanceType(inst)
	if ht == nil {
		panic(fmt.Sprintf("encode: unknown instance %q", inst))
	}
	f := ht.Field(field)
	if f == nil {
		panic(fmt.Sprintf("encode: unknown field %q.%q", inst, field))
	}
	return e.Ctx.Var(inst+"."+field, f.Width)
}

// ValidVar returns the validity bit for a header instance.
func (e *Env) ValidVar(inst string) *smt.Term {
	return e.Ctx.BoolVar(inst + ".$valid")
}

// PktFieldVar returns the input packet's value for inst.field (the `@`
// initial value in LPI).
func (e *Env) PktFieldVar(inst, field string) *smt.Term {
	ht := e.Prog.InstanceType(inst)
	f := ht.Field(field)
	return e.Ctx.Var("pkt."+inst+"."+field, f.Width)
}

// ModVar is the ghost bit recording that inst.field was assigned.
func (e *Env) ModVar(inst, field string) *smt.Term {
	return e.Ctx.BoolVar("$mod." + inst + "." + field)
}

// HitVar is the ghost bit recording that a table was hit.
func (e *Env) HitVar(ctl, tbl string) *smt.Term {
	return e.Ctx.BoolVar("$hit." + ctl + "." + tbl)
}

// AppliedVar is the ghost bit recording that a table was applied at all.
func (e *Env) AppliedVar(ctl, tbl string) *smt.Term {
	return e.Ctx.BoolVar("$applied." + ctl + "." + tbl)
}

// ActionVar is the ghost holding the LAID of the action a table ran
// (0 = default action).
func (e *Env) ActionVar(ctl, tbl string) *smt.Term {
	return e.Ctx.Var("$action."+ctl+"."+tbl, 16)
}

// LAID returns the table-local action id for an action name (0 when the
// name is the default-action marker).
func (e *Env) LAID(ctl, tbl, action string) (uint64, bool) {
	m, ok := e.tableLAID[ctl+"."+tbl]
	if !ok {
		return 0, false
	}
	id, ok := m[action]
	return id, ok
}

// FiredVar is the ghost bit recording that an action body executed.
func (e *Env) FiredVar(ctl, action string) *smt.Term {
	return e.Ctx.BoolVar("$fired." + ctl + "." + action)
}

// RepVar is the table-replacement indicator of §5.2's entry localization.
func (e *Env) RepVar(ctl, tbl string) *smt.Term {
	return e.Ctx.BoolVar("$rep." + ctl + "." + tbl)
}

// StateVar is the sequential-encoding ghost for a parser state.
func (e *Env) StateVar(parser, state string) *smt.Term {
	return e.Ctx.BoolVar("$st." + parser + "." + state)
}

// AcceptVar is the parser-accept ghost.
func (e *Env) AcceptVar(parser string) *smt.Term {
	return e.Ctx.BoolVar("$accept." + parser)
}

// RejectVar is the parser-reject ghost.
func (e *Env) RejectVar(parser string) *smt.Term {
	return e.Ctx.BoolVar("$reject." + parser)
}

// RegVar is the scalarized register state (§4.3: indexes are ignored
// thanks to stage-based pipeline constraints).
func (e *Env) RegVar(name string) *smt.Term {
	reg := e.Prog.Registers[name]
	return e.Ctx.Var("reg."+name, reg.Width)
}

// StdMetaVar returns a standard-metadata field variable.
func (e *Env) StdMetaVar(field string) *smt.Term {
	return e.FieldVar(p4.StdMetaInstance, field)
}

// HeaderID returns the wire id of a header instance (used in the order
// sequence); ids start at 1, 0 means "no header".
func (e *Env) HeaderID(inst string) uint64 { return e.headerIDs[inst] }

// Headers returns the header instances in declaration order.
func (e *Env) Headers() []*p4.Instance { return e.headers }

// MaxHeaders is the length of the order sequence.
func (e *Env) MaxHeaders() int { return len(e.headers) }

// OrderWidth is the bit width of one order-sequence slot.
const OrderWidth = 8

// OrderVar returns slot i of the input packet's header-order sequence
// (pkt.$order in LPI).
func (e *Env) OrderVar(i int) *smt.Term {
	return e.Ctx.Var(fmt.Sprintf("pkt.$order.%d", i), OrderWidth)
}

// OutOrderVar returns slot i of the output packet's header-order sequence.
func (e *Env) OutOrderVar(i int) *smt.Term {
	return e.Ctx.Var(fmt.Sprintf("pkt.$out.%d", i), OrderWidth)
}

// ExtIdxVar is the count of headers extracted so far.
func (e *Env) ExtIdxVar() *smt.Term { return e.Ctx.Var("pkt.$extidx", OrderWidth) }

// OutIdxVar is the count of headers emitted so far.
func (e *Env) OutIdxVar() *smt.Term { return e.Ctx.Var("pkt.$outidx", OrderWidth) }

// PktBitsVar is the monolithic packet bit-vector (PacketBitvector mode).
func (e *Env) PktBitsVar() *smt.Term {
	return e.Ctx.Var("pkt.$bits", e.totalHeaderBits())
}

// CursorVar is the bit cursor into pkt.$bits (PacketBitvector mode).
func (e *Env) CursorVar() *smt.Term { return e.Ctx.Var("pkt.$cursor", 16) }

func (e *Env) totalHeaderBits() int {
	n := 0
	for _, inst := range e.headers {
		n += e.Prog.InstanceType(inst.Name).Width()
	}
	if n == 0 {
		n = 8
	}
	return n
}

// HashVar allocates the free variable for the next hash invocation, named
// by program-order sequence so alternative representations align (§6).
func (e *Env) HashVar(width int) *smt.Term {
	e.hashSeq++
	return e.Ctx.Var(fmt.Sprintf("$hash.%d", e.hashSeq), width)
}

// ResetHashSeq restarts hash numbering (the self-validator encodes the
// same component twice and must see identical numbering).
func (e *Env) ResetHashSeq() { e.hashSeq = 0 }

// FreshVar allocates an encoder-private variable.
func (e *Env) FreshVar(hint string, width int) *smt.Term {
	e.fresh++
	name := fmt.Sprintf("$enc.%s.%d", hint, e.fresh)
	if width == 0 {
		return e.Ctx.BoolVar(name)
	}
	return e.Ctx.Var(name, width)
}

// SelectOrderAt builds the term order[idx] for a symbolic idx.
func (e *Env) SelectOrderAt(idx *smt.Term) *smt.Term {
	c := e.Ctx
	out := c.BV(0, OrderWidth)
	for i := e.MaxHeaders() - 1; i >= 0; i-- {
		out = c.Ite(c.Eq(idx, c.BV(uint64(i), OrderWidth)), e.OrderVar(i), out)
	}
	return out
}

// InitStmts returns the GCL prologue establishing switch-entry state:
// headers invalid, ghosts cleared, counters zeroed. Standard metadata and
// registers stay symbolic unless the spec constrains them.
func (e *Env) InitStmts() gcl.Stmt {
	c := e.Ctx
	var out []gcl.Stmt
	for _, inst := range e.headers {
		out = append(out, &gcl.Assign{Var: e.ValidVar(inst.Name), Rhs: c.False()})
	}
	out = append(out,
		&gcl.Assign{Var: e.ExtIdxVar(), Rhs: c.BV(0, OrderWidth)},
		&gcl.Assign{Var: e.OutIdxVar(), Rhs: c.BV(0, OrderWidth)},
		&gcl.Assign{Var: e.StdMetaVar("drop"), Rhs: c.BV(0, 1)},
		&gcl.Assign{Var: e.StdMetaVar("to_cpu"), Rhs: c.BV(0, 1)},
		&gcl.Assign{Var: e.StdMetaVar("recirc"), Rhs: c.BV(0, 1)},
		&gcl.Assign{Var: e.StdMetaVar("resubmit"), Rhs: c.BV(0, 1)},
		&gcl.Assign{Var: e.StdMetaVar("mirror"), Rhs: c.BV(0, 1)},
		&gcl.Assign{Var: e.StdMetaVar("recirc_count"), Rhs: c.BV(0, 8)},
	)
	for _, name := range sortedKeys(e.Opts.TrackModified) {
		out = append(out, &gcl.Assign{Var: c.BoolVar("$mod." + name), Rhs: c.False()})
	}
	if e.Opts.TrackFired {
		for _, ctlName := range sortedKeys(e.Prog.Controls) {
			ctl := e.Prog.Controls[ctlName]
			for _, an := range ctl.Order {
				if _, isAction := ctl.Actions[an]; isAction {
					out = append(out, &gcl.Assign{Var: e.FiredVar(ctlName, an), Rhs: c.False()})
				}
			}
		}
	}
	// Table ghosts start cleared: a table that is never applied must not
	// report a symbolic hit/applied/action value.
	for _, ctlName := range sortedKeys(e.Prog.Controls) {
		ctl := e.Prog.Controls[ctlName]
		for _, tn := range ctl.Order {
			if _, isTable := ctl.Tables[tn]; !isTable {
				continue
			}
			out = append(out,
				&gcl.Assign{Var: e.AppliedVar(ctlName, tn), Rhs: c.False()},
				&gcl.Assign{Var: e.HitVar(ctlName, tn), Rhs: c.False()},
				&gcl.Assign{Var: e.ActionVar(ctlName, tn), Rhs: c.BV(0, 16)},
			)
		}
	}
	if e.Opts.Packet == PacketBitvector {
		out = append(out, &gcl.Assign{Var: e.CursorVar(), Rhs: c.BV(0, 16)})
	}
	return gcl.NewSeq(out...)
}

// EncodePipeline encodes parser -> control -> deparser for a named
// pipeline declaration.
func (e *Env) EncodePipeline(name string) (gcl.Stmt, error) {
	pl, ok := e.Prog.Pipelines[name]
	if !ok {
		return nil, fmt.Errorf("encode: unknown pipeline %q", name)
	}
	var parts []gcl.Stmt
	if pl.Parser != "" {
		s, err := e.EncodeParser(pl.Parser)
		if err != nil {
			return nil, err
		}
		parts = append(parts, s)
	}
	if pl.Control != "" {
		s, err := e.EncodeControl(pl.Control)
		if err != nil {
			return nil, err
		}
		parts = append(parts, s)
	}
	if pl.Deparser != "" {
		s, err := e.EncodeDeparser(pl.Deparser)
		if err != nil {
			return nil, err
		}
		parts = append(parts, s)
	}
	return gcl.NewSeq(parts...), nil
}

// EncodeComponent encodes any named component (parser, control, deparser,
// or pipeline).
func (e *Env) EncodeComponent(name string) (gcl.Stmt, error) {
	if _, ok := e.Prog.Parsers[name]; ok {
		return e.EncodeParser(name)
	}
	if _, ok := e.Prog.Controls[name]; ok {
		return e.EncodeControl(name)
	}
	if _, ok := e.Prog.Deparsers[name]; ok {
		return e.EncodeDeparser(name)
	}
	if _, ok := e.Prog.Pipelines[name]; ok {
		return e.EncodePipeline(name)
	}
	return nil, fmt.Errorf("encode: unknown component %q", name)
}
