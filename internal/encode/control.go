package encode

import (
	"fmt"

	"aquila/internal/gcl"
	"aquila/internal/p4"
	"aquila/internal/smt"
)

// EncodeControl compiles a control block (ingress/egress program) to GCL.
func (e *Env) EncodeControl(name string) (gcl.Stmt, error) {
	ctl, ok := e.Prog.Controls[name]
	if !ok {
		return nil, fmt.Errorf("encode: unknown control %q", name)
	}
	var out []gcl.Stmt
	for _, s := range ctl.Apply {
		g, err := e.encodeApplyStmt(ctl, s, &exprScope{})
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return gcl.NewSeq(out...), nil
}

func (e *Env) encodeApplyStmt(ctl *p4.Control, s p4.Stmt, sc *exprScope) (gcl.Stmt, error) {
	c := e.Ctx
	switch st := s.(type) {
	case *p4.ApplyStmt:
		return e.encodeTableApply(ctl, ctl.Tables[st.Table])
	case *p4.IfApplyStmt:
		apply, err := e.encodeTableApply(ctl, ctl.Tables[st.Table])
		if err != nil {
			return nil, err
		}
		onHit, err := e.encodeApplyList(ctl, st.OnHit, sc)
		if err != nil {
			return nil, err
		}
		onMis, err := e.encodeApplyList(ctl, st.OnMis, sc)
		if err != nil {
			return nil, err
		}
		return gcl.NewSeq(apply, &gcl.If{
			Cond: e.HitVar(ctl.Name, st.Table),
			Then: onHit,
			Else: onMis,
		}), nil
	case *p4.SwitchApplyStmt:
		apply, err := e.encodeTableApply(ctl, ctl.Tables[st.Table])
		if err != nil {
			return nil, err
		}
		var chain gcl.Stmt
		chain, err = e.encodeApplyList(ctl, st.Default, sc)
		if err != nil {
			return nil, err
		}
		actionVar := e.ActionVar(ctl.Name, st.Table)
		for i := len(st.Cases) - 1; i >= 0; i-- {
			cs := st.Cases[i]
			laid, ok := e.LAID(ctl.Name, st.Table, cs.Action)
			if !ok {
				return nil, fmt.Errorf("encode: switch case %q not in table %s", cs.Action, st.Table)
			}
			body, err := e.encodeApplyList(ctl, cs.Body, sc)
			if err != nil {
				return nil, err
			}
			cond := c.Eq(actionVar, c.BV(laid, 16))
			// The default action can also be one of the named actions; the
			// paper's LAID scheme distinguishes by id, which we mirror.
			tbl := ctl.Tables[st.Table]
			if tbl.DefaultAction == cs.Action {
				cond = c.Or(cond, c.Eq(actionVar, c.BV(0, 16)))
			}
			chain = &gcl.If{Cond: cond, Then: body, Else: chain}
		}
		return gcl.NewSeq(apply, chain), nil
	case *p4.CallActionStmt:
		act := ctl.Actions[st.Action]
		args := make([]*smt.Term, len(st.Args))
		for i, a := range st.Args {
			args[i] = e.Expr(a, sc, act.Params[i].Width)
		}
		return e.inlineAction(ctl, act, args)
	case *p4.IfStmt:
		thenS, err := e.encodeApplyList(ctl, st.Then, sc)
		if err != nil {
			return nil, err
		}
		elseS, err := e.encodeApplyList(ctl, st.Else, sc)
		if err != nil {
			return nil, err
		}
		return &gcl.If{Cond: e.boolExpr(st.Cond, sc), Then: thenS, Else: elseS}, nil
	default:
		return e.encodeControlStmt(ctl, s, sc)
	}
}

func (e *Env) encodeApplyList(ctl *p4.Control, list []p4.Stmt, sc *exprScope) (gcl.Stmt, error) {
	var out []gcl.Stmt
	for _, s := range list {
		g, err := e.encodeApplyStmt(ctl, s, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return gcl.NewSeq(out...), nil
}

// encodeControlStmt handles statements valid inside actions and apply
// blocks (no table operations).
func (e *Env) encodeControlStmt(ctl *p4.Control, s p4.Stmt, sc *exprScope) (gcl.Stmt, error) {
	c := e.Ctx
	switch st := s.(type) {
	case *p4.AssignStmt:
		return e.encodeAssign(st, sc)
	case *p4.SetValidStmt:
		return &gcl.Assign{Var: e.ValidVar(st.Header), Rhs: c.Bool(st.Valid)}, nil
	case *p4.IfStmt:
		thenS, err := e.encodeStmtListCtl(ctl, st.Then, sc)
		if err != nil {
			return nil, err
		}
		elseS, err := e.encodeStmtListCtl(ctl, st.Else, sc)
		if err != nil {
			return nil, err
		}
		return &gcl.If{Cond: e.boolExpr(st.Cond, sc), Then: thenS, Else: elseS}, nil
	case *p4.RegReadStmt:
		// Registers are scalarized (§4.3): the index is ignored.
		return e.assignTo(st.Dst, e.RegVar(st.Reg), sc)
	case *p4.RegWriteStmt:
		reg := e.RegVar(st.Reg)
		return &gcl.Assign{Var: reg, Rhs: e.Expr(st.Val, sc, reg.Width)}, nil
	case *p4.CountStmt:
		// Counters are scalarized like registers: count(idx) increments
		// the single cell (App. B.4).
		reg := e.RegVar(st.Counter)
		return &gcl.Assign{Var: reg, Rhs: e.Ctx.BVAdd(reg, e.Ctx.BV(1, reg.Width))}, nil
	case *p4.ExecuteMeterStmt:
		// The meter colour depends on traffic history outside the model:
		// havoc the destination, bounded by its width (like hash, §4.3).
		w := e.lvalueWidth(st.Dst, sc)
		h := e.HashVar(w)
		return mustStmt(e.assignTo(st.Dst, h, sc)), nil
	case *p4.HashStmt:
		// Hash outputs are havoced, bounded only by their width (§4.3).
		// The free variable is named by a program-order sequence number so
		// the self-validator's alternative representation can align with
		// it (§6: the refinement relation must match free choices).
		dstW := e.lvalueWidth(st.Dst, sc)
		h := e.HashVar(dstW)
		return mustStmt(e.assignTo(st.Dst, h, sc)), nil
	case *p4.PrimitiveStmt:
		field := map[string]string{
			"drop": "drop", "to_cpu": "to_cpu", "recirculate": "recirc",
			"resubmit": "resubmit", "mirror": "mirror",
		}[st.Name]
		return &gcl.Assign{Var: e.StdMetaVar(field), Rhs: c.BV(1, 1)}, nil
	case *p4.CallActionStmt:
		act, ok := ctl.Actions[st.Action]
		if !ok {
			return nil, fmt.Errorf("encode: unknown action %q", st.Action)
		}
		args := make([]*smt.Term, len(st.Args))
		for i, a := range st.Args {
			args[i] = e.Expr(a, sc, act.Params[i].Width)
		}
		return e.inlineAction(ctl, act, args)
	default:
		return nil, fmt.Errorf("encode: unsupported control statement %T", s)
	}
}

func mustStmt(s gcl.Stmt, err error) gcl.Stmt {
	if err != nil {
		panic(err)
	}
	return s
}

func (e *Env) encodeStmtListCtl(ctl *p4.Control, list []p4.Stmt, sc *exprScope) (gcl.Stmt, error) {
	var out []gcl.Stmt
	for _, s := range list {
		g, err := e.encodeControlStmt(ctl, s, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return gcl.NewSeq(out...), nil
}

// inlineAction expands an action body with parameters bound to args. When
// configured it also records the $fired ghost and injects the fix-
// simulation havocs of §5.2.
func (e *Env) inlineAction(ctl *p4.Control, act *p4.Action, args []*smt.Term) (gcl.Stmt, error) {
	sc := &exprScope{params: map[string]*smt.Term{}}
	for i, pm := range act.Params {
		sc.params[pm.Name] = args[i]
	}
	var out []gcl.Stmt
	if e.Opts.TrackFired {
		out = append(out, &gcl.Assign{Var: e.FiredVar(ctl.Name, act.Name), Rhs: e.Ctx.True()})
	}
	for _, s := range act.Body {
		g, err := e.encodeControlStmt(ctl, s, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	for _, name := range e.Opts.InjectHavoc[ctl.Name+"."+act.Name] {
		i := lastDot(name)
		if i < 0 {
			return nil, fmt.Errorf("encode: InjectHavoc target %q is not a field path", name)
		}
		out = append(out, &gcl.Havoc{Var: e.FieldVar(name[:i], name[i+1:])})
	}
	return gcl.NewSeq(out...), nil
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// encodeAssign compiles an assignment, maintaining $mod ghosts for fields
// the spec tracks with modified().
func (e *Env) encodeAssign(st *p4.AssignStmt, sc *exprScope) (gcl.Stmt, error) {
	w := e.lvalueWidth(st.LHS, sc)
	rhs := e.Expr(st.RHS, sc, w)
	return e.assignTo(st.LHS, rhs, sc)
}

func (e *Env) lvalueWidth(lhs p4.Expr, sc *exprScope) int {
	switch x := lhs.(type) {
	case *p4.FieldRef:
		return e.FieldVar(x.Instance, x.Field).Width
	case *p4.SliceExpr:
		return x.Hi - x.Lo + 1
	case *p4.VarRef:
		if t, ok := sc.params[x.Name]; ok {
			return t.Width
		}
	}
	panic(fmt.Sprintf("encode: not an lvalue: %v", lhs))
}

// assignTo writes rhs into an lvalue, handling slice read-modify-write.
func (e *Env) assignTo(lhs p4.Expr, rhs *smt.Term, sc *exprScope) (gcl.Stmt, error) {
	c := e.Ctx
	switch x := lhs.(type) {
	case *p4.FieldRef:
		v := e.FieldVar(x.Instance, x.Field)
		stmts := []gcl.Stmt{&gcl.Assign{Var: v, Rhs: c.Resize(rhs, v.Width)}}
		if e.Opts.TrackModified[x.Instance+"."+x.Field] {
			stmts = append(stmts, &gcl.Assign{Var: e.ModVar(x.Instance, x.Field), Rhs: c.True()})
		}
		return gcl.NewSeq(stmts...), nil
	case *p4.SliceExpr:
		fr, ok := x.X.(*p4.FieldRef)
		if !ok {
			return nil, fmt.Errorf("encode: slice assignment requires a field base")
		}
		v := e.FieldVar(fr.Instance, fr.Field)
		// Read-modify-write: keep bits outside [Hi:Lo].
		newVal := c.Resize(rhs, x.Hi-x.Lo+1)
		var parts *smt.Term
		if x.Hi < v.Width-1 {
			parts = c.Extract(v, v.Width-1, x.Hi+1)
		}
		if parts == nil {
			parts = newVal
		} else {
			parts = c.Concat(parts, newVal)
		}
		if x.Lo > 0 {
			parts = c.Concat(parts, c.Extract(v, x.Lo-1, 0))
		}
		stmts := []gcl.Stmt{&gcl.Assign{Var: v, Rhs: parts}}
		if e.Opts.TrackModified[fr.Instance+"."+fr.Field] {
			stmts = append(stmts, &gcl.Assign{Var: e.ModVar(fr.Instance, fr.Field), Rhs: c.True()})
		}
		return gcl.NewSeq(stmts...), nil
	case *p4.VarRef:
		return nil, fmt.Errorf("encode: assignment to action parameter %q unsupported", x.Name)
	}
	return nil, fmt.Errorf("encode: not an lvalue: %v", lhs)
}
