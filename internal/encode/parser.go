package encode

import (
	"fmt"

	"aquila/internal/gcl"
	"aquila/internal/p4"
	"aquila/internal/smt"
)

// EncodeParser compiles a parser state machine to GCL using the configured
// mode.
func (e *Env) EncodeParser(name string) (gcl.Stmt, error) {
	pr, ok := e.Prog.Parsers[name]
	if !ok {
		return nil, fmt.Errorf("encode: unknown parser %q", name)
	}
	switch e.Opts.Parser {
	case ParserTree:
		return e.encodeParserTree(pr)
	default:
		return e.encodeParserSequential(pr)
	}
}

// parserGraph is the transition graph over real states (accept/reject are
// virtual sinks, not nodes).
type parserGraph struct {
	pr    *p4.Parser
	succs map[string][]string
	preds map[string][]string
}

func buildGraph(pr *p4.Parser) *parserGraph {
	g := &parserGraph{pr: pr, succs: map[string][]string{}, preds: map[string][]string{}}
	addEdge := func(from, to string) {
		if to == "accept" || to == "reject" {
			return
		}
		for _, s := range g.succs[from] {
			if s == to {
				return
			}
		}
		g.succs[from] = append(g.succs[from], to)
		g.preds[to] = append(g.preds[to], from)
	}
	for _, name := range pr.Order {
		st := pr.States[name]
		switch st.Trans.Kind {
		case p4.TransDirect:
			addEdge(name, st.Trans.Target)
		case p4.TransSelect:
			for _, cs := range st.Trans.Cases {
				addEdge(name, cs.Target)
			}
		}
	}
	return g
}

// sccs computes strongly connected components via Tarjan's algorithm,
// returned in reverse topological order of the condensation.
func (g *parserGraph) sccs() [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.succs[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, name := range g.pr.Order {
		if _, seen := index[name]; !seen {
			strongconnect(name)
		}
	}
	return out
}

// hasSelfLoop reports whether state s transitions to itself.
func (g *parserGraph) hasSelfLoop(s string) bool {
	for _, t := range g.succs[s] {
		if t == s {
			return true
		}
	}
	return false
}

// lookaheadInfo records a lookahead placeholder flowing from a predecessor
// state into its successors (Appendix B.2).
type lookaheadInfo struct {
	predID uint64
	laVar  *smt.Term
	width  int
}

// encodeParserSequential is the paper's §4.1 algorithm extended with the
// Appendix B.1 loop folding and B.2 lookahead handling.
func (e *Env) encodeParserSequential(pr *p4.Parser) (gcl.Stmt, error) {
	c := e.Ctx
	g := buildGraph(pr)
	comps := g.sccs() // reverse topological order
	// Topological order of the condensation = reverse of Tarjan output.
	for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
		comps[i], comps[j] = comps[j], comps[i]
	}

	// State ids for $prev tracking (needed by lookahead).
	stateID := map[string]uint64{}
	for i, name := range pr.Order {
		stateID[name] = uint64(i + 1)
	}
	usesLookahead := false
	for _, st := range pr.States {
		if st.Trans.Kind == p4.TransSelect {
			if _, ok := st.Trans.Expr.(*p4.LookaheadExpr); ok {
				usesLookahead = true
			}
		}
	}
	prevVar := c.Var("$prev."+pr.Name, 16)

	// Precompute lookahead placeholders: state -> placeholder, and
	// successor -> incoming lookahead infos.
	laVar := map[string]*smt.Term{}
	incoming := map[string][]lookaheadInfo{}
	for _, name := range pr.Order {
		st := pr.States[name]
		if st.Trans.Kind != p4.TransSelect {
			continue
		}
		la, ok := st.Trans.Expr.(*p4.LookaheadExpr)
		if !ok {
			continue
		}
		v := c.Var(fmt.Sprintf("$la.%s.%s", pr.Name, name), la.Width)
		laVar[name] = v
		for _, cs := range st.Trans.Cases {
			if cs.Target == "accept" || cs.Target == "reject" {
				continue
			}
			incoming[cs.Target] = append(incoming[cs.Target], lookaheadInfo{
				predID: stateID[name], laVar: v, width: la.Width,
			})
		}
	}

	// Prologue: all state ghosts false except start.
	var out []gcl.Stmt
	for _, name := range pr.Order {
		out = append(out, &gcl.Assign{Var: e.StateVar(pr.Name, name), Rhs: c.Bool(name == pr.Start)})
	}
	out = append(out,
		&gcl.Assign{Var: e.AcceptVar(pr.Name), Rhs: c.False()},
		&gcl.Assign{Var: e.RejectVar(pr.Name), Rhs: c.False()},
	)
	if usesLookahead {
		out = append(out, &gcl.Assign{Var: prevVar, Rhs: c.BV(0, 16)})
	}

	encodeOne := func(name string) (gcl.Stmt, error) {
		st := pr.States[name]
		body, err := e.encodeStateBody(pr, st, laVar[name], incoming[name], prevVar, stateID[name], usesLookahead)
		if err != nil {
			return nil, err
		}
		guard := e.StateVar(pr.Name, name)
		inner := gcl.NewSeq(
			&gcl.Assign{Var: guard, Rhs: c.False()},
			body,
		)
		return &gcl.If{Cond: guard, Then: inner, Else: &gcl.Skip{}}, nil
	}

	for _, comp := range comps {
		if len(comp) == 1 && !g.hasSelfLoop(comp[0]) {
			s, err := encodeOne(comp[0])
			if err != nil {
				return nil, err
			}
			out = append(out, s)
			continue
		}
		// Loop component (Appendix B.1): find the root state — the unique
		// state with an incoming edge from outside the SCC (or the start
		// state).
		inComp := map[string]bool{}
		for _, s := range comp {
			inComp[s] = true
		}
		root := ""
		for _, s := range comp {
			external := s == pr.Start
			for _, p := range g.preds[s] {
				if !inComp[p] {
					external = true
				}
			}
			if external {
				if root != "" && root != s {
					return nil, fmt.Errorf("encode: parser %s: loop with multiple entry states (%s, %s) unsupported", pr.Name, root, s)
				}
				root = s
			}
		}
		if root == "" {
			root = comp[0]
		}
		// Topologically order the SCC with edges-to-root removed.
		order := topoOrderWithin(g, comp, root)
		var body []gcl.Stmt
		for _, s := range order {
			st, err := encodeOne(s)
			if err != nil {
				return nil, err
			}
			body = append(body, st)
		}
		out = append(out, &gcl.While{
			Cond:  e.StateVar(pr.Name, root),
			Body:  gcl.NewSeq(body...),
			Bound: e.Opts.LoopBound,
		})
	}
	return gcl.NewSeq(out...), nil
}

// topoOrderWithin orders the states of an SCC topologically after removing
// edges back to the root (which break the cycles per Appendix B.1).
func topoOrderWithin(g *parserGraph, comp []string, root string) []string {
	inComp := map[string]bool{}
	for _, s := range comp {
		inComp[s] = true
	}
	visited := map[string]bool{}
	var order []string
	var dfs func(s string)
	dfs = func(s string) {
		visited[s] = true
		for _, t := range g.succs[s] {
			if inComp[t] && t != root && !visited[t] {
				dfs(t)
			}
		}
		order = append(order, s)
	}
	dfs(root)
	for _, s := range comp {
		if !visited[s] {
			dfs(s)
		}
	}
	// Reverse post-order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// encodeStateBody compiles one state's statements and transition.
func (e *Env) encodeStateBody(pr *p4.Parser, st *p4.State, la *smt.Term,
	incoming []lookaheadInfo, prevVar *smt.Term, myID uint64, trackPrev bool) (gcl.Stmt, error) {
	c := e.Ctx
	var out []gcl.Stmt

	if e.Opts.InjectEncoderBug == "empty-state-accept" && len(st.Stmts) == 0 {
		// Historical bug (§7.2): empty states were mishandled and treated
		// as the accept state, so the encoding accepts more packets than
		// the program.
		return &gcl.Assign{Var: e.AcceptVar(pr.Name), Rhs: c.True()}, nil
	}

	if la != nil {
		// The placeholder holds the unparsed bits the select peeks at. In
		// the KV packet model the next unparsed header is named by
		// pkt.$order at the extraction index, so the placeholder is bound
		// to that header's input image; headers too short (or absent)
		// leave it unconstrained. The successor-state assumes of App. B.2
		// are emitted as well (below) and agree with this binding.
		out = append(out, &gcl.Assign{Var: la, Rhs: e.lookaheadValue(la.Width)})
	}

	// Translate the state's statements; after the first extract, discharge
	// incoming lookahead constraints (Appendix B.2).
	firstExtractDone := false
	sc := &exprScope{lookahead: la}
	for _, s := range st.Stmts {
		stmts, err := e.encodeParserStmt(s, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, stmts)
		if ex, ok := s.(*p4.ExtractStmt); ok && !firstExtractDone {
			firstExtractDone = true
			for _, info := range incoming {
				bits := e.headerLeadingBits(ex.Header, info.width)
				if bits == nil {
					continue
				}
				out = append(out, &gcl.Assume{Cond: c.Implies(
					c.Eq(prevVar, c.BV(info.predID, 16)),
					c.Eq(info.laVar, bits),
				)})
			}
		}
	}

	// Transition encoding: ghost assignments per §4.1 step (2).
	setTarget := func(target string, cond *smt.Term) {
		var ghost *smt.Term
		switch target {
		case "accept":
			ghost = e.AcceptVar(pr.Name)
		case "reject":
			ghost = e.RejectVar(pr.Name)
		default:
			ghost = e.StateVar(pr.Name, target)
		}
		if cond == c.True() {
			out = append(out, &gcl.Assign{Var: ghost, Rhs: c.True()})
		} else {
			out = append(out, &gcl.Assign{Var: ghost, Rhs: c.Or(ghost, cond)})
		}
	}

	switch st.Trans.Kind {
	case p4.TransDirect:
		setTarget(st.Trans.Target, c.True())
	case p4.TransSelect:
		scrut := e.Expr(st.Trans.Expr, sc, 0)
		notPrev := c.True()
		sawDefault := false
		for _, cs := range st.Trans.Cases {
			var match *smt.Term
			if cs.IsDefault {
				match = c.True()
				sawDefault = true
			} else if cs.HasMask {
				mask := c.BV(cs.Mask, scrut.Width)
				match = c.Eq(c.BVAnd(scrut, mask), c.BVAnd(c.BV(cs.Val, scrut.Width), mask))
			} else {
				match = c.Eq(scrut, c.BV(cs.Val, scrut.Width))
			}
			cond := c.And(notPrev, match)
			setTarget(cs.Target, cond)
			notPrev = c.And(notPrev, c.Not(match))
		}
		if !sawDefault {
			// P4 semantics: an unmatched select rejects.
			setTarget("reject", notPrev)
		}
	}
	if trackPrev {
		out = append(out, &gcl.Assign{Var: prevVar, Rhs: c.BV(myID, 16)})
	}
	return gcl.NewSeq(out...), nil
}

// headerLeadingBits returns the first (most significant) width bits of a
// header instance's current field values, or nil when the header is too
// short.
func (e *Env) headerLeadingBits(inst string, width int) *smt.Term {
	return e.leadingBits(inst, width, e.FieldVar)
}

func (e *Env) leadingBits(inst string, width int, fieldVar func(inst, field string) *smt.Term) *smt.Term {
	c := e.Ctx
	ht := e.Prog.InstanceType(inst)
	if ht == nil || ht.Width() < width {
		return nil
	}
	var acc *smt.Term
	for _, f := range ht.Fields {
		fv := fieldVar(inst, f.Name)
		if acc == nil {
			acc = fv
		} else {
			acc = c.Concat(acc, fv)
		}
		if acc.Width >= width {
			break
		}
	}
	return c.Extract(acc, acc.Width-1, acc.Width-width)
}

// lookaheadValue builds the value of a lookahead placeholder: the leading
// bits of whichever header the order sequence says is next on the wire.
func (e *Env) lookaheadValue(width int) *smt.Term {
	c := e.Ctx
	if e.Opts.Packet == PacketBitvector {
		bits := e.PktBitsVar()
		shifted := c.BVShl(bits, c.Resize(e.CursorVar(), bits.Width))
		return c.Extract(shifted, bits.Width-1, bits.Width-width)
	}
	next := e.SelectOrderAt(e.ExtIdxVar())
	// Peeking past the end of the wire reads zero padding — a fixed
	// semantics shared with the self-validator's reference interpreter.
	out := c.BV(0, width)
	for _, inst := range e.Headers() {
		lead := e.leadingBits(inst.Name, width, e.PktFieldVar)
		if lead == nil {
			continue
		}
		out = c.Ite(c.Eq(next, c.BV(e.HeaderID(inst.Name), OrderWidth)), lead, out)
	}
	return out
}

// encodeParserStmt translates a statement appearing inside a parser state.
func (e *Env) encodeParserStmt(s p4.Stmt, sc *exprScope) (gcl.Stmt, error) {
	c := e.Ctx
	switch st := s.(type) {
	case *p4.ExtractStmt:
		return e.encodeExtract(st.Header), nil
	case *p4.AssignStmt:
		return e.encodeAssign(st, sc)
	case *p4.SetValidStmt:
		return &gcl.Assign{Var: e.ValidVar(st.Header), Rhs: c.Bool(st.Valid)}, nil
	case *p4.IfStmt:
		thenS, err := e.encodeStmtList(st.Then, sc, e.encodeParserStmt)
		if err != nil {
			return nil, err
		}
		elseS, err := e.encodeStmtList(st.Else, sc, e.encodeParserStmt)
		if err != nil {
			return nil, err
		}
		return &gcl.If{Cond: e.boolExpr(st.Cond, sc), Then: thenS, Else: elseS}, nil
	default:
		return nil, fmt.Errorf("encode: unsupported parser statement %T", s)
	}
}

func (e *Env) encodeStmtList(list []p4.Stmt, sc *exprScope,
	f func(p4.Stmt, *exprScope) (gcl.Stmt, error)) (gcl.Stmt, error) {
	var out []gcl.Stmt
	for _, s := range list {
		g, err := f(s, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return gcl.NewSeq(out...), nil
}

// encodeExtract implements extract(h) under the configured packet model.
func (e *Env) encodeExtract(inst string) gcl.Stmt {
	c := e.Ctx
	ht := e.Prog.InstanceType(inst)
	var out []gcl.Stmt
	switch e.Opts.Packet {
	case PacketBitvector:
		// p4v-style: slice fields out of one big bit-vector at a symbolic
		// cursor — each extract costs a barrel shift of the whole packet.
		bits := e.PktBitsVar()
		cursor := e.CursorVar()
		total := bits.Width
		shifted := c.BVShl(bits, c.Resize(cursor, total))
		offset := 0
		for _, f := range ht.Fields {
			hi := total - 1 - offset
			lo := total - offset - f.Width
			out = append(out, &gcl.Assign{Var: e.FieldVar(inst, f.Name), Rhs: c.Extract(shifted, hi, lo)})
			offset += f.Width
		}
		out = append(out, &gcl.Assign{Var: cursor, Rhs: c.BVAdd(cursor, c.BV(uint64(ht.Width()), 16))})
	default: // PacketKV (§4.2)
		for _, f := range ht.Fields {
			out = append(out, &gcl.Assign{Var: e.FieldVar(inst, f.Name), Rhs: e.PktFieldVar(inst, f.Name)})
		}
		// Wire-order consistency: the header extracted at position extidx
		// must be what the order sequence says is there.
		extidx := e.ExtIdxVar()
		out = append(out, &gcl.Assume{Cond: c.Eq(e.SelectOrderAt(extidx), c.BV(e.HeaderID(inst), OrderWidth))})
		out = append(out, &gcl.Assign{Var: extidx, Rhs: c.BVAdd(extidx, c.BV(1, OrderWidth))})
	}
	out = append(out, &gcl.Assign{Var: e.ValidVar(inst), Rhs: c.True()})
	return gcl.NewSeq(out...)
}

// ---- naive tree baseline (ParserTree) ----

// encodeParserTree expands the state machine into a tree of nested ifs,
// duplicating every state per path — the encoding whose exponential blowup
// §4.1 demonstrates (1174 states for a 30-state production parser).
func (e *Env) encodeParserTree(pr *p4.Parser) (gcl.Stmt, error) {
	size := 0
	visits := map[string]int{}
	var expand func(name string) (gcl.Stmt, error)
	expand = func(name string) (gcl.Stmt, error) {
		c := e.Ctx
		switch name {
		case "accept":
			return &gcl.Assign{Var: e.AcceptVar(pr.Name), Rhs: c.True()}, nil
		case "reject":
			return &gcl.Assign{Var: e.RejectVar(pr.Name), Rhs: c.True()}, nil
		}
		if visits[name] >= e.Opts.LoopBound {
			// Bounded unrolling: deeper recursions are pruned.
			return &gcl.Assume{Cond: c.False()}, nil
		}
		visits[name]++
		defer func() { visits[name]-- }()

		st := pr.States[name]
		var out []gcl.Stmt
		var la *smt.Term
		if st.Trans.Kind == p4.TransSelect {
			if l, ok := st.Trans.Expr.(*p4.LookaheadExpr); ok {
				la = e.FreshVar("la."+name, l.Width)
				out = append(out, &gcl.Havoc{Var: la})
			}
		}
		sc := &exprScope{lookahead: la}
		for _, s := range st.Stmts {
			g, err := e.encodeParserStmt(s, sc)
			if err != nil {
				return nil, err
			}
			out = append(out, g)
		}
		switch st.Trans.Kind {
		case p4.TransDirect:
			sub, err := expand(st.Trans.Target)
			if err != nil {
				return nil, err
			}
			out = append(out, sub)
		case p4.TransSelect:
			scrut := e.Expr(st.Trans.Expr, sc, 0)
			// Build the nested if-else chain from the last case inward.
			var chain gcl.Stmt = &gcl.Assign{Var: e.RejectVar(pr.Name), Rhs: c.True()}
			for i := len(st.Trans.Cases) - 1; i >= 0; i-- {
				cs := st.Trans.Cases[i]
				sub, err := expand(cs.Target)
				if err != nil {
					return nil, err
				}
				if cs.IsDefault {
					chain = sub
					continue
				}
				var match *smt.Term
				if cs.HasMask {
					mask := c.BV(cs.Mask, scrut.Width)
					match = c.Eq(c.BVAnd(scrut, mask), c.BVAnd(c.BV(cs.Val, scrut.Width), mask))
				} else {
					match = c.Eq(scrut, c.BV(cs.Val, scrut.Width))
				}
				chain = &gcl.If{Cond: match, Then: sub, Else: chain}
			}
			out = append(out, chain)
		}
		stmt := gcl.NewSeq(out...)
		size += gcl.Size(stmt)
		if size > e.Opts.TreeCap {
			return nil, &ErrExplosion{Mode: "tree-parser", Size: size}
		}
		return stmt, nil
	}
	c := e.Ctx
	prologue := []gcl.Stmt{
		&gcl.Assign{Var: e.AcceptVar(pr.Name), Rhs: c.False()},
		&gcl.Assign{Var: e.RejectVar(pr.Name), Rhs: c.False()},
	}
	body, err := expand(pr.Start)
	if err != nil {
		return nil, err
	}
	return gcl.NewSeq(append(prologue, body)...), nil
}

// TreeSize reports the number of GCL statements the tree expansion of a
// parser produces (the "number of states" metric of §4.1) without
// building the verification condition.
func (e *Env) TreeSize(parserName string) (int, error) {
	saved := e.Opts.Parser
	e.Opts.Parser = ParserTree
	defer func() { e.Opts.Parser = saved }()
	s, err := e.EncodeParser(parserName)
	if err != nil {
		return 0, err
	}
	return gcl.Size(s), nil
}

// SequentialSize reports the GCL statement count of the sequential
// encoding.
func (e *Env) SequentialSize(parserName string) (int, error) {
	saved := e.Opts.Parser
	e.Opts.Parser = ParserSequential
	defer func() { e.Opts.Parser = saved }()
	s, err := e.EncodeParser(parserName)
	if err != nil {
		return 0, err
	}
	return gcl.Size(s), nil
}
