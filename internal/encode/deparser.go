package encode

import (
	"fmt"

	"aquila/internal/gcl"
	"aquila/internal/p4"
	"aquila/internal/smt"
)

// EncodeDeparser compiles a deparser: emits build the output header-order
// sequence from valid headers, then the unparsed remainder of the input
// packet is appended (Appendix B.4), then checksum updates run.
func (e *Env) EncodeDeparser(name string) (gcl.Stmt, error) {
	dp, ok := e.Prog.Deparsers[name]
	if !ok {
		return nil, fmt.Errorf("encode: unknown deparser %q", name)
	}
	c := e.Ctx
	var out []gcl.Stmt

	if e.Opts.Packet == PacketBitvector {
		// The bit-vector baseline reassembles the packet by shifting each
		// emitted header back into one big vector — the repeated whole-
		// vector copies §4.2 calls out as the memory-cost driver.
		return e.encodeDeparserBitvector(dp)
	}

	// Reset output order.
	for i := 0; i < e.MaxHeaders(); i++ {
		out = append(out, &gcl.Assign{Var: e.OutOrderVar(i), Rhs: c.BV(0, OrderWidth)})
	}
	out = append(out, &gcl.Assign{Var: e.OutIdxVar(), Rhs: c.BV(0, OrderWidth)})

	var checksums []gcl.Stmt
	for _, s := range dp.Stmts {
		switch st := s.(type) {
		case *p4.EmitStmt:
			out = append(out, e.encodeEmit(st.Header))
		case *p4.UpdateChecksumStmt:
			// Checksums run after reassembly in real deparsers; order after
			// emits here.
			g, err := e.encodeChecksum(st)
			if err != nil {
				return nil, err
			}
			checksums = append(checksums, g)
		default:
			return nil, fmt.Errorf("encode: unsupported deparser statement %T", s)
		}
	}

	// Append the unparsed input headers: entries of pkt.$order from
	// pkt.$extidx onward (the next pipeline may parse deeper, App. B.4).
	outIdx := e.OutIdxVar()
	extIdx := e.ExtIdxVar()
	for k := 0; k < e.MaxHeaders(); k++ {
		val := e.SelectOrderAt(c.BVAdd(extIdx, c.BV(uint64(k), OrderWidth)))
		dst := c.BVAdd(outIdx, c.BV(uint64(k), OrderWidth))
		for i := 0; i < e.MaxHeaders(); i++ {
			slot := e.OutOrderVar(i)
			cond := c.And(c.Eq(dst, c.BV(uint64(i), OrderWidth)), c.Neq(val, c.BV(0, OrderWidth)))
			out = append(out, &gcl.Assign{Var: slot, Rhs: c.Ite(cond, val, slot)})
		}
	}
	out = append(out, checksums...)
	return gcl.NewSeq(out...), nil
}

// encodeEmit appends header id to the output sequence when the header is
// valid.
func (e *Env) encodeEmit(inst string) gcl.Stmt {
	c := e.Ctx
	outIdx := e.OutIdxVar()
	id := c.BV(e.HeaderID(inst), OrderWidth)
	var body []gcl.Stmt
	for i := 0; i < e.MaxHeaders(); i++ {
		slot := e.OutOrderVar(i)
		body = append(body, &gcl.Assign{
			Var: slot,
			Rhs: c.Ite(c.Eq(outIdx, c.BV(uint64(i), OrderWidth)), id, slot),
		})
	}
	body = append(body, &gcl.Assign{Var: outIdx, Rhs: c.BVAdd(outIdx, c.BV(1, OrderWidth))})
	return &gcl.If{Cond: e.ValidVar(inst), Then: gcl.NewSeq(body...), Else: &gcl.Skip{}}
}

// encodeChecksum recomputes Dst from the inputs. The model checksum is the
// width-truncated sum of the inputs — the substitution for the hardware
// ones-complement checksum documented in DESIGN.md; properties compare
// recomputations on both sides so the algebraic identity is preserved.
func (e *Env) encodeChecksum(st *p4.UpdateChecksumStmt) (gcl.Stmt, error) {
	c := e.Ctx
	w := e.lvalueWidth(st.Dst, &exprScope{})
	sum := c.BV(0, w)
	for _, in := range st.Inputs {
		t := e.Expr(in, &exprScope{}, 0)
		sum = c.BVAdd(sum, c.Resize(t, w))
	}
	return e.assignTo(st.Dst, sum, &exprScope{})
}

func (e *Env) encodeDeparserBitvector(dp *p4.Deparser) (gcl.Stmt, error) {
	c := e.Ctx
	bits := e.PktBitsVar()
	total := bits.Width
	cursor := e.FreshVar("outcursor", 16)
	var out []gcl.Stmt
	out = append(out, &gcl.Assign{Var: cursor, Rhs: c.BV(0, 16)})
	for _, s := range dp.Stmts {
		switch st := s.(type) {
		case *p4.EmitStmt:
			ht := e.Prog.InstanceType(st.Header)
			// Concatenate the header's current field values.
			var hv *smt.Term
			for _, f := range ht.Fields {
				fv := e.FieldVar(st.Header, f.Name)
				if hv == nil {
					hv = fv
				} else {
					hv = c.Concat(hv, fv)
				}
			}
			// Shift into position: pkt.$bits |= hv << (total - cursor - w).
			wide := c.Resize(hv, total)
			sh := c.BVSub(c.BV(uint64(total-ht.Width()), total), c.Resize(cursor, total))
			placed := c.BVShl(wide, sh)
			body := gcl.NewSeq(
				&gcl.Assign{Var: bits, Rhs: c.BVOr(bits, placed)},
				&gcl.Assign{Var: cursor, Rhs: c.BVAdd(cursor, c.BV(uint64(ht.Width()), 16))},
			)
			out = append(out, &gcl.If{Cond: e.ValidVar(st.Header), Then: body, Else: &gcl.Skip{}})
		case *p4.UpdateChecksumStmt:
			g, err := e.encodeChecksum(st)
			if err != nil {
				return nil, err
			}
			out = append(out, g)
		}
	}
	return gcl.NewSeq(out...), nil
}

// PassPacket encodes inter-pipeline packet passing (§4.3/App. B.4): the
// deparsed output becomes the next pipeline's input packet — emitted
// header values overwrite the packet image, the output order becomes the
// input order, and parser state is reset.
func (e *Env) PassPacket() gcl.Stmt {
	c := e.Ctx
	var out []gcl.Stmt
	for _, inst := range e.Headers() {
		ht := e.Prog.InstanceType(inst.Name)
		valid := e.ValidVar(inst.Name)
		for _, f := range ht.Fields {
			pv := e.PktFieldVar(inst.Name, f.Name)
			out = append(out, &gcl.Assign{
				Var: pv,
				Rhs: c.Ite(valid, e.FieldVar(inst.Name, f.Name), pv),
			})
		}
	}
	for i := 0; i < e.MaxHeaders(); i++ {
		out = append(out, &gcl.Assign{Var: e.OrderVar(i), Rhs: e.OutOrderVar(i)})
	}
	for _, inst := range e.Headers() {
		out = append(out, &gcl.Assign{Var: e.ValidVar(inst.Name), Rhs: c.False()})
	}
	out = append(out,
		&gcl.Assign{Var: e.ExtIdxVar(), Rhs: c.BV(0, OrderWidth)},
		&gcl.Assign{Var: e.OutIdxVar(), Rhs: c.BV(0, OrderWidth)},
	)
	return gcl.NewSeq(out...)
}

// EncodeRecirculating wraps a pipeline body in the bounded recirculation
// loop of §4.3: while the program sets std_meta.recirc, the packet is
// passed back to the pipeline entrance, at most bound times.
func (e *Env) EncodeRecirculating(body gcl.Stmt, bound int) gcl.Stmt {
	c := e.Ctx
	recirc := e.StdMetaVar("recirc")
	count := e.StdMetaVar("recirc_count")
	loopBody := gcl.NewSeq(
		&gcl.Assign{Var: recirc, Rhs: c.BV(0, 1)},
		&gcl.Assign{Var: count, Rhs: c.BVAdd(count, c.BV(1, 8))},
		e.PassPacket(),
		body,
	)
	return gcl.NewSeq(
		body,
		&gcl.While{Cond: c.Eq(recirc, c.BV(1, 1)), Body: loopBody, Bound: bound},
	)
}

// EncodeResubmitting wraps a body in the bounded resubmission loop: unlike
// recirculation, resubmit re-injects the ORIGINAL packet into the ingress
// parser without deparsing — header state is reset but the packet image
// (pkt.*) is untouched, and metadata carries over (§4.3 pipeline
// behaviours).
func (e *Env) EncodeResubmitting(body gcl.Stmt, bound int) gcl.Stmt {
	c := e.Ctx
	resubmit := e.StdMetaVar("resubmit")
	var reset []gcl.Stmt
	for _, inst := range e.Headers() {
		reset = append(reset, &gcl.Assign{Var: e.ValidVar(inst.Name), Rhs: c.False()})
	}
	reset = append(reset, &gcl.Assign{Var: e.ExtIdxVar(), Rhs: c.BV(0, OrderWidth)})
	loopBody := gcl.NewSeq(
		&gcl.Assign{Var: resubmit, Rhs: c.BV(0, 1)},
		gcl.NewSeq(reset...),
		body,
	)
	return gcl.NewSeq(
		body,
		&gcl.While{Cond: c.Eq(resubmit, c.BV(1, 1)), Body: loopBody, Bound: bound},
	)
}
