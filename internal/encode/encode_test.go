package encode

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"aquila/internal/gcl"
	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

const fwdProgram = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
ethernet_t eth;
ipv4_t ipv4;

parser P {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 { extract(ipv4); transition accept; }
}

control Ing {
	action send(bit<9> port) { std_meta.egress_spec = port; }
	action a_drop() { drop(); }
	table fwd {
		key = { ipv4.dst_ip : exact; }
		actions = { send; a_drop; }
		default_action = a_drop;
	}
	apply {
		if (ipv4.isValid()) { fwd.apply(); }
	}
}

deparser D { emit(eth); emit(ipv4); }
pipeline ingress { parser = P; control = Ing; deparser = D; }
`

// harness builds an env, encodes components, and checks an assertion.
type harness struct {
	t    *testing.T
	ctx  *smt.Ctx
	env  *Env
	prog *p4.Program
}

func newHarness(t *testing.T, src string, snap *tables.Snapshot, opts Options) *harness {
	t.Helper()
	prog, err := p4.ParseAndCheck("test", src)
	if err != nil {
		t.Fatal(err)
	}
	ctx := smt.NewCtx()
	return &harness{t: t, ctx: ctx, env: NewEnv(ctx, prog, snap, opts), prog: prog}
}

// orderAssume constrains pkt.$order to exactly the given header sequence.
func (h *harness) orderAssume(headers ...string) *smt.Term {
	c := h.ctx
	cond := c.True()
	for i := 0; i < h.env.MaxHeaders(); i++ {
		var id uint64
		if i < len(headers) {
			id = h.env.HeaderID(headers[i])
		}
		cond = c.And(cond, c.Eq(h.env.OrderVar(i), c.BV(id, OrderWidth)))
	}
	return cond
}

// run encodes init + assumes + components and returns whether the
// assertion can be violated, plus a counterexample model.
func (h *harness) run(assumes []*smt.Term, components []string, assertion *smt.Term) (bool, *smt.Model) {
	h.t.Helper()
	var stmts []gcl.Stmt
	stmts = append(stmts, h.env.InitStmts())
	for _, a := range assumes {
		stmts = append(stmts, &gcl.Assume{Cond: a})
	}
	for _, comp := range components {
		s, err := h.env.EncodeComponent(comp)
		if err != nil {
			h.t.Fatal(err)
		}
		stmts = append(stmts, s)
	}
	stmts = append(stmts, &gcl.Assert{Cond: assertion, Label: "prop"})
	enc := gcl.NewEncoder(h.ctx)
	res := enc.Encode(gcl.NewSeq(stmts...), nil)
	solver := smt.NewSolver(h.ctx)
	for _, v := range res.Violations {
		if solver.Check(v.Cond) == smt.Sat {
			m := solver.Model()
			solver.ModelCollect(m, v.Cond)
			return true, m
		}
	}
	return false, nil
}

func TestForwardingWithEntries(t *testing.T) {
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(0x0A000001)}, Action: "send", Args: []uint64{3}, Priority: -1})
	h := newHarness(t, fwdProgram, snap, Options{})
	c := h.ctx

	assumes := []*smt.Term{
		h.orderAssume("eth", "ipv4"),
		c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
		c.Eq(h.env.PktFieldVar("ipv4", "dst_ip"), c.BV(0x0A000001, 32)),
	}
	// Property: the packet to 10.0.0.1 leaves on port 3.
	prop := c.Eq(h.env.StdMetaVar("egress_spec"), c.BV(3, 9))
	if violated, _ := h.run(assumes, []string{"ingress"}, prop); violated {
		t.Fatal("packet to 10.0.0.1 must get egress_spec 3")
	}
	// A packet to an uninstalled IP must be dropped (default action).
	assumes2 := []*smt.Term{
		h.orderAssume("eth", "ipv4"),
		c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
		c.Eq(h.env.PktFieldVar("ipv4", "dst_ip"), c.BV(0x0A000002, 32)),
	}
	prop2 := c.Eq(h.env.StdMetaVar("drop"), c.BV(1, 1))
	if violated, _ := h.run(assumes2, []string{"ingress"}, prop2); violated {
		t.Fatal("unknown destination must be dropped")
	}
}

func TestForwardingViolation(t *testing.T) {
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(0x0A000001)}, Action: "send", Args: []uint64{3}, Priority: -1})
	h := newHarness(t, fwdProgram, snap, Options{})
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("eth", "ipv4"),
		c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
	}
	// Claiming every IPv4 packet goes to port 3 must be violated (e.g. by
	// a packet to a different destination).
	prop := c.Eq(h.env.StdMetaVar("egress_spec"), c.BV(3, 9))
	violated, m := h.run(assumes, []string{"ingress"}, prop)
	if !violated {
		t.Fatal("property should be violated for non-matching destinations")
	}
	if m.Uint64(h.env.PktFieldVar("ipv4", "dst_ip")) == 0x0A000001 {
		t.Fatal("counterexample must use a different destination IP")
	}
}

func TestTableModesAgree(t *testing.T) {
	snap := tables.NewSnapshot()
	for i := 0; i < 17; i++ {
		snap.Add("Ing.fwd", &tables.Entry{
			Keys:     []tables.KeyMatch{tables.Exact(uint64(0x0A000000 + i))},
			Action:   "send",
			Args:     []uint64{uint64(i % 8)},
			Priority: -1,
		})
	}
	for _, mode := range []TableMode{TableABVTree, TableABVLinear, TableNaive} {
		h := newHarness(t, fwdProgram, snap, Options{Table: mode})
		c := h.ctx
		assumes := []*smt.Term{
			h.orderAssume("eth", "ipv4"),
			c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
			c.Eq(h.env.PktFieldVar("ipv4", "dst_ip"), c.BV(0x0A000005, 32)),
		}
		prop := c.Eq(h.env.StdMetaVar("egress_spec"), c.BV(5, 9))
		if violated, _ := h.run(assumes, []string{"ingress"}, prop); violated {
			t.Fatalf("mode %v: entry 5 must map to port 5", mode)
		}
		prop2 := c.Eq(h.env.StdMetaVar("egress_spec"), c.BV(6, 9))
		if violated, _ := h.run(assumes, []string{"ingress"}, prop2); !violated {
			t.Fatalf("mode %v: port 6 claim must be violated", mode)
		}
	}
}

func TestFirstMatchPriority(t *testing.T) {
	// Two overlapping ternary entries: the first must win.
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Ternary(0x0A000000, 0xFF000000)}, Action: "send", Args: []uint64{1}, Priority: -1})
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Ternary(0x0A000000, 0xFFFF0000)}, Action: "send", Args: []uint64{2}, Priority: -1})
	for _, mode := range []TableMode{TableABVTree, TableABVLinear, TableNaive} {
		h := newHarness(t, fwdProgram, snap, Options{Table: mode})
		c := h.ctx
		assumes := []*smt.Term{
			h.orderAssume("eth", "ipv4"),
			c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
			c.Eq(h.env.PktFieldVar("ipv4", "dst_ip"), c.BV(0x0A000099, 32)),
		}
		prop := c.Eq(h.env.StdMetaVar("egress_spec"), c.BV(1, 9))
		if violated, _ := h.run(assumes, []string{"ingress"}, prop); violated {
			t.Fatalf("mode %v: first matching entry must win", mode)
		}
	}
}

func TestLPMPriority(t *testing.T) {
	// Longest prefix must win regardless of insertion order.
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.LPM(0x0A000000, 8, 32)}, Action: "send", Args: []uint64{1}, Priority: -1})
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.LPM(0x0A010000, 16, 32)}, Action: "send", Args: []uint64{2}, Priority: -1})
	h := newHarness(t, fwdProgram, snap, Options{})
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("eth", "ipv4"),
		c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
		c.Eq(h.env.PktFieldVar("ipv4", "dst_ip"), c.BV(0x0A010203, 32)),
	}
	prop := c.Eq(h.env.StdMetaVar("egress_spec"), c.BV(2, 9))
	if violated, _ := h.run(assumes, []string{"ingress"}, prop); violated {
		t.Fatal("longest prefix (/16) must win")
	}
}

func TestWildcardTableMode(t *testing.T) {
	// No entries: the table may do anything installable, so a concrete
	// egress claim must be violable, but @defaultonly actions can only run
	// as the default.
	h := newHarness(t, fwdProgram, nil, Options{})
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("eth", "ipv4"),
		c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
	}
	prop := c.Eq(h.env.StdMetaVar("egress_spec"), c.BV(3, 9))
	if violated, _ := h.run(assumes, []string{"ingress"}, prop); !violated {
		t.Fatal("under unknown entries the property must be violable")
	}
	// Universally true property: either dropped or hit the table.
	prop2 := c.Or(
		c.Eq(h.env.StdMetaVar("drop"), c.BV(1, 1)),
		h.env.HitVar("Ing", "fwd"),
	)
	if violated, _ := h.run(assumes, []string{"ingress"}, prop2); violated {
		t.Fatal("miss implies default action drop; property must hold")
	}
}

func TestHeaderValidityTracking(t *testing.T) {
	h := newHarness(t, fwdProgram, nil, Options{})
	c := h.ctx
	// A non-IPv4 packet must leave ipv4 invalid.
	assumes := []*smt.Term{
		h.orderAssume("eth"),
		c.Neq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
	}
	prop := c.Not(h.env.ValidVar("ipv4"))
	if violated, _ := h.run(assumes, []string{"P"}, prop); violated {
		t.Fatal("ipv4 must be invalid for non-IPv4 ethertype")
	}
	// And eth must be valid after parsing.
	prop2 := h.env.ValidVar("eth")
	if violated, _ := h.run(assumes, []string{"P"}, prop2); violated {
		t.Fatal("eth must be valid after start state")
	}
}

func TestParserSequentialVsTreeVerdictsAgree(t *testing.T) {
	for _, mode := range []ParserMode{ParserSequential, ParserTree} {
		h := newHarness(t, fwdProgram, nil, Options{Parser: mode})
		c := h.ctx
		assumes := []*smt.Term{
			h.orderAssume("eth", "ipv4"),
			c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
			c.Eq(h.env.PktFieldVar("ipv4", "ttl"), c.BV(7, 8)),
		}
		prop := c.Eq(h.env.FieldVar("ipv4", "ttl"), c.BV(7, 8))
		if violated, _ := h.run(assumes, []string{"P"}, prop); violated {
			t.Fatalf("mode %v: parsed ttl must equal wire ttl", mode)
		}
	}
}

// diamondParser builds a parser with n diamond-shaped branchings; the tree
// expansion doubles per diamond while the sequential encoding stays linear.
func diamondParser(n int) string {
	var b strings.Builder
	b.WriteString("header h_t { bit<8> tag; }\n")
	for i := 0; i <= n; i++ {
		fmt.Fprintf(&b, "header m%d_t { bit<8> v; } m%d_t m%d;\n", i, i, i)
	}
	b.WriteString("h_t h;\nparser P {\n")
	fmt.Fprintf(&b, "state start { extract(m0); transition select(m0.v) { 0: a0; default: b0; } }\n")
	for i := 0; i < n; i++ {
		// Both arms re-converge on the next diamond's entry.
		next := fmt.Sprintf("d%d", i+1)
		fmt.Fprintf(&b, "state a%d { transition %s; }\n", i, next)
		fmt.Fprintf(&b, "state b%d { transition %s; }\n", i, next)
		if i+1 < n {
			fmt.Fprintf(&b, "state d%d { extract(m%d); transition select(m%d.v) { 0: a%d; default: b%d; } }\n",
				i+1, i+1, i+1, i+1, i+1)
		} else {
			fmt.Fprintf(&b, "state d%d { transition accept; }\n", i+1)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func TestSequentialBeatsTreeExponentially(t *testing.T) {
	src := diamondParser(12)
	h := newHarness(t, src, nil, Options{})
	seq, err := h.env.SequentialSize("P")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := h.env.TreeSize("P")
	if err != nil {
		t.Fatal(err)
	}
	if tree < 20*seq {
		t.Fatalf("expected exponential tree blowup: seq=%d tree=%d", seq, tree)
	}
	// And the explosion guard must fire for deep DAGs with a low cap.
	h2 := newHarness(t, diamondParser(30), nil, Options{TreeCap: 10000})
	_, err = h2.env.TreeSize("P")
	var ex *ErrExplosion
	if !errors.As(err, &ex) {
		t.Fatalf("want ErrExplosion, got %v", err)
	}
}

const loopParser = `
header tcp_t { bit<16> len; }
header opt_t { bit<8> kind; bit<8> val; }
tcp_t tcp;
opt_t opt;
parser P {
	state start { extract(tcp); transition next_option; }
	state next_option {
		transition select(lookahead<bit<8>>()) {
			0: option_end;
			1: option_nop;
			default: accept;
		}
	}
	state option_nop { extract(opt); transition next_option; }
	state option_end { extract(opt); transition accept; }
}
`

func TestLoopFolding(t *testing.T) {
	h := newHarness(t, loopParser, nil, Options{LoopBound: 3})
	s, err := h.env.EncodeParser("P")
	if err != nil {
		t.Fatal(err)
	}
	// The loop must appear as a bounded while in the GCL.
	if !strings.Contains(gcl.Pretty(s), "while") {
		t.Fatal("loop not folded into a while")
	}
	// And the encoding must be solvable: a packet whose first option byte
	// is 0 extracts the option header via option_end.
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("tcp", "opt"),
		c.Eq(h.env.PktFieldVar("opt", "kind"), c.BV(0, 8)),
	}
	prop := h.env.ValidVar("opt")
	if violated, _ := h.run(assumes, []string{"P"}, prop); violated {
		t.Fatal("option header must be extracted when lookahead sees kind 0")
	}
}

func TestLookaheadConsistency(t *testing.T) {
	h := newHarness(t, loopParser, nil, Options{LoopBound: 3})
	c := h.ctx
	// The lookahead placeholder is constrained to equal the first byte of
	// the extracted header: a packet whose option kind is 5 can match
	// neither case 0 nor case 1, so opt is never extracted.
	assumes := []*smt.Term{
		h.orderAssume("tcp", "opt"),
		c.Eq(h.env.PktFieldVar("opt", "kind"), c.BV(5, 8)),
	}
	prop := c.Not(h.env.ValidVar("opt"))
	if violated, _ := h.run(assumes, []string{"P"}, prop); violated {
		t.Fatal("lookahead must prevent extracting an option with kind 5")
	}
}

func TestDeparserOutputOrder(t *testing.T) {
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(1)}, Action: "send", Args: []uint64{1}, Priority: -1})
	h := newHarness(t, fwdProgram, snap, Options{})
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("eth", "ipv4"),
		c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16)),
	}
	ethID := c.BV(h.env.HeaderID("eth"), OrderWidth)
	ipv4ID := c.BV(h.env.HeaderID("ipv4"), OrderWidth)
	prop := c.And(
		c.Eq(h.env.OutOrderVar(0), ethID),
		c.Eq(h.env.OutOrderVar(1), ipv4ID),
	)
	if violated, _ := h.run(assumes, []string{"ingress"}, prop); violated {
		t.Fatal("deparser must emit eth then ipv4")
	}
}

func TestDeparserUnparsedTail(t *testing.T) {
	// Parser for eth only; deparser emits eth; ipv4 was never parsed and
	// must be appended as the unparsed remainder.
	src := `
header ethernet_t { bit<16> etherType; }
header ipv4_t { bit<8> ttl; }
ethernet_t eth;
ipv4_t ipv4;
parser P { state start { extract(eth); transition accept; } }
control C { apply { } }
deparser D { emit(eth); }
pipeline pl { parser = P; control = C; deparser = D; }
`
	h := newHarness(t, src, nil, Options{})
	c := h.ctx
	assumes := []*smt.Term{h.orderAssume("eth", "ipv4")}
	prop := c.And(
		c.Eq(h.env.OutOrderVar(0), c.BV(h.env.HeaderID("eth"), OrderWidth)),
		c.Eq(h.env.OutOrderVar(1), c.BV(h.env.HeaderID("ipv4"), OrderWidth)),
	)
	if violated, _ := h.run(assumes, []string{"pl"}, prop); violated {
		t.Fatal("unparsed ipv4 must be appended to the output order")
	}
}

func TestRegistersScalarized(t *testing.T) {
	src := `
header h_t { bit<32> v; } h_t h;
register<bit<32>>(128) cnt;
parser P { state start { extract(h); transition accept; } }
control C {
	apply {
		cnt.write(0, h.v);
		cnt.read(h.v, 5);
	}
}
pipeline pl { parser = P; control = C; }
`
	h := newHarness(t, src, nil, Options{})
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("h"),
		c.Eq(h.env.PktFieldVar("h", "v"), c.BV(42, 32)),
	}
	// Index is ignored (scalarized): read(5) sees write(0)'s value.
	prop := c.Eq(h.env.FieldVar("h", "v"), c.BV(42, 32))
	if violated, _ := h.run(assumes, []string{"pl"}, prop); violated {
		t.Fatal("register read must observe the scalarized write")
	}
}

func TestHashHavoced(t *testing.T) {
	src := `
header h_t { bit<16> v; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C { apply { hash(h.v, h.v); } }
pipeline pl { parser = P; control = C; }
`
	h := newHarness(t, src, nil, Options{})
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("h"),
		c.Eq(h.env.PktFieldVar("h", "v"), c.BV(1, 16)),
	}
	// The hash output is unconstrained, so any concrete claim about it is
	// violable.
	prop := c.Eq(h.env.FieldVar("h", "v"), c.BV(1, 16))
	if violated, _ := h.run(assumes, []string{"pl"}, prop); !violated {
		t.Fatal("hash output must be havoced")
	}
}

func TestRecirculationBounded(t *testing.T) {
	src := `
header h_t { bit<8> n; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	apply {
		h.n = h.n + 1;
		if (h.n < 3) { recirculate(); }
	}
}
deparser D { emit(h); }
pipeline pl { parser = P; control = C; deparser = D; }
`
	h := newHarness(t, src, nil, Options{})
	c := h.ctx
	body, err := h.env.EncodePipeline("pl")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := h.env.EncodeRecirculating(body, 5)
	var stmts []gcl.Stmt
	stmts = append(stmts, h.env.InitStmts(),
		&gcl.Assume{Cond: h.orderAssume("h")},
		&gcl.Assume{Cond: c.Eq(h.env.PktFieldVar("h", "n"), c.BV(0, 8))},
		wrapped,
		&gcl.Assert{Cond: c.Eq(h.env.FieldVar("h", "n"), c.BV(3, 8)), Label: "n3"},
	)
	enc := gcl.NewEncoder(h.ctx)
	res := enc.Encode(gcl.NewSeq(stmts...), nil)
	solver := smt.NewSolver(h.ctx)
	for _, v := range res.Violations {
		if solver.Check(v.Cond) == smt.Sat {
			t.Fatal("after bounded recirculation h.n must be 3")
		}
	}
}

func TestModifiedGhost(t *testing.T) {
	src := `
header h_t { bit<8> a; bit<8> b; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C { apply { h.a = 9; } }
pipeline pl { parser = P; control = C; }
`
	h := newHarness(t, src, nil, Options{TrackModified: map[string]bool{"h.a": true, "h.b": true}})
	c := h.ctx
	assumes := []*smt.Term{h.orderAssume("h")}
	propA := h.env.ModVar("h", "a")
	if violated, _ := h.run(assumes, []string{"pl"}, propA); violated {
		t.Fatal("h.a must be marked modified")
	}
	propB := c.Not(h.env.ModVar("h", "b"))
	if violated, _ := h.run(assumes, []string{"pl"}, propB); violated {
		t.Fatal("h.b must not be marked modified")
	}
}

func TestPacketBitvectorMode(t *testing.T) {
	h := newHarness(t, fwdProgram, nil, Options{Packet: PacketBitvector})
	c := h.ctx
	bits := h.env.PktBitsVar()
	// Wire image: eth(112 bits: dst,src,etherType) | ipv4(80 bits). Force
	// etherType (bits [80+79 : 80+64] from LSB... compute: total=192;
	// eth at top: dst 48 | src 48 | etherType 16 | then ipv4).
	total := bits.Width
	ethTypeHi := total - 1 - 96
	ethTypeLo := total - 112
	assumes := []*smt.Term{
		c.Eq(c.Extract(bits, ethTypeHi, ethTypeLo), c.BV(0x0800, 16)),
	}
	prop := h.env.ValidVar("ipv4")
	if violated, _ := h.run(assumes, []string{"P"}, prop); violated {
		t.Fatal("bitvector mode: ipv4 must be parsed for etherType 0x0800")
	}
	// And field values must be sliced correctly: ttl is the first ipv4
	// field after eth.
	ttlHi := total - 1 - 112
	ttlLo := total - 112 - 8
	assumes2 := append(assumes, c.Eq(c.Extract(bits, ttlHi, ttlLo), c.BV(7, 8)))
	prop2 := c.Eq(h.env.FieldVar("ipv4", "ttl"), c.BV(7, 8))
	if violated, _ := h.run(assumes2, []string{"P"}, prop2); violated {
		t.Fatal("bitvector mode: ttl must be sliced from the packet image")
	}
}

func TestSwitchActionRunEncoding(t *testing.T) {
	src := `
header h_t { bit<8> a; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	action x() { h.a = 1; }
	action y() { h.a = 2; }
	table t {
		key = { h.a : exact; }
		actions = { x; y; }
		default_action = y;
	}
	apply {
		switch (t.apply().action_run) {
			x: { h.a = 10; }
			y: { h.a = 20; }
		}
	}
}
pipeline pl { parser = P; control = C; }
`
	snap := tables.NewSnapshot()
	snap.Add("C.t", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(5)}, Action: "x", Priority: -1})
	h := newHarness(t, src, snap, Options{})
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("h"),
		c.Eq(h.env.PktFieldVar("h", "a"), c.BV(5, 8)),
	}
	prop := c.Eq(h.env.FieldVar("h", "a"), c.BV(10, 8))
	if violated, _ := h.run(assumes, []string{"pl"}, prop); violated {
		t.Fatal("action_run switch must take the x arm on a hit")
	}
	// Miss → default y → y arm (LAID 0 maps to the default's arm).
	assumes2 := []*smt.Term{
		h.orderAssume("h"),
		c.Eq(h.env.PktFieldVar("h", "a"), c.BV(6, 8)),
	}
	prop2 := c.Eq(h.env.FieldVar("h", "a"), c.BV(20, 8))
	if violated, _ := h.run(assumes2, []string{"pl"}, prop2); violated {
		t.Fatal("action_run switch must take the y arm on a miss")
	}
}

func TestChecksumRecomputation(t *testing.T) {
	src := `
header h_t { bit<8> a; bit<8> b; bit<8> csum; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C { apply { h.a = 1; h.b = 2; } }
deparser D { emit(h); update_checksum(h.csum, h.a, h.b); }
pipeline pl { parser = P; control = C; deparser = D; }
`
	h := newHarness(t, src, nil, Options{})
	c := h.ctx
	assumes := []*smt.Term{h.orderAssume("h")}
	prop := c.Eq(h.env.FieldVar("h", "csum"), c.BV(3, 8))
	if violated, _ := h.run(assumes, []string{"pl"}, prop); violated {
		t.Fatal("checksum must equal the recomputed sum")
	}
}

func TestSliceAssignment(t *testing.T) {
	src := `
header h_t { bit<8> a; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C { apply { h.a[7:4] = 0xF; } }
pipeline pl { parser = P; control = C; }
`
	h := newHarness(t, src, nil, Options{})
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("h"),
		c.Eq(h.env.PktFieldVar("h", "a"), c.BV(0x03, 8)),
	}
	prop := c.Eq(h.env.FieldVar("h", "a"), c.BV(0xF3, 8))
	if violated, _ := h.run(assumes, []string{"pl"}, prop); violated {
		t.Fatal("slice assignment must preserve untouched bits")
	}
}

func TestABVLayoutPacking(t *testing.T) {
	prog, err := p4.ParseAndCheck("t", fwdProgram)
	if err != nil {
		t.Fatal(err)
	}
	ctx := smt.NewCtx()
	env := NewEnv(ctx, prog, nil, Options{})
	ctl := prog.Controls["Ing"]
	tbl := ctl.Tables["fwd"]
	l := env.layoutFor(ctl, tbl)
	if l.laidBits < 2 { // 2 actions + default marker need >= 2 bits
		t.Fatalf("laidBits = %d", l.laidBits)
	}
	if l.paramBits != 9 { // send's port
		t.Fatalf("paramBits = %d", l.paramBits)
	}
	abv := env.abvConst(l, false, 1, ctl.Actions["send"], []uint64{3})
	if !abv.IsConst() {
		t.Fatal("abv must be constant")
	}
	// D bit clear, LAID 1, port 3.
	v := abv.Val
	if v.Bit(0) != 0 {
		t.Fatal("D bit should be 0 for non-default")
	}
	laid := env.abvLAID(l, abv)
	if laid.ConstUint64() != 1 {
		t.Fatalf("laid = %d", laid.ConstUint64())
	}
	params := env.abvParams(l, abv, ctl.Actions["send"])
	if params[0].ConstUint64() != 3 {
		t.Fatalf("param = %d", params[0].ConstUint64())
	}
}

func TestEncodeErrors(t *testing.T) {
	h := newHarness(t, fwdProgram, nil, Options{})
	if _, err := h.env.EncodeComponent("nope"); err == nil {
		t.Fatal("unknown component must error")
	}
	if _, err := h.env.EncodeParser("nope"); err == nil {
		t.Fatal("unknown parser must error")
	}
	if _, err := h.env.EncodeControl("nope"); err == nil {
		t.Fatal("unknown control must error")
	}
	if _, err := h.env.EncodeDeparser("nope"); err == nil {
		t.Fatal("unknown deparser must error")
	}
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(1)}, Action: "bogus", Priority: -1})
	h2 := newHarness(t, fwdProgram, snap, Options{})
	if _, err := h2.env.EncodeControl("Ing"); err == nil {
		t.Fatal("entry with unknown action must error")
	}
}

// TestFigure8SequentialEncoding reproduces the paper's worked example: the
// five-state TCP/UDP-over-IPv4/IPv6 parser of Figure 8(a) must encode to a
// straight-line program of guarded state bodies in topological order with
// ghost activation assignments — Figure 8(b) — rather than a tree.
func TestFigure8SequentialEncoding(t *testing.T) {
	const src = `
header eth_t { bit<16> etype; }
header ipv4_t { bit<8> proto; }
header ipv6_t { bit<8> next; }
header tcp_t { bit<16> port; }
header udp_t { bit<16> port; }
eth_t eth;
ipv4_t ipv4;
ipv6_t ipv6;
tcp_t tcp;
udp_t udp;
parser P {
	state start {
		extract(eth);
		transition select(eth.etype) {
			0x0800: Ipv4;
			0x86dd: Ipv6;
			default: accept;
		}
	}
	state Ipv4 {
		extract(ipv4);
		transition select(ipv4.proto) { 6: Tcp; 17: Udp; default: accept; }
	}
	state Ipv6 {
		extract(ipv6);
		transition select(ipv6.next) { 6: Tcp; 17: Udp; default: accept; }
	}
	state Tcp { extract(tcp); transition accept; }
	state Udp { extract(udp); transition accept; }
}
`
	h := newHarness(t, src, nil, Options{})
	stmt, err := h.env.EncodeParser("P")
	if err != nil {
		t.Fatal(err)
	}
	out := gcl.Pretty(stmt)
	// Straight-line: exactly one guard per state (5 states), no state
	// duplicated — the tree expansion would contain Tcp/Udp twice.
	for _, st := range []string{"start", "Ipv4", "Ipv6", "Tcp", "Udp"} {
		guard := "if ($st.P." + st + ")"
		if n := strings.Count(out, guard); n != 1 {
			t.Fatalf("state %s guarded %d times, want exactly 1 (Figure 8b):\n%s", st, n, out)
		}
	}
	// Ghost activation assignments: the select in Ipv4 must OR-in the Tcp
	// ghost, the paper's `$Tcp := ipv4.proto == TCP`.
	if !strings.Contains(out, "$st.P.Tcp :=") || !strings.Contains(out, "$st.P.Udp :=") {
		t.Fatalf("missing ghost activation assignments:\n%s", out)
	}
	// Topological order: Ipv4 and Ipv6 bodies appear before Tcp's.
	if strings.Index(out, "if ($st.P.Ipv4)") > strings.Index(out, "if ($st.P.Tcp)") ||
		strings.Index(out, "if ($st.P.Ipv6)") > strings.Index(out, "if ($st.P.Tcp)") {
		t.Fatalf("states not in topological order:\n%s", out)
	}
	// The tree expansion duplicates the shared Tcp/Udp states (7 state
	// bodies instead of 5) — at this toy scale the sequential prologue
	// still dominates total statement counts, so the asymptotic claim is
	// asserted by TestSequentialBeatsTreeExponentially instead; here we
	// check the duplication directly.
	saved := h.env.Opts.Parser
	h.env.Opts.Parser = ParserTree
	treeStmt, err := h.env.EncodeParser("P")
	h.env.Opts.Parser = saved
	if err != nil {
		t.Fatal(err)
	}
	treeOut := gcl.Pretty(treeStmt)
	if n := strings.Count(treeOut, "tcp.port := pkt.tcp.port"); n != 2 {
		t.Fatalf("tree expansion should duplicate the Tcp state (got %d copies)", n)
	}
	if n := strings.Count(out, "tcp.port := pkt.tcp.port"); n != 1 {
		t.Fatalf("sequential encoding should visit Tcp once (got %d)", n)
	}
}

func TestUnmatchedSelectRejects(t *testing.T) {
	src := `
header h_t { bit<8> k; } h_t h;
parser P {
	state start {
		extract(h);
		transition select(h.k) { 1: accept; 2: accept; }
	}
}
`
	h := newHarness(t, src, nil, Options{})
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("h"),
		c.Eq(h.env.PktFieldVar("h", "k"), c.BV(9, 8)),
	}
	// P4 semantics: a select with no matching case transitions to reject.
	prop := h.env.RejectVar("P")
	if violated, _ := h.run(assumes, []string{"P"}, prop); violated {
		t.Fatal("unmatched select must reject")
	}
	prop2 := c.Not(h.env.AcceptVar("P"))
	if violated, _ := h.run(assumes, []string{"P"}, prop2); violated {
		t.Fatal("unmatched select must not accept")
	}
}

func TestSelfLoopHeaderStack(t *testing.T) {
	// An MPLS-style state transitioning to itself: a single-state SCC with
	// a self-loop must be folded into a bounded while.
	src := `
header mpls_t { bit<8> label; bit<8> bos; } mpls_t mpls;
header ip_t { bit<8> x; } ip_t ip;
parser P {
	state start { transition parse_mpls; }
	state parse_mpls {
		extract(mpls);
		transition select(mpls.bos) {
			0: parse_mpls;
			default: parse_ip;
		}
	}
	state parse_ip { extract(ip); transition accept; }
}
`
	h := newHarness(t, src, nil, Options{LoopBound: 3})
	s, err := h.env.EncodeParser("P")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gcl.Pretty(s), "while") {
		t.Fatal("self-loop not folded into a while")
	}
	// Since each extract overwrites the single mpls instance, the model's
	// bound is one stack entry per wire slot: order <mpls ip>, bos=1 on the
	// first entry parses straight through.
	c := h.ctx
	assumes := []*smt.Term{
		h.orderAssume("mpls", "ip"),
		c.Eq(h.env.PktFieldVar("mpls", "bos"), c.BV(1, 8)),
	}
	prop := c.And(h.env.ValidVar("ip"), h.env.AcceptVar("P"))
	if violated, _ := h.run(assumes, []string{"P"}, prop); violated {
		t.Fatal("bottom-of-stack must exit the loop and parse ip")
	}
}

func TestManyHeadersOrderSequence(t *testing.T) {
	// More header instances than a small order sequence: the order width
	// (8 bits) supports up to 255 headers; exercise 20.
	var b strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "header x%d_t { bit<8> v; } x%d_t x%d;\n", i, i, i)
	}
	b.WriteString("parser P { state start { extract(x0); transition s1; }\n")
	for i := 1; i < 20; i++ {
		nxt := "accept"
		if i+1 < 20 {
			nxt = fmt.Sprintf("s%d", i+1)
		}
		fmt.Fprintf(&b, "state s%d { extract(x%d); transition %s; }\n", i, i, nxt)
	}
	b.WriteString("}\n")
	h := newHarness(t, b.String(), nil, Options{})
	if h.env.MaxHeaders() != 20 {
		t.Fatalf("MaxHeaders = %d", h.env.MaxHeaders())
	}
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	assumes := []*smt.Term{h.orderAssume(names...)}
	prop := h.env.ValidVar("x19")
	if violated, _ := h.run(assumes, []string{"P"}, prop); violated {
		t.Fatal("all 20 headers must parse")
	}
}
