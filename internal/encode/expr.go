package encode

import (
	"fmt"

	"aquila/internal/p4"
	"aquila/internal/smt"
)

// exprScope provides bindings for non-field identifiers during expression
// translation: action parameters and the current lookahead placeholder.
type exprScope struct {
	params    map[string]*smt.Term
	lookahead *smt.Term // placeholder for pkt.lookahead in the current state
}

// Expr translates a P4 expression into an smt.Term over the encoding's
// state variables. want is the desired bit width for unsized literals
// (0 = unknown, -1 = boolean context).
func (e *Env) Expr(x p4.Expr, sc *exprScope, want int) *smt.Term {
	c := e.Ctx
	if sc == nil {
		sc = &exprScope{}
	}
	switch v := x.(type) {
	case *p4.IntLit:
		w := v.Width
		if w == 0 {
			w = want
		}
		if w <= 0 {
			w = 32 // final fallback for genuinely unconstrained literals
		}
		return c.BV(v.Val, w)
	case *p4.FieldRef:
		return e.FieldVar(v.Instance, v.Field)
	case *p4.VarRef:
		if t, ok := sc.params[v.Name]; ok {
			return t
		}
		if cv, ok := e.Prog.Consts[v.Name]; ok {
			w := v.Width
			if w == 0 {
				w = want
			}
			if w <= 0 {
				w = 32
			}
			return c.BV(cv, w)
		}
		panic(fmt.Sprintf("encode: unbound identifier %q", v.Name))
	case *p4.IsValidExpr:
		return e.ValidVar(v.Instance)
	case *p4.LookaheadExpr:
		if sc.lookahead == nil {
			panic("encode: lookahead outside a parser state context")
		}
		return c.Resize(sc.lookahead, v.Width)
	case *p4.CastExpr:
		inner := e.Expr(v.X, sc, v.Width)
		return c.Resize(inner, v.Width)
	case *p4.SliceExpr:
		inner := e.Expr(v.X, sc, 0)
		return c.Extract(inner, v.Hi, v.Lo)
	case *p4.UnaryExpr:
		switch v.Op {
		case "!":
			return c.Not(e.boolExpr(v.X, sc))
		case "~":
			return c.BVNot(e.Expr(v.X, sc, want))
		case "-":
			return c.BVNeg(e.Expr(v.X, sc, want))
		}
	case *p4.BinaryExpr:
		switch v.Op {
		case "&&":
			return c.And(e.boolExpr(v.X, sc), e.boolExpr(v.Y, sc))
		case "||":
			return c.Or(e.boolExpr(v.X, sc), e.boolExpr(v.Y, sc))
		case "==", "!=", "<", ">", "<=", ">=":
			a, b := e.binOperands(v, sc)
			switch v.Op {
			case "==":
				return c.Eq(a, b)
			case "!=":
				return c.Neq(a, b)
			case "<":
				return c.Ult(a, b)
			case ">":
				return c.Ugt(a, b)
			case "<=":
				return c.Ule(a, b)
			default:
				return c.Uge(a, b)
			}
		case "<<", ">>":
			a := e.Expr(v.X, sc, want)
			b := e.Expr(v.Y, sc, a.Width)
			b = c.Resize(b, a.Width)
			if v.Op == "<<" {
				return c.BVShl(a, b)
			}
			return c.BVLshr(a, b)
		default:
			a, b := e.binOperands(v, sc)
			switch v.Op {
			case "+":
				return c.BVAdd(a, b)
			case "-":
				return c.BVSub(a, b)
			case "&":
				return c.BVAnd(a, b)
			case "|":
				return c.BVOr(a, b)
			case "^":
				return c.BVXor(a, b)
			}
		}
	}
	panic(fmt.Sprintf("encode: unsupported expression %T", x))
}

// binOperands translates both operands of a binary expression, resolving
// unsized literals against the other side's width.
func (e *Env) binOperands(v *p4.BinaryExpr, sc *exprScope) (*smt.Term, *smt.Term) {
	_, xLit := v.X.(*p4.IntLit)
	_, yLit := v.Y.(*p4.IntLit)
	switch {
	case xLit && !yLit:
		b := e.Expr(v.Y, sc, 0)
		return e.Expr(v.X, sc, b.Width), b
	default:
		a := e.Expr(v.X, sc, 0)
		return a, e.Expr(v.Y, sc, a.Width)
	}
}

// boolExpr translates an expression expected to be boolean. A bit-vector
// expression b is interpreted as b != 0, matching P4's bit<1> condition
// idiom.
func (e *Env) boolExpr(x p4.Expr, sc *exprScope) *smt.Term {
	t := e.Expr(x, sc, -1)
	if t.IsBool() {
		return t
	}
	return e.Ctx.Neq(t, e.Ctx.BV(0, t.Width))
}

// BoolExpr is the exported helper used by the LPI compiler.
func (e *Env) BoolExpr(x p4.Expr) *smt.Term { return e.boolExpr(x, nil) }
