package encode

import (
	"fmt"
	"math/big"

	"aquila/internal/gcl"
	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

// abvLayout describes the Action BitVector format of a table (App. B.3):
//
//	| D (1 bit) | LAID | action parameters | padding |
type abvLayout struct {
	laidBits  int
	paramBits int
}

func (l abvLayout) width() int { return 1 + l.laidBits + l.paramBits }

func (e *Env) layoutFor(ctl *p4.Control, tbl *p4.Table) abvLayout {
	laidBits := 1
	for (1 << laidBits) < len(tbl.Actions)+1 {
		laidBits++
	}
	maxParams := 0
	for _, an := range tbl.Actions {
		act := ctl.Actions[an]
		if act == nil {
			continue
		}
		total := 0
		for _, pm := range act.Params {
			total += pm.Width
		}
		if total > maxParams {
			maxParams = total
		}
	}
	if da, ok := ctl.Actions[tbl.DefaultAction]; ok {
		total := 0
		for _, pm := range da.Params {
			total += pm.Width
		}
		if total > maxParams {
			maxParams = total
		}
	}
	return abvLayout{laidBits: laidBits, paramBits: maxParams}
}

// abvConst packs (default?, laid, args) into an ABV constant.
func (e *Env) abvConst(l abvLayout, isDefault bool, laid uint64, act *p4.Action, args []uint64) *smt.Term {
	v := new(big.Int)
	if isDefault {
		v.SetBit(v, 0, 1)
	}
	v.Or(v, new(big.Int).Lsh(new(big.Int).SetUint64(laid), 1))
	off := 1 + l.laidBits
	if act != nil {
		for i, pm := range act.Params {
			var a uint64
			if i < len(args) {
				a = args[i]
			}
			av := new(big.Int).SetUint64(a)
			av.And(av, new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(pm.Width)), big.NewInt(1)))
			v.Or(v, av.Lsh(av, uint(off)))
			off += pm.Width
		}
	}
	return e.Ctx.BVBig(v, l.width())
}

// abvParams extracts the parameter terms of an action from an ABV term.
func (e *Env) abvParams(l abvLayout, abv *smt.Term, act *p4.Action) []*smt.Term {
	var out []*smt.Term
	off := 1 + l.laidBits
	for _, pm := range act.Params {
		out = append(out, e.Ctx.Extract(abv, off+pm.Width-1, off))
		off += pm.Width
	}
	return out
}

func (e *Env) abvIsDefault(abv *smt.Term) *smt.Term {
	return e.Ctx.Eq(e.Ctx.Extract(abv, 0, 0), e.Ctx.BV(1, 1))
}

func (e *Env) abvLAID(l abvLayout, abv *smt.Term) *smt.Term {
	return e.Ctx.Extract(abv, l.laidBits, 1)
}

// entriesFor resolves the entries of a table: snapshot entries win, then
// inline const entries; nil means "verify under any entries" (§2 case 2).
func (e *Env) entriesFor(ctl *p4.Control, tbl *p4.Table) []*tables.Entry {
	fq := ctl.Name + "." + tbl.Name
	if e.Snap != nil && e.Snap.Has(fq) {
		return e.Snap.Entries(fq)
	}
	if len(tbl.ConstEntries) > 0 {
		var out []*tables.Entry
		for _, ce := range tbl.ConstEntries {
			ent := &tables.Entry{Action: ce.Action, Args: append([]uint64(nil), ce.Args...), Priority: ce.Priority}
			for i := range ce.KeyVals {
				switch tbl.Keys[i].Kind {
				case p4.MatchTernary:
					ent.Keys = append(ent.Keys, tables.Ternary(ce.KeyVals[i], ce.KeyMasks[i]))
				default:
					if ce.KeyMasks[i] == 0 {
						ent.Keys = append(ent.Keys, tables.Wildcard())
					} else {
						ent.Keys = append(ent.Keys, tables.Exact(ce.KeyVals[i]))
					}
				}
			}
			out = append(out, ent)
		}
		return out
	}
	return nil
}

// matchTerm builds the match condition of one entry against key terms.
func (e *Env) matchTerm(keys []*smt.Term, tblKeys []*p4.TableKey, ent *tables.Entry) *smt.Term {
	c := e.Ctx
	cond := c.True()
	for i, km := range ent.Keys {
		if i >= len(keys) {
			break
		}
		k := keys[i]
		switch {
		case km.IsRange:
			cond = c.And(cond,
				c.Ule(c.BV(km.Value, k.Width), k),
				c.Ule(k, c.BV(km.High, k.Width)))
		case km.PrefixLen >= 0:
			// Re-derive the prefix mask at the key's real width.
			var mask uint64
			for b := 0; b < km.PrefixLen && b < k.Width; b++ {
				mask |= 1 << uint(k.Width-1-b)
			}
			mv := c.BV(mask, k.Width)
			cond = c.And(cond, c.Eq(c.BVAnd(k, mv), c.BVAnd(c.BV(km.Value, k.Width), mv)))
		case km.Mask == ^uint64(0):
			cond = c.And(cond, c.Eq(k, c.BV(km.Value, k.Width)))
		case km.Mask == 0:
			// wildcard
		default:
			mv := c.BV(km.Mask, k.Width)
			cond = c.And(cond, c.Eq(c.BVAnd(k, mv), c.BVAnd(c.BV(km.Value, k.Width), mv)))
		}
	}
	return cond
}

// encodeTableApply compiles one t.apply() site.
func (e *Env) encodeTableApply(ctl *p4.Control, tbl *p4.Table) (gcl.Stmt, error) {
	if tbl == nil {
		return nil, fmt.Errorf("encode: nil table")
	}
	c := e.Ctx
	keys := make([]*smt.Term, len(tbl.Keys))
	for i, k := range tbl.Keys {
		keys[i] = e.Expr(k.Expr, &exprScope{}, 0)
	}
	ents := e.entriesFor(ctl, tbl)
	applied := &gcl.Assign{Var: e.AppliedVar(ctl.Name, tbl.Name), Rhs: c.True()}

	var body gcl.Stmt
	var err error
	if ents == nil {
		body, err = e.encodeTableWildcard(ctl, tbl)
	} else {
		switch e.Opts.Table {
		case TableNaive:
			body, err = e.encodeTableNaive(ctl, tbl, keys, ents)
		case TableABVLinear:
			body, err = e.encodeTableABV(ctl, tbl, keys, ents, false)
		default:
			body, err = e.encodeTableABV(ctl, tbl, keys, ents, true)
		}
		if err == nil && e.Opts.RepairTables {
			// §5.2 table-entry localization: t = ite(rep, fv, entries).
			// The function variable fv is the wildcard encoding — it can
			// behave like any installable entry set.
			fv, ferr := e.encodeTableWildcard(ctl, tbl)
			if ferr != nil {
				return nil, ferr
			}
			rep := e.RepVar(ctl.Name, tbl.Name)
			e.recordTableTerms(ctl.Name+"."+tbl.Name, rep)
			body = &gcl.If{Cond: rep, Then: fv, Else: body}
		}
	}
	if err != nil {
		return nil, err
	}
	return gcl.NewSeq(applied, body), nil
}

// encodeTableABV is the §4.2 encoding: one ABV per entry, a lookup
// producing the matched ABV (balanced tree or linear chain), then a single
// dispatch where each action body is inlined exactly once.
func (e *Env) encodeTableABV(ctl *p4.Control, tbl *p4.Table, keys []*smt.Term,
	ents []*tables.Entry, balanced bool) (gcl.Stmt, error) {
	c := e.Ctx
	l := e.layoutFor(ctl, tbl)

	matches := make([]*smt.Term, len(ents))
	abvs := make([]*smt.Term, len(ents))
	for i, ent := range ents {
		laid, ok := e.LAID(ctl.Name, tbl.Name, ent.Action)
		if !ok {
			return nil, fmt.Errorf("encode: entry action %q not in table %s.%s", ent.Action, ctl.Name, tbl.Name)
		}
		if tbl.DefaultOnly[ent.Action] {
			return nil, fmt.Errorf("encode: entry uses @defaultonly action %q in table %s.%s", ent.Action, ctl.Name, tbl.Name)
		}
		matches[i] = e.matchTerm(keys, tbl.Keys, ent)
		abvs[i] = e.abvConst(l, false, laid, ctl.Actions[ent.Action], ent.Args)
	}
	defaultABV := e.defaultABV(ctl, tbl, l)

	var lookup, anyMatch *smt.Term
	if len(ents) == 0 {
		lookup, anyMatch = defaultABV, c.False()
	} else if balanced {
		lookup, anyMatch = e.abvTree(matches, abvs, 0, len(ents))
		lookup = c.Ite(anyMatch, lookup, defaultABV)
	} else {
		lookup = defaultABV
		anyMatch = c.False()
		for i := len(ents) - 1; i >= 0; i-- {
			lookup = c.Ite(matches[i], abvs[i], lookup)
			anyMatch = c.Or(anyMatch, matches[i])
		}
	}

	fq := ctl.Name + "." + tbl.Name
	e.recordTableTerms(fq, matches...)
	e.recordTableTerms(fq, abvs...)
	e.recordTableTerms(fq, defaultABV, lookup, anyMatch)

	abvVar := e.FreshVar("abv."+fq, l.width())
	var out []gcl.Stmt
	out = append(out,
		&gcl.Assign{Var: abvVar, Rhs: lookup},
		&gcl.Assign{Var: e.HitVar(ctl.Name, tbl.Name), Rhs: anyMatch},
		&gcl.Assign{Var: e.ActionVar(ctl.Name, tbl.Name),
			Rhs: c.Ite(e.abvIsDefault(abvVar), c.BV(0, 16), c.Resize(e.abvLAID(l, abvVar), 16))},
	)
	dispatch, err := e.abvDispatch(ctl, tbl, l, abvVar)
	if err != nil {
		return nil, err
	}
	out = append(out, dispatch)
	return gcl.NewSeq(out...), nil
}

// abvTree builds the balanced lookup of §4.2:
//
//	ABV_{l,r} = ite(Match_{l,mid}, ABV_{l,mid}, ABV_{mid,r})
//	Match_{l,r} = Match_{l,mid} ∨ Match_{mid,r}
//
// which keeps first-match priority while reducing lookup depth to O(log n).
func (e *Env) abvTree(matches, abvs []*smt.Term, l, r int) (abv, match *smt.Term) {
	if r-l == 1 {
		return abvs[l], matches[l]
	}
	mid := (l + r) / 2
	la, lm := e.abvTree(matches, abvs, l, mid)
	ra, rm := e.abvTree(matches, abvs, mid, r)
	return e.Ctx.Ite(lm, la, ra), e.Ctx.Or(lm, rm)
}

func (e *Env) defaultABV(ctl *p4.Control, tbl *p4.Table, l abvLayout) *smt.Term {
	if tbl.DefaultAction == "" || tbl.DefaultAction == "NoAction" {
		return e.abvConst(l, true, 0, nil, nil)
	}
	act := ctl.Actions[tbl.DefaultAction]
	args := make([]uint64, len(tbl.DefaultArgs))
	for i, a := range tbl.DefaultArgs {
		if lit, ok := a.(*p4.IntLit); ok {
			args[i] = lit.Val
		}
	}
	return e.abvConst(l, true, 0, act, args)
}

// abvDispatch runs the selected action based on the ABV: each action body
// appears exactly once, with parameters sliced from the ABV.
func (e *Env) abvDispatch(ctl *p4.Control, tbl *p4.Table, l abvLayout, abv *smt.Term) (gcl.Stmt, error) {
	c := e.Ctx
	isDefault := e.abvIsDefault(abv)
	laid := e.abvLAID(l, abv)

	var chain gcl.Stmt = &gcl.Skip{}
	// Hit path: dispatch over LAIDs, last-to-first.
	for i := len(tbl.Actions) - 1; i >= 0; i-- {
		an := tbl.Actions[i]
		act := ctl.Actions[an]
		if act == nil { // NoAction
			continue
		}
		id, _ := e.LAID(ctl.Name, tbl.Name, an)
		body, err := e.inlineAction(ctl, act, e.abvParams(l, abv, act))
		if err != nil {
			return nil, err
		}
		chain = &gcl.If{Cond: c.Eq(laid, c.BV(id, l.laidBits)), Then: body, Else: chain}
	}
	// Default path.
	var defaultBody gcl.Stmt = &gcl.Skip{}
	if act := ctl.Actions[tbl.DefaultAction]; act != nil {
		body, err := e.inlineAction(ctl, act, e.abvParams(l, abv, act))
		if err != nil {
			return nil, err
		}
		defaultBody = body
	}
	return &gcl.If{Cond: isDefault, Then: defaultBody, Else: chain}, nil
}

// encodeTableNaive inlines every entry as its own if-else branch with the
// action body duplicated per entry — the Appendix B.3 strawman whose
// expression size grows quadratically in the branch count.
func (e *Env) encodeTableNaive(ctl *p4.Control, tbl *p4.Table, keys []*smt.Term,
	ents []*tables.Entry) (gcl.Stmt, error) {
	c := e.Ctx
	hit := e.HitVar(ctl.Name, tbl.Name)
	actionVar := e.ActionVar(ctl.Name, tbl.Name)

	// Default branch.
	var chain gcl.Stmt
	{
		var body gcl.Stmt = &gcl.Skip{}
		if act := ctl.Actions[tbl.DefaultAction]; act != nil {
			args := make([]*smt.Term, len(act.Params))
			for i, pm := range act.Params {
				var v uint64
				if i < len(tbl.DefaultArgs) {
					if lit, ok := tbl.DefaultArgs[i].(*p4.IntLit); ok {
						v = lit.Val
					}
				}
				args[i] = c.BV(v, pm.Width)
			}
			b, err := e.inlineAction(ctl, act, args)
			if err != nil {
				return nil, err
			}
			body = b
		}
		chain = gcl.NewSeq(
			&gcl.Assign{Var: hit, Rhs: c.False()},
			&gcl.Assign{Var: actionVar, Rhs: c.BV(0, 16)},
			body,
		)
	}
	total := 0
	for i := len(ents) - 1; i >= 0; i-- {
		ent := ents[i]
		act := ctl.Actions[ent.Action]
		laid, ok := e.LAID(ctl.Name, tbl.Name, ent.Action)
		if !ok {
			return nil, fmt.Errorf("encode: entry action %q not in table %s.%s", ent.Action, ctl.Name, tbl.Name)
		}
		var args []*smt.Term
		if act != nil {
			args = make([]*smt.Term, len(act.Params))
			for j, pm := range act.Params {
				var v uint64
				if j < len(ent.Args) {
					v = ent.Args[j]
				}
				args[j] = c.BV(v, pm.Width)
			}
		}
		var body gcl.Stmt = &gcl.Skip{}
		if act != nil {
			b, err := e.inlineAction(ctl, act, args)
			if err != nil {
				return nil, err
			}
			body = b
		}
		branch := gcl.NewSeq(
			&gcl.Assign{Var: hit, Rhs: c.True()},
			&gcl.Assign{Var: actionVar, Rhs: c.BV(laid, 16)},
			body,
		)
		match := e.matchTerm(keys, tbl.Keys, ent)
		e.recordTableTerms(ctl.Name+"."+tbl.Name, match)
		chain = &gcl.If{Cond: match, Then: branch, Else: chain}
		total += gcl.Size(branch)
		if total > e.Opts.TreeCap {
			return nil, &ErrExplosion{Mode: "naive-table", Size: total}
		}
	}
	return chain, nil
}

// encodeTableWildcard encodes a table with unknown contents (§2 case 2):
// the table may hit with any non-@defaultonly action and arbitrary
// parameters, or miss and run the default action.
func (e *Env) encodeTableWildcard(ctl *p4.Control, tbl *p4.Table) (gcl.Stmt, error) {
	c := e.Ctx
	// Free choices are named deterministically per table so the self-
	// validator's alternative representation shares them (§6).
	fq := ctl.Name + "." + tbl.Name
	hit := c.BoolVar("$tbl." + fq + ".hit")
	laid := c.Var("$tbl."+fq+".laid", 16)
	e.recordTableTerms(fq, hit, laid)
	var out []gcl.Stmt
	out = append(out, &gcl.Assign{Var: e.HitVar(ctl.Name, tbl.Name), Rhs: hit})

	// Hit: dispatch over the installable actions with havoced parameters.
	// The action selector is clamped into the installable range rather
	// than assumed: an assume here would let a demonic selector value kill
	// the execution path, which is unsound for the localization queries
	// that require assertions to hold (§5.2).
	var candidates []uint64
	for _, an := range tbl.Actions {
		if tbl.DefaultOnly[an] && e.Opts.InjectEncoderBug != "ignore-defaultonly" {
			continue // @defaultonly actions cannot be installed in entries (§7.2)
		}
		id, _ := e.LAID(ctl.Name, tbl.Name, an)
		candidates = append(candidates, id)
	}
	if len(candidates) == 0 {
		// Nothing installable: the table can only miss.
		out = append(out, &gcl.Assign{Var: e.HitVar(ctl.Name, tbl.Name), Rhs: c.False()})
	}
	inRange := c.False()
	for _, id := range candidates {
		inRange = c.Or(inRange, c.Eq(laid, c.BV(id, 16)))
	}
	clamped := laid
	if len(candidates) > 0 {
		clamped = c.Ite(inRange, laid, c.BV(candidates[0], 16))
	}
	var hitChain gcl.Stmt = &gcl.Skip{}
	for i := len(tbl.Actions) - 1; i >= 0; i-- {
		an := tbl.Actions[i]
		if tbl.DefaultOnly[an] && e.Opts.InjectEncoderBug != "ignore-defaultonly" {
			continue
		}
		act := ctl.Actions[an]
		if act == nil {
			continue
		}
		id, _ := e.LAID(ctl.Name, tbl.Name, an)
		args := make([]*smt.Term, len(act.Params))
		var pre []gcl.Stmt
		for j, pm := range act.Params {
			args[j] = c.Var(fmt.Sprintf("$tbl.%s.%s.arg.%s.%d", ctl.Name, tbl.Name, an, j), pm.Width)
			e.recordTableTerms(fq, args[j])
		}
		body, err := e.inlineAction(ctl, act, args)
		if err != nil {
			return nil, err
		}
		hitChain = &gcl.If{Cond: c.Eq(clamped, c.BV(id, 16)), Then: gcl.NewSeq(append(pre, body)...), Else: hitChain}
	}
	if len(candidates) == 0 {
		hitChain = &gcl.Skip{}
	}
	hitBranch := gcl.NewSeq(
		&gcl.Assign{Var: e.ActionVar(ctl.Name, tbl.Name), Rhs: clamped},
		hitChain,
	)
	if len(candidates) == 0 {
		hitBranch = &gcl.Skip{}
	}

	// Miss: default action with its configured (or havoced) arguments.
	var missBody gcl.Stmt = &gcl.Skip{}
	if act := ctl.Actions[tbl.DefaultAction]; act != nil {
		args := make([]*smt.Term, len(act.Params))
		var pre []gcl.Stmt
		for j, pm := range act.Params {
			if j < len(tbl.DefaultArgs) {
				if lit, ok := tbl.DefaultArgs[j].(*p4.IntLit); ok {
					args[j] = c.BV(lit.Val, pm.Width)
					continue
				}
			}
			args[j] = c.Var(fmt.Sprintf("$tbl.%s.%s.defarg.%d", ctl.Name, tbl.Name, j), pm.Width)
			e.recordTableTerms(fq, args[j])
		}
		body, err := e.inlineAction(ctl, act, args)
		if err != nil {
			return nil, err
		}
		missBody = gcl.NewSeq(append(pre, body)...)
	}
	missBranch := gcl.NewSeq(
		&gcl.Assign{Var: e.ActionVar(ctl.Name, tbl.Name), Rhs: c.BV(0, 16)},
		missBody,
	)
	if len(candidates) == 0 {
		// No installable action: the table can only miss.
		out = append(out, missBranch)
	} else {
		out = append(out, &gcl.If{Cond: hit, Then: hitBranch, Else: missBranch})
	}
	return gcl.NewSeq(out...), nil
}
