package encode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aquila/internal/gcl"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

// randomSnapshot builds a random entry set for Ing.fwd over 32-bit keys.
func randomSnapshot(rng *rand.Rand) *tables.Snapshot {
	snap := tables.NewSnapshot()
	n := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		var km tables.KeyMatch
		switch rng.Intn(4) {
		case 0:
			km = tables.Exact(uint64(rng.Intn(64)))
		case 1:
			km = tables.Ternary(uint64(rng.Intn(64)), uint64(rng.Intn(256)))
		case 2:
			km = tables.LPM(uint64(rng.Intn(1<<30))<<2, rng.Intn(33), 32)
		default:
			km = tables.Range(uint64(rng.Intn(32)), uint64(rng.Intn(64)))
		}
		action := "send"
		args := []uint64{uint64(rng.Intn(500))}
		if rng.Intn(4) == 0 {
			action, args = "a_drop", nil
		}
		snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{km}, Action: action, Args: args, Priority: -1})
	}
	return snap
}

// TestQuickTableModesAgree is the central table-encoding correctness
// property: for random entry sets and a fixed concrete packet, the three
// encodings (naive if-else, linear ABV, balanced ABV tree) must force the
// same hit bit, action id and egress port.
func TestQuickTableModesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		snap := randomSnapshot(rng)
		dst := uint64(rng.Intn(64))

		type outcome struct {
			hit    bool
			action uint64
			egress uint64
			drop   uint64
		}
		var outs []outcome
		for _, mode := range []TableMode{TableNaive, TableABVLinear, TableABVTree} {
			h := newHarness(t, fwdProgram, snap, Options{Table: mode})
			c := h.ctx
			var stmts []gcl.Stmt
			stmts = append(stmts, h.env.InitStmts(),
				&gcl.Assume{Cond: h.orderAssume("eth", "ipv4")},
				&gcl.Assume{Cond: c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(0x0800, 16))},
				&gcl.Assume{Cond: c.Eq(h.env.PktFieldVar("ipv4", "dst_ip"), c.BV(dst, 32))},
			)
			body, err := h.env.EncodeComponent("ingress")
			if err != nil {
				t.Fatal(err)
			}
			stmts = append(stmts, body)
			enc := gcl.NewEncoder(c)
			res := enc.Encode(gcl.NewSeq(stmts...), nil)

			solver := smt.NewSolver(c)
			solver.Assert(res.Path)
			if solver.Check() != smt.Sat {
				t.Fatalf("seed %d: deterministic run must be satisfiable", seed)
			}
			m := solver.Model()
			read := func(v *smt.Term) uint64 { return m.Uint64(v) }
			st := res.Store
			get := func(v *smt.Term) *smt.Term {
				if val, ok := st.Lookup(v.Name); ok {
					return val
				}
				return v
			}
			o := outcome{
				hit:    smt.EvalBool(get(h.env.HitVar("Ing", "fwd")), m.Env()),
				action: smt.EvalBV(get(h.env.ActionVar("Ing", "fwd")), m.Env()).Uint64(),
				egress: smt.EvalBV(get(h.env.StdMetaVar("egress_spec")), m.Env()).Uint64(),
				drop:   smt.EvalBV(get(h.env.StdMetaVar("drop")), m.Env()).Uint64(),
			}
			_ = read
			outs = append(outs, o)
		}
		return outs[0] == outs[1] && outs[0] == outs[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParserModesAgree checks that sequential and tree parser
// encodings agree on validity bits for random wire layouts.
func TestQuickParserModesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		etherType := []uint64{0x0800, 0x1234}[rng.Intn(2)]
		order := [][]string{{"eth"}, {"eth", "ipv4"}}[rng.Intn(2)]

		var verdicts []bool
		for _, mode := range []ParserMode{ParserSequential, ParserTree} {
			h := newHarness(t, fwdProgram, nil, Options{Parser: mode})
			c := h.ctx
			var stmts []gcl.Stmt
			stmts = append(stmts, h.env.InitStmts(),
				&gcl.Assume{Cond: h.orderAssume(order...)},
				&gcl.Assume{Cond: c.Eq(h.env.PktFieldVar("eth", "etherType"), c.BV(etherType, 16))},
			)
			body, err := h.env.EncodeComponent("P")
			if err != nil {
				t.Fatal(err)
			}
			stmts = append(stmts, body)
			enc := gcl.NewEncoder(c)
			res := enc.Encode(gcl.NewSeq(stmts...), nil)
			solver := smt.NewSolver(c)
			solver.Assert(res.Path)
			feasible := solver.Check() == smt.Sat
			if !feasible {
				verdicts = append(verdicts, false)
				continue
			}
			m := solver.Model()
			val, ok := res.Store.Lookup("ipv4.$valid")
			if !ok {
				val = h.env.ValidVar("ipv4")
			}
			verdicts = append(verdicts, smt.EvalBool(val, m.Env()))
		}
		return verdicts[0] == verdicts[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEncoderVsConcreteSemantics cross-checks the whole encoding
// against hand-computed semantics: for a concrete packet and a concrete
// entry set, the model's final TTL must equal what the program clearly
// computes.
func TestQuickEncoderVsConcreteSemantics(t *testing.T) {
	const src = `
header h_t { bit<8> k; bit<8> v; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	action inc(bit<8> d) { h.v = h.v + d; }
	action dbl() { h.v = h.v + h.v; }
	table t {
		key = { h.k : exact; }
		actions = { inc; dbl; }
	}
	apply { t.apply(); if (h.v > 200) { h.v = 200; } }
}
pipeline pl { parser = P; control = C; }
`
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := uint64(rng.Intn(8))
		v := uint64(rng.Intn(256))
		snap := tables.NewSnapshot()
		type ent struct {
			key    uint64
			action string
			arg    uint64
		}
		var ents []ent
		for i := 0; i < 1+rng.Intn(6); i++ {
			e := ent{key: uint64(rng.Intn(8)), action: "inc", arg: uint64(rng.Intn(256))}
			if rng.Intn(2) == 0 {
				e.action = "dbl"
			}
			ents = append(ents, e)
			snap.Add("C.t", &tables.Entry{
				Keys: []tables.KeyMatch{tables.Exact(e.key)}, Action: e.action,
				Args: []uint64{e.arg}, Priority: -1})
		}
		// Reference semantics.
		want := v
		for _, e := range ents {
			if e.key == k {
				if e.action == "inc" {
					want = (want + e.arg) & 0xFF
				} else {
					want = (want + want) & 0xFF
				}
				break
			}
		}
		if want > 200 {
			want = 200
		}

		h := newHarness(t, src, snap, Options{})
		c := h.ctx
		assumes := []*smt.Term{
			h.orderAssume("h"),
			c.Eq(h.env.PktFieldVar("h", "k"), c.BV(k, 8)),
			c.Eq(h.env.PktFieldVar("h", "v"), c.BV(v, 8)),
		}
		prop := c.Eq(h.env.FieldVar("h", "v"), c.BV(want, 8))
		violated, _ := h.run(assumes, []string{"pl"}, prop)
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestABVExpressionSizeGrowth reproduces Appendix B.3's size claim: the
// naive per-entry if-else encoding grows its formula super-linearly in the
// entry count (quadratically in tree terms), while the ABV encodings stay
// near-linear because each action is inlined exactly once.
func TestABVExpressionSizeGrowth(t *testing.T) {
	measure := func(mode TableMode, n int) int {
		snap := tables.NewSnapshot()
		for i := 0; i < n; i++ {
			snap.Add("Ing.fwd", &tables.Entry{
				Keys: []tables.KeyMatch{tables.Exact(uint64(i))}, Action: "send",
				Args: []uint64{uint64(i % 500)}, Priority: -1})
		}
		h := newHarness(t, fwdProgram, snap, Options{Table: mode})
		body, err := h.env.EncodeComponent("ingress")
		if err != nil {
			t.Fatal(err)
		}
		enc := gcl.NewEncoder(h.ctx)
		res := enc.Encode(gcl.NewSeq(h.env.InitStmts(), body), nil)
		// Count the DAG size of the final egress value: the expression the
		// deparser would copy around.
		if v, ok := res.Store.Lookup("std_meta.egress_spec"); ok {
			return smt.TermSize(v)
		}
		t.Fatal("egress_spec not in store")
		return 0
	}
	for _, mode := range []TableMode{TableABVLinear, TableABVTree} {
		s64, s256 := measure(mode, 64), measure(mode, 256)
		if s256 > 6*s64 { // ~4x entries -> at most ~linear growth
			t.Fatalf("mode %v: not linear: 64 entries -> %d, 256 -> %d", mode, s64, s256)
		}
	}
	// GCL statement count: naive inlines per entry, ABV once.
	gclSize := func(mode TableMode, n int) int {
		snap := tables.NewSnapshot()
		for i := 0; i < n; i++ {
			snap.Add("Ing.fwd", &tables.Entry{
				Keys: []tables.KeyMatch{tables.Exact(uint64(i))}, Action: "send",
				Args: []uint64{uint64(i % 500)}, Priority: -1})
		}
		h := newHarness(t, fwdProgram, snap, Options{Table: mode})
		body, err := h.env.EncodeComponent("Ing")
		if err != nil {
			t.Fatal(err)
		}
		return gcl.Size(body)
	}
	naive, abv := gclSize(TableNaive, 256), gclSize(TableABVTree, 256)
	if naive < 8*abv {
		t.Fatalf("naive table GCL (%d) should dwarf ABV (%d) at 256 entries", naive, abv)
	}
}
