// Package p4 implements the frontend for the P4₁₆ subset that Aquila
// verifies: a lexer, a recursive-descent parser, the AST, and a type
// checker. The subset covers the constructs the paper's Table 1 requires —
// headers/structs, parser state machines with select/lookahead, match-action
// controls with tables, actions, registers, hash, deparsers with emit and
// checksum updates, and multi-pipeline switch organization.
package p4

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies a lexical token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString
	TokPunct // single/multi char punctuation & operators
)

// Token is a lexical token with position information.
type Token struct {
	Kind TokKind
	Text string
	Val  uint64 // for TokInt
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokInt:
		return fmt.Sprintf("%d", t.Val)
	default:
		return t.Text
	}
}

// Lexer tokenizes P4lite source.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

var multiPunct = []string{
	"&&&", "<<", ">>", "==", "!=", "<=", ">=", "&&", "||",
}

func (l *Lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("p4: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance(1)
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance(2)
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.advance(1)
			}
			if l.pos+1 >= len(l.src) {
				return l.errf("unterminated block comment")
			}
			l.advance(2)
		case c == '@':
			// Annotations like @defaultonly / @name("x") become ident tokens
			// starting with '@'.
			return nil
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || c == '$' || c == '#' ||
		unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	c := l.src[l.pos]

	// String literal.
	if c == '"' {
		end := l.pos + 1
		for end < len(l.src) && l.src[end] != '"' {
			end++
		}
		if end >= len(l.src) {
			return Token{}, l.errf("unterminated string")
		}
		text := l.src[l.pos+1 : end]
		l.advance(end - l.pos + 1)
		return Token{Kind: TokString, Text: text, Line: startLine, Col: startCol}, nil
	}

	// Number: decimal, hex, binary; P4 width'prefix (8w255) tolerated.
	if unicode.IsDigit(rune(c)) {
		end := l.pos
		for end < len(l.src) && (isIdentPart(l.src[end]) || l.src[end] == 'x' || l.src[end] == 'X') {
			end++
		}
		text := l.src[l.pos:end]
		l.advance(end - l.pos)
		// Dotted IPv4 literal (e.g. 10.0.0.1) becomes a 32-bit constant.
		if strings.Count(text, ".") == 3 {
			var a, b2, c, d uint64
			if _, err := fmt.Sscanf(text, "%d.%d.%d.%d", &a, &b2, &c, &d); err == nil &&
				a < 256 && b2 < 256 && c < 256 && d < 256 {
				v := a<<24 | b2<<16 | c<<8 | d
				return Token{Kind: TokInt, Text: text, Val: v, Line: startLine, Col: startCol}, nil
			}
			return Token{}, l.errf("bad dotted literal %q", text)
		}
		if strings.Contains(text, ".") {
			return Token{}, l.errf("bad numeric literal %q", text)
		}
		// Strip P4 width prefix "8w" / "16s".
		if i := strings.IndexAny(text, "ws"); i > 0 && allDigits(text[:i]) && i+1 < len(text) {
			text = text[i+1:]
		}
		var v uint64
		var err error
		switch {
		case strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X"):
			_, err = fmt.Sscanf(strings.ToLower(text), "0x%x", &v)
		case strings.HasPrefix(text, "0b"):
			for _, ch := range text[2:] {
				switch ch {
				case '0':
					v <<= 1
				case '1':
					v = v<<1 | 1
				case '_':
				default:
					err = fmt.Errorf("bad binary literal %q", text)
				}
			}
		default:
			_, err = fmt.Sscanf(text, "%d", &v)
		}
		if err != nil {
			return Token{}, l.errf("bad integer literal %q", text)
		}
		return Token{Kind: TokInt, Text: text, Val: v, Line: startLine, Col: startCol}, nil
	}

	// Identifier (may contain dots for field paths; '@'/'$'/'#' prefixes).
	if isIdentStart(c) {
		end := l.pos + 1
		for end < len(l.src) && isIdentPart(l.src[end]) {
			end++
		}
		text := l.src[l.pos:end]
		l.advance(end - l.pos)
		return Token{Kind: TokIdent, Text: text, Line: startLine, Col: startCol}, nil
	}

	// Punctuation, longest match first.
	for _, p := range multiPunct {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance(len(p))
			return Token{Kind: TokPunct, Text: p, Line: startLine, Col: startCol}, nil
		}
	}
	l.advance(1)
	return Token{Kind: TokPunct, Text: string(c), Line: startLine, Col: startCol}, nil
}

func allDigits(s string) bool {
	for _, c := range s {
		if !unicode.IsDigit(c) {
			return false
		}
	}
	return len(s) > 0
}

// LexAll tokenizes the whole input (mainly for tests).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
