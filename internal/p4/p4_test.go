package p4

import (
	"strings"
	"testing"
)

const miniProgram = `
// A minimal forwarding program used across the frontend tests.
header ethernet_t {
	bit<48> dst;
	bit<48> src;
	bit<16> etherType;
}
header ipv4_t {
	bit<8>  ttl;
	bit<8>  protocol;
	bit<32> src_ip;
	bit<32> dst_ip;
}
struct meta_t {
	bit<8> ttl;
	bit<1> seen;
}

ethernet_t eth;
ipv4_t ipv4;
meta_t ig_md;

register<bit<32>>(1024) counters;

parser MyParser {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition accept;
	}
}

control MyIngress {
	action a1() { ig_md.ttl = ipv4.ttl; }
	action a2(bit<9> port) { std_meta.egress_spec = port; }
	action a_drop() { drop(); }
	table fwd {
		key = { ipv4.dst_ip : exact; }
		actions = { a2; @defaultonly a_drop; }
		default_action = a_drop;
		size = 1024;
		entries = {
			(10.0.0.1) : a2(3);
			(10.0.0.2) : a2(4);
		}
	}
	apply {
		a1();
		if (ipv4.isValid()) {
			fwd.apply();
		}
		if (ig_md.ttl == 0) { a_drop(); }
		ipv4.ttl = ig_md.ttl - 1;
	}
}

deparser MyDeparser {
	emit(eth);
	emit(ipv4);
}

pipeline ingress_pipeline {
	parser = MyParser;
	control = MyIngress;
	deparser = MyDeparser;
}
`

func TestParseMiniProgram(t *testing.T) {
	prog, err := ParseAndCheck("mini", miniProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Headers) != 2 {
		t.Fatalf("headers = %d, want 2", len(prog.Headers))
	}
	if prog.Headers["ethernet_t"].Width() != 112 {
		t.Fatalf("ethernet width = %d", prog.Headers["ethernet_t"].Width())
	}
	pr := prog.Parsers["MyParser"]
	if pr == nil || pr.Start != "start" || len(pr.States) != 2 {
		t.Fatalf("parser = %+v", pr)
	}
	sel := pr.States["start"].Trans
	if sel.Kind != TransSelect || len(sel.Cases) != 2 {
		t.Fatalf("select = %+v", sel)
	}
	if sel.Cases[0].Val != 0x0800 || sel.Cases[0].Target != "parse_ipv4" {
		t.Fatalf("case 0 = %+v", sel.Cases[0])
	}
	if !sel.Cases[1].IsDefault {
		t.Fatal("case 1 should be default")
	}
	ctl := prog.Controls["MyIngress"]
	if len(ctl.Actions) != 3 || len(ctl.Tables) != 1 {
		t.Fatalf("control: %d actions, %d tables", len(ctl.Actions), len(ctl.Tables))
	}
	tbl := ctl.Tables["fwd"]
	if len(tbl.Keys) != 1 || tbl.Keys[0].Kind != MatchExact {
		t.Fatalf("table keys = %+v", tbl.Keys)
	}
	if !tbl.DefaultOnly["a_drop"] {
		t.Fatal("@defaultonly not recorded")
	}
	if len(tbl.ConstEntries) != 2 {
		t.Fatalf("const entries = %d", len(tbl.ConstEntries))
	}
	if tbl.ConstEntries[0].KeyVals[0] != 0x0A000001 {
		t.Fatalf("dotted IP literal = %#x", tbl.ConstEntries[0].KeyVals[0])
	}
	if prog.Pipelines["ingress_pipeline"].Control != "MyIngress" {
		t.Fatal("pipeline control not resolved")
	}
	if prog.LoC < 50 {
		t.Fatalf("LoC = %d, unexpectedly small", prog.LoC)
	}
}

func TestImplicitStdMeta(t *testing.T) {
	prog, err := ParseAndCheck("m", miniProgram)
	if err != nil {
		t.Fatal(err)
	}
	ht := prog.InstanceType(StdMetaInstance)
	if ht == nil || ht.Field("egress_spec") == nil {
		t.Fatal("std_meta not implicitly declared")
	}
	if prog.Instance(StdMetaInstance).IsHeader {
		t.Fatal("std_meta must be a struct instance")
	}
}

func TestFieldWidthAnnotation(t *testing.T) {
	prog, err := ParseAndCheck("m", miniProgram)
	if err != nil {
		t.Fatal(err)
	}
	ctl := prog.Controls["MyIngress"]
	a1 := ctl.Actions["a1"]
	as := a1.Body[0].(*AssignStmt)
	if as.LHS.(*FieldRef).Width != 8 || as.RHS.(*FieldRef).Width != 8 {
		t.Fatalf("widths not annotated: %+v %+v", as.LHS, as.RHS)
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := LexAll(`x = 0x0800 + 0b101 + 8w255 + 10.0.0.1; // comment
	/* block */ y <= z >> 2 &&& 3`)
	if err != nil {
		t.Fatal(err)
	}
	var ints []uint64
	var puncts []string
	for _, tk := range toks {
		switch tk.Kind {
		case TokInt:
			ints = append(ints, tk.Val)
		case TokPunct:
			puncts = append(puncts, tk.Text)
		}
	}
	wantInts := []uint64{0x0800, 5, 255, 0x0A000001, 2, 3}
	if len(ints) != len(wantInts) {
		t.Fatalf("ints = %v, want %v", ints, wantInts)
	}
	for i := range ints {
		if ints[i] != wantInts[i] {
			t.Fatalf("ints[%d] = %d, want %d", i, ints[i], wantInts[i])
		}
	}
	joined := strings.Join(puncts, " ")
	if !strings.Contains(joined, ">>") || !strings.Contains(joined, "&&&") || !strings.Contains(joined, "<=") {
		t.Fatalf("puncts = %v", puncts)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := LexAll(`"unterminated`); err == nil {
		t.Fatal("want unterminated-string error")
	}
	if _, err := LexAll(`/* unterminated`); err == nil {
		t.Fatal("want unterminated-comment error")
	}
	if _, err := LexAll(`10.0.0`); err == nil {
		t.Fatal("want bad numeric literal error")
	}
	if _, err := LexAll(`999.0.0.1`); err == nil {
		t.Fatal("want bad dotted literal error")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown instance", `control C { apply { nosuch.field = 1; } }`},
		{"unknown field", `header h_t { bit<8> a; } h_t h; control C { apply { h.b = 1; } }`},
		{"unknown table", `control C { apply { t.apply(); } }`},
		{"unknown action", `control C { apply { act(); } }`},
		{"extract outside parser", `header h_t { bit<8> a; } h_t h; control C { apply { extract(h); } }`},
		{"bad match kind", `header h_t { bit<8> a; } h_t h; control C { action a() {} table t { key = { h.a : fuzzy; } actions = { a; } } apply { t.apply(); } }`},
		{"arity mismatch", `control C { action a(bit<8> x) {} apply { a(); } }`},
		{"width mismatch", `header h_t { bit<8> a; bit<16> b; } h_t h; control C { apply { h.a = h.b; } }`},
		{"dup state", `parser P { state s { transition accept; } state s { transition accept; } }`},
		{"bad transition", `parser P { state s { transition nowhere; } }`},
		{"lookahead in control", `control C { apply { if (lookahead<bit<8>>() == 1) {} } }`},
		{"switch case not action", `header h_t { bit<8> a; } h_t h; control C { action a() {} table t { key = { h.a : exact; } actions = { a; } } apply { switch (t.apply().action_run) { other: {} } } }`},
	}
	for _, tc := range cases {
		if _, err := ParseAndCheck(tc.name, tc.src); err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
		}
	}
}

func TestParseIfApplyHitMiss(t *testing.T) {
	src := `
header h_t { bit<8> a; } h_t h;
control C {
	action set(bit<8> v) { h.a = v; }
	table t { key = { h.a : exact; } actions = { set; } }
	apply {
		if (t.apply().hit) { h.a = 1; } else { h.a = 2; }
		if (t.apply().miss) { h.a = 3; }
	}
}`
	prog, err := ParseAndCheck("hit", src)
	if err != nil {
		t.Fatal(err)
	}
	ap := prog.Controls["C"].Apply
	first := ap[0].(*IfApplyStmt)
	if len(first.OnHit) != 1 || len(first.OnMis) != 1 {
		t.Fatalf("hit/miss arms: %d/%d", len(first.OnHit), len(first.OnMis))
	}
	second := ap[1].(*IfApplyStmt)
	if len(second.OnHit) != 0 || len(second.OnMis) != 1 {
		t.Fatalf("miss form arms: %d/%d", len(second.OnHit), len(second.OnMis))
	}
}

func TestParseSwitchActionRun(t *testing.T) {
	src := `
header h_t { bit<8> a; } h_t h;
control C {
	action x() { h.a = 1; }
	action y() { h.a = 2; }
	table t { key = { h.a : exact; } actions = { x; y; } }
	apply {
		switch (t.apply().action_run) {
			x: { h.a = 10; }
			y: { h.a = 20; }
			default: { h.a = 30; }
		}
	}
}`
	prog, err := ParseAndCheck("sw", src)
	if err != nil {
		t.Fatal(err)
	}
	sw := prog.Controls["C"].Apply[0].(*SwitchApplyStmt)
	if len(sw.Cases) != 2 || len(sw.Default) != 1 {
		t.Fatalf("switch = %+v", sw)
	}
}

func TestParseLookaheadAndMaskedSelect(t *testing.T) {
	src := `
header h_t { bit<8> kind; } h_t h;
parser P {
	state start {
		transition select(lookahead<bit<8>>()) {
			0: opt_end;
			1 &&& 0x0F: opt_nop;
			default: accept;
		}
	}
	state opt_end { extract(h); transition accept; }
	state opt_nop { extract(h); transition start; }
}`
	prog, err := ParseAndCheck("la", src)
	if err != nil {
		t.Fatal(err)
	}
	tr := prog.Parsers["P"].States["start"].Trans
	if _, ok := tr.Expr.(*LookaheadExpr); !ok {
		t.Fatalf("select expr = %T", tr.Expr)
	}
	if !tr.Cases[1].HasMask || tr.Cases[1].Mask != 0x0F {
		t.Fatalf("mask = %+v", tr.Cases[1])
	}
}

func TestParseRegisterHashPrimitives(t *testing.T) {
	src := `
header h_t { bit<32> v; } h_t h;
register<bit<32>>(64) reg;
control C {
	apply {
		reg.read(h.v, 0);
		reg.write(1, h.v);
		hash(h.v, h.v);
		drop();
		recirculate();
	}
}`
	prog, err := ParseAndCheck("reg", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Registers["reg"].Width != 32 || prog.Registers["reg"].Size != 64 {
		t.Fatalf("register = %+v", prog.Registers["reg"])
	}
	ap := prog.Controls["C"].Apply
	if _, ok := ap[0].(*RegReadStmt); !ok {
		t.Fatalf("stmt 0 = %T", ap[0])
	}
	if _, ok := ap[2].(*HashStmt); !ok {
		t.Fatalf("stmt 2 = %T", ap[2])
	}
	if p, ok := ap[3].(*PrimitiveStmt); !ok || p.Name != "drop" {
		t.Fatalf("stmt 3 = %+v", ap[3])
	}
}

func TestExprPrecedenceAndShift(t *testing.T) {
	src := `
header h_t { bit<8> a; bit<8> b; } h_t h;
control C {
	apply {
		h.a = h.a + h.b & 0x0F;
		h.b = h.a << 2;
		h.a = h.b >> 1;
		if (h.a == 1 && h.b != 2 || h.a > h.b) { h.a = 0; }
	}
}`
	prog, err := ParseAndCheck("prec", src)
	if err != nil {
		t.Fatal(err)
	}
	// h.a + h.b & 0x0F parses as (h.a + h.b) & 0x0F given & binds looser
	// than + in our (P4-style) table.
	as := prog.Controls["C"].Apply[0].(*AssignStmt)
	top := as.RHS.(*BinaryExpr)
	if top.Op != "&" {
		t.Fatalf("top op = %q, want &", top.Op)
	}
	sh := prog.Controls["C"].Apply[2].(*AssignStmt).RHS.(*BinaryExpr)
	if sh.Op != ">>" {
		t.Fatalf("op = %q, want >>", sh.Op)
	}
}

func TestSliceExpr(t *testing.T) {
	src := `
header h_t { bit<16> a; bit<4> b; } h_t h;
control C { apply { h.b = h.a[7:4]; } }`
	prog, err := ParseAndCheck("slice", src)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Controls["C"].Apply[0].(*AssignStmt)
	sl := as.RHS.(*SliceExpr)
	if sl.Hi != 7 || sl.Lo != 4 {
		t.Fatalf("slice = %+v", sl)
	}
}

func TestConstDecl(t *testing.T) {
	src := `
const bit<16> TYPE_IPV4 = 0x0800;
header h_t { bit<16> t; } h_t h;
parser P {
	state start {
		extract(h);
		transition select(h.t) { 0x0800: accept; default: reject; }
	}
}`
	prog, err := ParseAndCheck("const", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Consts["TYPE_IPV4"] != 0x0800 {
		t.Fatalf("const = %#x", prog.Consts["TYPE_IPV4"])
	}
}
