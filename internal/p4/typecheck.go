package p4

import (
	"fmt"
	"sort"
)

// Check type-checks a parsed program in place: it resolves instance types,
// annotates expression widths, and validates statement well-formedness.
func Check(prog *Program) error {
	c := &checker{prog: prog, instances: map[string]*Instance{}}
	return c.run()
}

type checker struct {
	prog      *Program
	instances map[string]*Instance
}

func (c *checker) errf(format string, args ...interface{}) error {
	return fmt.Errorf("p4: %s: %s", c.prog.Name, fmt.Sprintf(format, args...))
}

func (c *checker) run() error {
	prog := c.prog
	// Implicit standard metadata instance.
	if _, ok := prog.Structs["std_meta_t"]; !ok {
		prog.Structs["std_meta_t"] = &HeaderType{Name: "std_meta_t", Fields: StdMetaFields}
	}
	hasStd := false
	for _, inst := range prog.Instances {
		if inst.Name == StdMetaInstance {
			hasStd = true
		}
	}
	if !hasStd {
		prog.Instances = append(prog.Instances, &Instance{Name: StdMetaInstance, TypeName: "std_meta_t"})
	}
	for _, inst := range prog.Instances {
		if _, dup := c.instances[inst.Name]; dup {
			return c.errf("duplicate instance %q", inst.Name)
		}
		if _, ok := prog.Headers[inst.TypeName]; ok {
			inst.IsHeader = true
		} else if _, ok := prog.Structs[inst.TypeName]; !ok {
			return c.errf("instance %q has unknown type %q", inst.Name, inst.TypeName)
		}
		c.instances[inst.Name] = inst
	}
	for _, name := range sortedKeys(prog.Parsers) {
		if err := c.checkParser(prog.Parsers[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(prog.Controls) {
		if err := c.checkControl(prog.Controls[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(prog.Deparsers) {
		if err := c.checkDeparser(prog.Deparsers[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(prog.Pipelines) {
		pl := prog.Pipelines[name]
		if pl.Parser != "" {
			if _, ok := prog.Parsers[pl.Parser]; !ok {
				return c.errf("pipeline %q references unknown parser %q", name, pl.Parser)
			}
		}
		if pl.Control != "" {
			if _, ok := prog.Controls[pl.Control]; !ok {
				return c.errf("pipeline %q references unknown control %q", name, pl.Control)
			}
		}
		if pl.Deparser != "" {
			if _, ok := prog.Deparsers[pl.Deparser]; !ok {
				return c.errf("pipeline %q references unknown deparser %q", name, pl.Deparser)
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (c *checker) checkDeparser(d *Deparser) error {
	sc := &scope{vars: map[string]int{}}
	for _, s := range d.Stmts {
		switch s.(type) {
		case *EmitStmt, *UpdateChecksumStmt:
			if err := c.checkStmt(s, sc, false); err != nil {
				return fmt.Errorf("%w (in deparser %s)", err, d.Name)
			}
		default:
			return c.errf("deparser %s: only emit/update_checksum allowed, got %T", d.Name, s)
		}
	}
	return nil
}

// InstanceType returns the layout of an instance (header or struct).
func (c *checker) instanceType(name string) *HeaderType {
	inst, ok := c.instances[name]
	if !ok {
		return nil
	}
	if inst.IsHeader {
		return c.prog.Headers[inst.TypeName]
	}
	return c.prog.Structs[inst.TypeName]
}

// InstanceType is the exported accessor used by the encoder.
func (p *Program) InstanceType(name string) *HeaderType {
	for _, inst := range p.Instances {
		if inst.Name == name {
			if inst.IsHeader {
				return p.Headers[inst.TypeName]
			}
			return p.Structs[inst.TypeName]
		}
	}
	return nil
}

// Instance returns the named instance or nil.
func (p *Program) Instance(name string) *Instance {
	for _, inst := range p.Instances {
		if inst.Name == name {
			return inst
		}
	}
	return nil
}

// HeaderInstances returns the header (not struct) instances in order.
func (p *Program) HeaderInstances() []*Instance {
	var out []*Instance
	for _, inst := range p.Instances {
		if inst.IsHeader {
			out = append(out, inst)
		}
	}
	return out
}

// scope tracks in-scope variables (action parameters) during checking.
type scope struct {
	vars map[string]int // name -> width
}

func (c *checker) checkParser(pr *Parser) error {
	if len(pr.States) == 0 {
		return c.errf("parser %q has no states", pr.Name)
	}
	if _, ok := pr.States[pr.Start]; !ok {
		return c.errf("parser %q start state %q missing", pr.Name, pr.Start)
	}
	for _, name := range pr.Order {
		st := pr.States[name]
		sc := &scope{vars: map[string]int{}}
		for _, s := range st.Stmts {
			if err := c.checkStmt(s, sc, true); err != nil {
				return fmt.Errorf("%w (in parser %s state %s)", err, pr.Name, name)
			}
		}
		tr := st.Trans
		switch tr.Kind {
		case TransDirect:
			if !c.validTarget(pr, tr.Target) {
				return c.errf("parser %s state %s: unknown transition target %q", pr.Name, name, tr.Target)
			}
		case TransSelect:
			if _, err := c.checkExpr(tr.Expr, sc, 0, true); err != nil {
				return fmt.Errorf("%w (in parser %s state %s select)", err, pr.Name, name)
			}
			for _, cs := range tr.Cases {
				if !c.validTarget(pr, cs.Target) {
					return c.errf("parser %s state %s: unknown select target %q", pr.Name, name, cs.Target)
				}
			}
		}
	}
	return nil
}

func (c *checker) validTarget(pr *Parser, tgt string) bool {
	if tgt == "accept" || tgt == "reject" {
		return true
	}
	_, ok := pr.States[tgt]
	return ok
}

func (c *checker) checkControl(ctl *Control) error {
	for _, name := range ctl.Order {
		if act, ok := ctl.Actions[name]; ok {
			sc := &scope{vars: map[string]int{}}
			for _, pm := range act.Params {
				sc.vars[pm.Name] = pm.Width
			}
			for _, s := range act.Body {
				if err := c.checkStmt(s, sc, false); err != nil {
					return fmt.Errorf("%w (in action %s.%s)", err, ctl.Name, name)
				}
			}
			continue
		}
		tbl := ctl.Tables[name]
		sc := &scope{vars: map[string]int{}}
		for _, k := range tbl.Keys {
			if _, err := c.checkExpr(k.Expr, sc, 0, false); err != nil {
				return fmt.Errorf("%w (in table %s.%s key)", err, ctl.Name, name)
			}
		}
		for _, an := range tbl.Actions {
			if _, ok := ctl.Actions[an]; !ok && an != "NoAction" {
				return c.errf("table %s.%s references unknown action %q", ctl.Name, name, an)
			}
		}
		if tbl.DefaultAction != "" && tbl.DefaultAction != "NoAction" {
			if _, ok := ctl.Actions[tbl.DefaultAction]; !ok {
				return c.errf("table %s.%s default action %q unknown", ctl.Name, name, tbl.DefaultAction)
			}
		}
		for _, e := range tbl.ConstEntries {
			if len(e.KeyVals) != len(tbl.Keys) {
				return c.errf("table %s.%s entry has %d keys, want %d", ctl.Name, name, len(e.KeyVals), len(tbl.Keys))
			}
			if _, ok := ctl.Actions[e.Action]; !ok {
				return c.errf("table %s.%s entry uses unknown action %q", ctl.Name, name, e.Action)
			}
		}
	}
	sc := &scope{vars: map[string]int{}}
	for _, s := range ctl.Apply {
		if err := c.checkApplyStmt(s, ctl, sc); err != nil {
			return fmt.Errorf("%w (in control %s apply)", err, ctl.Name)
		}
	}
	return nil
}

func (c *checker) checkApplyStmt(s Stmt, ctl *Control, sc *scope) error {
	switch st := s.(type) {
	case *ApplyStmt:
		if _, ok := ctl.Tables[st.Table]; !ok {
			return c.errf("apply of unknown table %q", st.Table)
		}
	case *IfApplyStmt:
		if _, ok := ctl.Tables[st.Table]; !ok {
			return c.errf("apply of unknown table %q", st.Table)
		}
		for _, b := range st.OnHit {
			if err := c.checkApplyStmt(b, ctl, sc); err != nil {
				return err
			}
		}
		for _, b := range st.OnMis {
			if err := c.checkApplyStmt(b, ctl, sc); err != nil {
				return err
			}
		}
	case *SwitchApplyStmt:
		tbl, ok := ctl.Tables[st.Table]
		if !ok {
			return c.errf("switch on unknown table %q", st.Table)
		}
		actions := map[string]bool{}
		for _, a := range tbl.Actions {
			actions[a] = true
		}
		for _, cs := range st.Cases {
			if !actions[cs.Action] {
				return c.errf("switch case %q is not an action of table %q", cs.Action, st.Table)
			}
			for _, b := range cs.Body {
				if err := c.checkApplyStmt(b, ctl, sc); err != nil {
					return err
				}
			}
		}
		for _, b := range st.Default {
			if err := c.checkApplyStmt(b, ctl, sc); err != nil {
				return err
			}
		}
	case *IfStmt:
		if _, err := c.checkExpr(st.Cond, sc, -1, false); err != nil {
			return err
		}
		for _, b := range st.Then {
			if err := c.checkApplyStmt(b, ctl, sc); err != nil {
				return err
			}
		}
		for _, b := range st.Else {
			if err := c.checkApplyStmt(b, ctl, sc); err != nil {
				return err
			}
		}
	case *CallActionStmt:
		act, ok := ctl.Actions[st.Action]
		if !ok {
			return c.errf("call of unknown action %q", st.Action)
		}
		if len(st.Args) != len(act.Params) {
			return c.errf("action %q called with %d args, want %d", st.Action, len(st.Args), len(act.Params))
		}
		for i, a := range st.Args {
			if _, err := c.checkExpr(a, sc, act.Params[i].Width, false); err != nil {
				return err
			}
		}
	default:
		return c.checkStmt(s, sc, false)
	}
	return nil
}

func (c *checker) checkStmt(s Stmt, sc *scope, inParser bool) error {
	switch st := s.(type) {
	case *AssignStmt:
		lw, err := c.checkLValue(st.LHS, sc)
		if err != nil {
			return err
		}
		if _, err := c.checkExpr(st.RHS, sc, lw, inParser); err != nil {
			return err
		}
	case *ExtractStmt:
		if !inParser {
			return c.errf("extract outside parser")
		}
		inst := c.instances[st.Header]
		if inst == nil || !inst.IsHeader {
			return c.errf("extract of non-header %q", st.Header)
		}
	case *SetValidStmt:
		inst := c.instances[st.Header]
		if inst == nil || !inst.IsHeader {
			return c.errf("setValid/setInvalid on non-header %q", st.Header)
		}
	case *IfStmt:
		if _, err := c.checkExpr(st.Cond, sc, -1, inParser); err != nil {
			return err
		}
		for _, b := range st.Then {
			if err := c.checkStmt(b, sc, inParser); err != nil {
				return err
			}
		}
		for _, b := range st.Else {
			if err := c.checkStmt(b, sc, inParser); err != nil {
				return err
			}
		}
	case *RegReadStmt:
		reg, ok := c.prog.Registers[st.Reg]
		if !ok {
			return c.errf("read of unknown register %q", st.Reg)
		}
		lw, err := c.checkLValue(st.Dst, sc)
		if err != nil {
			return err
		}
		if lw != reg.Width {
			return c.errf("register %q read into width-%d lvalue (register width %d)", st.Reg, lw, reg.Width)
		}
		if _, err := c.checkExpr(st.Index, sc, 0, inParser); err != nil {
			return err
		}
	case *RegWriteStmt:
		reg, ok := c.prog.Registers[st.Reg]
		if !ok {
			return c.errf("write of unknown register %q", st.Reg)
		}
		if _, err := c.checkExpr(st.Index, sc, 0, inParser); err != nil {
			return err
		}
		if _, err := c.checkExpr(st.Val, sc, reg.Width, inParser); err != nil {
			return err
		}
	case *CountStmt:
		if _, ok := c.prog.Registers[st.Counter]; !ok {
			return c.errf("count on unknown counter %q", st.Counter)
		}
		if _, err := c.checkExpr(st.Index, sc, 0, inParser); err != nil {
			return err
		}
	case *ExecuteMeterStmt:
		if _, ok := c.prog.Registers[st.Meter]; !ok {
			return c.errf("execute_meter on unknown meter %q", st.Meter)
		}
		if _, err := c.checkExpr(st.Index, sc, 0, inParser); err != nil {
			return err
		}
		if _, err := c.checkLValue(st.Dst, sc); err != nil {
			return err
		}
	case *HashStmt:
		if _, err := c.checkLValue(st.Dst, sc); err != nil {
			return err
		}
		for _, e := range st.Inputs {
			if _, err := c.checkExpr(e, sc, 0, inParser); err != nil {
				return err
			}
		}
	case *PrimitiveStmt:
		switch st.Name {
		case "drop", "to_cpu", "recirculate", "resubmit", "mirror":
		default:
			return c.errf("unknown primitive %q", st.Name)
		}
	case *EmitStmt:
		inst := c.instances[st.Header]
		if inst == nil || !inst.IsHeader {
			return c.errf("emit of non-header %q", st.Header)
		}
	case *UpdateChecksumStmt:
		if _, err := c.checkLValue(st.Dst, sc); err != nil {
			return err
		}
		for _, e := range st.Inputs {
			if _, err := c.checkExpr(e, sc, 0, false); err != nil {
				return err
			}
		}
	default:
		return c.errf("statement %T not allowed here", s)
	}
	return nil
}

func (c *checker) checkLValue(e Expr, sc *scope) (int, error) {
	switch x := e.(type) {
	case *FieldRef:
		return c.resolveFieldRef(x)
	case *VarRef:
		if w, ok := sc.vars[x.Name]; ok {
			x.Width = w
			return w, nil
		}
		return 0, c.errf("assignment to unknown variable %q", x.Name)
	case *SliceExpr:
		if _, err := c.checkLValue(x.X, sc); err != nil {
			return 0, err
		}
		return x.Hi - x.Lo + 1, nil
	}
	return 0, c.errf("expression %q is not assignable", e.String())
}

func (c *checker) resolveFieldRef(x *FieldRef) (int, error) {
	ht := c.instanceType(x.Instance)
	if ht == nil {
		return 0, c.errf("unknown instance %q", x.Instance)
	}
	f := ht.Field(x.Field)
	if f == nil {
		return 0, c.errf("instance %q has no field %q", x.Instance, x.Field)
	}
	x.Width = f.Width
	return f.Width, nil
}

// checkExpr verifies an expression. want is the expected width: 0 means any
// bit-vector width, -1 means boolean. It returns the expression's width
// (-1 for boolean).
func (c *checker) checkExpr(e Expr, sc *scope, want int, inParser bool) (int, error) {
	w, err := c.exprWidth(e, sc, want, inParser)
	if err != nil {
		return 0, err
	}
	if want == -1 && w != -1 {
		// Numeric used as boolean: allowed only for comparisons; reject.
		return 0, c.errf("expression %q is not boolean", e.String())
	}
	if want > 0 && w > 0 && w != want {
		return 0, c.errf("expression %q has width %d, want %d", e.String(), w, want)
	}
	return w, nil
}

func (c *checker) exprWidth(e Expr, sc *scope, want int, inParser bool) (int, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.Width == 0 && want > 0 {
			x.Width = want
		}
		if x.Width == 0 {
			// Unconstrained literal; keep width 0, encoder will coerce.
			return 0, nil
		}
		return x.Width, nil
	case *FieldRef:
		return c.resolveFieldRef(x)
	case *VarRef:
		if w, ok := sc.vars[x.Name]; ok {
			x.Width = w
			return w, nil
		}
		if v, ok := c.prog.Consts[x.Name]; ok {
			_ = v
			if want > 0 {
				x.Width = want
			}
			return x.Width, nil
		}
		return 0, c.errf("unknown identifier %q", x.Name)
	case *IsValidExpr:
		inst := c.instances[x.Instance]
		if inst == nil || !inst.IsHeader {
			return 0, c.errf("isValid on non-header %q", x.Instance)
		}
		return -1, nil
	case *UnaryExpr:
		switch x.Op {
		case "!":
			if _, err := c.checkExpr(x.X, sc, -1, inParser); err != nil {
				return 0, err
			}
			return -1, nil
		default: // ~ and -
			return c.exprWidth(x.X, sc, want, inParser)
		}
	case *BinaryExpr:
		switch x.Op {
		case "&&", "||":
			if _, err := c.checkExpr(x.X, sc, -1, inParser); err != nil {
				return 0, err
			}
			if _, err := c.checkExpr(x.Y, sc, -1, inParser); err != nil {
				return 0, err
			}
			return -1, nil
		case "==", "!=", "<", ">", "<=", ">=":
			wx, err := c.exprWidth(x.X, sc, 0, inParser)
			if err != nil {
				return 0, err
			}
			wy, err := c.exprWidth(x.Y, sc, wx, inParser)
			if err != nil {
				return 0, err
			}
			if wx == 0 {
				if _, err := c.exprWidth(x.X, sc, wy, inParser); err != nil {
					return 0, err
				}
			} else if wy != 0 && wx != wy {
				return 0, c.errf("width mismatch in %q (%d vs %d)", x.String(), wx, wy)
			}
			return -1, nil
		default: // arithmetic/bitwise/shift
			wx, err := c.exprWidth(x.X, sc, want, inParser)
			if err != nil {
				return 0, err
			}
			wantY := wx
			if x.Op == "<<" || x.Op == ">>" {
				wantY = 0 // shift amount width may differ
			}
			wy, err := c.exprWidth(x.Y, sc, wantY, inParser)
			if err != nil {
				return 0, err
			}
			if wx == 0 && wy != 0 && x.Op != "<<" && x.Op != ">>" {
				wx = wy
				if _, err := c.exprWidth(x.X, sc, wx, inParser); err != nil {
					return 0, err
				}
			}
			return wx, nil
		}
	case *CastExpr:
		if _, err := c.exprWidth(x.X, sc, 0, inParser); err != nil {
			return 0, err
		}
		return x.Width, nil
	case *LookaheadExpr:
		if !inParser {
			return 0, c.errf("lookahead outside parser")
		}
		return x.Width, nil
	case *SliceExpr:
		wx, err := c.exprWidth(x.X, sc, 0, inParser)
		if err != nil {
			return 0, err
		}
		if x.Hi < x.Lo || (wx > 0 && x.Hi >= wx) {
			return 0, c.errf("slice [%d:%d] out of range for width %d", x.Hi, x.Lo, wx)
		}
		return x.Hi - x.Lo + 1, nil
	}
	return 0, c.errf("unsupported expression %T", e)
}
