package p4

import "testing"

// FuzzParse exercises the lexer/parser/type-checker for crash resistance:
// any input must either parse or return an error — never panic.
func FuzzParse(f *testing.F) {
	f.Add(miniProgram)
	f.Add("header h_t { bit<8> a; } h_t h;")
	f.Add("parser P { state start { transition accept; } }")
	f.Add("control C { apply { } }")
	f.Add("table t { key = { } }")
	f.Add("pipeline p { parser = P; }")
	f.Add("register<bit<8>>(4) r;")
	f.Add("const bit<16> X = 0x0800;")
	f.Add("header h { bit<1024> giant; }")
	f.Add("x = 10.0.0.1 &&& 0xff;")
	f.Add("/* unterminated")
	f.Add(`"unterminated`)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseAndCheck("fuzz", src)
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
	})
}
