package p4

import "fmt"

// Program is a parsed and type-checked P4lite program.
type Program struct {
	Name      string
	Headers   map[string]*HeaderType
	Structs   map[string]*HeaderType // metadata structs share the shape
	Instances []*Instance            // declaration order
	Parsers   map[string]*Parser
	Controls  map[string]*Control
	Deparsers map[string]*Deparser
	Registers map[string]*Register
	Pipelines map[string]*Pipeline
	Consts    map[string]uint64

	LoC int // source lines, for benchmark reporting
}

// Instance is a named header or metadata-struct instance.
type Instance struct {
	Name     string
	TypeName string
	IsHeader bool // headers have validity bits; structs are always-valid
}

// HeaderType describes a header or struct layout.
type HeaderType struct {
	Name   string
	Fields []*Field
}

// Field returns the named field or nil.
func (h *HeaderType) Field(name string) *Field {
	for _, f := range h.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Width returns the total bit width of the header.
func (h *HeaderType) Width() int {
	w := 0
	for _, f := range h.Fields {
		w += f.Width
	}
	return w
}

// Field is a single header/struct field.
type Field struct {
	Name  string
	Width int
}

// Register is a stateful array (register, counter or meter — App. B.4
// groups all three). Per §4.3 Aquila scalarizes them.
type Register struct {
	Name  string
	Width int
	Size  int
	// Kind is "register", "counter" or "meter".
	Kind string
}

// Parser is a parser state machine.
type Parser struct {
	Name   string
	States map[string]*State
	Start  string // name of the start state
	Order  []string
}

// State is one parser state.
type State struct {
	Name  string
	Stmts []Stmt
	Trans *Transition
}

// TransKind distinguishes direct and select transitions.
type TransKind int

// Transition kinds.
const (
	TransDirect TransKind = iota
	TransSelect
)

// Transition is a parser state transition.
type Transition struct {
	Kind   TransKind
	Target string // direct: target state (or "accept"/"reject")
	Expr   Expr   // select scrutinee
	Cases  []*SelectCase
}

// SelectCase is one arm of a select transition. A default arm has
// IsDefault set.
type SelectCase struct {
	IsDefault bool
	Val       uint64
	Mask      uint64 // 0 means exact match
	HasMask   bool
	Target    string
}

// Control is a match-action control block (ingress or egress program).
type Control struct {
	Name    string
	Actions map[string]*Action
	Tables  map[string]*Table
	Apply   []Stmt
	Order   []string // action/table declaration order
}

// Action is a parameterized action.
type Action struct {
	Name   string
	Params []*Param
	Body   []Stmt
	// DefaultOnly mirrors P4's @defaultonly annotation: the action may only
	// be used as a table default, never in installed entries (§7.2).
	DefaultOnly bool
}

// Param is an action parameter.
type Param struct {
	Name  string
	Width int
}

// MatchKind is a table key match kind.
type MatchKind int

// Match kinds.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
	MatchRange
)

func (m MatchKind) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	case MatchRange:
		return "range"
	}
	return "?"
}

// TableKey is one key component of a table.
type TableKey struct {
	Expr Expr
	Kind MatchKind
}

// Table is a match-action table.
type Table struct {
	Name          string
	Control       string
	Keys          []*TableKey
	Actions       []string
	DefaultAction string
	DefaultArgs   []Expr
	Size          int
	ConstEntries  []*ConstEntry
	// DefaultOnly marks actions annotated @defaultonly: they may only run
	// as the table default, never from installed entries. Ignoring this
	// annotation was a real Aquila implementation bug (§7.2).
	DefaultOnly map[string]bool
}

// ConstEntry is an inline (const) table entry.
type ConstEntry struct {
	KeyVals  []uint64
	KeyMasks []uint64 // per key; for exact keys the mask is all-ones
	Action   string
	Args     []uint64
	Priority int
}

// Deparser emits headers in order and applies checksum updates.
type Deparser struct {
	Name  string
	Stmts []Stmt // Emit and UpdateChecksum statements
}

// Pipeline groups the components callable from an LPI program block.
type Pipeline struct {
	Name     string
	Parser   string // optional
	Control  string // optional
	Deparser string // optional
	Recirc   int    // max recirculations allowed (bounded, §4.3)
}

// ---- Expressions ----

// Expr is a P4lite expression.
type Expr interface {
	exprNode()
	String() string
}

// IntLit is an integer literal; Width 0 means width is inferred.
type IntLit struct {
	Val   uint64
	Width int
}

// FieldRef references instance.field (header field or metadata field).
type FieldRef struct {
	Instance string
	Field    string
	Width    int // filled by typecheck
}

// VarRef references an action parameter or local/ghost variable.
type VarRef struct {
	Name  string
	Width int
}

// IsValidExpr is hdr.isValid().
type IsValidExpr struct {
	Instance string
}

// UnaryExpr applies !, ~ or - to X.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   string
	X, Y Expr
}

// CastExpr is (bit<W>) X — zero-extend or truncate.
type CastExpr struct {
	Width int
	X     Expr
}

// LookaheadExpr is pkt.lookahead<bit<W>>() in a parser state.
type LookaheadExpr struct {
	Width int
}

// SliceExpr is X[hi:lo].
type SliceExpr struct {
	X      Expr
	Hi, Lo int
}

// ExternExpr carries an externally-computed value through an Expr
// position; analysis tools (e.g. the self-validator's interpreter) use it
// to feed already-evaluated terms through assignment helpers.
type ExternExpr struct {
	X interface{}
}

func (*IntLit) exprNode()        {}
func (*FieldRef) exprNode()      {}
func (*VarRef) exprNode()        {}
func (*IsValidExpr) exprNode()   {}
func (*UnaryExpr) exprNode()     {}
func (*BinaryExpr) exprNode()    {}
func (*CastExpr) exprNode()      {}
func (*LookaheadExpr) exprNode() {}
func (*SliceExpr) exprNode()     {}
func (*ExternExpr) exprNode()    {}

func (e *IntLit) String() string   { return fmt.Sprintf("%d", e.Val) }
func (e *FieldRef) String() string { return e.Instance + "." + e.Field }
func (e *VarRef) String() string   { return e.Name }
func (e *IsValidExpr) String() string {
	return e.Instance + ".isValid()"
}
func (e *UnaryExpr) String() string { return e.Op + e.X.String() }
func (e *BinaryExpr) String() string {
	return "(" + e.X.String() + " " + e.Op + " " + e.Y.String() + ")"
}
func (e *CastExpr) String() string {
	return fmt.Sprintf("(bit<%d>)%s", e.Width, e.X.String())
}
func (e *LookaheadExpr) String() string {
	return fmt.Sprintf("lookahead<bit<%d>>()", e.Width)
}
func (e *SliceExpr) String() string {
	return fmt.Sprintf("%s[%d:%d]", e.X.String(), e.Hi, e.Lo)
}
func (e *ExternExpr) String() string { return "<extern>" }

// ---- Statements ----

// Stmt is a P4lite statement.
type Stmt interface {
	stmtNode()
}

// AssignStmt assigns RHS to LHS (a FieldRef or VarRef).
type AssignStmt struct {
	LHS Expr
	RHS Expr
	// Line is the source line, used by bug localization reports.
	Line int
}

// ExtractStmt extracts a header in a parser state.
type ExtractStmt struct {
	Header string
	Line   int
}

// SetValidStmt sets or clears a header's validity.
type SetValidStmt struct {
	Header string
	Valid  bool
	Line   int
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// ApplyStmt applies a table.
type ApplyStmt struct {
	Table string
	Line  int
}

// IfApplyStmt is `if (t.apply().hit) {...} else {...}`.
type IfApplyStmt struct {
	Table string
	OnHit []Stmt
	OnMis []Stmt
	Neg   bool // true for .miss
	Line  int
}

// SwitchApplyStmt is `switch (t.apply().action_run) { act: {...} ... }`.
type SwitchApplyStmt struct {
	Table   string
	Cases   []*SwitchCase
	Default []Stmt
	Line    int
}

// SwitchCase is one arm of a SwitchApplyStmt.
type SwitchCase struct {
	Action string
	Body   []Stmt
}

// CallActionStmt invokes an action directly.
type CallActionStmt struct {
	Action string
	Args   []Expr
	Line   int
}

// RegReadStmt is reg.read(dst, idx).
type RegReadStmt struct {
	Reg   string
	Dst   Expr // lvalue
	Index Expr
	Line  int
}

// RegWriteStmt is reg.write(idx, val).
type RegWriteStmt struct {
	Reg   string
	Index Expr
	Val   Expr
	Line  int
}

// CountStmt is counter.count(idx): increment the (scalarized) counter.
type CountStmt struct {
	Counter string
	Index   Expr
	Line    int
}

// ExecuteMeterStmt is meter.execute_meter(idx, dst): the meter colour is
// environment-dependent, so dst is havoced like a hash output (§4.3).
type ExecuteMeterStmt struct {
	Meter string
	Index Expr
	Dst   Expr
	Line  int
}

// HashStmt is hash(dst, inputs...) — output is havoced per §4.3.
type HashStmt struct {
	Dst    Expr
	Inputs []Expr
	Line   int
}

// PrimitiveStmt is a builtin: drop(), to_cpu(), recirculate(), resubmit(),
// mirror().
type PrimitiveStmt struct {
	Name string
	Line int
}

// EmitStmt appends a header to the output packet in the deparser.
type EmitStmt struct {
	Header string
	Line   int
}

// UpdateChecksumStmt recomputes Dst from the inputs in the deparser.
type UpdateChecksumStmt struct {
	Dst    Expr
	Inputs []Expr
	Line   int
}

func (*AssignStmt) stmtNode()         {}
func (*ExtractStmt) stmtNode()        {}
func (*SetValidStmt) stmtNode()       {}
func (*IfStmt) stmtNode()             {}
func (*ApplyStmt) stmtNode()          {}
func (*IfApplyStmt) stmtNode()        {}
func (*SwitchApplyStmt) stmtNode()    {}
func (*CallActionStmt) stmtNode()     {}
func (*RegReadStmt) stmtNode()        {}
func (*RegWriteStmt) stmtNode()       {}
func (*CountStmt) stmtNode()          {}
func (*ExecuteMeterStmt) stmtNode()   {}
func (*HashStmt) stmtNode()           {}
func (*PrimitiveStmt) stmtNode()      {}
func (*EmitStmt) stmtNode()           {}
func (*UpdateChecksumStmt) stmtNode() {}

// StdMetaFields are the implicitly-declared standard metadata fields
// (instance name "std_meta").
var StdMetaFields = []*Field{
	{Name: "ingress_port", Width: 9},
	{Name: "egress_spec", Width: 9},
	{Name: "egress_port", Width: 9},
	{Name: "drop", Width: 1},
	{Name: "to_cpu", Width: 1},
	{Name: "recirc", Width: 1},
	{Name: "resubmit", Width: 1},
	{Name: "mirror", Width: 1},
	{Name: "recirc_count", Width: 8},
}

// StdMetaInstance is the name of the implicit standard-metadata instance.
const StdMetaInstance = "std_meta"
