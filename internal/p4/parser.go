package p4

import (
	"fmt"
	"strings"
)

// parser is the recursive-descent parser state.
type parser struct {
	toks []Token
	pos  int
	loc  int
}

// Parse parses P4lite source into an unchecked Program. Callers normally
// use ParseAndCheck.
func Parse(name, src string) (*Program, error) {
	toks, err := lexAllSplit(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, loc: countLoC(src)}
	prog := &Program{
		Name:      name,
		Headers:   map[string]*HeaderType{},
		Structs:   map[string]*HeaderType{},
		Parsers:   map[string]*Parser{},
		Controls:  map[string]*Control{},
		Deparsers: map[string]*Deparser{},
		Registers: map[string]*Register{},
		Pipelines: map[string]*Pipeline{},
		Consts:    map[string]uint64{},
		LoC:       p.loc,
	}
	for !p.at(TokEOF, "") {
		if err := p.parseDecl(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// ParseAndCheck parses and type-checks P4lite source.
func ParseAndCheck(name, src string) (*Program, error) {
	prog, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func countLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "//") {
			n++
		}
	}
	return n
}

// lexAllSplit tokenizes and splits ">>" into two ">" when it follows a type
// context; we conservatively split all ">>" tokens and re-fuse them in the
// expression parser, which is simpler than tracking type contexts.
func lexAllSplit(src string) ([]Token, error) {
	raw, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	var out []Token
	for _, t := range raw {
		if t.Kind == TokPunct && t.Text == ">>" {
			out = append(out,
				Token{Kind: TokPunct, Text: ">", Line: t.Line, Col: t.Col},
				Token{Kind: TokPunct, Text: ">", Line: t.Line, Col: t.Col + 1})
			continue
		}
		out = append(out, t)
	}
	return out, nil
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, fmt.Errorf("p4: %d:%d: expected %q, got %q", t.Line, t.Col, want, t.String())
	}
	p.pos++
	return t, nil
}

func (p *parser) expectIdent() (Token, error) { return p.expect(TokIdent, "") }

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	return fmt.Errorf("p4: %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

// parseBitType parses `bit < INT >` and returns the width.
func (p *parser) parseBitType() (int, error) {
	if _, err := p.expect(TokIdent, "bit"); err != nil {
		return 0, err
	}
	if _, err := p.expect(TokPunct, "<"); err != nil {
		return 0, err
	}
	w, err := p.expect(TokInt, "")
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(TokPunct, ">"); err != nil {
		return 0, err
	}
	if w.Val == 0 || w.Val > 1024 {
		return 0, p.errf("unsupported bit width %d", w.Val)
	}
	return int(w.Val), nil
}

func (p *parser) parseDecl(prog *Program) error {
	t := p.cur()
	if t.Kind != TokIdent {
		return p.errf("expected declaration, got %q", t.String())
	}
	switch t.Text {
	case "header":
		return p.parseHeader(prog)
	case "struct":
		return p.parseStruct(prog)
	case "const":
		return p.parseConst(prog)
	case "parser":
		return p.parseParser(prog)
	case "control":
		return p.parseControl(prog)
	case "deparser":
		return p.parseDeparser(prog)
	case "register", "counter", "meter":
		return p.parseRegister(prog, nil)
	case "pipeline":
		return p.parsePipeline(prog)
	default:
		// Instance declaration: TypeName instName ;
		return p.parseInstance(prog)
	}
}

func (p *parser) parseFields() ([]*Field, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var fields []*Field
	for !p.accept(TokPunct, "}") {
		w, err := p.parseBitType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		fields = append(fields, &Field{Name: name.Text, Width: w})
	}
	return fields, nil
}

func (p *parser) parseHeader(prog *Program) error {
	p.pos++ // header
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	fields, err := p.parseFields()
	if err != nil {
		return err
	}
	prog.Headers[name.Text] = &HeaderType{Name: name.Text, Fields: fields}
	return nil
}

func (p *parser) parseStruct(prog *Program) error {
	p.pos++ // struct
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	fields, err := p.parseFields()
	if err != nil {
		return err
	}
	prog.Structs[name.Text] = &HeaderType{Name: name.Text, Fields: fields}
	return nil
}

func (p *parser) parseConst(prog *Program) error {
	p.pos++ // const
	if _, err := p.parseBitType(); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, "="); err != nil {
		return err
	}
	v, err := p.expect(TokInt, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return err
	}
	prog.Consts[name.Text] = v.Val
	return nil
}

func (p *parser) parseInstance(prog *Program) error {
	typ, err := p.expectIdent()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return err
	}
	prog.Instances = append(prog.Instances, &Instance{Name: name.Text, TypeName: typ.Text})
	return nil
}

func (p *parser) parseRegister(prog *Program, ctl *Control) error {
	kind := p.cur().Text // register | counter | meter
	p.pos++
	if _, err := p.expect(TokPunct, "<"); err != nil {
		return err
	}
	w, err := p.parseBitType()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, ">"); err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return err
	}
	size, err := p.expect(TokInt, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return err
	}
	prog.Registers[name.Text] = &Register{Name: name.Text, Width: w, Size: int(size.Val), Kind: kind}
	return nil
}

func (p *parser) parsePipeline(prog *Program) error {
	p.pos++ // pipeline
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return err
	}
	pl := &Pipeline{Name: name.Text}
	for !p.accept(TokPunct, "}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		if _, err := p.expect(TokPunct, "="); err != nil {
			return err
		}
		switch key.Text {
		case "parser":
			v, err := p.expectIdent()
			if err != nil {
				return err
			}
			pl.Parser = v.Text
		case "control", "ingress", "egress":
			v, err := p.expectIdent()
			if err != nil {
				return err
			}
			pl.Control = v.Text
		case "deparser":
			v, err := p.expectIdent()
			if err != nil {
				return err
			}
			pl.Deparser = v.Text
		case "recirc":
			v, err := p.expect(TokInt, "")
			if err != nil {
				return err
			}
			pl.Recirc = int(v.Val)
		default:
			return p.errf("unknown pipeline property %q", key.Text)
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return err
		}
	}
	prog.Pipelines[name.Text] = pl
	return nil
}

// ---- parser (state machine) declarations ----

func (p *parser) parseParser(prog *Program) error {
	p.pos++ // parser
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return err
	}
	pr := &Parser{Name: name.Text, States: map[string]*State{}}
	for !p.accept(TokPunct, "}") {
		if _, err := p.expect(TokIdent, "state"); err != nil {
			return err
		}
		sname, err := p.expectIdent()
		if err != nil {
			return err
		}
		st, err := p.parseState(sname.Text)
		if err != nil {
			return err
		}
		if _, dup := pr.States[st.Name]; dup {
			return p.errf("duplicate state %q", st.Name)
		}
		pr.States[st.Name] = st
		pr.Order = append(pr.Order, st.Name)
		if pr.Start == "" {
			pr.Start = st.Name
		}
		if st.Name == "start" {
			pr.Start = "start"
		}
	}
	prog.Parsers[name.Text] = pr
	return nil
}

func (p *parser) parseState(name string) (*State, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	st := &State{Name: name}
	for {
		if p.at(TokIdent, "transition") {
			break
		}
		if p.at(TokPunct, "}") {
			break
		}
		s, err := p.parseStmt(stmtCtxParser)
		if err != nil {
			return nil, err
		}
		st.Stmts = append(st.Stmts, s)
	}
	if p.accept(TokIdent, "transition") {
		tr, err := p.parseTransition()
		if err != nil {
			return nil, err
		}
		st.Trans = tr
	} else {
		st.Trans = &Transition{Kind: TransDirect, Target: "accept"}
	}
	if _, err := p.expect(TokPunct, "}"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseTransition() (*Transition, error) {
	if p.accept(TokIdent, "select") {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "{"); err != nil {
			return nil, err
		}
		tr := &Transition{Kind: TransSelect, Expr: e}
		for !p.accept(TokPunct, "}") {
			sc := &SelectCase{}
			switch {
			case p.accept(TokIdent, "default"), p.accept(TokIdent, "_"):
				sc.IsDefault = true
			default:
				v, err := p.expect(TokInt, "")
				if err != nil {
					return nil, err
				}
				sc.Val = v.Val
				if p.accept(TokPunct, "&&&") {
					m, err := p.expect(TokInt, "")
					if err != nil {
						return nil, err
					}
					sc.Mask = m.Val
					sc.HasMask = true
				}
			}
			if _, err := p.expect(TokPunct, ":"); err != nil {
				return nil, err
			}
			tgt, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			sc.Target = tgt.Text
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
			tr.Cases = append(tr.Cases, sc)
		}
		return tr, nil
	}
	tgt, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return &Transition{Kind: TransDirect, Target: tgt.Text}, nil
}

// ---- control declarations ----

func (p *parser) parseControl(prog *Program) error {
	p.pos++ // control
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	// Optional parameter list, ignored: control Foo(md) { ... }
	if p.accept(TokPunct, "(") {
		for !p.accept(TokPunct, ")") {
			if p.at(TokEOF, "") {
				return p.errf("unterminated control parameter list")
			}
			p.pos++
		}
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return err
	}
	ctl := &Control{Name: name.Text, Actions: map[string]*Action{}, Tables: map[string]*Table{}}
	for !p.accept(TokPunct, "}") {
		switch {
		case p.at(TokIdent, "action"):
			if err := p.parseAction(ctl); err != nil {
				return err
			}
		case p.at(TokIdent, "table"):
			if err := p.parseTable(ctl); err != nil {
				return err
			}
		case p.at(TokIdent, "register"), p.at(TokIdent, "counter"), p.at(TokIdent, "meter"):
			if err := p.parseRegister(prog, ctl); err != nil {
				return err
			}
		case p.at(TokIdent, "apply"):
			p.pos++
			body, err := p.parseBlock(stmtCtxControl)
			if err != nil {
				return err
			}
			ctl.Apply = body
		default:
			return p.errf("unexpected token %q in control", p.cur().String())
		}
	}
	prog.Controls[name.Text] = ctl
	return nil
}

func (p *parser) parseAction(ctl *Control) error {
	p.pos++ // action
	defaultOnly := false
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	act := &Action{Name: name.Text, DefaultOnly: defaultOnly}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return err
	}
	for !p.accept(TokPunct, ")") {
		if len(act.Params) > 0 {
			if _, err := p.expect(TokPunct, ","); err != nil {
				return err
			}
		}
		w, err := p.parseBitType()
		if err != nil {
			return err
		}
		pn, err := p.expectIdent()
		if err != nil {
			return err
		}
		act.Params = append(act.Params, &Param{Name: pn.Text, Width: w})
	}
	body, err := p.parseBlock(stmtCtxControl)
	if err != nil {
		return err
	}
	act.Body = body
	if _, dup := ctl.Actions[act.Name]; dup {
		return p.errf("duplicate action %q", act.Name)
	}
	ctl.Actions[act.Name] = act
	ctl.Order = append(ctl.Order, act.Name)
	return nil
}

func (p *parser) parseTable(ctl *Control) error {
	p.pos++ // table
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	// Optional empty parameter list: table t() { ... }
	if p.accept(TokPunct, "(") {
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return err
		}
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return err
	}
	tbl := &Table{Name: name.Text, Control: ctl.Name, Size: 1024, DefaultOnly: map[string]bool{}}
	for !p.accept(TokPunct, "}") {
		prop, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch prop.Text {
		case "key":
			if _, err := p.expect(TokPunct, "="); err != nil {
				return err
			}
			if _, err := p.expect(TokPunct, "{"); err != nil {
				return err
			}
			for !p.accept(TokPunct, "}") {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				if _, err := p.expect(TokPunct, ":"); err != nil {
					return err
				}
				mk, err := p.expectIdent()
				if err != nil {
					return err
				}
				var kind MatchKind
				switch mk.Text {
				case "exact":
					kind = MatchExact
				case "lpm":
					kind = MatchLPM
				case "ternary":
					kind = MatchTernary
				case "range":
					kind = MatchRange
				default:
					return p.errf("unknown match kind %q", mk.Text)
				}
				if _, err := p.expect(TokPunct, ";"); err != nil {
					return err
				}
				tbl.Keys = append(tbl.Keys, &TableKey{Expr: e, Kind: kind})
			}
		case "actions":
			if _, err := p.expect(TokPunct, "="); err != nil {
				return err
			}
			if _, err := p.expect(TokPunct, "{"); err != nil {
				return err
			}
			for !p.accept(TokPunct, "}") {
				defaultOnly := p.accept(TokIdent, "@defaultonly")
				an, err := p.expectIdent()
				if err != nil {
					return err
				}
				if _, err := p.expect(TokPunct, ";"); err != nil {
					return err
				}
				tbl.Actions = append(tbl.Actions, an.Text)
				if defaultOnly {
					tbl.DefaultOnly[an.Text] = true
				}
			}
		case "default_action":
			if _, err := p.expect(TokPunct, "="); err != nil {
				return err
			}
			an, err := p.expectIdent()
			if err != nil {
				return err
			}
			tbl.DefaultAction = an.Text
			if p.accept(TokPunct, "(") {
				for !p.accept(TokPunct, ")") {
					if len(tbl.DefaultArgs) > 0 {
						if _, err := p.expect(TokPunct, ","); err != nil {
							return err
						}
					}
					e, err := p.parseExpr()
					if err != nil {
						return err
					}
					tbl.DefaultArgs = append(tbl.DefaultArgs, e)
				}
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return err
			}
		case "size":
			if _, err := p.expect(TokPunct, "="); err != nil {
				return err
			}
			v, err := p.expect(TokInt, "")
			if err != nil {
				return err
			}
			tbl.Size = int(v.Val)
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return err
			}
		case "entries":
			if _, err := p.expect(TokPunct, "="); err != nil {
				return err
			}
			if _, err := p.expect(TokPunct, "{"); err != nil {
				return err
			}
			for !p.accept(TokPunct, "}") {
				entry, err := p.parseConstEntry()
				if err != nil {
					return err
				}
				entry.Priority = len(tbl.ConstEntries)
				tbl.ConstEntries = append(tbl.ConstEntries, entry)
			}
		default:
			return p.errf("unknown table property %q", prop.Text)
		}
	}
	if _, dup := ctl.Tables[tbl.Name]; dup {
		return p.errf("duplicate table %q", tbl.Name)
	}
	ctl.Tables[tbl.Name] = tbl
	ctl.Order = append(ctl.Order, tbl.Name)
	return nil
}

// parseConstEntry parses `(k1, k2 &&& m, _) : action(arg, ...);`.
func (p *parser) parseConstEntry() (*ConstEntry, error) {
	e := &ConstEntry{}
	parseKey := func() error {
		if p.accept(TokIdent, "_") {
			e.KeyVals = append(e.KeyVals, 0)
			e.KeyMasks = append(e.KeyMasks, 0)
			return nil
		}
		v, err := p.expect(TokInt, "")
		if err != nil {
			return err
		}
		mask := ^uint64(0)
		if p.accept(TokPunct, "&&&") {
			m, err := p.expect(TokInt, "")
			if err != nil {
				return err
			}
			mask = m.Val
		}
		e.KeyVals = append(e.KeyVals, v.Val)
		e.KeyMasks = append(e.KeyMasks, mask)
		return nil
	}
	if p.accept(TokPunct, "(") {
		for !p.accept(TokPunct, ")") {
			if len(e.KeyVals) > 0 {
				if _, err := p.expect(TokPunct, ","); err != nil {
					return nil, err
				}
			}
			if err := parseKey(); err != nil {
				return nil, err
			}
		}
	} else if err := parseKey(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ":"); err != nil {
		return nil, err
	}
	an, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	e.Action = an.Text
	if p.accept(TokPunct, "(") {
		for !p.accept(TokPunct, ")") {
			if len(e.Args) > 0 {
				if _, err := p.expect(TokPunct, ","); err != nil {
					return nil, err
				}
			}
			v, err := p.expect(TokInt, "")
			if err != nil {
				return nil, err
			}
			e.Args = append(e.Args, v.Val)
		}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return e, nil
}

// ---- deparser ----

func (p *parser) parseDeparser(prog *Program) error {
	p.pos++ // deparser
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	body, err := p.parseBlock(stmtCtxDeparser)
	if err != nil {
		return err
	}
	prog.Deparsers[name.Text] = &Deparser{Name: name.Text, Stmts: body}
	return nil
}

// ---- statements ----

type stmtCtx int

const (
	stmtCtxControl stmtCtx = iota
	stmtCtxParser
	stmtCtxDeparser
)

func (p *parser) parseBlock(ctx stmtCtx) ([]Stmt, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept(TokPunct, "}") {
		s, err := p.parseStmt(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt(ctx stmtCtx) (Stmt, error) {
	t := p.cur()
	line := t.Line
	if t.Kind != TokIdent {
		return nil, p.errf("expected statement, got %q", t.String())
	}
	switch {
	case t.Text == "if":
		return p.parseIf(ctx)
	case t.Text == "switch":
		return p.parseSwitchApply(ctx)
	case t.Text == "extract" || strings.HasSuffix(t.Text, ".extract"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		h, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExtractStmt{Header: h.Text, Line: line}, nil
	case t.Text == "emit" || strings.HasSuffix(t.Text, ".emit"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		h, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &EmitStmt{Header: h.Text, Line: line}, nil
	case t.Text == "update_checksum":
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		dst, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var ins []Expr
		for p.accept(TokPunct, ",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ins = append(ins, e)
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &UpdateChecksumStmt{Dst: dst, Inputs: ins, Line: line}, nil
	case t.Text == "hash":
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		dst, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var ins []Expr
		for p.accept(TokPunct, ",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ins = append(ins, e)
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &HashStmt{Dst: dst, Inputs: ins, Line: line}, nil
	case t.Text == "drop" || t.Text == "mark_to_drop" || t.Text == "to_cpu" ||
		t.Text == "recirculate" || t.Text == "resubmit" || t.Text == "mirror":
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		name := t.Text
		if name == "mark_to_drop" {
			name = "drop"
		}
		return &PrimitiveStmt{Name: name, Line: line}, nil
	case strings.HasSuffix(t.Text, ".setValid"), strings.HasSuffix(t.Text, ".setInvalid"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		hdr := t.Text[:strings.LastIndex(t.Text, ".")]
		return &SetValidStmt{Header: hdr, Valid: strings.HasSuffix(t.Text, ".setValid"), Line: line}, nil
	case strings.HasSuffix(t.Text, ".apply"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		tbl := t.Text[:strings.LastIndex(t.Text, ".")]
		return &ApplyStmt{Table: tbl, Line: line}, nil
	case strings.HasSuffix(t.Text, ".count"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		ctr := t.Text[:strings.LastIndex(t.Text, ".")]
		return &CountStmt{Counter: ctr, Index: idx, Line: line}, nil
	case strings.HasSuffix(t.Text, ".execute_meter"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
		dst, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		mtr := t.Text[:strings.LastIndex(t.Text, ".")]
		return &ExecuteMeterStmt{Meter: mtr, Index: idx, Dst: dst, Line: line}, nil
	case strings.HasSuffix(t.Text, ".read"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		dst, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		reg := t.Text[:strings.LastIndex(t.Text, ".")]
		return &RegReadStmt{Reg: reg, Dst: dst, Index: idx, Line: line}, nil
	case strings.HasSuffix(t.Text, ".write"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		reg := t.Text[:strings.LastIndex(t.Text, ".")]
		return &RegWriteStmt{Reg: reg, Index: idx, Val: val, Line: line}, nil
	}
	// Either an action call `a1(args);` or an assignment `lhs = expr;`.
	if p.peek().Kind == TokPunct && p.peek().Text == "(" {
		name := t.Text
		p.pos += 2 // ident (
		var args []Expr
		for !p.accept(TokPunct, ")") {
			if len(args) > 0 {
				if _, err := p.expect(TokPunct, ","); err != nil {
					return nil, err
				}
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &CallActionStmt{Action: name, Args: args, Line: line}, nil
	}
	// Assignment.
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lhs, RHS: rhs, Line: line}, nil
}

func (p *parser) parseIf(ctx stmtCtx) (Stmt, error) {
	line := p.cur().Line
	p.pos++ // if
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	// Special form: if (t.apply().hit) / if (t.apply().miss) / if (!t.apply().hit)
	neg := false
	save := p.pos
	if p.accept(TokPunct, "!") {
		neg = true
	}
	if t := p.cur(); t.Kind == TokIdent && strings.HasSuffix(t.Text, ".apply") {
		tbl := t.Text[:strings.LastIndex(t.Text, ".")]
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "."); err != nil {
			return nil, err
		}
		kind, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if kind.Text != "hit" && kind.Text != "miss" {
			return nil, p.errf("expected .hit or .miss, got %q", kind.Text)
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock(ctx)
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept(TokIdent, "else") {
			if p.at(TokIdent, "if") {
				s, err := p.parseIf(ctx)
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.parseBlock(ctx)
				if err != nil {
					return nil, err
				}
			}
		}
		isMiss := kind.Text == "miss"
		if neg {
			isMiss = !isMiss
		}
		if isMiss {
			then, els = els, then
		}
		return &IfApplyStmt{Table: tbl, OnHit: then, OnMis: els, Line: line}, nil
	}
	p.pos = save
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock(ctx)
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(TokIdent, "else") {
		if p.at(TokIdent, "if") {
			s, err := p.parseIf(ctx)
			if err != nil {
				return nil, err
			}
			els = []Stmt{s}
		} else {
			els, err = p.parseBlock(ctx)
			if err != nil {
				return nil, err
			}
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Line: line}, nil
}

func (p *parser) parseSwitchApply(ctx stmtCtx) (Stmt, error) {
	line := p.cur().Line
	p.pos++ // switch
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind != TokIdent || !strings.HasSuffix(t.Text, ".apply") {
		return nil, p.errf("switch requires t.apply().action_run")
	}
	tbl := t.Text[:strings.LastIndex(t.Text, ".")]
	p.pos++
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "."); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIdent, "action_run"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	sw := &SwitchApplyStmt{Table: tbl, Line: line}
	for !p.accept(TokPunct, "}") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock(ctx)
		if err != nil {
			return nil, err
		}
		if name.Text == "default" {
			sw.Default = body
		} else {
			sw.Cases = append(sw.Cases, &SwitchCase{Action: name.Text, Body: body})
		}
	}
	return sw, nil
}

// ---- expressions ----

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(0) }

// Precedence levels, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"|"},
	{"^"},
	{"&"},
	{"<<"}, // >> is re-fused below
	{"+", "-"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range precLevels[level] {
			if p.at(TokPunct, op) {
				// Disambiguate ">" from the split ">>": two adjacent ">"
				// tokens on the same position form a right shift at the
				// shift precedence level.
				if op == ">" && p.peek().Kind == TokPunct && p.peek().Text == ">" &&
					p.peek().Col == p.cur().Col+1 && p.peek().Line == p.cur().Line {
					continue // handled at shift level
				}
				matched = op
				break
			}
		}
		// Right-shift: ">" ">" adjacent at shift precedence.
		if matched == "" && level == 7 && p.at(TokPunct, ">") &&
			p.peek().Kind == TokPunct && p.peek().Text == ">" &&
			p.peek().Col == p.cur().Col+1 && p.peek().Line == p.cur().Line {
			p.pos += 2
			rhs, err := p.parseBinary(level + 1)
			if err != nil {
				return nil, err
			}
			lhs = &BinaryExpr{Op: ">>", X: lhs, Y: rhs}
			continue
		}
		if matched == "" {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: matched, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.accept(TokPunct, "!"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", X: x}, nil
	case p.accept(TokPunct, "~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "~", X: x}, nil
	case p.accept(TokPunct, "-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	var out Expr
	switch {
	case t.Kind == TokInt:
		p.pos++
		out = &IntLit{Val: t.Val}
	case t.Kind == TokPunct && t.Text == "(":
		// Cast `(bit<8>)x` or parenthesized expression.
		if p.peek().Kind == TokIdent && p.peek().Text == "bit" {
			p.pos++ // (
			w, err := p.parseBitType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			out = &CastExpr{Width: w, X: x}
		} else {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			out = e
		}
	case t.Kind == TokIdent:
		p.pos++
		switch {
		case strings.HasSuffix(t.Text, ".isValid"):
			if _, err := p.expect(TokPunct, "("); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			out = &IsValidExpr{Instance: t.Text[:strings.LastIndex(t.Text, ".")]}
		case strings.HasSuffix(t.Text, ".lookahead") || t.Text == "lookahead":
			if _, err := p.expect(TokPunct, "<"); err != nil {
				return nil, err
			}
			w, err := p.parseBitType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ">"); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "("); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			out = &LookaheadExpr{Width: w}
		case strings.Contains(t.Text, "."):
			i := strings.LastIndex(t.Text, ".")
			out = &FieldRef{Instance: t.Text[:i], Field: t.Text[i+1:]}
		default:
			out = &VarRef{Name: t.Text}
		}
	default:
		return nil, p.errf("expected expression, got %q", t.String())
	}
	// Postfix slice [hi:lo].
	for p.at(TokPunct, "[") {
		p.pos++
		hi, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		lo, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		out = &SliceExpr{X: out, Hi: int(hi.Val), Lo: int(lo.Val)}
	}
	return out, nil
}
