package bench

import (
	"fmt"
	"strings"
	"time"

	"aquila/internal/encode"
	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/progs"
	"aquila/internal/verify"
)

// Fig11aRow measures verification of k chained switch-T copies
// (Figure 11a: program-complexity scaling).
type Fig11aRow struct {
	K        int
	WithBugs bool
	Time     time.Duration
	Mem      int
	Bugs     int
}

// Fig11a sweeps k = 1..maxK, with and without the seeded bugs.
func Fig11a(maxK int, scale string) ([]Fig11aRow, error) {
	var rows []Fig11aRow
	for _, withBugs := range []bool{false, true} {
		for k := 1; k <= maxK; k++ {
			cfg := genprog.SwitchT(scale)
			cfg.TTLChain = false
			cfg.SeedBug = withBugs
			bm := genprog.AssembleChain(cfg, k)
			prog, err := bm.Parse()
			if err != nil {
				return nil, err
			}
			spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			rep, err := verify.Run(prog, nil, spec, verify.Options{FindAll: true})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig11aRow{
				K:        k,
				WithBugs: withBugs,
				Time:     time.Since(t0),
				Mem:      rep.Stats.TermNodes + rep.Stats.CNFClauses,
				Bugs:     len(rep.Violations),
			})
		}
	}
	return rows, nil
}

// Fig11bRow measures one (entries, table-mode) point of the Figure 11b
// sweep.
type Fig11bRow struct {
	Entries int
	Mode    string
	Time    time.Duration
	Mem     int
	Fail    string
}

// Fig11b sweeps table entry counts across the three table encodings: the
// naive per-entry expansion, linear ABV chaining, and the balanced ABV
// lookup tree of §4.2.
func Fig11b(entryCounts []int, scale string, budget int64, deadline time.Duration) ([]Fig11bRow, error) {
	cfg := genprog.SwitchT(scale)
	cfg.TTLChain = false
	bm := genprog.Assemble(cfg)
	prog, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	modes := []struct {
		name string
		mode encode.TableMode
	}{
		{"Naive", encode.TableNaive},
		{"ABV", encode.TableABVLinear},
		{"ABV+Opt", encode.TableABVTree},
	}
	var rows []Fig11bRow
	for _, n := range entryCounts {
		snap := genprog.BigTableSnapshot(cfg, n)
		// Look up an entry near the middle of the table.
		dst := uint64(0x0A000000 + n/2)
		spec, err := lpi.Parse(genprog.BigTableSpec(cfg, bm.Calls, dst, uint64((n/2)%500)))
		if err != nil {
			return nil, err
		}
		for _, m := range modes {
			t0 := time.Now()
			rep, err := verify.Run(prog, snap, spec, verify.Options{
				FindAll: true,
				Budget:  budget,
				Encode:  encode.Options{Table: m.mode},
			})
			elapsed := time.Since(t0)
			row := Fig11bRow{Entries: n, Mode: m.name, Time: elapsed}
			if err != nil {
				out, ferr := failOutcome(err)
				if ferr != nil {
					return nil, ferr
				}
				row.Fail = out.Fail
			} else {
				row.Mem = rep.Stats.TermNodes + rep.Stats.CNFClauses
				if !rep.Holds {
					row.Fail = "WRONG"
				}
			}
			if deadline > 0 && elapsed > deadline {
				row.Fail = "OOT"
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFig11a renders the scaling rows.
func FormatFig11a(rows []Fig11aRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%3s %9s %12s %10s %6s\n", "k", "bugs?", "time", "mem", "found")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d %9v %12s %10d %6d\n", r.K, r.WithBugs, r.Time.Round(time.Millisecond), r.Mem, r.Bugs)
	}
	return b.String()
}

// FormatFig11b renders the entry-scaling rows.
func FormatFig11b(rows []Fig11bRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %-8s %12s %12s %6s\n", "entries", "mode", "time", "mem", "fail")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %-8s %12s %12d %6s\n", r.Entries, r.Mode, r.Time.Round(time.Millisecond), r.Mem, r.Fail)
	}
	return b.String()
}
