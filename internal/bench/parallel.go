package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"aquila/internal/progs"
	"aquila/internal/verify"
)

// ParallelRow is one worker-count measurement of the parallel-engine
// sweep: find-all verification of the same program at a fixed Parallel
// setting.
type ParallelRow struct {
	Workers int `json:"workers"`
	// WallMS is the best-of-repeats find-all wall time (encode + solve).
	WallMS float64 `json:"wall_ms"`
	// SolveMS / SolveCPUMS are the solving phase's wall clock and the
	// cumulative per-check CPU from the same (best) run. SolveCPUMS is
	// worker-count independent modulo noise — the fair cost metric.
	SolveMS    float64 `json:"solve_ms"`
	SolveCPUMS float64 `json:"solve_cpu_ms"`
	// Speedup is wall(workers=1) / wall(this row).
	Speedup float64 `json:"speedup"`
	// CPUBound marks a multi-worker row measured on a single effective
	// CPU: its wall-clock speedup is bounded at 1.0x by the host, not by
	// the engine, so consumers (CI gates included) must not read the
	// Speedup column as an engine regression.
	CPUBound bool `json:"cpu_bound,omitempty"`
	// Identical reports whether this row's canonical report bytes match
	// the workers=1 baseline exactly.
	Identical bool `json:"identical"`
	Bugs      int  `json:"bugs"`
}

// ParallelResult is the whole sweep plus the context needed to judge it.
type ParallelResult struct {
	Program    string `json:"program"`
	Assertions int    `json:"assertions"`
	// CPUs is runtime.GOMAXPROCS(0) — speedup is bounded by it, so a
	// 1-CPU container cannot show wall-clock gains at any worker count.
	CPUs int `json:"cpus"`
	// NumCPU is runtime.NumCPU(), the host's logical core count. It can
	// exceed CPUs when GOMAXPROCS is capped (cgroup limits, GOMAXPROCS
	// env); the effective parallelism is min(CPUs, NumCPU).
	NumCPU  int           `json:"num_cpu"`
	Repeats int           `json:"repeats"`
	Rows    []ParallelRow `json:"rows"`
}

// SingleCPU reports whether the sweep ran with one effective CPU, in
// which case wall-clock speedup assertions are meaningless.
func (r *ParallelResult) SingleCPU() bool {
	return r.CPUs <= 1 || r.NumCPU <= 1
}

// Parallel sweeps find-all verification of bm over workerCounts (each run
// repeated `repeats` times, best wall time kept) and checks that every
// worker count reproduces the workers=1 canonical report byte for byte.
// The first entry of workerCounts must be 1 (the speedup baseline).
func Parallel(bm *progs.Benchmark, workerCounts []int, repeats int) (*ParallelResult, error) {
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		return nil, fmt.Errorf("bench: parallel sweep needs workerCounts starting at 1, got %v", workerCounts)
	}
	if repeats < 1 {
		repeats = 1
	}
	prog, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	spec, err := lpiParse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		return nil, err
	}
	res := &ParallelResult{
		Program: bm.Name,
		CPUs:    runtime.GOMAXPROCS(0),
		NumCPU:  runtime.NumCPU(),
		Repeats: repeats,
	}
	var baseline []byte
	var baseWall time.Duration
	for _, w := range workerCounts {
		var best time.Duration
		var bestRep *verify.Report
		for r := 0; r < repeats; r++ {
			start := time.Now()
			// Preprocessing and slicing are on by default in the bench
			// experiments: the sweep measures the shipping configuration.
			rep, err := verify.Run(prog, nil, spec, verify.Options{FindAll: true, Parallel: w,
				Preprocess: true, Slice: true})
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: parallel workers=%d: %w", w, err)
			}
			if bestRep == nil || wall < best {
				best, bestRep = wall, rep
			}
		}
		canon, err := bestRep.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		if baseline == nil {
			baseline, baseWall = canon, best
			res.Assertions = bestRep.Stats.Assertions
		}
		res.Rows = append(res.Rows, ParallelRow{
			Workers:    w,
			WallMS:     float64(best.Microseconds()) / 1000,
			SolveMS:    float64(bestRep.Stats.SolveTime.Microseconds()) / 1000,
			SolveCPUMS: float64(bestRep.Stats.SolveCPU.Microseconds()) / 1000,
			Speedup:    float64(baseWall) / float64(best),
			CPUBound:   w > 1 && res.SingleCPU(),
			Identical:  bytes.Equal(canon, baseline),
			Bugs:       len(bestRep.Violations),
		})
	}
	return res, nil
}

// JSON renders the sweep for BENCH_parallel.json.
func (r *ParallelResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatParallel renders the sweep as the usual aquila-bench table.
func FormatParallel(r *ParallelResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel find-all sweep: %s (%d assertions, %d CPUs of %d cores, best of %d)\n",
		r.Program, r.Assertions, r.CPUs, r.NumCPU, r.Repeats)
	fmt.Fprintf(&b, "%-8s  %10s  %10s  %12s  %8s  %9s  %4s\n",
		"workers", "wall ms", "solve ms", "solve-cpu ms", "speedup", "identical", "bugs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d  %10.1f  %10.1f  %12.1f  %7.2fx  %9v  %4d\n",
			row.Workers, row.WallMS, row.SolveMS, row.SolveCPUMS, row.Speedup, row.Identical, row.Bugs)
	}
	if r.SingleCPU() {
		b.WriteString("note: single-CPU host — multi-worker rows are cpu_bound, wall-clock speedup is bounded at 1.0x; solve-cpu ms shows the worker-count-independent cost.\n")
	}
	return b.String()
}
