package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"aquila/internal/obs"
	"aquila/internal/progs"
	"aquila/internal/verify"
)

// ParallelRow is one measurement of the parallel-engine sweep: find-all
// verification of the same program at a fixed {schedule, portfolio,
// workers} point.
type ParallelRow struct {
	Workers int `json:"workers"`
	// Schedule is the work-distribution strategy ("static" or "steal");
	// Portfolio is the number of solver personalities raced per check
	// (1: no racing).
	Schedule  string `json:"schedule"`
	Portfolio int    `json:"portfolio"`
	// WallMS is the best-of-repeats find-all wall time (encode + solve).
	WallMS float64 `json:"wall_ms"`
	// SolveMS / SolveCPUMS are the solving phase's wall clock and the
	// cumulative per-check CPU from the same (best) run. SolveCPUMS is
	// worker-count independent modulo noise — the fair cost metric —
	// except under racing, which deliberately trades CPU for wall time.
	SolveMS    float64 `json:"solve_ms"`
	SolveCPUMS float64 `json:"solve_cpu_ms"`
	// Speedup is wall(baseline row) / wall(this row); the baseline is the
	// first row (workers=1, static, portfolio 1).
	Speedup float64 `json:"speedup"`
	// CPUBound marks a multi-worker row measured on a single effective
	// CPU: its wall-clock speedup is bounded at 1.0x by the host, not by
	// the engine, so consumers (CI gates included) must not read the
	// Speedup column as an engine regression.
	CPUBound bool `json:"cpu_bound,omitempty"`
	// Identical reports whether this row's canonical report bytes match
	// the baseline exactly — the determinism contract at every grid point.
	Identical bool `json:"identical"`
	Bugs      int  `json:"bugs"`
	// Steals counts checks executed by a worker other than their static
	// owner (steal schedule only); RacesWon counts raced checks that
	// produced a verdict and CancelledCPUMS the CPU burned by cancelled
	// racers (portfolio > 1 only).
	Steals         int64   `json:"steals,omitempty"`
	RacesWon       int64   `json:"races_won,omitempty"`
	CancelledCPUMS float64 `json:"cancelled_cpu_ms,omitempty"`
	// StragglerIndex is max worker busy time over mean worker busy time
	// from the best run's trace (1.0 = perfectly balanced); the load-
	// imbalance metric the steal schedule exists to improve. Meaningful
	// from busy-time ratios even on a single-CPU host.
	StragglerIndex float64 `json:"straggler_index,omitempty"`
}

// ParallelResult is one program's sweep plus the context needed to judge
// it.
type ParallelResult struct {
	Program    string `json:"program"`
	Assertions int    `json:"assertions"`
	// CPUs is runtime.GOMAXPROCS(0) — speedup is bounded by it, so a
	// 1-CPU container cannot show wall-clock gains at any worker count.
	CPUs int `json:"cpus"`
	// NumCPU is runtime.NumCPU(), the host's logical core count. It can
	// exceed CPUs when GOMAXPROCS is capped (cgroup limits, GOMAXPROCS
	// env); the effective parallelism is min(CPUs, NumCPU).
	NumCPU  int           `json:"num_cpu"`
	Repeats int           `json:"repeats"`
	Rows    []ParallelRow `json:"rows"`
}

// ParallelSuiteResult is the whole experiment: one sweep per program
// (the DC gateway for scale, the skewed-telemetry program for load
// imbalance), the shape BENCH_parallel.json records.
type ParallelSuiteResult struct {
	Sweeps []*ParallelResult `json:"sweeps"`
}

// SingleCPU reports whether the sweep ran with one effective CPU, in
// which case wall-clock speedup assertions are meaningless.
func (r *ParallelResult) SingleCPU() bool {
	return r.CPUs <= 1 || r.NumCPU <= 1
}

// Parallel sweeps find-all verification of bm over the {schedule static,
// steal} × portfolios × workerCounts grid (each point repeated `repeats`
// times, best wall time kept) and checks that every point reproduces the
// baseline canonical report byte for byte. The first entry of
// workerCounts must be 1 and the first of portfolios must be 1 (the
// baseline point is static/portfolio-1/workers-1). Every run carries an
// in-process tracer so each row records its straggler index.
func Parallel(bm *progs.Benchmark, workerCounts, portfolios []int, repeats int) (*ParallelResult, error) {
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		return nil, fmt.Errorf("bench: parallel sweep needs workerCounts starting at 1, got %v", workerCounts)
	}
	if len(portfolios) == 0 {
		portfolios = []int{1}
	}
	if portfolios[0] != 1 {
		return nil, fmt.Errorf("bench: parallel sweep needs portfolios starting at 1, got %v", portfolios)
	}
	if repeats < 1 {
		repeats = 1
	}
	prog, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	spec, err := lpiParse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		return nil, err
	}
	res := &ParallelResult{
		Program: bm.Name,
		CPUs:    runtime.GOMAXPROCS(0),
		NumCPU:  runtime.NumCPU(),
		Repeats: repeats,
	}
	var baseline []byte
	var baseWall time.Duration
	for _, sched := range []verify.Schedule{verify.ScheduleStatic, verify.ScheduleSteal} {
		for _, k := range portfolios {
			for _, w := range workerCounts {
				var best time.Duration
				var bestRep *verify.Report
				var bestSink *obs.Obs
				for r := 0; r < repeats; r++ {
					// Each repeat gets its own tracer so the best run's
					// spans can be analyzed in isolation.
					sink := &obs.Obs{Tracer: obs.NewTracer()}
					start := time.Now()
					// Plain engine config (no preprocessing/slicing): the
					// sweep isolates the scheduler and racing axes, and the
					// preproc experiment already covers the CNF passes.
					// Slicing in particular shrinks the cheap assertions to
					// noise level, which would bury the load-imbalance
					// signal the straggler column exists to show.
					rep, err := verify.Run(prog, nil, spec, verify.Options{
						FindAll: true, Parallel: w, Schedule: sched, Portfolio: k,
						Obs: sink,
					})
					wall := time.Since(start)
					if err != nil {
						return nil, fmt.Errorf("bench: parallel sched=%v portfolio=%d workers=%d: %w",
							sched, k, w, err)
					}
					if bestRep == nil || wall < best {
						best, bestRep, bestSink = wall, rep, sink
					}
				}
				canon, err := bestRep.CanonicalJSON()
				if err != nil {
					return nil, err
				}
				if baseline == nil {
					baseline, baseWall = canon, best
					res.Assertions = bestRep.Stats.Assertions
				}
				row := ParallelRow{
					Workers:        w,
					Schedule:       sched.String(),
					Portfolio:      k,
					WallMS:         float64(best.Microseconds()) / 1000,
					SolveMS:        float64(bestRep.Stats.SolveTime.Microseconds()) / 1000,
					SolveCPUMS:     float64(bestRep.Stats.SolveCPU.Microseconds()) / 1000,
					Speedup:        float64(baseWall) / float64(best),
					CPUBound:       w > 1 && res.SingleCPU(),
					Identical:      bytes.Equal(canon, baseline),
					Bugs:           len(bestRep.Violations),
					Steals:         bestRep.Stats.Steals,
					RacesWon:       bestRep.Stats.RacesWon,
					CancelledCPUMS: float64(bestRep.Stats.CancelledCPU.Microseconds()) / 1000,
				}
				if util, err := obs.Analyze(bestSink.Tracer.Events()); err == nil {
					row.StragglerIndex = util.StragglerIndex
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// ParallelSuite runs the grid sweep on each benchmark.
func ParallelSuite(bms []*progs.Benchmark, workerCounts, portfolios []int, repeats int) (*ParallelSuiteResult, error) {
	out := &ParallelSuiteResult{}
	for _, bm := range bms {
		res, err := Parallel(bm, workerCounts, portfolios, repeats)
		if err != nil {
			return nil, err
		}
		out.Sweeps = append(out.Sweeps, res)
	}
	return out, nil
}

// JSON renders one program's sweep.
func (r *ParallelResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// JSON renders the suite for BENCH_parallel.json.
func (r *ParallelSuiteResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatParallel renders one sweep as the usual aquila-bench table.
func FormatParallel(r *ParallelResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel find-all sweep: %s (%d assertions, %d CPUs of %d cores, best of %d)\n",
		r.Program, r.Assertions, r.CPUs, r.NumCPU, r.Repeats)
	fmt.Fprintf(&b, "%-8s  %-5s  %9s  %10s  %10s  %12s  %8s  %9s  %4s  %6s  %9s\n",
		"workers", "sched", "portfolio", "wall ms", "solve ms", "solve-cpu ms", "speedup", "identical", "bugs", "steals", "straggler")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d  %-5s  %9d  %10.1f  %10.1f  %12.1f  %7.2fx  %9v  %4d  %6d  %9.2f\n",
			row.Workers, row.Schedule, row.Portfolio, row.WallMS, row.SolveMS,
			row.SolveCPUMS, row.Speedup, row.Identical, row.Bugs, row.Steals,
			row.StragglerIndex)
	}
	if r.SingleCPU() {
		b.WriteString("note: single-CPU host — multi-worker rows are cpu_bound, wall-clock speedup is bounded at 1.0x; solve-cpu ms shows the worker-count-independent cost, straggler index the busy-time imbalance.\n")
	}
	return b.String()
}

// FormatParallelSuite renders every sweep.
func FormatParallelSuite(r *ParallelSuiteResult) string {
	var b strings.Builder
	for i, res := range r.Sweeps {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(FormatParallel(res))
	}
	return b.String()
}
