package bench

import (
	"fmt"
	"strings"

	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/progs"
)

// Table2Row compares specification sizes for one deployment scenario (§7.1
// / Table 2): LPI lines vs the equivalent low-level (p4v-style,
// first-order-logic + parser instrumentation) specification that the
// harness actually expands the LPI into.
type Table2Row struct {
	Scenario    string
	AquilaLoC   int
	LowLevelLoC int
}

// scenario1Prog is the §7.1 scenario 1 program: the VXLAN gateway that
// statisticizes incoming business traffic.
const scenario1Prog = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> dscp; bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
header udp_t { bit<16> src_port; bit<16> dst_port; }
header vxlan_t { bit<24> vni; bit<8> reserved; }
header stats_t { bit<16> qlen; bit<16> class; }
struct gw_md_t { bit<1> known; bit<8> group; }

ethernet_t eth;
ipv4_t ipv4;
udp_t udp;
vxlan_t vxlan;
stats_t stats;
gw_md_t gw_md;

register<bit<32>>(4096) flow_count;

parser GwParser {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			17: parse_udp;
			default: accept;
		}
	}
	state parse_udp {
		extract(udp);
		transition select(udp.dst_port) {
			4789: parse_vxlan;
			default: accept;
		}
	}
	state parse_vxlan { extract(vxlan); transition accept; }
}

control GwIngress {
	action classify(bit<8> group) { gw_md.known = 1; gw_md.group = group; }
	action add_stats(bit<16> qlen) {
		stats.setValid();
		stats.qlen = qlen;
		stats.class = (bit<16>)gw_md.group;
	}
	action count() { flow_count.write(0, 1); }
	action set_dscp() { ipv4.dscp = 3; }
	action send_back(bit<9> port) { std_meta.egress_spec = port; }
	action a_drop() { drop(); }
	table classify_tbl {
		key = { ipv4.dst_ip : lpm; }
		actions = { classify; a_drop; }
		default_action = a_drop;
	}
	table stats_tbl {
		key = { gw_md.known : exact; }
		actions = { add_stats; count; }
	}
	table dscp_tbl {
		key = { ipv4.dst_ip : lpm; }
		actions = { set_dscp; }
	}
	table return_tbl {
		key = { std_meta.ingress_port : exact; }
		actions = { send_back; a_drop; }
		default_action = a_drop;
	}
	apply {
		if (ipv4.isValid()) {
			classify_tbl.apply();
			stats_tbl.apply();
			dscp_tbl.apply();
		}
		return_tbl.apply();
	}
}

deparser GwDeparser { emit(eth); emit(ipv4); emit(udp); emit(vxlan); emit(stats); }
pipeline gateway { parser = GwParser; control = GwIngress; deparser = GwDeparser; }
`

// scenario1Spec is the §7.1 scenario 1 specification, O(10) LPI lines.
const scenario1Spec = `
assumption { init {
	pkt.$order == <eth ipv4 [udp vxlan]>;
	pkt.eth.etherType == 0x0800;
} }
assertion { stats_ok = {
	if (match(stats_tbl, add_stats)) valid(stats);
	if (match(classify_tbl, classify)) gw_md.known == 1;
	if (match(dscp_tbl, set_dscp)) ipv4.dscp == 3;
	keep(ipv4.src_ip);
	keep(udp);
} }
program {
	assume(init);
	call(gateway);
	assert(stats_ok);
}
`

// Table2 measures the three scenarios.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row

	// Scenario 1: traffic statistics gateway.
	prog1 := mustProg("gw", scenario1Prog)
	spec1 := mustSpec(scenario1Spec)
	rows = append(rows, Table2Row{
		Scenario:    "1: traffic statistics",
		AquilaLoC:   lpi.SpecLoC(scenario1Spec),
		LowLevelLoC: lowLevelLoC(spec1, prog1),
	})

	// Scenario 2: hyper-converged CDN — a 4-pipeline program with a
	// per-function correctness spec of O(100) LPI lines.
	cfg := genprog.Config{Name: "cdn", Pipes: 4, ParserStates: 20, Tables: 48}
	bm := genprog.Assemble(cfg)
	prog2, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	spec2Src := cdnSpec(prog2, bm.Calls)
	spec2 := mustSpec(spec2Src)
	rows = append(rows, Table2Row{
		Scenario:    "2: hyper-converged CDN",
		AquilaLoC:   lpi.SpecLoC(spec2Src),
		LowLevelLoC: lowLevelLoC(spec2, prog2),
	})

	// Scenario 3: update checking — the original specification is reused
	// on the updated program (pipeline order swapped), so the spec size is
	// that of scenario 2's spec plus the equivalence assumptions.
	rows = append(rows, Table2Row{
		Scenario:    "3: pre-update checking",
		AquilaLoC:   lpi.SpecLoC(spec2Src),
		LowLevelLoC: lowLevelLoC(spec2, prog2),
	})
	return rows, nil
}

// cdnSpec builds the scenario-2 specification: function correctness per
// pipeline, undefined-behaviour checks, inter-pipeline value passing and
// recirculation bounding (§7.1).
func cdnSpec(prog *p4.Program, calls []string) string {
	var b strings.Builder
	b.WriteString(`assumption { init {
	pkt.$order == <eth [vlan] (ipv4|ipv6) (tcp|udp)>;
} }
`)
	b.WriteString("assertion {\n\tfunctions = {\n")
	for _, ctlName := range sortedCtlNames(prog) {
		ctl := prog.Controls[ctlName]
		for _, tn := range ctl.Order {
			tbl, ok := ctl.Tables[tn]
			if !ok {
				continue
			}
			for _, h := range tableHeadersOf(prog, ctlName, tn) {
				fmt.Fprintf(&b, "\t\tif (applied(%s.%s)) valid(%s);\n", ctlName, tn, h)
			}
			_ = tbl
		}
	}
	b.WriteString("\t}\n\tpassing = {\n")
	b.WriteString("\t\tkeep(pkt.eth.dst);\n\t\tkeep(pkt.eth.src);\n")
	b.WriteString("\t\tstd_meta.recirc_count <= 2;\n")
	b.WriteString("\t}\n}\nprogram {\n\tassume(init);\n")
	for _, c := range calls {
		fmt.Fprintf(&b, "\tcall(%s);\n", c)
	}
	b.WriteString("\tassert(functions);\n\tassert(passing);\n}\n")
	return b.String()
}

func sortedCtlNames(prog *p4.Program) []string {
	var out []string
	for name := range prog.Controls {
		out = append(out, name)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func tableHeadersOf(prog *p4.Program, ctlName, tblName string) []string {
	ctl := prog.Controls[ctlName]
	return progs.TableHeaders(prog, ctl, ctl.Tables[tblName])
}

// ExpandLowLevel renders the p4v-style first-order-logic specification
// equivalent to an LPI spec — the kind of text Figure 3's right panels
// show. Counting its lines gives Table 2's comparison honestly: the
// expansion is constructed, not estimated.
func ExpandLowLevel(spec *lpi.Spec, prog *p4.Program) string {
	var b strings.Builder
	emitExpr := func(e lpi.Expr, kind string) {
		switch x := e.(type) {
		case *lpi.OrderCmp:
			// p4v has no header-order primitive: each concrete sequence
			// becomes an instrumented parser run (Figure 3 left-bottom,
			// five lines per sequence in Vera's NetCTL form), and every
			// parser state is annotated with `last` tracking and an
			// order assumption (Figure 3 top-left, three lines per state).
			for _, seq := range x.Pattern.Expand() {
				fmt.Fprintf(&b, "InstructionBlock(\n  CreateTag(\"START\", 0),\n")
				fmt.Fprintf(&b, "  Call(\"generator.%s\"),\n", strings.Join(seq, "."))
				fmt.Fprintf(&b, "  res.initFactory(switchInstance)\n)\n")
			}
			for _, pr := range prog.Parsers {
				for _, st := range pr.Order {
					fmt.Fprintf(&b, "parse_%s:\n", st)
					fmt.Fprintf(&b, "  assume last == pred(%s)\n", st)
					fmt.Fprintf(&b, "  last := %s\n", st)
				}
			}
		case *lpi.Builtin:
			switch x.Name {
			case "keep":
				// Figure 3 middle panel: each kept field needs a capture
				// assignment inside the parser state that extracts it and
				// a final equality assertion.
				name := strings.TrimPrefix(x.Args[0].String(), "pkt.")
				fields := []string{name}
				if inst := prog.Instance(name); inst != nil {
					fields = fields[:0]
					for _, f := range prog.InstanceType(name).Fields {
						fields = append(fields, name+"."+f.Name)
					}
				}
				for _, f := range fields {
					fmt.Fprintf(&b, "parse-capture: @%s := %s\n", f, f)
					fmt.Fprintf(&b, "assume last == owner(%s)\n", f)
					fmt.Fprintf(&b, "%s %s == @%s\n", kind, f, f)
				}
			case "match", "applied":
				// Table-reach instrumentation: ghost declaration and
				// initialization, a recording statement per table action,
				// and the final reach/action assertion.
				tblName := x.Args[0].String()
				fmt.Fprintf(&b, "ghost reach_%s : bool\n", tblName)
				fmt.Fprintf(&b, "init reach_%s := false\n", tblName)
				fmt.Fprintf(&b, "ghost run_%s : action_id\n", tblName)
				nActions := 2
				if ctl, tb, err := lookupTable(prog, tblName); err == nil {
					nActions = len(prog.Controls[ctl].Tables[tb].Actions)
				}
				for i := 0; i < nActions; i++ {
					fmt.Fprintf(&b, "instrument %s.action[%d]: reach := true; run := %d\n", tblName, i, i)
				}
				fmt.Fprintf(&b, "%s reach_%s && run_%s == %s\n", kind, tblName, tblName, argOr(x, 1))
			case "modified":
				fmt.Fprintf(&b, "ghost mod_%s : bool\n", x.Args[0])
				fmt.Fprintf(&b, "init mod_%s := false\n", x.Args[0])
				fmt.Fprintf(&b, "instrument writes(%s): mod_%s := true\n", x.Args[0], x.Args[0])
				fmt.Fprintf(&b, "%s mod_%s\n", kind, x.Args[0])
			case "valid":
				fmt.Fprintf(&b, "ghost valid_%s := extraction_tracking(%s)\n", x.Args[0], x.Args[0])
				fmt.Fprintf(&b, "%s valid_%s\n", kind, x.Args[0])
			default:
				fmt.Fprintf(&b, "%s %s\n", kind, x.String())
			}
		default:
			fmt.Fprintf(&b, "%s %s\n", kind, e.String())
		}
	}
	emitItem := func(it *lpi.Item, kind string) {
		if it.Guard != nil {
			// The guard's ghosts need the same instrumentation before the
			// implication can be stated.
			emitExpr(it.Guard, "guard")
			fmt.Fprintf(&b, "with guard above:\n")
		}
		emitExpr(it.Cond, kind)
	}
	for _, name := range sortedBlockNames(spec.Assumptions) {
		for _, it := range spec.Assumptions[name] {
			emitItem(it, "assume")
		}
	}
	for _, name := range sortedBlockNames(spec.Assertions) {
		for _, it := range spec.Assertions[name] {
			emitItem(it, "assert")
		}
	}
	// The program block becomes manual pipeline stitching.
	for range spec.Program {
		b.WriteString("compose_next_component(); sync_ghosts()\n")
	}
	return b.String()
}

func lookupTable(prog *p4.Program, name string) (string, string, error) {
	if i := strings.LastIndex(name, "."); i >= 0 {
		return name[:i], name[i+1:], nil
	}
	for ctlName, ctl := range prog.Controls {
		if _, ok := ctl.Tables[name]; ok {
			return ctlName, name, nil
		}
	}
	return "", "", fmt.Errorf("no table %q", name)
}

func argOr(x *lpi.Builtin, i int) string {
	if i < len(x.Args) {
		return x.Args[i].String()
	}
	return "any"
}

func sortedBlockNames(m map[string][]*lpi.Item) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func lowLevelLoC(spec *lpi.Spec, prog *p4.Program) int {
	n := 0
	for _, line := range strings.Split(ExpandLowLevel(spec, prog), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// FormatTable2 renders the comparison.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %16s %8s\n", "Scenario", "Aquila (LPI)", "p4v-style (FOL)", "ratio")
	for _, r := range rows {
		ratio := float64(r.LowLevelLoC) / float64(r.AquilaLoC)
		fmt.Fprintf(&b, "%-28s %12d %16d %7.1fx\n", r.Scenario, r.AquilaLoC, r.LowLevelLoC, ratio)
	}
	return b.String()
}
