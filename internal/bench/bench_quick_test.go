package bench

import (
	"fmt"
	"strings"
	"testing"

	"aquila/internal/genprog"
	"aquila/internal/progs"
)

func TestTable2Ratios(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Scenario 1: O(10) LPI lines vs O(100) low-level (the paper's 10x).
	if rows[0].AquilaLoC > 20 {
		t.Fatalf("scenario 1 LPI LoC = %d, want O(10)", rows[0].AquilaLoC)
	}
	for _, r := range rows {
		ratio := float64(r.LowLevelLoC) / float64(r.AquilaLoC)
		if ratio < 2 {
			t.Fatalf("%s: low-level/LPI ratio = %.1f, expected substantial reduction", r.Scenario, ratio)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "ratio") {
		t.Fatal("format output malformed")
	}
}

func TestTable3SmallSuiteAllTools(t *testing.T) {
	suite := progs.HandWrittenSuite()
	rows, err := Table3(suite, QuickLimits, []Tool{ToolAquila, ToolP4V, ToolVera})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		aq := r.Results[ToolAquila]
		if aq.Fail != "" {
			t.Fatalf("%s: Aquila failed: %s", r.Name, aq.Fail)
		}
		if aq.Bugs == 0 {
			t.Fatalf("%s: Aquila found no bugs; every program carries a seeded one", r.Name)
		}
		// On these small programs the baselines should succeed too, and
		// all tools that complete must agree a bug exists.
		for _, tool := range []Tool{ToolP4V, ToolVera} {
			out := r.Results[tool]
			if out.Fail == "" && out.Bugs == 0 {
				t.Fatalf("%s: %s completed but found no bugs", r.Name, tool)
			}
		}
	}
	s := FormatTable3(rows, []Tool{ToolAquila, ToolP4V, ToolVera})
	if !strings.Contains(s, "Simple Router") {
		t.Fatal("format output malformed")
	}
}

func TestTable3AquilaScalesWhereBaselinesExplode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A production-shaped program: deep parser DAG + many tables. The
	// baselines trip their budgets; Aquila completes.
	cfg := genprog.Config{Name: "big", Pipes: 2, ParserStates: 40, Tables: 60,
		ActionsPerTable: 3, SeedBug: true}
	bm := genprog.Assemble(cfg)
	lim := Limits{TreeCap: 100_000, MaxPaths: 20_000, Budget: 20_000_000, Deadline: 0}
	aq, err := RunTool(bm, ToolAquila, lim)
	if err != nil {
		t.Fatal(err)
	}
	if aq.Fail != "" || aq.Bugs == 0 {
		t.Fatalf("Aquila should complete and find bugs: %+v", aq)
	}
	p4v, err := RunTool(bm, ToolP4V, lim)
	if err != nil {
		t.Fatal(err)
	}
	if p4v.Fail != "OOM" {
		t.Fatalf("p4v-style tree encoding should explode, got %+v", p4v)
	}
	vera, err := RunTool(bm, ToolVera, lim)
	if err != nil {
		t.Fatal(err)
	}
	if vera.Fail != "OOT" {
		t.Fatalf("Vera-style path enumeration should explode, got %+v", vera)
	}
}

func TestTable4QuickSmall(t *testing.T) {
	rows, err := Table4([]string{"small"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Found {
			t.Fatalf("%s/%s: seeded culprit not localized", r.Scale, r.Bug)
		}
		if r.Precision < 0.9 {
			t.Fatalf("%s/%s: precision %.2f below the paper's ~95%% band", r.Scale, r.Bug, r.Precision)
		}
	}
	if !strings.Contains(FormatTable4(rows), "wrong-entry") {
		t.Fatal("format output malformed")
	}
}

func TestFig11aQuick(t *testing.T) {
	rows, err := Fig11a(2, "small")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WithBugs && r.Bugs == 0 {
			t.Fatalf("k=%d with bugs: none found", r.K)
		}
		if !r.WithBugs && r.Bugs != 0 {
			t.Fatalf("k=%d without bugs: %d found", r.K, r.Bugs)
		}
	}
	if !strings.Contains(FormatFig11a(rows), "time") {
		t.Fatal("format output malformed")
	}
}

func TestFig11bQuick(t *testing.T) {
	rows, err := Fig11b([]int{32, 128}, "small", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Fail != "" {
			t.Fatalf("entries=%d mode=%s failed: %s", r.Entries, r.Mode, r.Fail)
		}
	}
	// The ABV modes must use less formula memory than naive at the larger
	// point.
	byMode := map[string]Fig11bRow{}
	for _, r := range rows {
		if r.Entries == 128 {
			byMode[r.Mode] = r
		}
	}
	if byMode["ABV+Opt"].Mem >= byMode["Naive"].Mem {
		t.Fatalf("ABV+Opt mem %d should beat naive %d", byMode["ABV+Opt"].Mem, byMode["Naive"].Mem)
	}
	if !strings.Contains(FormatFig11b(rows), "ABV+Opt") {
		t.Fatal("format output malformed")
	}
}

// TestQuickFindModesAgree: for random generated programs the find-first
// and find-all strategies must agree on whether the spec holds.
func TestQuickFindModesAgree(t *testing.T) {
	for seed := 0; seed < 8; seed++ {
		cfg := genprog.Config{
			Name:         "q",
			Pipes:        1 + seed%2,
			ParserStates: 8 + seed,
			Tables:       4 + seed*2,
			SeedBug:      seed%2 == 0,
		}
		bm := genprog.Assemble(cfg)
		prog, err := bm.Parse()
		if err != nil {
			t.Fatal(err)
		}
		spec, err := lpiParse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
		if err != nil {
			t.Fatal(err)
		}
		first, err := verifyRun(prog, spec, false)
		if err != nil {
			t.Fatal(err)
		}
		all, err := verifyRun(prog, spec, true)
		if err != nil {
			t.Fatal(err)
		}
		if first.Holds != all.Holds {
			t.Fatalf("seed %d: find-first holds=%v, find-all holds=%v", seed, first.Holds, all.Holds)
		}
		if wantBug := cfg.SeedBug; wantBug == first.Holds {
			t.Fatalf("seed %d: seeded=%v but holds=%v", seed, wantBug, first.Holds)
		}
	}
}

// TestParallelSweepQuick pins the parallel sweep's bookkeeping: every row
// of the {schedule, portfolio, workers} grid reproduces the serial
// canonical report, the CPU metadata (GOMAXPROCS and physical core count)
// is recorded, multi-worker rows on a single-CPU host are marked
// cpu_bound, and the scheduler/portfolio columns are populated where
// their engines ran. The speedup assertion itself is skipped on
// single-core hosts — a 1-CPU container bounds wall-clock speedup at
// 1.0x regardless of the engine, so gating on it there would only test
// the machine.
func TestParallelSweepQuick(t *testing.T) {
	res, err := Parallel(progs.SkewedBench(), []int{1, 2}, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUs < 1 || res.NumCPU < 1 {
		t.Fatalf("CPU metadata missing: cpus=%d num_cpu=%d", res.CPUs, res.NumCPU)
	}
	if want := 2 * 2 * 2; len(res.Rows) != want {
		t.Fatalf("grid rows = %d, want %d ({static,steal} x {1,2} portfolios x {1,2} workers)", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		at := fmt.Sprintf("sched=%s portfolio=%d workers=%d", r.Schedule, r.Portfolio, r.Workers)
		if !r.Identical {
			t.Fatalf("%s: canonical report differs from serial baseline", at)
		}
		if r.Bugs == 0 {
			t.Fatalf("%s: no bugs on a benchmark with seeded violations", at)
		}
		if want := r.Workers > 1 && res.SingleCPU(); r.CPUBound != want {
			t.Fatalf("%s: cpu_bound=%v, want %v (cpus=%d num_cpu=%d)",
				at, r.CPUBound, want, res.CPUs, res.NumCPU)
		}
		if r.Portfolio > 1 && r.RacesWon == 0 {
			t.Fatalf("%s: portfolio racing reported no races won", at)
		}
		if r.Workers > 1 && r.StragglerIndex < 1 {
			t.Fatalf("%s: straggler index %.2f, want >= 1 on a multi-worker run", at, r.StragglerIndex)
		}
	}
	if res.SingleCPU() {
		t.Logf("single-CPU host (cpus=%d num_cpu=%d): skipping speedup assertion", res.CPUs, res.NumCPU)
	} else if sp := res.Rows[1].Speedup; sp < 0.5 {
		t.Errorf("2-worker speedup %.2fx on a multi-core host: parallel fan-out slower than half the serial run", sp)
	}
	out := FormatParallel(res)
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "straggler") {
		t.Fatal("format output malformed")
	}
}

// TestIncrementalSweepQuick runs the fresh-vs-incremental sweep on the DC
// gateway and pins the acceptance bar: strictly fewer total Tseitin
// clauses in incremental mode, byte-identical canonical reports at every
// (mode, workers) point.
func TestIncrementalSweepQuick(t *testing.T) {
	res, err := Incremental(progs.DCGatewayBench(), []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var freshClauses int64
	for _, r := range res.Rows {
		if !r.Identical {
			t.Fatalf("%s workers=%d: canonical report differs from fresh baseline", r.Mode, r.Workers)
		}
		if r.Bugs == 0 {
			t.Fatalf("%s workers=%d: no bugs on a benchmark with seeded violations", r.Mode, r.Workers)
		}
		if r.Mode == "fresh" && r.Workers == 1 {
			freshClauses = r.TseitinClauses
		}
		if r.Mode == "incremental" && r.TseitinClauses >= freshClauses {
			t.Fatalf("%s workers=%d: Tseitin clauses %d, want < fresh %d",
				r.Mode, r.Workers, r.TseitinClauses, freshClauses)
		}
	}
	if res.ClauseReduction <= 0 {
		t.Fatalf("clause reduction %.3f, want > 0", res.ClauseReduction)
	}
	if !strings.Contains(FormatIncremental(res), "clause reduction") {
		t.Fatal("format output malformed")
	}
}

func TestPreprocSweepQuick(t *testing.T) {
	res, err := Preproc(progs.DCGatewayBench(), []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4*2*2 {
		t.Fatalf("rows = %d, want %d", len(res.Rows), 4*2*2)
	}
	for _, r := range res.Rows {
		if !r.Identical {
			t.Fatalf("%s/%s workers=%d: canonical report differs from baseline", r.Config, r.Mode, r.Workers)
		}
		if r.Bugs == 0 {
			t.Fatalf("%s/%s workers=%d: no bugs on a benchmark with seeded violations", r.Config, r.Mode, r.Workers)
		}
		wantPrep := r.Config == "preprocess" || r.Config == "both"
		if gotPrep := r.ElimVars+r.SubsumedClauses > 0; gotPrep != wantPrep {
			t.Fatalf("%s/%s workers=%d: preprocessing work recorded = %v, want %v",
				r.Config, r.Mode, r.Workers, gotPrep, wantPrep)
		}
		wantSlice := r.Config == "slice" || r.Config == "both"
		if gotSlice := r.SliceDropped > 0; gotSlice != wantSlice {
			t.Fatalf("%s/%s workers=%d: sliced conjuncts = %d, want dropped: %v",
				r.Config, r.Mode, r.Workers, r.SliceDropped, wantSlice)
		}
	}
	if res.ClauseReduction <= 0 {
		t.Fatalf("clause reduction %.3f, want > 0", res.ClauseReduction)
	}
	if res.PropagationReduction <= 0 {
		t.Fatalf("propagation reduction %.3f, want > 0", res.PropagationReduction)
	}
	if !strings.Contains(FormatPreproc(res), "clause reduction") {
		t.Fatal("format output malformed")
	}
	// The self-comparison of a sweep must never flag a regression, and a
	// doctored reference with much tighter ratios must.
	if err := ComparePreproc(res, res); err != nil {
		t.Fatalf("self-comparison flagged a regression: %v", err)
	}
	tight := *res
	tight.Rows = append([]PreprocRow(nil), res.Rows...)
	for i := range tight.Rows {
		tight.Rows[i].RelWall /= 10
	}
	if err := ComparePreproc(&tight, res); err == nil {
		t.Fatal("10x tighter reference ratios not flagged as a regression")
	}
}

// TestChurnQuick runs a reduced churn experiment: every steady-state
// delta must reproduce the fresh run's canonical bytes and split the
// assertions between replay and re-check, and the CompareChurn gate must
// accept the run against itself but reject byte breaks and doctored
// ratios. The speedup bar itself is pinned by verify.TestSessionSpeedup;
// a 2-delta quick run is too noisy to re-assert it here.
func TestChurnQuick(t *testing.T) {
	res, err := Churn(16, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for i, r := range res.Rows {
		if !r.Identical {
			t.Fatalf("delta %d: session report differs from fresh verification", i)
		}
		if r.Reused == 0 || r.Rechecked == 0 {
			t.Fatalf("delta %d: reuse/recheck split %d/%d, want both non-zero", i, r.Reused, r.Rechecked)
		}
		if int(r.Reused+r.Rechecked) != res.Assertions {
			t.Fatalf("delta %d: reuse %d + recheck %d != %d assertions", i, r.Reused, r.Rechecked, res.Assertions)
		}
	}
	if res.Speedup <= 1 {
		t.Fatalf("steady-state speedup %.2fx, want > 1x even on a quick run", res.Speedup)
	}
	if !strings.Contains(FormatChurn(res), "speedup") {
		t.Fatal("format output malformed")
	}
	ok := *res
	ok.Speedup = 6 // quick runs may sit below the full-run bar; gate shape only
	if err := CompareChurn(&ok, &ok); err != nil {
		t.Fatalf("self-comparison flagged a regression: %v", err)
	}
	broken := ok
	broken.Rows = append([]ChurnRow(nil), ok.Rows...)
	broken.Rows[0].Identical = false
	if err := CompareChurn(&ok, &broken); err == nil {
		t.Fatal("byte-identity break not flagged")
	}
	slow := ok
	slow.Speedup = 4.2
	if err := CompareChurn(&ok, &slow); err == nil {
		t.Fatal("speedup below the 5x bar not flagged")
	}
	tight := ok
	tight.RelWall = ok.RelWall / 10
	if err := CompareChurn(&tight, &ok); err == nil {
		t.Fatal("10x tighter reference ratio not flagged as a regression")
	}
}
