package bench

import (
	"fmt"
	"strings"

	"aquila/internal/tables"
	"aquila/internal/verify"
)

// Table1Row is one property row of Table 1: a required production
// verification property and whether this implementation supports it. Each
// row is demonstrated by an executable scenario: a spec that must hold on
// a correct program and a variant that must be violated on a buggy one.
type Table1Row struct {
	Part     string
	Property string
	// Supported is determined by actually running the scenario.
	Supported bool
	Err       error
}

// table1Prog is the shared demonstration program.
const table1Prog = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> dscp; bit<8> protocol; bit<16> csum; bit<32> src_ip; bit<32> dst_ip; }
header ipv6_t { bit<8> nextHdr; bit<64> dst_hi; }
header tcp_t { bit<16> src_port; bit<16> dst_port; }
struct meta_t { bit<8> scratch; }

ethernet_t eth;
ipv4_t ipv4;
ipv6_t ipv6;
tcp_t tcp;
meta_t md;

register<bit<32>>(128) cnt;

parser P {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			0x86dd: parse_ipv6;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			6: parse_tcp;
			default: accept;
		}
	}
	state parse_ipv6 { extract(ipv6); transition accept; }
	state parse_tcp { extract(tcp); transition accept; }
}

control Ing {
	action set_port(bit<9> p) { std_meta.egress_spec = p; }
	action dec_ttl() { ipv4.ttl = ipv4.ttl - 1; cnt.write(0, 1); }
	action a_drop() { drop(); }
	action re_circ() { recirculate(); }
	table fwd {
		key = { ipv4.dst_ip : exact; }
		actions = { set_port; dec_ttl; a_drop; re_circ; }
		default_action = a_drop;
	}
	apply {
		if (ipv4.isValid()) { fwd.apply(); }
	}
}

control Egr {
	action mark() { ipv4.dscp = 46; }
	table qos { key = { ipv4.dscp : exact; } actions = { mark; } }
	apply { if (ipv4.isValid()) { qos.apply(); } }
}

deparser D {
	emit(eth);
	emit(ipv4);
	emit(ipv6);
	emit(tcp);
	update_checksum(ipv4.csum, ipv4.ttl, ipv4.protocol, ipv4.src_ip, ipv4.dst_ip);
}

pipeline ingress_pipe { parser = P; control = Ing; deparser = D; }
pipeline egress_pipe { parser = P; control = Egr; deparser = D; }
`

// table1Scenario runs a spec and checks the expected verdict.
func table1Scenario(specSrc string, snap *tables.Snapshot, wantHolds bool) error {
	prog := mustProg("table1", table1Prog)
	spec := mustSpec(specSrc)
	rep, err := verify.Run(prog, snap, spec, verify.Options{FindAll: true})
	if err != nil {
		return err
	}
	if rep.Holds != wantHolds {
		return fmt.Errorf("verdict = %v, want %v:\n%s", rep.Holds, wantHolds, rep.String())
	}
	return nil
}

func table1Snap() *tables.Snapshot {
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(0x0A000001)}, Action: "dec_ttl", Priority: -1})
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(0x0A000002)}, Action: "re_circ", Priority: -1})
	snap.Add("Egr.qos", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(0)}, Action: "mark", Priority: -1})
	return snap
}

const table1Init = `
assumption { init {
	pkt.$order == <eth ipv4 tcp>;
	pkt.eth.etherType == 0x0800;
	pkt.ipv4.protocol == 6;
	pkt.ipv4.ttl > 1;
} }
`

// Table1 evaluates every property row by running its scenario.
func Table1() []Table1Row {
	snap := table1Snap()
	rows := []struct {
		part, prop string
		check      func() error
	}{
		{"Parser", "Header order", func() error {
			// A packet declared <eth ipv4 tcp> parses tcp; asserting an
			// ipv6 order on the same packet must fail.
			if err := table1Scenario(table1Init+`
assertion { a = { valid(tcp); } }
program { assume(init); call(P); assert(a); }`, snap, true); err != nil {
				return err
			}
			return table1Scenario(table1Init+`
assertion { a = { pkt.$order == <eth ipv6>; } }
program { assume(init); call(P); assert(a); }`, snap, false)
		}},
		{"Parser", "Header parsing", func() error {
			// Parsed field values equal the wire image.
			return table1Scenario(table1Init+`
assertion { a = { ipv4.dst_ip == @pkt.ipv4.dst_ip; tcp.src_port == @pkt.tcp.src_port; } }
program { assume(init); call(P); assert(a); }`, snap, true)
		}},
		{"MAU", "Header validity", func() error {
			// ipv6 must not be valid for an IPv4 packet.
			return table1Scenario(table1Init+`
assertion { a = { !valid(ipv6); } }
program { assume(init); call(ingress_pipe); assert(a); }`, snap, true)
		}},
		{"MAU", "Field correctness", func() error {
			return table1Scenario(table1Init+`
assumption { dst { pkt.ipv4.dst_ip == 10.0.0.1; } }
assertion { a = { ipv4.ttl == @pkt.ipv4.ttl - 1; } }
program { assume(init); assume(dst); call(ingress_pipe); assert(a); }`, snap, true)
		}},
		{"MAU", "Payload correctness", func() error {
			// The unparsed remainder (payload headers) is forwarded
			// unchanged: keep() of a header the parser never extracts.
			return table1Scenario(table1Init+`
assertion { a = { keep(ipv6); keep(tcp); } }
program { assume(init); call(ingress_pipe); assert(a); }`, snap, true)
		}},
		{"MAU", "Expected table access", func() error {
			return table1Scenario(table1Init+`
assumption { dst { pkt.ipv4.dst_ip == 10.0.0.1; } }
assertion { a = { match(fwd, dec_ttl); applied(Ing.fwd); } }
program { assume(init); assume(dst); call(ingress_pipe); assert(a); }`, snap, true)
		}},
		{"MAU", "Table entry validity", func() error {
			// The installed snapshot entry for 10.0.0.2 recirculates.
			return table1Scenario(table1Init+`
assumption { dst { pkt.ipv4.dst_ip == 10.0.0.2; } }
assertion { a = { match(fwd, re_circ); std_meta.recirc == 1; } }
program { assume(init); assume(dst); call(ingress_pipe); assert(a); }`, snap, true)
		}},
		{"MAU", "Wildcard table entries", func() error {
			// With no snapshot, the property must hold for any entries:
			// whatever fwd does, non-hit packets keep their ttl.
			return table1Scenario(table1Init+`
assertion { a = { if (!match(fwd)) ipv4.ttl == @pkt.ipv4.ttl; } }
program { assume(init); call(ingress_pipe); assert(a); }`, nil, true)
		}},
		{"Deparser", "Deparsing", func() error {
			// Output header order and recomputed checksum.
			return table1Scenario(table1Init+`
assertion { a = {
	pkt.$out_order == <eth ipv4 tcp>;
	ipv4.csum == (bit<16>)ipv4.ttl + (bit<16>)ipv4.protocol + (bit<16>)ipv4.src_ip + (bit<16>)ipv4.dst_ip;
} }
program { assume(init); call(ingress_pipe); assert(a); }`, snap, true)
		}},
		{"Switch", "Multi-pipeline", func() error {
			// The egress pipeline runs after the ingress on the passed
			// packet (red-arrow style sequencing).
			return table1Scenario(table1Init+`
assumption { dst { pkt.ipv4.dst_ip == 10.0.0.1; pkt.ipv4.dscp == 0; } }
assertion { a = { match(Egr.qos, mark); ipv4.dscp == 46; } }
program { assume(init); assume(dst); call(ingress_pipe); call(egress_pipe); assert(a); }`, snap, true)
		}},
		{"Switch", "ASIC behaviors", func() error {
			// Bounded recirculation: the recirculated packet re-enters and,
			// now carrying ttl-1... simply check the recirc flag semantics.
			return table1Scenario(table1Init+`
assumption { dst { pkt.ipv4.dst_ip == 10.0.0.2; } }
assertion { a = { std_meta.recirc_count > 0; } }
program { assume(init); assume(dst); recirc(ingress_pipe, 2); assert(a); }`, snap, true)
		}},
		{"Switch", "Register", func() error {
			// dec_ttl writes register cnt; the spec observes the state.
			return table1Scenario(table1Init+`
assumption { dst { pkt.ipv4.dst_ip == 10.0.0.1; } }
assertion { a = { if (match(fwd, dec_ttl)) reg.cnt == 1; } }
program { assume(init); assume(dst); call(ingress_pipe); assert(a); }`, snap, true)
		}},
	}
	var out []Table1Row
	for _, r := range rows {
		err := r.check()
		out = append(out, Table1Row{Part: r.part, Property: r.prop, Supported: err == nil, Err: err})
	}
	return out
}

// FormatTable1 renders the matrix.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-24s %s\n", "Part", "Property", "Aquila (this repo)")
	for _, r := range rows {
		mark := "yes"
		if !r.Supported {
			mark = "NO: " + r.Err.Error()
		}
		fmt.Fprintf(&b, "%-10s %-24s %s\n", r.Part, r.Property, mark)
	}
	return b.String()
}
