package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"aquila/internal/lpi"
	"aquila/internal/progs"
	"aquila/internal/tables"
	"aquila/internal/verify"
)

// ChurnRow is one steady-state delta of the churn experiment: the same
// single-entry update re-verified by the warm session and by a full
// fresh run on the mutated snapshot.
type ChurnRow struct {
	Delta         string  `json:"delta"`
	SessionWallMS float64 `json:"session_wall_ms"`
	FreshWallMS   float64 `json:"fresh_wall_ms"`
	// Reused/Rechecked split the assertions between cached-verdict
	// replays and warm re-solves for this delta.
	Reused    int64 `json:"reused"`
	Rechecked int64 `json:"rechecked"`
	// Identical reports whether the session's canonical report bytes
	// match the fresh run's exactly (the delta determinism contract).
	Identical bool `json:"identical"`
}

// ChurnResult is the delta re-verification experiment: steady-state churn
// against the DC gateway in its holding state.
type ChurnResult struct {
	Program    string `json:"program"`
	Assertions int    `json:"assertions"`
	// Entries is the installed size of the churned table.
	Entries int `json:"entries"`
	CPUs    int `json:"cpus"`
	Warmup  int `json:"warmup"`
	// BaselineWallMS is the session's initial full verification.
	BaselineWallMS float64 `json:"baseline_wall_ms"`
	// Medians over the steady-state rows; Speedup is their ratio
	// (fresh / session) — the headline number, >= 5 by the acceptance
	// bar. RelWall is its inverse (session / fresh), the
	// machine-independent quantity CompareChurn gates on.
	MedianSessionMS float64    `json:"median_session_ms"`
	MedianFreshMS   float64    `json:"median_fresh_ms"`
	Speedup         float64    `json:"speedup"`
	RelWall         float64    `json:"rel_wall"`
	Rows            []ChurnRow `json:"rows"`
}

// churnWorkload builds the steady-state churn problem: the DC gateway
// with `entries` installed ECMP next-hop entries and the holding subset
// of the invalid-header-access property. The subset is derived by one
// fresh run on the full property: assertions the seeded bugs violate are
// dropped, because a standing violation re-solves its full condition on
// a deterministic fresh solver every delta (the price of byte-identical
// counterexample models) — not the regime churn amortization targets.
func churnWorkload(entries int) (*progs.Benchmark, *lpi.Spec, *tables.Snapshot, error) {
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		return nil, nil, nil, err
	}
	full := progs.InvalidHeaderAccessSpec(prog, bm.Calls)
	fullSpec, err := lpiParse(full)
	if err != nil {
		return nil, nil, nil, err
	}
	var rows []string
	for i := 0; i < entries; i++ {
		act := fmt.Sprintf("set_nhop(%d)", i%8+1)
		if i%16 == 15 {
			act = "a_drop"
		}
		rows = append(rows, fmt.Sprintf("  %d -> %s", i, act))
	}
	snap, err := tables.ParseSnapshot(
		"table GatewayIngress.ecmp_nhop_tbl {\n" + strings.Join(rows, "\n") + "\n}\n")
	if err != nil {
		return nil, nil, nil, err
	}
	rep, err := verify.Run(prog, snap, fullSpec, verify.Options{FindAll: true, Parallel: 1})
	if err != nil {
		return nil, nil, nil, err
	}
	violated := map[int]bool{}
	for _, v := range rep.Violations {
		var idx int
		fmt.Sscanf(v.Label[strings.LastIndexByte(v.Label, '#')+1:], "%d", &idx)
		violated[idx] = true
	}
	var out []string
	item := 0
	for _, ln := range strings.Split(full, "\n") {
		if strings.Contains(ln, "applied(") {
			skip := violated[item]
			item++
			if skip {
				continue
			}
		}
		out = append(out, ln)
	}
	spec, err := lpiParse(strings.Join(out, "\n"))
	if err != nil {
		return nil, nil, nil, err
	}
	return bm, spec, snap, nil
}

// churnFlipDeltas is the steady-state update pattern: one entry of the
// churned table flips between two actions, delta by delta.
func churnFlipDeltas() ([]*tables.Delta, error) {
	return tables.ParseDeltas(`
replace GatewayIngress.ecmp_nhop_tbl 0 0 -> a_drop
---
replace GatewayIngress.ecmp_nhop_tbl 0 0 -> set_nhop(1)
`)
}

// Churn measures delta re-verification: a warm verify.Session absorbs
// single-entry updates against the DC gateway's ECMP table (entries
// installed entries, all assertions holding), and each steady-state
// delta is also verified by a full fresh run on the mutated snapshot.
// Each delta's canonical report must match the fresh run's bytes; the
// headline is the median per-delta speedup after `warmup` warm-up
// deltas, over `steady` measured ones.
func Churn(entries, warmup, steady int) (*ChurnResult, error) {
	if entries <= 0 {
		entries = 64
	}
	if warmup <= 0 {
		warmup = 2
	}
	if steady <= 0 {
		steady = 8
	}
	bm, spec, snap, err := churnWorkload(entries)
	if err != nil {
		return nil, err
	}
	prog, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	flip, err := churnFlipDeltas()
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	sess, err := verify.NewSession(prog, snap, spec, verify.Options{Parallel: 1})
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	baselineWall := time.Since(t0)
	if !sess.Baseline().Holds {
		return nil, fmt.Errorf("bench: churn workload has standing violations")
	}

	res := &ChurnResult{
		Program:        bm.Name,
		Assertions:     sess.Baseline().Stats.Assertions,
		Entries:        entries,
		CPUs:           runtime.GOMAXPROCS(0),
		Warmup:         warmup,
		BaselineWallMS: float64(baselineWall.Microseconds()) / 1000,
	}
	for i := 0; i < warmup; i++ {
		if _, err := sess.Apply(flip[i%2]); err != nil {
			return nil, fmt.Errorf("bench: churn warmup delta %d: %w", i, err)
		}
	}
	var sessTimes, freshTimes []time.Duration
	for i := 0; i < steady; i++ {
		// Continue the warmup's flip parity so every steady delta is a
		// real change, never a no-op repeat of the previous state.
		d := flip[(warmup+i)%2]
		s0 := time.Now()
		rep, err := sess.Apply(d)
		if err != nil {
			return nil, fmt.Errorf("bench: churn delta %d: %w", i, err)
		}
		sessWall := time.Since(s0)
		sessJS, err := rep.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		f0 := time.Now()
		fresh, err := verify.Run(prog, sess.Snapshot(), spec, verify.Options{FindAll: true, Parallel: 1})
		if err != nil {
			return nil, fmt.Errorf("bench: churn fresh run %d: %w", i, err)
		}
		freshWall := time.Since(f0)
		freshJS, err := fresh.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		sessTimes = append(sessTimes, sessWall)
		freshTimes = append(freshTimes, freshWall)
		res.Rows = append(res.Rows, ChurnRow{
			Delta:         strings.TrimSpace(tables.FormatDelta(d)),
			SessionWallMS: float64(sessWall.Microseconds()) / 1000,
			FreshWallMS:   float64(freshWall.Microseconds()) / 1000,
			Reused:        rep.Stats.DeltaReuse,
			Rechecked:     rep.Stats.DeltaRecheck,
			Identical:     bytes.Equal(sessJS, freshJS),
		})
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	res.MedianSessionMS = ms(durMedian(sessTimes))
	res.MedianFreshMS = ms(durMedian(freshTimes))
	if res.MedianSessionMS > 0 {
		res.Speedup = res.MedianFreshMS / res.MedianSessionMS
	}
	if res.MedianFreshMS > 0 {
		res.RelWall = res.MedianSessionMS / res.MedianFreshMS
	}
	return res, nil
}

func durMedian(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// CompareChurn checks a fresh churn run against a checked-in reference.
// Byte identity is absolute: every row must match its fresh run. The
// real performance gate is the machine-independent >= 5x steady-state
// bar (RelWall <= 0.2); the reference-relative check on RelWall
// (session wall / fresh wall, medians) is a noise-tolerant backstop at
// 50% — per-delta walls are single-digit milliseconds, so a 20% band
// flakes on one slow scheduler quantum.
func CompareChurn(ref, cur *ChurnResult) error {
	const slack = 1.50
	var problems []string
	for i, row := range cur.Rows {
		if !row.Identical {
			problems = append(problems, fmt.Sprintf(
				"delta %d (%s): session report differs from fresh verification", i, row.Delta))
		}
	}
	if cur.Speedup < 5 {
		problems = append(problems, fmt.Sprintf(
			"steady-state speedup %.2fx below the 5x acceptance bar", cur.Speedup))
	}
	if ref.RelWall > 0 && cur.RelWall > ref.RelWall*slack {
		problems = append(problems, fmt.Sprintf(
			"relative wall time %.3f exceeds reference %.3f by more than %.0f%%",
			cur.RelWall, ref.RelWall, 100*(slack-1)))
	}
	if len(problems) > 0 {
		return fmt.Errorf("bench: churn regression on %s:\n  %s",
			cur.Program, strings.Join(problems, "\n  "))
	}
	return nil
}

// JSON renders the experiment for BENCH_churn.json.
func (r *ChurnResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatChurn renders the experiment as the usual aquila-bench table.
func FormatChurn(r *ChurnResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Delta re-verification churn: %s (%d assertions holding, %d entries, %d CPUs, %d warmup)\n",
		r.Program, r.Assertions, r.Entries, r.CPUs, r.Warmup)
	fmt.Fprintf(&b, "baseline full verification: %.1f ms\n", r.BaselineWallMS)
	fmt.Fprintf(&b, "%-4s  %-52s  %10s  %9s  %6s  %7s  %9s\n",
		"#", "delta", "session ms", "fresh ms", "reuse", "recheck", "identical")
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%-4d  %-52s  %10.2f  %9.2f  %6d  %7d  %9v\n",
			i, row.Delta, row.SessionWallMS, row.FreshWallMS, row.Reused, row.Rechecked, row.Identical)
	}
	fmt.Fprintf(&b, "steady-state medians: session %.2f ms vs fresh %.2f ms per delta: %.1fx speedup\n",
		r.MedianSessionMS, r.MedianFreshMS, r.Speedup)
	return b.String()
}
