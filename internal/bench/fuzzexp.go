package bench

import (
	"fmt"
	"strings"
	"time"

	"aquila/internal/fuzz"
)

// FuzzRow is one line of the self-validation fuzzing experiment: a
// rediscovery campaign against an injected historical encoder bug, or a
// clean campaign against the unmodified pipeline.
type FuzzRow struct {
	Campaign    string
	Seed        int64
	Iters       int
	Rejected    int
	Coverage    int
	FoundAtIter int // 0 for clean campaigns
	Divergences int
	Wall        time.Duration
}

// FuzzCampaigns runs the §6 self-validation story as an experiment: the
// coverage-guided differential fuzzer must rediscover both historical
// encoder bugs from a fixed seed within a bounded budget, and a clean
// campaign over the unmodified pipeline must end with zero divergences.
func FuzzCampaigns(seed int64, quick bool) ([]FuzzRow, error) {
	rediscBudget, cleanIters := 400, 25
	if quick {
		rediscBudget, cleanIters = 200, 5
	}
	var rows []FuzzRow
	for _, bug := range []string{"empty-state-accept", "ignore-defaultonly"} {
		eng := fuzz.New(fuzz.Config{Seed: seed, Iters: rediscBudget, TargetBug: bug, SeedPrograms: 3})
		res, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("rediscovery %q: %w", bug, err)
		}
		if res.FoundAtIter == 0 {
			return nil, fmt.Errorf("rediscovery %q: bug not exposed in %d iterations", bug, rediscBudget)
		}
		rows = append(rows, FuzzRow{
			Campaign: "rediscover " + bug, Seed: seed, Iters: res.Iters,
			Rejected: res.Rejected, Coverage: res.CoveragePoints,
			FoundAtIter: res.FoundAtIter, Divergences: len(res.Divergences), Wall: res.Elapsed,
		})
	}
	eng := fuzz.New(fuzz.Config{Seed: seed, Iters: cleanIters, SeedPrograms: 3})
	res, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("clean campaign: %w", err)
	}
	if len(res.Divergences) > 0 {
		return nil, fmt.Errorf("clean campaign found %d divergences: %s", len(res.Divergences), res.Divergences[0])
	}
	rows = append(rows, FuzzRow{
		Campaign: "clean pipeline", Seed: seed, Iters: res.Iters,
		Rejected: res.Rejected, Coverage: res.CoveragePoints,
		Divergences: len(res.Divergences), Wall: res.Elapsed,
	})
	return rows, nil
}

// FormatFuzz renders the fuzzing experiment rows.
func FormatFuzz(rows []FuzzRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %6s %6s %8s %9s %9s %7s %10s\n",
		"campaign", "seed", "iters", "rejected", "coverage", "found@", "diverg", "wall")
	for _, r := range rows {
		found := "-"
		if r.FoundAtIter > 0 {
			found = fmt.Sprintf("%d", r.FoundAtIter)
		}
		fmt.Fprintf(&b, "%-30s %6d %6d %8d %9d %9s %7d %10s\n",
			r.Campaign, r.Seed, r.Iters, r.Rejected, r.Coverage, found,
			r.Divergences, r.Wall.Round(time.Millisecond))
	}
	return b.String()
}
