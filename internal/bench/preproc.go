package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"aquila/internal/progs"
	"aquila/internal/verify"
)

// preprocConfigs are the four formula-shrinking configurations the sweep
// compares. "baseline" is the PR-3 engine untouched; the other three
// switch on CNF preprocessing, cone-of-influence slicing, or both.
var preprocConfigs = []struct {
	Name       string
	Preprocess bool
	Slice      bool
}{
	{"baseline", false, false},
	{"preprocess", true, false},
	{"slice", false, true},
	{"both", true, true},
}

// PreprocRow is one (config, mode, workers) measurement of the
// preprocessing sweep: find-all verification of the same program with a
// given combination of CNF preprocessing and COI slicing.
type PreprocRow struct {
	Config  string `json:"config"` // baseline|preprocess|slice|both
	Mode    string `json:"mode"`   // "fresh" or "incremental"
	Workers int    `json:"workers"`
	// WallMS / SolveCPUMS come from the best-of-repeats run.
	WallMS     float64 `json:"wall_ms"`
	SolveCPUMS float64 `json:"solve_cpu_ms"`
	// CNFClauses is the retained clause footprint across all solvers of
	// the run; Propagations is the SAT core's total unit-propagation
	// count — the two quantities preprocessing and slicing exist to
	// shrink.
	CNFClauses   int64 `json:"cnf_clauses"`
	Propagations int64 `json:"propagations"`
	// Preprocessing work actually performed (zero in baseline/slice).
	ElimVars        int64 `json:"elim_vars,omitempty"`
	SubsumedClauses int64 `json:"subsumed_clauses,omitempty"`
	// Slicing work actually performed (zero in baseline/preprocess).
	SliceDropped int64 `json:"slice_dropped,omitempty"`
	// RelWall is this row's wall time divided by the baseline fresh
	// workers=1 wall time of the same run. Unlike WallMS it is
	// comparable across machines, so it is what ComparePreproc checks.
	RelWall float64 `json:"rel_wall"`
	// Identical reports whether this row's canonical report bytes match
	// the baseline fresh workers=1 report exactly.
	Identical bool `json:"identical"`
	Bugs      int  `json:"bugs"`
}

// PreprocResult is the whole preprocessing/slicing sweep.
type PreprocResult struct {
	Program    string `json:"program"`
	Assertions int    `json:"assertions"`
	CPUs       int    `json:"cpus"`
	Repeats    int    `json:"repeats"`
	// ClauseReduction and PropagationReduction compare the "both" config
	// against "baseline" at incremental mode, workers=1 — the shipping
	// configuration — giving the headline "shrink every formula before it
	// hits the SAT core" savings. Fresh mode is not the headline because
	// every violated assertion there pays a full plain re-solve to keep
	// reports byte-identical, which on bug-dense programs (DC Gateway
	// violates most of its assertions) can outweigh the shrink.
	ClauseReduction      float64      `json:"clause_reduction"`
	PropagationReduction float64      `json:"propagation_reduction"`
	Rows                 []PreprocRow `json:"rows"`
}

// Preproc sweeps find-all verification of bm over the four preprocessing
// configurations × {fresh, incremental} × workerCounts (each run repeated
// `repeats` times, best wall time kept). Every row must reproduce the
// baseline fresh workers=1 canonical report byte for byte. The first
// entry of workerCounts must be 1 (the identity and RelWall baseline).
func Preproc(bm *progs.Benchmark, workerCounts []int, repeats int) (*PreprocResult, error) {
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		return nil, fmt.Errorf("bench: preproc sweep needs workerCounts starting at 1, got %v", workerCounts)
	}
	if repeats < 1 {
		repeats = 1
	}
	prog, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	spec, err := lpiParse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		return nil, err
	}
	res := &PreprocResult{
		Program: bm.Name,
		CPUs:    runtime.GOMAXPROCS(0),
		Repeats: repeats,
	}
	var baseline []byte
	var baseWall time.Duration
	var baseClauses, baseProps, bothClauses, bothProps int64
	for _, cfg := range preprocConfigs {
		for _, incremental := range []bool{false, true} {
			for _, w := range workerCounts {
				var best time.Duration
				var bestRep *verify.Report
				for r := 0; r < repeats; r++ {
					opts := verify.Options{FindAll: true, Parallel: w,
						Incremental: incremental, Simplify: incremental,
						Preprocess: cfg.Preprocess, Slice: cfg.Slice}
					start := time.Now()
					rep, err := verify.Run(prog, nil, spec, opts)
					wall := time.Since(start)
					if err != nil {
						return nil, fmt.Errorf("bench: preproc config=%s incremental=%v workers=%d: %w",
							cfg.Name, incremental, w, err)
					}
					if bestRep == nil || wall < best {
						best, bestRep = wall, rep
					}
				}
				canon, err := bestRep.CanonicalJSON()
				if err != nil {
					return nil, err
				}
				if baseline == nil {
					baseline, baseWall = canon, best
					res.Assertions = bestRep.Stats.Assertions
				}
				mode := "fresh"
				if incremental {
					mode = "incremental"
				}
				if incremental && w == 1 {
					switch cfg.Name {
					case "baseline":
						baseClauses = int64(bestRep.Stats.CNFClauses)
						baseProps = bestRep.Stats.Propagations
					case "both":
						bothClauses = int64(bestRep.Stats.CNFClauses)
						bothProps = bestRep.Stats.Propagations
					}
				}
				res.Rows = append(res.Rows, PreprocRow{
					Config:          cfg.Name,
					Mode:            mode,
					Workers:         w,
					WallMS:          float64(best.Microseconds()) / 1000,
					SolveCPUMS:      float64(bestRep.Stats.SolveCPU.Microseconds()) / 1000,
					CNFClauses:      int64(bestRep.Stats.CNFClauses),
					Propagations:    bestRep.Stats.Propagations,
					ElimVars:        bestRep.Stats.ElimVars,
					SubsumedClauses: bestRep.Stats.SubsumedClauses,
					SliceDropped:    bestRep.Stats.SliceDropped,
					RelWall:         float64(best) / float64(baseWall),
					Identical:       bytes.Equal(canon, baseline),
					Bugs:            len(bestRep.Violations),
				})
			}
		}
	}
	if baseClauses > 0 {
		res.ClauseReduction = 1 - float64(bothClauses)/float64(baseClauses)
	}
	if baseProps > 0 {
		res.PropagationReduction = 1 - float64(bothProps)/float64(baseProps)
	}
	return res, nil
}

// ComparePreproc checks a fresh sweep against a checked-in reference and
// reports a regression error when the current run is meaningfully worse.
// Absolute wall times are machine-dependent, so the comparison works on
// each row's RelWall — wall time relative to that same run's baseline
// fresh workers=1 row. A preprocessing/slicing config whose relative
// wall time grew more than 20% beyond the reference ratio is a
// regression; so is any non-identical report or a vanished clause
// reduction.
func ComparePreproc(ref, cur *PreprocResult) error {
	const slack = 1.20
	refRel := make(map[string]float64, len(ref.Rows))
	for _, row := range ref.Rows {
		refRel[row.Config+"/"+row.Mode+"/"+fmt.Sprint(row.Workers)] = row.RelWall
	}
	var problems []string
	for _, row := range cur.Rows {
		key := row.Config + "/" + row.Mode + "/" + fmt.Sprint(row.Workers)
		if !row.Identical {
			problems = append(problems, fmt.Sprintf("%s: canonical report differs from baseline", key))
			continue
		}
		old, ok := refRel[key]
		if !ok || old <= 0 {
			continue // new configuration: nothing to compare against
		}
		if row.RelWall > old*slack {
			problems = append(problems,
				fmt.Sprintf("%s: relative wall time %.2f exceeds reference %.2f by more than %.0f%%",
					key, row.RelWall, old, 100*(slack-1)))
		}
	}
	if ref.ClauseReduction > 0 && cur.ClauseReduction <= 0 {
		problems = append(problems, fmt.Sprintf(
			"clause reduction vanished: reference %.1f%%, current %.1f%%",
			100*ref.ClauseReduction, 100*cur.ClauseReduction))
	}
	if len(problems) > 0 {
		return fmt.Errorf("bench: preproc regression on %s:\n  %s",
			cur.Program, strings.Join(problems, "\n  "))
	}
	return nil
}

// JSON renders the sweep for BENCH_preproc.json.
func (r *PreprocResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatPreproc renders the sweep as the usual aquila-bench table.
func FormatPreproc(r *PreprocResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CNF preprocessing + COI slicing sweep: %s (%d assertions, %d CPUs, best of %d)\n",
		r.Program, r.Assertions, r.CPUs, r.Repeats)
	fmt.Fprintf(&b, "%-11s  %-12s  %-8s  %9s  %12s  %9s  %11s  %8s  %7s  %8s  %9s\n",
		"config", "mode", "workers", "wall ms", "solve-cpu ms", "clauses", "propagations",
		"elim", "subsum", "sliced", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s  %-12s  %-8d  %9.1f  %12.1f  %9d  %11d  %8d  %7d  %8d  %9v\n",
			row.Config, row.Mode, row.Workers, row.WallMS, row.SolveCPUMS,
			row.CNFClauses, row.Propagations, row.ElimVars, row.SubsumedClauses,
			row.SliceDropped, row.Identical)
	}
	fmt.Fprintf(&b, "clause reduction (both vs baseline, incremental workers=1): %.1f%%\n",
		100*r.ClauseReduction)
	fmt.Fprintf(&b, "propagation reduction (both vs baseline, incremental workers=1): %.1f%%\n",
		100*r.PropagationReduction)
	return b.String()
}
