package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"aquila/internal/encode"
	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/obs"
	"aquila/internal/progs"
	"aquila/internal/verify"
)

// The scale campaign (ROADMAP item 3) pushes genprog 10–100× past the
// switch-T small structural counts and 10⁴–10⁵ table entries — well past
// the paper's Figure 11 sweeps — and records, per point, the three
// quantities the allocation-lean engine exists to bound: wall time, peak
// live heap (the RSS proxy Go can observe portably), and heap allocation
// count. The numbers flow through the obs registry into BENCH_scale.json,
// and CompareScale turns the checked-in file into a relative regression
// gate, the same contract ComparePreproc established for the
// preprocessing sweep.

// ScaleRow is one campaign point.
type ScaleRow struct {
	// Point names the measurement: axis + scale + parser/table encodings,
	// e.g. "struct_x10/seq/abv". Keys are stable across runs — the
	// regression gate joins on them.
	Point string `json:"point"`
	// Axis is "anchor" (DC Gateway, the allocs/op gate point),
	// "structural" (pipelines/parsers/tables multiplied) or "entries"
	// (big-table snapshot sweeps).
	Axis string `json:"axis"`
	// Scale is the structural multiplier over switch-T small, or the
	// entry count on the entries axis (0 for the anchor).
	Scale int `json:"scale"`
	// Parser/Table name the encodings: "seq" vs "tree", "abv" vs "naive".
	Parser string `json:"parser"`
	Table  string `json:"table"`

	Assertions int     `json:"assertions"`
	Bugs       int     `json:"bugs"`
	WallMS     float64 `json:"wall_ms"`
	// RelWall is wall time relative to the anchor row of the same run;
	// unlike WallMS it is comparable across machines, so it is what
	// CompareScale checks.
	RelWall float64 `json:"rel_wall"`
	// PeakHeapBytes is the maximum live heap sampled during the run — the
	// quantity that must stop scaling with whole-program VC size once VCs
	// stream. Allocs counts heap allocations over the run (the benchmark
	// allocs/op figure, measured via runtime.MemStats).
	PeakHeapBytes int64 `json:"peak_heap_bytes"`
	Allocs        int64 `json:"allocs"`
	// MemFormula is term DAG nodes + retained CNF clauses, the formula
	// footprint the paper reports as verification memory.
	MemFormula int64 `json:"mem_formula"`
	// Fail is "", "OOM" (encoding exploded) or "OOT" (budget exhausted).
	// An explosion is an expected outcome on hostile points (naive tables
	// at 10⁵ entries, tree parsers at 40 states) — the gate only flags a
	// point whose fail state CHANGED versus the reference.
	Fail string `json:"fail,omitempty"`
}

// ScaleBaseline pins the measurements taken on the pre-arena engine (the
// seed of this PR) immediately before the term-arena / flat-clause-DB /
// streaming-VC refactor landed. They are the fixed "before" of the
// acceptance criterion and do not change when the campaign reruns.
type ScaleBaseline struct {
	// DCGatewayAllocs is allocs per find-all verify run on DC Gateway.
	DCGatewayAllocs int64 `json:"dcgw_allocs"`
	// LargestPoint / LargestPeakHeapBytes record peak live heap on the
	// largest structural point the pre-arena engine completed.
	LargestPoint         string `json:"largest_point"`
	LargestPeakHeapBytes int64  `json:"largest_peak_heap_bytes"`
}

// PreArenaBaseline was measured on the seed engine (commit 9c64427) with
// this same campaign harness — same points, same options (find-all,
// preprocess + slice, serial; the seed has no streaming), same 5 ms
// MemStats sampler — before the memory-layout refactor. See
// EXPERIMENTS.md ("Scale campaign") for methodology.
var PreArenaBaseline = ScaleBaseline{
	DCGatewayAllocs:      792_078,
	LargestPoint:         "struct_x20/seq/abv",
	LargestPeakHeapBytes: 563_230_736,
}

// ScaleResult is the whole campaign.
type ScaleResult struct {
	CPUs    int  `json:"cpus"`
	NumCPU  int  `json:"num_cpu"`
	Quick   bool `json:"quick"`
	Repeats int  `json:"repeats"`
	// PreArena embeds the frozen pre-refactor baseline; AllocReduction and
	// PeakHeapReduction compare this run's anchor allocs and largest-point
	// peak heap against it (1 - current/baseline; higher is better).
	PreArena          ScaleBaseline `json:"pre_arena_baseline"`
	AllocReduction    float64       `json:"alloc_reduction_dcgw"`
	PeakHeapReduction float64       `json:"peak_heap_reduction_largest"`
	Rows              []ScaleRow    `json:"rows"`
}

// scalePoint is one campaign configuration before measurement.
type scalePoint struct {
	key    string
	axis   string
	scale  int
	parser string
	table  string
	quick  bool // included in -quick runs (the CI subset)
	run    func() (*verify.Report, error)
}

// scaleBudget bounds SAT conflicts on the hostile points so explosions
// surface as OOT rows instead of hung campaigns.
const scaleBudget = 20_000_000

// scalePoints builds the campaign. Axes:
//
//   - anchor: DC Gateway find-all with the shipping engine config — the
//     allocs/op gate point, directly comparable to the pre-arena baseline.
//   - structural: switch-T small multiplied ×10 and ×20 (120 and 240
//     tables, 2 and 3 pipelines), sequential vs tree parser encodings.
//   - entries: the big-table program under 10⁴ and 10⁵ installed entries,
//     balanced-ABV-tree vs naive table encodings.
func scalePoints(quick bool) ([]scalePoint, error) {
	var pts []scalePoint

	// Anchor.
	dcgw := progs.DCGatewayBench()
	dcProg, err := dcgw.Parse()
	if err != nil {
		return nil, err
	}
	dcSpec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(dcProg, dcgw.Calls))
	if err != nil {
		return nil, err
	}
	pts = append(pts, scalePoint{
		key: "dcgw/seq/abv", axis: "anchor", parser: "seq", table: "abv", quick: true,
		run: func() (*verify.Report, error) {
			return verify.Run(dcProg, nil, dcSpec, scaleOpts(encode.Options{}))
		},
	})

	// Structural multipliers over switch-T small (12 tables, 12 parser
	// states, 1 pipe). ×20 (240 tables, 3 pipes) is the committed top:
	// ×40 at 5 pipes ran past an hour per engine on this container —
	// per-assertion cost grows with table count AND assertion count grows
	// with table count, so wall is superquadratic in the multiplier — and
	// a point nobody can re-measure is not a regression gate.
	structCfg := func(mult int) genprog.Config {
		base := genprog.SwitchT("small")
		base.TTLChain = false
		base.SeedBug = true
		base.Pipes = 1 + mult/10 // ×10 → 2 pipes, ×20 → 3
		base.Tables = 12 * mult  // hundreds of tables
		base.ParserStates = 12 + mult/2
		return base
	}
	structPt := func(mult int, parser string, quickPt bool) (scalePoint, error) {
		cfg := structCfg(mult)
		bm := genprog.Assemble(cfg)
		prog, err := bm.Parse()
		if err != nil {
			return scalePoint{}, err
		}
		spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
		if err != nil {
			return scalePoint{}, err
		}
		eopts := encode.Options{}
		if parser == "tree" {
			eopts.Parser = encode.ParserTree
			eopts.TreeCap = 2_000_000
		}
		return scalePoint{
			key:  fmt.Sprintf("struct_x%d/%s/abv", mult, parser),
			axis: "structural", scale: mult, parser: parser, table: "abv", quick: quickPt,
			run: func() (*verify.Report, error) {
				return verify.Run(prog, nil, spec, scaleOpts(eopts))
			},
		}, nil
	}
	for _, p := range []struct {
		mult   int
		parser string
		quick  bool
	}{
		{10, "seq", true},
		{10, "tree", false},
		{20, "seq", false},
	} {
		pt, err := structPt(p.mult, p.parser, p.quick)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}

	// Entry sweeps on the big-table program.
	entryCfg := genprog.SwitchT("small")
	entryCfg.TTLChain = false
	entryBM := genprog.Assemble(entryCfg)
	entryProg, err := entryBM.Parse()
	if err != nil {
		return nil, err
	}
	entryPt := func(n int, table string, mode encode.TableMode, quickPt bool) (scalePoint, error) {
		snap := genprog.BigTableSnapshot(entryCfg, n)
		dst := uint64(0x0A000000 + n/2)
		spec, err := lpi.Parse(genprog.BigTableSpec(entryCfg, entryBM.Calls, dst, uint64((n/2)%500)))
		if err != nil {
			return scalePoint{}, err
		}
		return scalePoint{
			key:  fmt.Sprintf("entries_%d/seq/%s", n, table),
			axis: "entries", scale: n, parser: "seq", table: table, quick: quickPt,
			run: func() (*verify.Report, error) {
				return verify.Run(entryProg, snap, spec, scaleOpts(encode.Options{Table: mode}))
			},
		}, nil
	}
	for _, p := range []struct {
		n     int
		table string
		mode  encode.TableMode
		quick bool
	}{
		{10_000, "abv", encode.TableABVTree, true},
		{10_000, "naive", encode.TableNaive, false},
		{100_000, "abv", encode.TableABVTree, false},
	} {
		pt, err := entryPt(p.n, p.table, p.mode, p.quick)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}

	if quick {
		var qs []scalePoint
		for _, p := range pts {
			if p.quick {
				qs = append(qs, p)
			}
		}
		pts = qs
	}
	return pts, nil
}

// scaleOpts is the shipping memory-lean engine configuration every
// campaign point runs under: streaming find-all (serial, per-assertion
// arena release) with CNF preprocessing and COI slicing.
func scaleOpts(eopts encode.Options) verify.Options {
	return verify.Options{
		Encode:     eopts,
		FindAll:    true,
		Budget:     scaleBudget,
		Preprocess: true,
		Slice:      true,
		Stream:     true,
		Parallel:   1,
	}
}

// Scale runs the campaign. With quick set only the CI subset runs (one
// point per axis); reg, when non-nil, receives each row's peak-heap gauge
// and allocation counter so traces show the campaign like any other
// instrumented phase.
func Scale(quick bool, reg *obs.Registry) (*ScaleResult, error) {
	pts, err := scalePoints(quick)
	if err != nil {
		return nil, err
	}
	res := &ScaleResult{
		CPUs:     runtime.GOMAXPROCS(0),
		NumCPU:   runtime.NumCPU(),
		Quick:    quick,
		Repeats:  1,
		PreArena: PreArenaBaseline,
	}
	var anchorWall time.Duration
	for _, p := range pts {
		row := ScaleRow{Point: p.key, Axis: p.axis, Scale: p.scale, Parser: p.parser, Table: p.table}

		// Quiesce, then measure: allocation count from MemStats deltas,
		// peak live heap from a background sampler (Go cannot observe RSS
		// portably; max HeapAlloc is the closest faithful proxy).
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		stop := make(chan struct{})
		done := make(chan struct{})
		var peak atomic.Int64
		peak.Store(int64(m0.HeapAlloc))
		go func() {
			defer close(done)
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					var m runtime.MemStats
					runtime.ReadMemStats(&m)
					if h := int64(m.HeapAlloc); h > peak.Load() {
						peak.Store(h)
					}
				}
			}
		}()

		start := time.Now()
		rep, runErr := p.run()
		wall := time.Since(start)
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		close(stop)
		<-done
		if h := int64(m1.HeapAlloc); h > peak.Load() {
			peak.Store(h)
		}

		row.WallMS = float64(wall.Microseconds()) / 1000
		row.PeakHeapBytes = peak.Load()
		row.Allocs = int64(m1.Mallocs - m0.Mallocs)
		if runErr != nil {
			out, ferr := failOutcome(runErr)
			if ferr != nil {
				return nil, fmt.Errorf("bench: scale point %s: %w", p.key, ferr)
			}
			row.Fail = out.Fail
		} else {
			row.Assertions = rep.Stats.Assertions
			row.Bugs = len(rep.Violations)
			row.MemFormula = int64(rep.Stats.TermNodes + rep.Stats.CNFClauses)
		}
		if p.axis == "anchor" {
			anchorWall = wall
		}
		if anchorWall > 0 {
			row.RelWall = float64(wall) / float64(anchorWall)
		}
		if reg != nil {
			reg.Gauge(obs.GaugeBenchPeakHeap).Set(row.PeakHeapBytes)
			reg.Counter(obs.CtrBenchAllocs).Add(row.Allocs)
		}
		res.Rows = append(res.Rows, row)
	}

	// Reductions against the frozen pre-arena baseline.
	for _, row := range res.Rows {
		if row.Axis == "anchor" && res.PreArena.DCGatewayAllocs > 0 {
			res.AllocReduction = 1 - float64(row.Allocs)/float64(res.PreArena.DCGatewayAllocs)
		}
		if row.Point == res.PreArena.LargestPoint && res.PreArena.LargestPeakHeapBytes > 0 {
			res.PeakHeapReduction = 1 - float64(row.PeakHeapBytes)/float64(res.PreArena.LargestPeakHeapBytes)
		}
	}
	return res, nil
}

// CompareScale checks a fresh campaign against the checked-in reference
// and reports an error when the current run is meaningfully worse: a
// fail state that changed, allocation count grown >20% beyond the
// reference on any point present in both, relative wall time grown
// >50%, or a vanished allocation reduction. Allocation counts are
// deterministic (run-to-run deltas of a few counts in hundreds of
// millions), so they get the tight slack and carry the gate; wall times
// on a busy single-core runner jitter ±20% per point, and RelWall is a
// ratio of two such measurements with a ~100ms denominator, so the wall
// check is a loose backstop against catastrophic slowdowns only.
func CompareScale(ref, cur *ScaleResult) error {
	const (
		wallSlack  = 1.50
		allocSlack = 1.20
	)
	refRows := make(map[string]ScaleRow, len(ref.Rows))
	for _, r := range ref.Rows {
		refRows[r.Point] = r
	}
	var problems []string
	for _, row := range cur.Rows {
		old, ok := refRows[row.Point]
		if !ok {
			continue // new point: nothing to compare against
		}
		if row.Fail != old.Fail {
			problems = append(problems, fmt.Sprintf("%s: fail state %q, reference %q",
				row.Point, row.Fail, old.Fail))
			continue
		}
		if old.RelWall > 0 && row.RelWall > old.RelWall*wallSlack {
			problems = append(problems, fmt.Sprintf(
				"%s: relative wall %.2f exceeds reference %.2f by more than %.0f%%",
				row.Point, row.RelWall, old.RelWall, 100*(wallSlack-1)))
		}
		if old.Allocs > 0 && float64(row.Allocs) > float64(old.Allocs)*allocSlack {
			problems = append(problems, fmt.Sprintf(
				"%s: allocs %d exceed reference %d by more than %.0f%%",
				row.Point, row.Allocs, old.Allocs, 100*(allocSlack-1)))
		}
	}
	if ref.AllocReduction > 0.40 && cur.AllocReduction <= 0.40 {
		problems = append(problems, fmt.Sprintf(
			"DC Gateway alloc reduction fell below the 40%% bar: reference %.1f%%, current %.1f%%",
			100*ref.AllocReduction, 100*cur.AllocReduction))
	}
	if len(problems) > 0 {
		return fmt.Errorf("bench: scale regression:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// JSON renders the campaign for BENCH_scale.json.
func (r *ScaleResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatScale renders the campaign as the usual aquila-bench table.
func FormatScale(r *ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale campaign (%d CPUs, quick=%v)\n", r.NumCPU, r.Quick)
	fmt.Fprintf(&b, "%-24s  %-10s  %9s  %8s  %12s  %12s  %11s  %5s  %5s\n",
		"point", "axis", "wall ms", "rel", "peak heap", "allocs", "formula", "bugs", "fail")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s  %-10s  %9.1f  %8.2f  %12d  %12d  %11d  %5d  %5s\n",
			row.Point, row.Axis, row.WallMS, row.RelWall, row.PeakHeapBytes,
			row.Allocs, row.MemFormula, row.Bugs, row.Fail)
	}
	if r.PreArena.DCGatewayAllocs > 0 {
		fmt.Fprintf(&b, "alloc reduction vs pre-arena engine (DC Gateway): %.1f%%\n", 100*r.AllocReduction)
	}
	if r.PreArena.LargestPeakHeapBytes > 0 {
		fmt.Fprintf(&b, "peak-heap reduction vs pre-arena engine (%s): %.1f%%\n",
			r.PreArena.LargestPoint, 100*r.PeakHeapReduction)
	}
	return b.String()
}
