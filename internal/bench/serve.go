package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"time"

	"aquila/internal/serve"
	"aquila/internal/tables"
	"aquila/internal/verify"
)

// ServeRow is one steady-state delta of the serve experiment: the same
// single-entry update pushed through the in-process daemon (HTTP wall is
// end-to-end — parse, admission, queue, warm verify, journal-less reply)
// and verified by a full fresh run on the mutated snapshot.
type ServeRow struct {
	Delta string `json:"delta"`
	// HTTPWallMS is the full request round trip through the handler;
	// FreshWallMS the differential fresh run on the mutated snapshot.
	HTTPWallMS  float64 `json:"http_wall_ms"`
	FreshWallMS float64 `json:"fresh_wall_ms"`
	// Identical reports whether the HTTP response body matched the fresh
	// run's canonical bytes exactly (the daemon's determinism contract).
	Identical bool `json:"identical"`
}

// ServeResult is the continuous-verification-daemon experiment: the
// churn workload served over HTTP, measuring what the service layer adds
// on top of the warm session engine.
type ServeResult struct {
	Program    string `json:"program"`
	Assertions int    `json:"assertions"`
	Entries    int    `json:"entries"`
	CPUs       int    `json:"cpus"`
	Warmup     int    `json:"warmup"`
	// CreateWallMS is the POST /sessions round trip (baseline full
	// verification plus handler overhead).
	CreateWallMS float64 `json:"create_wall_ms"`
	// Medians over the steady-state rows; Speedup is fresh/HTTP — the
	// serve analogue of the churn headline, proving the HTTP layer does
	// not erode the warm engine's amortization. RelWall is its inverse,
	// the machine-independent quantity CompareServe gates on.
	MedianHTTPMS  float64    `json:"median_http_ms"`
	MedianFreshMS float64    `json:"median_fresh_ms"`
	Speedup       float64    `json:"speedup"`
	RelWall       float64    `json:"rel_wall"`
	Rows          []ServeRow `json:"rows"`
}

// Serve measures the daemon end-to-end on the churn workload: a session
// created over HTTP absorbs single-entry ECMP flips posted as deltas,
// each answered report is byte-compared against a fresh run on the
// mutated snapshot, and the per-delta HTTP wall (which includes every
// service-layer cost) is the measured quantity.
func Serve(entries, warmup, steady int) (*ServeResult, error) {
	if entries <= 0 {
		entries = 64
	}
	if warmup <= 0 {
		warmup = 2
	}
	if steady <= 0 {
		steady = 8
	}
	bm, spec, snap, err := churnWorkload(entries)
	if err != nil {
		return nil, err
	}
	prog, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	flip, err := churnFlipDeltas()
	if err != nil {
		return nil, err
	}

	srv, err := serve.New(serve.Config{Prog: prog, Spec: spec, ProgramRef: "bench:serve"})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	h := srv.Handler()
	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	createBody, err := json.Marshal(map[string]string{"id": "bench", "entries": tables.Format(snap)})
	if err != nil {
		return nil, err
	}
	c0 := time.Now()
	rr := post("/sessions", string(createBody))
	createWall := time.Since(c0)
	if rr.Code != http.StatusCreated {
		return nil, fmt.Errorf("bench: serve create: status %d: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("X-Aquila-Holds") != "true" {
		return nil, fmt.Errorf("bench: serve workload has standing violations")
	}
	var baseline struct {
		Assertions int `json:"assertions"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &baseline); err != nil {
		return nil, err
	}

	res := &ServeResult{
		Program:      bm.Name,
		Assertions:   baseline.Assertions,
		Entries:      entries,
		CPUs:         runtime.GOMAXPROCS(0),
		Warmup:       warmup,
		CreateWallMS: float64(createWall.Microseconds()) / 1000,
	}
	// Track the session's snapshot locally so each fresh differential run
	// sees exactly the state the daemon verified.
	cur := snap.Clone()
	deltaText := func(i int) (string, *tables.Delta) {
		d := flip[i%2]
		return tables.FormatDelta(d), d
	}
	for i := 0; i < warmup; i++ {
		text, d := deltaText(i)
		if rr := post("/sessions/bench/deltas", text); rr.Code != http.StatusOK {
			return nil, fmt.Errorf("bench: serve warmup delta %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
		if err := d.Apply(cur); err != nil {
			return nil, err
		}
	}
	var httpTimes, freshTimes []time.Duration
	for i := 0; i < steady; i++ {
		// Continue the warmup's flip parity so every steady delta is a
		// real change, never a no-op repeat of the previous state.
		text, d := deltaText(warmup + i)
		s0 := time.Now()
		rr := post("/sessions/bench/deltas", text)
		httpWall := time.Since(s0)
		if rr.Code != http.StatusOK {
			return nil, fmt.Errorf("bench: serve delta %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
		if err := d.Apply(cur); err != nil {
			return nil, err
		}
		f0 := time.Now()
		fresh, err := verify.Run(prog, cur, spec, verify.Options{FindAll: true, Parallel: 1})
		if err != nil {
			return nil, fmt.Errorf("bench: serve fresh run %d: %w", i, err)
		}
		freshWall := time.Since(f0)
		freshJS, err := fresh.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		httpTimes = append(httpTimes, httpWall)
		freshTimes = append(freshTimes, freshWall)
		res.Rows = append(res.Rows, ServeRow{
			Delta:       strings.TrimSpace(text),
			HTTPWallMS:  float64(httpWall.Microseconds()) / 1000,
			FreshWallMS: float64(freshWall.Microseconds()) / 1000,
			Identical:   bytes.Equal(rr.Body.Bytes(), freshJS),
		})
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	res.MedianHTTPMS = ms(durMedian(httpTimes))
	res.MedianFreshMS = ms(durMedian(freshTimes))
	if res.MedianHTTPMS > 0 {
		res.Speedup = res.MedianFreshMS / res.MedianHTTPMS
	}
	if res.MedianFreshMS > 0 {
		res.RelWall = res.MedianHTTPMS / res.MedianFreshMS
	}
	return res, nil
}

// CompareServe checks a fresh serve run against a checked-in reference.
// Byte identity is absolute: every HTTP response must match its fresh
// run. The performance gate mirrors CompareChurn — the HTTP layer must
// preserve the >= 5x steady-state amortization bar (RelWall <= 0.2),
// with a 50% noise-tolerant reference-relative backstop on RelWall.
func CompareServe(ref, cur *ServeResult) error {
	const slack = 1.50
	var problems []string
	for i, row := range cur.Rows {
		if !row.Identical {
			problems = append(problems, fmt.Sprintf(
				"delta %d (%s): HTTP response differs from fresh verification", i, row.Delta))
		}
	}
	if cur.Speedup < 5 {
		problems = append(problems, fmt.Sprintf(
			"steady-state speedup %.2fx below the 5x acceptance bar", cur.Speedup))
	}
	if ref.RelWall > 0 && cur.RelWall > ref.RelWall*slack {
		problems = append(problems, fmt.Sprintf(
			"relative wall time %.3f exceeds reference %.3f by more than %.0f%%",
			cur.RelWall, ref.RelWall, 100*(slack-1)))
	}
	if len(problems) > 0 {
		return fmt.Errorf("bench: serve regression on %s:\n  %s",
			cur.Program, strings.Join(problems, "\n  "))
	}
	return nil
}

// JSON renders the experiment for BENCH_serve.json.
func (r *ServeResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatServe renders the experiment as the usual aquila-bench table.
func FormatServe(r *ServeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Continuous verification daemon: %s (%d assertions holding, %d entries, %d CPUs, %d warmup)\n",
		r.Program, r.Assertions, r.Entries, r.CPUs, r.Warmup)
	fmt.Fprintf(&b, "session create over HTTP (baseline verification): %.1f ms\n", r.CreateWallMS)
	fmt.Fprintf(&b, "%-4s  %-52s  %9s  %9s  %9s\n", "#", "delta", "http ms", "fresh ms", "identical")
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%-4d  %-52s  %9.2f  %9.2f  %9v\n",
			i, row.Delta, row.HTTPWallMS, row.FreshWallMS, row.Identical)
	}
	fmt.Fprintf(&b, "steady-state medians: http %.2f ms vs fresh %.2f ms per delta: %.1fx speedup\n",
		r.MedianHTTPMS, r.MedianFreshMS, r.Speedup)
	return b.String()
}
