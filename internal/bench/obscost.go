package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"aquila/internal/obs"
	"aquila/internal/progs"
	"aquila/internal/verify"
)

// ObsResult measures the cost of the observability layer on a find-all
// verification run: the same problem solved with no sinks attached
// (instrumented code, every hook a nil check) and with the full sink set
// (tracer + metrics registry + structured log to io.Discard). The
// overhead budget in DESIGN.md is <3% with sinks disabled; the enabled
// figure bounds what users pay for a trace.
type ObsResult struct {
	Program    string  `json:"program"`
	Assertions int     `json:"assertions"`
	Repeats    int     `json:"repeats"`
	DisabledMS float64 `json:"disabled_ms"`
	EnabledMS  float64 `json:"enabled_ms"`
	// OverheadPct is (enabled - disabled) / disabled, in percent; small
	// problems are timer-noise dominated, so treat single-digit negatives
	// as "no measurable difference".
	OverheadPct float64 `json:"overhead_pct"`
	// FlightMS adds the flight recorder to the enabled sink set: a
	// heartbeat ring (64-conflict period) on top of tracer + metrics +
	// log, with the per-check histograms folding in. FlightOverheadPct
	// is its overhead vs the disabled baseline.
	FlightMS          float64 `json:"flight_ms"`
	FlightOverheadPct float64 `json:"flight_overhead_pct"`
	// Identical reports whether the canonical report bytes match across
	// all three runs — attaching sinks must not change results.
	Identical bool `json:"identical"`
	// Spans / Counters / Histograms / HeartbeatSamples summarize what
	// the enabled runs recorded.
	Spans            int   `json:"spans"`
	Counters         int   `json:"counters"`
	Histograms       int   `json:"histograms"`
	HeartbeatSamples int64 `json:"heartbeat_samples"`
	// Utilization is the trace-analysis pass (obs.Analyze) over a
	// 2-worker traced run of the same problem — the per-worker busy
	// fractions, critical path, and straggler index CI gates on.
	Utilization *obs.Utilization `json:"utilization,omitempty"`
}

// ObsOverhead runs the instrumentation-overhead experiment on bm (each
// configuration repeated `repeats` times, best wall time kept).
func ObsOverhead(bm *progs.Benchmark, repeats int) (*ObsResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	prog, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	spec, err := lpiParse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		return nil, err
	}

	sink := &obs.Obs{
		Tracer:  obs.NewTracer(),
		Metrics: obs.NewRegistry(),
		Log:     obs.NewLogger(io.Discard),
	}
	flightSink := &obs.Obs{
		Tracer:   obs.NewTracer(),
		Metrics:  obs.NewRegistry(),
		Log:      obs.NewLogger(io.Discard),
		Progress: obs.NewProgressRing(256, 64),
	}

	// The three configurations are interleaved round-robin rather than run
	// in blocks so GC pressure from earlier iterations' garbage lands on
	// all of them equally — in block order the later configs measure the
	// heap growth of the earlier ones, not their own cost.
	configs := []*obs.Obs{nil, sink, flightSink}
	walls := make([]time.Duration, len(configs))
	reps := make([]*verify.Report, len(configs))
	for r := 0; r < repeats; r++ {
		for i, o := range configs {
			start := time.Now()
			rep, err := verify.Run(prog, nil, spec, verify.Options{
				FindAll: true, Parallel: 1, Obs: o,
			})
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: obs run: %w", err)
			}
			if reps[i] == nil || wall < walls[i] {
				walls[i], reps[i] = wall, rep
			}
		}
	}
	disabledWall, disabledRep := walls[0], reps[0]
	enabledWall, enabledRep := walls[1], reps[1]
	flightWall, flightRep := walls[2], reps[2]

	canonA, err := disabledRep.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	canonB, err := enabledRep.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	canonC, err := flightRep.CanonicalJSON()
	if err != nil {
		return nil, err
	}

	res := &ObsResult{
		Program:          bm.Name,
		Assertions:       disabledRep.Stats.Assertions,
		Repeats:          repeats,
		DisabledMS:       float64(disabledWall.Microseconds()) / 1000,
		EnabledMS:        float64(enabledWall.Microseconds()) / 1000,
		FlightMS:         float64(flightWall.Microseconds()) / 1000,
		Identical:        bytes.Equal(canonA, canonB) && bytes.Equal(canonA, canonC),
		Spans:            len(sink.Tracer.Events()),
		Counters:         len(sink.Metrics.Snapshot()),
		Histograms:       len(flightSink.Metrics.Histograms()),
		HeartbeatSamples: flightSink.Progress.Seq(),
	}
	if disabledWall > 0 {
		res.OverheadPct = 100 * float64(enabledWall-disabledWall) / float64(disabledWall)
		res.FlightOverheadPct = 100 * float64(flightWall-disabledWall) / float64(disabledWall)
	}

	// Utilization analytics: one traced 2-worker run (interleaved fairly
	// even on a single-CPU host) fed through the trace analyzer.
	utilSink := &obs.Obs{Tracer: obs.NewTracer()}
	utilRep, err := verify.Run(prog, nil, spec, verify.Options{
		FindAll: true, Parallel: 2, Obs: utilSink,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: obs utilization run: %w", err)
	}
	canonD, err := utilRep.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(canonA, canonD) {
		res.Identical = false
	}
	util, err := obs.Analyze(utilSink.Tracer.Events())
	if err != nil {
		return nil, fmt.Errorf("bench: obs utilization: %w", err)
	}
	res.Utilization = util
	return res, nil
}

// JSON renders the experiment for BENCH_obs.json.
func (r *ObsResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatObs renders the experiment as the usual aquila-bench table.
func FormatObs(r *ObsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability overhead: %s (%d assertions, best of %d)\n",
		r.Program, r.Assertions, r.Repeats)
	fmt.Fprintf(&b, "%-26s  %10s\n", "configuration", "wall ms")
	fmt.Fprintf(&b, "%-26s  %10.1f\n", "sinks disabled (nil)", r.DisabledMS)
	fmt.Fprintf(&b, "%-26s  %10.1f\n", "tracer+metrics+log", r.EnabledMS)
	fmt.Fprintf(&b, "%-26s  %10.1f\n", "+flight recorder (ring)", r.FlightMS)
	fmt.Fprintf(&b, "overhead: %+.1f%% enabled, %+.1f%% flight; canonical reports identical: %v\n",
		r.OverheadPct, r.FlightOverheadPct, r.Identical)
	fmt.Fprintf(&b, "%d trace events, %d counters, %d histograms, %d heartbeat samples\n",
		r.Spans, r.Counters, r.Histograms, r.HeartbeatSamples)
	if r.Utilization != nil {
		b.WriteString(obs.FormatUtilization(r.Utilization))
	}
	return b.String()
}
