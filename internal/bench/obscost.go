package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"aquila/internal/obs"
	"aquila/internal/progs"
	"aquila/internal/verify"
)

// ObsResult measures the cost of the observability layer on a find-all
// verification run: the same problem solved with no sinks attached
// (instrumented code, every hook a nil check) and with the full sink set
// (tracer + metrics registry + structured log to io.Discard). The
// overhead budget in DESIGN.md is <3% with sinks disabled; the enabled
// figure bounds what users pay for a trace.
type ObsResult struct {
	Program    string  `json:"program"`
	Assertions int     `json:"assertions"`
	Repeats    int     `json:"repeats"`
	DisabledMS float64 `json:"disabled_ms"`
	EnabledMS  float64 `json:"enabled_ms"`
	// OverheadPct is (enabled - disabled) / disabled, in percent; small
	// problems are timer-noise dominated, so treat single-digit negatives
	// as "no measurable difference".
	OverheadPct float64 `json:"overhead_pct"`
	// Identical reports whether the canonical report bytes match between
	// the two runs — attaching sinks must not change results.
	Identical bool `json:"identical"`
	// Spans / Counters summarize what the enabled run recorded.
	Spans    int `json:"spans"`
	Counters int `json:"counters"`
}

// ObsOverhead runs the instrumentation-overhead experiment on bm (each
// configuration repeated `repeats` times, best wall time kept).
func ObsOverhead(bm *progs.Benchmark, repeats int) (*ObsResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	prog, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	spec, err := lpiParse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		return nil, err
	}

	run := func(o *obs.Obs) (time.Duration, *verify.Report, error) {
		var best time.Duration
		var bestRep *verify.Report
		for r := 0; r < repeats; r++ {
			start := time.Now()
			rep, err := verify.Run(prog, nil, spec, verify.Options{
				FindAll: true, Parallel: 1, Obs: o,
			})
			wall := time.Since(start)
			if err != nil {
				return 0, nil, err
			}
			if bestRep == nil || wall < best {
				best, bestRep = wall, rep
			}
		}
		return best, bestRep, nil
	}

	disabledWall, disabledRep, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("bench: obs disabled run: %w", err)
	}
	sink := &obs.Obs{
		Tracer:  obs.NewTracer(),
		Metrics: obs.NewRegistry(),
		Log:     obs.NewLogger(io.Discard),
	}
	enabledWall, enabledRep, err := run(sink)
	if err != nil {
		return nil, fmt.Errorf("bench: obs enabled run: %w", err)
	}

	canonA, err := disabledRep.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	canonB, err := enabledRep.CanonicalJSON()
	if err != nil {
		return nil, err
	}

	res := &ObsResult{
		Program:    bm.Name,
		Assertions: disabledRep.Stats.Assertions,
		Repeats:    repeats,
		DisabledMS: float64(disabledWall.Microseconds()) / 1000,
		EnabledMS:  float64(enabledWall.Microseconds()) / 1000,
		Identical:  bytes.Equal(canonA, canonB),
		Spans:      len(sink.Tracer.Events()),
		Counters:   len(sink.Metrics.Snapshot()),
	}
	if disabledWall > 0 {
		res.OverheadPct = 100 * float64(enabledWall-disabledWall) / float64(disabledWall)
	}
	return res, nil
}

// JSON renders the experiment for BENCH_obs.json.
func (r *ObsResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatObs renders the experiment as the usual aquila-bench table.
func FormatObs(r *ObsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability overhead: %s (%d assertions, best of %d)\n",
		r.Program, r.Assertions, r.Repeats)
	fmt.Fprintf(&b, "%-22s  %10s\n", "configuration", "wall ms")
	fmt.Fprintf(&b, "%-22s  %10.1f\n", "sinks disabled (nil)", r.DisabledMS)
	fmt.Fprintf(&b, "%-22s  %10.1f\n", "tracer+metrics+log", r.EnabledMS)
	fmt.Fprintf(&b, "overhead: %+.1f%%, canonical reports identical: %v, %d trace events, %d counters\n",
		r.OverheadPct, r.Identical, r.Spans, r.Counters)
	return b.String()
}
