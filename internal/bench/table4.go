package bench

import (
	"fmt"
	"strings"
	"time"

	"aquila/internal/genprog"
	"aquila/internal/localize"
	"aquila/internal/progs"
	"aquila/internal/verify"
)

// Table4Row is one (scale, bug-kind) localization measurement.
type Table4Row struct {
	Scale string
	Bug   genprog.BugKind
	Time  time.Duration
	// Precision is the fraction of non-culprit candidate locations the
	// localizer filtered out (the Table 4 metric: 100% means no false
	// positives).
	Precision float64
	// Reported / Pool sizes behind the precision number.
	Reported int
	Pool     int
	Found    bool // the seeded culprit is among the reported locations
}

// Table4 runs the §8.3 localization benchmark: three switch-T scales ×
// three seeded bug kinds.
func Table4(scales []string) ([]Table4Row, error) {
	var rows []Table4Row
	for _, scale := range scales {
		cfg := genprog.SwitchT(scale)
		bm := genprog.Assemble(cfg)
		spec := mustSpec(genprog.TTLSpec(bm.Calls))
		for _, bug := range []genprog.BugKind{genprog.BugWrongEntry, genprog.BugCodeMissing, genprog.BugCodeError} {
			src := genprog.InjectBug(bm.Source, bug)
			snap := genprog.TTLSnapshot(cfg, bug == genprog.BugWrongEntry)
			buggy := &progs.Benchmark{Name: string(bug), Source: src, Calls: bm.Calls}
			prog, err := buggy.Parse()
			if err != nil {
				return nil, err
			}
			res, err := localize.Localize(prog, snap, spec, localize.Options{Verify: verify.Options{}})
			if err != nil {
				return nil, err
			}
			row := Table4Row{Scale: scale, Bug: bug, Time: res.Time}
			switch bug {
			case genprog.BugWrongEntry:
				// Ground truth: exactly ttl_tbl. Pool: tables with entries.
				row.Pool = len(snap.Tables())
				row.Reported = len(res.Tables)
				for _, t := range res.Tables {
					if strings.HasSuffix(t, "ttl_tbl") {
						row.Found = true
					}
				}
				row.Precision = precision(row.Pool, row.Reported, row.Found)
			default:
				// Ground truth: the TTL chain actions. Any reported
				// location inside the chain is a valid fix site (the paper
				// counts multiple fixes for one bug as correct).
				row.Pool = res.Pool
				row.Reported = len(res.Candidates)
				truePositives := 0
				for _, cand := range res.Candidates {
					if strings.HasPrefix(cand.Action, "ttl_") {
						truePositives++
						row.Found = true
					}
				}
				falsePositives := row.Reported - truePositives
				if row.Pool > 0 {
					row.Precision = 1 - float64(falsePositives)/float64(row.Pool)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func precision(pool, reported int, found bool) float64 {
	if pool == 0 {
		return 0
	}
	falsePositives := reported
	if found {
		falsePositives--
	}
	return 1 - float64(falsePositives)/float64(pool)
}

// FormatTable4 renders the rows.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-14s %10s %10s %10s %6s\n", "Scale", "Bug", "Time", "Precision", "Reported", "Found")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-14s %10s %9.1f%% %6d/%-4d %6v\n",
			r.Scale, r.Bug, r.Time.Round(time.Millisecond), r.Precision*100, r.Reported, r.Pool, r.Found)
	}
	return b.String()
}
