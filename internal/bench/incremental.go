package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"aquila/internal/progs"
	"aquila/internal/verify"
)

// IncrementalRow is one (mode, workers) measurement of the incremental
// sweep: find-all verification of the same program, either blasting every
// assertion into a fresh solver ("fresh") or sharing the blasted VC prefix
// across a shard's checks via activation literals ("incremental").
type IncrementalRow struct {
	Mode    string `json:"mode"` // "fresh" or "incremental"
	Workers int    `json:"workers"`
	// WallMS / SolveCPUMS come from the best-of-repeats run.
	WallMS     float64 `json:"wall_ms"`
	SolveCPUMS float64 `json:"solve_cpu_ms"`
	// TseitinClauses is the total CNF clause production of the run — the
	// quantity incremental mode exists to shrink. CNFClauses counts the
	// clauses live in solvers at the end of each check.
	TseitinClauses int64 `json:"tseitin_clauses"`
	CNFClauses     int64 `json:"cnf_clauses"`
	// PrefixClauses is the one-time shared-prefix blast cost per shard
	// (0 in fresh mode); SimplifyRewrites counts simplifier hits.
	PrefixClauses    int64 `json:"prefix_clauses,omitempty"`
	SimplifyRewrites int64 `json:"simplify_rewrites,omitempty"`
	// Speedup is wall(fresh, workers=1) / wall(this row).
	Speedup float64 `json:"speedup"`
	// Identical reports whether this row's canonical report bytes match
	// the fresh workers=1 baseline exactly.
	Identical bool `json:"identical"`
	Bugs      int  `json:"bugs"`
}

// IncrementalResult is the whole fresh-vs-incremental sweep.
type IncrementalResult struct {
	Program    string `json:"program"`
	Assertions int    `json:"assertions"`
	CPUs       int    `json:"cpus"`
	Repeats    int    `json:"repeats"`
	// ClauseReduction is 1 - incremental/fresh total Tseitin clauses, both
	// at workers=1 — the headline "blast once, check many" saving.
	ClauseReduction float64          `json:"clause_reduction"`
	Rows            []IncrementalRow `json:"rows"`
}

// Incremental sweeps find-all verification of bm in fresh and incremental
// mode over workerCounts (each run repeated `repeats` times, best wall
// time kept). Every row must reproduce the fresh workers=1 canonical
// report byte for byte; the incremental rows must produce strictly fewer
// Tseitin clauses than fresh mode. The first entry of workerCounts must
// be 1 (the speedup and identity baseline).
func Incremental(bm *progs.Benchmark, workerCounts []int, repeats int) (*IncrementalResult, error) {
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		return nil, fmt.Errorf("bench: incremental sweep needs workerCounts starting at 1, got %v", workerCounts)
	}
	if repeats < 1 {
		repeats = 1
	}
	prog, err := bm.Parse()
	if err != nil {
		return nil, err
	}
	spec, err := lpiParse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		return nil, err
	}
	res := &IncrementalResult{
		Program: bm.Name,
		CPUs:    runtime.GOMAXPROCS(0),
		Repeats: repeats,
	}
	var baseline []byte
	var baseWall time.Duration
	var freshClauses, incrClauses int64
	for _, incremental := range []bool{false, true} {
		for _, w := range workerCounts {
			var best time.Duration
			var bestRep *verify.Report
			for r := 0; r < repeats; r++ {
				// Preprocessing and slicing are on by default in the bench
				// experiments: the sweep measures the shipping configuration.
				opts := verify.Options{FindAll: true, Parallel: w,
					Incremental: incremental, Simplify: incremental,
					Preprocess: true, Slice: true}
				start := time.Now()
				rep, err := verify.Run(prog, nil, spec, opts)
				wall := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("bench: incremental=%v workers=%d: %w", incremental, w, err)
				}
				if bestRep == nil || wall < best {
					best, bestRep = wall, rep
				}
			}
			canon, err := bestRep.CanonicalJSON()
			if err != nil {
				return nil, err
			}
			if baseline == nil {
				baseline, baseWall = canon, best
				res.Assertions = bestRep.Stats.Assertions
			}
			mode := "fresh"
			if incremental {
				mode = "incremental"
			}
			if w == 1 {
				if incremental {
					incrClauses = bestRep.Stats.TseitinClauses
				} else {
					freshClauses = bestRep.Stats.TseitinClauses
				}
			}
			res.Rows = append(res.Rows, IncrementalRow{
				Mode:             mode,
				Workers:          w,
				WallMS:           float64(best.Microseconds()) / 1000,
				SolveCPUMS:       float64(bestRep.Stats.SolveCPU.Microseconds()) / 1000,
				TseitinClauses:   bestRep.Stats.TseitinClauses,
				CNFClauses:       int64(bestRep.Stats.CNFClauses),
				PrefixClauses:    bestRep.Stats.PrefixClauses,
				SimplifyRewrites: bestRep.Stats.SimplifyRewrites,
				Speedup:          float64(baseWall) / float64(best),
				Identical:        bytes.Equal(canon, baseline),
				Bugs:             len(bestRep.Violations),
			})
		}
	}
	if freshClauses > 0 {
		res.ClauseReduction = 1 - float64(incrClauses)/float64(freshClauses)
	}
	return res, nil
}

// JSON renders the sweep for BENCH_incremental.json.
func (r *IncrementalResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatIncremental renders the sweep as the usual aquila-bench table.
func FormatIncremental(r *IncrementalResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Incremental find-all sweep: %s (%d assertions, %d CPUs, best of %d)\n",
		r.Program, r.Assertions, r.CPUs, r.Repeats)
	fmt.Fprintf(&b, "%-12s  %-8s  %10s  %12s  %10s  %8s  %8s  %9s  %4s\n",
		"mode", "workers", "wall ms", "solve-cpu ms", "tseitin", "prefix", "speedup", "identical", "bugs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s  %-8d  %10.1f  %12.1f  %10d  %8d  %7.2fx  %9v  %4d\n",
			row.Mode, row.Workers, row.WallMS, row.SolveCPUMS,
			row.TseitinClauses, row.PrefixClauses, row.Speedup, row.Identical, row.Bugs)
	}
	fmt.Fprintf(&b, "clause reduction (workers=1, incremental vs fresh): %.1f%%\n",
		100*r.ClauseReduction)
	return b.String()
}
