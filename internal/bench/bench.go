// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§8): Table 1 (property coverage),
// Table 2 (specification size), Table 3 (verification time/memory across
// the 12-program suite and three tools), Table 4 (bug localization time
// and precision), and Figure 11 (scalability in program size and table
// entries). cmd/aquila-bench prints the results; bench_test.go exposes
// them as testing.B benchmarks; EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"aquila/internal/encode"
	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/progs"
	"aquila/internal/smt"
	"aquila/internal/symexec"
	"aquila/internal/verify"
)

// Tool identifies a verification backend in Table 3.
type Tool string

// The three compared tools.
const (
	ToolAquila Tool = "Aquila"
	ToolP4V    Tool = "p4v"
	ToolVera   Tool = "Vera"
)

// Outcome is one (program, tool) measurement.
type Outcome struct {
	// FirstTime / AllTime are the §8.1 find-first and find-all times.
	FirstTime time.Duration
	AllTime   time.Duration
	// Mem is the formula footprint: term DAG nodes + CNF clauses (the
	// repository's memory proxy; see EXPERIMENTS.md).
	Mem int
	// Bugs found in find-all mode.
	Bugs int
	// Fail is "", "OOM" (encoding exploded) or "OOT" (budget exhausted).
	Fail string
}

// Render shows the outcome Table 3 style.
func (o Outcome) Render() string {
	if o.Fail != "" {
		return fmt.Sprintf("%4s / %4s", o.Fail, o.Fail)
	}
	return fmt.Sprintf("%8s / %8s (%d bugs, %d mem)",
		o.FirstTime.Round(time.Microsecond*100), o.AllTime.Round(time.Microsecond*100), o.Bugs, o.Mem)
}

// Limits bounds the baselines, standing in for the paper's 32 GB / 2 h
// container limits.
type Limits struct {
	// TreeCap is the statement cap of naive expansions (OOM analogue).
	TreeCap int
	// MaxPaths bounds Vera-style exploration (OOT analogue).
	MaxPaths int
	// Budget bounds SAT conflicts per query (OOT analogue).
	Budget int64
	// Deadline bounds each tool run's wall clock (OOT analogue).
	Deadline time.Duration
}

// DefaultLimits mirror the relative generosity of the paper's setup.
var DefaultLimits = Limits{
	TreeCap:  2_000_000,
	MaxPaths: 2_000_000,
	Budget:   10_000_000,
	Deadline: 2 * time.Minute,
}

// QuickLimits keep test runs fast.
var QuickLimits = Limits{
	TreeCap:  200_000,
	MaxPaths: 50_000,
	Budget:   2_000_000,
	Deadline: 10 * time.Second,
}

// RunTool verifies one benchmark with one tool using the §8.1 property
// (invalid header access, no assumptions about entries or packets).
func RunTool(bm *progs.Benchmark, tool Tool, lim Limits) (Outcome, error) {
	prog, err := bm.Parse()
	if err != nil {
		return Outcome{}, err
	}
	switch tool {
	case ToolVera:
		return runVera(prog, bm, lim)
	case ToolP4V:
		return runEncodingTool(prog, bm, lim, encode.Options{
			Parser:  encode.ParserTree,
			Table:   encode.TableNaive,
			TreeCap: lim.TreeCap,
		})
	default:
		return runEncodingTool(prog, bm, lim, encode.Options{})
	}
}

func runEncodingTool(prog *p4.Program, bm *progs.Benchmark, lim Limits, eopts encode.Options) (Outcome, error) {
	specSrc := progs.InvalidHeaderAccessSpec(prog, bm.Calls)
	spec, err := lpi.Parse(specSrc)
	if err != nil {
		return Outcome{}, err
	}
	var out Outcome

	run := func(findAll bool) (*verify.Report, error) {
		return verify.Run(prog, nil, spec, verify.Options{
			Encode:  eopts,
			FindAll: findAll,
			Budget:  lim.Budget,
		})
	}
	t0 := time.Now()
	first, err := run(false)
	out.FirstTime = time.Since(t0)
	if err != nil {
		return failOutcome(err)
	}
	if lim.Deadline > 0 && out.FirstTime > lim.Deadline {
		out.Fail = "OOT"
		return out, nil
	}
	t1 := time.Now()
	all, err := run(true)
	out.AllTime = time.Since(t1)
	if err != nil {
		return failOutcome(err)
	}
	if lim.Deadline > 0 && out.AllTime > lim.Deadline {
		out.Fail = "OOT"
		return out, nil
	}
	out.Bugs = len(all.Violations)
	out.Mem = all.Stats.TermNodes + all.Stats.CNFClauses
	_ = first // the find-first report itself is not tabulated, only its time
	return out, nil
}

func failOutcome(err error) (Outcome, error) {
	var ex *encode.ErrExplosion
	if errors.As(err, &ex) {
		return Outcome{Fail: "OOM"}, nil
	}
	if errors.Is(err, verify.ErrBudget) {
		return Outcome{Fail: "OOT"}, nil
	}
	var px *symexec.ErrPathExplosion
	if errors.As(err, &px) {
		return Outcome{Fail: "OOT"}, nil
	}
	return Outcome{}, err
}

// runVera checks the same property with the path-enumerating baseline.
func runVera(prog *p4.Program, bm *progs.Benchmark, lim Limits) (Outcome, error) {
	prop := invalidAccessProperty(prog)
	run := func() (*symexec.Result, error) {
		eng := symexec.New(prog, nil, symexec.Options{
			MaxPaths: lim.MaxPaths,
			Deadline: lim.Deadline,
		})
		return eng.Run(bm.Calls, nil, prop)
	}
	var out Outcome
	t0 := time.Now()
	res, err := run()
	out.FirstTime = time.Since(t0)
	if err != nil {
		return failOutcome(err)
	}
	// The engine checks all paths in one sweep; find-all re-runs to keep
	// the measurement methodology symmetrical with §8.1.
	t1 := time.Now()
	res2, err := run()
	out.AllTime = time.Since(t1)
	if err != nil {
		return failOutcome(err)
	}
	out.Bugs = len(res2.Violations)
	out.Mem = res.Paths // the baseline's footprint scales with live paths
	return out, nil
}

// invalidAccessProperty mirrors progs.InvalidHeaderAccessSpec for the
// symexec engine.
func invalidAccessProperty(prog *p4.Program) symexec.Property {
	type check struct {
		applied string
		valid   string
	}
	var checks []check
	for ctlName, ctl := range prog.Controls {
		for tn, tbl := range ctl.Tables {
			for _, h := range progs.TableHeaders(prog, ctl, tbl) {
				checks = append(checks, check{
					applied: "$applied." + ctlName + "." + tn,
					valid:   h + ".$valid",
				})
			}
		}
	}
	return func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		cond := ctx.True()
		for _, c := range checks {
			cond = ctx.And(cond, ctx.Or(ctx.Not(get(c.applied, 0)), get(c.valid, 0)))
		}
		return cond
	}
}

// Table3Row is one row of Table 3.
type Table3Row struct {
	Name         string
	LoC          int
	Pipes        int
	ParserStates int
	Tables       int
	Results      map[Tool]Outcome
}

// Table3 runs the full suite × tools matrix.
func Table3(suite []*progs.Benchmark, lim Limits, tools []Tool) ([]Table3Row, error) {
	var rows []Table3Row
	for _, bm := range suite {
		prog, err := bm.Parse()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bm.Name, err)
		}
		row := Table3Row{
			Name:         bm.Name,
			LoC:          prog.LoC,
			Pipes:        bm.Pipes,
			ParserStates: bm.ParserStates,
			Tables:       bm.Tables,
			Results:      map[Tool]Outcome{},
		}
		for _, tool := range tools {
			out, err := RunTool(bm, tool, lim)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", bm.Name, tool, err)
			}
			row.Results[tool] = out
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders the rows.
func FormatTable3(rows []Table3Row, tools []Tool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s %5s %7s %7s", "Program", "LoC", "Pipes", "PStates", "Tables")
	for _, t := range tools {
		fmt.Fprintf(&b, " | %s first/all", t)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %6d %5d %7d %7d", r.Name, r.LoC, r.Pipes, r.ParserStates, r.Tables)
		for _, t := range tools {
			fmt.Fprintf(&b, " | %s", r.Results[t].Render())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// mustSpec parses an LPI spec or panics (harness-internal).
func mustSpec(src string) *lpi.Spec {
	spec, err := lpi.Parse(src)
	if err != nil {
		panic(err)
	}
	return spec
}

// mustProg parses a program or panics (harness-internal).
func mustProg(name, src string) *p4.Program {
	prog, err := p4.ParseAndCheck(name, src)
	if err != nil {
		panic(err)
	}
	return prog
}

// lpiParse and verifyRun are small seams for the quick tests.
func lpiParse(src string) (*lpi.Spec, error) { return lpi.Parse(src) }

func verifyRun(prog *p4.Program, spec *lpi.Spec, findAll bool) (*verify.Report, error) {
	return verify.Run(prog, nil, spec, verify.Options{FindAll: findAll})
}
