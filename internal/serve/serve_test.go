package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/progs"
	"aquila/internal/tables"
	"aquila/internal/verify"
)

// dcSnapshot is the base ECMP snapshot the DC-gateway serve tests
// install per session (mirrors the verify session tests).
const dcSnapshot = `
table GatewayIngress.ecmp_nhop_tbl {
  0 -> set_nhop(1)
  1 -> set_nhop(2)
  2 -> set_nhop(3)
  3 -> a_drop
}
`

// dcProblem builds the DC gateway with its inferred UB spec — the serve
// differential workload, matching the verify session tests.
func dcProblem(t testing.TB) (*p4.Program, *lpi.Spec) {
	t.Helper()
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	return prog, spec
}

// newTestServer builds a daemon and closes it when the test ends. Crash
// tests that must abandon a daemon without draining call New directly.
func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// do drives one in-process request through the daemon's handler.
func do(srv *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	return rr
}

// createSession creates a session over HTTP with inline entries and
// returns the baseline report body.
func createSession(t testing.TB, srv *Server, id, entries string) []byte {
	t.Helper()
	body, err := json.Marshal(createRequest{ID: id, Entries: entries})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	rr := do(srv, "POST", "/sessions", string(body))
	if rr.Code != http.StatusCreated {
		t.Fatalf("create %s: status %d: %s", id, rr.Code, rr.Body.String())
	}
	return rr.Body.Bytes()
}

// applyDelta posts one delta and asserts a 200 report response.
func applyDelta(t testing.TB, srv *Server, id, delta string) *httptest.ResponseRecorder {
	t.Helper()
	rr := do(srv, "POST", "/sessions/"+id+"/deltas", delta)
	if rr.Code != http.StatusOK {
		t.Fatalf("delta to %s: status %d: %s", id, rr.Code, rr.Body.String())
	}
	return rr
}

// freshCanonical is the oracle: a fresh find-all run on snap, canonical
// bytes — what every HTTP report must equal.
func freshCanonical(t testing.TB, prog *p4.Program, spec *lpi.Spec, snap *tables.Snapshot) []byte {
	t.Helper()
	rep, err := verify.Run(prog, snap, spec, verify.Options{FindAll: true, Parallel: 1})
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	js, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	return js
}

func mustSnapshot(t testing.TB, text string) *tables.Snapshot {
	t.Helper()
	snap, err := tables.ParseSnapshot(text)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap
}

func applyText(t testing.TB, snap *tables.Snapshot, delta string) {
	t.Helper()
	d, err := tables.ParseDelta(delta)
	if err != nil {
		t.Fatalf("delta %q: %v", delta, err)
	}
	if err := d.Apply(snap); err != nil {
		t.Fatalf("delta %q: %v", delta, err)
	}
}

// TestServeByteIdentityPins pins the HTTP determinism contract at
// {1 session, 4 concurrent sessions} x {clean start, journal-recovered
// start}: every report body returned over HTTP is byte-identical to a
// fresh verify.Run on the equivalent snapshot.
func TestServeByteIdentityPins(t *testing.T) {
	prog, spec := dcProblem(t)
	base := mustSnapshot(t, dcSnapshot)
	for _, tc := range []struct {
		name      string
		sessions  int
		recovered bool
	}{
		{"one-session-clean", 1, false},
		{"four-sessions-clean", 4, false},
		{"one-session-recovered", 1, true},
		{"four-sessions-recovered", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Prog: prog, Spec: spec, ProgramRef: "test:dc-gateway"}
			if tc.recovered {
				cfg.JournalDir = t.TempDir()
			}
			srv := newTestServer(t, cfg)

			ids := make([]string, tc.sessions)
			exp := make([]*tables.Snapshot, tc.sessions)
			for i := range ids {
				ids[i] = fmt.Sprintf("pin-%d", i)
				exp[i] = base.Clone()
				body := createSession(t, srv, ids[i], dcSnapshot)
				if i == 0 {
					want := freshCanonical(t, prog, spec, base)
					if !bytes.Equal(body, want) {
						t.Fatalf("create report differs from fresh baseline:\nhttp:\n%s\nfresh:\n%s", body, want)
					}
				}
			}
			// Two deltas per session, distinct across sessions so the
			// mutated states genuinely differ.
			for i, id := range ids {
				d1 := fmt.Sprintf("add GatewayIngress.ecmp_nhop_tbl %d -> set_nhop(%d)", 4+i, i%8+1)
				d2 := fmt.Sprintf("replace GatewayIngress.ecmp_nhop_tbl %d %d -> a_drop", i, i)
				applyDelta(t, srv, id, d1)
				applyText(t, exp[i], d1)
				rr := applyDelta(t, srv, id, d2)
				applyText(t, exp[i], d2)
				if !tc.recovered {
					want := freshCanonical(t, prog, spec, exp[i])
					if !bytes.Equal(rr.Body.Bytes(), want) {
						t.Fatalf("session %s delta 2: http report differs from fresh run", id)
					}
				}
			}
			if tc.recovered {
				srv.Close()
				srv = newTestServer(t, cfg)
				if got := srv.Recovered(); got != tc.sessions {
					t.Fatalf("recovered %d sessions, want %d", got, tc.sessions)
				}
			}
			// One more delta per (possibly recovered) session: the report
			// must match a fresh run on base + all applied deltas.
			for i, id := range ids {
				extra := "remove GatewayIngress.ecmp_nhop_tbl 2"
				rr := applyDelta(t, srv, id, extra)
				applyText(t, exp[i], extra)
				want := freshCanonical(t, prog, spec, exp[i])
				if !bytes.Equal(rr.Body.Bytes(), want) {
					t.Fatalf("session %s post-%s delta: http report differs from fresh run:\nhttp:\n%s\nfresh:\n%s",
						id, tc.name, rr.Body.Bytes(), want)
				}
			}
		})
	}
}

// TestServeHTTPErrors is the table-driven error-path suite: every
// rejection comes back as the right status with a JSON error body, and
// none of them mutate the session.
func TestServeHTTPErrors(t *testing.T) {
	prog, spec := dcProblem(t)
	srv := newTestServer(t, Config{Prog: prog, Spec: spec, MaxBody: 512})
	createSession(t, srv, "s1", dcSnapshot)

	valid := "replace GatewayIngress.ecmp_nhop_tbl 0 0 -> a_drop"
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{"malformed delta text", "POST", "/sessions/s1/deltas", "bogus delta", http.StatusBadRequest, "unknown delta op"},
		{"empty delta", "POST", "/sessions/s1/deltas", "", http.StatusBadRequest, "empty delta"},
		{"unknown session id", "POST", "/sessions/nope/deltas", valid, http.StatusNotFound, `no session "nope"`},
		{"nonexistent table", "POST", "/sessions/s1/deltas", "add GatewayIngress.no_such_tbl 1 -> a_drop", http.StatusBadRequest, `unknown table "GatewayIngress.no_such_tbl"`},
		{"index out of range", "POST", "/sessions/s1/deltas", "remove GatewayIngress.ecmp_nhop_tbl 99", http.StatusBadRequest, "remove"},
		{"oversized body", "POST", "/sessions/s1/deltas", strings.Repeat("# pad\n", 200), http.StatusRequestEntityTooLarge, "exceeds 512 bytes"},
		{"double create", "POST", "/sessions", `{"id":"s1"}`, http.StatusConflict, "already exists"},
		{"bad session id", "POST", "/sessions", `{"id":"../escape"}`, http.StatusBadRequest, "session id"},
		{"create body not JSON", "POST", "/sessions", "not json", http.StatusBadRequest, "create body"},
		{"bad deadline param", "POST", "/sessions/s1/deltas?deadline_ms=abc", valid, http.StatusBadRequest, "deadline_ms"},
		{"info unknown session", "GET", "/sessions/nope", "", http.StatusNotFound, `no session "nope"`},
		{"delete unknown session", "DELETE", "/sessions/nope", "", http.StatusNotFound, `no session "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := do(srv, tc.method, tc.path, tc.body)
			if rr.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body: %s)", rr.Code, tc.wantStatus, rr.Body.String())
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body is not {\"error\": ...}: %s", rr.Body.String())
			}
			if !strings.Contains(e.Error, tc.wantInBody) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.wantInBody)
			}
		})
	}

	// None of the rejections above changed the session: zero deltas.
	rr := do(srv, "GET", "/sessions/s1", "")
	var info struct {
		Deltas int `json:"deltas"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &info); err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.Deltas != 0 {
		t.Fatalf("rejected requests mutated the session: %d deltas recorded", info.Deltas)
	}
}

// TestServeDeadlineExceeded pins the deadline path: an expired deadline
// is mapped onto the solver cancellation token, so the apply comes back
// with the Unknown-status report shape and the deadline header — and the
// session recovers full determinism on the next undeadlined delta.
func TestServeDeadlineExceeded(t *testing.T) {
	prog, spec := dcProblem(t)
	srv := newTestServer(t, Config{Prog: prog, Spec: spec})
	// The seam runs after dequeue, before the deadline is armed: sleeping
	// past the deadline guarantees the token is pre-set when the first
	// check starts, making the Unknown deterministic.
	srv.beforeApply = func(string) { time.Sleep(50 * time.Millisecond) }
	createSession(t, srv, "dl", dcSnapshot)

	rr := do(srv, "POST", "/sessions/dl/deltas?deadline_ms=1",
		"replace GatewayIngress.ecmp_nhop_tbl 0 0 -> a_drop")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get("X-Aquila-Deadline-Exceeded"); got != "true" {
		t.Fatalf("X-Aquila-Deadline-Exceeded = %q, want true", got)
	}
	if got := rr.Header().Get("X-Aquila-Budget-Exhausted"); got != "true" {
		t.Fatalf("X-Aquila-Budget-Exhausted = %q, want true", got)
	}
	if !strings.Contains(rr.Body.String(), `"unknown"`) {
		t.Fatalf("deadline-exceeded report has no unknown-status assertion:\n%s", rr.Body.String())
	}

	// The delta WAS applied (state advanced); with no deadline the next
	// apply resolves every Unknown and byte-identity is restored.
	exp := mustSnapshot(t, dcSnapshot)
	applyText(t, exp, "replace GatewayIngress.ecmp_nhop_tbl 0 0 -> a_drop")
	applyText(t, exp, "add GatewayIngress.ecmp_nhop_tbl 7 -> set_nhop(3)")
	rr = applyDelta(t, srv, "dl", "add GatewayIngress.ecmp_nhop_tbl 7 -> set_nhop(3)")
	if got := rr.Header().Get("X-Aquila-Deadline-Exceeded"); got != "false" {
		t.Fatalf("X-Aquila-Deadline-Exceeded = %q, want false", got)
	}
	want := freshCanonical(t, prog, spec, exp)
	if !bytes.Equal(rr.Body.Bytes(), want) {
		t.Fatalf("post-deadline report differs from fresh run")
	}
}

// TestServeLifecycleEndpoints covers the non-report surface: healthz,
// session listing and info, delete, metrics exposition, and drain.
func TestServeLifecycleEndpoints(t *testing.T) {
	prog, spec := dcProblem(t)
	srv := newTestServer(t, Config{Prog: prog, Spec: spec})

	rr := do(srv, "GET", "/healthz", "")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", rr.Code, rr.Body.String())
	}
	createSession(t, srv, "a", dcSnapshot)
	createSession(t, srv, "b", dcSnapshot)
	applyDelta(t, srv, "a", "remove GatewayIngress.ecmp_nhop_tbl 0")

	rr = do(srv, "GET", "/sessions", "")
	if want := `{"count":2,"sessions":["a","b"]}`; rr.Body.String() != want {
		t.Fatalf("list = %s, want %s", rr.Body.String(), want)
	}
	rr = do(srv, "GET", "/sessions/a", "")
	var info struct {
		Deltas     int   `json:"deltas"`
		Assertions int   `json:"assertions"`
		Holds      bool  `json:"holds"`
		Budget     int64 `json:"budget"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &info); err != nil {
		t.Fatalf("info: %v: %s", err, rr.Body.String())
	}
	if info.Deltas != 1 || info.Assertions == 0 {
		t.Fatalf("info = %+v", info)
	}

	rr = do(srv, "GET", "/metrics", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rr.Code)
	}
	for _, want := range []string{"aquila_serve_apply_wall_us", "aquila_serve_queue_wait_us", "aquila_serve_sessions 2", "# EOF"} {
		if !strings.Contains(rr.Body.String(), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, rr.Body.String())
		}
	}

	rr = do(srv, "DELETE", "/sessions/b", "")
	if rr.Code != http.StatusNoContent {
		t.Fatalf("delete: %d %s", rr.Code, rr.Body.String())
	}
	rr = do(srv, "GET", "/sessions/b", "")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("deleted session still answers: %d", rr.Code)
	}

	srv.Close()
	rr = do(srv, "GET", "/healthz", "")
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "draining") {
		t.Fatalf("healthz after Close: %d %s", rr.Code, rr.Body.String())
	}
	rr = do(srv, "POST", "/sessions", `{"id":"late"}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("create after Close: %d", rr.Code)
	}
}
