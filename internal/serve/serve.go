// Package serve is aquila's continuous verification daemon: the paper's
// CP-bug class exists because control planes push table updates
// continuously, so verification has to be a long-lived service, not a
// one-shot CLI snapshot. The daemon loads one program+spec pair, then
// manages any number of named warm verify.Sessions over it: deltas to
// different sessions verify in parallel, deltas to one session queue in
// strict arrival order behind a per-session apply loop.
//
// The HTTP surface is deliberately thin and deterministic:
//
//	POST   /sessions               create a session (201, baseline report)
//	GET    /sessions               list session ids
//	POST   /sessions/{id}/deltas   apply one delta (200, delta report)
//	GET    /sessions/{id}          session info
//	DELETE /sessions/{id}          drop the session (204)
//	GET    /healthz                liveness + session count
//	GET    /metrics                OpenMetrics exposition of the registry
//
// The determinism contract over HTTP: every report body (create and
// delta) is EXACTLY the canonical JSON of the session's Report —
// byte-identical to a fresh verify.Run on the equivalent snapshot, with
// budget/deadline Unknowns the same documented exception the session
// engine has. Verdict metadata rides in X-Aquila-* headers so the body
// bytes stay comparable. Robustness is part of the subsystem: a
// checksummed append-only journal (journal.go) replayed on restart,
// per-request verification deadlines mapped onto the solver cancellation
// token, bounded request bodies, and graceful drain on shutdown.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aquila/internal/lpi"
	"aquila/internal/obs"
	"aquila/internal/p4"
	"aquila/internal/tables"
	"aquila/internal/verify"
)

// DefaultMaxBody bounds request bodies when Config.MaxBody is unset.
const DefaultMaxBody = 1 << 20

// Config configures a daemon over one program+spec pair.
type Config struct {
	Prog *p4.Program
	Spec *lpi.Spec
	// Snap is the base snapshot new sessions start from unless the create
	// request carries inline entries. nil is the "verify under any
	// entries" snapshot.
	Snap *tables.Snapshot
	// Opts is the base verification options for every session; the
	// session engine flags (FindAll, Slice, Session, Parallel=1) are
	// forced on top, and each session gets its own cancellation token.
	Opts verify.Options
	// ProgramRef is an opaque identity of the program+spec pair, pinned
	// into every journal create record; recovery refuses a journal
	// written under a different ref rather than replaying deltas against
	// the wrong program.
	ProgramRef string
	// JournalDir, when non-empty, enables the crash-recovery journal:
	// one append-only file per session, replayed by New on restart.
	JournalDir string
	// MaxBody bounds request bodies in bytes (<=0: DefaultMaxBody).
	MaxBody int64
	// Deadline is the default per-delta verification deadline, measured
	// from request arrival and mapped onto the solver cancellation token
	// (0: none). A request's ?deadline_ms= parameter overrides it.
	Deadline time.Duration
	// Obs attaches observability sinks; its metrics registry (or a
	// private one when absent) backs /metrics and the serve instruments.
	Obs *obs.Obs
}

// Server is the daemon core, independent of any listener: Handler
// exposes the HTTP surface, Close drains it. Tests drive it through
// httptest; cmd/aquila-serve wraps it in an http.Server with signal
// handling.
type Server struct {
	cfg   Config
	known map[string]bool // fq "Control.table" names the program declares
	reg   *obs.Registry
	mux   *http.ServeMux

	mu        sync.Mutex
	sessions  map[string]*session
	creating  map[string]bool // ids reserved while their baseline runs
	draining  bool
	recovered int

	// beforeApply, when non-nil, runs after a job is dequeued and before
	// its deadline is armed — a test seam that makes deadline-expiry
	// deterministic (the test sleeps past the deadline here, so the
	// cancellation token is already set when the first check starts).
	beforeApply func(id string)
}

// session is one named warm verify.Session behind a serialized apply
// loop: the jobs channel is the queue, loop is its single consumer, so
// deltas to this session verify in strict arrival order while other
// sessions' loops run concurrently.
type session struct {
	id       string
	srv      *Server
	sess     *verify.Session
	cancel   *atomic.Bool // the verify cancellation token; armed per deadline
	budget   int64
	deadline time.Duration
	jw       *journalWriter // nil without a journal

	jobs chan *applyJob
	wg   sync.WaitGroup // in-flight enqueuing handlers
	done chan struct{}  // closed when loop has exited

	mu     sync.Mutex
	deltas int
	holds  bool
}

// applyJob is one queued delta with its reply channel; the loop answers
// every dequeued job exactly once, including during drain.
type applyJob struct {
	delta     *tables.Delta
	deltaText string
	deadline  time.Duration
	enq       time.Time
	reply     chan applyResult
}

type applyResult struct {
	rep *verify.Report
	// reject is a pre-verification failure (bad index against the current
	// snapshot): the session did not change and nothing was journaled.
	reject error
	// err is a post-verification failure (internal); the session DID
	// change and the delta was journaled.
	err error
	// budget reports the run stopped Unknown (ErrBudget); deadlineHit
	// distinguishes an expired deadline from conflict-budget exhaustion.
	budget      bool
	deadlineHit bool
}

var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// New builds a daemon and, when a journal directory is configured,
// recovers every session journaled there. Recovery is all-or-nothing and
// loud: a corrupted record or mismatched program ref fails New.
func New(cfg Config) (*Server, error) {
	if cfg.Prog == nil || cfg.Spec == nil {
		return nil, fmt.Errorf("serve: Config needs a program and a spec")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	srv := &Server{
		cfg:      cfg,
		known:    map[string]bool{},
		sessions: map[string]*session{},
		creating: map[string]bool{},
	}
	for ctlName, ctl := range cfg.Prog.Controls {
		for tname := range ctl.Tables {
			srv.known[ctlName+"."+tname] = true
		}
	}
	if cfg.Obs != nil && cfg.Obs.Metrics != nil {
		srv.reg = cfg.Obs.Metrics
	} else {
		srv.reg = obs.NewRegistry()
	}
	srv.mux = http.NewServeMux()
	srv.mux.HandleFunc("POST /sessions", srv.handleCreate)
	srv.mux.HandleFunc("GET /sessions", srv.handleList)
	srv.mux.HandleFunc("POST /sessions/{id}/deltas", srv.handleDelta)
	srv.mux.HandleFunc("GET /sessions/{id}", srv.handleInfo)
	srv.mux.HandleFunc("DELETE /sessions/{id}", srv.handleDelete)
	srv.mux.HandleFunc("GET /healthz", srv.handleHealthz)
	srv.mux.HandleFunc("GET /metrics", srv.handleMetrics)
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			return nil, err
		}
		if err := srv.recoverSessions(); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// Handler returns the daemon's HTTP surface.
func (srv *Server) Handler() http.Handler { return srv.mux }

// Recovered reports how many sessions New rebuilt from the journal.
func (srv *Server) Recovered() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.recovered
}

// Close drains the daemon: new requests are refused, queued deltas are
// verified (and journaled) to completion, then every session and journal
// file is closed. Safe to call once; the graceful-SIGTERM path.
func (srv *Server) Close() error {
	srv.mu.Lock()
	srv.draining = true
	list := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		list = append(list, s)
	}
	srv.sessions = map[string]*session{}
	srv.mu.Unlock()
	for _, s := range list {
		s.shutdown()
	}
	srv.reg.Gauge(obs.GaugeServeSessions).Set(0)
	return nil
}

// shutdown waits out in-flight enqueuers, lets the loop drain the queue,
// and closes the session. The caller must already have removed s from
// the registry map, so no new enqueuer can appear.
func (s *session) shutdown() {
	s.wg.Wait()
	close(s.jobs)
	<-s.done
}

// recoverSessions rebuilds sessions from every journal in the configured
// directory: replay the clean record prefix (truncating a torn tail),
// check the program ref, re-run the baseline, and re-apply each delta
// through the warm engine — deterministic, so the rebuilt session state
// matches what the crashed daemon had verified.
func (srv *Server) recoverSessions() error {
	paths, err := filepath.Glob(filepath.Join(srv.cfg.JournalDir, "*.journal"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, path := range paths {
		recs, cleanLen, torn, err := replayJournal(path)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return fmt.Errorf("serve: journal %s: no complete record survives (torn=%v); refusing to guess", path, torn)
		}
		cr := recs[0]
		if cr.Kind != recCreate {
			return fmt.Errorf("serve: journal %s: first record is %q, want %q", path, cr.Kind, recCreate)
		}
		id := idFromJournal(path)
		if cr.ID != id {
			return fmt.Errorf("serve: journal %s: create record names session %q", path, cr.ID)
		}
		if cr.ProgramRef != srv.cfg.ProgramRef {
			return fmt.Errorf("serve: journal %s: written under program ref %q, daemon is serving %q — refusing to replay deltas against a different program",
				path, cr.ProgramRef, srv.cfg.ProgramRef)
		}
		var snap *tables.Snapshot
		if !cr.AnyEntries {
			snap, err = tables.ParseSnapshot(cr.Snapshot)
			if err != nil {
				return fmt.Errorf("serve: journal %s: base snapshot: %v", path, err)
			}
		}
		s, _, err := srv.newSession(id, snap, cr.Budget, time.Duration(cr.DeadlineMS)*time.Millisecond)
		if err != nil {
			return fmt.Errorf("serve: journal %s: rebuilding session: %v", path, err)
		}
		for i, rec := range recs[1:] {
			if rec.Kind != recDelta {
				return fmt.Errorf("serve: journal %s: record %d is %q, want %q", path, i+1, rec.Kind, recDelta)
			}
			d, err := tables.ParseDelta(rec.Delta)
			if err != nil {
				return fmt.Errorf("serve: journal %s: record %d: %v", path, i+1, err)
			}
			// Same admission gate the HTTP path runs: a journal delta naming
			// a table the program lacks must fail replay, not silently add a
			// phantom table to the snapshot.
			if err := d.Validate(func(t string) bool { return srv.known[t] }); err != nil {
				return fmt.Errorf("serve: journal %s: record %d: %v", path, i+1, err)
			}
			rep, err := s.sess.Apply(d)
			if err != nil && !errors.Is(err, verify.ErrBudget) {
				return fmt.Errorf("serve: journal %s: replaying delta %d: %v", path, i+1, err)
			}
			s.deltas++
			s.holds = rep.Holds
		}
		jw, err := openJournal(path, cleanLen)
		if err != nil {
			return err
		}
		s.jw = jw
		srv.mu.Lock()
		srv.sessions[id] = s
		srv.recovered++
		srv.mu.Unlock()
		go s.loop()
		srv.reg.Counter(obs.CtrServeRecovered).Add(1)
	}
	srv.reg.Gauge(obs.GaugeServeSessions).Set(int64(len(srv.sessions)))
	return nil
}

func idFromJournal(path string) string {
	base := filepath.Base(path)
	return base[:len(base)-len(".journal")]
}

func (srv *Server) journalPath(id string) string {
	return filepath.Join(srv.cfg.JournalDir, id+".journal")
}

// newSession builds the warm engine for one session, with its own
// cancellation token wired through the verification options. The second
// result reports budget exhaustion during the baseline (the session is
// still usable; the verdicts are Unknown).
func (srv *Server) newSession(id string, snap *tables.Snapshot, budget int64, deadline time.Duration) (*session, bool, error) {
	cancel := &atomic.Bool{}
	opts := srv.cfg.Opts
	opts.Parallel = 1
	opts.Cancel = cancel
	if budget > 0 {
		opts.Budget = budget
	}
	sess, err := verify.NewSession(srv.cfg.Prog, snap, srv.cfg.Spec, opts)
	budgetHit := errors.Is(err, verify.ErrBudget)
	if err != nil && !budgetHit {
		return nil, false, err
	}
	s := &session{
		id:       id,
		srv:      srv,
		sess:     sess,
		cancel:   cancel,
		budget:   opts.Budget,
		deadline: deadline,
		jobs:     make(chan *applyJob, 64),
		done:     make(chan struct{}),
		holds:    sess.Baseline().Holds,
	}
	return s, budgetHit, nil
}

// loop is the session's single consumer: strict FIFO over the jobs
// channel, one verification at a time, every dequeued job answered.
func (s *session) loop() {
	defer close(s.done)
	for j := range s.jobs {
		s.srv.reg.Histogram(obs.HistServeQueueWaitUS).Observe(time.Since(j.enq).Microseconds())
		if hook := s.srv.beforeApply; hook != nil {
			hook(s.id)
		}
		s.apply(j)
	}
	s.sess.Close()
	if s.jw != nil {
		s.jw.Close()
	}
}

// apply runs one dequeued delta: trial-apply for snapshot-dependent
// validation (so a rejected delta provably left the session unchanged),
// arm the deadline, verify, journal, reply.
func (s *session) apply(j *applyJob) {
	res := applyResult{}
	trial := s.sess.Snapshot()
	if trial == nil {
		trial = tables.NewSnapshot()
	}
	if err := j.delta.Apply(trial); err != nil {
		res.reject = err
		j.reply <- res
		return
	}
	var timer *time.Timer
	if j.deadline > 0 {
		// The deadline is measured from request arrival: time queued
		// behind earlier deltas counts against it.
		if rem := time.Until(j.enq.Add(j.deadline)); rem <= 0 {
			s.cancel.Store(true)
		} else {
			timer = time.AfterFunc(rem, func() { s.cancel.Store(true) })
		}
	}
	t0 := time.Now()
	rep, err := s.sess.Apply(j.delta)
	wall := time.Since(t0)
	if timer != nil {
		timer.Stop()
	}
	fired := s.cancel.Load()
	s.cancel.Store(false)

	reg := s.srv.reg
	reg.Histogram(obs.HistServeApplyWallUS).Observe(wall.Microseconds())
	res.rep = rep
	switch {
	case err == nil:
	case errors.Is(err, verify.ErrBudget):
		res.budget = true
		res.deadlineHit = fired
	default:
		res.err = err
	}
	// The snapshot mutated (the trial apply above rules out rejection),
	// so the journal must record the delta regardless of the verdict.
	if s.jw != nil {
		if jerr := s.jw.append(journalRecord{Kind: recDelta, Delta: j.deltaText}); jerr != nil && res.err == nil {
			res.err = fmt.Errorf("serve: journal append: %w", jerr)
		}
	}
	if rep != nil {
		reg.Counter(obs.CtrServeDeltas).Add(1)
		s.mu.Lock()
		s.deltas++
		s.holds = rep.Holds
		s.mu.Unlock()
	}
	j.reply <- res
}

// ---- HTTP handlers ----

// createRequest is the POST /sessions body.
type createRequest struct {
	ID string `json:"id"`
	// Budget bounds SAT conflicts per check (0: the daemon default).
	Budget int64 `json:"budget,omitempty"`
	// DeadlineMS is this session's default per-delta deadline
	// (0: the daemon default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Entries, when non-empty, is the session's base snapshot in the
	// tables text format, overriding the daemon's base snapshot.
	Entries string `json:"entries,omitempty"`
}

func (srv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := srv.readBody(w, r)
	if !ok {
		return
	}
	var req createRequest
	if err := json.Unmarshal(body, &req); err != nil {
		srv.httpError(w, http.StatusBadRequest, "create body: %v", err)
		return
	}
	if !idPattern.MatchString(req.ID) {
		srv.httpError(w, http.StatusBadRequest, "session id %q: want %s", req.ID, idPattern)
		return
	}
	snap := srv.cfg.Snap
	anyEntries := snap == nil
	if req.Entries != "" {
		var err error
		snap, err = tables.ParseSnapshot(req.Entries)
		if err != nil {
			srv.httpError(w, http.StatusBadRequest, "entries: %v", err)
			return
		}
		anyEntries = false
	}
	deadline := srv.cfg.Deadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}

	// Reserve the id before the (slow) baseline run so a concurrent
	// duplicate create conflicts instead of racing.
	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		srv.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if srv.sessions[req.ID] != nil || srv.creating[req.ID] {
		srv.mu.Unlock()
		srv.httpError(w, http.StatusConflict, "session %q already exists", req.ID)
		return
	}
	srv.creating[req.ID] = true
	srv.mu.Unlock()
	release := func() {
		srv.mu.Lock()
		delete(srv.creating, req.ID)
		srv.mu.Unlock()
	}

	s, budgetHit, err := srv.newSession(req.ID, snap, req.Budget, deadline)
	if err != nil {
		release()
		srv.httpError(w, http.StatusBadRequest, "creating session: %v", err)
		return
	}
	if srv.cfg.JournalDir != "" {
		jw, jerr := createJournal(srv.journalPath(req.ID), journalRecord{
			Kind:       recCreate,
			ID:         req.ID,
			ProgramRef: srv.cfg.ProgramRef,
			Budget:     s.budget,
			DeadlineMS: deadline.Milliseconds(),
			Snapshot:   tables.Format(snap),
			AnyEntries: anyEntries,
		})
		if jerr != nil {
			s.sess.Close()
			release()
			srv.httpError(w, http.StatusInternalServerError, "creating journal: %v", jerr)
			return
		}
		s.jw = jw
	}
	srv.mu.Lock()
	delete(srv.creating, req.ID)
	if srv.draining {
		// Close started while the baseline ran; it cannot see this
		// session, so dismantle it here instead of leaking it.
		srv.mu.Unlock()
		s.sess.Close()
		if s.jw != nil {
			s.jw.Close()
			os.Remove(srv.journalPath(req.ID))
		}
		srv.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	srv.sessions[req.ID] = s
	n := len(srv.sessions)
	srv.mu.Unlock()
	srv.reg.Gauge(obs.GaugeServeSessions).Set(int64(n))
	go s.loop()

	w.Header().Set("X-Aquila-Holds", strconv.FormatBool(s.sess.Baseline().Holds))
	w.Header().Set("X-Aquila-Budget-Exhausted", strconv.FormatBool(budgetHit))
	srv.writeReport(w, http.StatusCreated, s.sess.Baseline())
}

func (srv *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	enq := time.Now()
	srv.mu.Lock()
	s := srv.sessions[id]
	if s != nil {
		// Holding wg across the enqueue keeps DELETE/Close from closing
		// the channel under us; taken inside srv.mu so the deleter's
		// map-removal + wg.Wait cannot slip between lookup and Add.
		s.wg.Add(1)
	}
	srv.mu.Unlock()
	if s == nil {
		srv.httpError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	defer s.wg.Done()

	body, ok := srv.readBody(w, r)
	if !ok {
		return
	}
	delta, err := tables.ParseDelta(string(body))
	if err != nil {
		srv.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(delta.Ops) == 0 {
		srv.httpError(w, http.StatusBadRequest, "empty delta")
		return
	}
	if err := delta.Validate(func(t string) bool { return srv.known[t] }); err != nil {
		srv.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline := s.deadline
	if p := r.URL.Query().Get("deadline_ms"); p != "" {
		ms, err := strconv.ParseInt(p, 10, 64)
		if err != nil || ms < 0 {
			srv.httpError(w, http.StatusBadRequest, "deadline_ms %q: want a non-negative integer", p)
			return
		}
		deadline = time.Duration(ms) * time.Millisecond
	}
	j := &applyJob{
		delta:     delta,
		deltaText: tables.FormatDelta(delta),
		deadline:  deadline,
		enq:       enq,
		reply:     make(chan applyResult, 1),
	}
	s.jobs <- j
	res := <-j.reply
	switch {
	case res.reject != nil:
		srv.httpError(w, http.StatusBadRequest, "%v", res.reject)
		return
	case res.err != nil:
		srv.httpError(w, http.StatusInternalServerError, "%v", res.err)
		return
	}
	w.Header().Set("X-Aquila-Holds", strconv.FormatBool(res.rep.Holds))
	w.Header().Set("X-Aquila-Budget-Exhausted", strconv.FormatBool(res.budget))
	w.Header().Set("X-Aquila-Deadline-Exceeded", strconv.FormatBool(res.deadlineHit))
	srv.writeReport(w, http.StatusOK, res.rep)
}

func (srv *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	srv.mu.Lock()
	s := srv.sessions[id]
	srv.mu.Unlock()
	if s == nil {
		srv.httpError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	s.mu.Lock()
	info := map[string]any{
		"id":         s.id,
		"deltas":     s.deltas,
		"holds":      s.holds,
		"assertions": s.sess.Baseline().Stats.Assertions,
		"budget":     s.budget,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (srv *Server) handleList(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	ids := make([]string, 0, len(srv.sessions))
	for id := range srv.sessions {
		ids = append(ids, id)
	}
	srv.mu.Unlock()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, map[string]any{"sessions": ids, "count": len(ids)})
}

func (srv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	srv.mu.Lock()
	s := srv.sessions[id]
	delete(srv.sessions, id)
	n := len(srv.sessions)
	srv.mu.Unlock()
	if s == nil {
		srv.httpError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	s.shutdown()
	if srv.cfg.JournalDir != "" {
		if err := os.Remove(srv.journalPath(id)); err != nil {
			srv.httpError(w, http.StatusInternalServerError, "removing journal: %v", err)
			return
		}
	}
	srv.reg.Gauge(obs.GaugeServeSessions).Set(int64(n))
	w.WriteHeader(http.StatusNoContent)
}

func (srv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	n, draining := len(srv.sessions), srv.draining
	srv.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "sessions": n})
}

func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := srv.reg.WriteOpenMetrics(&buf); err != nil {
		srv.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// ---- helpers ----

// readBody reads a size-bounded request body; on failure it has already
// written the error response (413 for an oversized body).
func (srv *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, srv.cfg.MaxBody)
	data, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			srv.httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", srv.cfg.MaxBody)
		} else {
			srv.httpError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return data, true
}

// writeReport writes a report's canonical JSON as the EXACT response
// body — the byte-identity contract the differential tests compare.
func (srv *Server) writeReport(w http.ResponseWriter, code int, rep *verify.Report) {
	data, err := rep.CanonicalJSON()
	if err != nil {
		srv.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func (srv *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	if code >= 400 && code < 500 {
		srv.reg.Counter(obs.CtrServeRejected).Add(1)
	}
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"encoding response"}`)
		code = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}
