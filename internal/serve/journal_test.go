// Satellite crash-recovery suite: the journal's promise is that a
// daemon killed mid-write loses AT MOST the record being written, never
// silently loses history, and never replays corrupted history. The
// truncation sweep cuts the journal at EVERY byte offset inside the tail
// record and proves recovery lands on the clean prefix with full
// byte-identity; the corruption tests prove a damaged complete record
// (and a mismatched program) fail New loudly.
package serve

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/progs"
	"aquila/internal/tables"
)

// routerSnapshot seeds RouterIngress.forward — the Simple Router is the
// cheapest corpus program to verify, which keeps the every-byte-offset
// sweep fast.
const routerSnapshot = `
table RouterIngress.forward {
  1 -> set_dmac(17)
  2 -> set_dmac(34)
}
`

var routerDeltas = []string{
	"add RouterIngress.forward 3 -> set_dmac(51)",
	"replace RouterIngress.forward 0 1 -> a_drop",
	"remove RouterIngress.forward 1",
}

func routerProblem(t testing.TB) (*p4.Program, *lpi.Spec) {
	t.Helper()
	bm := progs.HandWrittenSuite()[0] // Simple Router
	prog, err := bm.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	return prog, spec
}

// crashedJournal runs a daemon through create + the router deltas and
// abandons it WITHOUT Close — simulating a kill. Each record is written
// with a single write and fsynced, so the journal bytes on disk are the
// complete history. Returns the journal bytes.
func crashedJournal(t *testing.T, prog *p4.Program, spec *lpi.Spec, cfg Config) []byte {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	createSession(t, srv, "s", routerSnapshot)
	for _, dt := range routerDeltas {
		applyDelta(t, srv, "s", dt)
	}
	// No srv.Close(): the apply loop goroutine is abandoned, exactly like
	// a SIGKILL after the last reply was sent.
	data, err := os.ReadFile(filepath.Join(cfg.JournalDir, "s.journal"))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	return data
}

// recordStarts parses the journal framing and returns each record's
// starting offset (header included).
func recordStarts(t *testing.T, data []byte) []int {
	t.Helper()
	var starts []int
	off := 0
	for off+8 <= len(data) {
		starts = append(starts, off)
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if off+8+n > len(data) {
			t.Fatalf("journal written by a clean run has a torn record at %d", off)
		}
		off += 8 + n
	}
	if off != len(data) {
		t.Fatalf("journal has %d trailing bytes after the last record", len(data)-off)
	}
	return starts
}

// TestJournalTruncationSweep cuts the journal at every byte offset
// within its final record (from the record's first header byte up to the
// clean end) and proves each cut recovers: the daemon comes back with
// the surviving delta prefix, and the next report over HTTP is
// byte-identical to a fresh run on that prefix.
func TestJournalTruncationSweep(t *testing.T) {
	prog, spec := routerProblem(t)
	dir := t.TempDir()
	cfg := Config{Prog: prog, Spec: spec, ProgramRef: "test:router", JournalDir: dir}
	data := crashedJournal(t, prog, spec, cfg)
	starts := recordStarts(t, data)
	if want := 1 + len(routerDeltas); len(starts) != want {
		t.Fatalf("journal has %d records, want %d", len(starts), want)
	}
	tailStart := starts[len(starts)-1]

	extra := "add RouterIngress.forward 9 -> set_dmac(9)"
	// Any cut strictly inside the tail record drops it, leaving the first
	// two deltas; only the uncut journal keeps all three.
	wantByPrefix := make(map[int][]byte)
	for _, n := range []int{len(routerDeltas) - 1, len(routerDeltas)} {
		snap := mustSnapshot(t, routerSnapshot)
		for _, dt := range routerDeltas[:n] {
			applyText(t, snap, dt)
		}
		applyText(t, snap, extra)
		wantByPrefix[n] = freshCanonical(t, prog, spec, snap)
	}

	for cut := tailStart; cut <= len(data); cut++ {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "s.journal"), data[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		cfg2 := cfg
		cfg2.JournalDir = dir2
		srv, err := New(cfg2)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if got := srv.Recovered(); got != 1 {
			t.Fatalf("cut %d: recovered %d sessions, want 1", cut, got)
		}
		surviving := len(routerDeltas)
		if cut < len(data) {
			surviving--
		}
		rr := applyDelta(t, srv, "s", extra)
		if !bytes.Equal(rr.Body.Bytes(), wantByPrefix[surviving]) {
			t.Fatalf("cut %d (surviving prefix %d): recovered report differs from fresh run:\nhttp:\n%s\nfresh:\n%s",
				cut, surviving, rr.Body.Bytes(), wantByPrefix[surviving])
		}
		// The truncated tail must be GONE from disk too: re-replaying the
		// reopened journal has to see clean framing.
		srv.Close()
		recs, _, torn, err := replayJournal(filepath.Join(dir2, "s.journal"))
		if err != nil || torn {
			t.Fatalf("cut %d: reopened journal not clean: torn=%v err=%v", cut, torn, err)
		}
		if want := 1 + surviving + 1; len(recs) != want {
			t.Fatalf("cut %d: reopened journal has %d records, want %d", cut, len(recs), want)
		}
	}
}

// TestJournalCorruptionFailsLoudly flips one payload byte of a COMPLETE
// record: recovery must refuse with a checksum error, not shrink or
// alter history. A journal written under a different program ref must be
// refused too.
func TestJournalCorruptionFailsLoudly(t *testing.T) {
	prog, spec := routerProblem(t)
	dir := t.TempDir()
	cfg := Config{Prog: prog, Spec: spec, ProgramRef: "test:router", JournalDir: dir}
	data := crashedJournal(t, prog, spec, cfg)
	starts := recordStarts(t, data)

	t.Run("checksum mismatch", func(t *testing.T) {
		for _, rec := range []int{0, 1} { // create record and first delta
			corrupt := append([]byte(nil), data...)
			corrupt[starts[rec]+8+4] ^= 0xFF
			dir2 := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir2, "s.journal"), corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			cfg2 := cfg
			cfg2.JournalDir = dir2
			if _, err := New(cfg2); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
				t.Fatalf("record %d corrupted: New() err = %v, want checksum mismatch", rec, err)
			}
		}
	})

	t.Run("program ref mismatch", func(t *testing.T) {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "s.journal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		cfg2 := cfg
		cfg2.JournalDir = dir2
		cfg2.ProgramRef = "test:other-program"
		if _, err := New(cfg2); err == nil || !strings.Contains(err.Error(), "different program") {
			t.Fatalf("New() err = %v, want program-ref refusal", err)
		}
	})

	t.Run("unknown table in journal", func(t *testing.T) {
		// A journal whose delta names a table the program lacks must be
		// refused at replay (an `add` would otherwise silently create a
		// phantom table in the snapshot).
		dir2 := t.TempDir()
		jw, err := createJournal(filepath.Join(dir2, "s.journal"), journalRecord{
			Kind: recCreate, ID: "s", ProgramRef: "test:router",
			Snapshot: tables.Format(mustSnapshot(t, routerSnapshot)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := jw.append(journalRecord{Kind: recDelta, Delta: "add RouterIngress.ghost_tbl 0 -> a_drop\n"}); err != nil {
			t.Fatal(err)
		}
		jw.Close()
		cfg2 := cfg
		cfg2.JournalDir = dir2
		if _, err := New(cfg2); err == nil || !strings.Contains(err.Error(), "unknown table") {
			t.Fatalf("New() err = %v, want unknown-table replay refusal", err)
		}
	})
}
