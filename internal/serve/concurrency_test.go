// Satellite concurrency suite: the daemon's core claim is that deltas
// to DIFFERENT sessions verify in parallel while deltas to ONE session
// serialize in arrival order — and that neither concurrency nor session
// churn ever perturbs a report byte. These tests hammer that claim and
// are the reason ./internal/serve rides the -race CI job.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"aquila/internal/tables"
	"aquila/internal/verify"
)

// TestServeConcurrentDisjointSessions runs one worker goroutine per
// session posting deltas while churner goroutines create and delete
// unrelated sessions the whole time. After the join, every stored
// response must be byte-identical to a fresh verify.Run on the snapshot
// that session had at that point.
func TestServeConcurrentDisjointSessions(t *testing.T) {
	prog, spec := dcProblem(t)
	srv := newTestServer(t, Config{Prog: prog, Spec: spec})

	const nSessions = 4
	const nDeltas = 3
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%d", i)
		createSession(t, srv, ids[i], dcSnapshot)
	}
	// deltaFor keeps the per-session histories distinct so a cross-session
	// state leak cannot cancel out.
	deltaFor := func(session, step int) string {
		switch step {
		case 0:
			return fmt.Sprintf("add GatewayIngress.ecmp_nhop_tbl %d -> set_nhop(%d)", 4+session, session%8+1)
		case 1:
			return fmt.Sprintf("replace GatewayIngress.ecmp_nhop_tbl %d %d -> a_drop", session, session)
		default:
			return "remove GatewayIngress.ecmp_nhop_tbl 0"
		}
	}

	var wg sync.WaitGroup
	responses := make([][][]byte, nSessions)
	workerErr := make([]error, nSessions)
	for i := range ids {
		responses[i] = make([][]byte, nDeltas)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < nDeltas; k++ {
				rr := do(srv, "POST", "/sessions/"+ids[i]+"/deltas", deltaFor(i, k))
				if rr.Code != http.StatusOK {
					workerErr[i] = fmt.Errorf("delta %d: status %d: %s", k, rr.Code, rr.Body.String())
					return
				}
				responses[i][k] = append([]byte(nil), rr.Body.Bytes()...)
			}
		}(i)
	}
	// Churners create and delete sessions concurrently with the workers,
	// forcing the registry lock and the per-session apply loops to
	// coexist with session lifecycle events.
	churnErr := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 2; k++ {
				id := fmt.Sprintf("churn-%d-%d", g, k)
				body, _ := json.Marshal(createRequest{ID: id, Entries: dcSnapshot})
				rr := do(srv, "POST", "/sessions", string(body))
				if rr.Code != http.StatusCreated {
					churnErr[g] = fmt.Errorf("churn create %s: %d: %s", id, rr.Code, rr.Body.String())
					return
				}
				if rr := do(srv, "DELETE", "/sessions/"+id, ""); rr.Code != http.StatusNoContent {
					churnErr[g] = fmt.Errorf("churn delete %s: %d: %s", id, rr.Code, rr.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i, err := range workerErr {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for g, err := range churnErr {
		if err != nil {
			t.Fatalf("churner %d: %v", g, err)
		}
	}

	// Sequential differential check: replay each session's history onto a
	// private snapshot and fresh-run every intermediate state.
	for i := range ids {
		exp := mustSnapshot(t, dcSnapshot)
		for k := 0; k < nDeltas; k++ {
			applyText(t, exp, deltaFor(i, k))
			want := freshCanonical(t, prog, spec, exp)
			if !bytes.Equal(responses[i][k], want) {
				t.Fatalf("session %s delta %d: concurrent response differs from fresh run:\nhttp:\n%s\nfresh:\n%s",
					ids[i], k, responses[i][k], want)
			}
		}
	}
	// The churned sessions are gone; the workers' sessions survive.
	rr := do(srv, "GET", "/sessions", "")
	if want := `{"count":4,"sessions":["w0","w1","w2","w3"]}`; rr.Body.String() != want {
		t.Fatalf("surviving sessions = %s, want %s", rr.Body.String(), want)
	}
}

// TestServeInOrderMatchesSequentialSession pins the FIFO guarantee the
// cheap way: a burst of deltas posted to one session must produce, in
// order, exactly the reports a bare verify.Session yields when fed the
// same deltas sequentially.
func TestServeInOrderMatchesSequentialSession(t *testing.T) {
	prog, spec := dcProblem(t)
	srv := newTestServer(t, Config{Prog: prog, Spec: spec})
	base := mustSnapshot(t, dcSnapshot)

	sess, err := verify.NewSession(prog, base, spec, verify.Options{Parallel: 1})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()

	body := createSession(t, srv, "seq", dcSnapshot)
	want, err := sess.Baseline().CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("create report differs from bare session baseline")
	}

	deltas := []string{
		"add GatewayIngress.ecmp_nhop_tbl 4 -> set_nhop(5)",
		"replace GatewayIngress.ecmp_nhop_tbl 0 0 -> a_drop",
		"remove GatewayIngress.ecmp_nhop_tbl 2",
		"add GatewayIngress.ecmp_nhop_tbl 6 -> set_nhop(7)",
	}
	for k, dt := range deltas {
		rr := applyDelta(t, srv, "seq", dt)
		d, err := tables.ParseDelta(dt)
		if err != nil {
			t.Fatalf("delta %d: %v", k, err)
		}
		rep, err := sess.Apply(d)
		if err != nil {
			t.Fatalf("bare apply %d: %v", k, err)
		}
		want, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("canonical %d: %v", k, err)
		}
		if !bytes.Equal(rr.Body.Bytes(), want) {
			t.Fatalf("delta %d: http report differs from bare sequential session:\nhttp:\n%s\nbare:\n%s",
				k, rr.Body.Bytes(), want)
		}
	}
}
