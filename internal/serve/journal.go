// journal.go is aquila-serve's crash-recovery log: one append-only file
// per session holding length-prefixed, checksummed records — a "create"
// record pinning the program ref, budget, and base snapshot, followed by
// one "delta" record per applied table update. Replaying the file through
// the warm Session engine rebuilds the exact session state, so a daemon
// restart resumes continuous verification where it stopped.
//
// Record framing is an 8-byte header (uint32 LE payload length, uint32 LE
// CRC-32/IEEE of the payload) followed by the JSON payload, written with a
// single write and fsynced. Recovery is truncation-tolerant at the tail
// only: a final record cut short by a crash is dropped (and the file
// truncated back to the clean prefix), but a COMPLETE record whose
// checksum mismatches is a hard error — silent corruption must fail
// recovery loudly, not shrink the delta history.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// Journal record kinds.
const (
	recCreate = "create"
	recDelta  = "delta"
)

// journalRecord is one entry of a session journal.
type journalRecord struct {
	Kind string `json:"kind"`
	// Create fields.
	ID         string `json:"id,omitempty"`
	ProgramRef string `json:"program_ref,omitempty"`
	Budget     int64  `json:"budget,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	// Snapshot is the base snapshot in tables.Format text; AnyEntries
	// distinguishes the nil "verify under any entries" snapshot from an
	// empty concrete one (they verify differently).
	Snapshot   string `json:"snapshot,omitempty"`
	AnyEntries bool   `json:"any_entries,omitempty"`
	// Delta field: the applied update in tables.FormatDelta text.
	Delta string `json:"delta,omitempty"`
}

// journalWriter appends records to one session's journal file.
type journalWriter struct {
	f *os.File
}

// createJournal starts a new session journal at path with its create
// record. The file must not already exist: a leftover journal for a new
// session id means two histories would interleave, which is a conflict,
// not something to overwrite.
func createJournal(path string, rec journalRecord) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	w := &journalWriter{f: f}
	if err := w.append(rec); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// openJournal reopens a recovered journal for appending after replay has
// truncated any torn tail back to cleanLen.
func openJournal(path string, cleanLen int64) (*journalWriter, error) {
	if err := os.Truncate(path, cleanLen); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journalWriter{f: f}, nil
}

// append frames, writes, and fsyncs one record. The header and payload go
// down in a single write, so a crash can only leave a torn FINAL record —
// exactly the case replayJournal tolerates.
func (w *journalWriter) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *journalWriter) Close() error { return w.f.Close() }

// replayJournal reads a session journal and returns the records of its
// longest clean prefix, the byte length of that prefix (for truncation),
// and whether a torn tail record was dropped. A complete record with a
// checksum or JSON failure is a hard error.
func replayJournal(path string) (recs []journalRecord, cleanLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+8+n > len(data) {
			// Torn tail: the header promises more payload than the file
			// holds — the single-write framing means only a crash mid-append
			// can produce this, and only on the final record.
			break
		}
		payload := data[off+8 : off+8+n]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, 0, false, fmt.Errorf(
				"serve: journal %s: record %d at offset %d: checksum mismatch (stored %08x, computed %08x) — refusing to recover from a corrupted journal",
				path, len(recs), off, sum, got)
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, 0, false, fmt.Errorf(
				"serve: journal %s: record %d at offset %d: checksummed payload is not valid JSON: %v",
				path, len(recs), off, err)
		}
		recs = append(recs, rec)
		off += 8 + n
	}
	return recs, int64(off), off < len(data), nil
}
