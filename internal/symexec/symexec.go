// Package symexec implements a Vera-style verification baseline (§8): an
// explicit path-enumerating symbolic executor over the P4 IR. Where
// Aquila's sequential encoding merges control flow into one compact
// formula, this engine forks at every parser select, table entry and
// conditional, solving per-path feasibility queries — the strategy whose
// path explosion the paper's Table 3 demonstrates on production-scale
// programs.
package symexec

import (
	"fmt"
	"time"

	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

// ErrPathExplosion reports that the engine exceeded its path budget — the
// analogue of Vera's OOT entries in Table 3.
type ErrPathExplosion struct {
	Paths int
}

func (e *ErrPathExplosion) Error() string {
	return fmt.Sprintf("symexec: path budget exceeded (%d paths)", e.Paths)
}

// Options configures the engine.
type Options struct {
	// MaxPaths aborts the exploration beyond this many explored paths
	// (default 100000).
	MaxPaths int
	// LoopBound bounds parser loops (default 4).
	LoopBound int
	// Deadline bounds wall-clock time (zero: none).
	Deadline time.Duration
	// SolveEveryFork prunes infeasible paths eagerly with a solver call at
	// each fork, like Vera; costs many small queries.
	SolveEveryFork bool
}

// Property is the checked property: a function producing the asserted
// condition from the final symbolic state of each path. The engine reports
// paths whose condition can be false.
type Property func(ctx *smt.Ctx, get func(name string, width int) *smt.Term) *smt.Term

// Violation is a failing path.
type Violation struct {
	PathCond *smt.Term
	Model    *smt.Model
}

// Result summarizes an exploration.
type Result struct {
	Paths      int
	Violations []*Violation
	Time       time.Duration
}

// Engine is the symbolic executor.
type Engine struct {
	ctx   *smt.Ctx
	prog  *p4.Program
	snap  *tables.Snapshot
	opts  Options
	fresh int

	headerIDs map[string]uint64
	headers   []string
	solver    *smt.Solver
	start     time.Time
}

// New returns an engine over prog (+ optional snapshot).
func New(prog *p4.Program, snap *tables.Snapshot, opts Options) *Engine {
	if opts.MaxPaths == 0 {
		opts.MaxPaths = 100000
	}
	if opts.LoopBound == 0 {
		opts.LoopBound = 4
	}
	ctx := smt.NewCtx()
	e := &Engine{ctx: ctx, prog: prog, snap: snap, opts: opts, headerIDs: map[string]uint64{}}
	i := 0
	for _, inst := range prog.Instances {
		if inst.IsHeader {
			i++
			e.headerIDs[inst.Name] = uint64(i)
			e.headers = append(e.headers, inst.Name)
		}
	}
	e.solver = smt.NewSolver(ctx)
	return e
}

// Ctx exposes the engine's term context (for building assumptions).
func (e *Engine) Ctx() *smt.Ctx { return e.ctx }

// pathState is one execution path.
type pathState struct {
	vals   map[string]*smt.Term
	cond   *smt.Term
	extIdx int
	// pipelineRan records that a pipeline already completed on this path,
	// so the next pipeline call is preceded by the §4.3 packet pass.
	pipelineRan bool
}

func (s *pathState) clone() *pathState {
	c := &pathState{vals: make(map[string]*smt.Term, len(s.vals)), cond: s.cond, extIdx: s.extIdx, pipelineRan: s.pipelineRan}
	for k, v := range s.vals {
		c.vals[k] = v
	}
	return c
}

func (e *Engine) get(s *pathState, name string, width int) *smt.Term {
	if v, ok := s.vals[name]; ok {
		return v
	}
	if width == 0 {
		return e.ctx.BoolVar(name)
	}
	return e.ctx.Var(name, width)
}

// Run explores the named components and checks the property on every
// complete path.
func (e *Engine) Run(components []string, assume *smt.Term, prop Property) (*Result, error) {
	e.start = time.Now()
	res := &Result{}
	c := e.ctx
	init := &pathState{vals: map[string]*smt.Term{}, cond: c.True()}
	for _, h := range e.headers {
		init.vals[h+".$valid"] = c.False()
	}
	for _, f := range []string{"drop", "to_cpu", "recirc", "resubmit", "mirror"} {
		init.vals["std_meta."+f] = c.BV(0, 1)
	}
	for ctlName, ctl := range e.prog.Controls {
		for tn := range ctl.Tables {
			init.vals["$applied."+ctlName+"."+tn] = c.False()
			init.vals["$hit."+ctlName+"."+tn] = c.False()
			init.vals["$action."+ctlName+"."+tn] = c.BV(0, 16)
		}
	}
	if assume != nil {
		init.cond = c.And(init.cond, assume)
	}
	paths, err := e.runComponents(components, init, res)
	if err != nil {
		return res, err
	}
	for _, p := range paths {
		check := prop(c, func(name string, width int) *smt.Term { return e.get(p, name, width) })
		violation := c.And(p.cond, c.Not(check))
		if e.solver.Check(violation) == smt.Sat {
			m := e.solver.Model()
			e.solver.ModelCollect(m, violation)
			res.Violations = append(res.Violations, &Violation{PathCond: violation, Model: m})
		}
	}
	res.Time = time.Since(e.start)
	return res, nil
}

func (e *Engine) budgetCheck(res *Result) error {
	if res.Paths > e.opts.MaxPaths {
		return &ErrPathExplosion{Paths: res.Paths}
	}
	if e.opts.Deadline > 0 && time.Since(e.start) > e.opts.Deadline {
		return &ErrPathExplosion{Paths: res.Paths}
	}
	return nil
}

func (e *Engine) runComponents(components []string, s *pathState, res *Result) ([]*pathState, error) {
	paths := []*pathState{s}
	for _, comp := range components {
		var next []*pathState
		for _, p := range paths {
			out, err := e.runComponent(comp, p, res)
			if err != nil {
				return nil, err
			}
			next = append(next, out...)
		}
		paths = next
	}
	return paths, nil
}

func (e *Engine) runComponent(name string, s *pathState, res *Result) ([]*pathState, error) {
	if _, ok := e.prog.Parsers[name]; ok {
		return e.runParser(name, s, res)
	}
	if _, ok := e.prog.Controls[name]; ok {
		ctl := e.prog.Controls[name]
		return e.runStmts(ctl, ctl.Apply, s, nil, res)
	}
	if pl, ok := e.prog.Pipelines[name]; ok {
		// Inter-pipeline packet passing (§4.3): after a previous pipeline
		// deparsed, its output becomes this pipeline's input packet — the
		// same traffic-manager hop the GCL encoding models in PassPacket.
		if s.pipelineRan {
			e.passPacket(s)
		}
		s.pipelineRan = true
		var comps []string
		if pl.Parser != "" {
			comps = append(comps, pl.Parser)
		}
		if pl.Control != "" {
			comps = append(comps, pl.Control)
		}
		paths, err := e.runComponents(comps, s, res)
		if err != nil {
			return nil, err
		}
		if pl.Deparser != "" {
			for _, p := range paths {
				if err := e.deparserOut(pl.Deparser, p); err != nil {
					return nil, err
				}
			}
		}
		return paths, nil
	}
	if _, ok := e.prog.Deparsers[name]; ok {
		return []*pathState{s}, e.deparserOut(name, s)
	}
	return nil, fmt.Errorf("symexec: unknown component %q", name)
}

// passPacket applies the §4.3 inter-pipeline packet pass to one path:
// emitted header values overwrite the packet image, the deparsed output
// order becomes the input order, and parser state resets. Mirrors the
// encoder's PassPacket.
func (e *Engine) passPacket(s *pathState) {
	c := e.ctx
	for _, h := range e.headers {
		ht := e.prog.InstanceType(h)
		valid := e.get(s, h+".$valid", 0)
		for _, f := range ht.Fields {
			pv := e.get(s, "pkt."+h+"."+f.Name, f.Width)
			s.vals["pkt."+h+"."+f.Name] = c.Ite(valid, e.get(s, h+"."+f.Name, f.Width), pv)
		}
	}
	for i := 0; i < len(e.headers); i++ {
		s.vals[fmt.Sprintf("pkt.$order.%d", i)] = e.get(s, fmt.Sprintf("pkt.$out.%d", i), 8)
	}
	for _, h := range e.headers {
		s.vals[h+".$valid"] = c.False()
	}
	s.extIdx = 0
}

// deparserOut computes the deparsed output order of one path: emits place
// valid header ids into pkt.$out slots, then the unparsed remainder of
// the input packet is appended, then checksum updates run.
func (e *Engine) deparserOut(name string, s *pathState) error {
	dp, ok := e.prog.Deparsers[name]
	if !ok {
		return fmt.Errorf("symexec: unknown deparser %q", name)
	}
	c := e.ctx
	n := len(e.headers)
	for i := 0; i < n; i++ {
		s.vals[fmt.Sprintf("pkt.$out.%d", i)] = c.BV(0, 8)
	}
	s.vals["pkt.$outidx"] = c.BV(0, 8)
	var checksums []*p4.UpdateChecksumStmt
	for _, raw := range dp.Stmts {
		switch st := raw.(type) {
		case *p4.EmitStmt:
			valid := e.get(s, st.Header+".$valid", 0)
			outIdx := e.get(s, "pkt.$outidx", 8)
			id := c.BV(e.headerIDs[st.Header], 8)
			for i := 0; i < n; i++ {
				slot := e.get(s, fmt.Sprintf("pkt.$out.%d", i), 8)
				cond := c.And(valid, c.Eq(outIdx, c.BV(uint64(i), 8)))
				s.vals[fmt.Sprintf("pkt.$out.%d", i)] = c.Ite(cond, id, slot)
			}
			s.vals["pkt.$outidx"] = c.Ite(valid, c.BVAdd(outIdx, c.BV(1, 8)), outIdx)
		case *p4.UpdateChecksumStmt:
			checksums = append(checksums, st)
		}
	}
	// Unparsed tail: the extraction index is concrete on a path.
	outIdx := e.get(s, "pkt.$outidx", 8)
	for k := 0; s.extIdx+k < n; k++ {
		val := e.get(s, fmt.Sprintf("pkt.$order.%d", s.extIdx+k), 8)
		dst := c.BVAdd(outIdx, c.BV(uint64(k), 8))
		for i := 0; i < n; i++ {
			slot := e.get(s, fmt.Sprintf("pkt.$out.%d", i), 8)
			cond := c.And(c.Eq(dst, c.BV(uint64(i), 8)), c.Neq(val, c.BV(0, 8)))
			s.vals[fmt.Sprintf("pkt.$out.%d", i)] = c.Ite(cond, val, slot)
		}
	}
	for _, st := range checksums {
		w := e.checksumWidth(st.Dst)
		sum := c.BV(0, w)
		for _, in := range st.Inputs {
			t, err := e.expr(in, s, nil, -1)
			if err != nil {
				return err
			}
			sum = c.BVAdd(sum, c.Resize(t, w))
		}
		if err := e.assign(&p4.AssignStmt{LHS: st.Dst, RHS: &p4.ExternExpr{X: sum}}, s, nil); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) checksumWidth(dst p4.Expr) int {
	switch l := dst.(type) {
	case *p4.FieldRef:
		return e.prog.InstanceType(l.Instance).Field(l.Field).Width
	case *p4.SliceExpr:
		return l.Hi - l.Lo + 1
	}
	return 16
}

// fork registers a new path branch, with optional eager feasibility
// pruning.
func (e *Engine) fork(s *pathState, cond *smt.Term, res *Result) (*pathState, bool, error) {
	ns := s.clone()
	ns.cond = e.ctx.And(ns.cond, cond)
	res.Paths++
	if err := e.budgetCheck(res); err != nil {
		return nil, false, err
	}
	if ns.cond == e.ctx.False() {
		return nil, false, nil
	}
	if e.opts.SolveEveryFork {
		if e.solver.Check(ns.cond) != smt.Sat {
			return nil, false, nil
		}
	}
	return ns, true, nil
}

func (e *Engine) runParser(name string, s *pathState, res *Result) ([]*pathState, error) {
	pr := e.prog.Parsers[name]
	s.vals["$accept."+name] = e.ctx.False()
	s.vals["$reject."+name] = e.ctx.False()
	return e.runParserState(pr, pr.Start, s, map[string]int{}, res)
}

func (e *Engine) runParserState(pr *p4.Parser, stName string, s *pathState, visits map[string]int, res *Result) ([]*pathState, error) {
	c := e.ctx
	switch stName {
	case "accept":
		s.vals["$accept."+pr.Name] = c.True()
		return []*pathState{s}, nil
	case "reject":
		s.vals["$reject."+pr.Name] = c.True()
		return []*pathState{s}, nil
	}
	if visits[stName] >= e.opts.LoopBound {
		return nil, nil // prune paths beyond the loop bound
	}
	visits[stName]++
	defer func() { visits[stName]-- }()

	st := pr.States[stName]
	for _, raw := range st.Stmts {
		if err := e.parserStmt(raw, s); err != nil {
			return nil, err
		}
	}
	tr := st.Trans
	if tr.Kind == p4.TransDirect {
		return e.runParserState(pr, tr.Target, s, visits, res)
	}
	scrut, err := e.expr(tr.Expr, s, nil, 0)
	if err != nil {
		return nil, err
	}
	var out []*pathState
	notPrev := c.True()
	sawDefault := false
	for _, cs := range tr.Cases {
		var match *smt.Term
		if cs.IsDefault {
			match = c.True()
			sawDefault = true
		} else if cs.HasMask {
			mask := c.BV(cs.Mask, scrut.Width)
			match = c.Eq(c.BVAnd(scrut, mask), c.BVAnd(c.BV(cs.Val, scrut.Width), mask))
		} else {
			match = c.Eq(scrut, c.BV(cs.Val, scrut.Width))
		}
		branchCond := c.And(notPrev, match)
		notPrev = c.And(notPrev, c.Not(match))
		ns, feasible, err := e.fork(s, branchCond, res)
		if err != nil {
			return nil, err
		}
		if !feasible {
			continue
		}
		sub, err := e.runParserState(pr, cs.Target, ns, visits, res)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
		if cs.IsDefault {
			break
		}
	}
	if !sawDefault {
		ns, feasible, err := e.fork(s, notPrev, res)
		if err != nil {
			return nil, err
		}
		if feasible {
			ns.vals["$reject."+pr.Name] = c.True()
			out = append(out, ns)
		}
	}
	return out, nil
}

func (e *Engine) parserStmt(raw p4.Stmt, s *pathState) error {
	c := e.ctx
	switch st := raw.(type) {
	case *p4.ExtractStmt:
		ht := e.prog.InstanceType(st.Header)
		for _, f := range ht.Fields {
			// Read through the path's packet image so a re-parse after the
			// inter-pipeline pass sees values written by earlier pipelines.
			s.vals[st.Header+"."+f.Name] = e.get(s, "pkt."+st.Header+"."+f.Name, f.Width)
		}
		if s.extIdx < len(e.headers) {
			slot := e.get(s, fmt.Sprintf("pkt.$order.%d", s.extIdx), 8)
			s.cond = c.And(s.cond, c.Eq(slot, c.BV(e.headerIDs[st.Header], 8)))
		} else {
			s.cond = c.False()
		}
		s.vals[st.Header+".$valid"] = c.True()
		s.extIdx++
	case *p4.AssignStmt:
		return e.assign(st, s, nil)
	case *p4.SetValidStmt:
		s.vals[st.Header+".$valid"] = c.Bool(st.Valid)
	default:
		return fmt.Errorf("symexec: unsupported parser statement %T", raw)
	}
	return nil
}

func (e *Engine) runStmts(ctl *p4.Control, stmts []p4.Stmt, s *pathState, params map[string]*smt.Term, res *Result) ([]*pathState, error) {
	paths := []*pathState{s}
	for _, raw := range stmts {
		var next []*pathState
		for _, p := range paths {
			out, err := e.ctlStmt(ctl, raw, p, params, res)
			if err != nil {
				return nil, err
			}
			next = append(next, out...)
		}
		paths = next
	}
	return paths, nil
}

func (e *Engine) ctlStmt(ctl *p4.Control, raw p4.Stmt, s *pathState, params map[string]*smt.Term, res *Result) ([]*pathState, error) {
	c := e.ctx
	switch st := raw.(type) {
	case *p4.ApplyStmt:
		return e.applyTable(ctl, ctl.Tables[st.Table], s, res)
	case *p4.IfApplyStmt:
		paths, err := e.applyTable(ctl, ctl.Tables[st.Table], s, res)
		if err != nil {
			return nil, err
		}
		var out []*pathState
		for _, p := range paths {
			hit := e.get(p, "$hit."+ctl.Name+"."+st.Table, 0)
			if h, feasible, err := e.fork(p, hit, res); err != nil {
				return nil, err
			} else if feasible {
				sub, err := e.runStmts(ctl, st.OnHit, h, params, res)
				if err != nil {
					return nil, err
				}
				out = append(out, sub...)
			}
			if m, feasible, err := e.fork(p, c.Not(hit), res); err != nil {
				return nil, err
			} else if feasible {
				sub, err := e.runStmts(ctl, st.OnMis, m, params, res)
				if err != nil {
					return nil, err
				}
				out = append(out, sub...)
			}
		}
		return out, nil
	case *p4.IfStmt:
		cond, err := e.expr(st.Cond, s, params, -1)
		if err != nil {
			return nil, err
		}
		if !cond.IsBool() {
			cond = c.Neq(cond, c.BV(0, cond.Width))
		}
		var out []*pathState
		if t, feasible, err := e.fork(s, cond, res); err != nil {
			return nil, err
		} else if feasible {
			sub, err := e.runStmts(ctl, st.Then, t, params, res)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		if f, feasible, err := e.fork(s, c.Not(cond), res); err != nil {
			return nil, err
		} else if feasible {
			sub, err := e.runStmts(ctl, st.Else, f, params, res)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	case *p4.CallActionStmt:
		act := ctl.Actions[st.Action]
		args := make([]*smt.Term, len(st.Args))
		for i, a := range st.Args {
			t, err := e.expr(a, s, params, act.Params[i].Width)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		return e.runAction(ctl, act, args, s, res)
	case *p4.AssignStmt:
		return []*pathState{s}, e.assign(st, s, params)
	case *p4.SetValidStmt:
		s.vals[st.Header+".$valid"] = c.Bool(st.Valid)
		return []*pathState{s}, nil
	case *p4.PrimitiveStmt:
		field := map[string]string{
			"drop": "drop", "to_cpu": "to_cpu", "recirculate": "recirc",
			"resubmit": "resubmit", "mirror": "mirror",
		}[st.Name]
		s.vals["std_meta."+field] = c.BV(1, 1)
		return []*pathState{s}, nil
	case *p4.RegReadStmt:
		reg := e.prog.Registers[st.Reg]
		return []*pathState{s}, e.assign(&p4.AssignStmt{LHS: st.Dst, RHS: &p4.ExternExpr{X: e.get(s, "reg."+st.Reg, reg.Width)}}, s, params)
	case *p4.RegWriteStmt:
		reg := e.prog.Registers[st.Reg]
		v, err := e.expr(st.Val, s, params, reg.Width)
		if err != nil {
			return nil, err
		}
		s.vals["reg."+st.Reg] = v
		return []*pathState{s}, nil
	case *p4.CountStmt:
		reg := e.prog.Registers[st.Counter]
		cur := e.get(s, "reg."+st.Counter, reg.Width)
		s.vals["reg."+st.Counter] = c.BVAdd(cur, c.BV(1, reg.Width))
		return []*pathState{s}, nil
	case *p4.ExecuteMeterStmt:
		e.fresh++
		w := 32
		if fr, ok := st.Dst.(*p4.FieldRef); ok {
			w = e.prog.InstanceType(fr.Instance).Field(fr.Field).Width
		}
		h := c.Var(fmt.Sprintf("$symhash.%d", e.fresh), w)
		return []*pathState{s}, e.assign(&p4.AssignStmt{LHS: st.Dst, RHS: &p4.ExternExpr{X: h}}, s, params)
	case *p4.HashStmt:
		e.fresh++
		w := 32
		if fr, ok := st.Dst.(*p4.FieldRef); ok {
			w = e.prog.InstanceType(fr.Instance).Field(fr.Field).Width
		}
		h := c.Var(fmt.Sprintf("$symhash.%d", e.fresh), w)
		return []*pathState{s}, e.assign(&p4.AssignStmt{LHS: st.Dst, RHS: &p4.ExternExpr{X: h}}, s, params)
	case *p4.SwitchApplyStmt:
		paths, err := e.applyTable(ctl, ctl.Tables[st.Table], s, res)
		if err != nil {
			return nil, err
		}
		tbl := ctl.Tables[st.Table]
		laidOf := func(a string) uint64 {
			for i, an := range tbl.Actions {
				if an == a {
					return uint64(i + 1)
				}
			}
			return 0
		}
		var out []*pathState
		for _, p := range paths {
			av := e.get(p, "$action."+ctl.Name+"."+st.Table, 16)
			covered := c.False()
			for _, cs := range st.Cases {
				cond := c.Eq(av, c.BV(laidOf(cs.Action), 16))
				if tbl.DefaultAction == cs.Action {
					cond = c.Or(cond, c.Eq(av, c.BV(0, 16)))
				}
				covered = c.Or(covered, cond)
				if b, feasible, err := e.fork(p, cond, res); err != nil {
					return nil, err
				} else if feasible {
					sub, err := e.runStmts(ctl, cs.Body, b, params, res)
					if err != nil {
						return nil, err
					}
					out = append(out, sub...)
				}
			}
			if d, feasible, err := e.fork(p, c.Not(covered), res); err != nil {
				return nil, err
			} else if feasible {
				sub, err := e.runStmts(ctl, st.Default, d, params, res)
				if err != nil {
					return nil, err
				}
				out = append(out, sub...)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("symexec: unsupported statement %T", raw)
}

func (e *Engine) runAction(ctl *p4.Control, act *p4.Action, args []*smt.Term, s *pathState, res *Result) ([]*pathState, error) {
	params := map[string]*smt.Term{}
	for i, pm := range act.Params {
		params[pm.Name] = args[i]
	}
	return e.runStmts(ctl, act.Body, s, params, res)
}

// applyTable forks one path per entry (plus the miss path) — Vera's
// per-rule exploration.
func (e *Engine) applyTable(ctl *p4.Control, tbl *p4.Table, s *pathState, res *Result) ([]*pathState, error) {
	c := e.ctx
	keys := make([]*smt.Term, len(tbl.Keys))
	for i, k := range tbl.Keys {
		t, err := e.expr(k.Expr, s, nil, 0)
		if err != nil {
			return nil, err
		}
		keys[i] = t
	}
	laidOf := func(a string) uint64 {
		for i, an := range tbl.Actions {
			if an == a {
				return uint64(i + 1)
			}
		}
		return 0
	}
	ents := e.entriesFor(ctl, tbl)
	var out []*pathState
	if ents == nil {
		// Unknown entries: one branch per installable action + miss.
		for _, an := range tbl.Actions {
			if tbl.DefaultOnly[an] || ctl.Actions[an] == nil {
				continue
			}
			act := ctl.Actions[an]
			ns, feasible, err := e.fork(s, c.True(), res)
			if err != nil {
				return nil, err
			}
			if !feasible {
				continue
			}
			ns.vals["$applied."+ctl.Name+"."+tbl.Name] = c.True()
			ns.vals["$hit."+ctl.Name+"."+tbl.Name] = c.True()
			ns.vals["$action."+ctl.Name+"."+tbl.Name] = c.BV(laidOf(an), 16)
			args := make([]*smt.Term, len(act.Params))
			for j, pm := range act.Params {
				e.fresh++
				args[j] = c.Var(fmt.Sprintf("$symarg.%d", e.fresh), pm.Width)
			}
			sub, err := e.runAction(ctl, act, args, ns, res)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		miss, feasible, err := e.fork(s, c.True(), res)
		if err != nil {
			return nil, err
		}
		if feasible {
			sub, err := e.runTableMiss(ctl, tbl, miss, res)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	}
	notPrev := c.True()
	for _, ent := range ents {
		match := e.matchTerm(keys, ent)
		branchCond := c.And(notPrev, match)
		notPrev = c.And(notPrev, c.Not(match))
		ns, feasible, err := e.fork(s, branchCond, res)
		if err != nil {
			return nil, err
		}
		if !feasible {
			continue
		}
		ns.vals["$applied."+ctl.Name+"."+tbl.Name] = c.True()
		ns.vals["$hit."+ctl.Name+"."+tbl.Name] = c.True()
		ns.vals["$action."+ctl.Name+"."+tbl.Name] = c.BV(laidOf(ent.Action), 16)
		act := ctl.Actions[ent.Action]
		if act != nil {
			args := make([]*smt.Term, len(act.Params))
			for j, pm := range act.Params {
				var v uint64
				if j < len(ent.Args) {
					v = ent.Args[j]
				}
				args[j] = c.BV(v, pm.Width)
			}
			sub, err := e.runAction(ctl, act, args, ns, res)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		} else {
			out = append(out, ns)
		}
	}
	miss, feasible, err := e.fork(s, notPrev, res)
	if err != nil {
		return nil, err
	}
	if feasible {
		sub, err := e.runTableMiss(ctl, tbl, miss, res)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

func (e *Engine) runTableMiss(ctl *p4.Control, tbl *p4.Table, s *pathState, res *Result) ([]*pathState, error) {
	c := e.ctx
	s.vals["$applied."+ctl.Name+"."+tbl.Name] = c.True()
	s.vals["$hit."+ctl.Name+"."+tbl.Name] = c.False()
	s.vals["$action."+ctl.Name+"."+tbl.Name] = c.BV(0, 16)
	act := ctl.Actions[tbl.DefaultAction]
	if act == nil {
		return []*pathState{s}, nil
	}
	args := make([]*smt.Term, len(act.Params))
	for j, pm := range act.Params {
		var v uint64
		if j < len(tbl.DefaultArgs) {
			if lit, ok := tbl.DefaultArgs[j].(*p4.IntLit); ok {
				v = lit.Val
			}
		}
		args[j] = c.BV(v, pm.Width)
	}
	return e.runAction(ctl, act, args, s, res)
}

func (e *Engine) entriesFor(ctl *p4.Control, tbl *p4.Table) []*tables.Entry {
	fq := ctl.Name + "." + tbl.Name
	if e.snap != nil && e.snap.Has(fq) {
		return e.snap.Entries(fq)
	}
	if len(tbl.ConstEntries) > 0 {
		var out []*tables.Entry
		for _, ce := range tbl.ConstEntries {
			ent := &tables.Entry{Action: ce.Action, Args: append([]uint64(nil), ce.Args...)}
			for i := range ce.KeyVals {
				if ce.KeyMasks[i] == 0 {
					ent.Keys = append(ent.Keys, tables.Wildcard())
				} else {
					ent.Keys = append(ent.Keys, tables.Exact(ce.KeyVals[i]))
				}
			}
			out = append(out, ent)
		}
		return out
	}
	return nil
}

func (e *Engine) matchTerm(keys []*smt.Term, ent *tables.Entry) *smt.Term {
	c := e.ctx
	cond := c.True()
	for i, km := range ent.Keys {
		if i >= len(keys) {
			break
		}
		k := keys[i]
		switch {
		case km.IsRange:
			cond = c.And(cond, c.Ule(c.BV(km.Value, k.Width), k), c.Ule(k, c.BV(km.High, k.Width)))
		case km.PrefixLen >= 0:
			var mask uint64
			for b := 0; b < km.PrefixLen && b < k.Width; b++ {
				mask |= 1 << uint(k.Width-1-b)
			}
			mv := c.BV(mask, k.Width)
			cond = c.And(cond, c.Eq(c.BVAnd(k, mv), c.BVAnd(c.BV(km.Value, k.Width), mv)))
		case km.Mask == ^uint64(0):
			cond = c.And(cond, c.Eq(k, c.BV(km.Value, k.Width)))
		case km.Mask == 0:
		default:
			mv := c.BV(km.Mask, k.Width)
			cond = c.And(cond, c.Eq(c.BVAnd(k, mv), c.BVAnd(c.BV(km.Value, k.Width), mv)))
		}
	}
	return cond
}

func (e *Engine) assign(st *p4.AssignStmt, s *pathState, params map[string]*smt.Term) error {
	c := e.ctx
	switch lhs := st.LHS.(type) {
	case *p4.FieldRef:
		w := e.prog.InstanceType(lhs.Instance).Field(lhs.Field).Width
		rhs, err := e.expr(st.RHS, s, params, w)
		if err != nil {
			return err
		}
		s.vals[lhs.Instance+"."+lhs.Field] = c.Resize(rhs, w)
		return nil
	case *p4.SliceExpr:
		fr, ok := lhs.X.(*p4.FieldRef)
		if !ok {
			return fmt.Errorf("symexec: slice base must be a field")
		}
		w := e.prog.InstanceType(fr.Instance).Field(fr.Field).Width
		cur := e.get(s, fr.Instance+"."+fr.Field, w)
		rhs, err := e.expr(st.RHS, s, params, lhs.Hi-lhs.Lo+1)
		if err != nil {
			return err
		}
		nv := c.Resize(rhs, lhs.Hi-lhs.Lo+1)
		var parts *smt.Term
		if lhs.Hi < w-1 {
			parts = c.Extract(cur, w-1, lhs.Hi+1)
		}
		if parts == nil {
			parts = nv
		} else {
			parts = c.Concat(parts, nv)
		}
		if lhs.Lo > 0 {
			parts = c.Concat(parts, c.Extract(cur, lhs.Lo-1, 0))
		}
		s.vals[fr.Instance+"."+fr.Field] = parts
		return nil
	}
	return fmt.Errorf("symexec: unsupported lvalue %T", st.LHS)
}

func (e *Engine) expr(x p4.Expr, s *pathState, params map[string]*smt.Term, want int) (*smt.Term, error) {
	c := e.ctx
	switch v := x.(type) {
	case *p4.ExternExpr:
		return v.X.(*smt.Term), nil
	case *p4.IntLit:
		w := v.Width
		if w == 0 {
			w = want
		}
		if w <= 0 {
			w = 32
		}
		return c.BV(v.Val, w), nil
	case *p4.FieldRef:
		return e.get(s, v.Instance+"."+v.Field, e.prog.InstanceType(v.Instance).Field(v.Field).Width), nil
	case *p4.VarRef:
		if t, ok := params[v.Name]; ok {
			return t, nil
		}
		if cv, ok := e.prog.Consts[v.Name]; ok {
			w := want
			if w <= 0 {
				w = 32
			}
			return c.BV(cv, w), nil
		}
		return nil, fmt.Errorf("symexec: unbound identifier %q", v.Name)
	case *p4.IsValidExpr:
		return e.get(s, v.Instance+".$valid", 0), nil
	case *p4.LookaheadExpr:
		if s.extIdx >= len(e.headers) {
			return c.BV(0, v.Width), nil
		}
		slot := e.get(s, fmt.Sprintf("pkt.$order.%d", s.extIdx), 8)
		out := c.BV(0, v.Width)
		for _, h := range e.headers {
			ht := e.prog.InstanceType(h)
			if ht.Width() < v.Width {
				continue
			}
			var acc *smt.Term
			for _, f := range ht.Fields {
				fv := e.get(s, "pkt."+h+"."+f.Name, f.Width)
				if acc == nil {
					acc = fv
				} else {
					acc = c.Concat(acc, fv)
				}
				if acc.Width >= v.Width {
					break
				}
			}
			lead := c.Extract(acc, acc.Width-1, acc.Width-v.Width)
			out = c.Ite(c.Eq(slot, c.BV(e.headerIDs[h], 8)), lead, out)
		}
		return out, nil
	case *p4.CastExpr:
		t, err := e.expr(v.X, s, params, v.Width)
		if err != nil {
			return nil, err
		}
		return c.Resize(t, v.Width), nil
	case *p4.SliceExpr:
		t, err := e.expr(v.X, s, params, 0)
		if err != nil {
			return nil, err
		}
		return c.Extract(t, v.Hi, v.Lo), nil
	case *p4.UnaryExpr:
		t, err := e.expr(v.X, s, params, pick(v.Op == "!", -1, want))
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "!":
			if !t.IsBool() {
				t = c.Neq(t, c.BV(0, t.Width))
			}
			return c.Not(t), nil
		case "~":
			return c.BVNot(t), nil
		default:
			return c.BVNeg(t), nil
		}
	case *p4.BinaryExpr:
		if v.Op == "&&" || v.Op == "||" {
			a, err := e.expr(v.X, s, params, -1)
			if err != nil {
				return nil, err
			}
			b, err := e.expr(v.Y, s, params, -1)
			if err != nil {
				return nil, err
			}
			if !a.IsBool() {
				a = c.Neq(a, c.BV(0, a.Width))
			}
			if !b.IsBool() {
				b = c.Neq(b, c.BV(0, b.Width))
			}
			if v.Op == "&&" {
				return c.And(a, b), nil
			}
			return c.Or(a, b), nil
		}
		var a, b *smt.Term
		var err error
		if _, lit := v.X.(*p4.IntLit); lit {
			b, err = e.expr(v.Y, s, params, 0)
			if err != nil {
				return nil, err
			}
			a, err = e.expr(v.X, s, params, b.Width)
		} else {
			a, err = e.expr(v.X, s, params, want)
			if err != nil {
				return nil, err
			}
			b, err = e.expr(v.Y, s, params, a.Width)
		}
		if err != nil {
			return nil, err
		}
		if v.Op == "<<" || v.Op == ">>" {
			b = c.Resize(b, a.Width)
		}
		switch v.Op {
		case "+":
			return c.BVAdd(a, b), nil
		case "-":
			return c.BVSub(a, b), nil
		case "&":
			return c.BVAnd(a, b), nil
		case "|":
			return c.BVOr(a, b), nil
		case "^":
			return c.BVXor(a, b), nil
		case "<<":
			return c.BVShl(a, b), nil
		case ">>":
			return c.BVLshr(a, b), nil
		case "==":
			return c.Eq(a, b), nil
		case "!=":
			return c.Neq(a, b), nil
		case "<":
			return c.Ult(a, b), nil
		case ">":
			return c.Ugt(a, b), nil
		case "<=":
			return c.Ule(a, b), nil
		case ">=":
			return c.Uge(a, b), nil
		}
	}
	return nil, fmt.Errorf("symexec: unsupported expression %T", x)
}

func pick(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}

// OrderAssume builds the standard input-order assumption over the
// engine's context.
func (e *Engine) OrderAssume(headers ...string) *smt.Term {
	c := e.ctx
	cond := c.True()
	for i := 0; i < len(e.headers); i++ {
		var id uint64
		if i < len(headers) {
			id = e.headerIDs[headers[i]]
		}
		cond = c.And(cond, c.Eq(c.Var(fmt.Sprintf("pkt.$order.%d", i), 8), c.BV(id, 8)))
	}
	return cond
}
