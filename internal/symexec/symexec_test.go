package symexec

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

const prog1 = `
header ethernet_t { bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> dst_ip; }
ethernet_t eth;
ipv4_t ipv4;
parser P {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 { extract(ipv4); transition accept; }
}
control Ing {
	action send(bit<9> port) { std_meta.egress_spec = port; }
	action a_drop() { drop(); }
	table fwd {
		key = { ipv4.dst_ip : exact; }
		actions = { send; a_drop; }
		default_action = a_drop;
	}
	apply { if (ipv4.isValid()) { fwd.apply(); } }
}
pipeline pl { parser = P; control = Ing; }
`

func mk(t *testing.T, snap *tables.Snapshot, opts Options) (*Engine, *p4.Program) {
	t.Helper()
	prog, err := p4.ParseAndCheck("s", prog1)
	if err != nil {
		t.Fatal(err)
	}
	return New(prog, snap, opts), prog
}

func TestPropertyHolds(t *testing.T) {
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(7)}, Action: "send", Args: []uint64{3}, Priority: -1})
	e, _ := mk(t, snap, Options{})
	c := e.Ctx()
	assume := c.And(
		e.OrderAssume("eth", "ipv4"),
		c.Eq(c.Var("pkt.eth.etherType", 16), c.BV(0x0800, 16)),
		c.Eq(c.Var("pkt.ipv4.dst_ip", 32), c.BV(7, 32)),
	)
	res, err := e.Run([]string{"pl"}, assume, func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		return ctx.Eq(get("std_meta.egress_spec", 9), ctx.BV(3, 9))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("expected no violations, got %d over %d paths", len(res.Violations), res.Paths)
	}
	if res.Paths == 0 {
		t.Fatal("no paths explored")
	}
}

func TestPropertyViolated(t *testing.T) {
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(7)}, Action: "send", Args: []uint64{3}, Priority: -1})
	e, _ := mk(t, snap, Options{})
	c := e.Ctx()
	assume := c.And(
		e.OrderAssume("eth", "ipv4"),
		c.Eq(c.Var("pkt.eth.etherType", 16), c.BV(0x0800, 16)),
	)
	res, err := e.Run([]string{"pl"}, assume, func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		return ctx.Eq(get("std_meta.egress_spec", 9), ctx.BV(3, 9))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("expected a violation for non-matching destinations")
	}
	m := res.Violations[0].Model
	if m.Uint64(c.Var("pkt.ipv4.dst_ip", 32)) == 7 {
		t.Fatal("counterexample should use a different destination")
	}
}

func TestAgreesWithVerifierOnDropProperty(t *testing.T) {
	e, _ := mk(t, tables.NewSnapshot(), Options{SolveEveryFork: true})
	c := e.Ctx()
	// Empty snapshot (nil entries => wildcard)... using an explicit empty
	// snapshot still routes to wildcard since Has() is false; the default
	// action drops, so "dropped or hit" holds.
	assume := c.And(
		e.OrderAssume("eth", "ipv4"),
		c.Eq(c.Var("pkt.eth.etherType", 16), c.BV(0x0800, 16)),
	)
	res, err := e.Run([]string{"pl"}, assume, func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		return ctx.Or(
			ctx.Eq(get("std_meta.drop", 1), ctx.BV(1, 1)),
			get("$hit.Ing.fwd", 0),
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatal("miss implies drop; property must hold")
	}
}

// TestPathExplosion shows the baseline behaviour the paper reports: path
// counts grow with entries and branching until the budget trips.
func TestPathExplosion(t *testing.T) {
	var b strings.Builder
	b.WriteString("header h_t { bit<16> v; bit<16> w; } h_t h;\n")
	b.WriteString("parser P { state start { extract(h); transition accept; } }\n")
	b.WriteString("control C {\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "action a%d() { h.w = %d; }\n", i, i)
		fmt.Fprintf(&b, "table t%d { key = { h.v : ternary; } actions = { a%d; } }\n", i, i)
	}
	b.WriteString("apply {\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "t%d.apply();\n", i)
	}
	b.WriteString("} }\n")
	prog, err := p4.ParseAndCheck("x", b.String())
	if err != nil {
		t.Fatal(err)
	}
	snap := tables.NewSnapshot()
	for i := 0; i < 12; i++ {
		for j := 0; j < 3; j++ {
			snap.Add(fmt.Sprintf("C.t%d", i), &tables.Entry{
				Keys: []tables.KeyMatch{tables.Ternary(uint64(j)<<uint(i), 3<<uint(i))}, Action: fmt.Sprintf("a%d", i), Priority: -1})
		}
	}
	e := New(prog, snap, Options{MaxPaths: 5000})
	_, err = e.Run([]string{"P", "C"}, nil, func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		return ctx.True()
	})
	var ex *ErrPathExplosion
	if !errors.As(err, &ex) {
		t.Fatalf("expected path explosion, got %v", err)
	}
}

func TestPathCountsGrowExponentially(t *testing.T) {
	countPaths := func(n int) int {
		var b strings.Builder
		b.WriteString("header h_t { bit<16> v; bit<16> w; } h_t h;\n")
		b.WriteString("parser P { state start { extract(h); transition accept; } }\n")
		b.WriteString("control C {\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "action a%d() { h.w = %d; }\n", i, i)
			fmt.Fprintf(&b, "table t%d { key = { h.v : ternary; } actions = { a%d; } }\n", i, i)
		}
		b.WriteString("apply {\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "t%d.apply();\n", i)
		}
		b.WriteString("} }\n")
		prog, err := p4.ParseAndCheck("x", b.String())
		if err != nil {
			t.Fatal(err)
		}
		snap := tables.NewSnapshot()
		for i := 0; i < n; i++ {
			snap.Add(fmt.Sprintf("C.t%d", i), &tables.Entry{
				Keys: []tables.KeyMatch{tables.Ternary(0, 1<<uint(i))}, Action: fmt.Sprintf("a%d", i), Priority: -1})
		}
		e := New(prog, snap, Options{MaxPaths: 1 << 20})
		res, err := e.Run([]string{"P", "C"}, nil, func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
			return ctx.True()
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Paths
	}
	p4c, p8 := countPaths(4), countPaths(8)
	if p8 < 8*p4c {
		t.Fatalf("path growth not exponential: n=4 -> %d, n=8 -> %d", p4c, p8)
	}
}

func TestLoopBoundedExploration(t *testing.T) {
	// A self-looping parser state must terminate under the loop bound.
	src := `
header m_t { bit<8> bos; } m_t m;
header ip_t { bit<8> x; } ip_t ip;
parser P {
	state start {
		extract(m);
		transition select(m.bos) { 0: start; default: parse_ip; }
	}
	state parse_ip { extract(ip); transition accept; }
}
control C { apply { } }
pipeline pl { parser = P; control = C; }
`
	prog, err := p4.ParseAndCheck("loop", src)
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, nil, Options{LoopBound: 3, MaxPaths: 1000})
	res, err := e.Run([]string{"pl"}, nil, func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		return ctx.True()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths == 0 {
		t.Fatal("no paths explored")
	}
}

func TestIfApplyAndSwitchPaths(t *testing.T) {
	src := `
header h_t { bit<8> k; bit<8> v; } h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	action x() { h.v = 1; }
	action y() { h.v = 2; }
	table t {
		key = { h.k : exact; }
		actions = { x; y; }
		default_action = y;
	}
	apply {
		if (t.apply().hit) { h.v = h.v + 10; } else { h.v = 99; }
		switch (t.apply().action_run) {
			x: { h.v = h.v + 100; }
			default: { }
		}
	}
}
pipeline pl { parser = P; control = C; }
`
	prog, err := p4.ParseAndCheck("sw", src)
	if err != nil {
		t.Fatal(err)
	}
	snap := tables.NewSnapshot()
	snap.Add("C.t", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(5)}, Action: "x", Priority: -1})
	e := New(prog, snap, Options{})
	c := e.Ctx()
	assume := c.And(
		e.OrderAssume("h"),
		c.Eq(c.Var("pkt.h.k", 8), c.BV(5, 8)),
	)
	// k=5: hit -> x (v=1), +10 => 11; second apply hits x again (v=1),
	// switch takes x arm => 101... the table re-applies and reruns x, so
	// v=1 before the arm. Final v = 1 + 100 = 101.
	res, err := e.Run([]string{"pl"}, assume, func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		return ctx.Eq(get("h.v", 8), ctx.BV(101, 8))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("hit path must end with v=101 (paths=%d, violations=%d)", res.Paths, len(res.Violations))
	}
	// Miss path: k != 5 -> else arm 99, then default y (v=2), default arm.
	assume2 := c.And(
		e.OrderAssume("h"),
		c.Eq(c.Var("pkt.h.k", 8), c.BV(6, 8)),
	)
	res2, err := e.Run([]string{"pl"}, assume2, func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		return ctx.Eq(get("h.v", 8), ctx.BV(2, 8))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Violations) != 0 {
		t.Fatal("miss path must end with v=2")
	}
}
