package symexec

import (
	"testing"

	"aquila/internal/p4"
	"aquila/internal/smt"
)

// passProg is a two-pipeline program: pipe0 parses header a, rewrites a.x,
// and re-emits it; pipe1 re-parses the deparsed packet.
const passProg = `
header a_t { bit<8> x; }
header b_t { bit<8> y; }
a_t a;
b_t b;
parser P0 { state start { extract(a); transition accept; } }
parser P1 { state start { extract(a); transition accept; } }
control C0 { apply { a.x = 5; } }
control C1 { apply { } }
deparser D0 { emit(a); }
deparser D1 { emit(a); }
pipeline pipe0 { parser = P0; control = C0; deparser = D0; }
pipeline pipe1 { parser = P1; control = C1; deparser = D1; }
`

// TestInterPipelinePacketPass pins a bug the differential fuzzer found
// (model-soundness oracle): the path executor did not model the §4.3
// inter-pipeline packet pass the verifier's encoding performs between
// pipeline calls, so its extraction index ran off the original wire and
// every two-pipeline path became infeasible — verifier counterexamples
// were then unreproducible. The second pipeline must re-parse the
// deparsed packet, including field values the first pipeline wrote.
func TestInterPipelinePacketPass(t *testing.T) {
	prog, err := p4.ParseAndCheck("pass", passProg)
	if err != nil {
		t.Fatal(err)
	}
	e := New(prog, nil, Options{})
	c := e.Ctx()
	// The wire is exactly [a]: slot 0 holds a's id, slot 1 is empty.
	assume := c.And(
		c.Eq(c.Var("pkt.$order.0", 8), c.BV(1, 8)),
		c.Eq(c.Var("pkt.$order.1", 8), c.BV(0, 8)),
	)

	// A property violated on every complete path: with the packet pass
	// modeled there must be a feasible path through both pipelines.
	falseProp := func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		return ctx.Bool(false)
	}
	res, err := e.Run([]string{"pipe0", "pipe1"}, assume, falseProp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("no feasible path through two pipelines: packet pass not modeled")
	}

	// The re-parsed header must carry the value pipe0 wrote: a.x == 5 on
	// every complete path, so asserting it yields no violation.
	e2 := New(prog, nil, Options{})
	c2 := e2.Ctx()
	assume2 := c2.And(
		c2.Eq(c2.Var("pkt.$order.0", 8), c2.BV(1, 8)),
		c2.Eq(c2.Var("pkt.$order.1", 8), c2.BV(0, 8)),
	)
	wroteProp := func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		return ctx.Eq(get("a.x", 8), ctx.BV(5, 8))
	}
	res2, err := e2.Run([]string{"pipe0", "pipe1"}, assume2, wroteProp)
	if err != nil {
		t.Fatal(err)
	}
	for range res2.Violations {
		t.Fatal("re-parse after the packet pass lost the value pipe0 wrote to a.x")
	}
}
