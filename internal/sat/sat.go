// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat lineage: two-watched-literal propagation, VSIDS
// branching with phase saving, first-UIP clause learning with
// recursive-minimization, Luby restarts, LBD-based learnt-clause database
// reduction, and solving under assumptions with final-conflict (unsat core)
// extraction.
//
// Clauses live in a flat arena (alloc.go) addressed by 32-bit crefs rather
// than as individually heap-allocated objects; a compacting garbage
// collection pass reclaims deleted-clause space after database reduction
// and preprocessing. Hot-path scratch buffers (clause dedup, conflict
// analysis, LBD stamps, activity medians, watcher slabs) persist on the
// Solver so steady-state solving allocates almost nothing.
//
// It is the bottom layer of Aquila's verification stack; the bit-vector
// theory in package smt lowers verification conditions to CNF and solves
// them here.
package sat

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Lit is a literal: variable v has positive literal 2v and negative 2v+1.
// Variables are numbered from 0.
type Lit int32

// MkLit builds a literal from a variable index and sign (true = negated).
func MkLit(v int, neg bool) Lit {
	if neg {
		return Lit(2*v + 1)
	}
	return Lit(2 * v)
}

// Var returns the variable index of the literal.
func (l Lit) Var() int { return int(l) >> 1 }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// lbool is a lifted boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// Status is a solver verdict.
type Status int

const (
	// Unknown means the solve was aborted (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrBudget is returned by Solve when the conflict budget is exhausted.
var ErrBudget = errors.New("sat: conflict budget exhausted")

type watcher struct {
	ref     cref
	blocker Lit
}

type varData struct {
	reason cref // antecedent clause, crefUndef for decisions/assumptions
	level  int32
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct with
// New.
type Solver struct {
	ca      clauseAlloc
	clauses []cref // problem clauses
	learnts []cref

	watches [][]watcher // indexed by literal
	wslab   []watcher   // shared backing slab for small watch lists

	assigns  []lbool // indexed by var
	vardata  []varData
	polarity []bool // saved phase, indexed by var
	activity []float64
	varInc   float64

	order heap // VSIDS order

	trail    []Lit
	trailLim []int // decision-level boundaries
	qhead    int

	seen      []byte
	analyzeTo []Lit
	minStack  []Lit

	// Reused hot-path scratch: clause dedup in AddClause, the learnt
	// clause under construction in analyze, level stamps for LBD, and the
	// activity array reduceDB medians over.
	addBuf    []Lit
	learntBuf []Lit
	lbdSeen   []int64
	lbdTick   int64
	actBuf    []float64

	clauseInc float64

	ok bool // false once UNSAT at level 0

	assumptions []Lit
	conflictSet []Lit   // final conflict (subset of negated assumptions)
	model       []lbool // snapshot of the last satisfying assignment

	// Stats. Plain fields, not atomics: a solver instance is
	// single-goroutine; parallel verification gives every check a fresh
	// solver and folds these into the observability registry afterwards.
	Conflicts           int64
	Decisions           int64
	Propagations        int64
	Learnt              int64 // learnt clauses retained in the database
	LearntLits          int64 // total literals across learnt clauses (incl. units)
	Restarts            int64 // Luby restarts taken (completed search() rounds)
	Deleted             int64 // learnt clauses evicted by database reduction
	ElimVars            int64 // variables removed by bounded variable elimination
	SubsumedClauses     int64 // clauses deleted by subsumption
	StrengthenedClauses int64 // clauses shrunk by self-subsuming resolution
	// LearntSizes is the learnt-clause length distribution in log2
	// buckets (bucket i covers lengths [2^(i-1), 2^i), clamped at the
	// last bucket). Plain counters like the rest: the driver folds them
	// into the observability histogram at check granularity.
	LearntSizes [NumLearntSizeBuckets]int64

	maxLearnts  float64
	learntCap   float64 // hard ceiling on maxLearnts growth, <=0 unlimited
	lubyIdx     int
	budget      int64 // conflicts allowed per Solve call, <0 means unlimited
	budgetLim   int64 // absolute Conflicts ceiling for the current Solve, <0 unlimited
	numVarsFree int

	// Heartbeat hook (progress.go): progressFn fires every
	// progressEvery conflicts with a Progress sample. Checked with one
	// compare per conflict; nil when no flight recorder is attached.
	progressFn    func(Progress)
	progressEvery int64
	progressNext  int64

	// Personality knobs (personality.go): search-heuristic variations a
	// portfolio racer configures per instance. The zero values reproduce
	// the baseline solver exactly; New sets the nonzero defaults.
	randState   uint64  // xorshift64 state for random decisions, 0 disables
	randFreq    uint32  // random-decision probability in 2^-32 units
	phaseTrue   bool    // fresh variables default to phase true
	varDecayInv float64 // VSIDS activity decay factor (default 0.95)
	geomRestart bool    // geometric restart schedule instead of Luby
	restartBase int     // first restart interval in conflicts (default 100)
	restartGrow float64 // geometric interval growth factor (default 1.5)

	// Cooperative cancellation (personality.go): cancel is a token shared
	// by the members of a portfolio race; search polls it once per loop
	// iteration, alongside the conflict-budget check. canceled records
	// whether the last Solve's Unknown came from the token rather than the
	// budget.
	cancel   *atomic.Bool
	canceled bool

	// Preprocessing state (preprocess.go). frozen vars are exempt from
	// elimination; elimed vars are currently substituted away and carry an
	// elimStack record for model reconstruction and on-demand restore.
	prep      bool
	dirty     int    // clauses added since the last Preprocess round
	frozen    []bool // indexed by var
	elimed    []bool // indexed by var
	elimStack []elimRecord
	elimIndex map[int]int   // var -> elimStack index while eliminated
	prepState *preprocessor // pooled across Preprocess rounds
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		varInc:      1.0,
		clauseInc:   1.0,
		ok:          true,
		budget:      -1,
		budgetLim:   -1,
		maxLearnts:  4000,
		learntCap:   defaultLearntCap,
		varDecayInv: 0.95,
		restartBase: 100,
		restartGrow: 1.5,
	}
}

// defaultLearntCap bounds the learnt-clause database. Without it the
// reduction threshold grows 5% per restart forever, which is harmless for
// one-shot solving but lets a long-lived incremental solver answering
// hundreds of queries accumulate an arbitrarily large database.
const defaultLearntCap = 50_000

// SetLearntCap sets a hard ceiling on the learnt-clause database size
// (clauses retained before reduceDB triggers). Values <= 0 remove the
// ceiling, restoring unbounded 5%-per-restart growth.
func (s *Solver) SetLearntCap(n int) {
	s.learntCap = float64(n)
	if s.learntCap > 0 && s.maxLearnts > s.learntCap {
		s.maxLearnts = s.learntCap
	}
}

// NumVars returns the number of variables allocated so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses retained.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.vardata = append(s.vardata, varData{reason: crefUndef})
	s.polarity = append(s.polarity, !s.phaseTrue) // default phase false (polarity=negated) unless the personality flips it
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	s.seen = append(s.seen, 0)
	s.frozen = append(s.frozen, false)
	s.elimed = append(s.elimed, false)
	s.order.push(s, v)
	s.numVarsFree++
	return v
}

// SetBudget limits the number of conflicts spent by each subsequent Solve
// call. The bound is per call — an incremental solver answering many
// queries grants each one a fresh allowance — so budget semantics are
// identical whether checks share one solver or run on separate instances.
// A negative value removes the limit.
func (s *Solver) SetBudget(conflicts int64) { s.budget = conflicts }

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) level(v int) int { return int(s.vardata[v].level) }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a problem clause. It returns false if the solver is already
// in an unsatisfiable state at level 0. The literal slice is never retained:
// clause bodies are copied into the arena, so callers may pass stack
// buffers (or variadic literals, which then stay off the heap).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// A clause mentioning an eliminated variable forces its restoration:
	// the stored original clauses come back so the variable's semantics
	// are intact before the new constraint lands.
	if len(s.elimStack) > 0 {
		for _, l := range lits {
			if v := l.Var(); v < len(s.elimed) && s.elimed[v] {
				s.restoreVar(v)
				if !s.ok {
					return false
				}
			}
		}
	}
	s.dirty++
	// Sort & dedupe; detect tautologies and satisfied/false literals.
	// restoreVar above never re-enters past this point, so one scratch
	// buffer per solver suffices.
	out := s.addBuf[:0]
	for _, l := range lits {
		if int(l.Var()) >= s.NumVars() {
			panic(fmt.Sprintf("sat: literal %v references unallocated variable", l))
		}
		switch s.value(l) {
		case lTrue:
			return true // clause already satisfied
		case lFalse:
			continue // drop false literal
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	s.addBuf = out
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], crefUndef)
		s.ok = s.propagate() == crefUndef
		return s.ok
	}
	r := s.ca.alloc(out, false)
	s.clauses = append(s.clauses, r)
	s.attach(r)
	return true
}

func (s *Solver) attach(r cref) {
	lits := s.ca.lits(r)
	l0, l1 := lits[0], lits[1]
	s.wappend(l0.Not(), watcher{r, l1})
	s.wappend(l1.Not(), watcher{r, l0})
}

// wslabChunk is the watcher slab size; lists growing past a quarter of it
// graduate to their own allocation.
const wslabChunk = 8192

// wappend appends w to the watch list of p, carving small list backings out
// of a shared slab so the millions of short watch lists a blast produces
// don't each cost a heap allocation.
func (s *Solver) wappend(p Lit, w watcher) {
	ws := s.watches[p]
	if len(ws) == cap(ws) {
		ws = s.growWatch(ws)
	}
	s.watches[p] = append(ws, w)
}

func (s *Solver) growWatch(ws []watcher) []watcher {
	ncap := 2 * cap(ws)
	if ncap < 4 {
		ncap = 4
	}
	if ncap > wslabChunk/4 {
		nw := make([]watcher, len(ws), ncap)
		copy(nw, ws)
		return nw
	}
	if cap(s.wslab)-len(s.wslab) < ncap {
		s.wslab = make([]watcher, 0, wslabChunk)
	}
	n := len(s.wslab)
	s.wslab = s.wslab[:n+ncap]
	nw := s.wslab[n : n : n+ncap]
	return append(nw, ws...)
}

func (s *Solver) uncheckedEnqueue(l Lit, reason cref) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.vardata[v] = varData{reason: reason, level: int32(s.decisionLevel())}
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause or
// crefUndef.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			r := w.ref
			if s.ca.deleted(r) {
				continue
			}
			lits := s.ca.lits(r)
			// Make sure the false literal is lits[1].
			notP := p.Not()
			if lits[0] == notP {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[n] = watcher{r, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.wappend(lits[1].Not(), watcher{r, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{r, first}
			n++
			if s.value(first) == lFalse {
				// Conflict: copy remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return r
			}
			s.uncheckedEnqueue(first, r)
		}
		s.watches[p] = ws[:n]
	}
	return crefUndef
}

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.trail[i].Neg()
		s.assigns[v] = lUndef
		s.order.pushIfAbsent(s, v)
	}
	s.qhead = s.trailLim[level]
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
}

func (s *Solver) varBump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.decrease(s, v)
}

func (s *Solver) varDecay() { s.varInc /= s.varDecayInv }

func (s *Solver) clauseBump(r cref) {
	a := s.ca.act(r) + s.clauseInc
	s.ca.setAct(r, a)
	if a > 1e20 {
		for _, lr := range s.learnts {
			s.ca.setAct(lr, s.ca.act(lr)*1e-20)
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) clauseDecay() { s.clauseInc /= 0.999 }

// analyze computes a first-UIP learnt clause from the conflict and returns
// it together with the backtrack level. The returned slice is solver-owned
// scratch, valid until the next analyze call.
func (s *Solver) analyze(confl cref) ([]Lit, int) {
	learnt := append(s.learntBuf[:0], 0) // reserve slot for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		clits := s.ca.lits(confl)
		for i := 0; i < len(clits); i++ {
			q := clits[i]
			if q == p { // reason clauses carry the asserting literal; skip it
				continue
			}
			v := q.Var()
			if s.seen[v] == 0 && s.level(v) > 0 {
				s.varBump(v)
				s.seen[v] = 1
				if s.level(v) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		if s.ca.learnt(confl) {
			s.clauseBump(confl)
		}
		// Select next literal to look at.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.vardata[p.Var()].reason
		s.seen[p.Var()] = 0
		pathC--
		if pathC <= 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Clause minimization: remove literals implied by the rest.
	s.analyzeTo = s.analyzeTo[:0]
	for _, l := range learnt {
		s.analyzeTo = append(s.analyzeTo, l)
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		if s.vardata[v].reason == crefUndef || !s.litRedundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	// Find backtrack level.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level(learnt[i].Var()) > s.level(learnt[maxI].Var()) {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level(learnt[1].Var())
	}
	for _, l := range s.analyzeTo {
		s.seen[l.Var()] = 0
	}
	s.learntBuf = learnt
	return learnt, btLevel
}

// litRedundant reports whether l is implied by the other literals of the
// learnt clause (local minimization, non-recursive).
func (s *Solver) litRedundant(l Lit) bool {
	r := s.vardata[l.Var()].reason
	if r == crefUndef {
		return false
	}
	for _, q := range s.ca.lits(r) {
		if q == l.Not() || q == l {
			continue
		}
		v := q.Var()
		if s.level(v) == 0 {
			continue
		}
		if s.seen[v] == 0 {
			return false
		}
	}
	return true
}

// computeLBD counts distinct decision levels via a stamp array instead of
// a per-call map.
func (s *Solver) computeLBD(lits []Lit) int {
	s.lbdTick++
	n := 0
	for _, l := range lits {
		lv := s.level(l.Var())
		for lv >= len(s.lbdSeen) {
			s.lbdSeen = append(s.lbdSeen, 0)
		}
		if s.lbdSeen[lv] != s.lbdTick {
			s.lbdSeen[lv] = s.lbdTick
			n++
		}
	}
	return n
}

// analyzeFinal computes the subset of assumptions responsible for a conflict
// on assumption literal p; the result (negated assumptions) lands in
// s.conflictSet.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflictSet = s.conflictSet[:0]
	s.conflictSet = append(s.conflictSet, p.Not())
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if r := s.vardata[v].reason; r == crefUndef {
			if s.level(v) > 0 {
				s.conflictSet = append(s.conflictSet, s.trail[i].Not())
			}
		} else {
			for _, q := range s.ca.lits(r) {
				if s.level(q.Var()) > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

func (s *Solver) reduceDB() {
	// Sort learnts by (lbd asc, activity desc) — cheap partial policy:
	// remove the worse half, keeping binary and low-LBD clauses.
	if len(s.learnts) < 2 {
		return
	}
	// Simple selection: compute median activity.
	acts := s.actBuf[:0]
	for _, r := range s.learnts {
		acts = append(acts, s.ca.act(r))
	}
	s.actBuf = acts
	med := quickMedian(acts)
	kept := s.learnts[:0]
	removed := 0
	for _, r := range s.learnts {
		if s.ca.size(r) > 2 && s.ca.lbd(r) > 2 && s.ca.act(r) < med && !s.locked(r) && removed < len(s.learnts)/2 {
			s.ca.markDeleted(r)
			removed++
			s.Deleted++
			continue
		}
		kept = append(kept, r)
	}
	s.learnts = kept
	s.checkGC()
}

func (s *Solver) locked(r cref) bool {
	l := s.ca.lits(r)[0]
	return s.value(l) == lTrue && s.vardata[l.Var()].reason == r
}

// checkGC compacts the clause arena once a fifth of it is dead space.
func (s *Solver) checkGC() {
	if s.ca.wasted > len(s.ca.data)/5 {
		s.garbageCollect()
	}
}

// garbageCollect copies every live clause into a fresh arena and rewrites
// all crefs (watch lists, trail reasons, clause lists) through the
// forwarding references reloc leaves behind. Watchers of deleted clauses
// are dropped here instead of lazily in propagate; either way they were
// invisible to the search, so solver trajectories are unchanged.
func (s *Solver) garbageCollect() {
	to := clauseAlloc{data: make([]Lit, 0, len(s.ca.data)-s.ca.wasted)}
	for i := range s.watches {
		ws := s.watches[i]
		n := 0
		for _, w := range ws {
			if s.ca.deleted(w.ref) {
				continue
			}
			w.ref = s.ca.reloc(w.ref, &to)
			ws[n] = w
			n++
		}
		s.watches[i] = ws[:n]
	}
	for _, l := range s.trail {
		v := l.Var()
		r := s.vardata[v].reason
		if r == crefUndef {
			continue
		}
		// Level-0 implications can outlive their reason clause (the
		// preprocessor deletes satisfied clauses); the reason is never
		// consulted again, so drop the dangling reference.
		if s.ca.deleted(r) {
			s.vardata[v].reason = crefUndef
		} else {
			s.vardata[v].reason = s.ca.reloc(r, &to)
		}
	}
	for i, r := range s.clauses {
		s.clauses[i] = s.ca.reloc(r, &to)
	}
	for i, r := range s.learnts {
		s.learnts[i] = s.ca.reloc(r, &to)
	}
	s.ca = to
}

// quickMedian selects the median by in-place quickselect; the input is
// scratch and arrives permuted.
func quickMedian(b []float64) float64 {
	if len(b) == 0 {
		return 0
	}
	k := len(b) / 2
	lo, hi := 0, len(b)-1
	for lo < hi {
		p := b[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for b[i] < p {
				i++
			}
			for b[j] > p {
				j--
			}
			if i <= j {
				b[i], b[j] = b[j], b[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return b[k]
}

// luby returns the x-th element of the Luby restart sequence
// (1,1,2,1,1,2,4,...), following MiniSat: find the finite subsequence
// containing index x, then recurse into it by modulo.
func luby(x int) float64 {
	size, seq := 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x = x % size
	}
	return math.Pow(2, float64(seq))
}

// restartInterval returns the conflict allowance of restart round i under
// the configured schedule: Luby times base (the baseline, luby(i)*100) or
// a geometric series, clamped so long geometric runs cannot overflow.
func (s *Solver) restartInterval(i int) int {
	base := float64(s.restartBase)
	if !s.geomRestart {
		return int(luby(i) * base)
	}
	v := base * math.Pow(s.restartGrow, float64(i))
	if v > 1e9 {
		v = 1e9
	}
	return int(v)
}

// search runs CDCL until a restart, a verdict, or budget exhaustion.
func (s *Solver) search(maxConflicts int) Status {
	conflicts := 0
	for {
		// Cooperative cancellation: one relaxed-cost atomic load per
		// propagate round, the same granularity the budget check gets.
		if s.cancel != nil && s.cancel.Load() {
			s.canceled = true
			return Unknown
		}
		confl := s.propagate()
		if confl != crefUndef {
			s.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			s.LearntLits += int64(len(learnt))
			s.LearntSizes[learntSizeBucket(len(learnt))]++
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], crefUndef)
			} else {
				lbd := s.computeLBD(learnt)
				r := s.ca.alloc(learnt, true)
				s.ca.setLBD(r, lbd)
				s.learnts = append(s.learnts, r)
				s.Learnt++
				s.attach(r)
				s.clauseBump(r)
				s.uncheckedEnqueue(learnt[0], r)
			}
			s.varDecay()
			s.clauseDecay()
			if s.progressFn != nil && s.Conflicts >= s.progressNext {
				s.progressNext = s.Conflicts + s.progressEvery
				s.progressFn(s.progressSample())
			}
			continue
		}
		// No conflict.
		if s.budgetLim >= 0 && s.Conflicts >= s.budgetLim {
			return Unknown
		}
		if conflicts >= maxConflicts {
			s.cancelUntil(len(s.assumptions))
			return Unknown // restart
		}
		if float64(len(s.learnts)) >= s.maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
		}
		// Place assumptions as pseudo-decisions.
		var next Lit = -1
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.newDecisionLevel() // dummy level
			case lFalse:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
			if next != -1 {
				break
			}
		}
		if next == -1 {
			// Regular decision.
			v := s.pickBranchVar()
			if v == -1 {
				return Sat
			}
			s.Decisions++
			next = MkLit(v, s.polarity[v])
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, crefUndef)
	}
}

func (s *Solver) pickBranchVar() int {
	if s.randState != 0 && s.randFreq != 0 && uint32(s.nextRand()) < s.randFreq {
		if v := s.pickRandomVar(); v != -1 {
			return v
		}
	}
	for !s.order.empty() {
		v := s.order.pop(s)
		if s.assigns[v] == lUndef && !s.elimed[v] {
			return v
		}
	}
	return -1
}

// pickRandomVar probes a bounded number of uniformly random variables for
// an unassigned, uneliminated one; -1 when every probe misses, in which
// case the caller falls back to the activity order. The chosen variable
// may still sit in the order heap — pop skips assigned variables, so a
// later pop simply passes over it or reuses it once unassigned again.
func (s *Solver) pickRandomVar() int {
	n := s.NumVars()
	if n == 0 {
		return -1
	}
	for probes := 0; probes < 8; probes++ {
		v := int(s.nextRand() % uint64(n))
		if s.assigns[v] == lUndef && !s.elimed[v] {
			return v
		}
	}
	return -1
}

// Solve determines satisfiability under the given assumption literals.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		s.conflictSet = s.conflictSet[:0]
		return Unsat
	}
	// Assumption variables must survive elimination: their truth is decided
	// per call, so baking them into resolvents would change later queries.
	// Freezing also restores any already-eliminated assumption variable.
	for _, a := range assumptions {
		s.FreezeVar(a.Var())
	}
	if !s.ok {
		s.conflictSet = s.conflictSet[:0]
		return Unsat
	}
	if s.prep && s.dirty > 0 &&
		(s.dirty >= prepDirtyMin || s.dirty*prepDirtyFrac >= len(s.clauses)) {
		if !s.Preprocess() {
			s.conflictSet = s.conflictSet[:0]
			return Unsat
		}
	}
	s.assumptions = append(s.assumptions[:0], assumptions...)
	s.conflictSet = s.conflictSet[:0]
	defer s.cancelUntil(0)

	s.budgetLim = -1
	if s.budget >= 0 {
		s.budgetLim = s.Conflicts + s.budget
	}
	s.canceled = false

	s.lubyIdx = 0
	for {
		maxC := s.restartInterval(s.lubyIdx)
		s.lubyIdx++
		st := s.search(maxC)
		switch st {
		case Sat:
			// Snapshot the model before the deferred backtrack erases it,
			// then reconstruct values for eliminated variables.
			s.model = append(s.model[:0], s.assigns...)
			s.extendModel()
			return Sat
		case Unsat:
			return Unsat
		}
		if s.canceled {
			return Unknown
		}
		if s.budgetLim >= 0 && s.Conflicts >= s.budgetLim {
			return Unknown
		}
		s.Restarts++
		s.maxLearnts *= 1.05
		if s.learntCap > 0 && s.maxLearnts > s.learntCap {
			s.maxLearnts = s.learntCap
		}
	}
}

// Value returns the model value of variable v after a Sat verdict.
func (s *Solver) Value(v int) bool { return v < len(s.model) && s.model[v] == lTrue }

// Model returns a copy of the last satisfying assignment (only meaningful
// after a Sat verdict).
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	for i, a := range s.model {
		m[i] = a == lTrue
	}
	return m
}

// Conflict returns the final conflict clause after an Unsat verdict under
// assumptions: a subset of the negations of the failed assumptions.
func (s *Solver) Conflict() []Lit { return append([]Lit(nil), s.conflictSet...) }

// Okay reports whether the solver is still consistent at level 0.
func (s *Solver) Okay() bool { return s.ok }

// ---- binary heap ordered by activity (max-heap) ----

type heap struct {
	data []int32
	pos  []int32 // var -> index in data, -1 if absent
}

func (h *heap) less(s *Solver, a, b int32) bool {
	return s.activity[a] > s.activity[b]
}

func (h *heap) ensure(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
}

func (h *heap) empty() bool { return len(h.data) == 0 }

func (h *heap) push(s *Solver, v int) {
	h.ensure(v)
	if h.pos[v] != -1 {
		return
	}
	h.data = append(h.data, int32(v))
	h.pos[v] = int32(len(h.data) - 1)
	h.up(s, len(h.data)-1)
}

func (h *heap) pushIfAbsent(s *Solver, v int) { h.push(s, v) }

func (h *heap) pop(s *Solver) int {
	top := h.data[0]
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.pos[top] = -1
	if len(h.data) > 0 {
		h.data[0] = last
		h.pos[last] = 0
		h.down(s, 0)
	}
	return int(top)
}

func (h *heap) decrease(s *Solver, v int) {
	h.ensure(v)
	if h.pos[v] == -1 {
		return
	}
	h.up(s, int(h.pos[v]))
}

func (h *heap) up(s *Solver, i int) {
	x := h.data[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(s, x, h.data[p]) {
			break
		}
		h.data[i] = h.data[p]
		h.pos[h.data[p]] = int32(i)
		i = p
	}
	h.data[i] = x
	h.pos[x] = int32(i)
}

func (h *heap) down(s *Solver, i int) {
	x := h.data[i]
	for {
		l := 2*i + 1
		if l >= len(h.data) {
			break
		}
		c := l
		if r := l + 1; r < len(h.data) && h.less(s, h.data[r], h.data[l]) {
			c = r
		}
		if !h.less(s, h.data[c], x) {
			break
		}
		h.data[i] = h.data[c]
		h.pos[h.data[c]] = int32(i)
		i = c
	}
	h.data[i] = x
	h.pos[x] = int32(i)
}
