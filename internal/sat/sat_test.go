package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(a) && !s.Value(b) {
		t.Fatal("model does not satisfy a|b")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause should make the solver inconsistent")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	s := New()
	const n = 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(MkLit(vars[0], false))
	for i := 0; i+1 < n; i++ {
		// v[i] -> v[i+1]
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("var %d should be true by implication chain", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes — classically UNSAT and a good
	// stress test for clause learning.
	for _, n := range []int{3, 4, 5} {
		s := New()
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = MkLit(p[i][j], false)
			}
			s.AddClause(lits...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d+1,%d) = %v, want Unsat", n, n, got)
		}
	}
}

func TestAssumptionsAndCore(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	c := s.NewVar()
	// a & b -> false, c free.
	s.AddClause(MkLit(a, true), MkLit(b, true))
	if got := s.Solve(MkLit(a, false), MkLit(b, false), MkLit(c, false)); got != Unsat {
		t.Fatalf("Solve under a,b,c = %v, want Unsat", got)
	}
	core := s.Conflict()
	if len(core) == 0 || len(core) > 2 {
		t.Fatalf("conflict core = %v, want subset of {~a,~b} of size 1-2", core)
	}
	for _, l := range core {
		if l.Var() == c {
			t.Fatalf("core %v mentions irrelevant assumption c", core)
		}
	}
	// Without the conflicting assumptions it must be satisfiable again.
	if got := s.Solve(MkLit(c, false)); got != Sat {
		t.Fatalf("Solve under c = %v, want Sat", got)
	}
}

func TestIncrementalReuse(t *testing.T) {
	s := New()
	x := s.NewVar()
	y := s.NewVar()
	s.AddClause(MkLit(x, false), MkLit(y, false))
	if s.Solve(MkLit(x, true)) != Sat {
		t.Fatal("want Sat under ~x (y must hold)")
	}
	if !s.Value(y) {
		t.Fatal("y must be true when x assumed false")
	}
	if s.Solve(MkLit(y, true)) != Sat {
		t.Fatal("want Sat under ~y (x must hold)")
	}
	if !s.Value(x) {
		t.Fatal("x must be true when y assumed false")
	}
	if s.Solve(MkLit(x, true), MkLit(y, true)) != Unsat {
		t.Fatal("want Unsat under ~x,~y")
	}
}

// bruteForce decides satisfiability of the CNF by enumeration.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m&(1<<l.Var()) != 0
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 1 + rng.Intn(40)
		cnf := make([][]Lit, nClauses)
		for i := range cnf {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			cnf[i] = cl
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := s.Solve() == Sat
		want := bruteForce(nVars, cnf)
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, got, want, cnf)
		}
		if got {
			// Verify the model actually satisfies the CNF.
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					v := s.Value(l.Var())
					if l.Neg() {
						v = !v
					}
					if v {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: reported model does not satisfy clause %v", iter, cl)
				}
			}
		}
	}
}

func TestQuickModelSoundness(t *testing.T) {
	// Property: for any 3-CNF the solver's Sat verdict comes with a model
	// that satisfies every clause.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 4 + rng.Intn(10)
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		var cnf [][]Lit
		for i := 0; i < 5+rng.Intn(60); i++ {
			cl := make([]Lit, 1+rng.Intn(3))
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			cnf = append(cnf, cl)
			s.AddClause(cl...)
		}
		if s.Solve() != Sat {
			return true // nothing to check; completeness covered elsewhere
		}
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				v := s.Value(l.Var())
				if l.Neg() {
					v = !v
				}
				if v {
					sat = true
				}
			}
			if !sat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBudget(t *testing.T) {
	// A hard instance with a tiny budget should return Unknown.
	n := 8
	s := New()
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
	s.SetBudget(10)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve with budget 10 = %v, want Unknown", got)
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(7, false)
	if l.Var() != 7 || l.Neg() {
		t.Fatalf("MkLit(7,false) = %v", l)
	}
	n := l.Not()
	if n.Var() != 7 || !n.Neg() {
		t.Fatalf("Not() = %v", n)
	}
	if n.Not() != l {
		t.Fatal("double negation should be identity")
	}
	if l.String() != "x7" || n.String() != "~x7" {
		t.Fatalf("String() = %q / %q", l.String(), n.String())
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Fatal("Status.String mismatch")
	}
}

func TestLubySequence(t *testing.T) {
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i); got != w {
			t.Fatalf("luby(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestManyRestartsTerminate(t *testing.T) {
	// A hard random 3-SAT instance near the phase transition forces many
	// restarts; luby() must stay well-defined at every index (regression
	// for a negative-shift bug at restart index 3).
	rng := rand.New(rand.NewSource(7))
	s := New()
	const n = 60
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for i := 0; i < int(4.2*n); i++ {
		var cl []Lit
		for j := 0; j < 3; j++ {
			cl = append(cl, MkLit(rng.Intn(n), rng.Intn(2) == 0))
		}
		s.AddClause(cl...)
	}
	if got := s.Solve(); got == Unknown {
		t.Fatal("should decide without budget")
	}
}

// TestSearchCounters pins the counter semantics on a formula whose search
// is fully determined: a unit chain x, x→y, y→z assigns everything by
// level-0 propagation, so the solver makes no decisions and hits no
// conflicts, and each of the three literals is popped from the
// propagation queue exactly once.
func TestSearchCounters(t *testing.T) {
	s := New()
	x := s.NewVar()
	y := s.NewVar()
	z := s.NewVar()
	s.AddClause(MkLit(x, true), MkLit(y, false)) // ¬x ∨ y
	s.AddClause(MkLit(y, true), MkLit(z, false)) // ¬y ∨ z
	s.AddClause(MkLit(x, false))                 // x (unit: triggers the chain)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(x) || !s.Value(y) || !s.Value(z) {
		t.Fatalf("model = %v %v %v, want all true", s.Value(x), s.Value(y), s.Value(z))
	}
	if s.Propagations != 3 {
		t.Errorf("Propagations = %d, want 3 (x, y, z each popped once)", s.Propagations)
	}
	if s.Decisions != 0 {
		t.Errorf("Decisions = %d, want 0 (everything fixed at level 0)", s.Decisions)
	}
	if s.Conflicts != 0 || s.Restarts != 0 || s.Learnt != 0 || s.LearntLits != 0 {
		t.Errorf("Conflicts/Restarts/Learnt/LearntLits = %d/%d/%d/%d, want all 0",
			s.Conflicts, s.Restarts, s.Learnt, s.LearntLits)
	}
}

// TestLearntCounters: a formula that forces at least one conflict must
// record it, along with the learnt clause literals.
func TestLearntCounters(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	c := s.NewVar()
	// (a∨b∨c) ∧ (a∨b∨¬c) ∧ (a∨¬b) ∧ (¬a∨b) ∧ (¬a∨¬b) is unsat on {a,b};
	// search must conflict before concluding Unsat.
	s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(c, false))
	s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(c, true))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	if s.Conflicts == 0 {
		t.Error("Conflicts = 0, want > 0")
	}
	if s.LearntLits == 0 {
		t.Error("LearntLits = 0, want > 0 (analyze produced learnt literals)")
	}
	if s.Decisions == 0 {
		t.Error("Decisions = 0, want > 0")
	}
}

// TestLearntCapAndDeletion: with a tiny learnt-clause ceiling the database
// reduction must fire (evicting clauses and counting them in Deleted)
// while the verdict stays correct. A second solver without the ceiling
// pins the expected verdict.
func TestLearntCapAndDeletion(t *testing.T) {
	build := func(s *Solver) {
		rng := rand.New(rand.NewSource(11))
		const n = 70
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		for i := 0; i < int(4.2*n); i++ {
			var cl []Lit
			for j := 0; j < 3; j++ {
				cl = append(cl, MkLit(rng.Intn(n), rng.Intn(2) == 0))
			}
			s.AddClause(cl...)
		}
	}
	ref := New()
	ref.SetLearntCap(0) // unbounded
	build(ref)
	want := ref.Solve()
	if want == Unknown {
		t.Fatal("reference solve should decide")
	}

	s := New()
	s.SetLearntCap(30)
	build(s)
	if got := s.Solve(); got != want {
		t.Fatalf("Solve with learnt cap = %v, want %v", got, want)
	}
	if s.Deleted == 0 {
		t.Error("Deleted = 0, want > 0 (cap must trigger database reduction)")
	}
	if s.maxLearnts > 30 {
		t.Errorf("maxLearnts = %v grew past the cap 30", s.maxLearnts)
	}
	if int64(len(s.learnts))+s.Deleted != s.Learnt {
		t.Errorf("retained %d + deleted %d != learnt %d", len(s.learnts), s.Deleted, s.Learnt)
	}
}
