package sat

// SatELite-style CNF preprocessing (Eén & Biere, SAT 2005): occurrence-list
// backward subsumption, self-subsuming resolution, and bounded variable
// elimination (BVE) with a clause-growth cutoff, plus level-0 unit and
// pure-literal simplification (the latter falls out of BVE as the
// zero-resolvent case). All of it is model-reconstructing: every eliminated
// variable records its original clauses on an elimination stack, and after
// a Sat verdict extendModel walks the stack in reverse to assign values
// that satisfy the original formula, so Model() stays exact.
//
// Incremental solving keeps working because (a) Solve freezes assumption
// variables before preprocessing — their truth varies per query, so they
// must never be resolved away — and (b) AddClause restores any eliminated
// variable the new clause mentions by re-adding its recorded clauses
// (restoreVar), which is sound: the resolvents kept in the database are
// implied by the originals, so re-adding the originals restores the exact
// original semantics.
//
// Clauses are addressed by cref into the solver's flat arena (alloc.go);
// the preprocessor shrinks and deletes them in place and compacts the
// arena afterwards. Its occurrence lists and scratch buffers are pooled on
// the Solver (prepState), so the repeated rounds a long-lived incremental
// solver triggers re-use one allocation's worth of working state.

import "sort"

// elimRecord remembers the original clauses of one eliminated variable.
// clauses becomes nil once the variable has been restored.
type elimRecord struct {
	v       int
	clauses [][]Lit
}

const (
	// bveOccLimit skips elimination of variables occurring more often than
	// this in either polarity; resolving dense variables is quadratic in
	// the occurrence counts and rarely profitable.
	bveOccLimit = 40
	// bveClauseLimit aborts an elimination that would create a resolvent
	// longer than this.
	bveClauseLimit = 48
	// subOccLimit skips subsumption passes whose pivot literal has more
	// candidate clauses than this.
	subOccLimit = 600
	// prepDirtyMin / prepDirtyFrac gate re-preprocessing inside Solve: a
	// round runs when at least prepDirtyMin clauses arrived since the last
	// one, or when the additions are at least 1/prepDirtyFrac of the
	// database. The first blast always qualifies; the small per-check
	// activation deltas of incremental mode usually do not, so a
	// long-lived solver is not re-scrubbed on every query.
	prepDirtyMin  = 800
	prepDirtyFrac = 8
)

// SetPreprocess enables preprocessing: Solve then runs a Preprocess round
// whenever enough clauses arrived since the previous round.
func (s *Solver) SetPreprocess(on bool) { s.prep = on }

// FreezeVar exempts v from variable elimination, restoring it first if it
// is currently eliminated. Solve freezes assumption variables
// automatically; the smt layer freezes indicator variables at creation.
func (s *Solver) FreezeVar(v int) {
	s.frozen[v] = true
	if s.elimed[v] {
		s.restoreVar(v)
	}
}

// UnfreezeVar lifts the FreezeVar exemption: v becomes eligible for
// variable elimination again in later preprocessing rounds. Unfreezing
// never changes the formula — it only widens what simplification may
// resolve away — so verdicts of subsequent checks are unaffected. If v
// later returns as an assumption or indicator, FreezeVar restores any
// elimination before it is used.
func (s *Solver) UnfreezeVar(v int) {
	if v >= 0 && v < len(s.frozen) {
		s.frozen[v] = false
	}
}

// restoreVar undoes the elimination of v by re-adding its recorded
// original clauses. AddClause re-enters restoreVar for any other
// eliminated variable those clauses mention.
func (s *Solver) restoreVar(v int) {
	idx, ok := s.elimIndex[v]
	if !ok {
		return
	}
	delete(s.elimIndex, v)
	s.elimed[v] = false
	rec := &s.elimStack[idx]
	cls := rec.clauses
	rec.clauses = nil
	s.order.pushIfAbsent(s, v)
	for _, lits := range cls {
		if !s.AddClause(lits...) {
			return
		}
	}
}

// extendModel assigns model values to eliminated variables, newest
// elimination first, choosing for each variable the value that satisfies
// every recorded original clause under the values fixed so far. BVE
// guarantees such a value exists: all non-tautological resolvents were
// added, so at most one polarity can have an otherwise-unsatisfied clause.
func (s *Solver) extendModel() {
	for i := len(s.elimStack) - 1; i >= 0; i-- {
		rec := &s.elimStack[i]
		if rec.clauses == nil {
			continue
		}
		val := lFalse
		for _, cl := range rec.clauses {
			sat, pos := false, false
			for _, l := range cl {
				if l.Var() == rec.v {
					pos = !l.Neg()
					continue
				}
				if (s.model[l.Var()] == lTrue) != l.Neg() {
					sat = true
					break
				}
			}
			if !sat && pos {
				val = lTrue
				break
			}
		}
		s.model[rec.v] = val
	}
}

// Preprocess runs one simplification round over the clause database at
// decision level 0: unit reduction, subsumption, self-subsuming
// resolution, then bounded variable elimination, then a final subsumption
// sweep over the resolvents. It returns false if the round proves the
// formula unsatisfiable.
func (s *Solver) Preprocess() bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: Preprocess above decision level 0")
	}
	if s.propagate() != crefUndef {
		s.ok = false
		return false
	}
	s.dirty = 0
	if s.prepState == nil {
		s.prepState = &preprocessor{}
	}
	p := s.prepState
	p.reset(s)
	p.build()
	if s.ok {
		p.processUnits()
	}
	if s.ok {
		p.subsume()
	}
	if s.ok {
		p.eliminate()
	}
	if s.ok {
		p.subsume()
	}
	p.finish()
	if s.ok && s.propagate() != crefUndef {
		s.ok = false
	}
	return s.ok
}

// rebuildWatches reconstructs every watch list from the live clause
// database; preprocessing mutates clauses in place, so the old lists are
// stale afterwards. Truncation keeps the list backings (and the shared
// watcher slab they were carved from), so re-attachment after a
// preprocessing round costs no fresh allocation.
func (s *Solver) rebuildWatches() {
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for _, c := range s.clauses {
		s.attach(c)
	}
	for _, c := range s.learnts {
		s.attach(c)
	}
}

// preprocessor is the working state of one Preprocess round: an
// occurrence-list view of the clause database with a subsumption queue. A
// single instance is pooled on the Solver and reset between rounds, so the
// occurrence lists, queue, and scratch buffers keep their backing arrays.
type preprocessor struct {
	s       *Solver
	cls     []cref    // live view: problem clauses then learnts, then resolvents
	occ     [][]int32 // literal -> indices into cls
	sig     []uint64  // per-clause variable signature (subset prefilter)
	inQueue []bool
	queue   []int   // clause indices awaiting a subsumption pass
	units   []Lit   // pending level-0 assignments
	cands   []int32 // subsumption candidate scratch (occ list snapshot)
}

// reset clears the round's state while keeping every backing array, and
// sizes the occurrence table to the solver's current variable count.
func (p *preprocessor) reset(s *Solver) {
	p.s = s
	p.cls = p.cls[:0]
	p.sig = p.sig[:0]
	p.inQueue = p.inQueue[:0]
	p.queue = p.queue[:0]
	p.units = p.units[:0]
	for i := range p.occ {
		p.occ[i] = p.occ[i][:0]
	}
	for len(p.occ) < 2*s.NumVars() {
		p.occ = append(p.occ, nil)
	}
	p.occ = p.occ[:2*s.NumVars()]
}

func sigOf(lits []Lit) uint64 {
	var sig uint64
	for _, l := range lits {
		sig |= 1 << (uint(l.Var()) & 63)
	}
	return sig
}

func (p *preprocessor) lits(ci int) []Lit { return p.s.ca.lits(p.cls[ci]) }

func (p *preprocessor) deleted(ci int) bool { return p.s.ca.deleted(p.cls[ci]) }

// build folds the clause database into occurrence lists, simplifying each
// clause against the level-0 assignment on the way in (survivors are
// written over the clause's arena prefix, then the clause shrinks in
// place).
func (p *preprocessor) build() {
	s := p.s
	for _, list := range [2][]cref{s.clauses, s.learnts} {
		for _, r := range list {
			if s.ca.deleted(r) {
				continue
			}
			lits := s.ca.lits(r)
			keep, satisfied := lits[:0], false
			for _, l := range lits {
				switch s.value(l) {
				case lTrue:
					satisfied = true
				case lFalse:
					// drop
				default:
					keep = append(keep, l)
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				s.ca.markDeleted(r)
				continue
			}
			if len(keep) < len(lits) {
				s.ca.shrink(r, len(keep))
			}
			switch len(keep) {
			case 0:
				s.ok = false
				return
			case 1:
				p.units = append(p.units, keep[0])
				s.ca.markDeleted(r)
				continue
			}
			p.addIndexed(r)
		}
	}
}

func (p *preprocessor) addIndexed(r cref) {
	ci := len(p.cls)
	p.cls = append(p.cls, r)
	lits := p.s.ca.lits(r)
	p.sig = append(p.sig, sigOf(lits))
	p.inQueue = append(p.inQueue, true)
	p.queue = append(p.queue, ci)
	for _, l := range lits {
		p.occ[l] = append(p.occ[l], int32(ci))
	}
}

func (p *preprocessor) enqueue(ci int) {
	if !p.inQueue[ci] {
		p.inQueue[ci] = true
		p.queue = append(p.queue, ci)
	}
}

func (p *preprocessor) occRemove(l Lit, ci int) {
	list := p.occ[l]
	for i, x := range list {
		if int(x) == ci {
			list[i] = list[len(list)-1]
			p.occ[l] = list[:len(list)-1]
			return
		}
	}
}

func (p *preprocessor) deleteClause(ci int) {
	if p.deleted(ci) {
		return
	}
	for _, l := range p.lits(ci) {
		p.occRemove(l, ci)
	}
	p.s.ca.markDeleted(p.cls[ci])
}

// strengthen removes literal l from clause ci; a clause reduced to a unit
// is queued for level-0 assignment and retired.
func (p *preprocessor) strengthen(ci int, l Lit) {
	lits := p.lits(ci)
	for i, x := range lits {
		if x == l {
			lits[i] = lits[len(lits)-1]
			lits = lits[:len(lits)-1]
			break
		}
	}
	p.s.ca.shrink(p.cls[ci], len(lits))
	p.occRemove(l, ci)
	p.sig[ci] = sigOf(lits)
	if len(lits) == 1 {
		p.units = append(p.units, lits[0])
		p.deleteClause(ci)
		return
	}
	p.enqueue(ci)
}

// processUnits drains pending level-0 assignments against the occurrence
// lists: satisfied clauses are deleted, falsified literals removed.
func (p *preprocessor) processUnits() bool {
	s := p.s
	for len(p.units) > 0 {
		l := p.units[0]
		p.units = p.units[1:]
		switch s.value(l) {
		case lTrue:
			continue
		case lFalse:
			s.ok = false
			return false
		}
		s.uncheckedEnqueue(l, crefUndef)
		for len(p.occ[l]) > 0 {
			p.deleteClause(int(p.occ[l][0]))
		}
		for len(p.occ[l.Not()]) > 0 {
			p.strengthen(int(p.occ[l.Not()][0]), l.Not())
		}
	}
	return true
}

// subsumes reports whether clause a subsumes b, allowing at most one
// flipped literal (self-subsuming resolution). The returned literal is the
// one to remove from b, or -1 for plain subsumption.
func subsumes(a, b []Lit) (Lit, bool) {
	flip := Lit(-1)
nextLit:
	for _, la := range a {
		for _, lb := range b {
			if lb == la {
				continue nextLit
			}
		}
		if flip != -1 {
			return -1, false
		}
		for _, lb := range b {
			if lb == la.Not() {
				flip = lb
				continue nextLit
			}
		}
		return -1, false
	}
	return flip, true
}

// subsume drains the queue: each clause checks the candidates sharing its
// cheapest literal for backward subsumption and self-subsuming resolution.
func (p *preprocessor) subsume() {
	s := p.s
	for len(p.queue) > 0 && s.ok {
		ci := p.queue[0]
		p.queue = p.queue[1:]
		p.inQueue[ci] = false
		if p.deleted(ci) {
			continue
		}
		// Pivot on the literal with the fewest candidates across both
		// polarities; a flip on any other literal still leaves the pivot
		// itself in the candidate clause.
		var pivot Lit = -1
		bestN := 0
		for _, l := range p.lits(ci) {
			n := len(p.occ[l]) + len(p.occ[l.Not()])
			if pivot == -1 || n < bestN {
				pivot, bestN = l, n
			}
		}
		if bestN > subOccLimit {
			continue
		}
		p.subsumeWith(ci, pivot)
		p.subsumeWith(ci, pivot.Not())
		if len(p.units) > 0 && !p.processUnits() {
			return
		}
	}
}

func (p *preprocessor) subsumeWith(ci int, l Lit) {
	// Snapshot the candidate list into pooled scratch: strengthen and
	// deleteClause below edit the live occurrence list mid-iteration.
	p.cands = append(p.cands[:0], p.occ[l]...)
	for _, cj32 := range p.cands {
		cj := int(cj32)
		if p.deleted(ci) {
			return
		}
		if cj == ci || p.deleted(cj) {
			continue
		}
		clits := p.lits(ci)
		dlits := p.lits(cj)
		if len(dlits) < len(clits) {
			continue
		}
		if p.sig[ci]&^p.sig[cj] != 0 {
			continue
		}
		flip, ok := subsumes(clits, dlits)
		if !ok {
			continue
		}
		if flip == -1 {
			// ci subsumes cj. If a learnt clause subsumes a problem clause
			// it must be promoted, or database reduction could later evict
			// the only remaining form of the constraint.
			if p.s.ca.learnt(p.cls[ci]) && !p.s.ca.learnt(p.cls[cj]) {
				p.s.ca.demote(p.cls[ci])
			}
			p.s.SubsumedClauses++
			p.deleteClause(cj)
			continue
		}
		p.s.StrengthenedClauses++
		p.strengthen(cj, flip)
	}
}

// resolve computes the resolvent of a and b on v; ok is false for
// tautologies.
func resolve(a, b []Lit, v int) ([]Lit, bool) {
	out := make([]Lit, 0, len(a)+len(b)-2)
	for _, l := range a {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range b {
		if l.Var() == v {
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return nil, false
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out, true
}

// eliminate attempts bounded variable elimination on every unfrozen,
// unassigned variable, cheapest occurrence counts first.
func (p *preprocessor) eliminate() {
	s := p.s
	type cand struct{ v, n int }
	cands := make([]cand, 0, s.NumVars())
	for v := 0; v < s.NumVars(); v++ {
		if s.frozen[v] || s.elimed[v] || s.assigns[v] != lUndef {
			continue
		}
		n := len(p.occ[MkLit(v, false)]) + len(p.occ[MkLit(v, true)])
		if n == 0 {
			continue
		}
		cands = append(cands, cand{v, n})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n < cands[j].n
		}
		return cands[i].v < cands[j].v
	})
	for _, cd := range cands {
		if !s.ok {
			return
		}
		p.tryEliminate(cd.v)
	}
}

// tryEliminate resolves every pos/neg problem-clause pair on v; the
// elimination commits only when the non-tautological resolvents do not
// outnumber the clauses they replace (SatELite's zero-growth rule) and
// none exceeds the length cutoff. Learnt clauses mentioning v are simply
// dropped — they are implied, and the remaining ones stay implied because
// every model of the reduced formula extends to one of the original.
func (p *preprocessor) tryEliminate(v int) {
	s := p.s
	if s.frozen[v] || s.elimed[v] || s.assigns[v] != lUndef {
		return
	}
	pl, nl := MkLit(v, false), MkLit(v, true)
	var pos, neg []int
	for _, ci := range p.occ[pl] {
		if !s.ca.learnt(p.cls[ci]) {
			pos = append(pos, int(ci))
		}
	}
	for _, ci := range p.occ[nl] {
		if !s.ca.learnt(p.cls[ci]) {
			neg = append(neg, int(ci))
		}
	}
	if len(pos) > bveOccLimit || len(neg) > bveOccLimit {
		return
	}
	limit := len(pos) + len(neg)
	var resolvents [][]Lit
	for _, pi := range pos {
		for _, ni := range neg {
			r, ok := resolve(p.lits(pi), p.lits(ni), v)
			if !ok {
				continue
			}
			if len(r) > bveClauseLimit {
				return
			}
			resolvents = append(resolvents, r)
			if len(resolvents) > limit {
				return
			}
		}
	}
	// Commit: record and remove the originals, drop learnts touching v,
	// then add the resolvents.
	rec := elimRecord{v: v}
	for _, ci := range pos {
		rec.clauses = append(rec.clauses, append([]Lit(nil), p.lits(ci)...))
	}
	for _, ci := range neg {
		rec.clauses = append(rec.clauses, append([]Lit(nil), p.lits(ci)...))
	}
	for _, ci := range pos {
		p.deleteClause(ci)
	}
	for _, ci := range neg {
		p.deleteClause(ci)
	}
	for len(p.occ[pl]) > 0 {
		p.deleteClause(int(p.occ[pl][0]))
	}
	for len(p.occ[nl]) > 0 {
		p.deleteClause(int(p.occ[nl][0]))
	}
	if s.elimIndex == nil {
		s.elimIndex = map[int]int{}
	}
	s.elimIndex[v] = len(s.elimStack)
	s.elimStack = append(s.elimStack, rec)
	s.elimed[v] = true
	s.ElimVars++
	for _, r := range resolvents {
		p.addResolvent(r)
	}
	p.processUnits()
}

// addResolvent installs a BVE resolvent as a problem clause in the arena,
// simplifying against the level-0 assignment first.
func (p *preprocessor) addResolvent(lits []Lit) {
	s := p.s
	out := lits[:0]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return
		case lFalse:
			// drop
		default:
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return
	case 1:
		p.units = append(p.units, out[0])
		return
	}
	p.addIndexed(s.ca.alloc(out, false))
}

// finish rebuilds the solver's clause lists from the surviving view,
// reconstructs the watch lists, and compacts the arena if the round left
// enough dead space behind.
func (p *preprocessor) finish() {
	s := p.s
	cls := s.clauses[:0]
	lrn := s.learnts[:0]
	for _, r := range p.cls {
		if s.ca.deleted(r) {
			continue
		}
		if s.ca.learnt(r) {
			lrn = append(lrn, r)
		} else {
			cls = append(cls, r)
		}
	}
	s.clauses = cls
	s.learnts = lrn
	s.rebuildWatches()
	s.checkGC()
}
