package sat

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestPortfolioRoster pins the roster's structural guarantees: index 0 is
// the exact baseline, entries are deterministic, and the roster extends to
// any width with distinct seeds.
func TestPortfolioRoster(t *testing.T) {
	ps := Portfolio(8)
	if len(ps) != 8 {
		t.Fatalf("Portfolio(8) returned %d entries", len(ps))
	}
	if ps[0] != (Personality{Name: "baseline"}) {
		t.Fatalf("index 0 must be the zero-knob baseline, got %+v", ps[0])
	}
	again := Portfolio(8)
	for i := range ps {
		if ps[i] != again[i] {
			t.Fatalf("roster not deterministic at %d: %+v vs %+v", i, ps[i], again[i])
		}
	}
	seeds := map[uint64]bool{}
	for i := 4; i < 8; i++ {
		if ps[i].RandSeed == 0 || seeds[ps[i].RandSeed] {
			t.Fatalf("extended roster entry %d has degenerate seed %d", i, ps[i].RandSeed)
		}
		seeds[ps[i].RandSeed] = true
	}
}

// TestPersonalitiesAgreeOnRandom3SAT is the soundness property: every
// personality is a complete solver, so all roster members must return the
// same verdict on the same formula (and a model when Sat).
func TestPersonalitiesAgreeOnRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	roster := Portfolio(6)
	for trial := 0; trial < 40; trial++ {
		nVars := 12 + rng.Intn(20)
		nClauses := 3 * nVars
		cnf := randomCNF(rng, nVars, nClauses, 3)
		var want Status
		for pi, p := range roster {
			s := New()
			if pi%2 == 1 {
				s.SetPreprocess(true)
			}
			s.SetPersonality(p)
			for i := 0; i < nVars; i++ {
				s.NewVar()
			}
			ok := true
			for _, cl := range cnf {
				if !s.AddClause(cl...) {
					ok = false
					break
				}
			}
			st := Unsat
			if ok {
				st = s.Solve()
			}
			if st == Unknown {
				t.Fatalf("trial %d personality %q: Unknown without budget", trial, p.Name)
			}
			if pi == 0 {
				want = st
				continue
			}
			if st != want {
				t.Fatalf("trial %d: personality %q said %v, baseline said %v", trial, p.Name, st, want)
			}
			if st == Sat {
				for _, cl := range cnf {
					if !clauseSatisfied(s, cl) {
						t.Fatalf("trial %d personality %q: model violates clause %v", trial, p.Name, cl)
					}
				}
			}
		}
	}
}

// TestCancelPreSet: a token that is already true cancels the very first
// search round, and Canceled distinguishes the cause from a budget stop.
func TestCancelPreSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	var tok atomic.Bool
	tok.Store(true)
	s.SetCancel(&tok)
	for i := 0; i < 40; i++ {
		s.NewVar()
	}
	for _, cl := range randomCNF(rng, 40, 160, 3) {
		if !s.AddClause(cl...) {
			t.Skip("instance trivially unsat at level 0")
		}
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("pre-set token: Solve = %v, want Unknown", st)
	}
	if !s.Canceled() {
		t.Fatal("Canceled() = false after token-driven Unknown")
	}
	// Clearing the token makes the same solver answer normally, and the
	// verdict resets the canceled flag.
	tok.Store(false)
	if st := s.Solve(); st == Unknown {
		t.Fatal("cleared token: still Unknown")
	}
	if s.Canceled() {
		t.Fatal("Canceled() sticky across a completed Solve")
	}
}

// TestCancelMidSolve fires the token from another goroutine while the
// solver grinds a hard formula; Solve must return Unknown promptly.
func TestCancelMidSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New()
	var tok atomic.Bool
	s.SetCancel(&tok)
	// Hard random instance near the phase transition; big enough that a
	// verdict inside the test's grace period is implausible.
	nVars := 300
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, cl := range randomCNF(rng, nVars, int(4.26*float64(nVars)), 3) {
		if !s.AddClause(cl...) {
			t.Skip("instance trivially unsat at level 0")
		}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		tok.Store(true)
	}()
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	select {
	case st := <-done:
		if st == Unknown && !s.Canceled() {
			t.Fatal("Unknown without Canceled()")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the solver")
	}
}

// TestBudgetUnknownIsNotCanceled pins the disambiguation the racing driver
// relies on: budget exhaustion yields Unknown with Canceled() == false.
func TestBudgetUnknownIsNotCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := New()
	var tok atomic.Bool
	s.SetCancel(&tok)
	s.SetBudget(5)
	nVars := 200
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, cl := range randomCNF(rng, nVars, int(4.26*float64(nVars)), 3) {
		if !s.AddClause(cl...) {
			t.Skip("instance trivially unsat at level 0")
		}
	}
	st := s.Solve()
	if st != Unknown {
		t.Skipf("instance solved within 5 conflicts (%v)", st)
	}
	if s.Canceled() {
		t.Fatal("budget Unknown reported as canceled")
	}
}
