package sat

import (
	"fmt"
	"sync/atomic"
)

// Personality bundles the search-heuristic knobs that differentiate the
// members of a portfolio race: the same formula, solved by solvers with
// different restart schedules, branching randomness, default phases and
// activity decay, exhibits wildly different runtimes, and racing a few
// diverse configurations takes the minimum. The zero Personality is the
// baseline solver exactly — portfolio index 0 always uses it, which is
// what keeps a portfolio of one byte-identical to the plain engine.
type Personality struct {
	Name string // short label for stats and traces

	// RandSeed seeds the xorshift64 generator behind random branching
	// decisions; 0 disables random decisions entirely (the baseline).
	RandSeed uint64
	// RandFreq is the probability in [0, 1) that a branching decision is
	// random instead of activity-ordered; it applies only when RandSeed is
	// nonzero.
	RandFreq float64

	// Geometric switches the restart schedule from Luby (the baseline) to
	// the geometric series RestartBase * RestartGrow^i.
	Geometric bool
	// RestartBase is the first restart interval in conflicts; <= 0 means
	// the baseline 100.
	RestartBase int
	// RestartGrow is the geometric growth factor; <= 1 means 1.5. Only
	// used when Geometric is set.
	RestartGrow float64

	// PhaseTrue makes fresh variables default to phase true instead of the
	// baseline false. Only variables allocated after SetPersonality are
	// affected, which is all of them for the fresh racers verify spawns.
	PhaseTrue bool

	// VarDecay is the VSIDS activity decay factor; <= 0 means the baseline
	// 0.95. Smaller values chase recent conflicts harder.
	VarDecay float64

	// NoPreprocess forces CNF preprocessing off even when the driver
	// enabled it, so one racer searches the unsimplified formula.
	NoPreprocess bool
}

// SetPersonality applies p's knobs. Call it before the queries it should
// affect; the zero Personality restores baseline behaviour (except
// preprocessing, which stays whatever SetPreprocess chose unless
// NoPreprocess turns it off).
func (s *Solver) SetPersonality(p Personality) {
	s.randState = p.RandSeed
	s.randFreq = 0
	if p.RandSeed != 0 && p.RandFreq > 0 {
		f := p.RandFreq
		if f > 0.999 {
			f = 0.999
		}
		s.randFreq = uint32(f * (1 << 32))
	}
	s.phaseTrue = p.PhaseTrue
	s.varDecayInv = 0.95
	if p.VarDecay > 0 {
		s.varDecayInv = p.VarDecay
	}
	s.geomRestart = p.Geometric
	s.restartBase = 100
	if p.RestartBase > 0 {
		s.restartBase = p.RestartBase
	}
	s.restartGrow = 1.5
	if p.RestartGrow > 1 {
		s.restartGrow = p.RestartGrow
	}
	if p.NoPreprocess {
		s.prep = false
	}
}

// SetCancel installs a shared cancellation token: once c becomes true, any
// in-flight or future Solve returns Unknown at its next search-loop check
// — the same cooperative mechanism the conflict budget uses. A nil token
// removes cancellation. The solver stays consistent after a cancelled
// Solve (the deferred backtrack to level 0 still runs), so a shared
// incremental solver that loses a race answers later queries normally.
func (s *Solver) SetCancel(c *atomic.Bool) { s.cancel = c }

// Canceled reports whether the last Solve returned Unknown because the
// cancellation token fired, as opposed to exhausting its conflict budget.
func (s *Solver) Canceled() bool { return s.canceled }

// nextRand steps the xorshift64 state. Never called with a zero state
// (SetPersonality gates random decisions on RandSeed != 0), so the
// sequence never degenerates.
func (s *Solver) nextRand() uint64 {
	x := s.randState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.randState = x
	return x
}

// Portfolio returns k racing personalities. Index 0 is always the
// baseline, and the roster is deterministic: the same index denotes the
// same personality in every run, which keeps race outcomes reproducible
// up to scheduling.
func Portfolio(k int) []Personality {
	ps := make([]Personality, k)
	for i := range ps {
		ps[i] = portfolioMember(i)
	}
	return ps
}

// portfolioMember returns the i-th roster entry. The first few are
// hand-picked diverse configurations; past them, varying seeds extend a
// random-walk personality to any roster width.
func portfolioMember(i int) Personality {
	switch i {
	case 0:
		return Personality{Name: "baseline"}
	case 1:
		return Personality{Name: "geom-phase", Geometric: true, PhaseTrue: true, VarDecay: 0.92}
	case 2:
		return Personality{Name: "rand2", RandSeed: 0x9e3779b97f4a7c15, RandFreq: 0.02, VarDecay: 0.97}
	case 3:
		return Personality{Name: "geom-slow", Geometric: true, RestartBase: 400, RestartGrow: 2.0, NoPreprocess: true}
	default:
		return Personality{
			Name:      fmt.Sprintf("rand%d", i),
			RandSeed:  0x9e3779b97f4a7c15 * uint64(i),
			RandFreq:  0.05,
			PhaseTrue: i%2 == 0,
			Geometric: i%3 == 0,
		}
	}
}
