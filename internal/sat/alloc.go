package sat

import "math"

// Flat clause storage in the MiniSat ClauseAllocator style: every clause
// lives in one contiguous []Lit arena and is addressed by a 32-bit word
// offset (cref). The layout per clause, in 32-bit words:
//
//	[header] [lits...]                      problem clause
//	[header] [lbd] [actLo] [actHi] [lits...] learnt clause
//
// The header packs the literal count with four flag bits. flagExtras
// records the presence of the lbd/act words independently of flagLearnt:
// subsumption can promote a learnt clause to a problem clause in place
// (clearing flagLearnt) without changing its layout.
//
// Activity stays a float64 split across two words deliberately — clause
// activities feed the reduceDB eviction order, and narrowing them would
// change solver trajectories and break the byte-identical report
// contract.
//
// Deleting a clause only sets a flag and counts the span as wasted;
// garbageCollect (sat.go) compacts the arena into a fresh one when enough
// has accumulated, using flagReloced plus a forwarding reference written
// over the first post-header word.

// cref is a clause reference: a word offset into the arena.
type cref uint32

// crefUndef marks "no clause" (decision/assumption reasons).
const crefUndef = ^cref(0)

const (
	flagLearnt  = 1 << 0
	flagDeleted = 1 << 1
	flagReloced = 1 << 2
	flagExtras  = 1 << 3
	headerShift = 4
	flagMask    = 1<<headerShift - 1
)

type clauseAlloc struct {
	data   []Lit
	wasted int // words occupied by deleted clauses and shrink slack
}

// alloc appends a clause and returns its reference. lits is copied; the
// arena never aliases caller memory.
func (ca *clauseAlloc) alloc(lits []Lit, learnt bool) cref {
	r := cref(len(ca.data))
	hdr := Lit(len(lits) << headerShift)
	if learnt {
		hdr |= flagLearnt | flagExtras
	}
	ca.data = append(ca.data, hdr)
	if learnt {
		ca.data = append(ca.data, 0, 0, 0)
	}
	ca.data = append(ca.data, lits...)
	return r
}

func (ca *clauseAlloc) size(r cref) int    { return int(ca.data[r] >> headerShift) }
func (ca *clauseAlloc) learnt(r cref) bool { return ca.data[r]&flagLearnt != 0 }
func (ca *clauseAlloc) extras(r cref) bool { return ca.data[r]&flagExtras != 0 }

func (ca *clauseAlloc) deleted(r cref) bool { return ca.data[r]&flagDeleted != 0 }

// markDeleted flags the clause; the space is reclaimed at the next
// compaction.
func (ca *clauseAlloc) markDeleted(r cref) {
	if ca.data[r]&flagDeleted == 0 {
		ca.data[r] |= flagDeleted
		ca.wasted += ca.span(r)
	}
}

// demote clears the learnt flag (subsumption promoting a learnt clause to
// a problem clause); the extras words stay in place, merely ignored.
func (ca *clauseAlloc) demote(r cref) { ca.data[r] &^= flagLearnt }

// span is the total word footprint of the clause.
func (ca *clauseAlloc) span(r cref) int {
	n := 1 + ca.size(r)
	if ca.extras(r) {
		n += 3
	}
	return n
}

func (ca *clauseAlloc) litOff(r cref) cref {
	if ca.extras(r) {
		return r + 4
	}
	return r + 1
}

// lits returns the clause body as a mutable view into the arena. The view
// is invalidated by any alloc (the backing array may move), so callers
// must not hold it across clause creation.
func (ca *clauseAlloc) lits(r cref) []Lit {
	o := ca.litOff(r)
	return ca.data[o : o+cref(ca.size(r))]
}

// shrink reduces the clause to its first n literals (preprocessing writes
// the survivors into the view prefix first).
func (ca *clauseAlloc) shrink(r cref, n int) {
	old := ca.size(r)
	ca.data[r] = Lit(n<<headerShift) | ca.data[r]&flagMask
	ca.wasted += old - n
}

func (ca *clauseAlloc) lbd(r cref) int       { return int(ca.data[r+1]) }
func (ca *clauseAlloc) setLBD(r cref, v int) { ca.data[r+1] = Lit(v) }

func (ca *clauseAlloc) act(r cref) float64 {
	bits := uint64(uint32(ca.data[r+2])) | uint64(uint32(ca.data[r+3]))<<32
	return math.Float64frombits(bits)
}

func (ca *clauseAlloc) setAct(r cref, v float64) {
	bits := math.Float64bits(v)
	ca.data[r+2] = Lit(int32(uint32(bits)))
	ca.data[r+3] = Lit(int32(uint32(bits >> 32)))
}

// reloc copies the clause into `to` (once — later calls return the
// forwarding reference) and returns its new address.
func (ca *clauseAlloc) reloc(r cref, to *clauseAlloc) cref {
	if ca.data[r]&flagReloced != 0 {
		return cref(uint32(ca.data[r+1]))
	}
	flags := ca.data[r] & flagMask
	var nr cref
	if flags&flagExtras != 0 {
		lbd, act := ca.lbd(r), ca.act(r)
		nr = to.alloc(ca.lits(r), true)
		to.data[nr] = to.data[nr]&^flagMask | flags
		to.setLBD(nr, lbd)
		to.setAct(nr, act)
	} else {
		nr = to.alloc(ca.lits(r), false)
		to.data[nr] = to.data[nr]&^flagMask | flags
	}
	ca.data[r] |= flagReloced
	ca.data[r+1] = Lit(int32(uint32(nr)))
	return nr
}
