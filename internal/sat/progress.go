package sat

import "math/bits"

// NumLearntSizeBuckets bounds the learnt-clause length distribution:
// log2 buckets 0..15, with lengths past 2^15 clamped into the last.
const NumLearntSizeBuckets = 16

// learntSizeBucket maps a clause length onto its log2 bucket — the same
// bucketing the observability layer's BucketLog2 uses, inlined so the
// SAT core stays dependency-free.
func learntSizeBucket(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len64(uint64(n))
	if b >= NumLearntSizeBuckets {
		b = NumLearntSizeBuckets - 1
	}
	return b
}

// Progress is one solver heartbeat: the trajectory counters plus the
// sizes that tell a stalled check from a grinding one (trail depth,
// learnt database, clause-arena footprint).
type Progress struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	TrailDepth   int
	LearntDB     int
	ArenaBytes   int64
}

// SetProgress installs fn to fire every `every` conflicts during
// search. Passing nil fn or every <= 0 disables the hook. The callback
// runs on the solving goroutine — it must be cheap and non-blocking
// (the verification driver publishes into a lock-free ring).
func (s *Solver) SetProgress(every int64, fn func(Progress)) {
	if fn == nil || every <= 0 {
		s.progressFn, s.progressEvery, s.progressNext = nil, 0, 0
		return
	}
	s.progressFn = fn
	s.progressEvery = every
	s.progressNext = s.Conflicts + every
}

func (s *Solver) progressSample() Progress {
	return Progress{
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Restarts:     s.Restarts,
		TrailDepth:   len(s.trail),
		LearntDB:     len(s.learnts),
		ArenaBytes:   int64(len(s.ca.data)) * 4,
	}
}
