package sat

import (
	"math/rand"
	"testing"
)

func TestPreprocessSubsumption(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(c, false))
	// Freeze everything so BVE cannot hide the subsumption effect.
	for _, v := range []int{a, b, c} {
		s.FreezeVar(v)
	}
	if !s.Preprocess() {
		t.Fatal("Preprocess reported unsat")
	}
	if s.SubsumedClauses != 1 {
		t.Fatalf("SubsumedClauses = %d, want 1", s.SubsumedClauses)
	}
	if s.NumClauses() != 1 {
		t.Fatalf("NumClauses = %d, want 1", s.NumClauses())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}

func TestPreprocessSelfSubsumption(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// (a|b) and (~a|b|c): the first self-subsumes the second to (b|c).
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, false), MkLit(c, false))
	for _, v := range []int{a, b, c} {
		s.FreezeVar(v)
	}
	if !s.Preprocess() {
		t.Fatal("Preprocess reported unsat")
	}
	if s.StrengthenedClauses != 1 {
		t.Fatalf("StrengthenedClauses = %d, want 1", s.StrengthenedClauses)
	}
}

func TestPreprocessBVEAndModel(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// b is defined by a and forces c: (~a|b) (a|~b) (~b|c).
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.AddClause(MkLit(b, true), MkLit(c, false))
	s.AddClause(MkLit(a, false)) // force a true
	if !s.Preprocess() {
		t.Fatal("Preprocess reported unsat")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	// The model must cover eliminated variables too: a=1 forces b=1
	// forces c=1 in the ORIGINAL formula.
	if !s.Value(a) || !s.Value(b) || !s.Value(c) {
		t.Fatalf("model a=%v b=%v c=%v, want all true", s.Value(a), s.Value(b), s.Value(c))
	}
}

func TestPreprocessPureLiteral(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// a occurs only positively: pure-literal elimination is BVE with zero
	// resolvents. b is frozen so the clause survives until BVE looks at a.
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.FreezeVar(b)
	if !s.Preprocess() {
		t.Fatal("Preprocess reported unsat")
	}
	if s.ElimVars == 0 {
		t.Fatal("expected at least one eliminated variable")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(a) {
		t.Fatal("reconstructed model must set the pure literal true")
	}
}

func TestPreprocessRestoreOnAddClause(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.AddClause(MkLit(c, false), MkLit(b, false))
	if !s.Preprocess() {
		t.Fatal("Preprocess reported unsat")
	}
	if s.ElimVars == 0 {
		t.Skip("nothing eliminated; restore path not exercised")
	}
	// New clauses referencing eliminated variables must restore their
	// original semantics: force a, then contradict b (defined as a). The
	// restored clauses make the conflict visible — AddClause may already
	// report it, and Solve must settle on Unsat either way.
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(b, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat (a forces b)", got)
	}
}

func TestPreprocessFrozenAssumptions(t *testing.T) {
	// Assumption variables must answer differently across queries even
	// when preprocessing runs in between.
	s := New()
	s.SetPreprocess(true)
	sel := s.NewVar()
	x := s.NewVar()
	s.AddClause(MkLit(sel, true), MkLit(x, false)) // sel -> x
	s.AddClause(MkLit(sel, false), MkLit(x, true)) // ~sel -> ~x
	if got := s.Solve(MkLit(sel, false)); got != Sat {
		t.Fatalf("Solve(sel) = %v, want Sat", got)
	}
	if !s.Value(x) {
		t.Fatal("sel assumed true must force x")
	}
	if got := s.Solve(MkLit(sel, true)); got != Sat {
		t.Fatalf("Solve(~sel) = %v, want Sat", got)
	}
	if s.Value(x) {
		t.Fatal("sel assumed false must force ~x")
	}
}

// randomCNF builds a random k-SAT instance over nVars variables.
func randomCNF(rng *rand.Rand, nVars, nClauses, k int) [][]Lit {
	out := make([][]Lit, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		cl := make([]Lit, 0, k)
		used := map[int]bool{}
		for len(cl) < k {
			v := rng.Intn(nVars)
			if used[v] {
				continue
			}
			used[v] = true
			cl = append(cl, MkLit(v, rng.Intn(2) == 0))
		}
		out = append(out, cl)
	}
	return out
}

func clauseSatisfied(s *Solver, cl []Lit) bool {
	for _, l := range cl {
		if s.Value(l.Var()) != l.Neg() {
			return true
		}
	}
	return false
}

// TestPreprocessDifferentialRandom3SAT is the core property test: on random
// 3-SAT instances, preprocessing must preserve the verdict, the returned
// model must satisfy every ORIGINAL clause, and unsat cores must remain
// subsets of the negated assumptions.
func TestPreprocessDifferentialRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for iter := 0; iter < 300; iter++ {
		nVars := 5 + rng.Intn(16)
		nClauses := 5 + rng.Intn(5*nVars)
		cnf := randomCNF(rng, nVars, nClauses, 3)

		plain, prep := New(), New()
		prep.SetPreprocess(true)
		for i := 0; i < nVars; i++ {
			plain.NewVar()
			prep.NewVar()
		}
		okPlain, okPrep := true, true
		for _, cl := range cnf {
			okPlain = plain.AddClause(cl...) && okPlain
			okPrep = prep.AddClause(cl...) && okPrep
		}

		var assumptions []Lit
		if iter%3 == 0 {
			for len(assumptions) < 1+rng.Intn(3) {
				assumptions = append(assumptions, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
			}
		}

		got := prep.Solve(assumptions...)
		want := plain.Solve(assumptions...)
		if got != want {
			t.Fatalf("iter %d: preprocess verdict %v, plain %v (vars=%d clauses=%d assume=%v)",
				iter, got, want, nVars, nClauses, assumptions)
		}
		switch got {
		case Sat:
			for ci, cl := range cnf {
				if !clauseSatisfied(prep, cl) {
					t.Fatalf("iter %d: reconstructed model violates original clause %d: %v",
						iter, ci, cl)
				}
			}
			for _, a := range assumptions {
				if prep.Value(a.Var()) == a.Neg() {
					t.Fatalf("iter %d: model violates assumption %v", iter, a)
				}
			}
		case Unsat:
			core := prep.Conflict()
			for _, l := range core {
				found := false
				for _, a := range assumptions {
					if l == a.Not() {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("iter %d: core literal %v is not a negated assumption %v",
						iter, l, assumptions)
				}
			}
		}
	}
}

// TestPreprocessIncrementalSequence interleaves clause additions and
// assumption queries on a single long-lived pair of solvers, which is the
// access pattern of the incremental verification engine.
func TestPreprocessIncrementalSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		nVars := 8 + rng.Intn(10)
		plain, prep := New(), New()
		prep.SetPreprocess(true)
		for i := 0; i < nVars; i++ {
			plain.NewVar()
			prep.NewVar()
		}
		for step := 0; step < 6; step++ {
			for _, cl := range randomCNF(rng, nVars, 2+rng.Intn(3*nVars), 3) {
				plain.AddClause(cl...)
				prep.AddClause(cl...)
			}
			var assumptions []Lit
			for len(assumptions) < rng.Intn(3) {
				assumptions = append(assumptions, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
			}
			got, want := prep.Solve(assumptions...), plain.Solve(assumptions...)
			if got != want {
				t.Fatalf("round %d step %d: preprocess %v, plain %v", round, step, got, want)
			}
			if want == Unsat && len(assumptions) == 0 {
				break // both permanently unsat
			}
		}
	}
}

func TestPreprocessStatsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New()
	s.SetPreprocess(true)
	const nVars = 30
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, cl := range randomCNF(rng, nVars, 120, 3) {
		s.AddClause(cl...)
	}
	s.Solve()
	if s.ElimVars == 0 && s.SubsumedClauses == 0 && s.StrengthenedClauses == 0 {
		t.Fatal("preprocessing ran but recorded no work in any stat")
	}
}
