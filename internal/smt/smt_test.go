package smt

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	c := NewCtx()
	a := c.BV(5, 8)
	b := c.BV(3, 8)
	if got := c.BVAdd(a, b); !got.IsConst() || got.ConstUint64() != 8 {
		t.Fatalf("5+3 = %v", got)
	}
	if got := c.BVSub(a, b); got.ConstUint64() != 2 {
		t.Fatalf("5-3 = %v", got)
	}
	if got := c.BVSub(b, a); got.ConstUint64() != 254 {
		t.Fatalf("3-5 mod 256 = %v", got)
	}
	if got := c.BVMul(a, b); got.ConstUint64() != 15 {
		t.Fatalf("5*3 = %v", got)
	}
	if got := c.BVAnd(a, b); got.ConstUint64() != 1 {
		t.Fatalf("5&3 = %v", got)
	}
	if got := c.BVShl(a, c.BV(2, 8)); got.ConstUint64() != 20 {
		t.Fatalf("5<<2 = %v", got)
	}
	if got := c.Eq(a, a); got != c.True() {
		t.Fatalf("a==a should fold to true")
	}
	if got := c.Ult(b, a); got != c.True() {
		t.Fatalf("3<5 should fold to true")
	}
	if got := c.Extract(c.BV(0xAB, 8), 7, 4); got.ConstUint64() != 0xA {
		t.Fatalf("extract hi nibble = %v", got)
	}
	if got := c.Concat(c.BV(0xA, 4), c.BV(0xB, 4)); got.ConstUint64() != 0xAB {
		t.Fatalf("concat = %v", got)
	}
}

func TestHashConsing(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	if c.Var("x", 8) != x {
		t.Fatal("same var interned twice")
	}
	if c.BVAdd(x, y) != c.BVAdd(y, x) {
		t.Fatal("commutative op should be canonicalized")
	}
	if c.Not(c.Not(c.Eq(x, y))) != c.Eq(x, y) {
		t.Fatal("double negation should cancel")
	}
}

func TestIdentities(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 16)
	zero := c.BV(0, 16)
	ones := c.BV(0xFFFF, 16)
	if c.BVAnd(x, zero) != zero {
		t.Fatal("x&0 != 0")
	}
	if c.BVAnd(x, ones) != x {
		t.Fatal("x&ones != x")
	}
	if c.BVOr(x, zero) != x {
		t.Fatal("x|0 != x")
	}
	if c.BVAdd(x, zero) != x {
		t.Fatal("x+0 != x")
	}
	if c.BVXor(x, x).ConstUint64() != 0 {
		t.Fatal("x^x != 0")
	}
	if c.BVNot(c.BVNot(x)) != x {
		t.Fatal("~~x != x")
	}
	if c.Ite(c.True(), x, zero) != x {
		t.Fatal("ite(true,x,0) != x")
	}
}

func TestSolveSimpleEquation(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 8)
	// x + 3 == 10  =>  x == 7
	s.Assert(c.Eq(c.BVAdd(x, c.BV(3, 8)), c.BV(10, 8)))
	if got := s.Check(); got != Sat {
		t.Fatalf("Check = %v", got)
	}
	if v := s.Model().Uint64(x); v != 7 {
		t.Fatalf("x = %d, want 7", v)
	}
}

func TestSolveUnsat(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 8)
	s.Assert(c.Ult(x, c.BV(5, 8)))
	s.Assert(c.Ugt(x, c.BV(10, 8)))
	if got := s.Check(); got != Unsat {
		t.Fatalf("Check = %v, want Unsat", got)
	}
}

func TestSolveOverflowWraps(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 8)
	// x + 1 == 0 has solution x == 255.
	s.Assert(c.Eq(c.BVAdd(x, c.BV(1, 8)), c.BV(0, 8)))
	if got := s.Check(); got != Sat {
		t.Fatalf("Check = %v", got)
	}
	if v := s.Model().Uint64(x); v != 255 {
		t.Fatalf("x = %d, want 255", v)
	}
}

func TestAssumptions(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 4)
	s.Assert(c.Ult(x, c.BV(8, 4)))
	big7 := c.Eq(x, c.BV(7, 4))
	small := c.Ult(x, c.BV(3, 4))
	if s.Check(big7) != Sat {
		t.Fatal("x==7 should be sat")
	}
	if s.Check(big7, small) != Unsat {
		t.Fatal("x==7 && x<3 should be unsat")
	}
	if s.Check(small) != Sat {
		t.Fatal("x<3 should be sat after unsat check (incrementality)")
	}
}

func TestWideBitvectors(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 128)
	v := new(big.Int).Lsh(big.NewInt(1), 100) // 2^100
	s.Assert(c.Eq(x, c.BVBig(v, 128)))
	if s.Check() != Sat {
		t.Fatal("wide equality should be sat")
	}
	if got := s.Model().BV(x); got.Cmp(v) != 0 {
		t.Fatalf("x = %v, want 2^100", got)
	}
}

func TestIteAndComparisons(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 8)
	y := c.Ite(c.Ult(x, c.BV(10, 8)), c.BV(1, 8), c.BV(2, 8))
	s.Assert(c.Eq(y, c.BV(2, 8)))
	if s.Check() != Sat {
		t.Fatal("should be sat")
	}
	if v := s.Model().Uint64(x); v < 10 {
		t.Fatalf("x = %d should be >= 10", v)
	}
}

// randTerm builds a random bit-vector term over the given variables.
func randTerm(c *Ctx, rng *rand.Rand, vars []*Term, depth int) *Term {
	w := vars[0].Width
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return c.BV(rng.Uint64(), w)
	}
	a := randTerm(c, rng, vars, depth-1)
	b := randTerm(c, rng, vars, depth-1)
	switch rng.Intn(10) {
	case 0:
		return c.BVAdd(a, b)
	case 1:
		return c.BVSub(a, b)
	case 2:
		return c.BVAnd(a, b)
	case 3:
		return c.BVOr(a, b)
	case 4:
		return c.BVXor(a, b)
	case 5:
		return c.BVNot(a)
	case 6:
		return c.BVMul(a, b)
	case 7:
		return c.Ite(c.Ult(a, b), a, b)
	case 8:
		return c.BVShl(a, c.BV(uint64(rng.Intn(w)), w))
	default:
		return c.BVLshr(a, c.BV(uint64(rng.Intn(w)), w))
	}
}

// TestBlasterAgainstEvaluator is the core soundness property: for random
// terms t and random concrete inputs, the bit-blasted formula constrained
// to those inputs must force t to its evaluator value.
func TestBlasterAgainstEvaluator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCtx()
		w := []int{1, 4, 8, 16}[rng.Intn(4)]
		x := c.Var("x", w)
		y := c.Var("y", w)
		term := randTerm(c, rng, []*Term{x, y}, 3)

		env := NewEnv()
		xv := new(big.Int).SetUint64(rng.Uint64())
		yv := new(big.Int).SetUint64(rng.Uint64())
		env.BV["x"] = normConst(xv, w)
		env.BV["y"] = normConst(yv, w)
		want := EvalBV(term, env)

		s := NewSolver(c)
		s.Assert(c.Eq(x, c.BVBig(xv, w)))
		s.Assert(c.Eq(y, c.BVBig(yv, w)))
		// The term must equal its evaluated value...
		if s.Check(c.Eq(term, c.BVBig(want, w))) != Sat {
			return false
		}
		// ...and cannot differ from it.
		return s.Check(c.Neq(term, c.BVBig(want, w))) == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolOpsAgainstEvaluator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCtx()
		x := c.Var("x", 8)
		y := c.Var("y", 8)
		a := randTerm(c, rng, []*Term{x, y}, 2)
		b := randTerm(c, rng, []*Term{x, y}, 2)
		var p *Term
		switch rng.Intn(5) {
		case 0:
			p = c.Eq(a, b)
		case 1:
			p = c.Ult(a, b)
		case 2:
			p = c.Ule(a, b)
		case 3:
			p = c.And(c.Eq(a, b), c.Ult(a, b)) // always false, still valid
		default:
			p = c.Or(c.Ule(a, b), c.Ugt(a, b)) // tautology
		}
		env := NewEnv()
		env.BV["x"] = normConst(new(big.Int).SetUint64(rng.Uint64()), 8)
		env.BV["y"] = normConst(new(big.Int).SetUint64(rng.Uint64()), 8)
		want := EvalBool(p, env)

		s := NewSolver(c)
		s.Assert(c.Eq(x, c.BVBig(env.BV["x"], 8)))
		s.Assert(c.Eq(y, c.BVBig(env.BV["y"], 8)))
		got := s.Check(p)
		if want {
			return got == Sat
		}
		return got == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMaximize(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 8)
	// Hard: x < 10. Soft: x==3, x==4, x<5 — at most two can hold (x==3&x<5
	// or x==4&x<5).
	soft := []*Term{
		c.Eq(x, c.BV(3, 8)),
		c.Eq(x, c.BV(4, 8)),
		c.Ult(x, c.BV(5, 8)),
	}
	s.Assert(c.Ult(x, c.BV(10, 8)))
	m, n, st := s.Maximize(soft)
	if st != Sat {
		t.Fatalf("Maximize status = %v, want Sat", st)
	}
	if n != 2 {
		t.Fatalf("Maximize satisfied %d soft, want 2", n)
	}
	v := m.Uint64(x)
	if v != 3 && v != 4 {
		t.Fatalf("x = %d, want 3 or 4", v)
	}
}

func TestMaximizeAllSatisfiable(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 8)
	soft := []*Term{c.Ult(x, c.BV(100, 8)), c.Ugt(x, c.BV(50, 8))}
	_, n, st := s.Maximize(soft)
	if st != Sat || n != 2 {
		t.Fatalf("Maximize = (%d, %v), want (2, Sat)", n, st)
	}
}

func TestMaximizeHardUnsat(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 8)
	s.Assert(c.Ult(x, c.BV(5, 8)))
	s.Assert(c.Ugt(x, c.BV(5, 8)))
	if _, _, st := s.Maximize([]*Term{c.True()}); st != Unsat {
		t.Fatalf("Maximize status = %v, want Unsat (not Unknown: no budget involved)", st)
	}
}

func TestUnsatAssumptions(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 8)
	assumptions := []*Term{
		c.Eq(x, c.BV(1, 8)),
		c.Eq(x, c.BV(2, 8)),
		c.Ult(x, c.BV(200, 8)),
	}
	if s.Check(assumptions...) != Unsat {
		t.Fatal("conflicting assumptions should be unsat")
	}
	core := s.UnsatAssumptions(assumptions)
	if len(core) == 0 {
		t.Fatal("empty core")
	}
	for _, i := range core {
		if i == 2 {
			t.Fatalf("core %v contains irrelevant assumption index 2", core)
		}
	}
}

func TestVarsAndTermSize(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	tm := c.BVAdd(c.BVAnd(x, y), x)
	vars := Vars(tm)
	if len(vars) != 2 || vars[0].Name != "x" || vars[1].Name != "y" {
		t.Fatalf("Vars = %v", vars)
	}
	if n := TermSize(tm); n != 4 { // x, y, x&y, (x&y)+x
		t.Fatalf("TermSize = %d, want 4", n)
	}
}

func TestResize(t *testing.T) {
	c := NewCtx()
	x := c.BV(0xAB, 8)
	if got := c.Resize(x, 16); got.ConstUint64() != 0xAB || got.Width != 16 {
		t.Fatalf("widen = %v", got)
	}
	if got := c.Resize(x, 4); got.ConstUint64() != 0xB || got.Width != 4 {
		t.Fatalf("narrow = %v", got)
	}
	if got := c.Resize(x, 8); got != x {
		t.Fatal("same-width resize should be identity")
	}
}

func TestShiftBySymbolicAmount(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	x := c.Var("x", 8)
	sh := c.Var("sh", 8)
	// x == 1 && (x << sh) == 8  =>  sh == 3
	s.Assert(c.Eq(x, c.BV(1, 8)))
	s.Assert(c.Eq(c.BVShl(x, sh), c.BV(8, 8)))
	if s.Check() != Sat {
		t.Fatal("should be sat")
	}
	if v := s.Model().Uint64(sh); v != 3 {
		t.Fatalf("sh = %d, want 3", v)
	}
	// Oversized shift yields zero.
	s2 := NewSolver(c)
	s2.Assert(c.Eq(sh, c.BV(200, 8)))
	s2.Assert(c.Neq(c.BVShl(x, sh), c.BV(0, 8)))
	if s2.Check() != Unsat {
		t.Fatal("shift by >= width must be zero")
	}
}

func TestEvalBoolIteAndImplies(t *testing.T) {
	c := NewCtx()
	p := c.BoolVar("p")
	q := c.BoolVar("q")
	env := NewEnv()
	env.Bool["p"] = true
	env.Bool["q"] = false
	if EvalBool(c.Implies(p, q), env) {
		t.Fatal("true->false should be false")
	}
	if !EvalBool(c.BoolIte(p, c.True(), q), env) {
		t.Fatal("ite(true, true, q) should be true")
	}
	if !EvalBool(c.Iff(q, c.False()), env) {
		t.Fatal("q<->false should be true when q=false")
	}
}

// TestQuickMaximizeOptimal checks MaxSAT optimality against brute force:
// over a small domain, Maximize must satisfy exactly the maximum number of
// soft constraints achievable.
func TestQuickMaximizeOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCtx()
		s := NewSolver(c)
		x := c.Var("x", 4)
		// Hard: a random interval constraint.
		lo := uint64(rng.Intn(8))
		hi := lo + uint64(rng.Intn(8))
		s.Assert(c.Uge(x, c.BV(lo, 4)))
		s.Assert(c.Ule(x, c.BV(hi, 4)))
		// Soft: random point and interval predicates.
		type pred struct{ kind, a, b uint64 }
		var preds []pred
		var soft []*Term
		for i := 0; i < 1+rng.Intn(6); i++ {
			p := pred{kind: uint64(rng.Intn(2)), a: uint64(rng.Intn(16)), b: uint64(rng.Intn(16))}
			preds = append(preds, p)
			if p.kind == 0 {
				soft = append(soft, c.Eq(x, c.BV(p.a, 4)))
			} else {
				soft = append(soft, c.Ule(c.BV(min64(p.a, p.b), 4), x))
			}
		}
		_, got, st := s.Maximize(soft)
		if st != Sat {
			return lo > hi // hard unsat only if interval empty (cannot happen here)
		}
		// Brute force the optimum.
		best := -1
		for v := lo; v <= hi && v < 16; v++ {
			n := 0
			for _, p := range preds {
				if p.kind == 0 {
					if v == p.a {
						n++
					}
				} else if min64(p.a, p.b) <= v {
					n++
				}
			}
			if n > best {
				best = n
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// TestSolverStats pins the instrumentation snapshot: blasting a fresh
// formula misses the per-term caches, emits Tseitin clauses, and the
// snapshot agrees with the solver's own clause/variable accessors.
func TestSolverStats(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	s := NewSolver(c)
	sum := c.BVAdd(x, y)
	s.Assert(c.Eq(sum, c.BV(10, 8)))
	// Re-use of sum's bits in a second assertion must hit the blast cache.
	s.Assert(c.Ult(sum, c.BV(200, 8)))
	if got := s.Check(); got != Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	ss := s.SolverStats()
	if ss.TseitinClauses == 0 {
		t.Error("TseitinClauses = 0, want > 0")
	}
	if ss.BlastMisses == 0 {
		t.Error("BlastMisses = 0, want > 0 (fresh terms)")
	}
	if ss.BlastHits == 0 {
		t.Error("BlastHits = 0, want > 0 (sum blasted once, used twice)")
	}
	if ss.Clauses != s.NumClauses() {
		t.Errorf("Clauses = %d, NumClauses = %d", ss.Clauses, s.NumClauses())
	}
	if ss.SATVars != s.NumSATVars() {
		t.Errorf("SATVars = %d, NumSATVars = %d", ss.SATVars, s.NumSATVars())
	}
	if ss.TseitinClauses < int64(ss.Clauses)-1 {
		// Emitted >= retained (AddClause drops satisfied/tautological
		// clauses; the blaster's initial true-literal unit is uncounted).
		t.Errorf("TseitinClauses %d < retained %d - 1", ss.TseitinClauses, ss.Clauses)
	}
	dec, conf, prop := s.Stats()
	if ss.Decisions != dec || ss.Conflicts != conf || ss.Propagations != prop {
		t.Errorf("SolverStats disagrees with Stats(): %v vs (%d,%d,%d)", ss, dec, conf, prop)
	}
}

// TestInternStats: interning the same term twice is one miss then one
// hit; the counters are cumulative on the context.
func TestInternStats(t *testing.T) {
	c := NewCtx()
	h0, m0, f0 := c.InternStats()
	if f0 != 0 {
		t.Errorf("frozenLocks = %d before any sharing, want 0", f0)
	}
	x := c.Var("x", 8)
	t1 := c.BVAdd(x, c.BV(1, 8))
	t2 := c.BVAdd(x, c.BV(1, 8))
	if t1 != t2 {
		t.Fatal("hash-consing broken")
	}
	h1, m1, _ := c.InternStats()
	if m1 <= m0 {
		t.Errorf("intern misses did not grow: %d -> %d", m0, m1)
	}
	if h1 <= h0 {
		t.Errorf("intern hits did not grow (t2 should hit): %d -> %d", h0, h1)
	}
}

// TestMaximizeBudgetUnknown: exhausting the conflict budget during the
// initial hard check must surface as Unknown, not as Unsat (the bug was
// conflating "ran out of budget" with "infeasible").
func TestMaximizeBudgetUnknown(t *testing.T) {
	c := NewCtx()
	s := NewSolver(c)
	// Pigeonhole (9 pigeons, 8 holes) over bool vars: hard-unsat, but any
	// tiny conflict budget runs out long before unsat is established. The
	// fix under test: that exhaustion must surface as Unknown, not Unsat.
	const holes = 8
	p := func(i, j int) *Term { return c.BoolVar("p" + itoa(i) + "_" + itoa(j)) }
	for i := 0; i <= holes; i++ {
		inHole := c.False()
		for j := 0; j < holes; j++ {
			inHole = c.Or(inHole, p(i, j))
		}
		s.Assert(inHole)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i <= holes; i++ {
			for k := i + 1; k <= holes; k++ {
				s.Assert(c.Not(c.And(p(i, j), p(k, j))))
			}
		}
	}
	s.SetBudget(10)
	if _, _, st := s.Maximize(nil); st != Unknown {
		t.Fatalf("Maximize with budget 10 = %v, want Unknown", st)
	}
	// With the budget lifted the same solver proves hard-unsat.
	s.SetBudget(-1)
	if _, _, st := s.Maximize(nil); st != Unsat {
		t.Fatalf("Maximize without budget = %v, want Unsat", st)
	}
}

// TestDeepModelIterative: Model() and Vars() must survive terms tens of
// thousands of nodes deep (parser-state chains produce these). The chain
// is blasted incrementally via Indicator so the blaster's per-term cache
// keeps its own recursion shallow; the model walk then traverses the full
// chain depth.
func TestDeepModelIterative(t *testing.T) {
	const depth = 30_000
	c := NewCtx()
	s := NewSolver(c)
	x := c.BoolVar("x")
	chain := x
	for i := 0; i < depth; i++ {
		cond := c.BoolVar("b" + itoa(i%7))
		chain = c.BoolIte(cond, chain, c.Not(chain))
		s.Indicator(chain) // incremental blast: cache depth stays O(1)
	}
	s.Assert(chain)
	if st := s.Check(); st != Sat {
		t.Fatalf("Check = %v, want Sat", st)
	}
	m := s.Model()
	if !m.Bool(chain) && m.Bool(chain) {
		t.Fatal("unreachable")
	}
	// The model must actually satisfy the asserted chain.
	if !EvalBool(chain, m.Env()) {
		t.Fatal("model does not satisfy the deep chain")
	}
	if n := len(Vars(chain)); n != 8 {
		t.Fatalf("Vars over deep chain = %d names, want 8 (x, b0..b6)", n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
