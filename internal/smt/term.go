// Package smt implements the quantifier-free bit-vector (QF_BV) theory
// layer of Aquila's verification stack: a hash-consed term language with
// constant folding, a Tseitin bit-blaster targeting the CDCL solver in
// package sat, model extraction, and an assumption-based MaxSAT procedure
// used by bug localization (§5 of the paper).
//
// The paper uses Z3; this package is the substitution documented in
// DESIGN.md. Verdicts (sat/unsat and models) are interchangeable with any
// sound and complete QF_BV solver.
package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"
)

// Op identifies a term constructor.
type Op uint8

// Term operators. BV operators produce bit-vector terms; the remainder
// produce boolean terms.
const (
	OpBVConst Op = iota
	OpBVVar
	OpBVNot
	OpBVNeg
	OpBVAnd
	OpBVOr
	OpBVXor
	OpBVAdd
	OpBVSub
	OpBVMul
	OpBVShl
	OpBVLshr
	OpBVConcat  // args[0] is high bits, args[1] is low bits
	OpBVExtract // bits Hi..Lo of args[0]
	OpBVIte     // args[0] bool, args[1], args[2] bv

	OpBoolConst
	OpBoolVar
	OpNot
	OpAnd
	OpOr
	OpImplies
	OpIff
	OpEq  // bv equality
	OpUlt // unsigned less-than
	OpUle // unsigned less-or-equal
	OpBoolIte
)

var opNames = map[Op]string{
	OpBVConst: "const", OpBVVar: "var", OpBVNot: "bvnot", OpBVNeg: "bvneg",
	OpBVAnd: "bvand", OpBVOr: "bvor", OpBVXor: "bvxor", OpBVAdd: "bvadd",
	OpBVSub: "bvsub", OpBVMul: "bvmul", OpBVShl: "bvshl", OpBVLshr: "bvlshr",
	OpBVConcat: "concat", OpBVExtract: "extract", OpBVIte: "bvite",
	OpBoolConst: "bool", OpBoolVar: "boolvar", OpNot: "not", OpAnd: "and",
	OpOr: "or", OpImplies: "=>", OpIff: "<=>", OpEq: "=", OpUlt: "bvult",
	OpUle: "bvule", OpBoolIte: "ite",
}

// Term is an immutable, hash-consed SMT term. Boolean terms have Width 0;
// bit-vector terms have Width >= 1. Terms must be created through a Ctx;
// pointer equality coincides with structural equality within one Ctx.
type Term struct {
	ID    int
	Op    Op
	Width int // 0 for boolean terms
	Args  []*Term
	Name  string   // variables
	Val   *big.Int // constants (normalized into [0, 2^Width))
	Hi    int      // extract upper bit (inclusive)
	Lo    int      // extract lower bit (inclusive)
}

// IsBool reports whether the term is boolean-sorted.
func (t *Term) IsBool() bool { return t.Width == 0 }

// IsConst reports whether the term is a constant.
func (t *Term) IsConst() bool { return t.Op == OpBVConst || t.Op == OpBoolConst }

// ConstUint64 returns the value of a bit-vector constant as uint64.
// It panics on non-constants or widths above 64.
func (t *Term) ConstUint64() uint64 {
	if t.Op != OpBVConst {
		panic("smt: ConstUint64 on non-constant")
	}
	return t.Val.Uint64()
}

// ConstBool returns the value of a boolean constant.
func (t *Term) ConstBool() bool {
	if t.Op != OpBoolConst {
		panic("smt: ConstBool on non-constant")
	}
	return t.Val.Sign() != 0
}

// String renders the term in SMT-LIB-flavoured prefix form.
func (t *Term) String() string {
	switch t.Op {
	case OpBVConst:
		return fmt.Sprintf("#x%s[%d]", t.Val.Text(16), t.Width)
	case OpBoolConst:
		if t.ConstBool() {
			return "true"
		}
		return "false"
	case OpBVVar, OpBoolVar:
		return t.Name
	case OpBVExtract:
		return fmt.Sprintf("(extract %d %d %s)", t.Hi, t.Lo, t.Args[0])
	}
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(opNames[t.Op])
	for _, a := range t.Args {
		b.WriteByte(' ')
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Ctx owns a hash-consing table; all terms used together must come from the
// same Ctx. A Ctx starts out single-goroutine (no synchronization on the
// hot path); after Freeze it may be shared across goroutines — existing
// terms are immutable and read freely, and any residual interning is
// serialized through a mutex.
type Ctx struct {
	table  map[termKey]*Term
	nextID int
	true_  *Term
	false_ *Term

	// Size accounting, used by the benchmark harness to report formula
	// sizes the way the paper reports memory footprints.
	created int

	// shared is set by Freeze; from then on intern and NumTerms take mu.
	// It is written strictly before the Ctx is handed to other goroutines.
	shared bool
	mu     sync.Mutex

	// Interning instrumentation. internHits/internMisses count table
	// lookups (misses == created); frozenLocks counts mu acquisitions
	// after Freeze — the contention proxy for the parallel engine. Plain
	// fields mutated single-goroutine before Freeze and under mu after;
	// InternStats takes mu when shared, mirroring NumTerms.
	internHits   int64
	internMisses int64
	frozenLocks  int64
}

// InternStats reports hash-consing hits and misses and the number of
// frozen-context mutex acquisitions so far.
func (c *Ctx) InternStats() (hits, misses, frozenLocks int64) {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.internHits, c.internMisses, c.frozenLocks
}

// termKey is the comparable hash-consing key: operator, sort, slice bounds,
// variable name, constant value, and argument IDs. No term has more than
// three arguments (ite), so the IDs are inlined; absent slots are -1.
// Constants are normalized into [0, 2^Width), so values up to 64 bits fit
// valLo and wider ones fall back to a hex rendering — keying stays
// allocation-free for every term the encoder produces in practice.
type termKey struct {
	op         Op
	width      int32
	hi, lo     int32
	name       string
	hasVal     bool
	valLo      uint64
	valWide    string
	a0, a1, a2 int32
}

func makeKey(t *Term) termKey {
	k := termKey{
		op: t.Op, width: int32(t.Width), hi: int32(t.Hi), lo: int32(t.Lo),
		name: t.Name, a0: -1, a1: -1, a2: -1,
	}
	if t.Val != nil {
		k.hasVal = true
		if t.Val.BitLen() <= 64 {
			k.valLo = t.Val.Uint64()
		} else {
			k.valWide = t.Val.Text(16)
		}
	}
	switch len(t.Args) {
	case 3:
		k.a2 = int32(t.Args[2].ID)
		fallthrough
	case 2:
		k.a1 = int32(t.Args[1].ID)
		fallthrough
	case 1:
		k.a0 = int32(t.Args[0].ID)
	}
	return k
}

// NewCtx returns an empty term context.
func NewCtx() *Ctx {
	c := &Ctx{table: make(map[termKey]*Term)}
	c.true_ = c.intern(&Term{Op: OpBoolConst, Val: big.NewInt(1)})
	c.false_ = c.intern(&Term{Op: OpBoolConst, Val: big.NewInt(0)})
	return c
}

// Freeze marks the context as shared across goroutines. Term construction
// remains possible (serialized through an internal mutex), but the intended
// pattern is: encode everything, Freeze, then fan out read-only consumers
// (blasting, solving, model evaluation) — none of which create terms.
// Freeze must be called before the Ctx is handed to other goroutines;
// there is no Unfreeze.
func (c *Ctx) Freeze() { c.shared = true }

// NumTerms returns the number of distinct terms created in this context —
// a proxy for formula memory footprint.
func (c *Ctx) NumTerms() int {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.frozenLocks++
	}
	return c.created
}

func (c *Ctx) intern(t *Term) *Term {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.frozenLocks++
	}
	k := makeKey(t)
	if got, ok := c.table[k]; ok {
		c.internHits++
		return got
	}
	c.internMisses++
	t.ID = c.nextID
	c.nextID++
	c.created++
	c.table[k] = t
	return t
}

// maskCache holds 2^w - 1 for small widths; the masks are read-only (every
// operation on them copies first), so sharing across goroutines is safe.
var maskCache = func() []*big.Int {
	masks := make([]*big.Int, 257)
	for w := range masks {
		m := new(big.Int).Lsh(big.NewInt(1), uint(w))
		masks[w] = m.Sub(m, big.NewInt(1))
	}
	return masks
}()

// maskFor returns 2^width - 1. The result is shared and must not be
// mutated.
func maskFor(width int) *big.Int {
	if width >= 0 && width < len(maskCache) {
		return maskCache[width]
	}
	m := new(big.Int).Lsh(big.NewInt(1), uint(width))
	return m.Sub(m, big.NewInt(1))
}

func normConst(v *big.Int, width int) *big.Int {
	out := new(big.Int).And(v, maskFor(width))
	return out
}

// ---- boolean constructors ----

// True returns the boolean constant true.
func (c *Ctx) True() *Term { return c.true_ }

// False returns the boolean constant false.
func (c *Ctx) False() *Term { return c.false_ }

// Bool returns the boolean constant for v.
func (c *Ctx) Bool(v bool) *Term {
	if v {
		return c.true_
	}
	return c.false_
}

// BoolVar returns the boolean variable with the given name.
func (c *Ctx) BoolVar(name string) *Term {
	return c.intern(&Term{Op: OpBoolVar, Name: name})
}

// Not returns the boolean negation of a.
func (c *Ctx) Not(a *Term) *Term {
	mustBool("Not", a)
	if a.Op == OpBoolConst {
		return c.Bool(!a.ConstBool())
	}
	if a.Op == OpNot {
		return a.Args[0]
	}
	return c.intern(&Term{Op: OpNot, Args: []*Term{a}})
}

// And returns the conjunction of the arguments (true when empty).
func (c *Ctx) And(args ...*Term) *Term {
	flat := make([]*Term, 0, len(args))
	for _, a := range args {
		mustBool("And", a)
		if a.Op == OpBoolConst {
			if !a.ConstBool() {
				return c.false_
			}
			continue
		}
		flat = append(flat, a)
	}
	switch len(flat) {
	case 0:
		return c.true_
	case 1:
		return flat[0]
	}
	// Balanced binary reduction keeps blasting depth logarithmic.
	for len(flat) > 1 {
		var next []*Term
		for i := 0; i < len(flat); i += 2 {
			if i+1 == len(flat) {
				next = append(next, flat[i])
			} else {
				next = append(next, c.and2(flat[i], flat[i+1]))
			}
		}
		flat = next
	}
	return flat[0]
}

func (c *Ctx) and2(a, b *Term) *Term {
	if a == b {
		return a
	}
	if a == c.Not(b) {
		return c.false_
	}
	if a.ID > b.ID {
		a, b = b, a
	}
	return c.intern(&Term{Op: OpAnd, Args: []*Term{a, b}})
}

// Or returns the disjunction of the arguments (false when empty).
func (c *Ctx) Or(args ...*Term) *Term {
	neg := make([]*Term, len(args))
	for i, a := range args {
		mustBool("Or", a)
		neg[i] = c.Not(a)
	}
	return c.Not(c.And(neg...))
}

// Implies returns a -> b.
func (c *Ctx) Implies(a, b *Term) *Term { return c.Or(c.Not(a), b) }

// Iff returns a <-> b.
func (c *Ctx) Iff(a, b *Term) *Term {
	mustBool("Iff", a)
	mustBool("Iff", b)
	if a == b {
		return c.true_
	}
	if a.Op == OpBoolConst {
		if a.ConstBool() {
			return b
		}
		return c.Not(b)
	}
	if b.Op == OpBoolConst {
		if b.ConstBool() {
			return a
		}
		return c.Not(a)
	}
	if a.ID > b.ID {
		a, b = b, a
	}
	return c.intern(&Term{Op: OpIff, Args: []*Term{a, b}})
}

// BoolIte returns if cond then a else b over booleans.
func (c *Ctx) BoolIte(cond, a, b *Term) *Term {
	mustBool("BoolIte", cond)
	mustBool("BoolIte", a)
	mustBool("BoolIte", b)
	if cond.Op == OpBoolConst {
		if cond.ConstBool() {
			return a
		}
		return b
	}
	if a == b {
		return a
	}
	return c.intern(&Term{Op: OpBoolIte, Args: []*Term{cond, a, b}})
}

// ---- bit-vector constructors ----

// BV returns the bit-vector constant v of the given width.
func (c *Ctx) BV(v uint64, width int) *Term {
	return c.BVBig(new(big.Int).SetUint64(v), width)
}

// BVBig returns the bit-vector constant v (mod 2^width) of the given width.
func (c *Ctx) BVBig(v *big.Int, width int) *Term {
	if width <= 0 {
		panic("smt: BV width must be positive")
	}
	return c.intern(&Term{Op: OpBVConst, Width: width, Val: normConst(v, width)})
}

// Var returns the bit-vector variable with the given name and width.
func (c *Ctx) Var(name string, width int) *Term {
	if width <= 0 {
		panic("smt: Var width must be positive")
	}
	return c.intern(&Term{Op: OpBVVar, Width: width, Name: name})
}

func mustBool(op string, t *Term) {
	if !t.IsBool() {
		panic("smt: " + op + " requires boolean operand, got width " +
			fmt.Sprint(t.Width))
	}
}

func mustSameWidth(op string, a, b *Term) {
	if a.IsBool() || b.IsBool() || a.Width != b.Width {
		panic(fmt.Sprintf("smt: %s requires equal-width bit-vectors (got %d, %d)",
			op, a.Width, b.Width))
	}
}

func (c *Ctx) bvBin(op Op, a, b *Term, fold func(x, y *big.Int, w int) *big.Int, commutative bool) *Term {
	mustSameWidth(opNames[op], a, b)
	if a.Op == OpBVConst && b.Op == OpBVConst {
		return c.BVBig(fold(a.Val, b.Val, a.Width), a.Width)
	}
	if commutative && a.ID > b.ID {
		a, b = b, a
	}
	return c.intern(&Term{Op: op, Width: a.Width, Args: []*Term{a, b}})
}

// BVNot returns the bitwise complement of a.
func (c *Ctx) BVNot(a *Term) *Term {
	if a.Op == OpBVConst {
		v := new(big.Int).Xor(a.Val, maskFor(a.Width))
		return c.BVBig(v, a.Width)
	}
	if a.Op == OpBVNot {
		return a.Args[0]
	}
	return c.intern(&Term{Op: OpBVNot, Width: a.Width, Args: []*Term{a}})
}

// BVNeg returns the two's-complement negation of a.
func (c *Ctx) BVNeg(a *Term) *Term {
	if a.Op == OpBVConst {
		return c.BVBig(new(big.Int).Neg(a.Val), a.Width)
	}
	return c.intern(&Term{Op: OpBVNeg, Width: a.Width, Args: []*Term{a}})
}

// BVAnd returns the bitwise AND of a and b.
func (c *Ctx) BVAnd(a, b *Term) *Term {
	if b.Op == OpBVConst && a.Op != OpBVConst {
		a, b = b, a
	}
	if a.Op == OpBVConst {
		if a.Val.Sign() == 0 {
			return a
		}
		if a.Val.Cmp(maskFor(a.Width)) == 0 {
			return b
		}
	}
	if a == b {
		return a
	}
	return c.bvBin(OpBVAnd, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).And(x, y)
	}, true)
}

// BVOr returns the bitwise OR of a and b.
func (c *Ctx) BVOr(a, b *Term) *Term {
	if b.Op == OpBVConst && a.Op != OpBVConst {
		a, b = b, a
	}
	if a.Op == OpBVConst {
		if a.Val.Sign() == 0 {
			return b
		}
		if a.Val.Cmp(maskFor(a.Width)) == 0 {
			return a
		}
	}
	if a == b {
		return a
	}
	return c.bvBin(OpBVOr, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Or(x, y)
	}, true)
}

// BVXor returns the bitwise XOR of a and b.
func (c *Ctx) BVXor(a, b *Term) *Term {
	if a == b {
		return c.BV(0, a.Width)
	}
	return c.bvBin(OpBVXor, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Xor(x, y)
	}, true)
}

// BVAdd returns a + b (mod 2^width).
func (c *Ctx) BVAdd(a, b *Term) *Term {
	if b.Op == OpBVConst && b.Val.Sign() == 0 {
		return a
	}
	if a.Op == OpBVConst && a.Val.Sign() == 0 {
		return b
	}
	return c.bvBin(OpBVAdd, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Add(x, y)
	}, true)
}

// BVSub returns a - b (mod 2^width).
func (c *Ctx) BVSub(a, b *Term) *Term {
	if b.Op == OpBVConst && b.Val.Sign() == 0 {
		return a
	}
	if a == b {
		return c.BV(0, a.Width)
	}
	return c.bvBin(OpBVSub, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Sub(x, y)
	}, false)
}

// BVMul returns a * b (mod 2^width).
func (c *Ctx) BVMul(a, b *Term) *Term {
	if b.Op == OpBVConst && a.Op != OpBVConst {
		a, b = b, a
	}
	if a.Op == OpBVConst {
		if a.Val.Sign() == 0 {
			return a
		}
		if a.Val.Cmp(big.NewInt(1)) == 0 {
			return b
		}
	}
	return c.bvBin(OpBVMul, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Mul(x, y)
	}, true)
}

// BVShl returns a << b (filling with zeros).
func (c *Ctx) BVShl(a, b *Term) *Term {
	if b.Op == OpBVConst && b.Val.Sign() == 0 {
		return a
	}
	return c.bvBin(OpBVShl, a, b, func(x, y *big.Int, w int) *big.Int {
		if !y.IsUint64() || y.Uint64() >= uint64(w) {
			return big.NewInt(0)
		}
		return new(big.Int).Lsh(x, uint(y.Uint64()))
	}, false)
}

// BVLshr returns a >> b (logical).
func (c *Ctx) BVLshr(a, b *Term) *Term {
	if b.Op == OpBVConst && b.Val.Sign() == 0 {
		return a
	}
	return c.bvBin(OpBVLshr, a, b, func(x, y *big.Int, w int) *big.Int {
		if !y.IsUint64() || y.Uint64() >= uint64(w) {
			return big.NewInt(0)
		}
		return new(big.Int).Rsh(x, uint(y.Uint64()))
	}, false)
}

// Concat returns hi ++ lo, with hi occupying the upper bits.
func (c *Ctx) Concat(hi, lo *Term) *Term {
	if hi.IsBool() || lo.IsBool() {
		panic("smt: Concat requires bit-vectors")
	}
	if hi.Op == OpBVConst && lo.Op == OpBVConst {
		v := new(big.Int).Lsh(hi.Val, uint(lo.Width))
		v.Or(v, lo.Val)
		return c.BVBig(v, hi.Width+lo.Width)
	}
	return c.intern(&Term{Op: OpBVConcat, Width: hi.Width + lo.Width, Args: []*Term{hi, lo}})
}

// Extract returns bits hi..lo (inclusive, 0-indexed from LSB) of a.
func (c *Ctx) Extract(a *Term, hi, lo int) *Term {
	if a.IsBool() {
		panic("smt: Extract requires a bit-vector")
	}
	if hi < lo || lo < 0 || hi >= a.Width {
		panic(fmt.Sprintf("smt: Extract [%d:%d] out of range for width %d", hi, lo, a.Width))
	}
	if hi == a.Width-1 && lo == 0 {
		return a
	}
	if a.Op == OpBVConst {
		v := new(big.Int).Rsh(a.Val, uint(lo))
		return c.BVBig(v, hi-lo+1)
	}
	if a.Op == OpBVExtract {
		return c.Extract(a.Args[0], a.Lo+hi, a.Lo+lo)
	}
	return c.intern(&Term{Op: OpBVExtract, Width: hi - lo + 1, Args: []*Term{a}, Hi: hi, Lo: lo})
}

// ZeroExt widens a to the given width by prepending zero bits.
func (c *Ctx) ZeroExt(a *Term, width int) *Term {
	if width < a.Width {
		panic("smt: ZeroExt target narrower than operand")
	}
	if width == a.Width {
		return a
	}
	return c.Concat(c.BV(0, width-a.Width), a)
}

// Resize widens (zero-extends) or narrows (truncates) a to width.
func (c *Ctx) Resize(a *Term, width int) *Term {
	switch {
	case width == a.Width:
		return a
	case width > a.Width:
		return c.ZeroExt(a, width)
	default:
		return c.Extract(a, width-1, 0)
	}
}

// Ite returns if cond then a else b over equal-width bit-vectors.
func (c *Ctx) Ite(cond, a, b *Term) *Term {
	mustBool("Ite", cond)
	mustSameWidth("Ite", a, b)
	if cond.Op == OpBoolConst {
		if cond.ConstBool() {
			return a
		}
		return b
	}
	if a == b {
		return a
	}
	return c.intern(&Term{Op: OpBVIte, Width: a.Width, Args: []*Term{cond, a, b}})
}

// Eq returns a == b over equal-width bit-vectors.
func (c *Ctx) Eq(a, b *Term) *Term {
	mustSameWidth("Eq", a, b)
	if a == b {
		return c.true_
	}
	if a.Op == OpBVConst && b.Op == OpBVConst {
		return c.Bool(a.Val.Cmp(b.Val) == 0)
	}
	if a.ID > b.ID {
		a, b = b, a
	}
	return c.intern(&Term{Op: OpEq, Args: []*Term{a, b}})
}

// Neq returns a != b.
func (c *Ctx) Neq(a, b *Term) *Term { return c.Not(c.Eq(a, b)) }

// Ult returns a < b (unsigned).
func (c *Ctx) Ult(a, b *Term) *Term {
	mustSameWidth("Ult", a, b)
	if a == b {
		return c.false_
	}
	if a.Op == OpBVConst && b.Op == OpBVConst {
		return c.Bool(a.Val.Cmp(b.Val) < 0)
	}
	return c.intern(&Term{Op: OpUlt, Args: []*Term{a, b}})
}

// Ule returns a <= b (unsigned).
func (c *Ctx) Ule(a, b *Term) *Term {
	mustSameWidth("Ule", a, b)
	if a == b {
		return c.true_
	}
	if a.Op == OpBVConst && b.Op == OpBVConst {
		return c.Bool(a.Val.Cmp(b.Val) <= 0)
	}
	return c.intern(&Term{Op: OpUle, Args: []*Term{a, b}})
}

// Ugt returns a > b (unsigned).
func (c *Ctx) Ugt(a, b *Term) *Term { return c.Ult(b, a) }

// Uge returns a >= b (unsigned).
func (c *Ctx) Uge(a, b *Term) *Term { return c.Ule(b, a) }

// Vars returns the free variables of t, sorted by name.
func Vars(t *Term) []*Term {
	// Iterative walk: counterexample rendering calls this on full VC terms,
	// which can be too deep for recursion on large parser state spaces.
	seen := map[int]bool{t.ID: true}
	var out []*Term
	stack := []*Term{t}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x.Op == OpBVVar || x.Op == OpBoolVar {
			out = append(out, x)
			continue
		}
		for _, a := range x.Args {
			if !seen[a.ID] {
				seen[a.ID] = true
				stack = append(stack, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TermSize returns the number of distinct subterms of t (DAG size).
func TermSize(t *Term) int {
	seen := map[int]bool{}
	var walk func(*Term)
	walk = func(x *Term) {
		if seen[x.ID] {
			return
		}
		seen[x.ID] = true
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(t)
	return len(seen)
}
