// Package smt implements the quantifier-free bit-vector (QF_BV) theory
// layer of Aquila's verification stack: a hash-consed term language with
// constant folding, a Tseitin bit-blaster targeting the CDCL solver in
// package sat, model extraction, and an assumption-based MaxSAT procedure
// used by bug localization (§5 of the paper).
//
// The paper uses Z3; this package is the substitution documented in
// DESIGN.md. Verdicts (sat/unsat and models) are interchangeable with any
// sound and complete QF_BV solver.
package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"
)

// Op identifies a term constructor.
type Op uint8

// Term operators. BV operators produce bit-vector terms; the remainder
// produce boolean terms.
const (
	OpBVConst Op = iota
	OpBVVar
	OpBVNot
	OpBVNeg
	OpBVAnd
	OpBVOr
	OpBVXor
	OpBVAdd
	OpBVSub
	OpBVMul
	OpBVShl
	OpBVLshr
	OpBVConcat  // args[0] is high bits, args[1] is low bits
	OpBVExtract // bits Hi..Lo of args[0]
	OpBVIte     // args[0] bool, args[1], args[2] bv

	OpBoolConst
	OpBoolVar
	OpNot
	OpAnd
	OpOr
	OpImplies
	OpIff
	OpEq  // bv equality
	OpUlt // unsigned less-than
	OpUle // unsigned less-or-equal
	OpBoolIte
)

var opNames = map[Op]string{
	OpBVConst: "const", OpBVVar: "var", OpBVNot: "bvnot", OpBVNeg: "bvneg",
	OpBVAnd: "bvand", OpBVOr: "bvor", OpBVXor: "bvxor", OpBVAdd: "bvadd",
	OpBVSub: "bvsub", OpBVMul: "bvmul", OpBVShl: "bvshl", OpBVLshr: "bvlshr",
	OpBVConcat: "concat", OpBVExtract: "extract", OpBVIte: "bvite",
	OpBoolConst: "bool", OpBoolVar: "boolvar", OpNot: "not", OpAnd: "and",
	OpOr: "or", OpImplies: "=>", OpIff: "<=>", OpEq: "=", OpUlt: "bvult",
	OpUle: "bvule", OpBoolIte: "ite",
}

// Term is an immutable, hash-consed SMT term. Boolean terms have Width 0;
// bit-vector terms have Width >= 1. Terms must be created through a Ctx;
// pointer equality coincides with structural equality within one Ctx.
type Term struct {
	ID    int
	Op    Op
	Width int // 0 for boolean terms
	Args  []*Term
	Name  string   // variables
	Val   *big.Int // constants (normalized into [0, 2^Width))
	Hi    int      // extract upper bit (inclusive)
	Lo    int      // extract lower bit (inclusive)
	// SHash is the term's structural hash: a fingerprint over the
	// operator, width, extract bounds, name, constant value, and the
	// children's structural hashes — and nothing else. Unlike ID (an
	// arena position that depends on construction history), SHash is
	// identical for structurally equal terms across contexts, so the
	// commutative-operand canonical order derived from it is too. That
	// is what keeps a warm re-encoding context (verify.Session) building
	// the same DAG a fresh context would.
	SHash uint64
}

// IsBool reports whether the term is boolean-sorted.
func (t *Term) IsBool() bool { return t.Width == 0 }

// IsConst reports whether the term is a constant.
func (t *Term) IsConst() bool { return t.Op == OpBVConst || t.Op == OpBoolConst }

// ConstUint64 returns the value of a bit-vector constant as uint64.
// It panics on non-constants or widths above 64.
func (t *Term) ConstUint64() uint64 {
	if t.Op != OpBVConst {
		panic("smt: ConstUint64 on non-constant")
	}
	return t.Val.Uint64()
}

// ConstBool returns the value of a boolean constant.
func (t *Term) ConstBool() bool {
	if t.Op != OpBoolConst {
		panic("smt: ConstBool on non-constant")
	}
	return t.Val.Sign() != 0
}

// String renders the term in SMT-LIB-flavoured prefix form.
func (t *Term) String() string {
	switch t.Op {
	case OpBVConst:
		return fmt.Sprintf("#x%s[%d]", t.Val.Text(16), t.Width)
	case OpBoolConst:
		if t.ConstBool() {
			return "true"
		}
		return "false"
	case OpBVVar, OpBoolVar:
		return t.Name
	case OpBVExtract:
		return fmt.Sprintf("(extract %d %d %s)", t.Hi, t.Lo, t.Args[0])
	}
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(opNames[t.Op])
	for _, a := range t.Args {
		b.WriteByte(' ')
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Ctx owns a hash-consing table; all terms used together must come from the
// same Ctx. A Ctx starts out single-goroutine (no synchronization on the
// hot path); after Freeze it may be shared across goroutines — existing
// terms are immutable and read freely, and any residual interning is
// serialized through a mutex.
//
// Storage is arena-shaped for locality and allocation volume: terms live
// in append-only fixed-size slabs (a *Term is a pointer into a slab, so
// it stays valid forever — growth appends a new slab, it never moves an
// old one), argument slices are carved out of shared backing arrays, and
// the intern table is open addressing over term IDs. Interning a term
// that already exists allocates nothing; creating one costs only its
// amortized slab space.
type Ctx struct {
	slots    []uint32 // open addressing: term ID + 1; 0 = empty slot
	chunks   [][]Term // term slabs of termChunk entries each
	hashes   []uint64 // term ID -> intern hash, reused when slots grow
	argChunk []*Term  // unfilled tail of the current argument slab
	true_    *Term
	false_   *Term

	// Size accounting, used by the benchmark harness to report formula
	// sizes the way the paper reports memory footprints. created is also
	// the next term ID.
	created int

	// shared is set by Freeze; from then on intern and NumTerms take mu.
	// It is written strictly before the Ctx is handed to other goroutines.
	shared bool
	mu     sync.Mutex

	// Interning instrumentation. internHits/internMisses count table
	// lookups (misses == created); frozenLocks counts mu acquisitions
	// after Freeze — the contention proxy for the parallel engine. Plain
	// fields mutated single-goroutine before Freeze and under mu after;
	// InternStats takes mu when shared, mirroring NumTerms.
	internHits   int64
	internMisses int64
	frozenLocks  int64

	// releasedTerms counts terms discarded by Release — the streaming VC
	// driver's "transient slice terms freed" figure.
	releasedTerms int64
}

// InternStats reports hash-consing hits and misses and the number of
// frozen-context mutex acquisitions so far.
func (c *Ctx) InternStats() (hits, misses, frozenLocks int64) {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.internHits, c.internMisses, c.frozenLocks
}

// Arena geometry. Term slabs hold termChunk terms (the power of two keeps
// ID -> slab addressing a shift and mask); argument slabs hold argChunkLen
// pointers. No term has more than three arguments (ite).
const (
	termChunkShift = 10
	termChunk      = 1 << termChunkShift
	termChunkMask  = termChunk - 1
	argChunkLen    = 4096
	maxTermArgs    = 3
)

// protoTerm is the stack-held prototype a constructor hands to intern: the
// would-be term's fields with the argument pointers inlined. intern only
// reads it, so escape analysis keeps it off the heap — the per-lookup
// allocation the old map[termKey]*Term design paid (a *Term plus its args
// slice per call, hit or miss) is gone.
type protoTerm struct {
	op     Op
	width  int
	hi, lo int
	name   string
	val    *big.Int // normalized into [0, 2^width); nil unless a constant
	args   [maxTermArgs]*Term
	n      int
}

// hash mixes the prototype's identity fields FNV-1a style. Argument
// pointers are not hashable run-to-run, so argument IDs are mixed instead
// (pointer equality coincides with ID equality within one Ctx).
func (p *protoTerm) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(p.op))
	mix(uint64(p.width))
	mix(uint64(p.hi)<<32 | uint64(uint32(p.lo)))
	for i := 0; i < len(p.name); i++ {
		mix(uint64(p.name[i]))
	}
	if p.val != nil {
		mix(1)
		for _, w := range p.val.Bits() {
			mix(uint64(w))
		}
	}
	for i := 0; i < p.n; i++ {
		mix(uint64(p.args[i].ID) + 1)
	}
	return h
}

// shash computes the prototype's structural hash (Term.SHash): the same
// FNV-1a mixing as hash, except that child terms contribute their own
// structural hashes instead of their arena IDs, making the result
// independent of construction history. A distinct seed keeps it
// uncorrelated with the intern-table hash.
func (p *protoTerm) shash() uint64 {
	const prime = 1099511628211
	h := uint64(0x9e3779b97f4a7c15)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(p.op) + 1)
	mix(uint64(p.width))
	mix(uint64(p.hi)<<32 | uint64(uint32(p.lo)))
	for i := 0; i < len(p.name); i++ {
		mix(uint64(p.name[i]))
	}
	if p.val != nil {
		mix(1)
		for _, w := range p.val.Bits() {
			mix(uint64(w))
		}
	}
	for i := 0; i < p.n; i++ {
		mix(p.args[i].SHash)
	}
	return h
}

// structLess is the canonical commutative-operand order: by structural
// hash, with a full structural comparison as the collision tiebreak.
// Within one Ctx structural equality coincides with pointer equality, so
// for a != b the tiebreak always separates them without consulting IDs —
// the order two operands sort in is a pure function of their structure.
func structLess(a, b *Term) bool { return structCmp(a, b) < 0 }

// structCmp three-way-compares two terms structurally. The SHash fast
// path decides virtually every call; the recursive walk only runs on a
// 64-bit hash collision between distinct terms.
func structCmp(a, b *Term) int {
	if a == b {
		return 0
	}
	if a.SHash != b.SHash {
		if a.SHash < b.SHash {
			return -1
		}
		return 1
	}
	if a.Op != b.Op {
		return int(a.Op) - int(b.Op)
	}
	if a.Width != b.Width {
		return a.Width - b.Width
	}
	if a.Hi != b.Hi {
		return a.Hi - b.Hi
	}
	if a.Lo != b.Lo {
		return a.Lo - b.Lo
	}
	if a.Name != b.Name {
		if a.Name < b.Name {
			return -1
		}
		return 1
	}
	if (a.Val == nil) != (b.Val == nil) {
		if a.Val == nil {
			return -1
		}
		return 1
	}
	if a.Val != nil {
		if c := a.Val.Cmp(b.Val); c != 0 {
			return c
		}
	}
	if len(a.Args) != len(b.Args) {
		return len(a.Args) - len(b.Args)
	}
	for i := range a.Args {
		if c := structCmp(a.Args[i], b.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// matches reports whether the already-interned term t is the term the
// prototype describes.
func (p *protoTerm) matches(t *Term) bool {
	if t.Op != p.op || t.Width != p.width || t.Hi != p.hi || t.Lo != p.lo ||
		len(t.Args) != p.n || t.Name != p.name {
		return false
	}
	for i := 0; i < p.n; i++ {
		if t.Args[i] != p.args[i] {
			return false
		}
	}
	if (t.Val == nil) != (p.val == nil) {
		return false
	}
	return t.Val == nil || t.Val.Cmp(p.val) == 0
}

// NewCtx returns an empty term context.
func NewCtx() *Ctx {
	c := &Ctx{slots: make([]uint32, 1024)}
	c.true_ = c.intern(&protoTerm{op: OpBoolConst, val: big.NewInt(1)})
	c.false_ = c.intern(&protoTerm{op: OpBoolConst, val: big.NewInt(0)})
	return c
}

// Freeze marks the context as shared across goroutines. Term construction
// remains possible (serialized through an internal mutex), but the intended
// pattern is: encode everything, Freeze, then fan out read-only consumers
// (blasting, solving, model evaluation) — none of which create terms.
// Freeze must be called before the Ctx is handed to other goroutines;
// there is no Unfreeze.
func (c *Ctx) Freeze() { c.shared = true }

// Frozen reports whether Freeze has been called. Frozen contexts are
// shared and refuse Release.
func (c *Ctx) Frozen() bool { return c.shared }

// NumTerms returns the number of distinct terms created in this context —
// a proxy for formula memory footprint.
func (c *Ctx) NumTerms() int {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.frozenLocks++
	}
	return c.created
}

// termByID returns the arena slot of an existing term.
func (c *Ctx) termByID(id int) *Term {
	return &c.chunks[id>>termChunkShift][id&termChunkMask]
}

// ReleasedTerms reports the number of terms discarded by Release so far.
func (c *Ctx) ReleasedTerms() int64 {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.releasedTerms
}

// Mark returns a watermark identifying the current extent of the term
// arena, for a later Release. It is simply the number of terms created so
// far: every term with ID >= the mark was created after it.
func (c *Ctx) Mark() int { return c.NumTerms() }

// Release discards every term created since the mark: the terms are
// removed from the intern table, their arena slots are zeroed (so the
// argument slabs and constant values they referenced become collectable),
// and subsequently created terms reuse the released IDs. The streaming VC
// driver uses this to keep per-assertion slice terms from accumulating
// across a whole find-all run.
//
// Correctness is the caller's bargain: no pointer to a released term may
// be used again, and no external structure keyed by term ID may retain
// entries referencing released terms (IDs are reused). Release requires
// exclusive ownership of the Ctx and panics on a frozen (shared) context.
func (c *Ctx) Release(mark int) {
	if c.shared {
		panic("smt: Release on frozen Ctx")
	}
	if mark < 2 || mark > c.created {
		panic(fmt.Sprintf("smt: Release mark %d out of range [2, %d]", mark, c.created))
	}
	if mark == c.created {
		return
	}
	c.releasedTerms += int64(c.created - mark)
	// Zero the released tail of the boundary chunk and drop whole chunks
	// past it (nil-ing the dropped slots so the backing arrays are not
	// pinned by the chunks slice's capacity).
	if off := mark & termChunkMask; off != 0 {
		tail := c.chunks[mark>>termChunkShift][off:]
		for i := range tail {
			tail[i] = Term{}
		}
	}
	nChunks := (mark + termChunk - 1) >> termChunkShift
	for i := nChunks; i < len(c.chunks); i++ {
		c.chunks[i] = nil
	}
	c.chunks = c.chunks[:nChunks]
	c.hashes = c.hashes[:mark]
	c.created = mark
	// Rebuild the open-addressing table over the surviving terms. The table
	// also shrinks back if the released burst had grown it.
	size := 1024
	for mark*4 >= size*3 {
		size *= 2
	}
	if size > len(c.slots) {
		size = len(c.slots)
	}
	slots := make([]uint32, size)
	maskS := uint64(size - 1)
	for id := 0; id < mark; id++ {
		i := c.hashes[id] & maskS
		for slots[i] != 0 {
			i = (i + 1) & maskS
		}
		slots[i] = uint32(id + 1)
	}
	c.slots = slots
}

func (c *Ctx) intern(p *protoTerm) *Term {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.frozenLocks++
	}
	h := p.hash()
	mask := uint64(len(c.slots) - 1)
	i := h & mask
	for {
		s := c.slots[i]
		if s == 0 {
			break
		}
		if t := c.termByID(int(s - 1)); p.matches(t) {
			c.internHits++
			return t
		}
		i = (i + 1) & mask
	}
	c.internMisses++
	id := c.created
	if id>>termChunkShift == len(c.chunks) {
		c.chunks = append(c.chunks, make([]Term, termChunk))
	}
	t := &c.chunks[id>>termChunkShift][id&termChunkMask]
	t.ID = id
	t.Op = p.op
	t.Width = p.width
	t.Hi, t.Lo = p.hi, p.lo
	t.Name = p.name
	t.SHash = p.shash()
	if p.val != nil {
		// Store a private copy: callers may reuse or mutate the big.Int
		// they passed in.
		t.Val = new(big.Int).Set(p.val)
	}
	if p.n > 0 {
		t.Args = c.allocArgs(p.args[:p.n])
	}
	c.hashes = append(c.hashes, h)
	c.created++
	c.slots[i] = uint32(id + 1)
	if c.created*4 >= len(c.slots)*3 {
		c.growSlots()
	}
	return t
}

// allocArgs copies args into the shared argument arena and returns the
// capacity-capped subslice. Old slabs stay alive through the subslices
// that point into them; the Ctx only tracks the unfilled tail.
func (c *Ctx) allocArgs(args []*Term) []*Term {
	if len(c.argChunk) < len(args) {
		c.argChunk = make([]*Term, argChunkLen)
	}
	out := c.argChunk[:len(args):len(args)]
	c.argChunk = c.argChunk[len(args):]
	copy(out, args)
	return out
}

// growSlots doubles the open-addressing table and reinserts every term by
// its recorded hash.
func (c *Ctx) growSlots() {
	slots := make([]uint32, len(c.slots)*2)
	mask := uint64(len(slots) - 1)
	for id := 0; id < c.created; id++ {
		i := c.hashes[id] & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = uint32(id + 1)
	}
	c.slots = slots
}

// maskCache holds 2^w - 1 for small widths; the masks are read-only (every
// operation on them copies first), so sharing across goroutines is safe.
var maskCache = func() []*big.Int {
	masks := make([]*big.Int, 257)
	for w := range masks {
		m := new(big.Int).Lsh(big.NewInt(1), uint(w))
		masks[w] = m.Sub(m, big.NewInt(1))
	}
	return masks
}()

// maskFor returns 2^width - 1. The result is shared and must not be
// mutated.
func maskFor(width int) *big.Int {
	if width >= 0 && width < len(maskCache) {
		return maskCache[width]
	}
	m := new(big.Int).Lsh(big.NewInt(1), uint(width))
	return m.Sub(m, big.NewInt(1))
}

func normConst(v *big.Int, width int) *big.Int {
	out := new(big.Int).And(v, maskFor(width))
	return out
}

// ---- boolean constructors ----

// True returns the boolean constant true.
func (c *Ctx) True() *Term { return c.true_ }

// False returns the boolean constant false.
func (c *Ctx) False() *Term { return c.false_ }

// Bool returns the boolean constant for v.
func (c *Ctx) Bool(v bool) *Term {
	if v {
		return c.true_
	}
	return c.false_
}

// BoolVar returns the boolean variable with the given name.
func (c *Ctx) BoolVar(name string) *Term {
	return c.intern(&protoTerm{op: OpBoolVar, name: name})
}

// Not returns the boolean negation of a.
func (c *Ctx) Not(a *Term) *Term {
	mustBool("Not", a)
	if a.Op == OpBoolConst {
		return c.Bool(!a.ConstBool())
	}
	if a.Op == OpNot {
		return a.Args[0]
	}
	return c.intern(&protoTerm{op: OpNot, args: [maxTermArgs]*Term{a}, n: 1})
}

// And returns the conjunction of the arguments (true when empty).
func (c *Ctx) And(args ...*Term) *Term {
	flat := make([]*Term, 0, len(args))
	for _, a := range args {
		mustBool("And", a)
		if a.Op == OpBoolConst {
			if !a.ConstBool() {
				return c.false_
			}
			continue
		}
		flat = append(flat, a)
	}
	switch len(flat) {
	case 0:
		return c.true_
	case 1:
		return flat[0]
	}
	// Balanced binary reduction keeps blasting depth logarithmic.
	for len(flat) > 1 {
		var next []*Term
		for i := 0; i < len(flat); i += 2 {
			if i+1 == len(flat) {
				next = append(next, flat[i])
			} else {
				next = append(next, c.and2(flat[i], flat[i+1]))
			}
		}
		flat = next
	}
	return flat[0]
}

func (c *Ctx) and2(a, b *Term) *Term {
	if a == b {
		return a
	}
	if a == c.Not(b) {
		return c.false_
	}
	if structLess(b, a) {
		a, b = b, a
	}
	return c.intern(&protoTerm{op: OpAnd, args: [maxTermArgs]*Term{a, b}, n: 2})
}

// Or returns the disjunction of the arguments (false when empty).
func (c *Ctx) Or(args ...*Term) *Term {
	neg := make([]*Term, len(args))
	for i, a := range args {
		mustBool("Or", a)
		neg[i] = c.Not(a)
	}
	return c.Not(c.And(neg...))
}

// Implies returns a -> b.
func (c *Ctx) Implies(a, b *Term) *Term { return c.Or(c.Not(a), b) }

// Iff returns a <-> b.
func (c *Ctx) Iff(a, b *Term) *Term {
	mustBool("Iff", a)
	mustBool("Iff", b)
	if a == b {
		return c.true_
	}
	if a.Op == OpBoolConst {
		if a.ConstBool() {
			return b
		}
		return c.Not(b)
	}
	if b.Op == OpBoolConst {
		if b.ConstBool() {
			return a
		}
		return c.Not(a)
	}
	if structLess(b, a) {
		a, b = b, a
	}
	return c.intern(&protoTerm{op: OpIff, args: [maxTermArgs]*Term{a, b}, n: 2})
}

// BoolIte returns if cond then a else b over booleans.
func (c *Ctx) BoolIte(cond, a, b *Term) *Term {
	mustBool("BoolIte", cond)
	mustBool("BoolIte", a)
	mustBool("BoolIte", b)
	if cond.Op == OpBoolConst {
		if cond.ConstBool() {
			return a
		}
		return b
	}
	if a == b {
		return a
	}
	return c.intern(&protoTerm{op: OpBoolIte, args: [maxTermArgs]*Term{cond, a, b}, n: 3})
}

// ---- bit-vector constructors ----

// BV returns the bit-vector constant v of the given width.
func (c *Ctx) BV(v uint64, width int) *Term {
	return c.BVBig(new(big.Int).SetUint64(v), width)
}

// BVBig returns the bit-vector constant v (mod 2^width) of the given width.
func (c *Ctx) BVBig(v *big.Int, width int) *Term {
	if width <= 0 {
		panic("smt: BV width must be positive")
	}
	if v.Sign() < 0 || v.BitLen() > width {
		v = normConst(v, width)
	}
	return c.intern(&protoTerm{op: OpBVConst, width: width, val: v})
}

// Var returns the bit-vector variable with the given name and width.
func (c *Ctx) Var(name string, width int) *Term {
	if width <= 0 {
		panic("smt: Var width must be positive")
	}
	return c.intern(&protoTerm{op: OpBVVar, width: width, name: name})
}

func mustBool(op string, t *Term) {
	if !t.IsBool() {
		panic("smt: " + op + " requires boolean operand, got width " +
			fmt.Sprint(t.Width))
	}
}

func mustSameWidth(op string, a, b *Term) {
	if a.IsBool() || b.IsBool() || a.Width != b.Width {
		panic(fmt.Sprintf("smt: %s requires equal-width bit-vectors (got %d, %d)",
			op, a.Width, b.Width))
	}
}

func (c *Ctx) bvBin(op Op, a, b *Term, fold func(x, y *big.Int, w int) *big.Int, commutative bool) *Term {
	mustSameWidth(opNames[op], a, b)
	if a.Op == OpBVConst && b.Op == OpBVConst {
		return c.BVBig(fold(a.Val, b.Val, a.Width), a.Width)
	}
	if commutative && structLess(b, a) {
		a, b = b, a
	}
	return c.intern(&protoTerm{op: op, width: a.Width, args: [maxTermArgs]*Term{a, b}, n: 2})
}

// BVNot returns the bitwise complement of a.
func (c *Ctx) BVNot(a *Term) *Term {
	if a.Op == OpBVConst {
		v := new(big.Int).Xor(a.Val, maskFor(a.Width))
		return c.BVBig(v, a.Width)
	}
	if a.Op == OpBVNot {
		return a.Args[0]
	}
	return c.intern(&protoTerm{op: OpBVNot, width: a.Width, args: [maxTermArgs]*Term{a}, n: 1})
}

// BVNeg returns the two's-complement negation of a.
func (c *Ctx) BVNeg(a *Term) *Term {
	if a.Op == OpBVConst {
		return c.BVBig(new(big.Int).Neg(a.Val), a.Width)
	}
	return c.intern(&protoTerm{op: OpBVNeg, width: a.Width, args: [maxTermArgs]*Term{a}, n: 1})
}

// BVAnd returns the bitwise AND of a and b.
func (c *Ctx) BVAnd(a, b *Term) *Term {
	if b.Op == OpBVConst && a.Op != OpBVConst {
		a, b = b, a
	}
	if a.Op == OpBVConst {
		if a.Val.Sign() == 0 {
			return a
		}
		if a.Val.Cmp(maskFor(a.Width)) == 0 {
			return b
		}
	}
	if a == b {
		return a
	}
	return c.bvBin(OpBVAnd, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).And(x, y)
	}, true)
}

// BVOr returns the bitwise OR of a and b.
func (c *Ctx) BVOr(a, b *Term) *Term {
	if b.Op == OpBVConst && a.Op != OpBVConst {
		a, b = b, a
	}
	if a.Op == OpBVConst {
		if a.Val.Sign() == 0 {
			return b
		}
		if a.Val.Cmp(maskFor(a.Width)) == 0 {
			return a
		}
	}
	if a == b {
		return a
	}
	return c.bvBin(OpBVOr, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Or(x, y)
	}, true)
}

// BVXor returns the bitwise XOR of a and b.
func (c *Ctx) BVXor(a, b *Term) *Term {
	if a == b {
		return c.BV(0, a.Width)
	}
	return c.bvBin(OpBVXor, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Xor(x, y)
	}, true)
}

// BVAdd returns a + b (mod 2^width).
func (c *Ctx) BVAdd(a, b *Term) *Term {
	if b.Op == OpBVConst && b.Val.Sign() == 0 {
		return a
	}
	if a.Op == OpBVConst && a.Val.Sign() == 0 {
		return b
	}
	return c.bvBin(OpBVAdd, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Add(x, y)
	}, true)
}

// BVSub returns a - b (mod 2^width).
func (c *Ctx) BVSub(a, b *Term) *Term {
	if b.Op == OpBVConst && b.Val.Sign() == 0 {
		return a
	}
	if a == b {
		return c.BV(0, a.Width)
	}
	return c.bvBin(OpBVSub, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Sub(x, y)
	}, false)
}

// BVMul returns a * b (mod 2^width).
func (c *Ctx) BVMul(a, b *Term) *Term {
	if b.Op == OpBVConst && a.Op != OpBVConst {
		a, b = b, a
	}
	if a.Op == OpBVConst {
		if a.Val.Sign() == 0 {
			return a
		}
		if a.Val.Cmp(big.NewInt(1)) == 0 {
			return b
		}
	}
	return c.bvBin(OpBVMul, a, b, func(x, y *big.Int, w int) *big.Int {
		return new(big.Int).Mul(x, y)
	}, true)
}

// BVShl returns a << b (filling with zeros).
func (c *Ctx) BVShl(a, b *Term) *Term {
	if b.Op == OpBVConst && b.Val.Sign() == 0 {
		return a
	}
	return c.bvBin(OpBVShl, a, b, func(x, y *big.Int, w int) *big.Int {
		if !y.IsUint64() || y.Uint64() >= uint64(w) {
			return big.NewInt(0)
		}
		return new(big.Int).Lsh(x, uint(y.Uint64()))
	}, false)
}

// BVLshr returns a >> b (logical).
func (c *Ctx) BVLshr(a, b *Term) *Term {
	if b.Op == OpBVConst && b.Val.Sign() == 0 {
		return a
	}
	return c.bvBin(OpBVLshr, a, b, func(x, y *big.Int, w int) *big.Int {
		if !y.IsUint64() || y.Uint64() >= uint64(w) {
			return big.NewInt(0)
		}
		return new(big.Int).Rsh(x, uint(y.Uint64()))
	}, false)
}

// Concat returns hi ++ lo, with hi occupying the upper bits.
func (c *Ctx) Concat(hi, lo *Term) *Term {
	if hi.IsBool() || lo.IsBool() {
		panic("smt: Concat requires bit-vectors")
	}
	if hi.Op == OpBVConst && lo.Op == OpBVConst {
		v := new(big.Int).Lsh(hi.Val, uint(lo.Width))
		v.Or(v, lo.Val)
		return c.BVBig(v, hi.Width+lo.Width)
	}
	return c.intern(&protoTerm{op: OpBVConcat, width: hi.Width + lo.Width, args: [maxTermArgs]*Term{hi, lo}, n: 2})
}

// Extract returns bits hi..lo (inclusive, 0-indexed from LSB) of a.
func (c *Ctx) Extract(a *Term, hi, lo int) *Term {
	if a.IsBool() {
		panic("smt: Extract requires a bit-vector")
	}
	if hi < lo || lo < 0 || hi >= a.Width {
		panic(fmt.Sprintf("smt: Extract [%d:%d] out of range for width %d", hi, lo, a.Width))
	}
	if hi == a.Width-1 && lo == 0 {
		return a
	}
	if a.Op == OpBVConst {
		v := new(big.Int).Rsh(a.Val, uint(lo))
		return c.BVBig(v, hi-lo+1)
	}
	if a.Op == OpBVExtract {
		return c.Extract(a.Args[0], a.Lo+hi, a.Lo+lo)
	}
	return c.intern(&protoTerm{op: OpBVExtract, width: hi - lo + 1, args: [maxTermArgs]*Term{a}, n: 1, hi: hi, lo: lo})
}

// ZeroExt widens a to the given width by prepending zero bits.
func (c *Ctx) ZeroExt(a *Term, width int) *Term {
	if width < a.Width {
		panic("smt: ZeroExt target narrower than operand")
	}
	if width == a.Width {
		return a
	}
	return c.Concat(c.BV(0, width-a.Width), a)
}

// Resize widens (zero-extends) or narrows (truncates) a to width.
func (c *Ctx) Resize(a *Term, width int) *Term {
	switch {
	case width == a.Width:
		return a
	case width > a.Width:
		return c.ZeroExt(a, width)
	default:
		return c.Extract(a, width-1, 0)
	}
}

// Ite returns if cond then a else b over equal-width bit-vectors.
func (c *Ctx) Ite(cond, a, b *Term) *Term {
	mustBool("Ite", cond)
	mustSameWidth("Ite", a, b)
	if cond.Op == OpBoolConst {
		if cond.ConstBool() {
			return a
		}
		return b
	}
	if a == b {
		return a
	}
	return c.intern(&protoTerm{op: OpBVIte, width: a.Width, args: [maxTermArgs]*Term{cond, a, b}, n: 3})
}

// Eq returns a == b over equal-width bit-vectors.
func (c *Ctx) Eq(a, b *Term) *Term {
	mustSameWidth("Eq", a, b)
	if a == b {
		return c.true_
	}
	if a.Op == OpBVConst && b.Op == OpBVConst {
		return c.Bool(a.Val.Cmp(b.Val) == 0)
	}
	if structLess(b, a) {
		a, b = b, a
	}
	return c.intern(&protoTerm{op: OpEq, args: [maxTermArgs]*Term{a, b}, n: 2})
}

// Neq returns a != b.
func (c *Ctx) Neq(a, b *Term) *Term { return c.Not(c.Eq(a, b)) }

// Ult returns a < b (unsigned).
func (c *Ctx) Ult(a, b *Term) *Term {
	mustSameWidth("Ult", a, b)
	if a == b {
		return c.false_
	}
	if a.Op == OpBVConst && b.Op == OpBVConst {
		return c.Bool(a.Val.Cmp(b.Val) < 0)
	}
	return c.intern(&protoTerm{op: OpUlt, args: [maxTermArgs]*Term{a, b}, n: 2})
}

// Ule returns a <= b (unsigned).
func (c *Ctx) Ule(a, b *Term) *Term {
	mustSameWidth("Ule", a, b)
	if a == b {
		return c.true_
	}
	if a.Op == OpBVConst && b.Op == OpBVConst {
		return c.Bool(a.Val.Cmp(b.Val) <= 0)
	}
	return c.intern(&protoTerm{op: OpUle, args: [maxTermArgs]*Term{a, b}, n: 2})
}

// Ugt returns a > b (unsigned).
func (c *Ctx) Ugt(a, b *Term) *Term { return c.Ult(b, a) }

// Uge returns a >= b (unsigned).
func (c *Ctx) Uge(a, b *Term) *Term { return c.Ule(b, a) }

// Vars returns the free variables of t, sorted by name.
func Vars(t *Term) []*Term {
	// Iterative walk: counterexample rendering calls this on full VC terms,
	// which can be too deep for recursion on large parser state spaces.
	seen := map[int]bool{t.ID: true}
	var out []*Term
	stack := []*Term{t}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x.Op == OpBVVar || x.Op == OpBoolVar {
			out = append(out, x)
			continue
		}
		for _, a := range x.Args {
			if !seen[a.ID] {
				seen[a.ID] = true
				stack = append(stack, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TermSize returns the number of distinct subterms of t (DAG size).
func TermSize(t *Term) int {
	seen := map[int]bool{}
	var walk func(*Term)
	walk = func(x *Term) {
		if seen[x.ID] {
			return
		}
		seen[x.ID] = true
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(t)
	return len(seen)
}
