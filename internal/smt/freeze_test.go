package smt

import (
	"math/big"
	"sync"
	"testing"
)

// TestInterningStructKeys pins the hash-consing contract of the
// struct-keyed intern table: structurally equal terms are pointer-equal,
// including wide (>64-bit) constants that take the hex-string key path.
func TestInterningStructKeys(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	y := c.Var("y", 32)
	if c.Var("x", 32) != x {
		t.Fatal("variable re-construction not interned")
	}
	if c.BVAdd(x, y) != c.BVAdd(x, y) {
		t.Fatal("BVAdd not interned")
	}
	if c.BVAdd(x, y) != c.BVAdd(y, x) {
		t.Fatal("commutative arguments not canonicalized")
	}
	if c.BVSub(x, y) == c.BVSub(y, x) {
		t.Fatal("distinct argument orders must not collide")
	}
	if c.BV(7, 32) != c.BV(7, 32) {
		t.Fatal("small constant not interned")
	}
	if c.BV(7, 32) == c.BV(7, 16) {
		t.Fatal("same value at different widths must not collide")
	}
	wide := new(big.Int).Lsh(big.NewInt(1), 100)
	w1 := c.BVBig(wide, 128)
	if c.BVBig(new(big.Int).Lsh(big.NewInt(1), 100), 128) != w1 {
		t.Fatal("wide constant not interned")
	}
	lo := c.BV(1<<40, 128)
	if lo == w1 {
		t.Fatal("wide and narrow values must not collide")
	}
	if c.Extract(x, 15, 8) != c.Extract(x, 15, 8) {
		t.Fatal("Extract not interned")
	}
	if c.Extract(x, 15, 8) == c.Extract(x, 15, 0) {
		t.Fatal("distinct extract ranges must not collide")
	}
}

// TestFrozenCtxConcurrentUse is the parallel engine's safety contract: a
// frozen context may be used by many goroutines at once — solving over
// the shared DAG and even (stray) term creation, which serializes on the
// intern lock. Run under -race to make the claim meaningful.
func TestFrozenCtxConcurrentUse(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 16)
	y := c.Var("y", 16)
	sum := c.BVAdd(x, y)
	queries := []*Term{
		c.Eq(sum, c.BV(300, 16)),
		c.Eq(c.BVXor(x, y), c.BV(0xff, 16)),
		c.Not(c.Eq(x, y)),
		c.Eq(c.BVAnd(x, y), c.BV(0, 16)),
	}
	c.Freeze()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := queries[g%len(queries)]
			s := NewSolver(c)
			if st := s.Check(q); st != Sat {
				t.Errorf("goroutine %d: status %v, want Sat", g, st)
				return
			}
			m := s.Model()
			s.ModelCollect(m, q)
			if !m.Bool(q) {
				t.Errorf("goroutine %d: model does not satisfy query", g)
			}
			// Stray interning after Freeze must serialize, not race.
			_ = c.BVAdd(x, c.BV(uint64(g), 16))
		}(g)
	}
	wg.Wait()
}
