package smt

import (
	"fmt"

	"aquila/internal/sat"
)

// blaster lowers hash-consed terms to CNF over a sat.Solver via Tseitin
// encoding. Caching is per-term (the term DAG is already maximally shared
// by hash-consing), so every subterm is encoded at most once.
type blaster struct {
	sat       *sat.Solver
	bvCache   map[int][]sat.Lit
	boolCache map[int]sat.Lit
	litTrue   sat.Lit

	// Instrumentation (plain fields: a blaster is single-goroutine).
	// cacheHits/cacheMisses count bv()/boolLit() lookups against the
	// per-term caches; clausesEmitted counts Tseitin clauses handed to the
	// SAT solver (>= retained clauses, which drop satisfied/tautological
	// ones).
	cacheHits      int64
	cacheMisses    int64
	clausesEmitted int64
}

// addClause forwards to the SAT solver, counting emissions.
func (b *blaster) addClause(lits ...sat.Lit) {
	b.clausesEmitted++
	b.sat.AddClause(lits...)
}

func newBlaster(s *sat.Solver) *blaster {
	b := &blaster{
		sat:       s,
		bvCache:   map[int][]sat.Lit{},
		boolCache: map[int]sat.Lit{},
	}
	v := s.NewVar()
	b.litTrue = sat.MkLit(v, false)
	s.AddClause(b.litTrue)
	return b
}

func (b *blaster) litFalse() sat.Lit { return b.litTrue.Not() }

func (b *blaster) fresh() sat.Lit { return sat.MkLit(b.sat.NewVar(), false) }

func (b *blaster) isTrue(l sat.Lit) bool  { return l == b.litTrue }
func (b *blaster) isFalse(l sat.Lit) bool { return l == b.litFalse() }

// and returns a literal equivalent to x & y.
func (b *blaster) and(x, y sat.Lit) sat.Lit {
	switch {
	case b.isFalse(x) || b.isFalse(y):
		return b.litFalse()
	case b.isTrue(x):
		return y
	case b.isTrue(y):
		return x
	case x == y:
		return x
	case x == y.Not():
		return b.litFalse()
	}
	o := b.fresh()
	b.addClause(o.Not(), x)
	b.addClause(o.Not(), y)
	b.addClause(o, x.Not(), y.Not())
	return o
}

func (b *blaster) or(x, y sat.Lit) sat.Lit { return b.and(x.Not(), y.Not()).Not() }

// xor returns a literal equivalent to x ^ y.
func (b *blaster) xor(x, y sat.Lit) sat.Lit {
	switch {
	case b.isFalse(x):
		return y
	case b.isFalse(y):
		return x
	case b.isTrue(x):
		return y.Not()
	case b.isTrue(y):
		return x.Not()
	case x == y:
		return b.litFalse()
	case x == y.Not():
		return b.litTrue
	}
	o := b.fresh()
	b.addClause(o.Not(), x, y)
	b.addClause(o.Not(), x.Not(), y.Not())
	b.addClause(o, x.Not(), y)
	b.addClause(o, x, y.Not())
	return o
}

// mux returns a literal equivalent to c ? x : y.
func (b *blaster) mux(c, x, y sat.Lit) sat.Lit {
	switch {
	case b.isTrue(c):
		return x
	case b.isFalse(c):
		return y
	case x == y:
		return x
	}
	if b.isTrue(x) {
		return b.or(c, y)
	}
	if b.isFalse(x) {
		return b.and(c.Not(), y)
	}
	if b.isTrue(y) {
		return b.or(c.Not(), x)
	}
	if b.isFalse(y) {
		return b.and(c, x)
	}
	o := b.fresh()
	b.addClause(c.Not(), x.Not(), o)
	b.addClause(c.Not(), x, o.Not())
	b.addClause(c, y.Not(), o)
	b.addClause(c, y, o.Not())
	return o
}

// fullAdder returns (sum, carry) of x+y+cin.
func (b *blaster) fullAdder(x, y, cin sat.Lit) (sum, cout sat.Lit) {
	xy := b.xor(x, y)
	sum = b.xor(xy, cin)
	cout = b.or(b.and(x, y), b.and(cin, xy))
	return sum, cout
}

// bv blasts a bit-vector term into its literal vector, LSB first.
func (b *blaster) bv(t *Term) []sat.Lit {
	if got, ok := b.bvCache[t.ID]; ok {
		b.cacheHits++
		return got
	}
	b.cacheMisses++
	var out []sat.Lit
	switch t.Op {
	case OpBVConst:
		out = make([]sat.Lit, t.Width)
		for i := 0; i < t.Width; i++ {
			if t.Val.Bit(i) == 1 {
				out[i] = b.litTrue
			} else {
				out[i] = b.litFalse()
			}
		}
	case OpBVVar:
		out = make([]sat.Lit, t.Width)
		for i := range out {
			out[i] = b.fresh()
		}
	case OpBVNot:
		a := b.bv(t.Args[0])
		out = make([]sat.Lit, t.Width)
		for i := range out {
			out[i] = a[i].Not()
		}
	case OpBVNeg:
		// -a == ~a + 1
		a := b.bv(t.Args[0])
		out = make([]sat.Lit, t.Width)
		carry := b.litTrue
		for i := range out {
			out[i], carry = b.fullAdder(a[i].Not(), b.litFalse(), carry)
		}
	case OpBVAnd, OpBVOr, OpBVXor:
		x := b.bv(t.Args[0])
		y := b.bv(t.Args[1])
		out = make([]sat.Lit, t.Width)
		for i := range out {
			switch t.Op {
			case OpBVAnd:
				out[i] = b.and(x[i], y[i])
			case OpBVOr:
				out[i] = b.or(x[i], y[i])
			default:
				out[i] = b.xor(x[i], y[i])
			}
		}
	case OpBVAdd, OpBVSub:
		x := b.bv(t.Args[0])
		y := b.bv(t.Args[1])
		out = make([]sat.Lit, t.Width)
		var carry sat.Lit
		if t.Op == OpBVAdd {
			carry = b.litFalse()
		} else {
			carry = b.litTrue // a - b == a + ~b + 1
		}
		for i := range out {
			yi := y[i]
			if t.Op == OpBVSub {
				yi = yi.Not()
			}
			out[i], carry = b.fullAdder(x[i], yi, carry)
		}
	case OpBVMul:
		x := b.bv(t.Args[0])
		y := b.bv(t.Args[1])
		w := t.Width
		acc := make([]sat.Lit, w)
		for i := range acc {
			acc[i] = b.litFalse()
		}
		for i := 0; i < w; i++ {
			// acc += (y[i] ? x << i : 0)
			carry := b.litFalse()
			for j := i; j < w; j++ {
				bit := b.and(y[i], x[j-i])
				acc[j], carry = b.fullAdder(acc[j], bit, carry)
			}
		}
		out = acc
	case OpBVShl, OpBVLshr:
		x := b.bv(t.Args[0])
		sh := b.bv(t.Args[1])
		out = b.barrelShift(x, sh, t.Op == OpBVShl)
	case OpBVConcat:
		hi := b.bv(t.Args[0])
		lo := b.bv(t.Args[1])
		out = make([]sat.Lit, 0, t.Width)
		out = append(out, lo...)
		out = append(out, hi...)
	case OpBVExtract:
		a := b.bv(t.Args[0])
		out = append([]sat.Lit(nil), a[t.Lo:t.Hi+1]...)
	case OpBVIte:
		c := b.boolLit(t.Args[0])
		x := b.bv(t.Args[1])
		y := b.bv(t.Args[2])
		out = make([]sat.Lit, t.Width)
		for i := range out {
			out[i] = b.mux(c, x[i], y[i])
		}
	default:
		panic(fmt.Sprintf("smt: blast: not a bit-vector op: %v", opNames[t.Op]))
	}
	b.bvCache[t.ID] = out
	return out
}

// barrelShift shifts x by the amount encoded in sh; left when isLeft.
// Amounts >= len(x) produce zero.
func (b *blaster) barrelShift(x []sat.Lit, sh []sat.Lit, isLeft bool) []sat.Lit {
	w := len(x)
	cur := append([]sat.Lit(nil), x...)
	stages := 0
	for 1<<stages < w {
		stages++
	}
	for s := 0; s < stages && s < len(sh); s++ {
		amt := 1 << s
		next := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var shifted sat.Lit
			if isLeft {
				if i-amt >= 0 {
					shifted = cur[i-amt]
				} else {
					shifted = b.litFalse()
				}
			} else {
				if i+amt < w {
					shifted = cur[i+amt]
				} else {
					shifted = b.litFalse()
				}
			}
			next[i] = b.mux(sh[s], shifted, cur[i])
		}
		cur = next
	}
	// Any shift bit at or above 'stages' zeroes the result.
	overflow := b.litFalse()
	for s := stages; s < len(sh); s++ {
		overflow = b.or(overflow, sh[s])
	}
	if !b.isFalse(overflow) {
		for i := range cur {
			cur[i] = b.and(cur[i], overflow.Not())
		}
	}
	return cur
}

// boolLit blasts a boolean term into a single literal.
func (b *blaster) boolLit(t *Term) sat.Lit {
	if got, ok := b.boolCache[t.ID]; ok {
		b.cacheHits++
		return got
	}
	b.cacheMisses++
	var out sat.Lit
	switch t.Op {
	case OpBoolConst:
		if t.ConstBool() {
			out = b.litTrue
		} else {
			out = b.litFalse()
		}
	case OpBoolVar:
		out = b.fresh()
	case OpNot:
		out = b.boolLit(t.Args[0]).Not()
	case OpAnd:
		out = b.and(b.boolLit(t.Args[0]), b.boolLit(t.Args[1]))
	case OpOr:
		out = b.or(b.boolLit(t.Args[0]), b.boolLit(t.Args[1]))
	case OpImplies:
		out = b.or(b.boolLit(t.Args[0]).Not(), b.boolLit(t.Args[1]))
	case OpIff:
		out = b.xor(b.boolLit(t.Args[0]), b.boolLit(t.Args[1])).Not()
	case OpBoolIte:
		out = b.mux(b.boolLit(t.Args[0]), b.boolLit(t.Args[1]), b.boolLit(t.Args[2]))
	case OpEq:
		x := b.bv(t.Args[0])
		y := b.bv(t.Args[1])
		out = b.litTrue
		for i := range x {
			out = b.and(out, b.xor(x[i], y[i]).Not())
		}
	case OpUlt, OpUle:
		x := b.bv(t.Args[0])
		y := b.bv(t.Args[1])
		// Process LSB to MSB; higher bits dominate.
		var lt sat.Lit
		if t.Op == OpUlt {
			lt = b.litFalse()
		} else {
			lt = b.litTrue // a <= b starts from equality counting as true
		}
		for i := 0; i < len(x); i++ {
			eq := b.xor(x[i], y[i]).Not()
			bi := b.and(x[i].Not(), y[i])
			lt = b.mux(eq, lt, bi)
		}
		out = lt
	default:
		panic(fmt.Sprintf("smt: blast: not a boolean op: %v", opNames[t.Op]))
	}
	b.boolCache[t.ID] = out
	return out
}
