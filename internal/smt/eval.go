package smt

import (
	"fmt"
	"math/big"
)

// Env maps variable names to concrete values for evaluation. Bit-vector
// variables map to *big.Int values; boolean variables map to bools.
type Env struct {
	BV   map[string]*big.Int
	Bool map[string]bool
}

// NewEnv returns an empty evaluation environment.
func NewEnv() *Env {
	return &Env{BV: map[string]*big.Int{}, Bool: map[string]bool{}}
}

// EvalBV evaluates a bit-vector term under env. Missing variables default
// to zero. The result is normalized into [0, 2^width).
func EvalBV(t *Term, env *Env) *big.Int {
	v, _ := eval(t, env, map[int]interface{}{})
	return v.(*big.Int)
}

// EvalBool evaluates a boolean term under env.
func EvalBool(t *Term, env *Env) bool {
	v, _ := eval(t, env, map[int]interface{}{})
	return v.(bool)
}

func eval(t *Term, env *Env, memo map[int]interface{}) (interface{}, error) {
	if v, ok := memo[t.ID]; ok {
		return v, nil
	}
	var res interface{}
	bv := func(i int) *big.Int {
		v, _ := eval(t.Args[i], env, memo)
		return v.(*big.Int)
	}
	bo := func(i int) bool {
		v, _ := eval(t.Args[i], env, memo)
		return v.(bool)
	}
	switch t.Op {
	case OpBVConst:
		res = t.Val
	case OpBoolConst:
		res = t.Val.Sign() != 0
	case OpBVVar:
		if v, ok := env.BV[t.Name]; ok {
			res = normConst(v, t.Width)
		} else {
			res = big.NewInt(0)
		}
	case OpBoolVar:
		res = env.Bool[t.Name]
	case OpBVNot:
		res = normConst(new(big.Int).Xor(bv(0), maskFor(t.Width)), t.Width)
	case OpBVNeg:
		res = normConst(new(big.Int).Neg(bv(0)), t.Width)
	case OpBVAnd:
		res = new(big.Int).And(bv(0), bv(1))
	case OpBVOr:
		res = new(big.Int).Or(bv(0), bv(1))
	case OpBVXor:
		res = new(big.Int).Xor(bv(0), bv(1))
	case OpBVAdd:
		res = normConst(new(big.Int).Add(bv(0), bv(1)), t.Width)
	case OpBVSub:
		res = normConst(new(big.Int).Sub(bv(0), bv(1)), t.Width)
	case OpBVMul:
		res = normConst(new(big.Int).Mul(bv(0), bv(1)), t.Width)
	case OpBVShl:
		sh := bv(1)
		if !sh.IsUint64() || sh.Uint64() >= uint64(t.Width) {
			res = big.NewInt(0)
		} else {
			res = normConst(new(big.Int).Lsh(bv(0), uint(sh.Uint64())), t.Width)
		}
	case OpBVLshr:
		sh := bv(1)
		if !sh.IsUint64() || sh.Uint64() >= uint64(t.Width) {
			res = big.NewInt(0)
		} else {
			res = new(big.Int).Rsh(bv(0), uint(sh.Uint64()))
		}
	case OpBVConcat:
		v := new(big.Int).Lsh(bv(0), uint(t.Args[1].Width))
		res = v.Or(v, bv(1))
	case OpBVExtract:
		v := new(big.Int).Rsh(bv(0), uint(t.Lo))
		res = normConst(v, t.Width)
	case OpBVIte:
		if bo(0) {
			res = bv(1)
		} else {
			res = bv(2)
		}
	case OpNot:
		res = !bo(0)
	case OpAnd:
		res = bo(0) && bo(1)
	case OpOr:
		res = bo(0) || bo(1)
	case OpImplies:
		res = !bo(0) || bo(1)
	case OpIff:
		res = bo(0) == bo(1)
	case OpEq:
		res = bv(0).Cmp(bv(1)) == 0
	case OpUlt:
		res = bv(0).Cmp(bv(1)) < 0
	case OpUle:
		res = bv(0).Cmp(bv(1)) <= 0
	case OpBoolIte:
		if bo(0) {
			res = bo(1)
		} else {
			res = bo(2)
		}
	default:
		return nil, fmt.Errorf("smt: eval: unknown op %d", t.Op)
	}
	memo[t.ID] = res
	return res, nil
}
