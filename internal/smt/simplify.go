package smt

import "math/big"

// Simplifier rewrites terms into equivalent but cheaper-to-blast forms:
// constant folding (by rebuilding through the Ctx constructors), extract
// and ite pushdown, bvand-with-contiguous-mask to concat/extract (which
// blast to zero clauses), equality decomposition over concatenations, and
// boolean absorption in the And/Not normal form the Ctx produces. The
// verification driver applies it once to the shared VC prefix in
// incremental mode so every downstream check blasts a smaller formula.
//
// All rewrites are local logical equivalences: for every environment the
// simplified term evaluates to the same value as the original (pinned by
// the property test in simplify_test.go). Results are memoized per term
// ID, so simplifying many assertions over one hash-consed DAG does the
// shared work once.
type Simplifier struct {
	ctx  *Ctx
	memo map[int]*Term

	// Rewrites counts visited DAG nodes whose simplified form differs
	// from the original (including changes induced by rewritten children).
	Rewrites int64
}

// NewSimplifier returns a simplifier producing terms in ctx. The ctx must
// be the one the input terms were built in.
func NewSimplifier(ctx *Ctx) *Simplifier {
	return &Simplifier{ctx: ctx, memo: map[int]*Term{}}
}

// Simplify returns an equivalent term. The traversal is an explicit-stack
// post-order walk: VC terms from large parser state spaces are too deep
// for recursion.
func (s *Simplifier) Simplify(t *Term) *Term {
	type frame struct {
		t        *Term
		expanded bool
	}
	stack := []frame{{t, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if _, ok := s.memo[f.t.ID]; ok {
			stack = stack[:len(stack)-1]
			continue
		}
		if !f.expanded {
			stack[len(stack)-1].expanded = true
			for _, a := range f.t.Args {
				if _, ok := s.memo[a.ID]; !ok {
					stack = append(stack, frame{a, false})
				}
			}
			continue
		}
		stack = stack[:len(stack)-1]
		u := s.rewrite(f.t)
		if u != f.t {
			s.Rewrites++
		}
		s.memo[f.t.ID] = u
	}
	return s.memo[t.ID]
}

// rewrite rebuilds t over its simplified children (folding constants via
// the constructors) and then applies the extra rules.
func (s *Simplifier) rewrite(t *Term) *Term {
	if len(t.Args) == 0 {
		return t // constants and variables
	}
	c := s.ctx
	args := make([]*Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = s.memo[a.ID]
	}
	var u *Term
	switch t.Op {
	case OpBVNot:
		u = c.BVNot(args[0])
	case OpBVNeg:
		u = c.BVNeg(args[0])
	case OpBVAnd:
		u = c.BVAnd(args[0], args[1])
	case OpBVOr:
		u = c.BVOr(args[0], args[1])
	case OpBVXor:
		u = c.BVXor(args[0], args[1])
	case OpBVAdd:
		u = c.BVAdd(args[0], args[1])
	case OpBVSub:
		u = c.BVSub(args[0], args[1])
	case OpBVMul:
		u = c.BVMul(args[0], args[1])
	case OpBVShl:
		u = c.BVShl(args[0], args[1])
	case OpBVLshr:
		u = c.BVLshr(args[0], args[1])
	case OpBVConcat:
		u = c.Concat(args[0], args[1])
	case OpBVExtract:
		u = c.Extract(args[0], t.Hi, t.Lo)
	case OpBVIte:
		u = c.Ite(args[0], args[1], args[2])
	case OpNot:
		u = c.Not(args[0])
	case OpAnd:
		u = c.And(args[0], args[1])
	case OpOr:
		u = c.Or(args...)
	case OpImplies:
		u = c.Implies(args[0], args[1])
	case OpIff:
		u = c.Iff(args[0], args[1])
	case OpEq:
		u = c.Eq(args[0], args[1])
	case OpUlt:
		u = c.Ult(args[0], args[1])
	case OpUle:
		u = c.Ule(args[0], args[1])
	case OpBoolIte:
		u = c.BoolIte(args[0], args[1], args[2])
	default:
		return t
	}
	return s.post(u)
}

// post applies the rules beyond what the constructors fold. u's children
// are already simplified.
func (s *Simplifier) post(u *Term) *Term {
	c := s.ctx
	switch u.Op {
	case OpBVAnd:
		if v := s.maskToSlice(u); v != nil {
			return v
		}
	case OpBVExtract:
		if v := s.extractPush(u); v != nil {
			return v
		}
	case OpBVIte:
		cond, a, b := u.Args[0], u.Args[1], u.Args[2]
		if cond.Op == OpNot {
			return s.post(c.Ite(cond.Args[0], b, a))
		}
		if a.Op == OpBVIte && a.Args[0] == cond {
			return s.post(c.Ite(cond, a.Args[1], b))
		}
		if b.Op == OpBVIte && b.Args[0] == cond {
			return s.post(c.Ite(cond, a, b.Args[2]))
		}
	case OpEq:
		if v := s.eqDecompose(u); v != nil {
			return v
		}
	case OpUlt:
		a, b := u.Args[0], u.Args[1]
		if b.Op == OpBVConst {
			switch {
			case b.Val.Sign() == 0:
				return c.False()
			case b.Val.Cmp(bigOne) == 0:
				return c.Eq(a, c.BV(0, a.Width))
			}
		}
		if a.Op == OpBVConst {
			switch {
			case a.Val.Sign() == 0:
				return c.Not(c.Eq(b, c.BV(0, b.Width)))
			case a.Val.Cmp(maskFor(a.Width)) == 0:
				return c.False()
			}
		}
	case OpUle:
		a, b := u.Args[0], u.Args[1]
		if b.Op == OpBVConst {
			switch {
			case b.Val.Sign() == 0:
				return c.Eq(a, c.BV(0, a.Width))
			case b.Val.Cmp(maskFor(b.Width)) == 0:
				return c.True()
			}
		}
		if a.Op == OpBVConst {
			switch {
			case a.Val.Sign() == 0:
				return c.True()
			case a.Val.Cmp(maskFor(a.Width)) == 0:
				return c.Eq(b, maskConst(c, b.Width))
			}
		}
	case OpAnd:
		x, y := u.Args[0], u.Args[1]
		if v, ok := s.absorb(x, y); ok {
			return v
		}
		if v, ok := s.absorb(y, x); ok {
			return v
		}
	case OpIff:
		if complementary(u.Args[0], u.Args[1]) {
			return c.False()
		}
	case OpBoolIte:
		cond, a, b := u.Args[0], u.Args[1], u.Args[2]
		if cond.Op == OpNot {
			return s.post(c.BoolIte(cond.Args[0], b, a))
		}
		if a.Op == OpBoolConst {
			if a.ConstBool() {
				return c.Or(cond, b) // ite(c, true, b) = c ∨ b
			}
			return c.And(c.Not(cond), b) // ite(c, false, b) = ¬c ∧ b
		}
		if b.Op == OpBoolConst {
			if b.ConstBool() {
				return c.Or(c.Not(cond), a) // ite(c, a, true) = ¬c ∨ a
			}
			return c.And(cond, a) // ite(c, a, false) = c ∧ a
		}
		if a.Op == OpBoolIte && a.Args[0] == cond {
			return s.post(c.BoolIte(cond, a.Args[1], b))
		}
		if b.Op == OpBoolIte && b.Args[0] == cond {
			return s.post(c.BoolIte(cond, a, b.Args[2]))
		}
		if complementary(a, b) {
			return c.Iff(cond, a) // ite(c, a, ¬a) = c <-> a
		}
	}
	return u
}

var bigOne = big.NewInt(1)

func maskConst(c *Ctx, w int) *Term { return c.BVBig(maskFor(w), w) }

// maskToSlice rewrites x & m, where m is a constant whose one-bits form a
// single contiguous run, into zeros ++ x[hi:lo] ++ zeros. Extract and
// concat blast to zero Tseitin clauses, so the rewrite deletes one AND
// gate per masked bit.
func (s *Simplifier) maskToSlice(u *Term) *Term {
	var m, x *Term
	switch {
	case u.Args[0].Op == OpBVConst:
		m, x = u.Args[0], u.Args[1]
	case u.Args[1].Op == OpBVConst:
		m, x = u.Args[1], u.Args[0]
	default:
		return nil
	}
	if m.Val.Sign() == 0 {
		return nil // folded by the constructor already
	}
	c := s.ctx
	lo := int(m.Val.TrailingZeroBits())
	run := new(big.Int).Rsh(m.Val, uint(lo))
	k := run.BitLen()
	ones := new(big.Int).Sub(new(big.Int).Lsh(bigOne, uint(k)), bigOne)
	if run.Cmp(ones) != 0 {
		return nil // holes in the mask
	}
	hi := lo + k - 1
	res := c.Extract(x, hi, lo)
	if lo > 0 {
		res = c.Concat(res, c.BV(0, lo))
	}
	if hi < u.Width-1 {
		res = c.Concat(c.BV(0, u.Width-1-hi), res)
	}
	return res
}

// extractPush narrows an extract over a concatenation to the covered
// parts. (Extract over extract and full-width extracts are already folded
// by the constructor.)
func (s *Simplifier) extractPush(u *Term) *Term {
	inner := u.Args[0]
	if inner.Op != OpBVConcat {
		return nil
	}
	c := s.ctx
	hiPart, loPart := inner.Args[0], inner.Args[1]
	loW := loPart.Width
	switch {
	case u.Hi < loW:
		return c.Extract(loPart, u.Hi, u.Lo)
	case u.Lo >= loW:
		return c.Extract(hiPart, u.Hi-loW, u.Lo-loW)
	default:
		return c.Concat(c.Extract(hiPart, u.Hi-loW, 0), c.Extract(loPart, loW-1, u.Lo))
	}
}

// eqDecompose splits equalities over concatenations into conjunctions of
// narrower equalities (a big win for parser state encodings, which compare
// zero-extended state words against constants), and pushes equalities into
// ites when a branch matches the other side or constants fold.
func (s *Simplifier) eqDecompose(u *Term) *Term {
	c := s.ctx
	a, b := u.Args[0], u.Args[1]
	if a.Op != OpBVConcat {
		a, b = b, a
	}
	if a.Op == OpBVConcat {
		hiA, loA := a.Args[0], a.Args[1]
		if b.Op == OpBVConcat && b.Args[0].Width == hiA.Width {
			return c.And(c.Eq(hiA, b.Args[0]), c.Eq(loA, b.Args[1]))
		}
		if b.Op == OpBVConst {
			hiV := new(big.Int).Rsh(b.Val, uint(loA.Width))
			loV := new(big.Int).And(b.Val, maskFor(loA.Width))
			return c.And(c.Eq(hiA, c.BVBig(hiV, hiA.Width)), c.Eq(loA, c.BVBig(loV, loA.Width)))
		}
	}
	a, b = u.Args[0], u.Args[1]
	if a.Op != OpBVIte {
		a, b = b, a
	}
	if a.Op == OpBVIte {
		cond, x, y := a.Args[0], a.Args[1], a.Args[2]
		if x == b || y == b || (b.Op == OpBVConst && (x.Op == OpBVConst || y.Op == OpBVConst)) {
			return s.post(c.BoolIte(cond, c.Eq(x, b), c.Eq(y, b)))
		}
	}
	return nil
}

// absorb applies x ∧ ¬(p ∧ q) absorption: with p (or q) the complement of
// x the conjunct is implied (x ∧ (x ∨ ¬q) = x); with p (or q) equal to x
// it shrinks to x ∧ ¬q. This is the Or-form absorption — Ctx builds a ∨ b
// as ¬(¬a ∧ ¬b), so redundant disjuncts surface in exactly this shape.
func (s *Simplifier) absorb(x, y *Term) (*Term, bool) {
	if y.Op != OpNot || y.Args[0].Op != OpAnd {
		return nil, false
	}
	c := s.ctx
	p, q := y.Args[0].Args[0], y.Args[0].Args[1]
	if complementary(p, x) || complementary(q, x) {
		return x, true
	}
	if p == x {
		return c.And(x, c.Not(q)), true
	}
	if q == x {
		return c.And(x, c.Not(p)), true
	}
	return nil, false
}

func complementary(a, b *Term) bool {
	return (a.Op == OpNot && a.Args[0] == b) || (b.Op == OpNot && b.Args[0] == a)
}
