package smt

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
)

// TestBlastSmallWidthExhaustive checks the blaster's adder, multiplier and
// barrel-shifter paths against the reference evaluator for EVERY input pair
// at degenerate and non-power-of-two widths (1, 2, 3, 5). Shift amounts
// come from the full operand range, so the overflow-zeroing stages of the
// barrel shifter are covered too.
func TestBlastSmallWidthExhaustive(t *testing.T) {
	type opCase struct {
		name  string
		unary bool
		build func(c *Ctx, x, y *Term) *Term
	}
	ops := []opCase{
		{"add", false, func(c *Ctx, x, y *Term) *Term { return c.BVAdd(x, y) }},
		{"sub", false, func(c *Ctx, x, y *Term) *Term { return c.BVSub(x, y) }},
		{"neg", true, func(c *Ctx, x, _ *Term) *Term { return c.BVNeg(x) }},
		{"mul", false, func(c *Ctx, x, y *Term) *Term { return c.BVMul(x, y) }},
		{"shl", false, func(c *Ctx, x, y *Term) *Term { return c.BVShl(x, y) }},
		{"lshr", false, func(c *Ctx, x, y *Term) *Term { return c.BVLshr(x, y) }},
	}
	for _, w := range []int{1, 2, 3, 5} {
		for _, op := range ops {
			t.Run(fmt.Sprintf("%s_w%d", op.name, w), func(t *testing.T) {
				c := NewCtx()
				x, y := c.Var("x", w), c.Var("y", w)
				out := c.Var("out", w)
				term := op.build(c, x, y)
				s := NewSolver(c)
				s.Assert(c.Eq(term, out))
				n := 1 << w
				ym := n
				if op.unary {
					ym = 1
				}
				env := NewEnv()
				for a := 0; a < n; a++ {
					for b := 0; b < ym; b++ {
						env.BV["x"] = big.NewInt(int64(a))
						env.BV["y"] = big.NewInt(int64(b))
						want := EvalBV(term, env)
						ax := c.Eq(x, c.BV(uint64(a), w))
						ay := c.Eq(y, c.BV(uint64(b), w))
						if st := s.Check(ax, ay, c.Eq(out, c.BVBig(want, w))); st != Sat {
							t.Fatalf("x=%d y=%d: out=%v should be sat, got %v", a, b, want, st)
						}
						if st := s.Check(ax, ay, c.Neq(out, c.BVBig(want, w))); st != Unsat {
							t.Fatalf("x=%d y=%d: out!=%v should be unsat, got %v", a, b, want, st)
						}
					}
				}
			})
		}
	}
}

// TestBlastCompareSmallWidthExhaustive does the same for the comparison
// chains (Eq, Ult, Ule), whose LSB-to-MSB mux ladder degenerates at width 1.
func TestBlastCompareSmallWidthExhaustive(t *testing.T) {
	type cmpCase struct {
		name  string
		build func(c *Ctx, x, y *Term) *Term
		eval  func(a, b int) bool
	}
	cmps := []cmpCase{
		{"eq", func(c *Ctx, x, y *Term) *Term { return c.Eq(x, y) },
			func(a, b int) bool { return a == b }},
		{"ult", func(c *Ctx, x, y *Term) *Term { return c.Ult(x, y) },
			func(a, b int) bool { return a < b }},
		{"ule", func(c *Ctx, x, y *Term) *Term { return c.Ule(x, y) },
			func(a, b int) bool { return a <= b }},
	}
	for _, w := range []int{1, 2, 3, 5} {
		for _, cmp := range cmps {
			t.Run(fmt.Sprintf("%s_w%d", cmp.name, w), func(t *testing.T) {
				c := NewCtx()
				x, y := c.Var("x", w), c.Var("y", w)
				p := cmp.build(c, x, y)
				s := NewSolver(c)
				n := 1 << w
				for a := 0; a < n; a++ {
					for b := 0; b < n; b++ {
						ax := c.Eq(x, c.BV(uint64(a), w))
						ay := c.Eq(y, c.BV(uint64(b), w))
						want := cmp.eval(a, b)
						st := s.Check(ax, ay, p)
						if (st == Sat) != want {
							t.Fatalf("x=%d y=%d: %s = %v, want %v", a, b, cmp.name, st, want)
						}
						st = s.Check(ax, ay, c.Not(p))
						if (st == Sat) != !want {
							t.Fatalf("x=%d y=%d: !%s = %v, want %v", a, b, cmp.name, st, !want)
						}
					}
				}
			})
		}
	}
}

// TestPreprocessBlastedQFBVDifferential is the QF_BV half of the
// preprocessing property test: random blasted bit-vector constraints must
// get the same verdict with preprocessing on, and the reconstructed model
// must satisfy the original (un-preprocessed) terms under the reference
// evaluator.
func TestPreprocessBlastedQFBVDifferential(t *testing.T) {
	for iter := 0; iter < 120; iter++ {
		rng := rand.New(rand.NewSource(int64(7000 + iter)))
		c := NewCtx()
		w := []int{1, 3, 4, 8}[rng.Intn(4)]
		x := c.Var("x", w)
		y := c.Var("y", w)
		t1 := randTerm(c, rng, []*Term{x, y}, 3)
		t2 := randTerm(c, rng, []*Term{x, y}, 3)
		var cond *Term
		switch rng.Intn(3) {
		case 0:
			cond = c.Eq(t1, t2)
		case 1:
			cond = c.Ult(t1, t2)
		default:
			cond = c.And(c.Ule(t1, t2), c.Neq(t1, c.BV(0, w)))
		}

		plain, prep := NewSolver(c), NewSolver(c)
		prep.SetPreprocess(true)
		plain.Assert(cond)
		prep.Assert(cond)

		st, want := prep.Check(), plain.Check()
		if st != want {
			t.Fatalf("iter %d: preprocess verdict %v, plain %v (cond %v)", iter, st, want, cond)
		}
		if st != Sat {
			continue
		}
		m := prep.Model()
		if !EvalBool(cond, m.Env()) {
			t.Fatalf("iter %d: reconstructed model does not satisfy the original term", iter)
		}
		// A second incremental query with an extra pinning assumption must
		// also agree — this drives the freeze/restore machinery.
		pin := c.Eq(x, c.BVBig(EvalBV(x, m.Env()), w))
		st, want = prep.Check(pin), plain.Check(pin)
		if st != want {
			t.Fatalf("iter %d: pinned verdict %v, plain %v", iter, st, want)
		}
	}
}
