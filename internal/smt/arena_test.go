package smt

import (
	"sync"
	"testing"
)

// TestArenaPointerStabilityAcrossChunks pins the chunked-slab contract:
// growing the arena past several chunk boundaries must never move a term —
// pointers handed out early stay valid and re-interning returns the
// identical pointer (the property blasting and the parallel engine rely
// on, since they hold *Term across arbitrary later construction).
func TestArenaPointerStabilityAcrossChunks(t *testing.T) {
	c := NewCtx()
	n := 3*termChunk + termChunk/2
	held := make([]*Term, 0, n)
	for i := 0; i < n; i++ {
		held = append(held, c.BV(uint64(i), 64))
	}
	if c.NumTerms() < n {
		t.Fatalf("created %d terms, want >= %d", c.NumTerms(), n)
	}
	for i, p := range held {
		if q := c.BV(uint64(i), 64); q != p {
			t.Fatalf("term %d moved across chunk growth: re-interning returned a different pointer", i)
		}
		if p.Op != OpBVConst || p.Width != 64 || p.Val == nil || p.Val.Uint64() != uint64(i) {
			t.Fatalf("term %d corrupted after chunk growth: %+v", i, p)
		}
	}
}

// TestMarkReleaseRoundTrip exercises the streaming-VC arena rollback:
// transients spanning multiple chunks are discarded, survivors stay
// interned at their original pointers, released IDs are reused, and the
// release counter accounts for every discarded term.
func TestMarkReleaseRoundTrip(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	y := c.Var("y", 32)
	keep := c.BVAdd(x, y)
	mark := c.Mark()

	for i := 0; i < 2*termChunk+17; i++ {
		c.BVAdd(x, c.BV(uint64(1_000_000+i), 32))
	}
	before := c.NumTerms()
	if before <= mark+2*termChunk {
		t.Fatalf("transients did not span chunks: %d terms past mark %d", before-mark, mark)
	}
	rel0 := c.ReleasedTerms()
	c.Release(mark)
	if got := c.NumTerms(); got != mark {
		t.Fatalf("NumTerms after release = %d, want mark %d", got, mark)
	}
	if got := c.ReleasedTerms() - rel0; got != int64(before-mark) {
		t.Fatalf("ReleasedTerms delta = %d, want %d", got, before-mark)
	}

	// Survivors are intact and still interned at the same addresses.
	if c.Var("x", 32) != x || c.Var("y", 32) != y || c.BVAdd(x, y) != keep {
		t.Fatal("pre-mark terms no longer interned at their original pointers")
	}

	// New terms reuse the released ID range.
	cst := c.BV(123456, 32)
	sum := c.BVAdd(x, cst)
	if cst.ID < mark || sum.ID < mark || sum.ID >= mark+2 {
		t.Fatalf("released IDs not reused: const %d, add %d, mark %d", cst.ID, sum.ID, mark)
	}
	if sum.Op != OpBVAdd || sum.Args[0] != x || sum.Args[1] != cst {
		t.Fatalf("post-release term malformed: %+v", sum)
	}

	// Release is idempotent on the watermark: rolling back again (and on an
	// already-clean arena) leaves exactly the survivors.
	c.Release(mark)
	c.Release(mark)
	if got := c.NumTerms(); got != mark {
		t.Fatalf("NumTerms after repeat release = %d, want %d", got, mark)
	}

	// Re-creating a released transient yields a structurally identical term.
	a := c.BVAdd(x, c.BV(777, 32))
	aID := a.ID
	c.Release(mark)
	b := c.BVAdd(x, c.BV(777, 32))
	if b.ID != aID || b.Op != OpBVAdd || b.Args[0] != x ||
		b.Args[1].Val == nil || b.Args[1].Val.Uint64() != 777 {
		t.Fatalf("re-created transient differs: id %d vs %d, %+v", b.ID, aID, b)
	}
}

// TestReleaseFrozenPanics pins the ownership rule: a frozen (shared)
// context must refuse Release — the streaming engine is serial for
// exactly this reason.
func TestReleaseFrozenPanics(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 8)
	mark := c.Mark()
	c.BVAdd(x, c.BV(9, 8))
	c.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Release on frozen Ctx did not panic")
		}
	}()
	c.Release(mark)
}

// TestInternStatsFrozenConsistency asserts the instrumentation invariants
// under 4-worker contention on a frozen context (run under -race in CI):
// every intern miss creates exactly one term — so two workers racing to
// intern the same new term must not double-create it — post-freeze
// interning takes the lock (frozenLocks grows), and re-interning from
// workers hits the table.
func TestInternStatsFrozenConsistency(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	h0, m0, _ := c.InternStats()
	if n0 := c.NumTerms(); m0 != int64(n0) {
		t.Fatalf("pre-freeze: misses %d != terms created %d", m0, n0)
	}
	c.Freeze()

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every worker builds the same term set, so all but the first
			// interning of each distinct term must hit.
			for i := 0; i < 500; i++ {
				_ = c.BVAdd(x, c.BV(uint64(i%100), 32))
			}
		}()
	}
	wg.Wait()

	h1, m1, f1 := c.InternStats()
	if m1 != int64(c.NumTerms()) {
		t.Errorf("misses %d != terms created %d: a racing miss double-created or lost a term",
			m1, c.NumTerms())
	}
	if h1 <= h0 {
		t.Errorf("intern hits did not grow (%d -> %d) despite workers re-building shared terms", h0, h1)
	}
	if f1 == 0 {
		t.Error("frozenLocks stayed 0 despite post-freeze interning")
	}
}
