package smt

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// randBoolTerm builds a random boolean term over bit-vector vars and bool
// vars, exercising every op the simplifier rewrites.
func randBoolTerm(c *Ctx, rng *rand.Rand, bvs, bools []*Term, depth int) *Term {
	if depth == 0 || rng.Intn(5) == 0 {
		switch rng.Intn(4) {
		case 0:
			return bools[rng.Intn(len(bools))]
		case 1:
			return c.Bool(rng.Intn(2) == 0)
		default:
			a := randTerm(c, rng, bvs, 1)
			b := randTerm(c, rng, bvs, 1)
			switch rng.Intn(3) {
			case 0:
				return c.Eq(a, b)
			case 1:
				return c.Ult(a, b)
			default:
				return c.Ule(a, b)
			}
		}
	}
	a := randBoolTerm(c, rng, bvs, bools, depth-1)
	b := randBoolTerm(c, rng, bvs, bools, depth-1)
	switch rng.Intn(6) {
	case 0:
		return c.And(a, b)
	case 1:
		return c.Or(a, b)
	case 2:
		return c.Not(a)
	case 3:
		return c.Iff(a, b)
	case 4:
		return c.Implies(a, b)
	default:
		return c.BoolIte(a, b, randBoolTerm(c, rng, bvs, bools, depth-1))
	}
}

// TestSimplifySoundness is the core property: a simplified term evaluates
// identically to the original under random environments. Both bit-vector
// terms (with extract/concat/ite sprinkled in) and boolean terms are
// covered.
func TestSimplifySoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCtx()
		w := []int{1, 4, 8, 16}[rng.Intn(4)]
		x := c.Var("x", w)
		y := c.Var("y", w)
		bools := []*Term{c.BoolVar("p"), c.BoolVar("q")}
		bvs := []*Term{x, y}

		// Mix in shapes the plain randTerm rarely produces: masks,
		// slices, concat equalities.
		base := randTerm(c, rng, bvs, 3)
		mask := c.BV(rng.Uint64(), w)
		shaped := []*Term{
			base,
			c.BVAnd(base, mask),
			c.Concat(base, randTerm(c, rng, bvs, 2)),
			c.Ite(randBoolTerm(c, rng, bvs, bools, 1), base, randTerm(c, rng, bvs, 2)),
		}
		bv := shaped[rng.Intn(len(shaped))]
		if bv.Width > 1 {
			lo := rng.Intn(bv.Width)
			hi := lo + rng.Intn(bv.Width-lo)
			if rng.Intn(2) == 0 {
				bv = c.Extract(bv, hi, lo)
			}
		}
		boolT := c.And(
			randBoolTerm(c, rng, bvs, bools, 3),
			c.Eq(c.ZeroExt(x, w+8), c.BV(rng.Uint64(), w+8)),
		)

		s := NewSimplifier(c)
		sbv := s.Simplify(bv)
		sbool := s.Simplify(boolT)
		if sbv.Width != bv.Width || !sbool.IsBool() {
			return false
		}

		for trial := 0; trial < 16; trial++ {
			env := NewEnv()
			env.BV["x"] = normConst(new(big.Int).SetUint64(rng.Uint64()), w)
			env.BV["y"] = normConst(new(big.Int).SetUint64(rng.Uint64()), w)
			env.Bool["p"] = rng.Intn(2) == 0
			env.Bool["q"] = rng.Intn(2) == 0
			if EvalBV(bv, env).Cmp(EvalBV(sbv, env)) != 0 {
				return false
			}
			if EvalBool(boolT, env) != EvalBool(sbool, env) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyMaskToSlice(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 16)
	s := NewSimplifier(c)
	// Low-bit mask: x & 0x00ff -> 0x00 ++ x[7:0].
	got := s.Simplify(c.BVAnd(x, c.BV(0x00ff, 16)))
	want := c.Concat(c.BV(0, 8), c.Extract(x, 7, 0))
	if got != want {
		t.Fatalf("low mask: got %v, want %v", got, want)
	}
	// Mid-run mask: x & 0x0ff0 -> 0 ++ x[11:4] ++ 0.
	got = s.Simplify(c.BVAnd(x, c.BV(0x0ff0, 16)))
	if hasOp(got, OpBVAnd) {
		t.Fatalf("mid mask: AND gate survived: %v", got)
	}
	// Holey mask: untouched.
	got = s.Simplify(c.BVAnd(x, c.BV(0x0f0f, 16)))
	if !hasOp(got, OpBVAnd) {
		t.Fatalf("holey mask should stay an AND: %v", got)
	}
	if s.Rewrites == 0 {
		t.Fatal("Rewrites counter did not advance")
	}
}

func TestSimplifyEqConcatSplit(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 8)
	s := NewSimplifier(c)
	// The parser-state shape: ZeroExt(x, 16) == 0x0042 splits into the
	// trivially-true upper half and an 8-bit equality.
	got := s.Simplify(c.Eq(c.ZeroExt(x, 16), c.BV(0x42, 16)))
	if got != c.Eq(x, c.BV(0x42, 8)) {
		t.Fatalf("got %v, want x == 0x42", got)
	}
	// An impossible upper half folds the whole equality to false.
	got = s.Simplify(c.Eq(c.ZeroExt(x, 16), c.BV(0x1042, 16)))
	if got != c.False() {
		t.Fatalf("got %v, want false", got)
	}
}

func TestSimplifyAbsorption(t *testing.T) {
	c := NewCtx()
	p := c.BoolVar("p")
	q := c.BoolVar("q")
	s := NewSimplifier(c)
	// p ∧ (p ∨ q) = p. Ctx builds the Or as ¬(¬p ∧ ¬q).
	if got := s.Simplify(c.And(p, c.Or(p, q))); got != p {
		t.Fatalf("p ∧ (p∨q): got %v, want p", got)
	}
	// p ∧ (¬p ∨ q) = p ∧ q.
	if got := s.Simplify(c.And(p, c.Or(c.Not(p), q))); got != c.And(p, q) {
		t.Fatalf("p ∧ (¬p∨q): got %v, want p∧q", got)
	}
}

func TestSimplifyCompareBounds(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 8)
	s := NewSimplifier(c)
	zero := c.BV(0, 8)
	if got := s.Simplify(c.Ult(x, c.BV(1, 8))); got != c.Eq(x, zero) {
		t.Fatalf("x<1: got %v", got)
	}
	if got := s.Simplify(c.Ule(x, zero)); got != c.Eq(x, zero) {
		t.Fatalf("x<=0: got %v", got)
	}
	if got := s.Simplify(c.Ule(x, c.BV(255, 8))); got != c.True() {
		t.Fatalf("x<=255: got %v", got)
	}
	if got := s.Simplify(c.Ult(c.BV(255, 8), x)); got != c.False() {
		t.Fatalf("255<x: got %v", got)
	}
}

func TestSimplifyIte(t *testing.T) {
	c := NewCtx()
	p := c.BoolVar("p")
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	z := c.Var("z", 8)
	s := NewSimplifier(c)
	// Negated condition flips branches.
	if got := s.Simplify(c.Ite(c.Not(p), x, y)); got != c.Ite(p, y, x) {
		t.Fatalf("ite(¬p,x,y): got %v", got)
	}
	// Nested same-condition ites collapse.
	inner := c.Ite(p, x, y)
	if got := s.Simplify(c.Ite(p, inner, z)); got != c.Ite(p, x, z) {
		t.Fatalf("nested ite: got %v", got)
	}
	// Equality against a matching branch becomes a conditional equality.
	got := s.Simplify(c.Eq(c.Ite(p, x, y), x))
	want := s.post(c.BoolIte(p, c.True(), c.Eq(x, y)))
	if got != want {
		t.Fatalf("eq-ite: got %v, want %v", got, want)
	}
}

func hasOp(t *Term, op Op) bool {
	seen := map[int]bool{}
	stack := []*Term{t}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x.ID] {
			continue
		}
		seen[x.ID] = true
		if x.Op == op {
			return true
		}
		stack = append(stack, x.Args...)
	}
	return false
}
