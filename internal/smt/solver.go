package smt

import (
	"math/big"
	"sync/atomic"

	"aquila/internal/sat"
)

// Status re-exports the SAT verdict type for callers that only import smt.
type Status = sat.Status

// Verdicts.
const (
	Unknown = sat.Unknown
	Sat     = sat.Sat
	Unsat   = sat.Unsat
)

// Solver is an incremental QF_BV solver: assert boolean terms, check
// satisfiability (optionally under assumptions), extract models.
type Solver struct {
	ctx *Ctx
	sat *sat.Solver
	b   *blaster

	asserted []*Term
	blasted  map[int]bool // variable terms whose bits are allocated
}

// NewSolver returns a fresh solver over the given term context.
func NewSolver(ctx *Ctx) *Solver {
	s := sat.New()
	return &Solver{ctx: ctx, sat: s, b: newBlaster(s), blasted: map[int]bool{}}
}

// Ctx returns the term context the solver operates over.
func (s *Solver) Ctx() *Ctx { return s.ctx }

// SetBudget bounds the number of SAT conflicts for subsequent checks;
// exceeding it yields Unknown. Negative removes the bound.
func (s *Solver) SetBudget(conflicts int64) { s.sat.SetBudget(conflicts) }

// SetLearntCap bounds the learnt-clause database of the underlying SAT
// core. Long-lived incremental solvers answering many queries use this to
// keep memory flat; values <= 0 remove the bound.
func (s *Solver) SetLearntCap(n int) { s.sat.SetLearntCap(n) }

// SetPreprocess enables SatELite-style CNF preprocessing (subsumption,
// self-subsuming resolution, bounded variable elimination) in the SAT
// core. Models are reconstructed for eliminated variables and assumption/
// indicator variables are exempt, so verdicts, models, and unsat cores are
// unchanged; only the search gets cheaper.
func (s *Solver) SetPreprocess(on bool) { s.sat.SetPreprocess(on) }

// Preprocess runs one preprocessing round immediately; it returns false if
// simplification alone proves the asserted constraints unsatisfiable.
func (s *Solver) Preprocess() bool { return s.sat.Preprocess() }

// Personality re-exports the SAT core's search-heuristic configuration for
// portfolio racing; see sat.Personality.
type Personality = sat.Personality

// Portfolio returns k racing personalities; index 0 is always the exact
// baseline solver.
func Portfolio(k int) []Personality { return sat.Portfolio(k) }

// SetPersonality applies search-heuristic knobs to the underlying SAT
// core. Verdicts are unaffected; only the path to them changes.
func (s *Solver) SetPersonality(p Personality) { s.sat.SetPersonality(p) }

// SetCancel installs a shared cancellation token on the SAT core: once it
// becomes true, in-flight and future checks return Unknown at the next
// cooperative poll. nil removes the token.
func (s *Solver) SetCancel(c *atomic.Bool) { s.sat.SetCancel(c) }

// Canceled reports whether the last check's Unknown came from the
// cancellation token rather than the conflict budget.
func (s *Solver) Canceled() bool { return s.sat.Canceled() }

// Stats returns (decisions, conflicts, propagations) of the underlying SAT
// solver.
func (s *Solver) Stats() (int64, int64, int64) {
	return s.sat.Decisions, s.sat.Conflicts, s.sat.Propagations
}

// SolverStats is a point-in-time snapshot of one solver instance's work:
// the SAT core's search counters plus the bit-blasting layer's cache and
// CNF-emission counters. The verification driver sums these across every
// instance a run creates — the per-assertion cost breakdown the paper's
// Figure 11 plots.
type SolverStats struct {
	Decisions      int64
	Conflicts      int64
	Propagations   int64
	Restarts       int64
	LearntClauses  int64
	LearntLits     int64
	LearntDeleted  int64 // learnt clauses evicted by database reduction
	ElimVars       int64 // variables removed by bounded variable elimination
	Subsumed       int64 // clauses deleted by subsumption
	Strengthened   int64 // clauses shrunk by self-subsuming resolution
	TseitinClauses int64 // CNF clauses emitted by the blaster (>= retained)
	BlastHits      int64 // per-term blast-cache hits
	BlastMisses    int64 // per-term blast-cache misses
	Clauses        int   // problem clauses retained by the SAT core
	SATVars        int   // SAT variables allocated
	// LearntSizes is the learnt-clause length distribution in log2
	// buckets; the driver folds it into the flight recorder's
	// sat.learnt_clause_size histogram.
	LearntSizes [sat.NumLearntSizeBuckets]int64
}

// SolverStats snapshots the instance's counters.
func (s *Solver) SolverStats() SolverStats {
	return SolverStats{
		Decisions:      s.sat.Decisions,
		Conflicts:      s.sat.Conflicts,
		Propagations:   s.sat.Propagations,
		Restarts:       s.sat.Restarts,
		LearntClauses:  s.sat.Learnt,
		LearntLits:     s.sat.LearntLits,
		LearntDeleted:  s.sat.Deleted,
		ElimVars:       s.sat.ElimVars,
		Subsumed:       s.sat.SubsumedClauses,
		Strengthened:   s.sat.StrengthenedClauses,
		TseitinClauses: s.b.clausesEmitted,
		BlastHits:      s.b.cacheHits,
		BlastMisses:    s.b.cacheMisses,
		Clauses:        s.sat.NumClauses(),
		SATVars:        s.sat.NumVars(),
		LearntSizes:    s.sat.LearntSizes,
	}
}

// NumLearntSizeBuckets re-exports the SAT core's learnt-size bucket
// count so the verification driver can delta LearntSizes arrays without
// importing internal/sat.
const NumLearntSizeBuckets = sat.NumLearntSizeBuckets

// SolveProgress is the SAT core's heartbeat sample, re-exported so the
// verification driver can install progress publishers without importing
// internal/sat.
type SolveProgress = sat.Progress

// SetProgress installs fn to fire every `every` conflicts during
// subsequent checks (nil fn or every <= 0 disables). The callback runs
// on the solving goroutine; see sat.Solver.SetProgress.
func (s *Solver) SetProgress(every int64, fn func(SolveProgress)) {
	s.sat.SetProgress(every, fn)
}

// NumClauses reports the size of the generated CNF, a proxy for solver
// memory (what the paper reports as verification memory).
func (s *Solver) NumClauses() int { return s.sat.NumClauses() }

// NumSATVars reports the number of allocated SAT variables.
func (s *Solver) NumSATVars() int { return s.sat.NumVars() }

// Assert adds a boolean term as a hard constraint.
func (s *Solver) Assert(t *Term) {
	mustBool("Assert", t)
	s.asserted = append(s.asserted, t)
	l := s.b.boolLit(t)
	s.sat.AddClause(l)
}

// Indicator blasts a boolean term and returns a SAT literal equivalent to
// it, without asserting it. Used for assumptions and MaxSAT soft clauses.
// The literal's variable is frozen: an activation literal's truth varies
// per query, so CNF preprocessing must never resolve it away between
// incremental checks.
func (s *Solver) Indicator(t *Term) sat.Lit {
	mustBool("Indicator", t)
	l := s.b.boolLit(t)
	s.sat.FreezeVar(l.Var())
	return l
}

// Retire releases an indicator literal obtained from Indicator: the
// variable is unfrozen, so CNF preprocessing may eliminate it and
// resolve the stale cone's clauses away in later rounds. Retiring never
// constrains the formula — the retired condition's truth stays free, so
// verdicts of subsequent checks are unaffected; only dead weight becomes
// reclaimable. If the condition recurs, Indicator re-freezes the
// variable (restoring it first if it was eliminated), so retirement is
// always safe, even speculatively.
func (s *Solver) Retire(l sat.Lit) { s.sat.UnfreezeVar(l.Var()) }

// Check determines satisfiability of the asserted constraints under the
// given boolean assumption terms.
func (s *Solver) Check(assumptions ...*Term) Status {
	lits := make([]sat.Lit, len(assumptions))
	for i, a := range assumptions {
		lits[i] = s.Indicator(a)
	}
	return s.sat.Solve(lits...)
}

// CheckLits is Check with pre-blasted assumption literals.
func (s *Solver) CheckLits(assumptions ...sat.Lit) Status {
	return s.sat.Solve(assumptions...)
}

// UnsatAssumptions returns, after an Unsat verdict under assumptions, the
// subset of assumption indices that participated in the conflict.
func (s *Solver) UnsatAssumptions(assumptions []*Term) []int {
	conflict := s.sat.Conflict()
	inConflict := map[sat.Lit]bool{}
	for _, l := range conflict {
		inConflict[l] = true
	}
	var out []int
	for i, a := range assumptions {
		if inConflict[s.Indicator(a).Not()] {
			out = append(out, i)
		}
	}
	return out
}

// Model captures a satisfying assignment. Values of terms are obtained by
// evaluating them under the variable assignment, so any term over the same
// context can be queried, including terms never blasted.
type Model struct {
	env *Env
}

// Model returns the model after a Sat verdict. Variables that were never
// part of the blasted formula evaluate to zero/false.
func (s *Solver) Model() *Model {
	env := NewEnv()
	// Walk every asserted term's variables and read their bits back. The
	// walk keeps an explicit stack: VC terms from deep parser state spaces
	// can be hundreds of thousands of concat/ite nodes deep, too deep for
	// recursion.
	seen := map[int]bool{}
	stack := make([]*Term, 0, 64)
	push := func(t *Term) {
		if !seen[t.ID] {
			seen[t.ID] = true
			stack = append(stack, t)
		}
	}
	for _, t := range s.asserted {
		push(t)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch t.Op {
		case OpBVVar:
			if lits, ok := s.b.bvCache[t.ID]; ok {
				v := new(big.Int)
				for i, l := range lits {
					if s.litValue(l) {
						v.SetBit(v, i, 1)
					}
				}
				env.BV[t.Name] = v
			}
		case OpBoolVar:
			if l, ok := s.b.boolCache[t.ID]; ok {
				env.Bool[t.Name] = s.litValue(l)
			}
		}
		for _, a := range t.Args {
			push(a)
		}
	}
	return &Model{env: env}
}

func (s *Solver) litValue(l sat.Lit) bool {
	v := s.sat.Value(l.Var())
	if l.Neg() {
		return !v
	}
	return v
}

// ModelCollect extends the model with variables reachable from extra terms
// (e.g. assumption terms not asserted).
func (s *Solver) ModelCollect(m *Model, terms ...*Term) {
	for _, t := range terms {
		for _, v := range Vars(t) {
			switch v.Op {
			case OpBVVar:
				if lits, ok := s.b.bvCache[v.ID]; ok {
					val := new(big.Int)
					for i, l := range lits {
						if s.litValue(l) {
							val.SetBit(val, i, 1)
						}
					}
					m.env.BV[v.Name] = val
				}
			case OpBoolVar:
				if l, ok := s.b.boolCache[v.ID]; ok {
					m.env.Bool[v.Name] = s.litValue(l)
				}
			}
		}
	}
}

// BV evaluates a bit-vector term under the model.
func (m *Model) BV(t *Term) *big.Int { return EvalBV(t, m.env) }

// Uint64 evaluates a bit-vector term under the model as a uint64.
func (m *Model) Uint64(t *Term) uint64 { return EvalBV(t, m.env).Uint64() }

// Bool evaluates a boolean term under the model.
func (m *Model) Bool(t *Term) bool { return EvalBool(t, m.env) }

// Env exposes the raw variable assignment of the model.
func (m *Model) Env() *Env { return m.env }

// Maximize finds an assignment satisfying all asserted hard constraints
// that maximizes the number of satisfied soft terms. It returns the model,
// the number of satisfied soft terms, and a status: Sat means the optimum
// was found, Unsat means the hard constraints alone are unsatisfiable, and
// Unknown means the conflict budget ran out before either could be
// established (during the initial hard check or mid-search). Callers with
// budgets must distinguish Unknown from Unsat — "ran out of time" is not
// "infeasible".
//
// The implementation is a linear UNSAT-to-SAT search on the number of
// violated soft constraints using a sequential-counter cardinality
// encoding; Aquila's bug localization (§5.2) uses this for
// "MAXSAT_i ¬rep_i" minimization, where the number of violated softs (the
// number of replaced tables) is expected to be small.
func (s *Solver) Maximize(soft []*Term) (*Model, int, Status) {
	switch st := s.Check(); st {
	case Unsat:
		return nil, 0, Unsat
	case Unknown:
		return nil, 0, Unknown
	}
	if len(soft) == 0 {
		return s.Model(), 0, Sat
	}
	// violated[i] is true when soft[i] is false.
	violated := make([]sat.Lit, len(soft))
	for i, t := range soft {
		violated[i] = s.Indicator(t).Not()
	}
	// Sequential counter: count[j] = "at least j+1 of violated are true".
	counts := s.cardinalityCounter(violated)
	for k := 0; k <= len(soft); k++ {
		// Assume at most k violated: ¬count[k] (i.e. not "at least k+1").
		var assumptions []sat.Lit
		if k < len(counts) {
			assumptions = append(assumptions, counts[k].Not())
		}
		switch st := s.sat.Solve(assumptions...); st {
		case Sat:
			m := s.Model()
			s.ModelCollect(m, soft...)
			return m, len(soft) - k, Sat
		case Unknown:
			return nil, 0, Unknown
		}
	}
	// Unreachable: with no cardinality assumption the hard constraints are
	// satisfiable per the initial check.
	m := s.Model()
	return m, 0, Sat
}

// cardinalityCounter builds a sequential (Sinz) counter over lits and
// returns outputs out[j] ≡ "at least j+1 of lits are true".
func (s *Solver) cardinalityCounter(lits []sat.Lit) []sat.Lit {
	n := len(lits)
	// reg[j] after processing i inputs: at least j+1 of the first i are true.
	reg := make([]sat.Lit, n)
	for j := range reg {
		reg[j] = s.b.litFalse()
	}
	for i := 0; i < n; i++ {
		next := make([]sat.Lit, n)
		for j := 0; j < n; j++ {
			ge := reg[j] // already ≥ j+1 without lits[i]
			var carry sat.Lit
			if j == 0 {
				carry = lits[i] // lits[i] alone reaches count 1
			} else {
				carry = s.b.and(reg[j-1], lits[i])
			}
			next[j] = s.b.or(ge, carry)
		}
		reg = next
	}
	return reg
}
