package tables

import "testing"

func TestParseSnapshot(t *testing.T) {
	src := `
# demo snapshot
table Ing.fwd {
  10.0.0.1 -> send(3)
  10.1.0.0/16 -> send(4)
  0x0a000000 &&& 0xff000000 -> send(5)
  1..9, 7 -> mark(2, 3)
  _ -> drop
}
table Ing.acl {
  20.0.1.0/24 -> deny(1)
}
`
	snap, err := ParseSnapshot(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Tables(); len(got) != 2 || got[0] != "Ing.acl" {
		t.Fatalf("tables = %v", got)
	}
	fwd := snap.Entries("Ing.fwd")
	if len(fwd) != 5 {
		t.Fatalf("fwd entries = %d", len(fwd))
	}
	// LPM entries sort before non-LPM by prefix length.
	if fwd[0].Keys[0].PrefixLen != 24 && fwd[0].Keys[0].PrefixLen != 16 {
		// acl has /24 but fwd's best prefix is /16
	}
	if fwd[0].Action != "send" || fwd[0].Args[0] != 4 {
		t.Fatalf("first (longest prefix) entry = %+v", fwd[0])
	}
	var exact *Entry
	for _, e := range fwd {
		if len(e.Keys) == 1 && e.Keys[0].Mask == ^uint64(0) {
			exact = e
		}
	}
	if exact == nil || exact.Keys[0].Value != 0x0A000001 {
		t.Fatalf("exact entry = %+v", exact)
	}
	var rng *Entry
	for _, e := range fwd {
		if len(e.Keys) == 2 {
			rng = e
		}
	}
	if rng == nil || !rng.Keys[0].IsRange || rng.Keys[0].Value != 1 || rng.Keys[0].High != 9 {
		t.Fatalf("range entry = %+v", rng)
	}
	if rng.Keys[1].Value != 7 || rng.Args[1] != 3 {
		t.Fatalf("range entry second key/args = %+v", rng)
	}
	if snap.NumEntries() != 6 {
		t.Fatalf("NumEntries = %d", snap.NumEntries())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"10.0.0.1 -> send(3)",          // entry outside table
		"table T {",                    // unterminated
		"table T {\n nonsense \n}",     // missing ->
		"table T {\n 1 -> a(xyz) \n}",  // bad arg
		"table T {\n 10.0.0 -> a \n}",  // bad dotted quad
		"}",                            // unmatched brace
		"table T {\ntable U {\n}\n}",   // nested
		"table T {\n 1/aa -> a() \n}",  // bad prefix
		"table T {\n 1 &&& zz -> a\n}", // bad mask
	}
	for _, src := range bad {
		if _, err := ParseSnapshot(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestLPMMask(t *testing.T) {
	km := LPM(0x0A010000, 16, 32)
	if km.Mask != 0xFFFF0000 {
		t.Fatalf("mask = %#x", km.Mask)
	}
	if km.Value != 0x0A010000 {
		t.Fatalf("value = %#x", km.Value)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSnapshot()
	s.Add("T", &Entry{Keys: []KeyMatch{Exact(1)}, Action: "a", Priority: -1})
	c := s.Clone()
	c.Add("T", &Entry{Keys: []KeyMatch{Exact(2)}, Action: "b", Priority: -1})
	if len(s.Entries("T")) != 1 || len(c.Entries("T")) != 2 {
		t.Fatal("clone not independent")
	}
	c.Entries("T")[0].Args = append(c.Entries("T")[0].Args, 9)
	if len(s.Entries("T")[0].Args) != 0 {
		t.Fatal("args aliased between clones")
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := NewSnapshot()
	s.Add("T", &Entry{Keys: []KeyMatch{Ternary(0, 0)}, Action: "last", Priority: -1})
	s.Add("T", &Entry{Keys: []KeyMatch{Exact(5)}, Action: "first", Priority: -1})
	es := s.Entries("T")
	if es[0].Action != "last" { // insertion order preserved for equal prefix
		t.Fatalf("entries = %+v", es)
	}
	// Explicit priorities override insertion order.
	s2 := NewSnapshot()
	s2.Add("T", &Entry{Keys: []KeyMatch{Exact(1)}, Action: "a", Priority: 5})
	s2.Add("T", &Entry{Keys: []KeyMatch{Exact(2)}, Action: "b", Priority: 1})
	if s2.Entries("T")[0].Action != "b" {
		t.Fatal("priority not respected")
	}
}
