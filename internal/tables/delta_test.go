package tables

import (
	"strings"
	"testing"
)

const roundTripSrc = `
table Ing.acl {
  20.0.1.0/24 -> deny(1)
}
table Ing.fwd {
  10.1.0.0/16 -> send(4)
  10.0.0.1 -> send(3)
  0x0a000000 &&& 0xff000000 -> send(5)
  1..9, 7 -> mark(2, 3)
  _ -> drop
}
`

// TestFormatRoundTrip is the snapshot round-trip contract: Format's
// output re-parses to an Equal snapshot, and re-formatting that parse
// reproduces the same bytes (Format is a fixpoint of parse∘format).
func TestFormatRoundTrip(t *testing.T) {
	snap, err := ParseSnapshot(roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(snap)
	back, err := ParseSnapshot(text)
	if err != nil {
		t.Fatalf("re-parsing Format output: %v\n%s", err, text)
	}
	if !Equal(snap, back) {
		t.Fatalf("round-tripped snapshot differs\noriginal:\n%s\nreparsed:\n%s", text, Format(back))
	}
	if again := Format(back); again != text {
		t.Fatalf("Format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, again)
	}
}

// TestFormatEmpty: nil and empty snapshots format to "" and Equal each
// other.
func TestFormatEmpty(t *testing.T) {
	if got := Format(nil); got != "" {
		t.Fatalf("Format(nil) = %q", got)
	}
	if got := Format(NewSnapshot()); got != "" {
		t.Fatalf("Format(empty) = %q", got)
	}
	if !Equal(nil, NewSnapshot()) || !Equal(nil, nil) {
		t.Fatal("nil and empty snapshots should be Equal")
	}
}

// TestFormatKeyKinds pins the textual form of every key-match kind.
func TestFormatKeyKinds(t *testing.T) {
	e := &Entry{
		Keys: []KeyMatch{
			Exact(7),
			LPM(0x0A010000, 16, 32),
			Ternary(0x0A, 0xFF),
			Range(1, 9),
			Wildcard(),
		},
		Action: "act",
		Args:   []uint64{1, 2},
	}
	got := FormatEntry(e)
	want := "7, 167837696/16, 0xa &&& 0xff, 1..9, _ -> act(1, 2)"
	if got != want {
		t.Fatalf("FormatEntry = %q, want %q", got, want)
	}
	back, err := parseEntry(got)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", got, err)
	}
	back.Priority = e.Priority
	if !entryEqual(e, back) {
		t.Fatalf("entry did not round-trip: %+v vs %+v", e, back)
	}
}

func TestDeltaApply(t *testing.T) {
	snap, err := ParseSnapshot("table T {\n 1 -> a\n 2 -> b\n 3 -> c\n}")
	if err != nil {
		t.Fatal(err)
	}
	d := &Delta{Ops: []DeltaOp{
		{Kind: OpRemove, Table: "T", Index: 1}, // drop "2 -> b"
		{Kind: OpReplace, Table: "T", Index: 1, // now "3 -> c"
			Entry: &Entry{Keys: []KeyMatch{Exact(3)}, Action: "d"}},
		{Kind: OpAdd, Table: "T",
			Entry: &Entry{Keys: []KeyMatch{Exact(9)}, Action: "e"}},
	}}
	if err := d.Apply(snap); err != nil {
		t.Fatal(err)
	}
	want, err := ParseSnapshot("table T {\n 1 -> a\n 3 -> d\n 9 -> e\n}")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(snap, want) {
		t.Fatalf("after delta:\n%s\nwant:\n%s", Format(snap), Format(want))
	}
}

// TestDeltaApplyClonesEntries: a delta applied twice must not alias its
// entries into the snapshots it produced.
func TestDeltaApplyClonesEntries(t *testing.T) {
	e := &Entry{Keys: []KeyMatch{Exact(1)}, Action: "a", Args: []uint64{5}}
	d := &Delta{Ops: []DeltaOp{{Kind: OpAdd, Table: "T", Entry: e}}}
	s1, s2 := NewSnapshot(), NewSnapshot()
	if err := d.Apply(s1); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(s2); err != nil {
		t.Fatal(err)
	}
	s1.Entries("T")[0].Args[0] = 99
	if s2.Entries("T")[0].Args[0] != 5 || e.Args[0] != 5 {
		t.Fatal("Apply aliased the delta's entry into the snapshot")
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	snap, err := ParseSnapshot("table T {\n 1 -> a\n}")
	if err != nil {
		t.Fatal(err)
	}
	bad := []*Delta{
		{Ops: []DeltaOp{{Kind: OpRemove, Table: "T", Index: 5}}},
		{Ops: []DeltaOp{{Kind: OpRemove, Table: "T", Index: -1}}},
		{Ops: []DeltaOp{{Kind: OpRemove, Table: "missing", Index: 0}}},
		{Ops: []DeltaOp{{Kind: OpAdd, Table: "T"}}},     // no entry
		{Ops: []DeltaOp{{Kind: OpReplace, Table: "T"}}}, // no entry
		{Ops: []DeltaOp{{Kind: DeltaKind(99), Table: "T"}}},
	}
	for i, d := range bad {
		if err := d.Apply(snap.Clone()); err == nil {
			t.Errorf("delta %d: no error", i)
		}
	}
}

// TestDeltaRemoveLastEntryDropsTable: removing a table's final entry
// removes the table itself, so the snapshot reverts to wildcard
// semantics for it (Has reports false) rather than an empty entry list.
func TestDeltaRemoveLastEntryDropsTable(t *testing.T) {
	snap, err := ParseSnapshot("table T {\n 1 -> a\n}")
	if err != nil {
		t.Fatal(err)
	}
	d := &Delta{Ops: []DeltaOp{{Kind: OpRemove, Table: "T", Index: 0}}}
	if err := d.Apply(snap); err != nil {
		t.Fatal(err)
	}
	if snap.Has("T") || len(snap.Tables()) != 0 {
		t.Fatalf("table survived removing its last entry: %v", snap.Tables())
	}
}

func TestDiff(t *testing.T) {
	a, err := ParseSnapshot("table T {\n 1 -> a\n 2 -> b\n}\ntable U {\n 5 -> x\n}")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSnapshot("table T {\n 1 -> a\n 3 -> c\n}\ntable V {\n 6 -> y\n}")
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(a, b)
	if got := d.Tables(); len(got) != 3 || got[0] != "T" || got[1] != "U" || got[2] != "V" {
		t.Fatalf("Diff touches %v", got)
	}
	work := a.Clone()
	if err := d.Apply(work); err != nil {
		t.Fatal(err)
	}
	if !Equal(work, b) {
		t.Fatalf("Diff+Apply != b:\n%s\nwant:\n%s", Format(work), Format(b))
	}
	if len(Diff(b, b).Ops) != 0 {
		t.Fatal("Diff of identical snapshots is non-empty")
	}
	if len(Diff(nil, nil).Ops) != 0 {
		t.Fatal("Diff(nil, nil) is non-empty")
	}
}

func TestDeltaTextRoundTrip(t *testing.T) {
	ds := []*Delta{
		{Ops: []DeltaOp{
			{Kind: OpAdd, Table: "Ctl.fwd",
				Entry: &Entry{Keys: []KeyMatch{LPM(0x0A000000, 8, 32)}, Action: "send", Args: []uint64{3}}},
			{Kind: OpRemove, Table: "Ctl.acl", Index: 2},
		}},
		{Ops: []DeltaOp{
			{Kind: OpReplace, Table: "Ctl.fwd", Index: 0,
				Entry: &Entry{Keys: []KeyMatch{Wildcard()}, Action: "drop"}},
		}},
	}
	text := FormatDeltas(ds)
	back, err := ParseDeltas(text)
	if err != nil {
		t.Fatalf("ParseDeltas: %v\n%s", err, text)
	}
	if again := FormatDeltas(back); again != text {
		t.Fatalf("delta text not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, again)
	}
	if len(back) != 2 || len(back[0].Ops) != 2 || len(back[1].Ops) != 1 {
		t.Fatalf("parsed shape wrong: %+v", back)
	}
	if op := back[0].Ops[0]; op.Kind != OpAdd || op.Table != "Ctl.fwd" ||
		op.Entry.Action != "send" || op.Entry.Keys[0].PrefixLen != 8 {
		t.Fatalf("first op = %+v", op)
	}
}

func TestParseDeltasCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
add T 1 -> a  # trailing comment

---
# empty block collapses
---
remove T 0
`
	ds, err := ParseDeltas(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || len(ds[0].Ops) != 1 || len(ds[1].Ops) != 1 {
		t.Fatalf("parsed %d deltas: %+v", len(ds), ds)
	}
	if ds[1].Ops[0].Kind != OpRemove {
		t.Fatalf("second delta = %+v", ds[1].Ops[0])
	}
}

func TestParseDeltaErrors(t *testing.T) {
	bad := []string{
		"frobnicate T 1 -> a", // unknown op
		"add",                 // no table
		"add T",               // no entry
		"add T nonsense",      // entry missing ->
		"remove T",            // no index
		"remove T xyz",        // bad index
		"replace T 0",         // no entry
		"replace T zz 1 -> a", // bad index
		"replace T",           // nothing
		"add T 1 -> a\n---\nadd T 2 -> b\nbogus line",
	}
	for _, src := range bad {
		if _, err := ParseDeltas(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
	if _, err := ParseDelta("add T 1 -> a\n---\nadd T 2 -> b"); err == nil ||
		!strings.Contains(err.Error(), "one delta") {
		t.Errorf("ParseDelta accepted two blocks: %v", err)
	}
	if d, err := ParseDelta("# only comments\n"); err != nil || len(d.Ops) != 0 {
		t.Errorf("ParseDelta on comments = %+v, %v", d, err)
	}
}

// TestEqualOrderSensitivity: Equal distinguishes snapshots whose
// entries differ only in match order, but ignores raw priority values
// that induce the same order.
func TestEqualOrderSensitivity(t *testing.T) {
	a := NewSnapshot()
	a.Add("T", &Entry{Keys: []KeyMatch{Ternary(1, 0xFF)}, Action: "x", Priority: -1})
	a.Add("T", &Entry{Keys: []KeyMatch{Ternary(2, 0xFF)}, Action: "y", Priority: -1})
	b := NewSnapshot()
	b.Add("T", &Entry{Keys: []KeyMatch{Ternary(2, 0xFF)}, Action: "y", Priority: -1})
	b.Add("T", &Entry{Keys: []KeyMatch{Ternary(1, 0xFF)}, Action: "x", Priority: -1})
	if Equal(a, b) {
		t.Fatal("Equal ignored match order")
	}
	c := NewSnapshot()
	c.Add("T", &Entry{Keys: []KeyMatch{Ternary(1, 0xFF)}, Action: "x", Priority: 10})
	c.Add("T", &Entry{Keys: []KeyMatch{Ternary(2, 0xFF)}, Action: "y", Priority: 20})
	if !Equal(a, c) {
		t.Fatal("Equal depended on absolute priorities")
	}
}
