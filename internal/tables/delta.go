package tables

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Format renders a snapshot in the text format ParseSnapshot reads.
// Entries are emitted in match order (the Entries sort), so a
// round-tripped snapshot matches identically even though explicit
// priorities are re-derived from emission order.
func Format(s *Snapshot) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, tn := range s.Tables() {
		fmt.Fprintf(&b, "table %s {\n", tn)
		for _, e := range s.Entries(tn) {
			b.WriteString("  ")
			b.WriteString(FormatEntry(e))
			b.WriteString("\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// FormatEntry renders one entry in the text format parseEntry reads.
func FormatEntry(e *Entry) string {
	var b strings.Builder
	for i, k := range e.Keys {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case k.IsRange:
			fmt.Fprintf(&b, "%d..%d", k.Value, k.High)
		case k.PrefixLen >= 0:
			fmt.Fprintf(&b, "%d/%d", k.Value, k.PrefixLen)
		case k.Mask == 0:
			b.WriteString("_")
		case k.Mask == ^uint64(0):
			fmt.Fprintf(&b, "%d", k.Value)
		default:
			fmt.Fprintf(&b, "0x%x &&& 0x%x", k.Value, k.Mask)
		}
	}
	fmt.Fprintf(&b, " -> %s", e.Action)
	if len(e.Args) > 0 {
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = fmt.Sprintf("%d", a)
		}
		fmt.Fprintf(&b, "(%s)", strings.Join(args, ", "))
	}
	return b.String()
}

// Op kinds of a delta operation.
const (
	// OpAdd appends Entry to Table.
	OpAdd = DeltaKind(iota)
	// OpRemove deletes the entry at Index of Table's match order.
	OpRemove
	// OpReplace swaps the entry at Index of Table's match order for
	// Entry, keeping its match-order position (priority).
	OpReplace
)

// DeltaKind discriminates delta operations.
type DeltaKind uint8

func (k DeltaKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpReplace:
		return "replace"
	}
	return fmt.Sprintf("DeltaKind(%d)", uint8(k))
}

// DeltaOp is one table-entry change. Index addresses an entry by its
// position in the table's Entries() match order — the order Format
// emits — evaluated against the snapshot state after the delta's
// preceding operations.
type DeltaOp struct {
	Kind  DeltaKind
	Table string // fully-qualified "Control.table"
	Index int    // OpRemove, OpReplace
	Entry *Entry // OpAdd, OpReplace
}

// Delta is one atomic batch of table-entry changes — what a control
// plane pushes between two verified snapshot states. Operations apply
// in order.
type Delta struct {
	Ops []DeltaOp
}

// Tables returns the sorted set of table names the delta touches.
func (d *Delta) Tables() []string {
	seen := map[string]bool{}
	var out []string
	for _, op := range d.Ops {
		if !seen[op.Table] {
			seen[op.Table] = true
			out = append(out, op.Table)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks every operation's table reference against a known-table
// predicate (typically the fully-qualified "Control.table" names a program
// declares), reporting the first reference to a table the program does not
// have. Index bounds are not checked here — they depend on snapshot state
// and stay Apply's job — so Validate is the cheap, snapshot-independent
// half of delta admission, the one aquila-serve runs before enqueueing.
func (d *Delta) Validate(known func(table string) bool) error {
	for i, op := range d.Ops {
		if !known(op.Table) {
			return fmt.Errorf("tables: delta op %d (%s): unknown table %q", i, op.Kind, op.Table)
		}
	}
	return nil
}

// Apply mutates snap by the delta's operations, in order. Added and
// replacement entries are deep-copied, so the delta can be reapplied to
// other snapshots. On error the snapshot may be partially updated;
// callers that need atomicity should Apply to a Clone.
func (d *Delta) Apply(snap *Snapshot) error {
	for i, op := range d.Ops {
		if err := applyOp(snap, op); err != nil {
			return fmt.Errorf("tables: delta op %d (%s %s): %w", i, op.Kind, op.Table, err)
		}
	}
	return nil
}

func applyOp(snap *Snapshot, op DeltaOp) error {
	switch op.Kind {
	case OpAdd:
		if op.Entry == nil {
			return fmt.Errorf("add without an entry")
		}
		snap.Add(op.Table, cloneEntry(op.Entry, -1))
		return nil
	case OpRemove, OpReplace:
		ordered := snap.Entries(op.Table)
		if op.Index < 0 || op.Index >= len(ordered) {
			return fmt.Errorf("index %d out of range [0, %d)", op.Index, len(ordered))
		}
		target := ordered[op.Index]
		raw := snap.entries[op.Table]
		at := -1
		for i, e := range raw {
			if e == target {
				at = i
				break
			}
		}
		if at < 0 {
			return fmt.Errorf("internal: match-order entry not in table")
		}
		if op.Kind == OpRemove {
			snap.entries[op.Table] = append(raw[:at], raw[at+1:]...)
			if len(snap.entries[op.Table]) == 0 {
				delete(snap.entries, op.Table)
			}
			return nil
		}
		if op.Entry == nil {
			return fmt.Errorf("replace without an entry")
		}
		raw[at] = cloneEntry(op.Entry, target.Priority)
		return nil
	}
	return fmt.Errorf("unknown op kind %d", op.Kind)
}

func cloneEntry(e *Entry, priority int) *Entry {
	ne := *e
	ne.Keys = append([]KeyMatch(nil), e.Keys...)
	ne.Args = append([]uint64(nil), e.Args...)
	ne.Priority = priority
	return &ne
}

// entryEqual compares two entries semantically: keys, action, and
// arguments. Priority is excluded — it is an ordering device whose
// absolute value is irrelevant once the match order agrees.
func entryEqual(a, b *Entry) bool {
	if a.Action != b.Action || len(a.Keys) != len(b.Keys) || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two snapshots install the same entries in the
// same match order for every table. Priorities are compared only
// through the match order they induce.
func Equal(a, b *Snapshot) bool {
	if a == nil || b == nil {
		return (a == nil || a.NumEntries() == 0) && (b == nil || b.NumEntries() == 0)
	}
	at, bt := a.Tables(), b.Tables()
	if len(at) != len(bt) {
		return false
	}
	for i := range at {
		if at[i] != bt[i] {
			return false
		}
		ae, be := a.Entries(at[i]), b.Entries(bt[i])
		if len(ae) != len(be) {
			return false
		}
		for j := range ae {
			if !entryEqual(ae[j], be[j]) {
				return false
			}
		}
	}
	return true
}

// Diff returns a delta that transforms snapshot a into snapshot b
// (Apply(a') then Equal(a', b) for a clone a' of a). It is table-local
// and canonical rather than minimal: a table whose match-order entry
// list changed at all is rebuilt — every old entry removed in
// descending match order, every new entry added in b's match order —
// which normalizes priorities to b's emission order.
func Diff(a, b *Snapshot) *Delta {
	d := &Delta{}
	tabs := map[string]bool{}
	if a != nil {
		for _, t := range a.Tables() {
			tabs[t] = true
		}
	}
	if b != nil {
		for _, t := range b.Tables() {
			tabs[t] = true
		}
	}
	names := make([]string, 0, len(tabs))
	for t := range tabs {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		var ae, be []*Entry
		if a != nil {
			ae = a.Entries(t)
		}
		if b != nil {
			be = b.Entries(t)
		}
		same := len(ae) == len(be)
		for i := 0; same && i < len(ae); i++ {
			same = entryEqual(ae[i], be[i])
		}
		if same {
			continue
		}
		for i := len(ae) - 1; i >= 0; i-- {
			d.Ops = append(d.Ops, DeltaOp{Kind: OpRemove, Table: t, Index: i})
		}
		for _, e := range be {
			d.Ops = append(d.Ops, DeltaOp{Kind: OpAdd, Table: t, Entry: cloneEntry(e, -1)})
		}
	}
	return d
}

// FormatDelta renders a delta in the canonical text format ParseDeltas
// reads:
//
//	add Ctl.tbl 10.0.0.1 -> send(3)
//	remove Ctl.tbl 2
//	replace Ctl.tbl 0 10.1.0.0/16 -> send(4)
//
// Entry text is exactly the snapshot entry syntax. A deltas file holds
// one such block per delta, blocks separated by `---` lines.
func FormatDelta(d *Delta) string {
	var b strings.Builder
	for _, op := range d.Ops {
		switch op.Kind {
		case OpAdd:
			fmt.Fprintf(&b, "add %s %s\n", op.Table, FormatEntry(op.Entry))
		case OpRemove:
			fmt.Fprintf(&b, "remove %s %d\n", op.Table, op.Index)
		case OpReplace:
			fmt.Fprintf(&b, "replace %s %d %s\n", op.Table, op.Index, FormatEntry(op.Entry))
		}
	}
	return b.String()
}

// FormatDeltas renders a sequence of deltas as a `---`-separated file.
func FormatDeltas(ds []*Delta) string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = FormatDelta(d)
	}
	return strings.Join(parts, "---\n")
}

// ParseDeltas reads a deltas file: one delta per block of operation
// lines, blocks separated by lines containing only `---`, with `#`
// comments and blank lines ignored. An empty block contributes no
// delta.
func ParseDeltas(src string) ([]*Delta, error) {
	var out []*Delta
	cur := &Delta{}
	flush := func() {
		if len(cur.Ops) > 0 {
			out = append(out, cur)
		}
		cur = &Delta{}
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line == "---" {
			flush()
			continue
		}
		op, err := parseDeltaOp(line)
		if err != nil {
			return nil, fmt.Errorf("tables: line %d: %w", lineNo+1, err)
		}
		cur.Ops = append(cur.Ops, op)
	}
	flush()
	return out, nil
}

// ParseDelta reads a single delta (no `---` separators allowed).
func ParseDelta(src string) (*Delta, error) {
	ds, err := ParseDeltas(src)
	if err != nil {
		return nil, err
	}
	switch len(ds) {
	case 0:
		return &Delta{}, nil
	case 1:
		return ds[0], nil
	}
	return nil, fmt.Errorf("tables: expected one delta, got %d", len(ds))
}

func parseDeltaOp(line string) (DeltaOp, error) {
	kindStr, rest, ok := strings.Cut(line, " ")
	if !ok {
		return DeltaOp{}, fmt.Errorf("malformed delta op %q", line)
	}
	table, rest, ok := strings.Cut(strings.TrimSpace(rest), " ")
	rest = strings.TrimSpace(rest)
	switch kindStr {
	case "add":
		if !ok || rest == "" {
			return DeltaOp{}, fmt.Errorf("add %s: missing entry", table)
		}
		e, err := parseEntry(rest)
		if err != nil {
			return DeltaOp{}, err
		}
		e.Priority = -1
		return DeltaOp{Kind: OpAdd, Table: table, Entry: e}, nil
	case "remove":
		if !ok || rest == "" {
			return DeltaOp{}, fmt.Errorf("remove %s: missing index", table)
		}
		idx, err := strconv.Atoi(rest)
		if err != nil {
			return DeltaOp{}, fmt.Errorf("remove %s: bad index %q", table, rest)
		}
		return DeltaOp{Kind: OpRemove, Table: table, Index: idx}, nil
	case "replace":
		idxStr, entryStr, ok2 := strings.Cut(rest, " ")
		if !ok || !ok2 || strings.TrimSpace(entryStr) == "" {
			return DeltaOp{}, fmt.Errorf("replace %s: want `replace <table> <index> <entry>`", table)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			return DeltaOp{}, fmt.Errorf("replace %s: bad index %q", table, idxStr)
		}
		e, err := parseEntry(strings.TrimSpace(entryStr))
		if err != nil {
			return DeltaOp{}, err
		}
		e.Priority = -1
		return DeltaOp{Kind: OpReplace, Table: table, Index: idx, Entry: e}, nil
	}
	return DeltaOp{}, fmt.Errorf("unknown delta op %q", kindStr)
}
